#ifndef UHSCM_BENCH_PERF_UTIL_H_
#define UHSCM_BENCH_PERF_UTIL_H_

// Small helpers shared by the perf benches (serve_throughput,
// hamming_kernels, micro_perf). Deliberately separate from bench_util.h,
// which wires up the full paper-bench dataset environment these benches
// don't need.

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <string>
#include <thread>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "index/hamming_kernels.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"

// Injected by CMake (git rev-parse --short HEAD); "unknown" outside a
// git checkout or when building perf_util.h standalone.
#ifndef UHSCM_GIT_SHA
#define UHSCM_GIT_SHA "unknown"
#endif

namespace uhscm::bench {

/// Random {-1,+1} code matrix — the synthetic corpus all perf benches
/// scan.
inline linalg::Matrix RandomSignCodes(int n, int bits, Rng* rng) {
  linalg::Matrix m(n, bits);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Bernoulli(0.5) ? 1.0f : -1.0f;
  }
  return m;
}

/// Best-of-N wall time. Each timed section in the kernel benches is a
/// handful of milliseconds, so a single scheduler preemption can double
/// a reading; the minimum over a few repeats is the standard estimator
/// for "what the code costs when the machine lets it run".
template <typename F>
double TimeBest(int reps, const F& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    best = std::min(best, watch.ElapsedSeconds());
  }
  return best;
}

/// Default repeat count for TimeBest across the benches.
inline constexpr int kTimingReps = 5;

/// printf-style double formatting for TableWriter cells.
inline std::string Fmt(double v, const char* format = "%.1f") {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, v);
  return buffer;
}

/// Writes the `"meta": {...},` line every BENCH_*.json carries: the
/// commit the binary was built from, the dispatched kernel tier, the
/// host's hardware thread count, and a UTC timestamp — enough to compare
/// two result files without the shell history that produced them.
inline void WriteJsonRunMeta(std::FILE* f) {
  char timestamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  if (gmtime_r(&now, &tm_utc) != nullptr) {
    std::strftime(timestamp, sizeof(timestamp), "%Y-%m-%dT%H:%M:%SZ",
                  &tm_utc);
  }
  std::fprintf(f,
               "  \"meta\": {\"git_sha\": \"%s\", \"kernel_tier\": \"%s\", "
               "\"hw_threads\": %u, \"timestamp_utc\": \"%s\"},\n",
               UHSCM_GIT_SHA,
               index::KernelTierName(index::ActiveKernelTier()),
               std::thread::hardware_concurrency(), timestamp);
}

/// Writes the `"stage_breakdown": {...},` object: per-stage latency
/// summaries (count / p50 / p99 / mean, in ms) pulled from the global
/// registry's `stage.*_ns` histograms. Stages are populated by traced
/// (sampled) requests — benches run one untimed sampled pass to fill
/// them; an empty object means no span was recorded (sampling off or
/// the observability layer compiled out).
inline void WriteJsonStageBreakdown(std::FILE* f) {
  const auto stages =
      obs::MetricsRegistry::Global().SnapshotHistograms("stage.");
  std::fprintf(f, "  \"stage_breakdown\": {");
  constexpr double kNsPerMs = 1e6;
  for (size_t i = 0; i < stages.size(); ++i) {
    const auto& [name, snap] = stages[i];
    std::fprintf(f,
                 "%s\n    \"%s\": {\"count\": %llu, \"p50_ms\": %.4f, "
                 "\"p99_ms\": %.4f, \"mean_ms\": %.4f}",
                 i == 0 ? "" : ",", name.c_str(),
                 static_cast<unsigned long long>(snap.total),
                 snap.ValueAtPercentile(50.0) / kNsPerMs,
                 snap.ValueAtPercentile(99.0) / kNsPerMs,
                 snap.mean() / kNsPerMs);
  }
  std::fprintf(f, stages.empty() ? "},\n" : "\n  },\n");
}

}  // namespace uhscm::bench

#endif  // UHSCM_BENCH_PERF_UTIL_H_
