#ifndef UHSCM_BENCH_PERF_UTIL_H_
#define UHSCM_BENCH_PERF_UTIL_H_

// Small helpers shared by the perf benches (serve_throughput,
// hamming_kernels, micro_perf). Deliberately separate from bench_util.h,
// which wires up the full paper-bench dataset environment these benches
// don't need.

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace uhscm::bench {

/// Random {-1,+1} code matrix — the synthetic corpus all perf benches
/// scan.
inline linalg::Matrix RandomSignCodes(int n, int bits, Rng* rng) {
  linalg::Matrix m(n, bits);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Bernoulli(0.5) ? 1.0f : -1.0f;
  }
  return m;
}

/// printf-style double formatting for TableWriter cells.
inline std::string Fmt(double v, const char* format = "%.1f") {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, v);
  return buffer;
}

}  // namespace uhscm::bench

#endif  // UHSCM_BENCH_PERF_UTIL_H_
