// Regenerates Figure 4: MAP sensitivity to the five hyper-parameters at
// 64 bits on the three datasets, sweeping one parameter with the others
// fixed at the paper's per-dataset defaults (§4.6):
//   tau   in {1m, 2m, 3m, 4m}
//   alpha in {0, 0.1, 0.2, 0.3, 0.4, 0.5}
//   lambda in {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
//   gamma in {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
//   beta  in {0, 0.0001, 0.001, 0.01, 0.1}
//
// Paper reference (Figure 4): performance is stable across broad ranges;
// tau best at 1m/3m, alpha in [0.1, 0.4], beta best at 0.001.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

namespace uhscm::bench {
namespace {

using ::uhscm::StrFormat;

double RunWithConfig(const BenchEnv& env, const core::UhscmConfig& config,
                     uint64_t seed) {
  baselines::UhscmMethod method(env.vlp.get(), env.nus_vocab, config);
  eval::RetrievalEvalOptions eval_options;
  eval_options.map_at = 5000;
  eval_options.topn_points = {};
  MethodRun run =
      RunMethod(&method, env, config.bits, eval_options, seed);
  return run.eval.map;
}

int Main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  const int bits = 64;  // the paper's Figure 4 setting

  for (const std::string& dataset : flags.datasets) {
    BenchEnv env = MakeBenchEnv(dataset, flags);
    std::printf("\n=== Figure 4: hyper-parameter sensitivity, %s @ 64 bits "
                "===\n",
                dataset.c_str());

    // (a/f/k) tau multiplier.
    {
      TableWriter table({"tau", "MAP"});
      for (float mult : {1.0f, 2.0f, 3.0f, 4.0f}) {
        core::UhscmConfig config = BenchUhscmConfig(dataset, bits, flags.seed);
        config.tau_multiplier = mult;
        table.AddRow(StrFormat("%.0fm", mult),
                     {RunWithConfig(env, config, flags.seed)});
      }
      table.Print(std::cout);
      if (flags.csv) std::cout << table.ToCsv();
    }
    // (b/g/l) alpha.
    {
      TableWriter table({"alpha", "MAP"});
      for (float alpha : {0.0f, 0.1f, 0.2f, 0.3f, 0.4f, 0.5f}) {
        core::UhscmConfig config = BenchUhscmConfig(dataset, bits, flags.seed);
        config.alpha = alpha;
        table.AddRow(StrFormat("%.1f", alpha),
                     {RunWithConfig(env, config, flags.seed)});
      }
      table.Print(std::cout);
      if (flags.csv) std::cout << table.ToCsv();
    }
    // (c/h/m) lambda.
    {
      TableWriter table({"lambda", "MAP"});
      for (float lambda : {0.5f, 0.6f, 0.7f, 0.8f, 0.9f, 1.0f}) {
        core::UhscmConfig config = BenchUhscmConfig(dataset, bits, flags.seed);
        config.lambda = lambda;
        table.AddRow(StrFormat("%.1f", lambda),
                     {RunWithConfig(env, config, flags.seed)});
      }
      table.Print(std::cout);
      if (flags.csv) std::cout << table.ToCsv();
    }
    // (d/i/n) gamma.
    {
      TableWriter table({"gamma", "MAP"});
      for (float gamma : {0.1f, 0.2f, 0.3f, 0.4f, 0.5f, 0.6f}) {
        core::UhscmConfig config = BenchUhscmConfig(dataset, bits, flags.seed);
        config.gamma = gamma;
        table.AddRow(StrFormat("%.1f", gamma),
                     {RunWithConfig(env, config, flags.seed)});
      }
      table.Print(std::cout);
      if (flags.csv) std::cout << table.ToCsv();
    }
    // (e/j/o) beta.
    {
      TableWriter table({"beta", "MAP"});
      for (float beta : {0.0f, 0.0001f, 0.001f, 0.01f, 0.1f}) {
        core::UhscmConfig config = BenchUhscmConfig(dataset, bits, flags.seed);
        config.beta = beta;
        table.AddRow(StrFormat("%g", beta),
                     {RunWithConfig(env, config, flags.seed)});
      }
      table.Print(std::cout);
      if (flags.csv) std::cout << table.ToCsv();
    }
  }
  return 0;
}

}  // namespace
}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
