// self_join — tiled corpus x corpus join vs the naive per-pair loop.
//
// Builds a corpus with planted near-duplicate clusters (plus random
// background rows and a few tombstones — the dedup workload shape) and
// measures all-pairs work as unordered live pairs per second:
//
//   naive/topk        : ReferenceTopKJoin — the branchy O(n^2) per-pair
//                       HammingDistance loop (the mostsimilar shape) with
//                       bounded-heap reduction; also the identity oracle
//   naive/radius      : ReferenceRadiusJoin — same loop, threshold filter
//   join/topk/<tier>  : tiled TopKJoin forced to <tier>, fused block-min
//   join/topk/unfused : dispatched tier, two-pass min (fusion A/B)
//   join/radius/<tier>: tiled RadiusJoin forced to <tier> — the min-skip
//                       showcase (a sparse radius prunes almost all work
//                       at tile/chunk granularity)
//   tile/topk/<rows>  : tile-size sweep at the dispatched tier
//
// Every engine result is checked byte-identical to its naive reference —
// ids, distances, tie order, tombstoned rows — before any number is
// reported; a mismatch is a hard failure. Results land on stdout and in
// BENCH_self_join.json. One gate, armed only where it can hold (SIMD
// present, n >= 50000, bits >= 128):
//
//   headline : tiled TopKJoin >= 5x the naive per-pair loop (pairs/sec)
//
// The naive rows are timed once instead of best-of-N: at n >= 50k they
// run for seconds, long enough that scheduler noise amortizes; best-of
// repeats matter for the ms-scale engine rows.
//
//   $ ./build/self_join [--n=50000] [--bits=128] [--k=10] [--radius=8]
//                       [--threads=0] [--reps=2] [--json=BENCH_self_join.json]
//   $ ./build/self_join --list-tiers   # one available tier per line
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "index/batch_scan.h"
#include "index/packed_codes.h"
#include "index/self_join.h"
#include "index/shard_index.h"
#include "perf_util.h"

namespace uhscm::bench {
namespace {

struct Flags {
  int n = 50000;
  int bits = 128;
  int k = 10;
  int radius = 8;
  int threads = 0;
  int reps = 2;
  uint64_t seed = 2023;
  std::string json = "BENCH_self_join.json";
  bool list_tiers = false;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--n=")) {
      flags.n = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--bits=")) {
      flags.bits = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--k=")) {
      flags.k = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--radius=")) {
      flags.radius = std::atoi(arg.c_str() + 9);
    } else if (StartsWith(arg, "--threads=")) {
      flags.threads = std::atoi(arg.c_str() + 10);
    } else if (StartsWith(arg, "--reps=")) {
      flags.reps = std::max(1, std::atoi(arg.c_str() + 7));
    } else if (StartsWith(arg, "--seed=")) {
      flags.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (StartsWith(arg, "--json=")) {
      flags.json = arg.substr(7);
    } else if (arg == "--list-tiers") {
      flags.list_tiers = true;
    } else {
      std::fprintf(stderr,
                   "usage: self_join [--n=N] [--bits=K] [--k=K] [--radius=R] "
                   "[--threads=T] [--reps=N] [--seed=N] [--json=PATH] "
                   "[--list-tiers]\n");
      std::exit(2);
    }
  }
  return flags;
}

struct Row {
  std::string name;
  std::string tier;
  double seconds = 0.0;
  double pairs_per_s = 0.0;
  double pruned_frac = 0.0;
  double speedup = 1.0;  // vs the matching naive row
};

std::vector<index::KernelTier> AvailableTiers() {
  std::vector<index::KernelTier> tiers;
  for (const index::KernelTier tier :
       {index::KernelTier::kScalar, index::KernelTier::kAvx2,
        index::KernelTier::kAvx512}) {
    if (index::KernelTierAvailable(tier)) tiers.push_back(tier);
  }
  return tiers;
}

/// The dedup workload corpus: `n` rows of which ~4% form planted
/// near-duplicate clusters (5 copies each, every copy within
/// `radius / 2` flips of its base so intra-cluster pairs stay within
/// `radius`), the rest random background, ~1% tombstoned. Random
/// background pairs sit around bits/2 — far above any small radius — so
/// the radius join's output is essentially the planted clusters.
index::PackedCodes MakeCorpus(const Flags& flags, Rng* rng,
                              index::TombstoneSet* dead) {
  const int copies = 5;
  const int clusters = std::max(1, flags.n / (25 * copies));
  const int planted = clusters * copies;
  const int background = std::max(0, flags.n - planted);
  const int max_flips = std::max(1, flags.radius / 2);

  index::PackedCodes bases = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(clusters, flags.bits, rng));
  index::PackedCodes corpus;
  for (int c = 0; c < clusters; ++c) {
    for (int dup = 0; dup < copies; ++dup) {
      std::vector<uint64_t> words(bases.code(c),
                                  bases.code(c) + bases.words_per_code());
      const int nflips =
          dup == 0 ? 0
                   : 1 + static_cast<int>(rng->UniformInt(
                             static_cast<uint64_t>(max_flips)));
      for (int f = 0; f < nflips; ++f) {
        const int bit = static_cast<int>(
            rng->UniformInt(static_cast<uint64_t>(flags.bits)));
        words[static_cast<size_t>(bit / 64)] ^= 1ULL << (bit % 64);
      }
      corpus.Append(
          index::PackedCodes::FromRawWords(1, flags.bits, std::move(words)));
    }
  }
  if (background > 0) {
    corpus.Append(index::PackedCodes::FromSignMatrix(
        RandomSignCodes(background, flags.bits, rng)));
  }
  dead->Resize(corpus.size());
  for (int i = 0; i < corpus.size(); i += 100) dead->Set(i);
  return corpus;
}

bool SameTopK(const std::vector<std::vector<index::Neighbor>>& a,
              const std::vector<std::vector<index::Neighbor>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t r = 0; r < a[i].size(); ++r) {
      if (a[i][r].id != b[i][r].id || a[i][r].distance != b[i][r].distance) {
        return false;
      }
    }
  }
  return true;
}

bool SamePairs(const std::vector<index::JoinPair>& a,
               const std::vector<index::JoinPair>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

}  // namespace

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const std::vector<index::KernelTier> tiers = AvailableTiers();
  if (flags.list_tiers) {
    for (const index::KernelTier tier : tiers) {
      std::printf("%s\n", index::KernelTierName(tier));
    }
    return 0;
  }

  Rng rng(flags.seed);
  index::TombstoneSet dead;
  const index::PackedCodes corpus = MakeCorpus(flags, &rng, &dead);
  const int live = corpus.size() - dead.dead_count();
  const double pair_count =
      static_cast<double>(live) * (live - 1) / 2.0;
  const index::KernelTier active_tier = index::ActiveKernelTier();
  const char* simd_name = index::KernelTierName(active_tier);

  std::printf(
      "corpus n=%d bits=%d (%d words/code) | %d tombstoned, %.0f live "
      "pairs | k=%d radius=%d threads=%d\n",
      corpus.size(), flags.bits, corpus.words_per_code(), dead.dead_count(),
      pair_count, flags.k, flags.radius, flags.threads);
  std::printf("dispatched kernel tier: %s | tiers available:", simd_name);
  for (const index::KernelTier tier : tiers) {
    std::printf(" %s", index::KernelTierName(tier));
  }
  std::printf("\n\n");

  std::vector<Row> rows;
  double naive_topk_secs = 0.0;
  double naive_radius_secs = 0.0;
  auto add_row = [&](const std::string& name, const std::string& tier,
                     double seconds, double naive_secs,
                     const index::SelfJoinStats* stats) {
    Row row;
    row.name = name;
    row.tier = tier;
    row.seconds = seconds;
    row.pairs_per_s = pair_count / seconds;
    row.pruned_frac =
        stats != nullptr && stats->pairs_total > 0
            ? static_cast<double>(stats->pairs_pruned) / stats->pairs_total
            : 0.0;
    row.speedup = naive_secs > 0.0 ? naive_secs / seconds : 1.0;
    rows.push_back(row);
  };

  // Naive per-pair baselines — the mostsimilar loop the engine replaces.
  // Timed once (they run for seconds at gate scale) and kept as the
  // byte-identity oracle for every engine row below.
  std::vector<std::vector<index::Neighbor>> want_topk;
  {
    Stopwatch watch;
    want_topk = index::ReferenceTopKJoin(corpus, flags.k, &dead);
    naive_topk_secs = watch.ElapsedSeconds();
    add_row("naive/topk", "scalar", naive_topk_secs, naive_topk_secs,
            nullptr);
  }
  std::vector<index::JoinPair> want_radius;
  {
    Stopwatch watch;
    want_radius = index::ReferenceRadiusJoin(corpus, flags.radius, &dead);
    naive_radius_secs = watch.ElapsedSeconds();
    add_row("naive/radius", "scalar", naive_radius_secs, naive_radius_secs,
            nullptr);
  }

  // Tiled TopKJoin per tier (fused — the default). The scalar row
  // isolates the tiling/batching win; higher tiers add the SIMD win.
  double engine_topk_secs = 0.0;
  for (const index::KernelTier tier : tiers) {
    index::SelfJoinOptions options;
    options.force_tier = true;
    options.tier = tier;
    options.threads = flags.threads;
    options.tombstones = &dead;
    index::SelfJoinStats stats;
    std::vector<std::vector<index::Neighbor>> got;
    const double secs = TimeBest(flags.reps, [&] {
      got = index::TopKJoin(corpus, flags.k, options, &stats);
    });
    if (!SameTopK(got, want_topk)) {
      std::fprintf(stderr, "FATAL: TopKJoin/%s differs from naive reference\n",
                   index::KernelTierName(tier));
      return 1;
    }
    add_row(std::string("join/topk/") + index::KernelTierName(tier),
            index::KernelTierName(tier), secs, naive_topk_secs, &stats);
    if (tier == active_tier) engine_topk_secs = secs;
  }

  // Fusion A/B at the dispatched tier.
  {
    index::SelfJoinOptions options;
    options.threads = flags.threads;
    options.fused_min = false;
    options.tombstones = &dead;
    index::SelfJoinStats stats;
    std::vector<std::vector<index::Neighbor>> got;
    const double secs = TimeBest(flags.reps, [&] {
      got = index::TopKJoin(corpus, flags.k, options, &stats);
    });
    if (!SameTopK(got, want_topk)) {
      std::fprintf(stderr,
                   "FATAL: unfused TopKJoin differs from naive reference\n");
      return 1;
    }
    add_row(std::string("join/topk/") + simd_name + "/unfused", simd_name,
            secs, naive_topk_secs, &stats);
  }

  // Tiled RadiusJoin per tier — the min-skip showcase: at a sparse
  // radius nearly every tile/chunk dies at its minimum.
  double engine_radius_secs = 0.0;
  for (const index::KernelTier tier : tiers) {
    index::SelfJoinOptions options;
    options.force_tier = true;
    options.tier = tier;
    options.threads = flags.threads;
    options.tombstones = &dead;
    index::SelfJoinStats stats;
    std::vector<index::JoinPair> got;
    const double secs = TimeBest(flags.reps, [&] {
      got = index::RadiusJoin(corpus, flags.radius, options, &stats);
    });
    if (!SamePairs(got, want_radius)) {
      std::fprintf(stderr,
                   "FATAL: RadiusJoin/%s differs from naive reference\n",
                   index::KernelTierName(tier));
      return 1;
    }
    add_row(std::string("join/radius/") + index::KernelTierName(tier),
            index::KernelTierName(tier), secs, naive_radius_secs, &stats);
    if (tier == active_tier) engine_radius_secs = secs;
  }

  // Tile-size sweep at the dispatched tier: too small pays per-tile
  // overhead, too large spills the inner block out of cache.
  const int auto_tile =
      index::PickCodeBlockSize(corpus.words_per_code(), 0);
  for (const int tile : {auto_tile / 2, auto_tile, auto_tile * 2,
                         auto_tile * 4}) {
    index::SelfJoinOptions options;
    options.tile = tile;
    options.threads = flags.threads;
    options.tombstones = &dead;
    index::SelfJoinStats stats;
    std::vector<std::vector<index::Neighbor>> got;
    const double secs = TimeBest(flags.reps, [&] {
      got = index::TopKJoin(corpus, flags.k, options, &stats);
    });
    if (!SameTopK(got, want_topk)) {
      std::fprintf(stderr,
                   "FATAL: TopKJoin tile=%d differs from naive reference\n",
                   tile);
      return 1;
    }
    add_row("tile/topk/" + std::to_string(tile) +
                (tile == auto_tile ? "(auto)" : ""),
            simd_name, secs, naive_topk_secs, &stats);
  }

  // Dedup reduction on top of the radius join — group counts are sanity,
  // identity follows from the radius join check plus the shared reducer.
  index::DedupOptions dedup;
  dedup.radius = flags.radius;
  index::SelfJoinOptions dedup_options;
  dedup_options.threads = flags.threads;
  dedup_options.tombstones = &dead;
  const index::DedupGroupsResult groups =
      index::DedupGroups(corpus, dedup, dedup_options);
  const index::DedupGroupsResult want_groups =
      index::ReducePairsToGroups(want_radius, dedup.link);
  if (groups.groups != want_groups.groups) {
    std::fprintf(stderr, "FATAL: DedupGroups differs from naive reduction\n");
    return 1;
  }

  TableWriter table({"config", "secs", "Mpairs/s", "pruned%", "speedup"});
  for (const Row& row : rows) {
    table.AddRow({row.name, Fmt(row.seconds, "%.4f"),
                  Fmt(row.pairs_per_s / 1e6, "%.1f"),
                  Fmt(row.pruned_frac * 100.0, "%.1f"),
                  Fmt(row.speedup, "%.2f")});
  }
  table.Print(std::cout);

  const double headline =
      engine_topk_secs > 0.0 ? naive_topk_secs / engine_topk_secs : 0.0;
  const double radius_speedup =
      engine_radius_secs > 0.0 ? naive_radius_secs / engine_radius_secs : 0.0;
  std::printf(
      "\nall join results byte-identical to the naive per-pair reference\n");
  std::printf("headline: tiled %s TopKJoin = %.2fx naive per-pair loop\n",
              simd_name, headline);
  std::printf("radius:   tiled %s RadiusJoin = %.2fx naive per-pair loop\n",
              simd_name, radius_speedup);
  std::printf("dedup:    %zu groups, %lld rows clustered\n",
              groups.groups.size(),
              static_cast<long long>(groups.rows_clustered));

  if (!flags.json.empty()) {
    std::FILE* f = std::fopen(flags.json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr,
                   "WARNING: cannot write %s — perf trajectory not recorded\n",
                   flags.json.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"self_join\",\n");
      WriteJsonRunMeta(f);
      WriteJsonStageBreakdown(f);
      std::fprintf(f,
                   "  \"n\": %d, \"bits\": %d, \"k\": %d, \"radius\": %d, "
                   "\"threads\": %d, \"live_pairs\": %.0f,\n",
                   corpus.size(), flags.bits, flags.k, flags.radius,
                   flags.threads, pair_count);
      std::fprintf(f, "  \"kernel_tier\": \"%s\",\n", simd_name);
      std::fprintf(f, "  \"tiers_available\": [");
      for (size_t i = 0; i < tiers.size(); ++i) {
        std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                     index::KernelTierName(tiers[i]));
      }
      std::fprintf(f, "],\n  \"rows\": [\n");
      for (size_t i = 0; i < rows.size(); ++i) {
        std::fprintf(f,
                     "    {\"config\": \"%s\", \"tier\": \"%s\", "
                     "\"seconds\": %.6f, \"pairs_per_s\": %.1f, "
                     "\"pruned_frac\": %.4f, \"speedup_vs_naive\": %.3f}%s\n",
                     rows[i].name.c_str(), rows[i].tier.c_str(),
                     rows[i].seconds, rows[i].pairs_per_s,
                     rows[i].pruned_frac, rows[i].speedup,
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f,
                   "  ],\n  \"dedup_groups\": %zu,\n"
                   "  \"rows_clustered\": %lld,\n"
                   "  \"headline_speedup\": %.3f,\n"
                   "  \"radius_speedup\": %.3f\n}\n",
                   groups.groups.size(),
                   static_cast<long long>(groups.rows_clustered), headline,
                   radius_speedup);
      std::fclose(f);
      std::printf("wrote %s\n", flags.json.c_str());
    }
  }

  // The >=5x bar only applies where it can hold: SIMD present and a
  // corpus big enough that the O(n^2) naive loop actually hurts.
  const bool gate_armed = index::Avx2Available() &&
                          active_tier != index::KernelTier::kScalar &&
                          flags.n >= 50000 && flags.bits >= 128;
  if (gate_armed && headline < 5.0) {
    std::fprintf(stderr,
                 "\nFAIL: tiled TopKJoin only %.2fx the naive per-pair loop "
                 "(need >= 5x)\n",
                 headline);
    return 1;
  }
  return 0;
}

}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
