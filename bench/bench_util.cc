#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace uhscm::bench {

namespace {

[[noreturn]] void Usage(const char* what) {
  std::fprintf(stderr,
               "unknown or malformed flag: %s\n"
               "usage: bench [--scale=F] [--seed=N] "
               "[--datasets=cifar,nuswide,flickr] [--bits=32,64,96,128] "
               "[--csv]\n",
               what);
  std::exit(2);
}

}  // namespace

BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--scale=")) {
      flags.scale = std::atof(arg.c_str() + 8);
      if (flags.scale <= 0.0) Usage(argv[i]);
    } else if (StartsWith(arg, "--seed=")) {
      flags.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (StartsWith(arg, "--datasets=")) {
      flags.datasets = Split(arg.substr(11), ',');
      for (const std::string& d : flags.datasets) {
        if (d != "cifar" && d != "nuswide" && d != "flickr") Usage(argv[i]);
      }
    } else if (StartsWith(arg, "--bits=")) {
      flags.bits.clear();
      for (const std::string& b : Split(arg.substr(7), ',')) {
        const int v = std::atoi(b.c_str());
        if (v <= 0) Usage(argv[i]);
        flags.bits.push_back(v);
      }
    } else if (arg == "--csv") {
      flags.csv = true;
    } else {
      Usage(argv[i]);
    }
  }
  return flags;
}

BenchEnv MakeBenchEnv(const std::string& dataset_name,
                      const BenchFlags& flags) {
  BenchEnv env;
  env.dataset_name = dataset_name;
  env.world = std::make_unique<data::SemanticWorld>(flags.seed);

  // Paper proportions at ~1/4 of the tables' scale per unit of --scale
  // (full-paper sizes are 10x the defaults; pass --scale=4 or more to
  // approach them).
  data::SyntheticOptions options = data::DefaultOptionsFor(dataset_name);
  options.sizes.database =
      static_cast<int>(options.sizes.database * 0.25 * flags.scale);
  options.sizes.train =
      static_cast<int>(options.sizes.train * 0.4 * flags.scale);
  options.sizes.query =
      static_cast<int>(options.sizes.query * 0.3 * flags.scale);

  Rng rng(flags.seed + 17);
  env.dataset =
      data::MakeDatasetByName(dataset_name, env.world.get(), options, &rng);
  env.nus_vocab = data::MakeNusVocab(env.world.get());
  env.coco_vocab = data::MakeCocoVocab(env.world.get());
  env.combined_vocab = data::MakeCombinedVocab(env.world.get());

  env.vlp = std::make_unique<vlp::SimulatedVlpModel>(env.world.get());
  env.extractor = std::make_unique<features::SimulatedCnnFeatureExtractor>(
      env.world->pixel_dim());

  env.train_pixels = env.dataset.pixels.SelectRows(env.dataset.split.train);
  env.database_pixels =
      env.dataset.pixels.SelectRows(env.dataset.split.database);
  env.query_pixels = env.dataset.pixels.SelectRows(env.dataset.split.query);
  return env;
}

baselines::TrainContext MakeTrainContext(const BenchEnv& env, int bits,
                                         uint64_t seed) {
  baselines::TrainContext context;
  context.train_pixels = env.train_pixels;
  context.train_features = env.extractor->Extract(env.train_pixels);
  context.extractor = env.extractor.get();
  context.bits = bits;
  context.seed = seed;
  return context;
}

MethodRun RunMethod(baselines::HashingMethod* method, const BenchEnv& env,
                    int bits, const eval::RetrievalEvalOptions& eval_options,
                    uint64_t seed) {
  MethodRun run;
  baselines::TrainContext context = MakeTrainContext(env, bits, seed);

  Stopwatch fit_watch;
  const Status st = method->Fit(context);
  run.fit_seconds = fit_watch.ElapsedSeconds();
  UHSCM_CHECK(st.ok(), st.ToString().c_str());

  Stopwatch encode_watch;
  run.database_codes = method->Encode(env.database_pixels);
  run.query_codes = method->Encode(env.query_pixels);
  run.encode_seconds = encode_watch.ElapsedSeconds();

  run.eval = eval::EvaluateRetrieval(env.dataset, run.database_codes,
                                     run.query_codes, eval_options);
  return run;
}

core::UhscmConfig BenchUhscmConfig(const std::string& dataset_name, int bits,
                                   uint64_t seed) {
  core::UhscmConfig config = core::DefaultConfigFor(dataset_name, bits);
  config.max_epochs = 40;
  config.seed = seed;
  return config;
}

std::unique_ptr<baselines::UhscmMethod> MakeUhscm(const BenchEnv& env,
                                                  int bits, uint64_t seed) {
  return std::make_unique<baselines::UhscmMethod>(
      env.vlp.get(), env.nus_vocab,
      BenchUhscmConfig(env.dataset_name, bits, seed));
}

}  // namespace uhscm::bench
