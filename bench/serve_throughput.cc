// serve_throughput — throughput/latency sweep of the serving subsystem.
//
// Builds a synthetic packed-code corpus, then sweeps
//   threads x shards x batch size
// through serve::QueryEngine (cache off, so rows measure raw search) and
// reports QPS and p50/p99 latency per configuration next to a
// single-threaded LinearScan baseline, plus one cache-hot row. The
// headline check: multi-threaded sharded QPS must beat the
// single-threaded scan on the same corpus.
//
//   $ ./build/serve_throughput [--n=20000] [--bits=64] [--k=10]
//                              [--queries=512] [--seed=2023] [--csv]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "index/linear_scan.h"
#include "index/packed_codes.h"
#include "obs/trace.h"
#include "perf_util.h"
#include "serve/query_engine.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"

namespace uhscm::bench {
namespace {

struct Flags {
  int n = 20000;
  int bits = 64;
  int k = 10;
  int queries = 512;
  uint64_t seed = 2023;
  bool csv = false;
  std::string json = "BENCH_serve_throughput.json";
};

Flags ParseServeFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--n=")) {
      flags.n = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--bits=")) {
      flags.bits = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--k=")) {
      flags.k = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--queries=")) {
      flags.queries = std::atoi(arg.c_str() + 10);
    } else if (StartsWith(arg, "--seed=")) {
      flags.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg == "--csv") {
      flags.csv = true;
    } else if (StartsWith(arg, "--json=")) {
      flags.json = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: serve_throughput [--n=N] [--bits=K] [--k=K] "
                   "[--queries=N] [--seed=N] [--csv] [--json=PATH]\n");
      std::exit(2);
    }
  }
  return flags;
}

}  // namespace

int Main(int argc, char** argv) {
  const Flags flags = ParseServeFlags(argc, argv);
  Rng rng(flags.seed);
  const index::PackedCodes corpus =
      index::PackedCodes::FromSignMatrix(RandomSignCodes(flags.n, flags.bits, &rng));
  const index::PackedCodes queries = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(flags.queries, flags.bits, &rng));
  std::printf("corpus n=%d bits=%d | %d queries, k=%d\n\n", flags.n,
              flags.bits, flags.queries, flags.k);

  TableWriter table({"config", "threads", "shards", "batch", "qps",
                     "p50_ms", "p99_ms", "speedup"});
  // Structured copies of every table row for the BENCH_*.json trajectory
  // record.
  struct JsonRow {
    std::string config;
    int threads, shards, batch;
    double qps, p50_ms, p99_ms, speedup;
  };
  std::vector<JsonRow> json_rows;
  auto record = [&](const std::string& config, int threads, int shards,
                    int batch, double qps, double p50, double p99,
                    double speedup) {
    table.AddRow({config, std::to_string(threads), std::to_string(shards),
                  std::to_string(batch), Fmt(qps), Fmt(p50, "%.3f"),
                  Fmt(p99, "%.3f"), Fmt(speedup, "%.2f")});
    json_rows.push_back({config, threads, shards, batch, qps, p50, p99,
                         speedup});
  };

  // Baseline: one thread, one brute-force scan, one query at a time.
  index::LinearScanIndex scan(index::PackedCodes::FromRawWords(
      corpus.size(), corpus.bits(), corpus.words()));
  std::vector<double> latencies_ms;
  Stopwatch total;
  for (int q = 0; q < queries.size(); ++q) {
    Stopwatch watch;
    auto result = scan.TopK(queries.code(q), flags.k);
    latencies_ms.push_back(watch.ElapsedMillis());
    if (result.empty()) std::abort();  // keep the scan observable
  }
  const double baseline_qps = queries.size() / total.ElapsedSeconds();
  record("linear-scan", 1, 1, 1, baseline_qps,
         serve::Percentile(latencies_ms, 50),
         serve::Percentile(latencies_ms, 99), 1.0);

  const int hw = std::max(2, static_cast<int>(
                                 std::thread::hardware_concurrency()));
  std::vector<int> thread_counts{1};
  if (hw / 2 > 1) thread_counts.push_back(hw / 2);
  if (hw > thread_counts.back()) thread_counts.push_back(hw);
  double best_sharded_qps = 0.0;
  for (int threads : thread_counts) {
    for (int shards : {1, 4, 8}) {
      for (int batch : {1, 32, 256}) {
        serve::ServingSnapshotOptions options;
        options.index.num_shards = shards;
        options.engine.num_threads = threads;
        options.engine.cache_capacity = 0;  // measure raw search
        auto engine = serve::MakeQueryEngine(
            index::PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                             corpus.words()),
            options);
        // Slice once, replay the same packed buffers for both passes.
        const std::vector<index::PackedCodes> batches =
            serve::SliceBatches(queries, batch);
        serve::ReplayBatches(engine.get(), batches, flags.k);  // warm-up pass
        engine->ResetStats();
        serve::ReplayBatches(engine.get(), batches, flags.k);
        const serve::ServeStatsSnapshot stats = engine->stats();
        if (threads > 1 && shards > 1) {
          best_sharded_qps = std::max(best_sharded_qps, stats.qps());
        }
        record("sharded", threads, shards, batch, stats.qps(),
               stats.latency_p50_ms, stats.latency_p99_ms,
               stats.qps() / baseline_qps);
      }
    }
  }

  // Cache-hot row: the second replay of an identical query stream is
  // answered entirely from the LRU cache — the engine's throughput
  // ceiling under repeating production traffic.
  double cache_hot_qps = 0.0;
  {
    serve::ServingSnapshotOptions options;
    options.index.num_shards = 4;
    options.engine.num_threads = hw;
    options.engine.cache_capacity =
        static_cast<size_t>(queries.size()) * 2;
    auto engine = serve::MakeQueryEngine(
        index::PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                         corpus.words()),
        options);
    const std::vector<index::PackedCodes> batches =
        serve::SliceBatches(queries, 32);
    serve::ReplayBatches(engine.get(), batches, flags.k);
    engine->ResetStats();
    serve::ReplayBatches(engine.get(), batches, flags.k);
    const serve::ServeStatsSnapshot stats = engine->stats();
    cache_hot_qps = stats.qps();
    record("cache-hot", hw, 4, 32, stats.qps(), stats.latency_p50_ms,
           stats.latency_p99_ms, stats.qps() / baseline_qps);
  }

  table.Print(std::cout);
  if (flags.csv) std::cout << "\n" << table.ToCsv();

  // Untimed instrumented pass: replay with every request sampled so the
  // stage.*_ns histograms carry a per-stage breakdown for the JSON
  // record. Runs after every timed row — sampling costs span recording,
  // which must not pollute the measurements above.
  {
    serve::ServingSnapshotOptions options;
    options.index.num_shards = 4;
    options.engine.num_threads = hw;
    options.engine.cache_capacity = 0;
    auto engine = serve::MakeQueryEngine(
        index::PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                         corpus.words()),
        options);
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    recorder.SetSampleEvery(1);
    for (const index::PackedCodes& batch :
         serve::SliceBatches(queries, 32)) {
      obs::TraceContext ctx;
      ctx.trace_id = recorder.MaybeStartTrace();
      engine->Search(batch, flags.k, ctx);
    }
    recorder.SetSampleEvery(0);
  }

  if (!flags.json.empty()) {
    std::FILE* f = std::fopen(flags.json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "WARNING: cannot write %s — perf trajectory not recorded\n",
                   flags.json.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"serve_throughput\",\n");
      WriteJsonRunMeta(f);
      WriteJsonStageBreakdown(f);
      std::fprintf(f,
                   "  \"n\": %d, \"bits\": %d, \"k\": %d, \"queries\": %d,\n",
                   flags.n, flags.bits, flags.k, flags.queries);
      std::fprintf(f, "  \"rows\": [\n");
      for (size_t i = 0; i < json_rows.size(); ++i) {
        const JsonRow& r = json_rows[i];
        std::fprintf(f,
                     "    {\"config\": \"%s\", \"threads\": %d, \"shards\": "
                     "%d, \"batch\": %d, \"qps\": %.1f, \"p50_ms\": %.4f, "
                     "\"p99_ms\": %.4f, \"speedup\": %.3f}%s\n",
                     r.config.c_str(), r.threads, r.shards, r.batch, r.qps,
                     r.p50_ms, r.p99_ms, r.speedup,
                     i + 1 < json_rows.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("\nwrote %s\n", flags.json.c_str());
    }
  }

  // Headline: the multi-threaded sharded engine (raw fan-out on
  // multi-core boxes, cache-hot under repeating traffic everywhere) must
  // beat the single-threaded scan.
  std::printf("\nraw sharded fan-out: %.1f QPS (%.2fx scan baseline)\n",
              best_sharded_qps, best_sharded_qps / baseline_qps);
  std::printf("cache-hot engine:    %.1f QPS (%.2fx scan baseline)\n",
              cache_hot_qps, cache_hot_qps / baseline_qps);
  const double best_engine_qps = std::max(best_sharded_qps, cache_hot_qps);
  if (best_engine_qps <= baseline_qps) {
    std::printf(
        "\nWARNING: no engine configuration beat the single-threaded "
        "scan (%.1f QPS)\n",
        baseline_qps);
    return 1;
  }
  std::printf("\nbest engine QPS %.1f vs single-threaded scan %.1f "
              "(%.2fx)\n",
              best_engine_qps, baseline_qps, best_engine_qps / baseline_qps);
  return 0;
}

}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
