// Micro-performance benchmarks (google-benchmark) for the hot kernels
// behind the paper-table benches: packed Hamming scans, multi-index
// hashing lookups, GEMM, VLP scoring, and the UHSCM batch loss. These
// are the "is the substrate fast enough" counterpart to the paper-shape
// benches; run any binary with --benchmark_filter=... as usual.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/losses.h"
#include "data/concept_vocab.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "index/batch_scan.h"
#include "index/hamming_kernels.h"
#include "index/linear_scan.h"
#include "index/multi_index_hash.h"
#include "index/packed_codes.h"
#include "linalg/ops.h"
#include "perf_util.h"
#include "vlp/simulated_vlp.h"

namespace uhscm {
namespace {

using bench::RandomSignCodes;

void BM_HammingDistance(benchmark::State& state) {
  // Measures the unrolled popcount kernel itself: distance between two
  // packed rows at the paper's code widths (1..2 words) plus a wide
  // 1024-bit configuration where the 4-way unroll dominates.
  const int bits = static_cast<int>(state.range(0));
  Rng rng(11);
  index::PackedCodes codes =
      index::PackedCodes::FromSignMatrix(RandomSignCodes(2, bits, &rng));
  const int words = codes.words_per_code();
  uint64_t sink = 0;
  for (auto _ : state) {
    sink += static_cast<uint64_t>(
        index::HammingDistance(codes.code(0), codes.code(1), words));
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * words);
}
BENCHMARK(BM_HammingDistance)->Arg(64)->Arg(128)->Arg(256)->Arg(1024);

void BM_LinearScanTopK(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  Rng rng(1);
  index::LinearScanIndex scan(
      index::PackedCodes::FromSignMatrix(RandomSignCodes(n, bits, &rng)));
  index::PackedCodes query =
      index::PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan.TopK(query.code(0), 100));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LinearScanTopK)
    ->Args({10000, 64})
    ->Args({10000, 128})
    ->Args({100000, 64});

void BM_BatchDistances(benchmark::State& state) {
  // The dispatched batch kernel against a contiguous corpus run — the
  // inner loop of the blocked scan, without top-k bookkeeping.
  const int n = static_cast<int>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  const bool scalar = state.range(2) != 0;
  Rng rng(21);
  index::PackedCodes corpus =
      index::PackedCodes::FromSignMatrix(RandomSignCodes(n, bits, &rng));
  index::PackedCodes query =
      index::PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
  const index::BatchDistanceFn fn =
      scalar ? index::GetBatchDistanceFn(index::KernelTier::kScalar)
             : index::GetBatchDistanceFn();
  std::vector<int32_t> dist(static_cast<size_t>(n));
  for (auto _ : state) {
    fn(query.code(0), corpus.code(0), n, corpus.words_per_code(),
       index::kNoThreshold, dist.data());
    benchmark::DoNotOptimize(dist.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * int64_t{n} *
                          corpus.words_per_code() * 8);
  state.SetLabel(scalar ? "scalar"
                        : index::KernelTierName(index::ActiveKernelTier()));
}
BENCHMARK(BM_BatchDistances)
    ->Args({100000, 64, 1})
    ->Args({100000, 64, 0})
    ->Args({100000, 128, 1})
    ->Args({100000, 128, 0})
    ->Args({100000, 1024, 1})
    ->Args({100000, 1024, 0});

void BM_BatchDistancesMin(benchmark::State& state) {
  // Fused distance+block-min kernel vs the unfused pair (plain kernel
  // followed by a separate min pass over the distance buffer) — the A/B
  // behind BatchScanOptions::fused_min. Same dispatched tier both ways.
  const int n = static_cast<int>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  const bool fused = state.range(2) != 0;
  Rng rng(23);
  index::PackedCodes corpus =
      index::PackedCodes::FromSignMatrix(RandomSignCodes(n, bits, &rng));
  index::PackedCodes query =
      index::PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
  const int words = corpus.words_per_code();
  const index::BatchDistanceMinFn fused_fn = index::GetBatchDistanceMinFn();
  const index::BatchDistanceFn plain_fn = index::GetBatchDistanceFn();
  std::vector<int32_t> dist(static_cast<size_t>(n));
  int32_t sink = 0;
  for (auto _ : state) {
    if (fused) {
      sink += fused_fn(query.code(0), corpus.code(0), n, words,
                       index::kNoThreshold, dist.data());
    } else {
      plain_fn(query.code(0), corpus.code(0), n, words, index::kNoThreshold,
               dist.data());
      int32_t best = dist[0];
      for (int i = 1; i < n; ++i) best = std::min(best, dist[i]);
      sink += best;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetBytesProcessed(state.iterations() * int64_t{n} * words * 8);
  state.SetLabel(std::string(fused ? "fused/" : "unfused/") +
                 index::KernelTierName(index::ActiveKernelTier()));
}
BENCHMARK(BM_BatchDistancesMin)
    ->Args({100000, 64, 0})
    ->Args({100000, 64, 1})
    ->Args({100000, 128, 0})
    ->Args({100000, 128, 1})
    ->Args({100000, 1024, 0})
    ->Args({100000, 1024, 1});

void BM_BatchTopK(benchmark::State& state) {
  // The full batched serving scan: query-blocked x code-blocked with
  // early abandon, dispatched kernel.
  const int n = static_cast<int>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  const int queries = static_cast<int>(state.range(2));
  Rng rng(22);
  index::LinearScanIndex scan(
      index::PackedCodes::FromSignMatrix(RandomSignCodes(n, bits, &rng)));
  index::PackedCodes batch =
      index::PackedCodes::FromSignMatrix(RandomSignCodes(queries, bits, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scan.TopKBatch(batch, 100));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * queries);
}
BENCHMARK(BM_BatchTopK)
    ->Args({100000, 64, 32})
    ->Args({100000, 128, 32})
    ->Args({10000, 128, 256});

void BM_MihRadiusQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int radius = static_cast<int>(state.range(1));
  Rng rng(2);
  index::MultiIndexHashTable mih(
      index::PackedCodes::FromSignMatrix(RandomSignCodes(n, 64, &rng)), 0);
  index::PackedCodes query =
      index::PackedCodes::FromSignMatrix(RandomSignCodes(1, 64, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mih.WithinRadius(query.code(0), radius));
  }
}
BENCHMARK(BM_MihRadiusQuery)
    ->Args({10000, 2})
    ->Args({10000, 6})
    ->Args({100000, 2});

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  linalg::Matrix a = linalg::Matrix::RandomNormal(n, n, &rng);
  linalg::Matrix b = linalg::Matrix::RandomNormal(n, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(128)->Arg(256)->Arg(512);

void BM_PackedGemm(benchmark::State& state) {
  // Packed-panel GEMM micro-kernel vs the pre-packing cache-blocked loop
  // at trainer shapes (m = batch, k = feature dim, n = code width — the
  // projection products that dominate a training step).
  const int m = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const int n = static_cast<int>(state.range(2));
  const bool packed = state.range(3) != 0;
  Rng rng(7);
  linalg::Matrix a = linalg::Matrix::RandomNormal(m, k, &rng);
  linalg::Matrix b = linalg::Matrix::RandomNormal(k, n, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packed ? linalg::MatMul(a, b)
                                    : linalg::MatMulBlocked(a, b));
  }
  state.SetItemsProcessed(state.iterations() * int64_t{m} * k * n);
  state.SetLabel(packed ? (linalg::PackedGemmAvailable() ? "packed/avx2"
                                                         : "packed/portable")
                        : "blocked");
}
BENCHMARK(BM_PackedGemm)
    ->Args({128, 3072, 512, 0})
    ->Args({128, 3072, 512, 1})
    ->Args({256, 256, 256, 0})
    ->Args({256, 256, 256, 1})
    ->Args({512, 512, 512, 0})
    ->Args({512, 512, 512, 1});

void BM_VlpScoring(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  data::SemanticWorld world(4);
  data::SyntheticOptions options;
  options.sizes = {n, n / 2, n / 10};
  Rng rng(5);
  const data::Dataset dataset = data::MakeCifar10Like(&world, options, &rng);
  const data::ConceptVocab vocab = data::MakeNusVocab(&world);
  const vlp::SimulatedVlpModel vlp(&world);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vlp.ScoreImagesAgainstConcepts(
        dataset.pixels, vocab.ids, vlp::PromptTemplate::kAPhotoOfThe));
  }
  state.SetItemsProcessed(state.iterations() * n * vocab.size());
}
BENCHMARK(BM_VlpScoring)->Arg(200)->Arg(1000);

void BM_UhscmBatchLoss(benchmark::State& state) {
  const int t = static_cast<int>(state.range(0));
  const int bits = static_cast<int>(state.range(1));
  Rng rng(6);
  linalg::Matrix z = linalg::Matrix::RandomNormal(t, bits, &rng);
  linalg::Matrix q(t, t);
  for (int i = 0; i < t; ++i) {
    q(i, i) = 1.0f;
    for (int j = i + 1; j < t; ++j) {
      q(i, j) = q(j, i) = static_cast<float>(rng.Uniform());
    }
  }
  core::UhscmLossOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::UhscmBatchLoss(z, q, options));
  }
  state.SetItemsProcessed(state.iterations() * t * t);
}
BENCHMARK(BM_UhscmBatchLoss)->Args({128, 64})->Args({128, 128});

}  // namespace
}  // namespace uhscm

// Custom main instead of BENCHMARK_MAIN(): unless the caller passed their
// own --benchmark_out, default to a machine-readable
// BENCH_micro_perf.json next to the console report so the perf
// trajectory is recorded on every run.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Exact flag only: a bare prefix test would also match
    // --benchmark_out_format and wrongly suppress the default.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0) {
      has_out = true;
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_perf.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
