// Regenerates Table 3: time consumption (preprocessing + training to
// convergence) of the deep methods and UHSCM on the three datasets.
//
// Paper reference (Table 3, minutes on the authors' GPU testbed):
// SSDH/GH/CIB/UHSCM are comparable (~20-36 min), BGAN ~2-4x more, and
// MLS3RDUH the most expensive (~115-133 min). Absolute numbers differ on
// a CPU simulator; the *ordering* is the reproduced claim: the GAN game
// (BGAN) and the manifold diffusion (MLS3RDUH) dominate.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/table_writer.h"

namespace uhscm::bench {
namespace {

int Main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  // Table 3 is bit-width independent in the paper (64 bits); use the
  // first requested width.
  const int bits = flags.bits.empty() ? 64 : flags.bits[0];

  std::printf("=== Table 3: time consumption in seconds (fit = "
              "preprocessing + training to convergence), %d bits ===\n",
              bits);

  std::vector<std::string> header = {"Method"};
  for (const std::string& dataset : flags.datasets) header.push_back(dataset);
  TableWriter table(header);

  const std::vector<std::string> methods = {"SSDH",     "GH",  "BGAN",
                                            "MLS3RDUH", "CIB", "UHSCM"};
  std::vector<std::vector<double>> seconds(
      methods.size(), std::vector<double>(flags.datasets.size(), 0.0));

  eval::RetrievalEvalOptions eval_options;
  eval_options.map_at = 1000;
  eval_options.topn_points = {};

  for (size_t d = 0; d < flags.datasets.size(); ++d) {
    BenchEnv env = MakeBenchEnv(flags.datasets[d], flags);
    for (size_t m = 0; m < methods.size(); ++m) {
      std::unique_ptr<baselines::HashingMethod> method;
      if (methods[m] == "UHSCM") {
        method = MakeUhscm(env, bits, flags.seed);
      } else {
        method = std::move(baselines::MakeBaseline(methods[m]).ValueOrDie());
      }
      MethodRun run =
          RunMethod(method.get(), env, bits, eval_options, flags.seed);
      seconds[m][d] = run.fit_seconds;
    }
  }
  for (size_t m = 0; m < methods.size(); ++m) {
    table.AddRow(methods[m], seconds[m], /*precision=*/2);
  }
  table.Print(std::cout);
  if (flags.csv) std::cout << table.ToCsv();
  return 0;
}

}  // namespace
}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
