// Regenerates Table 2: MAPs of UHSCM and its 14 ablation variants for
// different numbers of hash bits on the three image datasets.
//
// Rows (paper numbering):
//   1  UHSCM_coco       - MS-COCO 80 categories as the concept set
//   2  UHSCM_nus&coco   - union of the two vocabularies
//   3  UHSCM_IF         - CLIP image-feature cosine, no concept mining
//   4  UHSCM_P1         - prompt "the {}"
//   5  UHSCM_P2         - prompt "it contains the {}"
//   6  UHSCM_avg        - mean similarity over the three prompts
//   7  UHSCM_w/o_de     - no concept denoising
//   8-12 UHSCM_c20..c60 - k-means concept clustering instead of Eq. 5
//   13 UHSCM_w/o_MCL    - drop the modified contrastive loss
//   14 UHSCM_CL         - original CIB contrastive loss J_c instead
//   Ours UHSCM          - the full method
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "core/trainer.h"

namespace uhscm::bench {
namespace {

using ::uhscm::StrFormat;

struct Variant {
  std::string label;
  /// Mutates the config and/or selects a vocabulary.
  enum class Vocab { kNus, kCoco, kCombined } vocab = Vocab::kNus;
  core::SimilaritySource source = core::SimilaritySource::kDenoisedConcepts;
  core::ContrastiveMode contrastive = core::ContrastiveMode::kModified;
  vlp::PromptTemplate prompt = vlp::PromptTemplate::kAPhotoOfThe;
  int kmeans_clusters = 0;  // >0 selects the clustering source
};

std::vector<Variant> MakeVariants() {
  std::vector<Variant> variants;
  variants.push_back({"1 UHSCM_coco", Variant::Vocab::kCoco});
  variants.push_back({"2 UHSCM_nus&coco", Variant::Vocab::kCombined});
  {
    Variant v{"3 UHSCM_IF"};
    v.source = core::SimilaritySource::kImageFeatures;
    variants.push_back(v);
  }
  {
    Variant v{"4 UHSCM_P1"};
    v.prompt = vlp::PromptTemplate::kThe;
    variants.push_back(v);
  }
  {
    Variant v{"5 UHSCM_P2"};
    v.prompt = vlp::PromptTemplate::kItContainsThe;
    variants.push_back(v);
  }
  {
    Variant v{"6 UHSCM_avg"};
    v.source = core::SimilaritySource::kAveragePrompts;
    variants.push_back(v);
  }
  {
    Variant v{"7 UHSCM_w/o_de"};
    v.source = core::SimilaritySource::kRawConcepts;
    variants.push_back(v);
  }
  for (int clusters : {20, 30, 40, 50, 60}) {
    Variant v{StrFormat("%d UHSCM_c%d", 8 + (clusters - 20) / 10, clusters)};
    v.source = core::SimilaritySource::kKMeansClusters;
    v.kmeans_clusters = clusters;
    variants.push_back(v);
  }
  {
    Variant v{"13 UHSCM_w/o_MCL"};
    v.contrastive = core::ContrastiveMode::kNone;
    variants.push_back(v);
  }
  {
    Variant v{"14 UHSCM_CL"};
    v.contrastive = core::ContrastiveMode::kOriginal;
    variants.push_back(v);
  }
  variants.push_back({"Ours UHSCM"});
  return variants;
}

int Main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  std::printf("=== Table 2: MAPs of UHSCM and its ablation variants ===\n");

  for (const std::string& dataset : flags.datasets) {
    BenchEnv env = MakeBenchEnv(dataset, flags);
    std::printf("\n-- %s --\n", dataset.c_str());

    std::vector<std::string> header = {"Variant"};
    for (int bits : flags.bits) header.push_back(StrFormat("%d bits", bits));
    TableWriter table(header);

    eval::RetrievalEvalOptions eval_options;
    eval_options.map_at = 5000;
    eval_options.topn_points = {};

    for (const Variant& variant : MakeVariants()) {
      std::vector<double> row;
      for (int bits : flags.bits) {
        core::UhscmConfig config =
            BenchUhscmConfig(dataset, bits, flags.seed);
        config.similarity_source = variant.source;
        config.contrastive_mode = variant.contrastive;
        config.prompt = variant.prompt;
        if (variant.kmeans_clusters > 0) {
          config.kmeans_clusters = variant.kmeans_clusters;
        }
        const data::ConceptVocab& vocab =
            variant.vocab == Variant::Vocab::kCoco      ? env.coco_vocab
            : variant.vocab == Variant::Vocab::kCombined ? env.combined_vocab
                                                         : env.nus_vocab;
        baselines::UhscmMethod method(env.vlp.get(), vocab, config);
        MethodRun run =
            RunMethod(&method, env, bits, eval_options, flags.seed);
        row.push_back(run.eval.map);
      }
      table.AddRow(variant.label, row);
    }
    table.Print(std::cout);
    if (flags.csv) std::cout << table.ToCsv();
  }
  return 0;
}

}  // namespace
}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
