// fault_recovery — what a replica kill costs the serving pipeline, and
// what hedging buys back under an injected straggler.
//
// Phase A (kill -> respawn under load): 3 supervised replicas serve a
// sustained open-loop query stream; mid-run one replica is killed. The
// batches in flight on the corpse come back Unavailable and retry onto
// the survivors (no request fails), the supervisor respawns the replica
// (rebuild from the retained base snapshot + journal replay + coherence
// verify + atomic slot swap), and the QPS timeline records the dip and
// the return to steady state. Recovery time is read back from the
// pipeline.time_to_recovery_ns histogram the respawn path records, and
// the respawned replica is probed for byte-identity against a
// never-killed reference engine.
//
// Phase B (hedged vs unhedged tail, faults build only): one of two
// replicas stochastically stalls (replica.slow_batch, p=5%, ~10x the
// normal batch latency). The same request stream runs with hedging off
// and with a 30% hedge budget; first completion wins, so a batch stuck
// behind the injected stall is re-issued to the healthy replica after
// the hedge delay and the hedged arm's p99 must not exceed the
// unhedged arm's.
//
// Acceptance gates (armed at the default size on >= 4-core hosts):
//   * Phase A: zero failed requests across the kill, >= 1 supervised
//     respawn, a finite recorded recovery time, and byte-identical
//     post-recovery results.
//   * Phase B: hedged p99 <= unhedged p99.
// Emits BENCH_fault_recovery.json; exits 1 on a gate failure.
//
//   $ ./build/fault_recovery [--n=50000] [--bits=128] [--k=10]
//                            [--requests=4096] [--clients=4]
//                            [--seed=2023]
//                            [--json=BENCH_fault_recovery.json]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "index/packed_codes.h"
#include "obs/metrics.h"
#include "perf_util.h"
#include "serve/batcher.h"
#include "serve/fault.h"
#include "serve/query_engine.h"
#include "serve/replica_set.h"
#include "serve/router.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"

namespace uhscm::bench {
namespace {

struct Flags {
  int n = 50000;
  int bits = 128;
  int k = 10;
  int requests = 4096;
  int clients = 4;
  uint64_t seed = 2023;
  std::string json = "BENCH_fault_recovery.json";
};

Flags ParseFaultFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--n=")) {
      flags.n = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--bits=")) {
      flags.bits = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--k=")) {
      flags.k = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--requests=")) {
      flags.requests = std::max(64, std::atoi(arg.c_str() + 11));
    } else if (StartsWith(arg, "--clients=")) {
      flags.clients = std::max(1, std::atoi(arg.c_str() + 10));
    } else if (StartsWith(arg, "--seed=")) {
      flags.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (StartsWith(arg, "--json=")) {
      flags.json = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: fault_recovery [--n=N] [--bits=K] [--k=K] "
                   "[--requests=N] [--clients=C] [--seed=N] [--json=PATH]\n");
      std::exit(2);
    }
  }
  return flags;
}

/// Phase A outcome: the QPS timeline around the kill plus the recovery
/// accounting the replica set and registry kept.
struct KillRunResult {
  double qps_before = 0.0;  // steady state ahead of the kill
  double qps_dip = 0.0;     // worst 20ms bucket right after the kill
  double qps_after = 0.0;   // steady state at the end of the run
  double recovery_ms = -1.0;
  int64_t respawns = 0;
  int64_t retries = 0;
  int64_t failures = 0;
  std::vector<int64_t> timeline;  // completed requests per 20ms bucket
  int kill_bucket = 0;
};

constexpr int64_t kBucketMs = 20;

/// Sustained load with a mid-run kill: `clients` threads each pump
/// waves of requests until the deadline; the main thread buckets the
/// completion counter every 20ms, kills replica 1 at the 1/3 mark, and
/// lets the supervisor bring it back.
KillRunResult RunKillRecovery(const index::PackedCodes& corpus,
                              const index::PackedCodes& queries, int k,
                              int clients, int64_t duration_ms) {
  serve::ReplicaSetOptions options;
  options.replicas = 3;
  options.serving.index.num_shards = 4;
  options.serving.engine.cache_capacity = 0;
  options.supervise = true;
  options.supervise_interval_ms = 1;
  serve::ReplicaSet replica_set(corpus, options);
  serve::Router router(&replica_set, serve::RoutePolicy::kLeastLoaded);
  serve::BatcherOptions batcher_options;
  batcher_options.max_batch = 64;
  batcher_options.timeout_us = 500;
  serve::Batcher batcher(&router, batcher_options);

  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> failures{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng wave_rng(static_cast<uint64_t>(c) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<std::future<serve::SearchResponse>> futures;
        futures.reserve(128);
        for (int i = 0; i < 128; ++i) {
          const int q = static_cast<int>(
              wave_rng.UniformInt(static_cast<uint64_t>(queries.size())));
          futures.push_back(batcher.Submit(queries, q, k));
        }
        for (std::future<serve::SearchResponse>& future : futures) {
          if (future.get().status.ok()) {
            completed.fetch_add(1, std::memory_order_relaxed);
          } else {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // 20ms completion buckets; the kill lands at the 1/3 mark.
  KillRunResult result;
  const int buckets = static_cast<int>(duration_ms / kBucketMs);
  result.kill_bucket = buckets / 3;
  int64_t previous = 0;
  for (int b = 0; b < buckets; ++b) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kBucketMs));
    if (b == result.kill_bucket) replica_set.replica(1)->Kill();
    const int64_t now = completed.load(std::memory_order_relaxed);
    result.timeline.push_back(now - previous);
    previous = now;
  }
  stop.store(true);
  for (std::thread& thread : threads) thread.join();

  const auto bucket_qps = [](int64_t count) {
    return static_cast<double>(count) * 1000.0 / kBucketMs;
  };
  // Steady-state windows skip the first few warmup buckets and average;
  // the dip is the single worst bucket in the 300ms after the kill.
  int64_t before_sum = 0;
  int before_count = 0;
  for (int b = 2; b < result.kill_bucket; ++b) {
    before_sum += result.timeline[static_cast<size_t>(b)];
    ++before_count;
  }
  result.qps_before =
      before_count > 0 ? bucket_qps(before_sum / before_count) : 0.0;
  int64_t dip = result.timeline[static_cast<size_t>(result.kill_bucket)];
  const int dip_end = std::min(buckets, result.kill_bucket + 1 +
                                            static_cast<int>(300 / kBucketMs));
  for (int b = result.kill_bucket; b < dip_end; ++b) {
    dip = std::min(dip, result.timeline[static_cast<size_t>(b)]);
  }
  result.qps_dip = bucket_qps(dip);
  int64_t after_sum = 0;
  int after_count = 0;
  for (int b = std::max(result.kill_bucket + 1, buckets - 10); b < buckets;
       ++b) {
    after_sum += result.timeline[static_cast<size_t>(b)];
    ++after_count;
  }
  result.qps_after =
      after_count > 0 ? bucket_qps(after_sum / after_count) : 0.0;

  const serve::ServeStatsSnapshot stats = batcher.stats();
  result.retries = stats.retries;
  result.failures = failures.load();
  result.respawns = replica_set.respawns();
  const obs::HistogramSnapshot recovery =
      obs::MetricsRegistry::Global()
          .GetHistogram("pipeline.time_to_recovery_ns")
          ->Snapshot();
  if (!recovery.empty()) result.recovery_ms = recovery.mean() / 1e6;

  // Byte-identity probe: the respawned replica must answer exactly like
  // a reference engine that never saw a kill.
  batcher.Drain();
  replica_set.DrainAll();
  serve::ServingSnapshotOptions reference_options;
  reference_options.index.num_shards = 4;
  reference_options.engine.cache_capacity = 0;
  auto reference = serve::MakeQueryEngine(
      index::PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                       corpus.words()),
      reference_options);
  for (int q = 0; q < 32; ++q) {
    const auto expect = reference->SearchOne(queries.code(q), k);
    const auto got = replica_set.replica(1)->SearchOne(queries.code(q), k);
    if (expect.size() != got.size()) {
      std::fprintf(stderr, "FATAL: post-recovery result size diverged\n");
      std::exit(1);
    }
    for (size_t i = 0; i < expect.size(); ++i) {
      if (expect[i].id != got[i].id ||
          expect[i].distance != got[i].distance) {
        std::fprintf(stderr,
                     "FATAL: post-recovery results not byte-identical "
                     "(query %d rank %zu)\n",
                     q, i);
        std::exit(1);
      }
    }
  }
  return result;
}

struct HedgeRunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int64_t hedges = 0;
  int64_t hedge_wins = 0;
};

/// One arm of the straggler A/B: 2 replicas, replica 0 armed to stall
/// 5% of its batches, the given hedge budget (0 = the unhedged arm).
HedgeRunResult RunStragglerArm(const index::PackedCodes& corpus,
                               const index::PackedCodes& queries, int k,
                               int clients, uint64_t seed,
                               double hedge_budget) {
  serve::FaultInjector& injector = serve::FaultInjector::Global();
  injector.Reset();
  injector.Seed(seed);
  serve::FaultSpec stall;
  stall.probability = 0.05;
  stall.delay_ns = 20LL * 1000 * 1000;  // ~10x a healthy batch
  injector.Arm(std::string(serve::kFaultSlowBatch) + "#0", stall);

  serve::ReplicaSetOptions options;
  options.replicas = 2;
  options.serving.index.num_shards = 4;
  options.serving.engine.cache_capacity = 0;
  serve::ReplicaSet replica_set(corpus, options);
  serve::Router router(&replica_set, serve::RoutePolicy::kLeastLoaded);
  serve::BatcherOptions batcher_options;
  batcher_options.max_batch = 64;
  batcher_options.timeout_us = 500;
  batcher_options.hedge_budget = hedge_budget;
  // Fixed delay, not the p99 auto-derivation: both arms must differ in
  // the budget alone. 5ms sits above a healthy batch and far below the
  // injected 20ms stall.
  batcher_options.hedge_delay_us = 5000;
  serve::Batcher batcher(&router, batcher_options);

  std::atomic<int64_t> failures{0};
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::future<serve::SearchResponse>> futures;
      for (int q = c; q < queries.size(); q += clients) {
        futures.push_back(batcher.Submit(queries, q, k));
      }
      for (std::future<serve::SearchResponse>& future : futures) {
        if (!future.get().status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds = wall.ElapsedSeconds();
  if (failures.load() != 0) {
    std::fprintf(stderr, "FATAL: %lld straggler-arm requests failed\n",
                 static_cast<long long>(failures.load()));
    std::exit(1);
  }

  const serve::ServeStatsSnapshot stats = batcher.stats();
  HedgeRunResult result;
  result.qps = seconds > 0.0 ? queries.size() / seconds : 0.0;
  result.p50_ms = stats.latency_p50_ms;
  result.p99_ms = stats.latency_p99_ms;
  result.hedges = stats.hedges;
  result.hedge_wins = stats.hedge_wins;
  batcher.Drain();
  replica_set.DrainAll();
  injector.Reset();
  return result;
}

}  // namespace

int Main(int argc, char** argv) {
  const Flags flags = ParseFaultFlags(argc, argv);
  Rng rng(flags.seed);
  const index::PackedCodes corpus = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(flags.n, flags.bits, &rng));
  const index::PackedCodes queries = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(flags.requests, flags.bits, &rng));
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::printf(
      "corpus n=%d bits=%d | %d requests, k=%d, %d clients, "
      "%d hardware threads, faults %s\n\n",
      flags.n, flags.bits, flags.requests, flags.k, flags.clients, hw,
      serve::kFaultsCompiledIn ? "compiled in" : "compiled OUT");

  // ---- Phase A: kill -> supervised respawn under load ----
  const int64_t duration_ms = 1200;
  const KillRunResult kill = RunKillRecovery(corpus, queries, flags.k,
                                             flags.clients, duration_ms);
  TableWriter kill_table({"phase", "qps_before", "qps_dip", "qps_after",
                          "recovery_ms", "respawns", "retries", "failures"});
  kill_table.AddRow({"kill-respawn", Fmt(kill.qps_before), Fmt(kill.qps_dip),
                     Fmt(kill.qps_after), Fmt(kill.recovery_ms, "%.3f"),
                     std::to_string(kill.respawns),
                     std::to_string(kill.retries),
                     std::to_string(kill.failures)});
  kill_table.Print(std::cout);
  std::printf("post-recovery results byte-identical to the never-killed "
              "reference\n\n");

  // ---- Phase B: hedged vs unhedged p99 under an injected straggler ----
  HedgeRunResult unhedged, hedged;
  if (serve::kFaultsCompiledIn) {
    unhedged = RunStragglerArm(corpus, queries, flags.k, flags.clients,
                               flags.seed, /*hedge_budget=*/0.0);
    hedged = RunStragglerArm(corpus, queries, flags.k, flags.clients,
                             flags.seed, /*hedge_budget=*/0.3);
    TableWriter hedge_table(
        {"arm", "qps", "p50_ms", "p99_ms", "hedges", "hedge_wins"});
    hedge_table.AddRow({"unhedged", Fmt(unhedged.qps),
                        Fmt(unhedged.p50_ms, "%.3f"),
                        Fmt(unhedged.p99_ms, "%.3f"),
                        std::to_string(unhedged.hedges),
                        std::to_string(unhedged.hedge_wins)});
    hedge_table.AddRow({"hedged", Fmt(hedged.qps), Fmt(hedged.p50_ms, "%.3f"),
                        Fmt(hedged.p99_ms, "%.3f"),
                        std::to_string(hedged.hedges),
                        std::to_string(hedged.hedge_wins)});
    hedge_table.Print(std::cout);
  } else {
    std::printf("[phase B skipped: fault injection compiled out]\n");
  }

  if (!flags.json.empty()) {
    std::FILE* f = std::fopen(flags.json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr,
                   "WARNING: cannot write %s — perf trajectory not "
                   "recorded\n",
                   flags.json.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"fault_recovery\",\n");
      WriteJsonRunMeta(f);
      std::fprintf(f,
                   "  \"n\": %d, \"bits\": %d, \"k\": %d, \"requests\": %d, "
                   "\"clients\": %d, \"hw\": %d, \"faults_compiled_in\": %s,\n",
                   flags.n, flags.bits, flags.k, flags.requests, flags.clients,
                   hw, serve::kFaultsCompiledIn ? "true" : "false");
      std::fprintf(f,
                   "  \"kill_recovery\": {\"qps_before\": %.1f, "
                   "\"qps_dip\": %.1f, \"qps_after\": %.1f, "
                   "\"recovery_ms\": %.3f, \"respawns\": %lld, "
                   "\"retries\": %lld, \"failures\": %lld, "
                   "\"kill_bucket\": %d, \"bucket_ms\": %lld,\n",
                   kill.qps_before, kill.qps_dip, kill.qps_after,
                   kill.recovery_ms, static_cast<long long>(kill.respawns),
                   static_cast<long long>(kill.retries),
                   static_cast<long long>(kill.failures), kill.kill_bucket,
                   static_cast<long long>(kBucketMs));
      std::fprintf(f, "    \"timeline\": [");
      for (size_t b = 0; b < kill.timeline.size(); ++b) {
        std::fprintf(f, "%s%lld", b == 0 ? "" : ", ",
                     static_cast<long long>(kill.timeline[b]));
      }
      std::fprintf(f, "]},\n");
      std::fprintf(f,
                   "  \"straggler_hedging\": {\"unhedged_p50_ms\": %.4f, "
                   "\"unhedged_p99_ms\": %.4f, \"hedged_p50_ms\": %.4f, "
                   "\"hedged_p99_ms\": %.4f, \"hedges\": %lld, "
                   "\"hedge_wins\": %lld}\n",
                   unhedged.p50_ms, unhedged.p99_ms, hedged.p50_ms,
                   hedged.p99_ms, static_cast<long long>(hedged.hedges),
                   static_cast<long long>(hedged.hedge_wins));
      std::fprintf(f, "}\n");
      std::fclose(f);
      std::printf("\nwrote %s\n", flags.json.c_str());
    }
  }

  // The gates only mean something when the host can overlap 3 replicas
  // and the run is long enough for steady-state windows; tiny smoke runs
  // (CI sanitizer job, laptops) skip them.
  const bool gate_armed = flags.n >= 50000 && flags.requests >= 2048 &&
                          hw >= 4;
  if (!gate_armed) {
    std::printf("[acceptance gates not armed at this size]\n");
    return 0;
  }
  if (kill.failures != 0) {
    std::printf("FAIL: %lld requests failed across the kill — retries must "
                "absorb a single replica loss\n",
                static_cast<long long>(kill.failures));
    return 1;
  }
  if (kill.respawns < 1) {
    std::printf("FAIL: the supervisor never respawned the killed replica\n");
    return 1;
  }
  if (kill.recovery_ms < 0.0) {
    std::printf("FAIL: no recovery time recorded in "
                "pipeline.time_to_recovery_ns\n");
    return 1;
  }
  if (serve::kFaultsCompiledIn) {
    if (hedged.p99_ms > unhedged.p99_ms) {
      std::printf("FAIL: hedged p99 %.3f ms exceeds unhedged p99 %.3f ms "
                  "under the injected straggler\n",
                  hedged.p99_ms, unhedged.p99_ms);
      return 1;
    }
    if (hedged.hedges < 1) {
      std::printf("FAIL: the hedged arm never issued a hedge\n");
      return 1;
    }
  }
  std::printf("PASS: kill absorbed (recovery %.3f ms, dip %.1f -> %.1f QPS)"
              "%s\n",
              kill.recovery_ms, kill.qps_dip, kill.qps_after,
              serve::kFaultsCompiledIn
                  ? ", hedging holds the straggler p99"
                  : "");
  return 0;
}

}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
