#ifndef UHSCM_BENCH_BENCH_UTIL_H_
#define UHSCM_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/hashing_method.h"
#include "baselines/registry.h"
#include "common/rng.h"
#include "data/concept_vocab.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "eval/retrieval_eval.h"
#include "features/cnn_features.h"
#include "vlp/simulated_vlp.h"

namespace uhscm::bench {

/// Shared command-line flags of the table/figure benches.
///
///   --scale=<double>     multiplies every dataset size (default 1.0 ==
///                        db ~1000 / train ~400 / query ~120 per dataset)
///   --seed=<uint64>      experiment seed
///   --datasets=a,b,c     subset of {cifar,nuswide,flickr}
///   --bits=a,b,c         subset of {32,64,96,128}
///   --csv                additionally print the table as CSV
struct BenchFlags {
  double scale = 1.0;
  uint64_t seed = 2023;
  std::vector<std::string> datasets = {"cifar", "nuswide", "flickr"};
  std::vector<int> bits = {32, 64, 96, 128};
  bool csv = false;
};

/// Parses the flags above; unknown flags abort with a usage message.
BenchFlags ParseFlags(int argc, char** argv);

/// One fully wired dataset environment at bench scale.
struct BenchEnv {
  std::string dataset_name;
  std::unique_ptr<data::SemanticWorld> world;
  data::Dataset dataset;
  data::ConceptVocab nus_vocab;
  data::ConceptVocab coco_vocab;
  data::ConceptVocab combined_vocab;
  std::unique_ptr<vlp::SimulatedVlpModel> vlp;
  std::unique_ptr<features::SimulatedCnnFeatureExtractor> extractor;

  /// Cached per-split pixel matrices.
  linalg::Matrix train_pixels;
  linalg::Matrix database_pixels;
  linalg::Matrix query_pixels;
};

/// Builds the environment for one dataset ("cifar"/"nuswide"/"flickr").
/// At scale 1.0 the split is ~1000 database / ~400 train / ~120 query —
/// the paper's §4.1 proportions at laptop scale (see DESIGN.md).
BenchEnv MakeBenchEnv(const std::string& dataset_name,
                      const BenchFlags& flags);

/// Prepares the TrainContext for a method on this environment.
baselines::TrainContext MakeTrainContext(const BenchEnv& env, int bits,
                                         uint64_t seed);

/// Fits a method and evaluates the full retrieval protocol.
struct MethodRun {
  eval::RetrievalEvalResult eval;
  double fit_seconds = 0.0;
  double encode_seconds = 0.0;
  /// Database/query codes, retained for benches that post-process them
  /// (t-SNE, top-10 panels).
  linalg::Matrix database_codes;
  linalg::Matrix query_codes;
};
MethodRun RunMethod(baselines::HashingMethod* method, const BenchEnv& env,
                    int bits, const eval::RetrievalEvalOptions& eval_options,
                    uint64_t seed);

/// The UHSCM configuration used for this dataset at bench scale (paper
/// hyper-parameters + bench-scale epochs/batch).
core::UhscmConfig BenchUhscmConfig(const std::string& dataset_name, int bits,
                                   uint64_t seed);

/// Builds the full UHSCM method bound to this environment's VLP + the 81
/// NUS-WIDE concepts (the paper's default vocabulary).
std::unique_ptr<baselines::UhscmMethod> MakeUhscm(const BenchEnv& env,
                                                  int bits, uint64_t seed);

}  // namespace uhscm::bench

#endif  // UHSCM_BENCH_BENCH_UTIL_H_
