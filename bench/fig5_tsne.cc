// Regenerates Figure 5: t-SNE visualization of 64-bit database codes on
// the CIFAR-like dataset for UHSCM vs. CIB, MLS3RDUH and BGAN.
//
// The paper's figure is qualitative ("UHSCM shows a clearer structure,
// clusters separated"). This bench (a) writes each method's 2-D
// embedding to fig5_<method>.csv (x, y, class) for plotting, and (b)
// prints the mean silhouette of the embedding under the true classes —
// the machine-checkable version of "clusters are separated". Expected
// ordering: UHSCM highest.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "eval/metrics.h"
#include "eval/tsne.h"

namespace uhscm::bench {
namespace {

using ::uhscm::StrFormat;

int Main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  const int bits = 64;

  BenchEnv env = MakeBenchEnv("cifar", flags);
  // Embed a class-stratified sample of the database to keep t-SNE O(n^2)
  // affordable.
  const int sample_target = 600;
  const auto& db = env.dataset.split.database;
  std::vector<int> sample_rows;  // positions into the database split
  const int stride =
      std::max(1, static_cast<int>(db.size()) / sample_target);
  for (size_t i = 0; i < db.size(); i += static_cast<size_t>(stride)) {
    sample_rows.push_back(static_cast<int>(i));
  }
  const std::vector<int> primary = data::PrimaryClassIndex(env.dataset);
  std::vector<int> sample_labels;
  for (int pos : sample_rows) {
    sample_labels.push_back(primary[static_cast<size_t>(db[static_cast<size_t>(pos)])]);
  }

  std::printf("=== Figure 5: t-SNE of 64-bit database codes (cifar), "
              "sample n=%zu ===\n",
              sample_rows.size());
  TableWriter table({"Method", "silhouette(by true class)"});

  eval::RetrievalEvalOptions eval_options;
  eval_options.map_at = 100;
  eval_options.topn_points = {};

  for (const std::string& name : {std::string("UHSCM"), std::string("CIB"),
                                  std::string("MLS3RDUH"),
                                  std::string("BGAN")}) {
    std::unique_ptr<baselines::HashingMethod> method;
    if (name == "UHSCM") {
      method = MakeUhscm(env, bits, flags.seed);
    } else {
      method = std::move(baselines::MakeBaseline(name).ValueOrDie());
    }
    MethodRun run = RunMethod(method.get(), env, bits, eval_options, flags.seed);

    const linalg::Matrix sample_codes =
        run.database_codes.SelectRows(sample_rows);
    eval::TsneOptions tsne_options;
    tsne_options.perplexity = 30.0;
    tsne_options.iterations = 300;
    Rng rng(flags.seed + 5);
    Result<linalg::Matrix> embedding =
        eval::RunTsne(sample_codes, tsne_options, &rng);
    UHSCM_CHECK(embedding.ok(), embedding.status().ToString().c_str());

    std::vector<float> flat(embedding->data(),
                            embedding->data() + embedding->size());
    const double silhouette =
        eval::MeanSilhouette(flat, 2, sample_labels);
    table.AddRow(name, {silhouette});

    const std::string path = StrFormat("fig5_%s.csv", name.c_str());
    std::ofstream out(path);
    out << "x,y,class\n";
    for (int i = 0; i < embedding->rows(); ++i) {
      out << (*embedding)(i, 0) << ',' << (*embedding)(i, 1) << ','
          << sample_labels[static_cast<size_t>(i)] << '\n';
    }
    std::printf("wrote %s\n", path.c_str());
  }
  table.Print(std::cout);
  if (flags.csv) std::cout << table.ToCsv();
  return 0;
}

}  // namespace
}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
