// async_serve — offered load x replicas x (B, T) sweep of the async
// request pipeline against the caller-batched synchronous baseline.
//
// The serving story this bench pins down: production callers arrive with
// *their* batch shape — a handful of queries per request — and the
// synchronous path scans the corpus at that shape. The pipeline admits
// the same per-request queries into a bounded queue, re-batches them
// adaptively (flush at B queries or T microseconds, whichever first),
// and routes each flush to the least-loaded of N engine replicas, so the
// SIMD batch scan runs at the shape the *load* supports, not the shape
// any one caller happened to send.
//
// Baseline: one engine (all hardware threads) driven by one closed-loop
// caller issuing synchronous Search calls of `--request-size` queries —
// exactly the pre-pipeline `uhscm_cli serve` replay loop, where batch
// shape was whatever the caller happened to send and the engine idled
// between calls. Context rows show the same caller batching generously
// (32) and `--clients` concurrent caller threads.
//
// Acceptance gate (armed at the default size on >= 4-core hosts): the
// best pipeline configuration with >= 2 replicas must reach >= 1.5x the
// single-caller caller-batched baseline QPS at saturation, with
// end-to-end p99 staying bounded. Emits BENCH_async_serve.json.
//
//   $ ./build/async_serve [--n=100000] [--bits=128] [--k=10]
//                         [--requests=2048] [--request-size=1]
//                         [--clients=4] [--seed=2023]
//                         [--json=BENCH_async_serve.json]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "index/packed_codes.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perf_util.h"
#include "serve/batcher.h"
#include "serve/query_engine.h"
#include "serve/replica_set.h"
#include "serve/router.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"

namespace uhscm::bench {
namespace {

struct Flags {
  int n = 100000;
  int bits = 128;
  int k = 10;
  int requests = 2048;
  int request_size = 1;
  int clients = 4;
  uint64_t seed = 2023;
  std::string json = "BENCH_async_serve.json";
};

Flags ParseAsyncFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--n=")) {
      flags.n = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--bits=")) {
      flags.bits = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--k=")) {
      flags.k = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--requests=")) {
      flags.requests = std::atoi(arg.c_str() + 11);
    } else if (StartsWith(arg, "--request-size=")) {
      flags.request_size = std::max(1, std::atoi(arg.c_str() + 15));
    } else if (StartsWith(arg, "--clients=")) {
      flags.clients = std::max(1, std::atoi(arg.c_str() + 10));
    } else if (StartsWith(arg, "--seed=")) {
      flags.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (StartsWith(arg, "--json=")) {
      flags.json = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: async_serve [--n=N] [--bits=K] [--k=K] "
                   "[--requests=N] [--request-size=Q] [--clients=C] "
                   "[--seed=N] [--json=PATH]\n");
      std::exit(2);
    }
  }
  return flags;
}

struct RunResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double tiq_p99_ms = 0.0;
  int64_t by_size = 0;
  int64_t by_timeout = 0;
};

/// Caller-batched baseline: `clients` closed-loop threads, each issuing
/// synchronous Search calls of request_size queries against one shared
/// engine — the pre-pipeline serving model.
RunResult RunCallerBatched(const index::PackedCodes& corpus,
                           const index::PackedCodes& queries, int k,
                           int request_size, int clients) {
  serve::ServingSnapshotOptions options;
  options.index.num_shards = 4;
  options.engine.cache_capacity = 0;  // measure search, not the LRU
  auto engine = serve::MakeQueryEngine(
      index::PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                       corpus.words()),
      options);
  const std::vector<index::PackedCodes> request_batches =
      serve::SliceBatches(queries, request_size);

  std::vector<std::vector<double>> latencies(
      static_cast<size_t>(clients));
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (size_t b = static_cast<size_t>(c); b < request_batches.size();
           b += static_cast<size_t>(clients)) {
        Stopwatch watch;
        engine->Search(request_batches[b], k);
        latencies[static_cast<size_t>(c)].push_back(watch.ElapsedMillis());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const std::vector<double>& per_client : latencies) {
    all.insert(all.end(), per_client.begin(), per_client.end());
  }
  RunResult result;
  result.qps = seconds > 0.0 ? queries.size() / seconds : 0.0;
  result.p99_ms = serve::Percentile(all, 99.0);
  result.p50_ms = serve::Percentile(std::move(all), 50.0);
  return result;
}

/// Pipeline run at saturation: the same clients submit their requests'
/// queries one by one into the batcher (open loop, bounded by the
/// admission queue's backpressure) and then wait for every future.
RunResult RunPipeline(const index::PackedCodes& corpus,
                      const index::PackedCodes& queries, int k, int replicas,
                      int max_batch, int64_t timeout_us, int clients) {
  serve::ReplicaSetOptions options;
  options.replicas = replicas;
  options.serving.index.num_shards = 4;
  options.serving.engine.cache_capacity = 0;
  serve::ReplicaSet replica_set(corpus, options);
  serve::Router router(&replica_set, serve::RoutePolicy::kLeastLoaded);
  serve::BatcherOptions batcher_options;
  batcher_options.max_batch = max_batch;
  batcher_options.timeout_us = timeout_us;
  serve::Batcher batcher(&router, batcher_options);

  std::atomic<int> failures{0};
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::future<serve::SearchResponse>> futures;
      for (int q = c; q < queries.size(); q += clients) {
        futures.push_back(batcher.Submit(queries, q, k));
      }
      for (std::future<serve::SearchResponse>& future : futures) {
        if (!future.get().status.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double seconds = wall.ElapsedSeconds();
  if (failures.load() != 0) {
    std::fprintf(stderr, "FATAL: %d pipeline requests failed\n",
                 failures.load());
    std::exit(1);
  }

  const serve::ServeStatsSnapshot stats = batcher.stats();
  RunResult result;
  result.qps = seconds > 0.0 ? queries.size() / seconds : 0.0;
  result.p50_ms = stats.latency_p50_ms;
  result.p99_ms = stats.latency_p99_ms;
  result.tiq_p99_ms = stats.time_in_queue_p99_ms;
  result.by_size = stats.batches_flushed_by_size;
  result.by_timeout = stats.batches_flushed_by_timeout;
  batcher.Drain();
  return result;
}

}  // namespace

int Main(int argc, char** argv) {
  const Flags flags = ParseAsyncFlags(argc, argv);
  Rng rng(flags.seed);
  const index::PackedCodes corpus = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(flags.n, flags.bits, &rng));
  const int total_queries = flags.requests * flags.request_size;
  const index::PackedCodes queries = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(total_queries, flags.bits, &rng));
  const int hw =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  std::printf(
      "corpus n=%d bits=%d | %d requests x %d queries (%d total), k=%d, "
      "%d clients, %d hardware threads\n\n",
      flags.n, flags.bits, flags.requests, flags.request_size, total_queries,
      flags.k, flags.clients, hw);

  TableWriter table({"config", "replicas", "B", "T_us", "qps", "p50_ms",
                     "p99_ms", "tiq_p99_ms", "by_size", "by_timeout",
                     "speedup"});
  struct JsonRow {
    std::string config;
    int replicas, max_batch;
    int64_t timeout_us;
    RunResult result;
    double speedup;
  };
  std::vector<JsonRow> json_rows;
  auto record = [&](const std::string& config, int replicas, int max_batch,
                    int64_t timeout_us, const RunResult& result,
                    double speedup) {
    table.AddRow({config, std::to_string(replicas),
                  std::to_string(max_batch), std::to_string(timeout_us),
                  Fmt(result.qps), Fmt(result.p50_ms, "%.3f"),
                  Fmt(result.p99_ms, "%.3f"), Fmt(result.tiq_p99_ms, "%.3f"),
                  std::to_string(result.by_size),
                  std::to_string(result.by_timeout), Fmt(speedup, "%.2f")});
    json_rows.push_back(
        {config, replicas, max_batch, timeout_us, result, speedup});
  };

  // The gate's reference: the pre-pipeline serving model — one
  // synchronous caller, batching at its own request shape.
  const RunResult baseline = RunCallerBatched(corpus, queries, flags.k,
                                              flags.request_size,
                                              /*clients=*/1);
  record("caller-batched", 1, flags.request_size, 0, baseline, 1.0);
  // Context rows: a caller who happens to batch generously, and several
  // concurrent callers sharing the one engine.
  const RunResult generous =
      RunCallerBatched(corpus, queries, flags.k, 32, /*clients=*/1);
  record("caller-batched", 1, 32, 0, generous, generous.qps / baseline.qps);
  const RunResult multi_caller = RunCallerBatched(
      corpus, queries, flags.k, flags.request_size, flags.clients);
  record("caller-batched-mt", 1, flags.request_size, 0, multi_caller,
         multi_caller.qps / baseline.qps);

  // Pipeline sweep. Replica counts are capped by the hardware: an
  // oversubscribed replica adds dispatch threads without adding cores.
  std::vector<int> replica_counts{1, 2};
  if (hw >= 8) replica_counts.push_back(4);
  double best_replicated_qps = 0.0;
  RunResult best_replicated;
  int best_replicas = 0, best_max_batch = 0;
  for (int replicas : replica_counts) {
    for (const auto& [max_batch, timeout_us] :
         std::vector<std::pair<int, int64_t>>{
             {16, 200}, {64, 500}, {256, 2000}}) {
      const RunResult result =
          RunPipeline(corpus, queries, flags.k, replicas, max_batch,
                      timeout_us, flags.clients);
      const double speedup = result.qps / baseline.qps;
      record("pipeline", replicas, max_batch, timeout_us, result, speedup);
      if (replicas >= 2 && result.qps > best_replicated_qps) {
        best_replicated_qps = result.qps;
        best_replicated = result;
        best_replicas = replicas;
        best_max_batch = max_batch;
      }
    }
  }
  table.Print(std::cout);

  // Observability overhead A/B: the same caller-batched replay with the
  // layer runtime-disabled vs enabled-but-unsampled (sampling off is the
  // production default). Interleaved best-of-3 so thermal / scheduler
  // drift hits both arms alike; the gate below requires the enabled arm
  // to keep >= 99% of the disabled arm's QPS.
  double obs_disabled_qps = 0.0;
  double obs_enabled_qps = 0.0;
  obs::TraceRecorder::Global().SetSampleEvery(0);
  for (int rep = 0; rep < 3; ++rep) {
    obs::SetRuntimeEnabled(false);
    obs_disabled_qps = std::max(
        obs_disabled_qps, RunCallerBatched(corpus, queries, flags.k,
                                           flags.request_size, /*clients=*/1)
                              .qps);
    obs::SetRuntimeEnabled(true);
    obs_enabled_qps = std::max(
        obs_enabled_qps, RunCallerBatched(corpus, queries, flags.k,
                                          flags.request_size, /*clients=*/1)
                             .qps);
  }
  const double obs_overhead_ratio =
      obs_disabled_qps > 0.0 ? obs_enabled_qps / obs_disabled_qps : 1.0;
  std::printf("\nobservability overhead (enabled-unsampled vs disabled): "
              "%.1f vs %.1f QPS (ratio %.4f)\n",
              obs_enabled_qps, obs_disabled_qps, obs_overhead_ratio);

  // Untimed instrumented pass: one pipeline run with every request
  // sampled fills the stage.*_ns histograms for the JSON breakdown.
  {
    obs::TraceRecorder::Global().SetSampleEvery(1);
    RunPipeline(corpus, queries, flags.k, /*replicas=*/hw >= 4 ? 2 : 1,
                /*max_batch=*/64, /*timeout_us=*/500, flags.clients);
    obs::TraceRecorder::Global().SetSampleEvery(0);
  }

  if (!flags.json.empty()) {
    std::FILE* f = std::fopen(flags.json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr,
                   "WARNING: cannot write %s — perf trajectory not "
                   "recorded\n",
                   flags.json.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"async_serve\",\n");
      WriteJsonRunMeta(f);
      WriteJsonStageBreakdown(f);
      std::fprintf(f,
                   "  \"obs_overhead\": {\"disabled_qps\": %.1f, "
                   "\"enabled_qps\": %.1f, \"ratio\": %.4f},\n",
                   obs_disabled_qps, obs_enabled_qps, obs_overhead_ratio);
      std::fprintf(f,
                   "  \"n\": %d, \"bits\": %d, \"k\": %d, \"requests\": %d, "
                   "\"request_size\": %d, \"clients\": %d, \"hw\": %d,\n",
                   flags.n, flags.bits, flags.k, flags.requests,
                   flags.request_size, flags.clients, hw);
      std::fprintf(f, "  \"rows\": [\n");
      for (size_t i = 0; i < json_rows.size(); ++i) {
        const JsonRow& r = json_rows[i];
        std::fprintf(
            f,
            "    {\"config\": \"%s\", \"replicas\": %d, \"B\": %d, "
            "\"T_us\": %lld, \"qps\": %.1f, \"p50_ms\": %.4f, "
            "\"p99_ms\": %.4f, \"tiq_p99_ms\": %.4f, \"by_size\": %lld, "
            "\"by_timeout\": %lld, \"speedup\": %.3f}%s\n",
            r.config.c_str(), r.replicas, r.max_batch,
            static_cast<long long>(r.timeout_us), r.result.qps,
            r.result.p50_ms, r.result.p99_ms, r.result.tiq_p99_ms,
            static_cast<long long>(r.result.by_size),
            static_cast<long long>(r.result.by_timeout), r.speedup,
            i + 1 < json_rows.size() ? "," : "");
      }
      std::fprintf(f, "  ]\n}\n");
      std::fclose(f);
      std::printf("\nwrote %s\n", flags.json.c_str());
    }
  }

  const double speedup = best_replicated_qps / baseline.qps;
  std::printf("\nbest replicated pipeline: %.1f QPS (%.2fx the "
              "caller-batched baseline's %.1f), p99 %.3f ms vs baseline "
              "%.3f ms\n",
              best_replicated_qps, speedup, baseline.qps,
              best_replicated.p99_ms, baseline.p99_ms);

  // The 1.5x bar only means something at a size where the batcher can
  // actually form large batches and the host has cores to overlap
  // replicas; tiny smoke runs (CI sanitizer job, laptops) skip it.
  const bool gate_armed =
      flags.n >= 50000 && total_queries >= 2048 && hw >= 4;
  if (!gate_armed) {
    std::printf("[acceptance gate not armed at this size]\n");
    return 0;
  }
  // Observability gate: enabled-but-unsampled must cost <= 1% QPS on the
  // hot sync path. Armed with the main gate — the same "too small to
  // measure" caveat applies, and below ~50k rows per-run noise exceeds
  // the 1% band being tested.
  if (obs_overhead_ratio < 0.99) {
    std::printf("FAIL: observability layer costs %.1f%% QPS when enabled "
                "but unsampled (budget: 1%%)\n",
                (1.0 - obs_overhead_ratio) * 100.0);
    return 1;
  }
  if (speedup < 1.5) {
    std::printf("FAIL: replicated pipeline below the 1.5x QPS acceptance "
                "bar\n");
    return 1;
  }
  // "Bounded p99" means bounded by the backpressure design: at
  // saturation a request waits at most the full admission queue plus the
  // in-flight batches ahead of it, so allow 3x that drain time (or a
  // 250 ms floor for timer noise). Unbounded queues would blow well
  // past this; a healthy bounded pipeline sits comfortably inside it.
  const double queue_entries =
      8.0 * best_max_batch * best_replicas +
      2.0 * best_replicas * best_max_batch;
  const double p99_bound =
      std::max(250.0, 3000.0 * queue_entries / best_replicated.qps);
  if (best_replicated.p99_ms > p99_bound) {
    std::printf("FAIL: pipeline p99 %.3f ms exceeds the bounded-latency "
                "bar (%.3f ms)\n",
                best_replicated.p99_ms, p99_bound);
    return 1;
  }
  std::printf("PASS: >= 1.5x QPS at saturation with bounded p99\n");
  return 0;
}

}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
