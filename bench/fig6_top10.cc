// Regenerates Figure 6: top-10 retrieved results on the CIFAR-like
// dataset (64 bits) for UHSCM, CIB, MLS3RDUH and BGAN.
//
// The paper shows image grids with relevant results framed green and
// irrelevant framed red, concluding UHSCM has the fewest faults. This
// bench prints, for each of 10 fixed queries, the retrieved database
// ids with a +/- relevance flag, plus the per-method total fault count
// (the quantitative content of the figure).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "index/linear_scan.h"
#include "index/packed_codes.h"

namespace uhscm::bench {
namespace {

using ::uhscm::StrFormat;

int Main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  const int bits = 64;
  const int kQueries = 10;
  const int kTop = 10;

  BenchEnv env = MakeBenchEnv("cifar", flags);
  std::printf("=== Figure 6: top-%d retrieval, cifar @ %d bits "
              "(+ relevant / - irrelevant) ===\n",
              kTop, bits);

  eval::RetrievalEvalOptions eval_options;
  eval_options.map_at = 100;
  eval_options.topn_points = {};

  TableWriter faults({"Method", "faults(out of 100)"});
  for (const std::string& name : {std::string("UHSCM"), std::string("CIB"),
                                  std::string("MLS3RDUH"),
                                  std::string("BGAN")}) {
    std::unique_ptr<baselines::HashingMethod> method;
    if (name == "UHSCM") {
      method = MakeUhscm(env, bits, flags.seed);
    } else {
      method = std::move(baselines::MakeBaseline(name).ValueOrDie());
    }
    MethodRun run =
        RunMethod(method.get(), env, bits, eval_options, flags.seed);

    index::LinearScanIndex scan(
        index::PackedCodes::FromSignMatrix(run.database_codes));
    index::PackedCodes packed_q =
        index::PackedCodes::FromSignMatrix(run.query_codes);

    std::printf("\n-- %s --\n", name.c_str());
    int total_faults = 0;
    for (int q = 0; q < std::min(kQueries, packed_q.size()); ++q) {
      const int query_image = env.dataset.split.query[static_cast<size_t>(q)];
      const auto top = scan.TopK(packed_q.code(q), kTop);
      std::string line = StrFormat(
          "query %2d [%s]:", q,
          env.dataset
              .class_names[static_cast<size_t>(data::PrimaryClassIndex(
                  env.dataset)[static_cast<size_t>(query_image)])]
              .c_str());
      for (const auto& nb : top) {
        const bool rel = env.dataset.Relevant(
            query_image,
            env.dataset.split.database[static_cast<size_t>(nb.id)]);
        if (!rel) ++total_faults;
        line += StrFormat(" %c%d", rel ? '+' : '-', nb.id);
      }
      std::printf("%s\n", line.c_str());
    }
    faults.AddRow(name, {static_cast<double>(total_faults)}, 0);
  }
  std::printf("\n");
  faults.Print(std::cout);
  if (flags.csv) std::cout << faults.ToCsv();
  return 0;
}

}  // namespace
}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
