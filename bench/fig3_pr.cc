// Regenerates Figure 3: precision-recall curves under the hash-lookup
// protocol (Hamming radius swept 0..k) for every method on the three
// datasets at 64 and 128 bits.
//
// Paper reference (Figure 3): UHSCM's PR curve dominates all baselines;
// on CIFAR10 by a wide margin, on the multi-label datasets "on the
// whole". Each curve is printed as (radius, recall, precision) triples —
// the series a plotting script consumes directly.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

namespace uhscm::bench {
namespace {

using ::uhscm::StrFormat;

int Main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  std::vector<int> widths = flags.bits;
  if (widths.size() == 4 && widths[0] == 32) widths = {64, 128};

  for (const std::string& dataset : flags.datasets) {
    BenchEnv env = MakeBenchEnv(dataset, flags);
    for (int bits : widths) {
      std::printf("\n=== Figure 3: PR curve by Hamming radius, %s @ %d bits "
                  "===\n",
                  dataset.c_str(), bits);
      TableWriter table({"Method", "radius", "recall", "precision"});

      eval::RetrievalEvalOptions eval_options;
      eval_options.map_at = 100;
      eval_options.topn_points = {};
      eval_options.compute_pr_curve = true;

      std::vector<std::string> methods = baselines::Table1BaselineNames();
      methods.push_back("UHSCM");
      for (const std::string& name : methods) {
        std::unique_ptr<baselines::HashingMethod> method;
        if (name == "UHSCM") {
          method = MakeUhscm(env, bits, flags.seed);
        } else {
          method = std::move(baselines::MakeBaseline(name).ValueOrDie());
        }
        MethodRun run =
            RunMethod(method.get(), env, bits, eval_options, flags.seed);
        // Thin the curve: every 4th radius plus the endpoints keeps the
        // printed table readable while preserving the shape.
        const auto& curve = run.eval.pr_curve;
        for (size_t r = 0; r < curve.size(); ++r) {
          if (r % 4 != 0 && r + 1 != curve.size()) continue;
          table.AddRow({name, StrFormat("%zu", r),
                        StrFormat("%.4f", curve[r].recall),
                        StrFormat("%.4f", curve[r].precision)});
        }
      }
      table.Print(std::cout);
      if (flags.csv) std::cout << table.ToCsv();
    }
  }
  return 0;
}

}  // namespace
}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
