// hamming_kernels — scalar vs SIMD vs batched-scan Hamming throughput.
//
// Builds a random packed corpus and sweeps every kernel tier this host
// can run (scalar, avx2, avx512 — see --list-tiers) over identical work:
//
//   per-query/topk    : LinearScanIndex::TopK in a loop (the pre-batching
//                       serving path — one corpus pass per query)
//   batched/<tier>    : cache-blocked BatchTopK, fused distance+block-min
//                       kernel, forced to <tier>
//   batched/<t>/unfused : the pre-fusion two-pass scan at the dispatched
//                       tier (kernel writes distances, a second pass
//                       re-reads them for the block minimum)
//   kernel/<tier>     : the raw batch kernel, no top-k bookkeeping — the
//                       upper-bound GB/s the scan is chasing
//
// Results land on stdout and in a machine-readable
// BENCH_hamming_kernels.json (one row per tier) so the perf trajectory is
// recorded across PRs. Two gates, both armed only on a machine where they
// can hold (SIMD present, >=100k codes, >=128 bits, Release build):
//
//   headline : batched SIMD scan >= 3x the per-query scalar scan
//   fused    : fused scan >= 1.3x the unfused two-pass scan at the
//              dispatched tier when that tier is avx512 (the fusion win
//              scales with kernel speed — the faster the distances are
//              produced, the more the second min pass and the per-code
//              heap branch cost); on avx2-only hosts the second pass is
//              small next to the kernel itself, so the bar there is
//              no-regression (>= 0.95x)
//
//   $ ./build/hamming_kernels [--n=100000] [--bits=128] [--queries=64]
//                             [--k=10] [--json=BENCH_hamming_kernels.json]
//   $ ./build/hamming_kernels --list-tiers   # one available tier per line
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "index/batch_scan.h"
#include "index/hamming_kernels.h"
#include "index/linear_scan.h"
#include "index/packed_codes.h"
#include "perf_util.h"

namespace uhscm::bench {
namespace {

struct Flags {
  int n = 100000;
  int bits = 128;
  int queries = 64;
  int k = 10;
  uint64_t seed = 2023;
  std::string json = "BENCH_hamming_kernels.json";
  bool list_tiers = false;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--n=")) {
      flags.n = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--bits=")) {
      flags.bits = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--queries=")) {
      flags.queries = std::atoi(arg.c_str() + 10);
    } else if (StartsWith(arg, "--k=")) {
      flags.k = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--seed=")) {
      flags.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (StartsWith(arg, "--json=")) {
      flags.json = arg.substr(7);
    } else if (arg == "--list-tiers") {
      flags.list_tiers = true;
    } else {
      std::fprintf(stderr,
                   "usage: hamming_kernels [--n=N] [--bits=K] [--queries=N] "
                   "[--k=K] [--seed=N] [--json=PATH] [--list-tiers]\n");
      std::exit(2);
    }
  }
  return flags;
}

struct Row {
  std::string name;
  std::string tier;
  bool fused = false;
  double seconds = 0.0;
  double codes_per_s = 0.0;
  double gb_per_s = 0.0;
  double speedup = 1.0;
};

std::vector<index::KernelTier> AvailableTiers() {
  std::vector<index::KernelTier> tiers;
  for (const index::KernelTier tier :
       {index::KernelTier::kScalar, index::KernelTier::kAvx2,
        index::KernelTier::kAvx512}) {
    if (index::KernelTierAvailable(tier)) tiers.push_back(tier);
  }
  return tiers;
}

}  // namespace

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  const std::vector<index::KernelTier> tiers = AvailableTiers();
  if (flags.list_tiers) {
    // Machine-readable availability probe for the forced-tier CI legs:
    // one tier name per line, nothing else on stdout.
    for (const index::KernelTier tier : tiers) {
      std::printf("%s\n", index::KernelTierName(tier));
    }
    return 0;
  }

  Rng rng(flags.seed);
  const index::PackedCodes corpus = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(flags.n, flags.bits, &rng));
  const index::PackedCodes queries = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(flags.queries, flags.bits, &rng));
  const index::LinearScanIndex scan(index::PackedCodes::FromRawWords(
      corpus.size(), corpus.bits(), corpus.words()));
  const double pair_count =
      static_cast<double>(flags.n) * static_cast<double>(flags.queries);
  const double bytes_scanned =
      pair_count * corpus.words_per_code() * sizeof(uint64_t);
  const index::KernelTier active_tier = index::ActiveKernelTier();
  const char* simd_name = index::KernelTierName(active_tier);

  std::printf("corpus n=%d bits=%d (%d words/code) | %d queries, k=%d\n",
              flags.n, flags.bits, corpus.words_per_code(), flags.queries,
              flags.k);
  std::printf("dispatched kernel tier: %s%s | compiled-in tiers available:",
              simd_name,
              active_tier == index::KernelTier::kAvx512 &&
                      index::Avx512VpopcntAvailable()
                  ? "+vpopcntdq"
                  : "");
  for (const index::KernelTier tier : tiers) {
    std::printf(" %s", index::KernelTierName(tier));
  }
  std::printf("\n\n");

  std::vector<Row> rows;
  auto add_row = [&](const std::string& name, const std::string& tier,
                     bool fused, double seconds) {
    Row row;
    row.name = name;
    row.tier = tier;
    row.fused = fused;
    row.seconds = seconds;
    row.codes_per_s = pair_count / seconds;
    row.gb_per_s = bytes_scanned / seconds / 1e9;
    row.speedup = rows.empty() ? 1.0 : rows.front().seconds / seconds;
    rows.push_back(row);
  };

  // Row 0: the pre-batching serving path — one full-corpus scalar pass
  // per query through the bounded-heap TopK. Every speedup column is
  // relative to this.
  {
    size_t sink = 0;
    const double secs = TimeBest(kTimingReps, [&] {
      sink = 0;
      for (int q = 0; q < queries.size(); ++q) {
        sink += scan.TopK(queries.code(q), flags.k).size();
      }
    });
    if (sink == 0) std::abort();
    add_row("per-query/topk", "scalar", false, secs);
  }

  // Batched cache-blocked scan per tier (fused kernel — the serving
  // default). The scalar row isolates the blocking/batching win from the
  // SIMD win; higher tiers add the SIMD win on identical work.
  for (const index::KernelTier tier : tiers) {
    index::BatchScanOptions options;
    options.force_tier = true;
    options.tier = tier;
    const double secs = TimeBest(kTimingReps, [&] {
      const auto results =
          index::BatchTopK(scan.database(), queries, flags.k, options);
      (void)results;
    });
    add_row(std::string("batched/") + index::KernelTierName(tier),
            index::KernelTierName(tier), true, secs);
  }

  // The pre-fusion two-pass scan at the dispatched tier — the fused-path
  // A/B and the baseline for the fused gate.
  double unfused_secs = 0.0;
  std::vector<std::vector<index::Neighbor>> unfused_results;
  {
    index::BatchScanOptions options;
    options.fused_min = false;
    unfused_secs = TimeBest(kTimingReps, [&] {
      unfused_results =
          index::BatchTopK(scan.database(), queries, flags.k, options);
    });
    add_row(std::string("batched/") + simd_name + "/unfused", simd_name,
            false, unfused_secs);
  }

  // The serving hot path itself (dispatched tier, fused) — measured last
  // of the batched rows and checked for byte-identity below.
  std::vector<std::vector<index::Neighbor>> simd_results;
  double fused_secs = 0.0;
  {
    fused_secs = TimeBest(kTimingReps,
                          [&] { simd_results = scan.TopKBatch(queries, flags.k); });
    add_row(std::string("batched/") + simd_name + "/fused", simd_name, true,
            fused_secs);
  }

  // Raw kernel sweeps per tier (no top-k bookkeeping): upper bound GB/s
  // the batched scan is chasing.
  std::vector<int32_t> dist(static_cast<size_t>(corpus.size()));
  for (const index::KernelTier tier : tiers) {
    const index::BatchDistanceFn fn = index::GetBatchDistanceFn(tier);
    int64_t sink = 0;
    const double secs = TimeBest(kTimingReps, [&] {
      sink = 0;
      for (int q = 0; q < queries.size(); ++q) {
        fn(queries.code(q), corpus.code(0), corpus.size(),
           corpus.words_per_code(), index::kNoThreshold, dist.data());
        sink += dist[static_cast<size_t>(corpus.size()) - 1];
      }
    });
    if (sink < 0) std::abort();
    add_row(std::string("kernel/") + index::KernelTierName(tier),
            index::KernelTierName(tier), false, secs);
  }

  TableWriter table({"config", "secs", "Mcodes/s", "GB/s", "speedup"});
  for (const Row& row : rows) {
    table.AddRow({row.name, Fmt(row.seconds, "%.4f"),
                  Fmt(row.codes_per_s / 1e6, "%.1f"), Fmt(row.gb_per_s, "%.2f"),
                  Fmt(row.speedup, "%.2f")});
  }
  table.Print(std::cout);

  // Byte-identity checks: the fused batched results must equal the
  // per-query scan (spot check) and the unfused batched results on every
  // query (the fused/unfused contract in BatchScanOptions).
  for (int q = 0; q < std::min(queries.size(), 8); ++q) {
    const auto expect = scan.TopK(queries.code(q), flags.k);
    const auto& got = simd_results[static_cast<size_t>(q)];
    if (expect.size() != got.size()) std::abort();
    for (size_t i = 0; i < expect.size(); ++i) {
      if (expect[i].id != got[i].id || expect[i].distance != got[i].distance) {
        std::fprintf(stderr, "FATAL: batched result mismatch at q=%d rank=%zu\n",
                     q, i);
        return 1;
      }
    }
  }
  for (int q = 0; q < queries.size(); ++q) {
    const auto& a = simd_results[static_cast<size_t>(q)];
    const auto& b = unfused_results[static_cast<size_t>(q)];
    if (a.size() != b.size()) std::abort();
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].id != b[i].id || a[i].distance != b[i].distance) {
        std::fprintf(stderr,
                     "FATAL: fused/unfused result mismatch at q=%d rank=%zu\n",
                     q, i);
        return 1;
      }
    }
  }
  std::printf(
      "\nbatched results byte-identical to per-query TopK (spot check) and "
      "to the unfused scan (all queries)\n");

  const double headline = rows.front().seconds / fused_secs;
  const double fused_speedup = unfused_secs / fused_secs;
  std::printf("headline: batched %s scan = %.2fx per-query scalar scan\n",
              simd_name, headline);
  std::printf("fused:    fused block-min scan = %.2fx unfused two-pass scan\n",
              fused_speedup);

  if (!flags.json.empty()) {
    std::FILE* f = std::fopen(flags.json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "WARNING: cannot write %s — perf trajectory not recorded\n",
                   flags.json.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"hamming_kernels\",\n");
      WriteJsonRunMeta(f);
      // Kernel bench: no serving pipeline runs here, so the stage
      // breakdown is empty unless a prior in-process pass traced one —
      // emitted anyway to keep the BENCH_*.json schema uniform.
      WriteJsonStageBreakdown(f);
      std::fprintf(f, "  \"n\": %d, \"bits\": %d, \"queries\": %d, \"k\": %d,\n",
                   flags.n, flags.bits, flags.queries, flags.k);
      std::fprintf(f, "  \"kernel_tier\": \"%s\",\n", simd_name);
      std::fprintf(f, "  \"tiers_available\": [");
      for (size_t i = 0; i < tiers.size(); ++i) {
        std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                     index::KernelTierName(tiers[i]));
      }
      std::fprintf(f, "],\n  \"rows\": [\n");
      for (size_t i = 0; i < rows.size(); ++i) {
        std::fprintf(f,
                     "    {\"config\": \"%s\", \"tier\": \"%s\", "
                     "\"fused\": %s, \"seconds\": %.6f, "
                     "\"codes_per_s\": %.1f, \"gb_per_s\": %.3f, "
                     "\"speedup_vs_per_query\": %.3f}%s\n",
                     rows[i].name.c_str(), rows[i].tier.c_str(),
                     rows[i].fused ? "true" : "false", rows[i].seconds,
                     rows[i].codes_per_s, rows[i].gb_per_s, rows[i].speedup,
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f,
                   "  ],\n  \"headline_speedup\": %.3f,\n"
                   "  \"fused_speedup\": %.3f\n}\n",
                   headline, fused_speedup);
      std::fclose(f);
      std::printf("wrote %s\n", flags.json.c_str());
    }
  }

  // The acceptance bars only apply where they can hold: SIMD present and
  // a corpus big enough that per-query scans actually pay for memory.
  const bool gates_armed = index::Avx2Available() &&
                           active_tier != index::KernelTier::kScalar &&
                           flags.n >= 100000 && flags.bits >= 128;
  if (gates_armed && headline < 3.0) {
    std::fprintf(stderr,
                 "\nFAIL: batched SIMD scan only %.2fx the per-query scalar "
                 "scan (need >= 3x)\n",
                 headline);
    return 1;
  }
  // 1.3x where fusion has room to pay (avx512 kernels produce distances
  // fast enough that the second pass + per-code heap branch dominate);
  // no-regression elsewhere.
  const double fused_bar =
      active_tier == index::KernelTier::kAvx512 ? 1.3 : 0.95;
  if (gates_armed && fused_speedup < fused_bar) {
    std::fprintf(stderr,
                 "\nFAIL: fused block-min scan only %.2fx the unfused "
                 "two-pass scan (need >= %.2fx at tier %s)\n",
                 fused_speedup, fused_bar, simd_name);
    return 1;
  }
  return 0;
}

}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
