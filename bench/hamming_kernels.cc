// hamming_kernels — scalar vs SIMD vs batched-scan Hamming throughput.
//
// Builds a random packed corpus and measures the three tiers of the scan
// hot path on identical work:
//
//   per-query/scalar : LinearScanIndex::TopK in a loop (the pre-batching
//                      serving path — one corpus pass per query)
//   batched/scalar   : cache-blocked BatchTopK with the scalar kernel
//   batched/<simd>   : cache-blocked BatchTopK with the dispatched kernel
//
// plus the raw kernels (no top-k bookkeeping) in GB/s. Results land on
// stdout and in a machine-readable BENCH_hamming_kernels.json so the perf
// trajectory is recorded across PRs. The batched SIMD scan is expected to
// be >= 3x the per-query scalar scan on a >=100k-code, 128-bit corpus in
// a Release build; the bench exits 1 when that headline fails on a
// machine where it should hold (AVX2 present, full-size corpus).
//
//   $ ./build/hamming_kernels [--n=100000] [--bits=128] [--queries=64]
//                             [--k=10] [--json=BENCH_hamming_kernels.json]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "index/batch_scan.h"
#include "index/hamming_kernels.h"
#include "index/linear_scan.h"
#include "index/packed_codes.h"
#include "perf_util.h"

namespace uhscm::bench {
namespace {

struct Flags {
  int n = 100000;
  int bits = 128;
  int queries = 64;
  int k = 10;
  uint64_t seed = 2023;
  std::string json = "BENCH_hamming_kernels.json";
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--n=")) {
      flags.n = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--bits=")) {
      flags.bits = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--queries=")) {
      flags.queries = std::atoi(arg.c_str() + 10);
    } else if (StartsWith(arg, "--k=")) {
      flags.k = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--seed=")) {
      flags.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (StartsWith(arg, "--json=")) {
      flags.json = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: hamming_kernels [--n=N] [--bits=K] [--queries=N] "
                   "[--k=K] [--seed=N] [--json=PATH]\n");
      std::exit(2);
    }
  }
  return flags;
}

struct Row {
  std::string name;
  double seconds = 0.0;
  double codes_per_s = 0.0;
  double gb_per_s = 0.0;
  double speedup = 1.0;
};

}  // namespace

int Main(int argc, char** argv) {
  const Flags flags = ParseFlags(argc, argv);
  Rng rng(flags.seed);
  const index::PackedCodes corpus = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(flags.n, flags.bits, &rng));
  const index::PackedCodes queries = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(flags.queries, flags.bits, &rng));
  const index::LinearScanIndex scan(index::PackedCodes::FromRawWords(
      corpus.size(), corpus.bits(), corpus.words()));
  const double pair_count =
      static_cast<double>(flags.n) * static_cast<double>(flags.queries);
  const double bytes_scanned =
      pair_count * corpus.words_per_code() * sizeof(uint64_t);
  const char* simd_name = index::KernelTierName(index::ActiveKernelTier());

  std::printf("corpus n=%d bits=%d (%d words/code) | %d queries, k=%d\n",
              flags.n, flags.bits, corpus.words_per_code(), flags.queries,
              flags.k);
  std::printf("dispatched kernel tier: %s%s\n\n", simd_name,
              index::Avx2Available() ? "" : " (no AVX2 on this CPU)");

  std::vector<Row> rows;
  auto add_row = [&](const std::string& name, double seconds) {
    Row row;
    row.name = name;
    row.seconds = seconds;
    row.codes_per_s = pair_count / seconds;
    row.gb_per_s = bytes_scanned / seconds / 1e9;
    row.speedup = rows.empty() ? 1.0 : rows.front().seconds / seconds;
    rows.push_back(row);
  };

  // Tier 0: the pre-batching serving path — one full-corpus scalar pass
  // per query through the bounded-heap TopK.
  {
    Stopwatch watch;
    size_t sink = 0;
    for (int q = 0; q < queries.size(); ++q) {
      sink += scan.TopK(queries.code(q), flags.k).size();
    }
    const double secs = watch.ElapsedSeconds();
    if (sink == 0) std::abort();
    add_row("per-query/topk", secs);
  }

  // Batched cache-blocked scan, scalar kernel: isolates the blocking and
  // batching win from the SIMD win.
  index::BatchScanOptions scalar_options;
  scalar_options.force_tier = true;
  scalar_options.tier = index::KernelTier::kScalar;
  {
    Stopwatch watch;
    const auto results =
        index::BatchTopK(scan.database(), queries, flags.k, scalar_options);
    (void)results;
    add_row("batched/scalar", watch.ElapsedSeconds());
  }

  // Batched scan with the dispatched SIMD kernel — the serving hot path.
  std::vector<std::vector<index::Neighbor>> simd_results;
  {
    Stopwatch watch;
    simd_results = scan.TopKBatch(queries, flags.k);
    add_row(std::string("batched/") + simd_name, watch.ElapsedSeconds());
  }

  // Raw kernel sweeps (no top-k bookkeeping): upper bound GB/s per tier.
  std::vector<int32_t> dist(static_cast<size_t>(corpus.size()));
  for (const auto& [label, fn] :
       {std::pair<std::string, index::BatchDistanceFn>{
            "kernel/scalar",
            index::GetBatchDistanceFn(index::KernelTier::kScalar)},
        std::pair<std::string, index::BatchDistanceFn>{
            std::string("kernel/") + simd_name,
            index::GetBatchDistanceFn()}}) {
    Stopwatch watch;
    int64_t sink = 0;
    for (int q = 0; q < queries.size(); ++q) {
      fn(queries.code(q), corpus.code(0), corpus.size(),
         corpus.words_per_code(), index::kNoThreshold, dist.data());
      sink += dist[static_cast<size_t>(corpus.size()) - 1];
    }
    const double secs = watch.ElapsedSeconds();
    if (sink < 0) std::abort();
    add_row(label, secs);
  }

  TableWriter table({"config", "secs", "Mcodes/s", "GB/s", "speedup"});
  for (const Row& row : rows) {
    table.AddRow({row.name, Fmt(row.seconds, "%.4f"),
                  Fmt(row.codes_per_s / 1e6, "%.1f"), Fmt(row.gb_per_s, "%.2f"),
                  Fmt(row.speedup, "%.2f")});
  }
  table.Print(std::cout);

  // Spot-check: the batched SIMD results must equal the per-query scan.
  for (int q = 0; q < std::min(queries.size(), 8); ++q) {
    const auto expect = scan.TopK(queries.code(q), flags.k);
    const auto& got = simd_results[static_cast<size_t>(q)];
    if (expect.size() != got.size()) std::abort();
    for (size_t i = 0; i < expect.size(); ++i) {
      if (expect[i].id != got[i].id || expect[i].distance != got[i].distance) {
        std::fprintf(stderr, "FATAL: batched result mismatch at q=%d rank=%zu\n",
                     q, i);
        return 1;
      }
    }
  }
  std::printf("\nbatched results byte-identical to per-query TopK (spot check)\n");

  const double headline = rows[2].speedup;  // batched/simd vs per-query scalar
  std::printf("headline: batched %s scan = %.2fx per-query scalar scan\n",
              simd_name, headline);

  if (!flags.json.empty()) {
    std::FILE* f = std::fopen(flags.json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "WARNING: cannot write %s — perf trajectory not recorded\n",
                   flags.json.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"hamming_kernels\",\n");
      WriteJsonRunMeta(f);
      // Kernel bench: no serving pipeline runs here, so the stage
      // breakdown is empty unless a prior in-process pass traced one —
      // emitted anyway to keep the BENCH_*.json schema uniform.
      WriteJsonStageBreakdown(f);
      std::fprintf(f, "  \"n\": %d, \"bits\": %d, \"queries\": %d, \"k\": %d,\n",
                   flags.n, flags.bits, flags.queries, flags.k);
      std::fprintf(f, "  \"kernel_tier\": \"%s\",\n", simd_name);
      std::fprintf(f, "  \"rows\": [\n");
      for (size_t i = 0; i < rows.size(); ++i) {
        std::fprintf(f,
                     "    {\"config\": \"%s\", \"seconds\": %.6f, "
                     "\"codes_per_s\": %.1f, \"gb_per_s\": %.3f, "
                     "\"speedup_vs_per_query\": %.3f}%s\n",
                     rows[i].name.c_str(), rows[i].seconds,
                     rows[i].codes_per_s, rows[i].gb_per_s, rows[i].speedup,
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n  \"headline_speedup\": %.3f\n}\n", headline);
      std::fclose(f);
      std::printf("wrote %s\n", flags.json.c_str());
    }
  }

  // The acceptance bar only applies where it can hold: SIMD present and a
  // corpus big enough that per-query scans actually pay for memory.
  if (index::Avx2Available() &&
      index::ActiveKernelTier() != index::KernelTier::kScalar &&
      flags.n >= 100000 && flags.bits >= 128 && headline < 3.0) {
    std::fprintf(stderr,
                 "\nFAIL: batched SIMD scan only %.2fx the per-query scalar "
                 "scan (need >= 3x)\n",
                 headline);
    return 1;
  }
  return 0;
}

}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
