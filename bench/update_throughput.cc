// update_throughput — mutable-index bench: updates interleaved with
// query traffic.
//
// Builds a synthetic packed-code corpus behind a serve::QueryEngine,
// then runs a writer thread (batched appends + single-id tombstone
// deletes) concurrently with reader threads replaying query batches.
// Reports appends/sec, removes/sec, and the query QPS observed *while*
// the corpus was mutating, then verifies exactness: engine results after
// the run must be byte-identical (after id compaction) to a freshly
// built engine over the surviving rows.
//
// A second phase measures what tombstone compaction buys: the corpus is
// churned (append + delete) until half the rows are dead, steady-state
// scan throughput is measured over the 50%-dead corpus, the engine is
// compacted, and throughput is measured again. Results before and after
// compaction must be byte-identical (same distances, same global ids).
//
// Acceptance gates: at the default corpus size the writer must sustain
// >= 10k appends/sec while queries run, and the compacted scan must
// reach >= 1.5x the 50%-dead uncompacted scan throughput — or the bench
// exits non-zero.
//
//   $ ./build/update_throughput [--n=50000] [--bits=64] [--k=10]
//                               [--queries=256] [--append-batch=64]
//                               [--target-appends=200000] [--seed=2023]
//                               [--churn-passes=6]
//                               [--json=BENCH_update_throughput.json]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "index/linear_scan.h"
#include "index/packed_codes.h"
#include "obs/trace.h"
#include "perf_util.h"
#include "serve/query_engine.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"

namespace uhscm::bench {
namespace {

struct Flags {
  int n = 50000;
  int bits = 64;
  int k = 10;
  int queries = 256;
  int append_batch = 64;
  int target_appends = 200000;
  uint64_t seed = 2023;
  /// Full replays of the query stream per churn-phase measurement; more
  /// passes smooth the timing at the cost of wall clock.
  int churn_passes = 6;
  std::string json = "BENCH_update_throughput.json";
};

Flags ParseUpdateFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--n=")) {
      flags.n = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--bits=")) {
      flags.bits = std::atoi(arg.c_str() + 7);
    } else if (StartsWith(arg, "--k=")) {
      flags.k = std::atoi(arg.c_str() + 4);
    } else if (StartsWith(arg, "--queries=")) {
      flags.queries = std::atoi(arg.c_str() + 10);
    } else if (StartsWith(arg, "--append-batch=")) {
      flags.append_batch = std::max(1, std::atoi(arg.c_str() + 15));
    } else if (StartsWith(arg, "--target-appends=")) {
      flags.target_appends = std::atoi(arg.c_str() + 17);
    } else if (StartsWith(arg, "--seed=")) {
      flags.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (StartsWith(arg, "--churn-passes=")) {
      flags.churn_passes = std::max(1, std::atoi(arg.c_str() + 15));
    } else if (StartsWith(arg, "--json=")) {
      flags.json = arg.substr(7);
    } else {
      std::fprintf(stderr,
                   "usage: update_throughput [--n=N] [--bits=K] [--k=K] "
                   "[--queries=N] [--append-batch=B] [--target-appends=N] "
                   "[--seed=N] [--churn-passes=N] [--json=PATH]\n");
      std::exit(2);
    }
  }
  return flags;
}

}  // namespace

int Main(int argc, char** argv) {
  const Flags flags = ParseUpdateFlags(argc, argv);
  Rng rng(flags.seed);
  const index::PackedCodes corpus = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(flags.n, flags.bits, &rng));
  const index::PackedCodes queries = index::PackedCodes::FromSignMatrix(
      RandomSignCodes(flags.queries, flags.bits, &rng));
  std::printf(
      "corpus n=%d bits=%d | %d queries, k=%d | append batches of %d, "
      "target %d appends\n\n",
      flags.n, flags.bits, flags.queries, flags.k, flags.append_batch,
      flags.target_appends);

  serve::ServingSnapshotOptions options;
  options.index.num_shards = 4;
  auto engine = serve::MakeQueryEngine(
      index::PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                       corpus.words()),
      options);

  // Pre-generate the append stream so the writer thread measures index
  // mutation, not random-code generation.
  const int num_batches =
      (flags.target_appends + flags.append_batch - 1) / flags.append_batch;
  std::vector<index::PackedCodes> append_batches;
  append_batches.reserve(static_cast<size_t>(num_batches));
  for (int b = 0; b < num_batches; ++b) {
    append_batches.push_back(index::PackedCodes::FromSignMatrix(
        RandomSignCodes(flags.append_batch, flags.bits, &rng)));
  }
  // Delete one existing id per append batch (1/append_batch delete:append
  // mix), drawn deterministically from the base corpus.
  std::vector<int> delete_ids;
  delete_ids.reserve(static_cast<size_t>(num_batches));
  for (int b = 0; b < num_batches; ++b) {
    delete_ids.push_back(static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(flags.n))));
  }

  // Writer: appends + deletes as fast as the index accepts them.
  // Readers: replay query batches until the writer finishes. The writer
  // waits until every reader has completed one full replay before its
  // clock starts, so "appends/sec concurrent with query traffic" is
  // measured with queries genuinely in flight — without the barrier a
  // fast writer can finish before any reader issues a batch.
  constexpr int kReaders = 2;
  std::atomic<bool> done{false};
  std::atomic<int> readers_warm{0};
  std::atomic<int64_t> appended{0};
  std::atomic<int64_t> removed{0};
  double write_seconds = 0.0;
  std::thread writer([&] {
    while (readers_warm.load(std::memory_order_acquire) < kReaders) {
      std::this_thread::yield();
    }
    engine->ResetStats();  // scope QPS/latency to the contended window
    Stopwatch watch;
    for (int b = 0; b < num_batches; ++b) {
      appended.fetch_add(
          static_cast<int64_t>(engine->Append(append_batches[b]).size()),
          std::memory_order_relaxed);
      removed.fetch_add(engine->Remove(delete_ids[b]) ? 1 : 0,
                        std::memory_order_relaxed);
    }
    write_seconds = watch.ElapsedSeconds();
    done.store(true, std::memory_order_release);
  });

  // Slice the query stream into packed batches once; the reader loops
  // replay the same buffers every pass instead of re-copying the words.
  const std::vector<index::PackedCodes> query_batches =
      serve::SliceBatches(queries, 32);
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      serve::ReplayBatches(engine.get(), query_batches, flags.k);
      readers_warm.fetch_add(1, std::memory_order_release);
      while (!done.load(std::memory_order_acquire)) {
        serve::ReplayBatches(engine.get(), query_batches, flags.k);
      }
    });
  }
  writer.join();
  for (auto& reader : readers) reader.join();

  const serve::ServeStatsSnapshot stats = engine->stats();
  const double appends_per_sec =
      write_seconds > 0.0
          ? static_cast<double>(appended.load()) / write_seconds
          : 0.0;
  const double removes_per_sec =
      write_seconds > 0.0 ? static_cast<double>(removed.load()) / write_seconds
                          : 0.0;

  TableWriter table({"metric", "value"});
  table.AddRow({"appends_total", std::to_string(appended.load())});
  table.AddRow({"removes_total", std::to_string(removed.load())});
  table.AddRow({"appends_per_sec", Fmt(appends_per_sec)});
  table.AddRow({"removes_per_sec", Fmt(removes_per_sec)});
  table.AddRow({"concurrent_query_qps", Fmt(stats.qps())});
  table.AddRow({"query_p99_ms", Fmt(stats.latency_p99_ms, "%.3f")});
  table.AddRow({"final_epoch", std::to_string(stats.epoch)});
  table.AddRow({"live_codes", std::to_string(engine->index().size())});
  table.AddRow({"total_codes", std::to_string(engine->index().total_size())});
  table.Print(std::cout);

  // Exactness: the mutated engine must agree with a fresh engine built
  // over the surviving rows only. Survivors keep their relative order,
  // so mutable global ids map to rebuild ids by survivor rank.
  std::printf("\nverifying against fresh rebuild of survivors...\n");
  serve::CorpusExport snapshot = engine->index().Export();
  const index::TombstoneSet dead_rows = index::TombstoneSet::FromWords(
      snapshot.codes.size(), snapshot.tombstone_words);
  const int words_per_code = snapshot.codes.words_per_code();
  std::vector<uint64_t> live_words;
  live_words.reserve(static_cast<size_t>(snapshot.live) * words_per_code);
  std::vector<int> rank_of_gid(static_cast<size_t>(snapshot.codes.size()),
                               -1);
  int live = 0;
  for (int gid = 0; gid < snapshot.codes.size(); ++gid) {
    if (dead_rows.Test(gid)) continue;
    const uint64_t* src = snapshot.codes.code(gid);
    live_words.insert(live_words.end(), src, src + words_per_code);
    rank_of_gid[static_cast<size_t>(gid)] = live++;
  }
  index::LinearScanIndex truth(index::PackedCodes::FromRawWords(
      live, flags.bits, std::move(live_words)));
  int mismatches = 0;
  for (int q = 0; q < queries.size() && mismatches == 0; ++q) {
    const auto expect = truth.TopK(queries.code(q), flags.k);
    const auto got = engine->SearchOne(queries.code(q), flags.k);
    if (expect.size() != got.size()) {
      ++mismatches;
      break;
    }
    for (size_t i = 0; i < got.size(); ++i) {
      if (rank_of_gid[static_cast<size_t>(got[i].id)] != expect[i].id ||
          got[i].distance != expect[i].distance) {
        ++mismatches;
        break;
      }
    }
  }
  std::printf("exactness: %s\n", mismatches == 0 ? "OK" : "MISMATCH");

  // -------------------------------------------------------------------
  // Phase 2: append+delete churn to 50% dead, then compaction. Dead rows
  // still burn scan bandwidth (the blocked kernels compute their
  // distances before the tombstone filter drops them), so the compacted
  // steady-state scan should approach 2x the 50%-dead scan; the gate
  // asks for >= 1.5x. The result cache is disabled so the measurement is
  // scan throughput, not hit rate.
  std::printf("\nchurn phase: appending %d rows, tombstoning half the "
              "corpus...\n", flags.n);
  serve::ServingSnapshotOptions churn_options;
  churn_options.index.num_shards = 4;
  churn_options.engine.cache_capacity = 0;
  auto churn_engine = serve::MakeQueryEngine(
      index::PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                       corpus.words()),
      churn_options);
  {
    // Churn in writer-sized batches so the append path (not one giant
    // copy) produces the grown corpus.
    int appended_rows = 0;
    while (appended_rows < flags.n) {
      const int count = std::min(flags.append_batch, flags.n - appended_rows);
      churn_engine->Append(index::PackedCodes::FromSignMatrix(
          RandomSignCodes(count, flags.bits, &rng)));
      appended_rows += count;
    }
  }
  const int churn_total = churn_engine->index().total_size();
  std::vector<int> churn_dead;
  churn_dead.reserve(static_cast<size_t>(churn_total) / 2);
  for (int gid = 0; gid < churn_total; gid += 2) churn_dead.push_back(gid);
  churn_engine->RemoveIds(churn_dead);
  const double dead_fraction =
      static_cast<double>(churn_total - churn_engine->index().size()) /
      churn_total;

  auto measure_qps = [&](serve::QueryEngine* engine) {
    Stopwatch watch;
    for (int pass = 0; pass < flags.churn_passes; ++pass) {
      serve::ReplayBatches(engine, query_batches, flags.k);
    }
    const double seconds = watch.ElapsedSeconds();
    return seconds > 0.0 ? flags.churn_passes *
                               static_cast<double>(queries.size()) / seconds
                         : 0.0;
  };
  const double dead_qps = measure_qps(churn_engine.get());

  // Compacted results must be byte-identical — same distances, same
  // *global* ids — to the 50%-dead index.
  std::vector<std::vector<index::Neighbor>> before;
  before.reserve(static_cast<size_t>(queries.size()));
  for (int q = 0; q < queries.size(); ++q) {
    before.push_back(churn_engine->SearchOne(queries.code(q), flags.k));
  }
  Stopwatch compact_watch;
  const serve::CompactionStats compact_stats = churn_engine->Compact();
  const double compact_ms = compact_watch.ElapsedSeconds() * 1e3;
  int compact_mismatches = 0;
  for (int q = 0; q < queries.size() && compact_mismatches == 0; ++q) {
    const auto after = churn_engine->SearchOne(queries.code(q), flags.k);
    const auto& expect = before[static_cast<size_t>(q)];
    if (after.size() != expect.size()) {
      ++compact_mismatches;
      break;
    }
    for (size_t i = 0; i < after.size(); ++i) {
      if (after[i].id != expect[i].id ||
          after[i].distance != expect[i].distance) {
        ++compact_mismatches;
        break;
      }
    }
  }
  const double compacted_qps = measure_qps(churn_engine.get());
  const double compaction_speedup =
      dead_qps > 0.0 ? compacted_qps / dead_qps : 0.0;

  TableWriter churn_table({"metric", "value"});
  churn_table.AddRow({"churn_total_ids", std::to_string(churn_total)});
  churn_table.AddRow({"churn_dead_fraction", Fmt(dead_fraction, "%.3f")});
  churn_table.AddRow(
      {"rows_reclaimed", std::to_string(compact_stats.rows_reclaimed)});
  churn_table.AddRow(
      {"shards_compacted", std::to_string(compact_stats.shards_compacted)});
  churn_table.AddRow({"compaction_ms", Fmt(compact_ms, "%.2f")});
  churn_table.AddRow({"scan_qps_50pct_dead", Fmt(dead_qps)});
  churn_table.AddRow({"scan_qps_compacted", Fmt(compacted_qps)});
  churn_table.AddRow({"compaction_speedup", Fmt(compaction_speedup, "%.2f")});
  churn_table.Print(std::cout);
  std::printf("compaction identity: %s\n",
              compact_mismatches == 0 ? "OK" : "MISMATCH");

  // Untimed instrumented pass over the compacted engine: every request
  // sampled, so the JSON's stage breakdown reflects this corpus.
  {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    recorder.SetSampleEvery(1);
    for (const index::PackedCodes& batch : query_batches) {
      obs::TraceContext ctx;
      ctx.trace_id = recorder.MaybeStartTrace();
      churn_engine->Search(batch, flags.k, ctx);
    }
    recorder.SetSampleEvery(0);
  }

  if (!flags.json.empty()) {
    std::FILE* f = std::fopen(flags.json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr,
                   "WARNING: cannot write %s — perf trajectory not "
                   "recorded\n",
                   flags.json.c_str());
    } else {
      std::fprintf(f, "{\n  \"bench\": \"update_throughput\",\n");
      WriteJsonRunMeta(f);
      WriteJsonStageBreakdown(f);
      std::fprintf(
          f,
          "  \"n\": %d, \"bits\": %d, \"k\": %d, \"queries\": %d, "
          "\"append_batch\": %d,\n",
          flags.n, flags.bits, flags.k, flags.queries, flags.append_batch);
      std::fprintf(
          f,
          "  \"appends_total\": %lld, \"removes_total\": %lld,\n"
          "  \"appends_per_sec\": %.1f, \"removes_per_sec\": %.1f,\n"
          "  \"concurrent_query_qps\": %.1f, \"query_p99_ms\": %.4f,\n"
          "  \"final_epoch\": %llu, \"live_codes\": %d, "
          "\"total_codes\": %d,\n  \"exact\": %s,\n",
          static_cast<long long>(appended.load()),
          static_cast<long long>(removed.load()), appends_per_sec,
          removes_per_sec, stats.qps(), stats.latency_p99_ms,
          static_cast<unsigned long long>(stats.epoch),
          engine->index().size(), engine->index().total_size(),
          mismatches == 0 ? "true" : "false");
      std::fprintf(
          f,
          "  \"churn_total_ids\": %d, \"churn_dead_fraction\": %.3f,\n"
          "  \"rows_reclaimed\": %d, \"shards_compacted\": %d,\n"
          "  \"compaction_ms\": %.2f,\n"
          "  \"scan_qps_50pct_dead\": %.1f, \"scan_qps_compacted\": %.1f,\n"
          "  \"compaction_speedup\": %.2f, \"compact_exact\": %s\n}\n",
          churn_total, dead_fraction, compact_stats.rows_reclaimed,
          compact_stats.shards_compacted, compact_ms, dead_qps,
          compacted_qps, compaction_speedup,
          compact_mismatches == 0 ? "true" : "false");
      std::fclose(f);
      std::printf("wrote %s\n", flags.json.c_str());
    }
  }

  if (mismatches != 0) {
    std::printf("\nFAIL: mutated engine diverged from fresh rebuild\n");
    return 1;
  }
  if (compact_mismatches != 0) {
    std::printf("\nFAIL: compaction changed results or global ids\n");
    return 1;
  }
  // The 10k appends/sec bar only means something at a corpus size where
  // queries genuinely contend with the writer; tiny smoke runs skip it.
  const bool gate_armed = flags.n >= 50000 && flags.target_appends >= 100000;
  std::printf("\nwriter sustained %.1f appends/sec (+%.1f removes/sec) "
              "with %.1f QPS of concurrent query traffic%s\n",
              appends_per_sec, removes_per_sec, stats.qps(),
              gate_armed ? "" : " [gate not armed at this size]");
  if (gate_armed && appends_per_sec < 10000.0) {
    std::printf("FAIL: append throughput below the 10k/sec acceptance "
                "bar\n");
    return 1;
  }
  std::printf("compaction: %.2fx scan throughput vs the 50%%-dead corpus "
              "(%.1f -> %.1f QPS)%s\n",
              compaction_speedup, dead_qps, compacted_qps,
              gate_armed ? "" : " [gate not armed at this size]");
  if (gate_armed && compaction_speedup < 1.5) {
    std::printf("FAIL: compacted scan below the 1.5x acceptance bar\n");
    return 1;
  }
  return 0;
}

}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
