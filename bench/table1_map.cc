// Regenerates Table 1: MAPs of Hamming ranking for different numbers of
// hash bits on the three image datasets — ten methods (nine baselines +
// UHSCM) x {cifar, nuswide, flickr} x {32, 64, 96, 128} bits.
//
// Paper reference (Table 1): UHSCM tops every column; the margin is
// largest on CIFAR10 (0.831-0.857 vs. the best baseline ~0.61) and
// moderate on the multi-label datasets (~2-3%).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

namespace uhscm::bench {
namespace {

using ::uhscm::StrFormat;

int Main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);

  std::printf("=== Table 1: MAP of Hamming ranking (map@%s) ===\n",
              "min(5000, |database|)");
  for (const std::string& dataset : flags.datasets) {
    BenchEnv env = MakeBenchEnv(dataset, flags);
    std::printf(
        "\n-- %s: database=%d train=%d query=%d classes=%d --\n",
        dataset.c_str(), static_cast<int>(env.dataset.split.database.size()),
        static_cast<int>(env.dataset.split.train.size()),
        static_cast<int>(env.dataset.split.query.size()),
        env.dataset.num_classes());

    std::vector<std::string> header = {"Method"};
    for (int bits : flags.bits) {
      header.push_back(StrFormat("%d bits", bits));
    }
    TableWriter table(header);

    eval::RetrievalEvalOptions eval_options;
    eval_options.map_at = 5000;
    eval_options.topn_points = {};

    std::vector<std::string> methods = baselines::Table1BaselineNames();
    methods.push_back("UHSCM");
    for (const std::string& name : methods) {
      std::vector<double> row;
      for (int bits : flags.bits) {
        std::unique_ptr<baselines::HashingMethod> method;
        if (name == "UHSCM") {
          method = MakeUhscm(env, bits, flags.seed);
        } else {
          method = std::move(baselines::MakeBaseline(name).ValueOrDie());
        }
        MethodRun run =
            RunMethod(method.get(), env, bits, eval_options, flags.seed);
        row.push_back(run.eval.map);
      }
      table.AddRow(name, row);
    }
    table.Print(std::cout);
    if (flags.csv) std::cout << table.ToCsv();
  }
  return 0;
}

}  // namespace
}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
