// Regenerates Figure 2: Precision@N curves (N = 100..1000) for every
// method on the three datasets at 64 and 128 bits.
//
// Paper reference (Figure 2): UHSCM's curve is uppermost everywhere,
// with the largest separation on CIFAR10.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_writer.h"

namespace uhscm::bench {
namespace {

using ::uhscm::StrFormat;

int Main(int argc, char** argv) {
  BenchFlags flags = ParseFlags(argc, argv);
  // The paper plots 64 and 128 bits; honor --bits but default there.
  std::vector<int> widths = flags.bits;
  if (widths.size() == 4 && widths[0] == 32) widths = {64, 128};

  for (const std::string& dataset : flags.datasets) {
    BenchEnv env = MakeBenchEnv(dataset, flags);
    // N points scale with the database so the curve keeps its meaning at
    // reduced scale: the paper's 100..1000 against a ~59k database maps
    // to fractions of ours.
    const int n_db = static_cast<int>(env.dataset.split.database.size());
    std::vector<int> topn;
    for (int frac = 1; frac <= 10; ++frac) {
      topn.push_back(std::max(1, n_db * frac / 50));  // 2%..20% of db
    }

    for (int bits : widths) {
      std::printf("\n=== Figure 2: P@N curves, %s @ %d bits ===\n",
                  dataset.c_str(), bits);
      std::vector<std::string> header = {"Method"};
      for (int n : topn) header.push_back(StrFormat("P@%d", n));
      TableWriter table(header);

      eval::RetrievalEvalOptions eval_options;
      eval_options.map_at = 1000;
      eval_options.topn_points = topn;

      std::vector<std::string> methods = baselines::Table1BaselineNames();
      methods.push_back("UHSCM");
      for (const std::string& name : methods) {
        std::unique_ptr<baselines::HashingMethod> method;
        if (name == "UHSCM") {
          method = MakeUhscm(env, bits, flags.seed);
        } else {
          method = std::move(baselines::MakeBaseline(name).ValueOrDie());
        }
        MethodRun run =
            RunMethod(method.get(), env, bits, eval_options, flags.seed);
        table.AddRow(name, run.eval.precision_at_n);
      }
      table.Print(std::cout);
      if (flags.csv) std::cout << table.ToCsv();
    }
  }
  return 0;
}

}  // namespace
}  // namespace uhscm::bench

int main(int argc, char** argv) { return uhscm::bench::Main(argc, argv); }
