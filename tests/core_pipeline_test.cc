// Tests for the semantic-similarity-generator half of UHSCM: concept
// mining (Eq. 1-2), concept denoising (Eq. 4-5), clustering variant, and
// similarity matrix construction (Eq. 3/6).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/concept_denoiser.h"
#include "core/concept_miner.h"
#include "core/similarity.h"
#include "linalg/ops.h"
#include "test_util.h"

namespace uhscm::core {
namespace {

using testing::MakeTinyEnv;
using testing::TinyEnv;

class PipelineFixture : public ::testing::Test {
 protected:
  void SetUp() override { env_ = MakeTinyEnv("cifar", 200, 100, 40); }
  TinyEnv env_;
};

TEST_F(PipelineFixture, DistributionsAreRowStochastic) {
  ConceptMiner miner(env_.vlp.get());
  const linalg::Matrix d =
      miner.MineDistributions(env_.dataset.pixels, env_.vocab);
  EXPECT_EQ(d.rows(), env_.dataset.num_images());
  EXPECT_EQ(d.cols(), env_.vocab.size());
  for (int i = 0; i < d.rows(); ++i) {
    float sum = 0.0f;
    for (int j = 0; j < d.cols(); ++j) {
      EXPECT_GE(d(i, j), 0.0f);
      sum += d(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

TEST_F(PipelineFixture, HigherTauConcentratesDistributions) {
  ConceptMinerOptions soft;
  soft.tau_multiplier = 1.0f;
  ConceptMinerOptions sharp;
  sharp.tau_multiplier = 4.0f;
  ConceptMiner soft_miner(env_.vlp.get(), soft);
  ConceptMiner sharp_miner(env_.vlp.get(), sharp);
  const linalg::Matrix ds =
      soft_miner.MineDistributions(env_.dataset.pixels, env_.vocab);
  const linalg::Matrix dh =
      sharp_miner.MineDistributions(env_.dataset.pixels, env_.vocab);
  // Mean max-probability strictly increases with tau.
  auto mean_max = [](const linalg::Matrix& d) {
    double total = 0.0;
    for (int i = 0; i < d.rows(); ++i) {
      float mx = 0.0f;
      for (int j = 0; j < d.cols(); ++j) mx = std::max(mx, d(i, j));
      total += mx;
    }
    return total / d.rows();
  };
  EXPECT_GT(mean_max(dh), mean_max(ds) + 0.05);
}

TEST_F(PipelineFixture, FrequenciesSumToImageCount) {
  ConceptMiner miner(env_.vlp.get());
  const linalg::Matrix d =
      miner.MineDistributions(env_.dataset.pixels, env_.vocab);
  const std::vector<int> freq = ConceptFrequencies(d);
  int total = 0;
  for (int f : freq) total += f;
  EXPECT_EQ(total, d.rows());
}

TEST_F(PipelineFixture, DenoiserAppliesEqFiveBand) {
  ConceptMiner miner(env_.vlp.get());
  const linalg::Matrix d =
      miner.MineDistributions(env_.dataset.pixels, env_.vocab);
  const DenoiseResult result = DenoiseConcepts(d, env_.vocab);
  const double n = d.rows();
  const double m = env_.vocab.size();
  std::set<int> kept(result.kept_positions.begin(),
                     result.kept_positions.end());
  for (int j = 0; j < env_.vocab.size(); ++j) {
    const double f = result.frequencies[static_cast<size_t>(j)];
    const bool in_band = f >= 0.5 * n / m && f <= 0.5 * n;
    EXPECT_EQ(kept.count(j) > 0, in_band) << "concept " << j;
  }
  EXPECT_EQ(result.vocab.size(),
            static_cast<int>(result.kept_positions.size()));
  // Denoising must actually remove concepts on this vocabulary (81
  // concepts vs 10 classes: most are noise).
  EXPECT_LT(result.vocab.size(), env_.vocab.size());
  EXPECT_GE(result.vocab.size(), 1);
}

TEST_F(PipelineFixture, DenoiserKeepsDatasetRelevantConcepts) {
  // The retained concepts should be dominated by concepts related to the
  // dataset's true classes (cat/dog/bird/horse/plane/car/boat/truck map
  // into the NUS vocabulary via canonicalization).
  ConceptMiner miner(env_.vlp.get());
  const linalg::Matrix d =
      miner.MineDistributions(env_.dataset.pixels, env_.vocab);
  const DenoiseResult result = DenoiseConcepts(d, env_.vocab);
  std::set<int> class_ids(env_.dataset.class_ids.begin(),
                          env_.dataset.class_ids.end());
  int relevant = 0;
  for (int id : result.vocab.ids) {
    if (class_ids.count(id)) ++relevant;
  }
  // At least half the class-relevant vocabulary entries survive.
  int class_in_vocab = 0;
  for (int id : env_.vocab.ids) {
    if (class_ids.count(id)) ++class_in_vocab;
  }
  ASSERT_GT(class_in_vocab, 0);
  EXPECT_GE(relevant * 2, class_in_vocab);
}

TEST(DenoiserDegenerateTest, AllOutOfBandFallsBackToFullVocab) {
  // One concept absorbs every argmax -> frequency n > 0.5n, all others 0.
  linalg::Matrix d(10, 3);
  for (int i = 0; i < 10; ++i) {
    d(i, 0) = 0.9f;
    d(i, 1) = 0.05f;
    d(i, 2) = 0.05f;
  }
  data::ConceptVocab vocab;
  vocab.names = {"a", "b", "c"};
  vocab.ids = {0, 1, 2};
  const DenoiseResult result = DenoiseConcepts(d, vocab);
  EXPECT_EQ(result.vocab.size(), 3);  // fallback keeps everything
}

TEST_F(PipelineFixture, KMeansClusteringMergesConceptColumns) {
  ConceptMiner miner(env_.vlp.get());
  const linalg::Matrix scores =
      miner.ScoreConcepts(env_.dataset.pixels, env_.vocab);
  Rng rng(5);
  Result<linalg::Matrix> merged = ClusterConceptsKMeans(scores, 20, &rng);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->rows(), scores.rows());
  EXPECT_EQ(merged->cols(), 20);
  // Values remain in [0, 1] (means of [0,1] scores).
  for (size_t i = 0; i < merged->size(); ++i) {
    EXPECT_GE(merged->data()[i], 0.0f);
    EXPECT_LE(merged->data()[i], 1.0f);
  }
  EXPECT_FALSE(ClusterConceptsKMeans(scores, 0, &rng).ok());
  EXPECT_FALSE(
      ClusterConceptsKMeans(scores, scores.cols() + 1, &rng).ok());
}

TEST_F(PipelineFixture, SimilarityMatrixIsWellFormed) {
  ConceptMiner miner(env_.vlp.get());
  const linalg::Matrix d =
      miner.MineDistributions(env_.dataset.pixels, env_.vocab);
  const linalg::Matrix q = SimilarityFromDistributions(d);
  EXPECT_EQ(q.rows(), d.rows());
  EXPECT_EQ(q.cols(), d.rows());
  for (int i = 0; i < q.rows(); ++i) {
    EXPECT_FLOAT_EQ(q(i, i), 1.0f);
    for (int j = 0; j < q.cols(); ++j) {
      EXPECT_NEAR(q(i, j), q(j, i), 1e-5f);
      EXPECT_GE(q(i, j), -1e-5f);  // distributions are non-negative
      EXPECT_LE(q(i, j), 1.0f + 1e-5f);
    }
  }
}

TEST_F(PipelineFixture, SimilarityReflectsGroundTruth) {
  // Same-class pairs should receive higher mined similarity than
  // cross-class pairs on average — the paper's core premise.
  ConceptMiner miner(env_.vlp.get());
  const linalg::Matrix d =
      miner.MineDistributions(env_.dataset.pixels, env_.vocab);
  const DenoiseResult den = DenoiseConcepts(d, env_.vocab);
  const linalg::Matrix d2 =
      miner.MineDistributions(env_.dataset.pixels, den.vocab);
  const linalg::Matrix q = SimilarityFromDistributions(d2);

  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  const int probe = std::min(120, env_.dataset.num_images());
  for (int i = 0; i < probe; ++i) {
    for (int j = i + 1; j < probe; ++j) {
      if (env_.dataset.Relevant(i, j)) {
        same += q(i, j);
        ++same_n;
      } else {
        cross += q(i, j);
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same / same_n, cross / cross_n + 0.25);
}

TEST(AverageSimilarityTest, ElementwiseMean) {
  linalg::Matrix a(2, 2, 1.0f);
  linalg::Matrix b(2, 2, 0.0f);
  linalg::Matrix c(2, 2, 0.5f);
  const linalg::Matrix avg = AverageSimilarity({a, b, c});
  for (size_t i = 0; i < avg.size(); ++i) {
    EXPECT_FLOAT_EQ(avg.data()[i], 0.5f);
  }
}

TEST(SimilarityStatsTest, ComputesSummary) {
  linalg::Matrix q = linalg::Matrix::FromRowMajor(
      2, 2, {1.0f, 0.8f, 0.8f, 1.0f});
  const SimilarityStats stats = ComputeSimilarityStats(q, 0.5f);
  EXPECT_FLOAT_EQ(stats.min, 0.8f);
  EXPECT_FLOAT_EQ(stats.max, 1.0f);
  EXPECT_NEAR(stats.mean, 0.9f, 1e-5f);
  EXPECT_FLOAT_EQ(stats.frac_above_threshold, 1.0f);
}

}  // namespace
}  // namespace uhscm::core
