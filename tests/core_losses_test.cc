#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.h"
#include "core/losses.h"
#include "linalg/ops.h"

namespace uhscm::core {
namespace {

using linalg::Matrix;

/// Central finite-difference check of dL/dZ for any loss closure.
double MaxGradError(const Matrix& z,
                    const std::function<LossAndGrad(const Matrix&)>& loss_fn,
                    int samples, Rng* rng, double eps = 1e-3) {
  const LossAndGrad base = loss_fn(z);
  double max_err = 0.0;
  for (int s = 0; s < samples; ++s) {
    const size_t j = static_cast<size_t>(rng->UniformInt(z.size()));
    Matrix zp = z;
    zp.data()[j] += static_cast<float>(eps);
    Matrix zm = z;
    zm.data()[j] -= static_cast<float>(eps);
    const double numeric =
        (loss_fn(zp).loss - loss_fn(zm).loss) / (2.0 * eps);
    const double analytic = base.dz.data()[j];
    // The 1e-3 floor keeps float-precision noise on near-zero gradient
    // entries from dominating the relative error.
    const double denom =
        std::max({std::fabs(numeric), std::fabs(analytic), 1e-3});
    max_err = std::max(max_err, std::fabs(numeric - analytic) / denom);
  }
  return max_err;
}

/// A random similarity matrix with values in [0, 1], symmetric, unit
/// diagonal — mimicking a Q sub-matrix.
Matrix RandomQ(int t, Rng* rng) {
  Matrix q(t, t);
  for (int i = 0; i < t; ++i) {
    q(i, i) = 1.0f;
    for (int j = i + 1; j < t; ++j) {
      const float v = static_cast<float>(rng->Uniform());
      q(i, j) = v;
      q(j, i) = v;
    }
  }
  return q;
}

TEST(CosineSimilarityBackwardTest, DiagonalGradientsVanish) {
  Rng rng(1);
  Matrix z = Matrix::RandomNormal(4, 6, &rng);
  // Only diagonal entries of G set: gradient through cos(z_i, z_i) == 1
  // must be exactly projected out.
  Matrix g(4, 4);
  for (int i = 0; i < 4; ++i) g(i, i) = 1.0f;
  Matrix dz = CosineSimilarityBackward(z, g);
  for (size_t i = 0; i < dz.size(); ++i) {
    EXPECT_NEAR(dz.data()[i], 0.0f, 1e-5f);
  }
}

class UhscmLossGradient : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(UhscmLossGradient, MatchesFiniteDifferences) {
  const auto [t, k] = GetParam();
  Rng rng(100 + t + k);
  Matrix z = Matrix::RandomNormal(t, k, &rng);
  // Keep z away from the sign() kinks so finite differences are valid.
  for (size_t i = 0; i < z.size(); ++i) {
    if (std::fabs(z.data()[i]) < 0.05f) {
      z.data()[i] = z.data()[i] < 0 ? -0.05f : 0.05f;
    }
  }
  const Matrix q = RandomQ(t, &rng);
  UhscmLossOptions options;
  options.alpha = 0.3f;
  options.beta = 0.01f;
  options.gamma = 0.3f;
  options.lambda = 0.5f;
  auto loss_fn = [&](const Matrix& zz) {
    return UhscmBatchLoss(zz, q, options);
  };
  EXPECT_LT(MaxGradError(z, loss_fn, 20, &rng), 2e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UhscmLossGradient,
    ::testing::Values(std::make_tuple(4, 8), std::make_tuple(8, 16),
                      std::make_tuple(12, 32), std::make_tuple(6, 4)));

TEST(UhscmLossTest, PerfectCodesHaveNearZeroSimilarityLoss) {
  // Two groups of identical codes; Q matches exactly.
  Matrix z(4, 8);
  for (int c = 0; c < 8; ++c) {
    z(0, c) = z(1, c) = (c % 2 == 0) ? 1.0f : -1.0f;
    z(2, c) = z(3, c) = (c % 3 == 0) ? 1.0f : -1.0f;
  }
  Matrix q(4, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      q(i, j) = linalg::CosineSimilarity(z.Row(i), z.Row(j), 8);
    }
  }
  UhscmLossOptions options;
  options.alpha = 0.0f;  // isolate Ls + quantization
  options.beta = 0.0f;
  const LossAndGrad lg = UhscmBatchLoss(z, q, options);
  EXPECT_NEAR(lg.loss, 0.0, 1e-8);
  for (size_t i = 0; i < lg.dz.size(); ++i) {
    EXPECT_NEAR(lg.dz.data()[i], 0.0f, 1e-5f);
  }
}

TEST(UhscmLossTest, GradientDescentIncreasesPositivePairSimilarity) {
  // Sanity-check the -log interpretation of Eq. (8): descending the loss
  // must pull positive pairs together (see the header note about the
  // missing -log in the paper's printed formula).
  Rng rng(7);
  Matrix z = Matrix::RandomNormal(6, 16, &rng);
  Matrix q(6, 6);
  // Pairs (0,1), (2,3), (4,5) similar; everything else dissimilar.
  for (int i = 0; i < 6; ++i) q(i, i) = 1.0f;
  q(0, 1) = q(1, 0) = 0.95f;
  q(2, 3) = q(3, 2) = 0.95f;
  q(4, 5) = q(5, 4) = 0.95f;

  UhscmLossOptions options;
  options.alpha = 1.0f;
  options.beta = 0.0f;
  options.lambda = 0.9f;
  options.gamma = 0.3f;

  auto positive_similarity = [&](const Matrix& codes) {
    return (linalg::CosineSimilarity(codes.Row(0), codes.Row(1), 16) +
            linalg::CosineSimilarity(codes.Row(2), codes.Row(3), 16) +
            linalg::CosineSimilarity(codes.Row(4), codes.Row(5), 16)) /
           3.0f;
  };

  const float before = positive_similarity(z);
  for (int step = 0; step < 200; ++step) {
    const LossAndGrad lg = UhscmBatchLoss(z, q, options);
    z.AddScaled(lg.dz, -0.5f);
  }
  const float after = positive_similarity(z);
  EXPECT_GT(after, before + 0.1f);
}

TEST(UhscmLossTest, DisableContrastiveDropsLcTerm) {
  Rng rng(9);
  Matrix z = Matrix::RandomNormal(5, 8, &rng);
  Matrix q = RandomQ(5, &rng);
  UhscmLossOptions with;
  with.alpha = 0.5f;
  with.lambda = 0.3f;  // guarantees nonempty Psi
  UhscmLossOptions without = with;
  without.disable_contrastive = true;
  const double l_with = UhscmBatchLoss(z, q, with).loss;
  const double l_without = UhscmBatchLoss(z, q, without).loss;
  EXPECT_GT(l_with, l_without);
  // alpha = 0 equals disabled.
  UhscmLossOptions zero_alpha = with;
  zero_alpha.alpha = 0.0f;
  EXPECT_DOUBLE_EQ(UhscmBatchLoss(z, q, zero_alpha).loss, l_without);
}

TEST(UhscmLossTest, QuantizationPullsTowardHypercube) {
  Matrix z = Matrix::FromRowMajor(2, 2, {0.5f, -0.5f, 0.2f, -0.9f});
  Matrix q = Matrix::Identity(2);
  q(0, 1) = q(1, 0) = 0.0f;
  UhscmLossOptions options;
  options.alpha = 0.0f;
  options.beta = 1.0f;
  const LossAndGrad lg = UhscmBatchLoss(z, q, options);
  // d(quant)/dz at z=0.5 (target +1) is negative -> moving z up.
  EXPECT_LT(lg.dz(0, 0), 0.4f);  // combined with Ls but quant dominates sign
}

// ------------------------------------------- original contrastive (CIB)

TEST(OriginalContrastiveLossTest, GradientMatchesFiniteDifferences) {
  Rng rng(11);
  const int t = 5;
  Matrix z = Matrix::RandomNormal(2 * t, 12, &rng);
  auto loss_fn = [&](const Matrix& zz) {
    return OriginalContrastiveLoss(zz, t, 0.4f);
  };
  EXPECT_LT(MaxGradError(z, loss_fn, 24, &rng), 2e-2);
}

TEST(OriginalContrastiveLossTest, AlignedViewsHaveLowerLoss) {
  Rng rng(13);
  const int t = 6;
  Matrix v1 = Matrix::RandomNormal(t, 8, &rng);
  // Aligned: second view = first view.
  Matrix aligned(2 * t, 8);
  for (int i = 0; i < t; ++i) {
    std::copy(v1.Row(i), v1.Row(i) + 8, aligned.Row(i));
    std::copy(v1.Row(i), v1.Row(i) + 8, aligned.Row(t + i));
  }
  // Misaligned: second view is an unrelated random draw.
  Matrix v2 = Matrix::RandomNormal(t, 8, &rng);
  Matrix misaligned(2 * t, 8);
  for (int i = 0; i < t; ++i) {
    std::copy(v1.Row(i), v1.Row(i) + 8, misaligned.Row(i));
    std::copy(v2.Row(i), v2.Row(i) + 8, misaligned.Row(t + i));
  }
  EXPECT_LT(OriginalContrastiveLoss(aligned, t, 0.3f).loss,
            OriginalContrastiveLoss(misaligned, t, 0.3f).loss);
}

// --------------------------------------------------- masked L2 + triplet

TEST(MaskedL2SimilarityLossTest, GradientMatchesFiniteDifferences) {
  Rng rng(17);
  const int t = 6;
  Matrix z = Matrix::RandomNormal(t, 10, &rng);
  for (size_t i = 0; i < z.size(); ++i) {
    if (std::fabs(z.data()[i]) < 0.05f) z.data()[i] = 0.05f;
  }
  Matrix s = RandomQ(t, &rng);
  // Random 0/1 mask with guaranteed mass.
  Matrix mask(t, t);
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < t; ++j) {
      mask(i, j) = rng.Bernoulli(0.6) ? 1.0f : 0.0f;
    }
    mask(i, i) = 1.0f;
  }
  auto loss_fn = [&](const Matrix& zz) {
    return MaskedL2SimilarityLoss(zz, s, mask, 0.01f);
  };
  EXPECT_LT(MaxGradError(z, loss_fn, 20, &rng), 2e-2);
}

TEST(MaskedL2SimilarityLossTest, MaskedPairsDoNotContribute) {
  Rng rng(19);
  Matrix z = Matrix::RandomNormal(3, 6, &rng);
  Matrix s_a(3, 3, 0.0f);
  Matrix s_b = s_a;
  s_b(0, 1) = 5.0f;  // absurd target, but masked out
  s_b(1, 0) = 5.0f;
  Matrix mask(3, 3, 1.0f);
  mask(0, 1) = 0.0f;
  mask(1, 0) = 0.0f;
  EXPECT_DOUBLE_EQ(MaskedL2SimilarityLoss(z, s_a, mask, 0.0f).loss,
                   MaskedL2SimilarityLoss(z, s_b, mask, 0.0f).loss);
}

TEST(TripletCosineLossTest, GradientMatchesFiniteDifferences) {
  Rng rng(23);
  Matrix z = Matrix::RandomNormal(6, 10, &rng);
  for (size_t i = 0; i < z.size(); ++i) {
    if (std::fabs(z.data()[i]) < 0.05f) z.data()[i] = 0.05f;
  }
  std::vector<Triplet> triplets{{0, 1, 2}, {3, 4, 5}, {1, 0, 4}};
  // Margin 2.5 > 2 keeps every triplet strictly inside the active branch
  // of the hinge (cosines live in [-1, 1]), so the loss is smooth at the
  // probe points and finite differences are trustworthy.
  auto loss_fn = [&](const Matrix& zz) {
    return TripletCosineLoss(zz, triplets, 2.5f, 0.01f);
  };
  EXPECT_LT(MaxGradError(z, loss_fn, 20, &rng), 2e-2);
}

TEST(TripletCosineLossTest, SatisfiedTripletsGiveZeroLoss) {
  // anchor == positive, negative orthogonal: margin easily satisfied.
  Matrix z(3, 4);
  z(0, 0) = 1.0f;
  z(1, 0) = 1.0f;
  z(2, 1) = 1.0f;
  std::vector<Triplet> triplets{{0, 1, 2}};
  const LossAndGrad lg = TripletCosineLoss(z, triplets, 0.5f, 0.0f);
  EXPECT_DOUBLE_EQ(lg.loss, 0.0);
}

TEST(TripletCosineLossTest, EmptyTripletsOnlyQuantization) {
  Matrix z = Matrix::FromRowMajor(1, 2, {0.5f, -0.5f});
  const LossAndGrad lg = TripletCosineLoss(z, {}, 0.5f, 1.0f);
  // quant = (1/1) * ((0.5-1)^2 + (-0.5+1)^2) = 0.5
  EXPECT_NEAR(lg.loss, 0.5, 1e-6);
}

}  // namespace
}  // namespace uhscm::core
