#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/ops.h"

namespace uhscm::linalg {
namespace {

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0f);
  }
}

TEST(MatrixTest, FromRowMajorLaysOutRows) {
  Matrix m = Matrix::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m(0, 0), 1.0f);
  EXPECT_EQ(m(0, 2), 3.0f);
  EXPECT_EQ(m(1, 0), 4.0f);
  EXPECT_EQ(m(1, 2), 6.0f);
}

TEST(MatrixTest, TransposeInvolution) {
  Rng rng(3);
  Matrix m = Matrix::RandomNormal(5, 7, &rng);
  Matrix tt = m.Transposed().Transposed();
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 7; ++c) EXPECT_EQ(m(r, c), tt(r, c));
  }
}

TEST(MatrixTest, SelectRowsGathers) {
  Matrix m = Matrix::FromRowMajor(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix s = m.SelectRows({2, 0});
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s(0, 0), 5.0f);
  EXPECT_EQ(s(1, 1), 2.0f);
}

TEST(MatrixTest, RowAndColVector) {
  Matrix m = Matrix::FromRowMajor(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.RowVector(1), (std::vector<float>{4, 5, 6}));
  EXPECT_EQ(m.ColVector(2), (std::vector<float>{3, 6}));
}

TEST(MatrixTest, SetRowWrites) {
  Matrix m(2, 2);
  m.SetRow(1, {7, 8});
  EXPECT_EQ(m(1, 0), 7.0f);
  EXPECT_EQ(m(1, 1), 8.0f);
}

TEST(MatrixTest, ArithmeticInPlace) {
  Matrix a = Matrix::FromRowMajor(2, 2, {1, 2, 3, 4});
  Matrix b = Matrix::FromRowMajor(2, 2, {10, 20, 30, 40});
  a.Add(b);
  EXPECT_EQ(a(1, 1), 44.0f);
  a.AddScaled(b, -1.0f);
  EXPECT_EQ(a(0, 0), 1.0f);
  a.Scale(2.0f);
  EXPECT_EQ(a(0, 1), 4.0f);
  a.Fill(9.0f);
  EXPECT_EQ(a(1, 0), 9.0f);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m = Matrix::FromRowMajor(1, 2, {3, 4});
  EXPECT_FLOAT_EQ(m.FrobeniusNorm(), 5.0f);
}

TEST(MatrixTest, IdentityIsDiagonal) {
  Matrix id = Matrix::Identity(4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(id(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, DebugStringMentionsShape) {
  Matrix m(2, 2);
  EXPECT_NE(m.DebugString().find("2x2"), std::string::npos);
}

// ------------------------------------------------------------------- ops

/// Naive reference multiply for cross-checking kernels.
Matrix NaiveMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float s = 0.0f;
      for (int k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  }
  return c;
}

class MatMulShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatMulShapes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(101);
  Matrix a = Matrix::RandomNormal(m, k, &rng);
  Matrix b = Matrix::RandomNormal(k, n, &rng);
  const Matrix fast = MatMul(a, b);
  const Matrix slow = NaiveMatMul(a, b);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(fast(i, j), slow(i, j), 1e-3f);
    }
  }
}

TEST_P(MatMulShapes, TransAMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(102);
  Matrix a = Matrix::RandomNormal(k, m, &rng);
  Matrix b = Matrix::RandomNormal(k, n, &rng);
  const Matrix fast = MatMulTransA(a, b);
  const Matrix slow = NaiveMatMul(a.Transposed(), b);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(fast(i, j), slow(i, j), 1e-3f);
    }
  }
}

TEST_P(MatMulShapes, TransBMatchesExplicitTranspose) {
  const auto [m, k, n] = GetParam();
  Rng rng(103);
  Matrix a = Matrix::RandomNormal(m, k, &rng);
  Matrix b = Matrix::RandomNormal(n, k, &rng);
  const Matrix fast = MatMulTransB(a, b);
  const Matrix slow = NaiveMatMul(a, b.Transposed());
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(fast(i, j), slow(i, j), 1e-3f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(8, 8, 8), std::make_tuple(17, 4, 23),
                      std::make_tuple(2, 31, 7),
                      // Shapes that cross the kMC/kKC cache-block and
                      // 4-wide register-tile boundaries of the blocked
                      // kernels, including non-multiples of every tile.
                      std::make_tuple(33, 130, 37), std::make_tuple(64, 128, 64),
                      std::make_tuple(65, 129, 66), std::make_tuple(100, 257, 3),
                      std::make_tuple(31, 259, 121)));

TEST(OpsTest, BlockedMatMulMatchesNaiveTightTolerance) {
  // The blocked kernels reassociate float sums; on O(100)-term unit-scale
  // dot products the drift must stay within 1e-4 of the naive order.
  Rng rng(211);
  Matrix a = Matrix::RandomNormal(45, 150, &rng);
  Matrix b = Matrix::RandomNormal(150, 52, &rng);
  const Matrix fast = MatMul(a, b);
  const Matrix slow = NaiveMatMul(a, b);
  for (int i = 0; i < fast.rows(); ++i) {
    for (int j = 0; j < fast.cols(); ++j) {
      EXPECT_NEAR(fast(i, j), slow(i, j), 1e-4f);
    }
  }
  // A^T B with a 150-deep inner dimension (crosses the kKC panel).
  Matrix c = Matrix::RandomNormal(150, 41, &rng);
  const Matrix fast_ta = MatMulTransA(b, c);  // (150x52)^T * (150x41)
  const Matrix slow_ta = NaiveMatMul(b.Transposed(), c);
  for (int i = 0; i < slow_ta.rows(); ++i) {
    for (int j = 0; j < slow_ta.cols(); ++j) {
      EXPECT_NEAR(fast_ta(i, j), slow_ta(i, j), 1e-4f);
    }
  }
  const Matrix fast_tb = MatMulTransB(a, b.Transposed());
  const Matrix slow_tb = NaiveMatMul(a, b);
  for (int i = 0; i < slow_tb.rows(); ++i) {
    for (int j = 0; j < slow_tb.cols(); ++j) {
      EXPECT_NEAR(fast_tb(i, j), slow_tb(i, j), 1e-4f);
    }
  }
}

class PackedGemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PackedGemmShapes, PackedMatchesBlockedAndNaive) {
  // Shapes above the packed-panel dispatch threshold, chosen to cross the
  // kMR=6 / kNR=16 micro-tile edges, the kGemmKC=256 inner slab, and the
  // kGemmMC i-block — each with remainders. All three variants must agree
  // with the naive reference (float reassociation tolerance) regardless
  // of which micro-kernel (AVX2 or portable) PickMicroKernel chose.
  const auto [m, k, n] = GetParam();
  Rng rng(301);
  Matrix a = Matrix::RandomNormal(m, k, &rng);
  Matrix b = Matrix::RandomNormal(k, n, &rng);
  const Matrix naive = NaiveMatMul(a, b);
  const Matrix packed = MatMul(a, b);
  const Matrix blocked = MatMulBlocked(a, b);
  // Rounding drift scales with the inner dimension (the sequential naive
  // reference drifts the most; the tiled kernels' tree-like accumulation
  // drifts less), so the bar does too.
  const float tol = 5e-6f * static_cast<float>(k) + 1e-4f;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(packed(i, j), naive(i, j), tol) << i << "," << j;
      EXPECT_NEAR(blocked(i, j), naive(i, j), tol) << i << "," << j;
    }
  }

  // Transposed entry points at the same (packed-dispatch) sizes: the
  // packing step absorbs the transpose, so storage order must not matter.
  Matrix at = a.Transposed();  // k x m
  const Matrix packed_ta = MatMulTransA(at, b);
  Matrix bt = b.Transposed();  // n x k
  const Matrix packed_tb = MatMulTransB(a, bt);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_NEAR(packed_ta(i, j), naive(i, j), tol) << "TA " << i << "," << j;
      EXPECT_NEAR(packed_tb(i, j), naive(i, j), tol) << "TB " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackedGemmShapes,
    ::testing::Values(std::make_tuple(70, 129, 67),   // all-tile remainders
                      std::make_tuple(96, 256, 96),   // exact kGemmKC slab
                      std::make_tuple(97, 300, 31),   // kGemmMC + slab tails
                      std::make_tuple(6, 3000, 16))); // single tile, deep k

TEST(OpsTest, MatMulZeroHeavyInputsStayExact) {
  // The dense kernels dropped the av == 0 skip; sparse inputs must still
  // produce the same results as the naive reference.
  Rng rng(212);
  Matrix a = Matrix::RandomNormal(20, 40, &rng);
  for (size_t i = 0; i < a.size(); ++i) {
    if (rng.Bernoulli(0.8)) a.data()[i] = 0.0f;
  }
  Matrix b = Matrix::RandomNormal(40, 30, &rng);
  const Matrix fast = MatMul(a, b);
  const Matrix slow = NaiveMatMul(a, b);
  for (int i = 0; i < fast.rows(); ++i) {
    for (int j = 0; j < fast.cols(); ++j) {
      EXPECT_NEAR(fast(i, j), slow(i, j), 1e-4f);
    }
  }
}

TEST(OpsTest, MatVecParallelMatchesNaive) {
  // 701x130 = ~91k flops, above MatVec's kParallelMinFlops cutoff, so
  // this covers the pool-dispatched branch (the tiny MatVec test below
  // covers the serial one).
  Rng rng(213);
  Matrix a = Matrix::RandomNormal(701, 130, &rng);
  Vector x(130);
  for (auto& v : x) v = static_cast<float>(rng.Normal());
  const Vector y = MatVec(a, x);
  ASSERT_EQ(y.size(), 701u);
  for (int i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (int c = 0; c < a.cols(); ++c) {
      s += static_cast<double>(a(i, c)) * x[static_cast<size_t>(c)];
    }
    EXPECT_NEAR(y[static_cast<size_t>(i)], static_cast<float>(s), 1e-3f);
  }
}

TEST(OpsTest, MatVec) {
  Matrix a = Matrix::FromRowMajor(2, 3, {1, 0, 2, 0, 1, 1});
  Vector y = MatVec(a, {1, 2, 3});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
  EXPECT_FLOAT_EQ(y[1], 5.0f);
}

TEST(OpsTest, DotAndNorm) {
  Vector a{1, 2, 3};
  Vector b{4, 5, 6};
  EXPECT_FLOAT_EQ(Dot(a, b), 32.0f);
  EXPECT_FLOAT_EQ(Norm2(a), std::sqrt(14.0f));
}

TEST(OpsTest, CosineSimilarityProperties) {
  Vector a{1, 0, 0};
  Vector b{0, 1, 0};
  Vector c{2, 0, 0};
  EXPECT_FLOAT_EQ(CosineSimilarity(a.data(), b.data(), 3), 0.0f);
  EXPECT_FLOAT_EQ(CosineSimilarity(a.data(), c.data(), 3), 1.0f);
  Vector zero{0, 0, 0};
  EXPECT_FLOAT_EQ(CosineSimilarity(a.data(), zero.data(), 3), 0.0f);
}

TEST(OpsTest, NormalizeRowsMakesUnitRows) {
  Rng rng(5);
  Matrix m = Matrix::RandomNormal(6, 9, &rng);
  NormalizeRowsL2(&m);
  for (int r = 0; r < 6; ++r) {
    EXPECT_NEAR(Norm2(m.Row(r), 9), 1.0f, 1e-5f);
  }
}

TEST(OpsTest, SoftmaxRowsSumToOneAndOrderPreserving) {
  Matrix m = Matrix::FromRowMajor(2, 3, {0.1f, 0.9f, 0.5f, -1, 0, 1});
  Matrix p = SoftmaxRows(m, 5.0f);
  for (int r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (int c = 0; c < 3; ++c) {
      EXPECT_GT(p(r, c), 0.0f);
      sum += p(r, c);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(p(0, 1), p(0, 2));
  EXPECT_GT(p(0, 2), p(0, 0));
}

TEST(OpsTest, SoftmaxHighTemperatureConcentrates) {
  Matrix m = Matrix::FromRowMajor(1, 3, {0.2f, 0.8f, 0.5f});
  Matrix sharp = SoftmaxRows(m, 100.0f);
  EXPECT_GT(sharp(0, 1), 0.99f);
  Matrix flat = SoftmaxRows(m, 0.001f);
  EXPECT_NEAR(flat(0, 0), 1.0f / 3.0f, 1e-3f);
}

TEST(OpsTest, PairwiseCosineMatchesScalar) {
  Rng rng(7);
  Matrix a = Matrix::RandomNormal(4, 6, &rng);
  Matrix b = Matrix::RandomNormal(3, 6, &rng);
  Matrix s = PairwiseCosine(a, b);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(s(i, j), CosineSimilarity(a.Row(i), b.Row(j), 6), 1e-4f);
    }
  }
}

TEST(OpsTest, SelfCosineSymmetricUnitDiagonal) {
  Rng rng(8);
  Matrix a = Matrix::RandomNormal(5, 4, &rng);
  Matrix s = SelfCosine(a);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(s(i, i), 1.0f);
    for (int j = 0; j < 5; ++j) {
      EXPECT_NEAR(s(i, j), s(j, i), 1e-5f);
      EXPECT_LE(std::fabs(s(i, j)), 1.0f + 1e-5f);
    }
  }
}

TEST(OpsTest, ColumnMeansAndCenter) {
  Matrix m = Matrix::FromRowMajor(2, 2, {1, 10, 3, 30});
  Vector mean = ColumnMeans(m);
  EXPECT_FLOAT_EQ(mean[0], 2.0f);
  EXPECT_FLOAT_EQ(mean[1], 20.0f);
  CenterRows(&m, mean);
  EXPECT_FLOAT_EQ(m(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 10.0f);
}

TEST(OpsTest, CovarianceOfKnownData) {
  // Two variables, the second is 2x the first: cov = [[v, 2v], [2v, 4v]].
  Matrix m = Matrix::FromRowMajor(3, 2, {1, 2, 2, 4, 3, 6});
  Matrix cov = Covariance(m);
  EXPECT_NEAR(cov(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(cov(0, 1), 2.0f, 1e-5f);
  EXPECT_NEAR(cov(1, 1), 4.0f, 1e-5f);
}

TEST(OpsTest, SignMapsToPlusMinusOne) {
  Matrix m = Matrix::FromRowMajor(1, 4, {-0.5f, 0.0f, 0.1f, -3.0f});
  Matrix s = Sign(m);
  EXPECT_EQ(s(0, 0), -1.0f);
  EXPECT_EQ(s(0, 1), 1.0f);  // documented convention: sign(0) = +1
  EXPECT_EQ(s(0, 2), 1.0f);
  EXPECT_EQ(s(0, 3), -1.0f);
}

TEST(OpsTest, TanhAndMean) {
  Matrix m = Matrix::FromRowMajor(1, 2, {0.0f, 100.0f});
  Matrix t = Tanh(m);
  EXPECT_FLOAT_EQ(t(0, 0), 0.0f);
  EXPECT_NEAR(t(0, 1), 1.0f, 1e-6f);
  EXPECT_NEAR(Mean(t), 0.5f, 1e-6f);
}

}  // namespace
}  // namespace uhscm::linalg
