#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "eval/metrics.h"
#include "eval/retrieval_eval.h"
#include "linalg/ops.h"

namespace uhscm::eval {
namespace {

// -------------------------------------------------------------------- AP

TEST(AveragePrecisionTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(AveragePrecision({true, true, true}, 3), 1.0);
}

TEST(AveragePrecisionTest, HandComputedMixedCase) {
  // Relevant at ranks 1 and 3: AP = (1/1 + 2/3) / 2 = 5/6.
  EXPECT_NEAR(AveragePrecision({true, false, true, false}, 4), 5.0 / 6.0,
              1e-12);
}

TEST(AveragePrecisionTest, NothingRelevantIsZero) {
  EXPECT_DOUBLE_EQ(AveragePrecision({false, false}, 2), 0.0);
  EXPECT_DOUBLE_EQ(AveragePrecision({}, 5), 0.0);
}

TEST(AveragePrecisionTest, TopNCutoffIgnoresTail) {
  // Relevant only beyond the cut-off.
  EXPECT_DOUBLE_EQ(AveragePrecision({false, false, true}, 2), 0.0);
  // Cut-off smaller than the list.
  EXPECT_DOUBLE_EQ(AveragePrecision({true, false, true}, 1), 1.0);
}

TEST(PrecisionAtNTest, Basic) {
  EXPECT_DOUBLE_EQ(PrecisionAtN({true, false, true, true}, 4), 0.75);
  EXPECT_DOUBLE_EQ(PrecisionAtN({true, false}, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN({}, 10), 0.0);
}

// ------------------------------------------------------------------- PR

TEST(PrCurveTest, CumulativeOverRadii) {
  // Database of 4: distances 0,1,1,3; relevant: yes,no,yes,yes.
  const std::vector<int> dist{0, 1, 1, 3};
  const std::vector<bool> rel{true, false, true, true};
  const auto curve = PrCurveByRadius(dist, rel, 3, 4);
  ASSERT_EQ(curve.size(), 5u);
  // r=0: retrieved {0}: precision 1, recall 1/3.
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_NEAR(curve[0].recall, 1.0 / 3.0, 1e-12);
  // r=1: retrieved {0,1,2}: precision 2/3, recall 2/3.
  EXPECT_NEAR(curve[1].precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(curve[1].recall, 2.0 / 3.0, 1e-12);
  // r=3: everything: precision 3/4, recall 1.
  EXPECT_NEAR(curve[3].precision, 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(curve[3].recall, 1.0);
}

TEST(PrCurveTest, RecallIsMonotoneNonDecreasing) {
  Rng rng(5);
  std::vector<int> dist(100);
  std::vector<bool> rel(100);
  int total_rel = 0;
  for (int i = 0; i < 100; ++i) {
    dist[static_cast<size_t>(i)] = static_cast<int>(rng.UniformInt(33));
    rel[static_cast<size_t>(i)] = rng.Bernoulli(0.3);
    if (rel[static_cast<size_t>(i)]) ++total_rel;
  }
  const auto curve = PrCurveByRadius(dist, rel, total_rel, 32);
  for (size_t r = 1; r < curve.size(); ++r) {
    EXPECT_GE(curve[r].recall, curve[r - 1].recall);
  }
  EXPECT_NEAR(curve.back().recall, 1.0, 1e-12);
}

TEST(PrCurveTest, EmptyRadiusConvention) {
  // Nothing retrieved at radius 0 -> precision 1, recall 0.
  const auto curve = PrCurveByRadius({5}, {true}, 1, 5);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.0);
}

TEST(AveragePrCurvesTest, PointwiseMean) {
  std::vector<PrPoint> a{{0.0, 1.0}, {1.0, 0.5}};
  std::vector<PrPoint> b{{0.2, 0.8}, {0.8, 0.7}};
  const auto mean = AveragePrCurves({a, b});
  EXPECT_NEAR(mean[0].recall, 0.1, 1e-12);
  EXPECT_NEAR(mean[0].precision, 0.9, 1e-12);
  EXPECT_NEAR(mean[1].precision, 0.6, 1e-12);
}

// ------------------------------------------------------------ silhouette

TEST(SilhouetteTest, SeparatedClustersScoreHigh) {
  std::vector<float> pts;
  std::vector<int> labels;
  Rng rng(9);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 20; ++i) {
      pts.push_back(static_cast<float>(c * 20 + rng.Normal(0.0, 0.5)));
      pts.push_back(static_cast<float>(rng.Normal(0.0, 0.5)));
      labels.push_back(c);
    }
  }
  EXPECT_GT(MeanSilhouette(pts, 2, labels), 0.8);
}

TEST(SilhouetteTest, RandomLabelsScoreNearZero) {
  std::vector<float> pts;
  std::vector<int> labels;
  Rng rng(10);
  for (int i = 0; i < 60; ++i) {
    pts.push_back(static_cast<float>(rng.Normal()));
    pts.push_back(static_cast<float>(rng.Normal()));
    labels.push_back(static_cast<int>(rng.UniformInt(3)));
  }
  EXPECT_LT(std::fabs(MeanSilhouette(pts, 2, labels)), 0.25);
}

// ------------------------------------------------------ EvaluateRetrieval

/// Builds a tiny dataset and label-derived perfect codes: every class gets
/// an orthogonal-ish codeword, so Hamming ranking is ideal.
struct PerfectSetup {
  data::Dataset dataset;
  linalg::Matrix db_codes;
  linalg::Matrix query_codes;
};

PerfectSetup MakePerfectSetup(int bits) {
  PerfectSetup setup;
  data::SemanticWorld world(31);
  data::SyntheticOptions options;
  options.sizes = {100, 40, 30};
  Rng rng(32);
  setup.dataset = data::MakeCifar10Like(&world, options, &rng);

  // Class codewords: random but fixed per class.
  Rng code_rng(33);
  linalg::Matrix codewords(setup.dataset.num_classes(), bits);
  for (size_t i = 0; i < codewords.size(); ++i) {
    codewords.data()[i] = code_rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  }
  const std::vector<int> primary = data::PrimaryClassIndex(setup.dataset);
  auto codes_for = [&](const std::vector<int>& ids) {
    linalg::Matrix codes(static_cast<int>(ids.size()), bits);
    for (size_t i = 0; i < ids.size(); ++i) {
      const int cls = primary[static_cast<size_t>(ids[i])];
      std::copy(codewords.Row(cls), codewords.Row(cls) + bits,
                codes.Row(static_cast<int>(i)));
    }
    return codes;
  };
  setup.db_codes = codes_for(setup.dataset.split.database);
  setup.query_codes = codes_for(setup.dataset.split.query);
  return setup;
}

TEST(EvaluateRetrievalTest, PerfectCodesGiveMapOne) {
  PerfectSetup setup = MakePerfectSetup(32);
  RetrievalEvalOptions options;
  options.map_at = 100;
  options.topn_points = {5, 10};
  options.compute_pr_curve = true;
  const RetrievalEvalResult result = EvaluateRetrieval(
      setup.dataset, setup.db_codes, setup.query_codes, options);
  // With distinct class codewords, all same-class items rank first.
  EXPECT_GT(result.map, 0.98);
  for (double p : result.precision_at_n) EXPECT_GT(p, 0.9);
  ASSERT_EQ(result.pr_curve.size(), 33u);
  EXPECT_GT(result.pr_curve[0].precision, 0.98);
}

TEST(EvaluateRetrievalTest, RandomCodesGiveChanceMap) {
  PerfectSetup setup = MakePerfectSetup(32);
  Rng rng(55);
  linalg::Matrix random_db(setup.db_codes.rows(), 32);
  linalg::Matrix random_q(setup.query_codes.rows(), 32);
  for (size_t i = 0; i < random_db.size(); ++i) {
    random_db.data()[i] = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  }
  for (size_t i = 0; i < random_q.size(); ++i) {
    random_q.data()[i] = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  }
  RetrievalEvalOptions options;
  options.map_at = 100;
  const RetrievalEvalResult result =
      EvaluateRetrieval(setup.dataset, random_db, random_q, options);
  // Chance ~ class prior (0.1 for 10 balanced classes); allow slack.
  EXPECT_LT(result.map, 0.3);
  EXPECT_GT(result.map, 0.02);
}

TEST(EvaluateRetrievalTest, MapAtClampsToDatabase) {
  PerfectSetup setup = MakePerfectSetup(16);
  RetrievalEvalOptions options;
  options.map_at = 100000;  // bigger than database
  const RetrievalEvalResult result = EvaluateRetrieval(
      setup.dataset, setup.db_codes, setup.query_codes, options);
  EXPECT_GT(result.map, 0.9);
}

}  // namespace
}  // namespace uhscm::eval
