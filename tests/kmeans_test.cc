#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "linalg/kmeans.h"
#include "linalg/ops.h"

namespace uhscm::linalg {
namespace {

/// Three well-separated Gaussian blobs in 2-D.
Matrix MakeBlobs(int per_cluster, Rng* rng) {
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  Matrix x(3 * per_cluster, 2);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      const int row = c * per_cluster + i;
      x(row, 0) = centers[c][0] + static_cast<float>(rng->Normal(0.0, 0.3));
      x(row, 1) = centers[c][1] + static_cast<float>(rng->Normal(0.0, 0.3));
    }
  }
  return x;
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  Rng rng(31);
  Matrix x = MakeBlobs(40, &rng);
  Result<KMeansResult> r = KMeans(x, 3, &rng);
  ASSERT_TRUE(r.ok());
  // All points of a blob share one assignment, and the three blobs get
  // three distinct clusters.
  std::set<int> blob_clusters;
  for (int c = 0; c < 3; ++c) {
    const int first = r->assignments[static_cast<size_t>(c * 40)];
    blob_clusters.insert(first);
    for (int i = 0; i < 40; ++i) {
      EXPECT_EQ(r->assignments[static_cast<size_t>(c * 40 + i)], first);
    }
  }
  EXPECT_EQ(blob_clusters.size(), 3u);
  EXPECT_LT(r->inertia, 120 * 1.0);  // ~ n * sigma^2 * dims scale
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  Rng rng(32);
  Matrix x = Matrix::RandomNormal(30, 3, &rng);
  Result<KMeansResult> r = KMeans(x, 1, &rng);
  ASSERT_TRUE(r.ok());
  Vector mean = ColumnMeans(x);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(r->centroids(0, c), mean[static_cast<size_t>(c)], 1e-4f);
  }
}

TEST(KMeansTest, KEqualsNPlacesOneCentroidPerPoint) {
  Rng rng(33);
  Matrix x = MakeBlobs(2, &rng);  // 6 points
  Result<KMeansResult> r = KMeans(x, 6, &rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->inertia, 0.0, 1e-6);
  std::set<int> used(r->assignments.begin(), r->assignments.end());
  EXPECT_EQ(used.size(), 6u);
}

TEST(KMeansTest, RejectsInvalidK) {
  Rng rng(34);
  Matrix x = Matrix::RandomNormal(5, 2, &rng);
  EXPECT_FALSE(KMeans(x, 0, &rng).ok());
  EXPECT_FALSE(KMeans(x, 6, &rng).ok());
}

TEST(KMeansTest, AssignmentsAreNearestCentroids) {
  Rng rng(35);
  Matrix x = MakeBlobs(20, &rng);
  Result<KMeansResult> r = KMeans(x, 3, &rng);
  ASSERT_TRUE(r.ok());
  for (int i = 0; i < x.rows(); ++i) {
    const int assigned = r->assignments[static_cast<size_t>(i)];
    const float own = SquaredDistance(x.Row(i), r->centroids.Row(assigned), 2);
    for (int c = 0; c < 3; ++c) {
      EXPECT_LE(own,
                SquaredDistance(x.Row(i), r->centroids.Row(c), 2) + 1e-4f);
    }
  }
}

class KMeansSweep : public ::testing::TestWithParam<int> {};

TEST_P(KMeansSweep, InertiaDecreasesWithMoreClusters) {
  const int k = GetParam();
  Rng rng(36);
  Matrix x = MakeBlobs(30, &rng);
  Rng rng_a(37), rng_b(37);
  Result<KMeansResult> with_k = KMeans(x, k, &rng_a);
  Result<KMeansResult> with_more = KMeans(x, k + 3, &rng_b);
  ASSERT_TRUE(with_k.ok());
  ASSERT_TRUE(with_more.ok());
  EXPECT_LE(with_more->inertia, with_k->inertia * 1.05 + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Ks, KMeansSweep, ::testing::Values(1, 2, 3, 5, 8));

TEST(KMeansTest, PlainInitAlsoConverges) {
  Rng rng(38);
  Matrix x = MakeBlobs(25, &rng);
  KMeansOptions options;
  options.plus_plus_init = false;
  Result<KMeansResult> r = KMeans(x, 3, &rng, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->iterations, 0);
}

}  // namespace
}  // namespace uhscm::linalg
