#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/rng.h"
#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/gradient_check.h"
#include "nn/linear.h"
#include "nn/sequential.h"
#include "nn/sgd.h"

namespace uhscm::nn {
namespace {

using linalg::Matrix;

/// Scalar loss 0.5*||out||^2 with grad = out; the simplest valid loss_fn
/// for gradient checking.
double HalfSquaredLoss(const Matrix& out, Matrix* grad) {
  double loss = 0.0;
  for (size_t i = 0; i < out.size(); ++i) {
    loss += 0.5 * static_cast<double>(out.data()[i]) * out.data()[i];
    grad->data()[i] = out.data()[i];
  }
  return loss;
}

TEST(LinearTest, ForwardShapeAndBias) {
  Rng rng(1);
  Linear layer(3, 2, &rng);
  Matrix x = Matrix::FromRowMajor(2, 3, {1, 0, 0, 0, 1, 0});
  Matrix y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), 2);
  // Row 0 = W.row(0) + b; bias starts at 0 so y = first weight row.
  EXPECT_NEAR(y(0, 0), layer.weight()(0, 0), 1e-6f);
  EXPECT_NEAR(y(1, 1), layer.weight()(1, 1), 1e-6f);
}

TEST(LinearTest, XavierInitBounded) {
  Rng rng(2);
  Linear layer(100, 50, &rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  for (int i = 0; i < 100; ++i) {
    for (int j = 0; j < 50; ++j) {
      EXPECT_LE(std::fabs(layer.weight()(i, j)), bound + 1e-6f);
    }
  }
  // Bias zero-initialized.
  for (int j = 0; j < 50; ++j) EXPECT_EQ(layer.bias()(0, j), 0.0f);
}

TEST(LinearTest, GradientCheck) {
  Rng rng(3);
  Linear layer(4, 3, &rng);
  Matrix x = Matrix::RandomNormal(5, 4, &rng);
  const double err =
      MaxRelativeGradientError(&layer, x, HalfSquaredLoss, &rng);
  EXPECT_LT(err, 1e-2);
}

TEST(ActivationsTest, TanhForwardBackward) {
  Tanh layer;
  Matrix x = Matrix::FromRowMajor(1, 3, {-100, 0, 100});
  Matrix y = layer.Forward(x);
  EXPECT_NEAR(y(0, 0), -1.0f, 1e-5f);
  EXPECT_EQ(y(0, 1), 0.0f);
  EXPECT_NEAR(y(0, 2), 1.0f, 1e-5f);
  Matrix g(1, 3, 1.0f);
  Matrix dx = layer.Backward(g);
  EXPECT_NEAR(dx(0, 0), 0.0f, 1e-5f);  // saturated
  EXPECT_NEAR(dx(0, 1), 1.0f, 1e-6f);  // derivative at 0 is 1
}

TEST(ActivationsTest, ReluForwardBackward) {
  Relu layer;
  Matrix x = Matrix::FromRowMajor(1, 3, {-2, 0, 3});
  Matrix y = layer.Forward(x);
  EXPECT_EQ(y(0, 0), 0.0f);
  EXPECT_EQ(y(0, 2), 3.0f);
  Matrix g(1, 3, 1.0f);
  Matrix dx = layer.Backward(g);
  EXPECT_EQ(dx(0, 0), 0.0f);
  EXPECT_EQ(dx(0, 2), 1.0f);
}

TEST(SequentialTest, ComposesLayers) {
  Rng rng(4);
  Sequential model;
  model.Append(std::make_unique<Linear>(4, 8, &rng));
  model.Append(std::make_unique<Relu>());
  model.Append(std::make_unique<Linear>(8, 2, &rng));
  model.Append(std::make_unique<Tanh>());
  Matrix x = Matrix::RandomNormal(3, 4, &rng);
  Matrix y = model.Forward(x);
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 2);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_LE(std::fabs(y.data()[i]), 1.0f);
  }
  EXPECT_EQ(model.Parameters().size(), 4u);  // two linears x (W, b)
  EXPECT_NE(model.name().find("Linear"), std::string::npos);
}

class MlpGradientCheck : public ::testing::TestWithParam<int> {};

TEST_P(MlpGradientCheck, EndToEndGradientsMatchFiniteDifferences) {
  const int hidden = GetParam();
  Rng rng(5 + hidden);
  Sequential model;
  model.Append(std::make_unique<Linear>(6, hidden, &rng));
  model.Append(std::make_unique<Relu>());
  model.Append(std::make_unique<Linear>(hidden, 4, &rng));
  model.Append(std::make_unique<Tanh>());
  Matrix x = Matrix::RandomNormal(7, 6, &rng);
  const double err =
      MaxRelativeGradientError(&model, x, HalfSquaredLoss, &rng, 6, 1e-3);
  // ReLU kinks make individual finite differences one-sided when a
  // perturbed pre-activation crosses zero, so the worst sampled entry is
  // allowed a looser bound than the kink-free Linear/Tanh checks.
  EXPECT_LT(err, 0.15) << "hidden=" << hidden;
}

INSTANTIATE_TEST_SUITE_P(Widths, MlpGradientCheck,
                         ::testing::Values(3, 8, 16, 32));

TEST(SgdTest, ConvergesOnLinearRegression) {
  // Fit y = x * w_true with a single Linear layer.
  Rng rng(6);
  Matrix w_true = Matrix::RandomNormal(3, 2, &rng);
  Matrix x = Matrix::RandomNormal(64, 3, &rng);
  Matrix y = linalg::MatMul(x, w_true);

  Linear model(3, 2, &rng);
  SgdOptions options;
  options.learning_rate = 0.05f;
  options.momentum = 0.9f;
  options.weight_decay = 0.0f;
  SgdOptimizer optimizer(&model, options);

  double first_loss = 0.0;
  double last_loss = 0.0;
  for (int step = 0; step < 200; ++step) {
    optimizer.ZeroGrad();
    Matrix pred = model.Forward(x);
    Matrix grad(pred.rows(), pred.cols());
    double loss = 0.0;
    const double inv = 1.0 / pred.rows();
    for (size_t i = 0; i < pred.size(); ++i) {
      const double diff = pred.data()[i] - y.data()[i];
      loss += 0.5 * diff * diff * inv;
      grad.data()[i] = static_cast<float>(diff * inv);
    }
    model.Backward(grad);
    optimizer.Step();
    if (step == 0) first_loss = loss;
    last_loss = loss;
  }
  EXPECT_LT(last_loss, first_loss * 1e-3);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Rng rng(7);
  Linear model(4, 4, &rng);
  const float w_before = model.weight().FrobeniusNorm();
  SgdOptions options;
  options.learning_rate = 0.1f;
  options.momentum = 0.0f;
  options.weight_decay = 0.5f;
  SgdOptimizer optimizer(&model, options);
  // Zero gradients: only decay acts.
  for (int step = 0; step < 10; ++step) {
    optimizer.ZeroGrad();
    optimizer.Step();
  }
  EXPECT_LT(model.weight().FrobeniusNorm(), w_before * 0.7f);
}

TEST(SgdTest, MomentumAcceleratesAlongConstantGradient) {
  // With constant gradient g and momentum mu, the velocity accumulates to
  // g/(1-mu); with mu=0 the per-step move is g*lr. Compare displacement.
  Rng rng(8);
  auto run = [&](float mu) {
    Linear model(1, 1, &rng);
    *model.mutable_weight() = Matrix(1, 1);  // start at 0
    SgdOptions options;
    options.learning_rate = 0.01f;
    options.momentum = mu;
    options.weight_decay = 0.0f;
    SgdOptimizer optimizer(&model, options);
    for (int step = 0; step < 20; ++step) {
      optimizer.ZeroGrad();
      // Inject a constant gradient of 1 on the weight.
      Matrix x = Matrix::FromRowMajor(1, 1, {1.0f});
      model.Forward(x);
      Matrix g = Matrix::FromRowMajor(1, 1, {1.0f});
      model.Backward(g);
      optimizer.Step();
    }
    return std::fabs(model.weight()(0, 0));
  };
  EXPECT_GT(run(0.9f), 2.0f * run(0.0f));
}

TEST(ZeroGradTest, ClearsAccumulatedGradients) {
  Rng rng(9);
  Linear model(2, 2, &rng);
  Matrix x = Matrix::RandomNormal(3, 2, &rng);
  model.Forward(x);
  Matrix g(3, 2, 1.0f);
  model.Backward(g);
  bool any_nonzero = false;
  for (Parameter p : model.Parameters()) {
    for (size_t i = 0; i < p.grad->size(); ++i) {
      if (p.grad->data()[i] != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  model.ZeroGrad();
  for (Parameter p : model.Parameters()) {
    for (size_t i = 0; i < p.grad->size(); ++i) {
      EXPECT_EQ(p.grad->data()[i], 0.0f);
    }
  }
}

}  // namespace
}  // namespace uhscm::nn
