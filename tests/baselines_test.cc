#include <gtest/gtest.h>

#include <memory>

#include "baselines/registry.h"
#include "eval/retrieval_eval.h"
#include "test_util.h"

namespace uhscm::baselines {
namespace {

using testing::MakeTinyEnv;
using testing::TinyEnv;

/// Shared fixture: one tiny CIFAR-like environment plus a prepared
/// TrainContext (fast settings) reused across methods.
class BaselinesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // Large enough that the threshold-on-cosine methods (SSDH, BGAN) get
    // a usable confident-pair tail despite the style confound.
    env_ = MakeTinyEnv("cifar", 400, 200, 60);
    context_.train_pixels =
        env_.dataset.pixels.SelectRows(env_.dataset.split.train);
    context_.train_features = env_.extractor->Extract(context_.train_pixels);
    context_.extractor = env_.extractor.get();
    context_.bits = 32;
    context_.seed = 11;
  }

  /// Fits the method and returns MAP on the tiny retrieval protocol.
  double FitAndMap(HashingMethod* method) {
    Status st = method->Fit(context_);
    EXPECT_TRUE(st.ok()) << method->name() << ": " << st.ToString();
    const linalg::Matrix db = method->Encode(
        env_.dataset.pixels.SelectRows(env_.dataset.split.database));
    const linalg::Matrix q = method->Encode(
        env_.dataset.pixels.SelectRows(env_.dataset.split.query));
    EXPECT_EQ(db.cols(), context_.bits);
    for (size_t i = 0; i < db.size(); ++i) {
      EXPECT_TRUE(db.data()[i] == 1.0f || db.data()[i] == -1.0f);
    }
    eval::RetrievalEvalOptions options;
    options.map_at = 100;
    options.topn_points = {};
    return eval::EvaluateRetrieval(env_.dataset, db, q, options).map;
  }

  TinyEnv env_;
  TrainContext context_;
};

/// Chance MAP for 10 balanced classes is ~0.1; any working method must
/// clear this with margin.
constexpr double kChanceMap = 0.13;

class BaselineSweep : public BaselinesFixture,
                      public ::testing::WithParamInterface<std::string> {};

TEST_P(BaselineSweep, FitsEncodesAndBeatsChance) {
  Result<std::unique_ptr<HashingMethod>> method = MakeBaseline(GetParam());
  ASSERT_TRUE(method.ok()) << method.status().ToString();
  EXPECT_EQ((*method)->name(), GetParam());
  const double map = FitAndMap(method->get());
  EXPECT_GT(map, kChanceMap) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllMethods, BaselineSweep,
                         ::testing::Values("LSH", "SH", "ITQ", "AGH", "SSDH",
                                           "GH", "BGAN", "MLS3RDUH", "CIB",
                                           "UTH"));

TEST_F(BaselinesFixture, RegistryRejectsUnknownName) {
  EXPECT_FALSE(MakeBaseline("NOPE").ok());
  EXPECT_EQ(MakeBaseline("NOPE").status().code(), StatusCode::kNotFound);
}

TEST_F(BaselinesFixture, Table1NamesMatchPaperOrder) {
  const std::vector<std::string> names = Table1BaselineNames();
  ASSERT_EQ(names.size(), 9u);
  EXPECT_EQ(names.front(), "LSH");
  EXPECT_EQ(names.back(), "CIB");
  for (const std::string& name : names) {
    EXPECT_TRUE(MakeBaseline(name).ok()) << name;
  }
}

TEST_F(BaselinesFixture, ShallowMethodsRequireExtractor) {
  TrainContext no_extractor = context_;
  no_extractor.extractor = nullptr;
  for (const char* name : {"LSH", "SH", "ITQ", "AGH"}) {
    auto method = MakeBaseline(name);
    ASSERT_TRUE(method.ok());
    EXPECT_FALSE((*method)->Fit(no_extractor).ok()) << name;
  }
}

TEST_F(BaselinesFixture, LshDeterministicForSeed) {
  auto m1 = MakeBaseline("LSH");
  auto m2 = MakeBaseline("LSH");
  ASSERT_TRUE(m1.ok() && m2.ok());
  ASSERT_TRUE((*m1)->Fit(context_).ok());
  ASSERT_TRUE((*m2)->Fit(context_).ok());
  const linalg::Matrix a = (*m1)->Encode(context_.train_pixels);
  const linalg::Matrix b = (*m2)->Encode(context_.train_pixels);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST_F(BaselinesFixture, ItqBeatsLshOnAverage) {
  // ITQ's learned rotation should beat data-oblivious LSH on the tiny
  // protocol (the Table 1 ordering at the small scale).
  auto lsh = MakeBaseline("LSH");
  auto itq = MakeBaseline("ITQ");
  ASSERT_TRUE(lsh.ok() && itq.ok());
  const double map_lsh = FitAndMap(lsh->get());
  const double map_itq = FitAndMap(itq->get());
  EXPECT_GT(map_itq, map_lsh);
}

TEST_F(BaselinesFixture, UhscmMethodAdapterFitsAndWins) {
  core::UhscmConfig config = core::DefaultConfigFor("cifar", 32);
  config.max_epochs = 30;
  config.batch_size = 64;
  config.network.hidden1 = 64;
  config.network.hidden2 = 48;
  UhscmMethod uhscm(env_.vlp.get(), env_.vocab, config);
  EXPECT_EQ(uhscm.name(), "UHSCM");
  const double map_uhscm = FitAndMap(&uhscm);

  auto lsh = MakeBaseline("LSH");
  ASSERT_TRUE(lsh.ok());
  const double map_lsh = FitAndMap(lsh->get());
  EXPECT_GT(map_uhscm, map_lsh + 0.1);
  EXPECT_FALSE(uhscm.model().retained_concepts.empty());
}

TEST_F(BaselinesFixture, BitWidthIsRespectedAcrossMethods) {
  for (int bits : {8, 24, 32}) {
    TrainContext ctx = context_;
    ctx.bits = bits;
    // A representative from each family.
    for (const char* name : {"LSH", "ITQ", "SSDH"}) {
      auto method = MakeBaseline(name);
      ASSERT_TRUE(method.ok());
      ASSERT_TRUE((*method)->Fit(ctx).ok()) << name << " bits=" << bits;
      EXPECT_EQ((*method)->Encode(ctx.train_pixels).cols(), bits);
    }
  }
}

TEST_F(BaselinesFixture, ItqRejectsBitsBeyondFeatureDim) {
  TrainContext ctx = context_;
  ctx.bits = context_.train_features.cols() + 1;
  auto itq = MakeBaseline("ITQ");
  ASSERT_TRUE(itq.ok());
  EXPECT_FALSE((*itq)->Fit(ctx).ok());
}

}  // namespace
}  // namespace uhscm::baselines
