// Gap-filling tests: pixel augmentation (the two-view substrate of CIB /
// UHSCM_CL), the style confound in the semantic world, Zipf label
// popularity, and the HashingNetwork wrapper.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "core/augment.h"
#include "core/hashing_network.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "linalg/ops.h"

namespace uhscm {
namespace {

// ----------------------------------------------------------- augmentation

TEST(AugmentTest, ViewsStayCloseToOriginal) {
  data::SemanticWorld world(1);
  const int cat = world.RegisterConcept("cat");
  Rng rng(2);
  linalg::Matrix pixels(8, world.pixel_dim());
  for (int i = 0; i < 8; ++i) {
    pixels.SetRow(i, world.RenderImage({cat}, 0.5f, &rng));
  }
  core::AugmentOptions options;  // defaults
  const linalg::Matrix view = core::AugmentPixels(pixels, options, &rng);
  ASSERT_EQ(view.rows(), 8);
  for (int i = 0; i < 8; ++i) {
    const float cos = linalg::CosineSimilarity(pixels.Row(i), view.Row(i),
                                               pixels.cols());
    EXPECT_GT(cos, 0.8f) << "augmentation destroyed image identity";
    EXPECT_LT(cos, 1.0f) << "augmentation did nothing";
    EXPECT_NEAR(linalg::Norm2(view.Row(i), view.cols()), 1.0f, 1e-4f);
  }
}

TEST(AugmentTest, TwoViewsDiffer) {
  data::SemanticWorld world(3);
  const int dog = world.RegisterConcept("dog");
  Rng rng(4);
  linalg::Matrix pixels(4, world.pixel_dim());
  for (int i = 0; i < 4; ++i) {
    pixels.SetRow(i, world.RenderImage({dog}, 0.5f, &rng));
  }
  core::AugmentOptions options;
  const linalg::Matrix v1 = core::AugmentPixels(pixels, options, &rng);
  const linalg::Matrix v2 = core::AugmentPixels(pixels, options, &rng);
  float max_diff = 0.0f;
  for (size_t i = 0; i < v1.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(v1.data()[i] - v2.data()[i]));
  }
  EXPECT_GT(max_diff, 1e-4f);
}

TEST(AugmentTest, ZeroStrengthIsNormalizeOnly) {
  data::SemanticWorld world(5);
  const int car = world.RegisterConcept("car");
  Rng rng(6);
  linalg::Matrix pixels(2, world.pixel_dim());
  for (int i = 0; i < 2; ++i) {
    pixels.SetRow(i, world.RenderImage({car}, 0.5f, &rng));
  }
  core::AugmentOptions off;
  off.noise = 0.0f;
  off.dropout = 0.0f;
  off.intensity_jitter = 0.0f;
  const linalg::Matrix view = core::AugmentPixels(pixels, off, &rng);
  for (int i = 0; i < 2; ++i) {
    const float cos = linalg::CosineSimilarity(pixels.Row(i), view.Row(i),
                                               pixels.cols());
    EXPECT_NEAR(cos, 1.0f, 1e-5f);
  }
}

// ----------------------------------------------------------------- styles

TEST(WorldStyleTest, StyleRaisesCrossClassSimilarity) {
  // With styles on, some cross-class image pairs (those sharing a style)
  // are much more similar than the cross-class average — the confound
  // driving the paper's critique of feature-based similarity matrices.
  data::WorldOptions with_styles;
  with_styles.num_styles = 4;  // few styles -> many collisions
  with_styles.style_strength = 1.2f;
  data::SemanticWorld world(7, with_styles);
  const int cat = world.RegisterConcept("cat");
  const int car = world.RegisterConcept("car");
  Rng rng(8);
  const int n = 40;
  linalg::Matrix cats(n, world.pixel_dim());
  linalg::Matrix cars(n, world.pixel_dim());
  for (int i = 0; i < n; ++i) {
    cats.SetRow(i, world.RenderImage({cat}, 0.5f, &rng));
    cars.SetRow(i, world.RenderImage({car}, 0.5f, &rng));
  }
  // Cross-class cosine distribution must be bimodal-ish: max well above
  // mean (same-style pairs), since 1/4 of pairs share one of 4 styles.
  double mean = 0.0;
  float max_cos = -1.0f;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const float c = linalg::CosineSimilarity(cats.Row(i), cars.Row(j),
                                               world.pixel_dim());
      mean += c;
      max_cos = std::max(max_cos, c);
    }
  }
  mean /= n * n;
  EXPECT_GT(max_cos, mean + 0.3);
}

TEST(WorldStyleTest, DisablingStylesRemovesConfound) {
  data::WorldOptions no_styles;
  no_styles.num_styles = 0;
  data::SemanticWorld world(9, no_styles);
  EXPECT_EQ(world.num_styles(), 0);
  const int cat = world.RegisterConcept("cat");
  Rng rng(10);
  const linalg::Vector img = world.RenderImage({cat}, 0.3f, &rng);
  const float cos = linalg::CosineSimilarity(
      img.data(), world.Prototype(cat).data(), world.pixel_dim());
  // Without style mass, the class prototype dominates the image.
  EXPECT_GT(cos, 0.9f);
}

// ------------------------------------------------------------------- zipf

TEST(ZipfLabelsTest, PopularClassesDominate) {
  data::SemanticWorld world(11);
  data::SyntheticOptions options;
  options.sizes = {2000, 100, 10};
  options.zipf_exponent = 1.0f;
  Rng rng(12);
  const data::Dataset d = data::MakeNusWideLike(&world, options, &rng);
  std::map<int, int> counts;
  for (const auto& labels : d.labels) {
    for (int id : labels) ++counts[id];
  }
  // Rank-0 class (first in the published order) must occur far more often
  // than the last-rank class.
  const int first = counts[d.class_ids.front()];
  const int last = counts[d.class_ids.back()];
  EXPECT_GT(first, 5 * std::max(last, 1));
}

TEST(ZipfLabelsTest, ZeroExponentIsUniform) {
  data::SemanticWorld world(13);
  data::SyntheticOptions options;
  options.sizes = {3000, 100, 10};
  options.zipf_exponent = 0.0f;
  options.extra_label_prob = 0.0f;  // single label -> clean counts
  Rng rng(14);
  const data::Dataset d = data::MakeNusWideLike(&world, options, &rng);
  std::map<int, int> counts;
  for (const auto& labels : d.labels) ++counts[labels[0]];
  const double expected = 3010.0 / d.num_classes();
  for (int id : d.class_ids) {
    EXPECT_NEAR(counts[id], expected, expected * 0.5) << id;
  }
}

// -------------------------------------------------------- hashing network

TEST(HashingNetworkTest, OutputIsBoundedAndBinaryAfterSign) {
  Rng rng(15);
  core::HashingNetworkOptions options;
  options.hidden1 = 24;
  options.hidden2 = 16;
  options.bits = 12;
  core::HashingNetwork network(10, options, &rng);
  EXPECT_EQ(network.bits(), 12);
  EXPECT_EQ(network.input_dim(), 10);

  const linalg::Matrix x = linalg::Matrix::RandomNormal(6, 10, &rng);
  const linalg::Matrix z = network.Forward(x);
  EXPECT_EQ(z.rows(), 6);
  EXPECT_EQ(z.cols(), 12);
  for (size_t i = 0; i < z.size(); ++i) {
    EXPECT_LE(std::fabs(z.data()[i]), 1.0f);
  }
  const linalg::Matrix b = network.EncodeBinary(x);
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_TRUE(b.data()[i] == 1.0f || b.data()[i] == -1.0f);
  }
}

TEST(HashingNetworkTest, BackwardAccumulatesGradients) {
  Rng rng(16);
  core::HashingNetworkOptions options;
  options.hidden1 = 16;
  options.hidden2 = 12;
  options.bits = 8;
  core::HashingNetwork network(6, options, &rng);
  const linalg::Matrix x = linalg::Matrix::RandomNormal(4, 6, &rng);
  network.Forward(x);
  linalg::Matrix g(4, 8, 1.0f);
  network.Backward(g);
  bool any = false;
  for (nn::Parameter p : network.model()->Parameters()) {
    for (size_t i = 0; i < p.grad->size(); ++i) {
      if (p.grad->data()[i] != 0.0f) any = true;
    }
  }
  EXPECT_TRUE(any);
}

}  // namespace
}  // namespace uhscm
