#ifndef UHSCM_TESTS_TEST_UTIL_H_
#define UHSCM_TESTS_TEST_UTIL_H_

#include <memory>

#include "common/rng.h"
#include "data/concept_vocab.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "features/cnn_features.h"
#include "linalg/matrix.h"
#include "vlp/simulated_vlp.h"

namespace uhscm::testing {

/// Random {-1,+1} code matrix — the corpus shape every index/serve test
/// scans.
inline linalg::Matrix RandomSignCodes(int n, int bits, Rng* rng) {
  linalg::Matrix m(n, bits);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Bernoulli(0.5) ? 1.0f : -1.0f;
  }
  return m;
}

/// A small, fully wired synthetic environment shared by the heavier
/// tests: world + one dataset + vocab + VLP + CNN extractor, all at
/// tiny-n scale so each test runs in well under a second of training.
struct TinyEnv {
  std::unique_ptr<data::SemanticWorld> world;
  data::Dataset dataset;
  data::ConceptVocab vocab;
  std::unique_ptr<vlp::SimulatedVlpModel> vlp;
  std::unique_ptr<features::SimulatedCnnFeatureExtractor> extractor;
};

inline TinyEnv MakeTinyEnv(const std::string& dataset_name = "cifar",
                           int database = 300, int train = 120,
                           int query = 60, uint64_t seed = 7) {
  TinyEnv env;
  data::WorldOptions world_options;
  world_options.pixel_dim = 96;
  env.world = std::make_unique<data::SemanticWorld>(seed, world_options);

  data::SyntheticOptions options = data::DefaultOptionsFor(dataset_name);
  options.sizes.database = database;
  options.sizes.train = train;
  options.sizes.query = query;

  Rng rng(seed + 1);
  env.dataset = data::MakeDatasetByName(dataset_name, env.world.get(),
                                        options, &rng);
  env.vocab = data::MakeNusVocab(env.world.get());

  vlp::VlpOptions vlp_options;
  vlp_options.embed_dim = 64;
  env.vlp = std::make_unique<vlp::SimulatedVlpModel>(env.world.get(),
                                                     vlp_options);

  features::CnnFeatureOptions feat_options;
  feat_options.feature_dim = 128;
  feat_options.hidden_dim = 96;
  env.extractor = std::make_unique<features::SimulatedCnnFeatureExtractor>(
      env.world->pixel_dim(), feat_options);
  return env;
}

}  // namespace uhscm::testing

#endif  // UHSCM_TESTS_TEST_UTIL_H_
