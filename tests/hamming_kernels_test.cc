#include "index/hamming_kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "index/batch_scan.h"
#include "index/linear_scan.h"
#include "index/packed_codes.h"
#include "linalg/matrix.h"
#include "test_util.h"

namespace uhscm::index {
namespace {

using linalg::Matrix;
using uhscm::testing::RandomSignCodes;

/// The tiers this host can actually run — the cross-tier exactness tests
/// iterate these so an avx512 machine checks all three and an avx2-only
/// machine still checks two.
std::vector<KernelTier> AvailableTiers() {
  std::vector<KernelTier> tiers;
  for (const KernelTier tier :
       {KernelTier::kScalar, KernelTier::kAvx2, KernelTier::kAvx512}) {
    if (KernelTierAvailable(tier)) tiers.push_back(tier);
  }
  return tiers;
}

// ------------------------------------------------------- kernel equality

/// Every dispatched tier must agree bit-for-bit with the scalar reference
/// and the per-pair HammingDistance across word counts 1..9 (widths both
/// at and off 64-bit boundaries) plus the wide Harley–Seal path.
class KernelWidths : public ::testing::TestWithParam<int> {};

TEST_P(KernelWidths, AllTiersMatchScalarReferenceExactly) {
  const int bits = GetParam();
  const int n = 257;  // odd count exercises every kernel's tail handling
  Rng rng(900 + bits);
  PackedCodes db = PackedCodes::FromSignMatrix(RandomSignCodes(n, bits, &rng));
  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(3, bits, &rng));
  const int words = db.words_per_code();

  std::vector<int32_t> ref(static_cast<size_t>(n));
  std::vector<int32_t> scalar(static_cast<size_t>(n));
  std::vector<int32_t> dispatched(static_cast<size_t>(n));
  for (int q = 0; q < queries.size(); ++q) {
    for (int i = 0; i < n; ++i) {
      ref[static_cast<size_t>(i)] =
          HammingDistance(queries.code(q), db.code(i), words);
    }
    BatchDistancesScalar(queries.code(q), db.code(0), n, words, kNoThreshold,
                         scalar.data());
    GetBatchDistanceFn()(queries.code(q), db.code(0), n, words, kNoThreshold,
                         dispatched.data());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(scalar[static_cast<size_t>(i)], ref[static_cast<size_t>(i)])
          << "scalar bits=" << bits << " q=" << q << " i=" << i;
      EXPECT_EQ(dispatched[static_cast<size_t>(i)],
                ref[static_cast<size_t>(i)])
          << KernelTierName(ActiveKernelTier()) << " bits=" << bits
          << " q=" << q << " i=" << i;
    }
  }
}

TEST_P(KernelWidths, EveryAvailableTierAndMinVariantMatchesReference) {
  // The full tier-cross matrix: every tier this host can run — through
  // both the plain kernel and the fused distance+min kernel — must
  // reproduce the scalar reference exactly, and the fused kernel's
  // return value must equal the minimum of the distances it wrote.
  // Ragged counts (257, then tails of 1 and 3) exercise every kernel's
  // partial-vector handling.
  const int bits = GetParam();
  Rng rng(4100 + bits);
  PackedCodes db = PackedCodes::FromSignMatrix(RandomSignCodes(257, bits, &rng));
  PackedCodes query = PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
  const int words = db.words_per_code();

  for (const int n : {257, 3, 1}) {
    std::vector<int32_t> ref(static_cast<size_t>(n));
    BatchDistancesScalar(query.code(0), db.code(0), n, words, kNoThreshold,
                         ref.data());
    int32_t ref_min = ref[0];
    for (int i = 1; i < n; ++i) ref_min = std::min(ref_min, ref[i]);

    for (const KernelTier tier : AvailableTiers()) {
      std::vector<int32_t> out(static_cast<size_t>(n), -1);
      GetBatchDistanceFn(tier)(query.code(0), db.code(0), n, words,
                               kNoThreshold, out.data());
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(out[static_cast<size_t>(i)], ref[static_cast<size_t>(i)])
            << KernelTierName(tier) << " bits=" << bits << " n=" << n
            << " i=" << i;
      }

      std::fill(out.begin(), out.end(), -1);
      const int32_t got_min = GetBatchDistanceMinFn(tier)(
          query.code(0), db.code(0), n, words, kNoThreshold, out.data());
      EXPECT_EQ(got_min, ref_min)
          << "min " << KernelTierName(tier) << " bits=" << bits << " n=" << n;
      for (int i = 0; i < n; ++i) {
        ASSERT_EQ(out[static_cast<size_t>(i)], ref[static_cast<size_t>(i)])
            << "min " << KernelTierName(tier) << " bits=" << bits
            << " n=" << n << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, KernelWidths,
    ::testing::Values(1, 7, 63, 64, 65, 127, 128, 129, 190, 192, 255, 256,
                      300, 320, 384, 448, 511, 512, 576,
                      // >= 32 words: the AVX2 Harley–Seal path
                      2048, 2113, 2560));

TEST(KernelThreshold, PrunedOutputsAreSafeLowerBounds) {
  // Early-abandon contract: below-threshold outputs are exact; outputs at
  // or above threshold are lower bounds of a true distance that is itself
  // >= threshold. Exercised on a wide code where pruning is active.
  const int bits = 2048;
  const int n = 300;
  Rng rng(31);
  PackedCodes db = PackedCodes::FromSignMatrix(RandomSignCodes(n, bits, &rng));
  PackedCodes query = PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
  const int words = db.words_per_code();

  std::vector<int32_t> exact(static_cast<size_t>(n));
  BatchDistancesScalar(query.code(0), db.code(0), n, words, kNoThreshold,
                       exact.data());
  // Median-ish threshold so both branches fire.
  const int32_t threshold = bits / 2;
  for (BatchDistanceFn fn :
       {GetBatchDistanceFn(KernelTier::kScalar), GetBatchDistanceFn()}) {
    std::vector<int32_t> pruned(static_cast<size_t>(n));
    fn(query.code(0), db.code(0), n, words, threshold, pruned.data());
    for (int i = 0; i < n; ++i) {
      const int32_t p = pruned[static_cast<size_t>(i)];
      const int32_t e = exact[static_cast<size_t>(i)];
      if (p < threshold) {
        EXPECT_EQ(p, e) << "below-threshold output must be exact, i=" << i;
      } else {
        EXPECT_LE(p, e) << "pruned output must lower-bound the distance";
        EXPECT_GE(e, threshold) << "pruned code must truly miss threshold";
      }
    }
  }
}

TEST(KernelThreshold, FusedMinIsExactLowerBoundUnderPruning) {
  // Fused-path contract that the batch scan's block skip rests on: the
  // returned minimum is min(outputs), pruned outputs lower-bound their
  // true distances, so the return is a lower bound of the true block
  // minimum — and when the true minimum beats the threshold, that code
  // is never abandoned, making the return exactly the true minimum.
  const int bits = 2048;  // wide code: pruning fires inside every kernel
  const int n = 300;
  Rng rng(33);
  PackedCodes db = PackedCodes::FromSignMatrix(RandomSignCodes(n, bits, &rng));
  PackedCodes query =
      PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
  const int words = db.words_per_code();

  std::vector<int32_t> exact(static_cast<size_t>(n));
  BatchDistancesScalar(query.code(0), db.code(0), n, words, kNoThreshold,
                       exact.data());
  int32_t true_min = exact[0];
  for (int i = 1; i < n; ++i) true_min = std::min(true_min, exact[i]);

  // Sweep thresholds on both sides of the true minimum so both "exact"
  // and "lower bound only" regimes fire.
  for (const int32_t threshold :
       {true_min - 8, true_min + 1, true_min + 64, bits / 2}) {
    for (const KernelTier tier : AvailableTiers()) {
      std::vector<int32_t> out(static_cast<size_t>(n));
      const int32_t got = GetBatchDistanceMinFn(tier)(
          query.code(0), db.code(0), n, words, threshold, out.data());
      int32_t out_min = out[0];
      for (int i = 1; i < n; ++i) out_min = std::min(out_min, out[i]);
      EXPECT_EQ(got, out_min) << KernelTierName(tier) << " t=" << threshold;
      EXPECT_LE(got, true_min) << KernelTierName(tier) << " t=" << threshold;
      if (true_min < threshold) {
        EXPECT_EQ(got, true_min)
            << "qualifying minimum must be exact, "
            << KernelTierName(tier) << " t=" << threshold;
      }
    }
  }

  // Empty block: identity of min, so skips behave (INT32_MAX >= any
  // threshold).
  for (const KernelTier tier : AvailableTiers()) {
    int32_t unused = 0;
    EXPECT_EQ(GetBatchDistanceMinFn(tier)(query.code(0), db.code(0), 0, words,
                                          bits / 2, &unused),
              std::numeric_limits<int32_t>::max());
  }
}

TEST(KernelDispatch, TierNamesAndExplicitLookup) {
  EXPECT_STREQ(KernelTierName(KernelTier::kScalar), "scalar");
  EXPECT_STREQ(KernelTierName(KernelTier::kAvx2), "avx2");
  EXPECT_STREQ(KernelTierName(KernelTier::kAvx512), "avx512");
  EXPECT_EQ(GetBatchDistanceFn(KernelTier::kScalar), &BatchDistancesScalar);
  EXPECT_EQ(GetBatchDistanceMinFn(KernelTier::kScalar),
            &BatchDistancesMinScalar);
  EXPECT_TRUE(KernelTierAvailable(KernelTier::kScalar));
  // Graded fallback: asking for a tier the host lacks returns the next
  // tier down, never a crash and never a scalar jump past an available
  // middle tier.
  if (!Avx2Available()) {
    EXPECT_EQ(GetBatchDistanceFn(KernelTier::kAvx2), &BatchDistancesScalar);
    EXPECT_EQ(ActiveKernelTier(), KernelTier::kScalar);
  }
  if (!Avx512Available()) {
    EXPECT_EQ(GetBatchDistanceFn(KernelTier::kAvx512),
              GetBatchDistanceFn(KernelTier::kAvx2));
  }
}

TEST(KernelDispatch, ParseKernelTier) {
  KernelTier tier = KernelTier::kAvx2;
  EXPECT_TRUE(ParseKernelTier("scalar", &tier));
  EXPECT_EQ(tier, KernelTier::kScalar);
  EXPECT_TRUE(ParseKernelTier("avx2", &tier));
  EXPECT_EQ(tier, KernelTier::kAvx2);
  EXPECT_TRUE(ParseKernelTier("avx512", &tier));
  EXPECT_EQ(tier, KernelTier::kAvx512);
  tier = KernelTier::kScalar;
  EXPECT_FALSE(ParseKernelTier("avx999", &tier));
  EXPECT_FALSE(ParseKernelTier("", &tier));
  EXPECT_FALSE(ParseKernelTier(nullptr, &tier));
  EXPECT_EQ(tier, KernelTier::kScalar) << "failed parse must not write";
}

// ----------------------------------------------------- batched top-k scan

/// TopKBatch must reproduce per-query TopK exactly — ids, distances, and
/// tie-break order — across widths, k values, and block boundaries.
class BatchTopKConfigs
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BatchTopKConfigs, MatchesPerQueryTopKByteForByte) {
  const auto [n, bits, k] = GetParam();
  Rng rng(7000 + n + bits + k);
  LinearScanIndex scan(
      PackedCodes::FromSignMatrix(RandomSignCodes(n, bits, &rng)));
  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(9, bits, &rng));

  const auto batched = scan.TopKBatch(queries, k);
  ASSERT_EQ(batched.size(), 9u);
  for (int q = 0; q < queries.size(); ++q) {
    const auto expect = scan.TopK(queries.code(q), k);
    const auto& got = batched[static_cast<size_t>(q)];
    ASSERT_EQ(got.size(), expect.size()) << "q=" << q;
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].id, expect[i].id) << "q=" << q << " rank=" << i;
      EXPECT_EQ(got[i].distance, expect[i].distance)
          << "q=" << q << " rank=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BatchTopKConfigs,
    ::testing::Values(
        // bits=16 on hundreds of codes forces heavy distance ties: the
        // id tie-break order must survive batching.
        std::make_tuple(400, 16, 1), std::make_tuple(400, 16, 25),
        std::make_tuple(400, 16, 400),
        std::make_tuple(500, 64, 10), std::make_tuple(500, 128, 10),
        std::make_tuple(300, 100, 17), std::make_tuple(300, 320, 10),
        // k larger than the corpus clamps
        std::make_tuple(50, 64, 1000),
        // wide codes: pruning path active inside the scan
        std::make_tuple(300, 2048, 10)));

TEST(BatchTopKTest, TinyCodeBlocksCrossBlockBoundariesCorrectly) {
  Rng rng(88);
  PackedCodes db = PackedCodes::FromSignMatrix(RandomSignCodes(333, 64, &rng));
  PackedCodes queries = PackedCodes::FromSignMatrix(RandomSignCodes(5, 64, &rng));
  LinearScanIndex scan(
      PackedCodes::FromRawWords(db.size(), db.bits(), db.words()));

  BatchScanOptions options;
  options.code_block = 7;  // pathological block size: many partial blocks
  const auto batched = BatchTopK(db, queries, 20, options);
  for (int q = 0; q < queries.size(); ++q) {
    const auto expect = scan.TopK(queries.code(q), 20);
    const auto& got = batched[static_cast<size_t>(q)];
    ASSERT_EQ(got.size(), expect.size());
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].id, expect[i].id);
      EXPECT_EQ(got[i].distance, expect[i].distance);
    }
  }
}

TEST(BatchTopKTest, ForcedScalarTierMatchesDispatchedTier) {
  Rng rng(89);
  PackedCodes db = PackedCodes::FromSignMatrix(RandomSignCodes(250, 128, &rng));
  PackedCodes queries = PackedCodes::FromSignMatrix(RandomSignCodes(6, 128, &rng));

  BatchScanOptions scalar_options;
  scalar_options.force_tier = true;
  scalar_options.tier = KernelTier::kScalar;
  const auto scalar = BatchTopK(db, queries, 15, scalar_options);
  const auto dispatched = BatchTopK(db, queries, 15);
  ASSERT_EQ(scalar.size(), dispatched.size());
  for (size_t q = 0; q < scalar.size(); ++q) {
    ASSERT_EQ(scalar[q].size(), dispatched[q].size());
    for (size_t i = 0; i < scalar[q].size(); ++i) {
      EXPECT_EQ(scalar[q][i].id, dispatched[q][i].id);
      EXPECT_EQ(scalar[q][i].distance, dispatched[q][i].distance);
    }
  }
}

TEST(BatchTopKTest, FusedAndUnfusedAreByteIdenticalAcrossTiers) {
  // The fused_min toggle and the tier must never change results — ids,
  // distances, and tie-break order all match the per-query scan for
  // every (tier, fused) combination. bits=16 forces heavy ties so the
  // ordering contract is actually stressed; k=10 keeps the early-abandon
  // threshold armed for most blocks.
  Rng rng(91);
  PackedCodes db = PackedCodes::FromSignMatrix(RandomSignCodes(700, 16, &rng));
  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(6, 16, &rng));
  LinearScanIndex scan(
      PackedCodes::FromRawWords(db.size(), db.bits(), db.words()));

  for (const KernelTier tier : AvailableTiers()) {
    for (const bool fused : {false, true}) {
      BatchScanOptions options;
      options.force_tier = true;
      options.tier = tier;
      options.fused_min = fused;
      options.code_block = 64;  // several blocks, so skips can trigger
      const auto got = BatchTopK(db, queries, 10, options);
      ASSERT_EQ(got.size(), 6u);
      for (int q = 0; q < queries.size(); ++q) {
        const auto expect = scan.TopK(queries.code(q), 10);
        const auto& g = got[static_cast<size_t>(q)];
        ASSERT_EQ(g.size(), expect.size())
            << KernelTierName(tier) << " fused=" << fused << " q=" << q;
        for (size_t i = 0; i < expect.size(); ++i) {
          EXPECT_EQ(g[i].id, expect[i].id)
              << KernelTierName(tier) << " fused=" << fused << " q=" << q
              << " rank=" << i;
          EXPECT_EQ(g[i].distance, expect[i].distance)
              << KernelTierName(tier) << " fused=" << fused << " q=" << q
              << " rank=" << i;
        }
      }
    }
  }
}

TEST(BatchTopKTest, TombstonesWithFusedMinAcrossTiers) {
  // Tombstones and the fused block-min skip compose: dead rows are still
  // scored by the kernel (the block stays contiguous) and can therefore
  // dominate a block's minimum, but must never enter a heap or corrupt
  // the early-abandon threshold. Wide codes (1024 bits = 16 words) take
  // the kernels' wide accumulation path, and each query's exact
  // duplicate is planted in the corpus *dead* — the strongest possible
  // block minimum that must still be skipped over.
  Rng rng(93);
  const int bits = 1024;
  PackedCodes db = PackedCodes::FromSignMatrix(RandomSignCodes(500, bits, &rng));
  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(4, bits, &rng));
  TombstoneSet dead;
  dead.Resize(db.size());
  for (int i = 0; i < db.size(); i += 7) dead.Set(i);
  for (int q = 0; q < queries.size(); ++q) {
    // Plant query q's exact duplicate at a dead slot (distance 0 to the
    // query — the best match in its block — yet must be filtered).
    const int slot = 7 * (q + 3);
    std::vector<uint64_t> words(db.words());
    std::copy(queries.code(q), queries.code(q) + db.words_per_code(),
              words.begin() +
                  static_cast<size_t>(slot) * db.words_per_code());
    db = PackedCodes::FromRawWords(db.size(), bits, std::move(words));
  }

  // Per-query oracle: ascending-id scan over live rows with the same
  // strict-< displacement rule BatchTopK uses.
  const int k = 12;
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return NeighborLess(a, b);
  };
  std::vector<std::vector<Neighbor>> want(static_cast<size_t>(queries.size()));
  for (int q = 0; q < queries.size(); ++q) {
    auto& heap = want[static_cast<size_t>(q)];
    for (int i = 0; i < db.size(); ++i) {
      if (dead.Test(i)) continue;
      const int d =
          HammingDistance(queries.code(q), db.code(i), db.words_per_code());
      if (static_cast<int>(heap.size()) < k) {
        heap.push_back({i, d});
        std::push_heap(heap.begin(), heap.end(), cmp);
      } else if (d < heap.front().distance) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.back() = {i, d};
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
    std::sort_heap(heap.begin(), heap.end(), cmp);
  }

  for (const KernelTier tier : AvailableTiers()) {
    for (const bool fused : {false, true}) {
      BatchScanOptions options;
      options.force_tier = true;
      options.tier = tier;
      options.fused_min = fused;
      options.tombstones = &dead;
      options.code_block = 96;  // several blocks, so min-skips can fire
      const auto got = BatchTopK(db, queries, k, options);
      for (int q = 0; q < queries.size(); ++q) {
        const auto& g = got[static_cast<size_t>(q)];
        const auto& w = want[static_cast<size_t>(q)];
        ASSERT_EQ(g.size(), w.size())
            << KernelTierName(tier) << " fused=" << fused << " q=" << q;
        for (size_t i = 0; i < w.size(); ++i) {
          EXPECT_EQ(g[i].id, w[i].id)
              << KernelTierName(tier) << " fused=" << fused << " q=" << q
              << " rank=" << i;
          EXPECT_EQ(g[i].distance, w[i].distance)
              << KernelTierName(tier) << " fused=" << fused << " q=" << q
              << " rank=" << i;
          EXPECT_FALSE(dead.Test(g[i].id))
              << KernelTierName(tier) << " fused=" << fused << " q=" << q;
        }
      }
    }
  }
}

TEST(BatchTopKTest, EdgeCases) {
  Rng rng(90);
  PackedCodes db = PackedCodes::FromSignMatrix(RandomSignCodes(10, 64, &rng));
  PackedCodes queries = PackedCodes::FromSignMatrix(RandomSignCodes(3, 64, &rng));
  LinearScanIndex scan(
      PackedCodes::FromRawWords(db.size(), db.bits(), db.words()));

  // k = 0: one empty list per query.
  auto zero_k = scan.TopKBatch(queries, 0);
  ASSERT_EQ(zero_k.size(), 3u);
  for (const auto& list : zero_k) EXPECT_TRUE(list.empty());

  // No queries: empty result set.
  EXPECT_TRUE(BatchTopK(db, nullptr, 0, 5).empty());

  // Empty database: empty lists.
  PackedCodes empty_db =
      PackedCodes::FromSignMatrix(linalg::Matrix(0, 64));
  auto no_db = BatchTopK(empty_db, queries, 5);
  ASSERT_EQ(no_db.size(), 3u);
  for (const auto& list : no_db) EXPECT_TRUE(list.empty());
}

}  // namespace
}  // namespace uhscm::index
