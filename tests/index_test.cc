#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "index/linear_scan.h"
#include "index/multi_index_hash.h"
#include "index/packed_codes.h"
#include "linalg/ops.h"

namespace uhscm::index {
namespace {

using linalg::Matrix;

/// Random {-1,+1} code matrix.
Matrix RandomCodes(int n, int bits, Rng* rng) {
  Matrix m(n, bits);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng->Bernoulli(0.5) ? 1.0f : -1.0f;
  }
  return m;
}

/// Reference Hamming distance on float codes.
int FloatHamming(const float* a, const float* b, int bits) {
  int d = 0;
  for (int i = 0; i < bits; ++i) {
    if ((a[i] > 0) != (b[i] > 0)) ++d;
  }
  return d;
}

class PackedCodesWidths : public ::testing::TestWithParam<int> {};

TEST_P(PackedCodesWidths, PackUnpackRoundTrip) {
  const int bits = GetParam();
  Rng rng(42 + bits);
  Matrix codes = RandomCodes(10, bits, &rng);
  PackedCodes packed = PackedCodes::FromSignMatrix(codes);
  EXPECT_EQ(packed.size(), 10);
  EXPECT_EQ(packed.bits(), bits);
  EXPECT_EQ(packed.words_per_code(), (bits + 63) / 64);
  for (int i = 0; i < 10; ++i) {
    const std::vector<float> row = packed.Unpack(i);
    for (int b = 0; b < bits; ++b) {
      EXPECT_EQ(row[static_cast<size_t>(b)], codes(i, b));
    }
  }
}

TEST_P(PackedCodesWidths, DistanceMatchesFloatReference) {
  const int bits = GetParam();
  Rng rng(77 + bits);
  Matrix codes = RandomCodes(20, bits, &rng);
  PackedCodes packed = PackedCodes::FromSignMatrix(codes);
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      EXPECT_EQ(packed.Distance(i, j),
                FloatHamming(codes.Row(i), codes.Row(j), bits));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PackedCodesWidths,
                         ::testing::Values(8, 32, 64, 96, 128));

TEST(PackedCodesTest, HammingIdentityAndSymmetry) {
  Rng rng(3);
  Matrix codes = RandomCodes(15, 64, &rng);
  PackedCodes packed = PackedCodes::FromSignMatrix(codes);
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(packed.Distance(i, i), 0);
    for (int j = 0; j < 15; ++j) {
      EXPECT_EQ(packed.Distance(i, j), packed.Distance(j, i));
    }
  }
}

TEST(LinearScanTest, TopKOrderingAndTieBreaks) {
  // Database: codes at known distances from an all-ones query.
  Matrix db(4, 8, 1.0f);
  db(1, 0) = -1.0f;                  // distance 1
  db(2, 0) = db(2, 1) = -1.0f;       // distance 2
  db(3, 0) = -1.0f;                  // distance 1 (tie with id 1)
  PackedCodes packed = PackedCodes::FromSignMatrix(db);
  LinearScanIndex scan(packed);

  Matrix query(1, 8, 1.0f);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  const std::vector<Neighbor> top = scan.TopK(pq.code(0), 4);
  ASSERT_EQ(top.size(), 4u);
  EXPECT_EQ(top[0].id, 0);
  EXPECT_EQ(top[0].distance, 0);
  EXPECT_EQ(top[1].id, 1);  // tie broken by id
  EXPECT_EQ(top[2].id, 3);
  EXPECT_EQ(top[3].id, 2);
}

TEST(LinearScanTest, TopKClampsToDatabaseSize) {
  Rng rng(5);
  Matrix db = RandomCodes(6, 32, &rng);
  LinearScanIndex scan(PackedCodes::FromSignMatrix(db));
  Matrix query = RandomCodes(1, 32, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  EXPECT_EQ(scan.TopK(pq.code(0), 100).size(), 6u);
  EXPECT_TRUE(scan.TopK(pq.code(0), 0).empty());
}

TEST(LinearScanTest, AllDistancesMatchesTopK) {
  Rng rng(7);
  Matrix db = RandomCodes(30, 64, &rng);
  LinearScanIndex scan(PackedCodes::FromSignMatrix(db));
  Matrix query = RandomCodes(1, 64, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  const std::vector<int> dist = scan.AllDistances(pq.code(0));
  const std::vector<Neighbor> top = scan.TopK(pq.code(0), 30);
  for (const Neighbor& nb : top) {
    EXPECT_EQ(dist[static_cast<size_t>(nb.id)], nb.distance);
  }
  // Sorted by distance.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].distance, top[i].distance);
  }
}

class MihRadiusSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MihRadiusSweep, MatchesLinearScanExactly) {
  const auto [bits, substrings, radius] = GetParam();
  Rng rng(100 + bits + substrings + radius);
  Matrix db = RandomCodes(200, bits, &rng);
  PackedCodes packed_a = PackedCodes::FromSignMatrix(db);
  PackedCodes packed_b = PackedCodes::FromSignMatrix(db);
  LinearScanIndex scan(std::move(packed_a));
  MultiIndexHashTable mih(std::move(packed_b), substrings);

  for (int q = 0; q < 10; ++q) {
    Matrix query = RandomCodes(1, bits, &rng);
    PackedCodes pq = PackedCodes::FromSignMatrix(query);
    std::vector<Neighbor> expect = scan.WithinRadius(pq.code(0), radius);
    std::vector<Neighbor> got = mih.WithinRadius(pq.code(0), radius);
    ASSERT_EQ(expect.size(), got.size())
        << "bits=" << bits << " s=" << substrings << " r=" << radius;
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(expect[i].id, got[i].id);
      EXPECT_EQ(expect[i].distance, got[i].distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, MihRadiusSweep,
    ::testing::Values(std::make_tuple(32, 4, 0), std::make_tuple(32, 4, 3),
                      std::make_tuple(64, 4, 8), std::make_tuple(64, 8, 5),
                      std::make_tuple(96, 6, 10),
                      std::make_tuple(128, 8, 12),
                      std::make_tuple(64, 0, 6)));  // auto substrings

TEST(MihTest, LargeRadiusFallbackStillExact) {
  Rng rng(321);
  Matrix db = RandomCodes(80, 32, &rng);
  LinearScanIndex scan(PackedCodes::FromSignMatrix(db));
  MultiIndexHashTable mih(PackedCodes::FromSignMatrix(db), 2);
  Matrix query = RandomCodes(1, 32, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  // Radius near bits: candidate enumeration must fall back to scanning.
  const auto expect = scan.WithinRadius(pq.code(0), 30);
  const auto got = mih.WithinRadius(pq.code(0), 30);
  ASSERT_EQ(expect.size(), got.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(expect[i].id, got[i].id);
  }
}

TEST(MihTest, BitsNotDivisibleByChunkCount) {
  // 70 bits over 3 substrings: widths 24/24/22 — the ragged last chunk
  // must still produce exact results.
  Rng rng(55);
  Matrix db = RandomCodes(150, 70, &rng);
  LinearScanIndex scan(PackedCodes::FromSignMatrix(db));
  MultiIndexHashTable mih(PackedCodes::FromSignMatrix(db), 3);
  EXPECT_EQ(mih.num_substrings(), 3);
  for (int q = 0; q < 8; ++q) {
    Matrix query = RandomCodes(1, 70, &rng);
    PackedCodes pq = PackedCodes::FromSignMatrix(query);
    for (int r : {0, 2, 5, 9}) {
      const auto expect = scan.WithinRadius(pq.code(0), r);
      const auto got = mih.WithinRadius(pq.code(0), r);
      ASSERT_EQ(expect.size(), got.size()) << "r=" << r;
      for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(expect[i].id, got[i].id);
        EXPECT_EQ(expect[i].distance, got[i].distance);
      }
    }
  }
}

TEST(MihTest, SubstringCountExceedingBitsIsClamped) {
  Rng rng(56);
  Matrix db = RandomCodes(40, 8, &rng);
  LinearScanIndex scan(PackedCodes::FromSignMatrix(db));
  MultiIndexHashTable mih(PackedCodes::FromSignMatrix(db), 32);
  EXPECT_LE(mih.num_substrings(), 8);
  Matrix query = RandomCodes(1, 8, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  const auto expect = scan.WithinRadius(pq.code(0), 3);
  const auto got = mih.WithinRadius(pq.code(0), 3);
  ASSERT_EQ(expect.size(), got.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(expect[i].id, got[i].id);
  }
}

TEST(MihTest, EmptyIndexReturnsNoHits) {
  Matrix empty(0, 32);
  MultiIndexHashTable mih(PackedCodes::FromSignMatrix(empty), 4);
  EXPECT_EQ(mih.size(), 0);
  Rng rng(57);
  Matrix query = RandomCodes(1, 32, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  EXPECT_TRUE(mih.WithinRadius(pq.code(0), 0).empty());
  EXPECT_TRUE(mih.WithinRadius(pq.code(0), 10).empty());
}

TEST(MihTest, RadiusBeyondBitsReturnsEntireCorpus) {
  // The radius analog of "k larger than the corpus": every code
  // qualifies, in ascending id order.
  Rng rng(58);
  Matrix db = RandomCodes(60, 32, &rng);
  MultiIndexHashTable mih(PackedCodes::FromSignMatrix(db), 4);
  Matrix query = RandomCodes(1, 32, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  const auto got = mih.WithinRadius(pq.code(0), 32);
  ASSERT_EQ(got.size(), 60u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, static_cast<int>(i));
  }
}

TEST(MihTest, AutoSubstringConfigIsSane) {
  Rng rng(11);
  Matrix db = RandomCodes(500, 64, &rng);
  MultiIndexHashTable mih(PackedCodes::FromSignMatrix(db), 0);
  EXPECT_GE(mih.num_substrings(), 1);
  EXPECT_LE(mih.num_substrings(), 8);
}

}  // namespace
}  // namespace uhscm::index
