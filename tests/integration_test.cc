// End-to-end reproduction smoke tests: the full UHSCM pipeline against
// representative baselines on all three dataset families, asserting the
// paper's qualitative orderings at miniature scale.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/registry.h"
#include "core/trainer.h"
#include "eval/retrieval_eval.h"
#include "index/linear_scan.h"
#include "index/multi_index_hash.h"
#include "test_util.h"

namespace uhscm {
namespace {

using testing::MakeTinyEnv;
using testing::TinyEnv;

double EvaluateMethod(baselines::HashingMethod* method, const TinyEnv& env,
                      int bits, uint64_t seed = 11) {
  baselines::TrainContext context;
  context.train_pixels =
      env.dataset.pixels.SelectRows(env.dataset.split.train);
  context.train_features = env.extractor->Extract(context.train_pixels);
  context.extractor = env.extractor.get();
  context.bits = bits;
  context.seed = seed;
  Status st = method->Fit(context);
  EXPECT_TRUE(st.ok()) << method->name() << ": " << st.ToString();
  const linalg::Matrix db = method->Encode(
      env.dataset.pixels.SelectRows(env.dataset.split.database));
  const linalg::Matrix q = method->Encode(
      env.dataset.pixels.SelectRows(env.dataset.split.query));
  eval::RetrievalEvalOptions options;
  options.map_at = 100;
  options.topn_points = {};
  return eval::EvaluateRetrieval(env.dataset, db, q, options).map;
}

core::UhscmConfig FastConfig(const std::string& dataset, int bits) {
  core::UhscmConfig config = core::DefaultConfigFor(dataset, bits);
  config.max_epochs = 40;
  config.batch_size = 64;
  config.network.hidden1 = 64;
  config.network.hidden2 = 48;
  return config;
}

class DatasetSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(DatasetSweep, UhscmBeatsShallowBaselineOnEveryDataset) {
  const std::string dataset = GetParam();
  TinyEnv env = MakeTinyEnv(dataset, 240, 120, 40);

  baselines::UhscmMethod uhscm(env.vlp.get(), env.vocab,
                               FastConfig(dataset, 32));
  const double map_uhscm = EvaluateMethod(&uhscm, env, 32);

  auto itq = baselines::MakeBaseline("ITQ");
  ASSERT_TRUE(itq.ok());
  const double map_itq = EvaluateMethod(itq->get(), env, 32);

  EXPECT_GT(map_uhscm, map_itq) << dataset;
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetSweep,
                         ::testing::Values("cifar", "nuswide", "flickr"));

TEST(IntegrationTest, LongerCodesDoNotDegradeMuch) {
  // Table 1 columns: MAP is roughly non-decreasing in bit width for
  // UHSCM. At tiny scale we assert 64 bits is not much worse than 16.
  TinyEnv env = MakeTinyEnv("cifar", 240, 120, 40);
  baselines::UhscmMethod small(env.vlp.get(), env.vocab,
                               FastConfig("cifar", 16));
  baselines::UhscmMethod large(env.vlp.get(), env.vocab,
                               FastConfig("cifar", 64));
  const double map16 = EvaluateMethod(&small, env, 16);
  const double map64 = EvaluateMethod(&large, env, 64);
  EXPECT_GT(map64, map16 - 0.1);
}

TEST(IntegrationTest, HashLookupViaMihMatchesProtocol) {
  // The PR-curve protocol's radius queries run identically through the
  // MIH index and the linear scan at integration scale.
  TinyEnv env = MakeTinyEnv("cifar", 200, 100, 30);
  baselines::UhscmMethod uhscm(env.vlp.get(), env.vocab,
                               FastConfig("cifar", 32));
  baselines::TrainContext context;
  context.train_pixels =
      env.dataset.pixels.SelectRows(env.dataset.split.train);
  context.train_features = env.extractor->Extract(context.train_pixels);
  context.extractor = env.extractor.get();
  context.bits = 32;
  ASSERT_TRUE(uhscm.Fit(context).ok());

  const linalg::Matrix db_codes = uhscm.Encode(
      env.dataset.pixels.SelectRows(env.dataset.split.database));
  const linalg::Matrix q_codes = uhscm.Encode(
      env.dataset.pixels.SelectRows(env.dataset.split.query));

  index::LinearScanIndex scan(index::PackedCodes::FromSignMatrix(db_codes));
  index::MultiIndexHashTable mih(
      index::PackedCodes::FromSignMatrix(db_codes), 4);
  const index::PackedCodes pq = index::PackedCodes::FromSignMatrix(q_codes);
  for (int q = 0; q < pq.size(); ++q) {
    for (int radius : {0, 2, 5}) {
      const auto a = scan.WithinRadius(pq.code(q), radius);
      const auto b = mih.WithinRadius(pq.code(q), radius);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
      }
    }
  }
}

TEST(IntegrationTest, MultiLabelRelevanceDrivesNuswideEvaluation) {
  // On multi-label data, images sharing any label count as relevant; MAP
  // against that ground truth must exceed the single-class chance level.
  TinyEnv env = MakeTinyEnv("nuswide", 220, 110, 40);
  baselines::UhscmMethod uhscm(env.vlp.get(), env.vocab,
                               FastConfig("nuswide", 32));
  const double map = EvaluateMethod(&uhscm, env, 32);
  // Multi-label chance is higher than 1/21 because of label overlap;
  // anything above 0.35 indicates real signal at this scale.
  EXPECT_GT(map, 0.35);
}

}  // namespace
}  // namespace uhscm
