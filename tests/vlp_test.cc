#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "data/concept_vocab.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "linalg/ops.h"
#include "vlp/prompt.h"
#include "vlp/simulated_vlp.h"

namespace uhscm::vlp {
namespace {

TEST(PromptTest, RendersTemplates) {
  EXPECT_EQ(RenderPrompt(PromptTemplate::kAPhotoOfThe, "cat"),
            "a photo of the cat.");
  EXPECT_EQ(RenderPrompt(PromptTemplate::kThe, "cat"), "the cat.");
  EXPECT_EQ(RenderPrompt(PromptTemplate::kItContainsThe, "cat"),
            "it contains the cat.");
  EXPECT_STREQ(PromptTemplateName(PromptTemplate::kAPhotoOfThe), "photo");
}

class VlpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<data::SemanticWorld>(77);
    data::SyntheticOptions options;
    options.sizes = {120, 60, 30};
    Rng rng(78);
    dataset_ = data::MakeCifar10Like(world_.get(), options, &rng);
    vocab_ = data::MakeNusVocab(world_.get());
    VlpOptions vlp_options;
    vlp_options.embed_dim = 64;
    vlp_ = std::make_unique<SimulatedVlpModel>(world_.get(), vlp_options);
  }

  std::unique_ptr<data::SemanticWorld> world_;
  data::Dataset dataset_;
  data::ConceptVocab vocab_;
  std::unique_ptr<SimulatedVlpModel> vlp_;
};

TEST_F(VlpFixture, ImageEmbeddingsAreUnitNorm) {
  const linalg::Matrix emb = vlp_->EncodeImages(dataset_.pixels);
  EXPECT_EQ(emb.rows(), dataset_.num_images());
  EXPECT_EQ(emb.cols(), 64);
  for (int i = 0; i < emb.rows(); ++i) {
    EXPECT_NEAR(linalg::Norm2(emb.Row(i), emb.cols()), 1.0f, 1e-4f);
  }
}

TEST_F(VlpFixture, ConceptEmbeddingsAreUnitNormAndTemplateDependent) {
  const linalg::Matrix a =
      vlp_->EncodeConcepts(vocab_.ids, PromptTemplate::kAPhotoOfThe);
  const linalg::Matrix b =
      vlp_->EncodeConcepts(vocab_.ids, PromptTemplate::kItContainsThe);
  EXPECT_EQ(a.rows(), vocab_.size());
  for (int j = 0; j < a.rows(); ++j) {
    EXPECT_NEAR(linalg::Norm2(a.Row(j), a.cols()), 1.0f, 1e-4f);
  }
  // Different templates perturb the embeddings differently.
  float max_diff = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(a.data()[i] - b.data()[i]));
  }
  EXPECT_GT(max_diff, 1e-3f);
}

TEST_F(VlpFixture, ScoresAreInUnitInterval) {
  const linalg::Matrix scores = vlp_->ScoreImagesAgainstConcepts(
      dataset_.pixels, vocab_.ids, PromptTemplate::kAPhotoOfThe);
  EXPECT_EQ(scores.rows(), dataset_.num_images());
  EXPECT_EQ(scores.cols(), vocab_.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    EXPECT_GE(scores.data()[i], 0.0f);
    EXPECT_LE(scores.data()[i], 1.0f);
  }
}

TEST_F(VlpFixture, TrueConceptScoresHigherThanAverage) {
  // For each image, the score of its true class concept should beat the
  // mean score over the vocabulary in the vast majority of cases.
  const linalg::Matrix scores = vlp_->ScoreImagesAgainstConcepts(
      dataset_.pixels, vocab_.ids, PromptTemplate::kAPhotoOfThe);
  // Map universe id -> vocab column.
  auto column_of = [&](int universe_id) {
    for (int j = 0; j < vocab_.size(); ++j) {
      if (vocab_.ids[static_cast<size_t>(j)] == universe_id) return j;
    }
    return -1;
  };
  int wins = 0;
  int considered = 0;
  for (int i = 0; i < dataset_.num_images(); ++i) {
    const int col = column_of(dataset_.labels[static_cast<size_t>(i)][0]);
    if (col < 0) continue;  // class not in vocabulary (e.g. deer/frog)
    ++considered;
    double mean = 0.0;
    for (int j = 0; j < vocab_.size(); ++j) mean += scores(i, j);
    mean /= vocab_.size();
    if (scores(i, col) > mean) ++wins;
  }
  ASSERT_GT(considered, 0);
  EXPECT_GT(static_cast<double>(wins) / considered, 0.95);
}

TEST_F(VlpFixture, DefaultTemplateAlignsBetterThanNoisyTemplates) {
  // Aggregate margin (true-concept score minus vocabulary mean) should be
  // largest for the best-aligned template, per the §4.4.3 ablation.
  auto margin_for = [&](PromptTemplate tmpl) {
    const linalg::Matrix scores = vlp_->ScoreImagesAgainstConcepts(
        dataset_.pixels, vocab_.ids, tmpl);
    auto column_of = [&](int universe_id) {
      for (int j = 0; j < vocab_.size(); ++j) {
        if (vocab_.ids[static_cast<size_t>(j)] == universe_id) return j;
      }
      return -1;
    };
    double margin = 0.0;
    int considered = 0;
    for (int i = 0; i < dataset_.num_images(); ++i) {
      const int col = column_of(dataset_.labels[static_cast<size_t>(i)][0]);
      if (col < 0) continue;
      double mean = 0.0;
      for (int j = 0; j < vocab_.size(); ++j) mean += scores(i, j);
      mean /= vocab_.size();
      margin += scores(i, col) - mean;
      ++considered;
    }
    return margin / considered;
  };
  const double photo = margin_for(PromptTemplate::kAPhotoOfThe);
  const double the = margin_for(PromptTemplate::kThe);
  const double contains = margin_for(PromptTemplate::kItContainsThe);
  EXPECT_GT(photo, the);
  EXPECT_GT(the, contains * 0.8);  // ordering holds, allow slack
}

TEST_F(VlpFixture, ScoringIsDeterministic) {
  const linalg::Matrix a = vlp_->ScoreImagesAgainstConcepts(
      dataset_.pixels, vocab_.ids, PromptTemplate::kAPhotoOfThe);
  const linalg::Matrix b = vlp_->ScoreImagesAgainstConcepts(
      dataset_.pixels, vocab_.ids, PromptTemplate::kAPhotoOfThe);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST_F(VlpFixture, SnapshotRejectsLaterConcepts) {
  // Concepts registered after model construction are unknown to it.
  const int new_id = world_->RegisterConcept("brand-new-concept");
  EXPECT_GE(new_id, vlp_->num_known_concepts());
}

}  // namespace
}  // namespace uhscm::vlp
