// Tests for the observability layer: log-linear histogram exactness
// (bucket math, record/merge vs sorted-sample ground truth, concurrent
// records), the metrics registry, the trace recorder (sampling, ring
// wraparound, Chrome export, slow-query log), and an end-to-end span
// sweep through the serving pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/packed_codes.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/replica_set.h"
#include "serve/router.h"
#include "serve/serve_stats.h"
#include "test_util.h"

namespace uhscm::obs {
namespace {

using index::PackedCodes;
using uhscm::testing::RandomSignCodes;

// Relative resolution bound of the log-linear histogram: one part in
// 2^kSubBucketBits, plus a hair of slack for the midpoint representative.
constexpr double kRelResolution = 1.0 / (1 << Histogram::kSubBucketBits);
constexpr double kRelTolerance = kRelResolution + 0.001;

// ---------------------------------------------------------------------
// Histogram bucket math

TEST(HistogramTest, LinearRegionIsExact) {
  // Values below 2^kSubBucketBits get one bucket each.
  for (int64_t v = 0; v < Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(Histogram::BucketLowerBound(static_cast<int>(v)), v);
    EXPECT_EQ(Histogram::BucketUpperBound(static_cast<int>(v)), v + 1);
    EXPECT_EQ(Histogram::BucketRepresentative(static_cast<int>(v)), v);
  }
}

TEST(HistogramTest, BucketBoundariesAreContinuous) {
  // The linear/log seam and the octave seams: index is monotone
  // non-decreasing and steps by exactly one bucket at each boundary.
  EXPECT_EQ(Histogram::BucketIndex(31), 31);
  EXPECT_EQ(Histogram::BucketIndex(32), 32);
  EXPECT_EQ(Histogram::BucketIndex(63), 63);
  EXPECT_EQ(Histogram::BucketIndex(64), 64);
  int prev = Histogram::BucketIndex(0);
  for (int64_t v = 1; v < 8192; ++v) {
    const int bucket = Histogram::BucketIndex(v);
    EXPECT_GE(bucket, prev) << "v=" << v;
    EXPECT_LE(bucket, prev + 1) << "v=" << v;
    prev = bucket;
  }
  // Past unit stepping, still monotone non-decreasing.
  for (int64_t v = 8192; v < 1000000000; v = v * 17 / 16) {
    const int bucket = Histogram::BucketIndex(v);
    EXPECT_GE(bucket, prev) << "v=" << v;
    prev = bucket;
  }
}

TEST(HistogramTest, EveryValueFallsInsideItsBucketBounds) {
  Rng rng(101);
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform values across the full range.
    const int shift = static_cast<int>(rng.UniformInt(62));
    const int64_t v = static_cast<int64_t>(rng.NextU64() >> (63 - shift));
    const int bucket = Histogram::BucketIndex(v);
    ASSERT_GE(bucket, 0);
    ASSERT_LT(bucket, Histogram::kNumBuckets);
    if (bucket < Histogram::kNumBuckets - 1) {
      EXPECT_GE(v, Histogram::BucketLowerBound(bucket)) << "v=" << v;
      EXPECT_LT(v, Histogram::BucketUpperBound(bucket)) << "v=" << v;
    } else {
      // Last bucket absorbs everything at or past its lower bound.
      EXPECT_GE(v, Histogram::BucketLowerBound(bucket)) << "v=" << v;
    }
  }
}

TEST(HistogramTest, NegativesAndOverflowClamp) {
  EXPECT_EQ(Histogram::BucketIndex(-1), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<int64_t>::min()), 0);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<int64_t>::max()),
            Histogram::kNumBuckets - 1);
  Histogram h;
  h.Record(-5);
  h.Record(std::numeric_limits<int64_t>::max());
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total, 2u);
  EXPECT_EQ(snap.counts.front(), 1u);
  EXPECT_EQ(snap.counts.back(), 1u);
}

// ---------------------------------------------------------------------
// Record / merge exactness against sorted-sample ground truth

TEST(HistogramTest, PercentilesMatchSortedSamplesWithinResolution) {
  // The acceptance bound this whole design rests on: bucket percentiles
  // track pooled-sample percentiles within one bucket width (~3.1%
  // relative), including after an exact bucket-wise merge of shards.
  Rng rng(202);
  constexpr int kShards = 3;
  constexpr int kSamplesPerShard = 40000;
  Histogram shards[kShards];
  std::vector<int64_t> pooled;
  pooled.reserve(kShards * kSamplesPerShard);
  for (int s = 0; s < kShards; ++s) {
    for (int i = 0; i < kSamplesPerShard; ++i) {
      // Log-uniform latencies from ~1us to ~100ms (in ns) with a
      // different scale per shard, so the merge genuinely reshuffles
      // which buckets dominate each percentile.
      const double log_min = 3.0 + s, log_max = 8.0;
      const int64_t v = static_cast<int64_t>(
          std::pow(10.0, rng.Uniform(log_min, log_max)));
      shards[s].Record(v);
      pooled.push_back(v);
    }
  }
  HistogramSnapshot merged = shards[0].Snapshot();
  merged.Merge(shards[1].Snapshot());
  merged.Merge(shards[2].Snapshot());
  ASSERT_EQ(merged.total, static_cast<uint64_t>(pooled.size()));

  std::sort(pooled.begin(), pooled.end());
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(
               std::ceil(p / 100.0 * static_cast<double>(pooled.size()))));
    const double truth = static_cast<double>(pooled[rank - 1]);
    const double got = static_cast<double>(merged.ValueAtPercentile(p));
    EXPECT_NEAR(got, truth, truth * kRelTolerance) << "p" << p;
  }
  // The mean is exact (sum and total both add exactly).
  double true_sum = 0.0;
  for (const int64_t v : pooled) true_sum += static_cast<double>(v);
  EXPECT_NEAR(merged.mean(), true_sum / pooled.size(),
              true_sum / pooled.size() * 1e-9);
}

TEST(HistogramTest, MergeIntoEmptyAndWithEmpty) {
  Histogram h;
  h.RecordN(100, 7);
  HistogramSnapshot empty1, empty2;
  empty1.Merge(empty2);
  EXPECT_TRUE(empty1.empty());
  // empty <- loaded adopts the loaded snapshot.
  HistogramSnapshot a;
  a.Merge(h.Snapshot());
  EXPECT_EQ(a.total, 7u);
  // loaded <- empty is a no-op; the percentile reports 100's bucket
  // midpoint (100 is past the exact linear region).
  a.Merge(empty2);
  EXPECT_EQ(a.total, 7u);
  EXPECT_EQ(a.ValueAtPercentile(50.0),
            Histogram::BucketRepresentative(Histogram::BucketIndex(100)));
  EXPECT_NEAR(static_cast<double>(a.ValueAtPercentile(50.0)), 100.0,
              100.0 * kRelTolerance);
}

TEST(HistogramTest, RecordNMatchesRepeatedRecord) {
  Histogram a, b;
  a.RecordN(12345, 1000);
  for (int i = 0; i < 1000; ++i) b.Record(12345);
  const HistogramSnapshot sa = a.Snapshot(), sb = b.Snapshot();
  EXPECT_EQ(sa.total, sb.total);
  EXPECT_EQ(sa.sum, sb.sum);
  EXPECT_EQ(sa.counts, sb.counts);
}

TEST(HistogramTest, ConcurrentRecordStressLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<int64_t>(rng.UniformInt(1 << 20)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.total, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_sum = 0;
  for (const uint64_t c : snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, snap.total) << "no record fell between buckets";
}

// ---------------------------------------------------------------------
// Registry

TEST(MetricsRegistryTest, StablePointersAndDumps) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("scan.rows_scanned");
  Gauge* g = reg.GetGauge("pipeline.queue_depth");
  Histogram* h = reg.GetHistogram("stage.scan_ns");
  EXPECT_EQ(reg.GetCounter("scan.rows_scanned"), c);
  EXPECT_EQ(reg.GetGauge("pipeline.queue_depth"), g);
  EXPECT_EQ(reg.GetHistogram("stage.scan_ns"), h);
  c->Add(42);
  g->Set(7);
  h->Record(1000);
  const std::string json = reg.DumpJson();
  EXPECT_NE(json.find("\"scan.rows_scanned\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"pipeline.queue_depth\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"stage.scan_ns\""), std::string::npos);
  const std::string text = reg.DumpText();
  EXPECT_NE(text.find("scan.rows_scanned"), std::string::npos);
  EXPECT_NE(text.find("count=1"), std::string::npos);

  const auto stages = reg.SnapshotHistograms("stage.");
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].first, "stage.scan_ns");
  EXPECT_EQ(stages[0].second.total, 1u);
  EXPECT_TRUE(reg.SnapshotHistograms("nope.").empty());

  reg.ResetAll();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(g->value(), 0);
  EXPECT_TRUE(h->Snapshot().empty());
}

TEST(MetricsRegistryTest, ConcurrentGetOrCreateIsSafe) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::array<Counter*, kThreads> seen{};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &seen, t] {
      Counter* c = reg.GetCounter("shared.counter");
      c->Add(1);
      seen[static_cast<size_t>(t)] = c;
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(seen[0]->value(), kThreads);
}

// ---------------------------------------------------------------------
// Trace recorder

TEST(TraceRecorderTest, SamplingOneInN) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  TraceRecorder recorder;
  EXPECT_EQ(recorder.MaybeStartTrace(), 0u) << "sampling off by default";
  recorder.SetSampleEvery(4);
  int sampled = 0;
  std::set<uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    const uint64_t id = recorder.MaybeStartTrace();
    if (id != 0) {
      ++sampled;
      EXPECT_TRUE(ids.insert(id).second) << "trace ids must be unique";
    }
  }
  EXPECT_EQ(sampled, 25);
  recorder.SetSampleEvery(0);
  EXPECT_EQ(recorder.MaybeStartTrace(), 0u);
}

TEST(TraceRecorderTest, RuntimeKillSwitchStopsSampling) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  TraceRecorder recorder;
  recorder.SetSampleEvery(1);
  SetRuntimeEnabled(false);
  EXPECT_EQ(recorder.MaybeStartTrace(), 0u);
  SetRuntimeEnabled(true);
  EXPECT_NE(recorder.MaybeStartTrace(), 0u);
}

TEST(TraceRecorderTest, RingWrapsKeepingNewestOldestFirst) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  TraceRecorder recorder(/*capacity=*/4);
  for (int i = 1; i <= 6; ++i) {
    recorder.RecordSpan(/*trace_id=*/static_cast<uint64_t>(i),
                        /*span_id=*/static_cast<uint64_t>(i),
                        /*parent_id=*/0, "request", /*start_us=*/i * 10,
                        /*end_us=*/i * 10 + 5);
  }
  EXPECT_EQ(recorder.size(), 4u);
  const std::vector<SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Spans 1 and 2 were overwritten; 3..6 remain, oldest first.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<size_t>(i)].trace_id,
              static_cast<uint64_t>(i + 3));
  }
  recorder.Reset();
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(TraceRecorderTest, UnsampledSpansAreDropped) {
  TraceRecorder recorder;
  recorder.RecordSpan(/*trace_id=*/0, 1, 0, "request", 0, 10);
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(TraceRecorderTest, ChromeTraceExportAndSlowQueryLog) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  TraceRecorder recorder;
  recorder.RecordSpan(1, 1, 0, "request", 0, 20000, {{"k", 10}});
  recorder.RecordSpan(1, 2, 1, "scan", 2000, 15000, {{"shards", 4}});
  recorder.RecordSpan(2, 3, 0, "request", 100, 600);

  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(recorder.WriteChromeTrace(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string trace = buffer.str();
  // Structural spot checks; CI additionally runs the file through a real
  // JSON parser.
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"request\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"shards\": 4"), std::string::npos);
  std::remove(path.c_str());

  // Slow-query log: only root spans, slowest first, threshold applied.
  const std::vector<SpanRecord> slow = recorder.SlowSpans(1.0, 10);
  ASSERT_EQ(slow.size(), 1u) << "scan is a child; request #2 is fast";
  EXPECT_EQ(slow[0].trace_id, 1u);
  const std::string log = recorder.SlowQueryLog(0.0, 10);
  EXPECT_NE(log.find("slow-query trace=1"), std::string::npos);
  EXPECT_NE(log.find("dur_ms=20.000"), std::string::npos);
  EXPECT_EQ(recorder.SlowSpans(100.0, 10).size(), 0u);
}

TEST(ScopedSpanTest, RecordsOnlyWhenParentSampled) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  TraceRecorder recorder;
  {
    TraceContext unsampled;
    ScopedSpan span(&recorder, unsampled, "batch");
    span.AddAttr("size", 8);
  }
  EXPECT_EQ(recorder.size(), 0u);

  TraceContext root;
  root.trace_id = 9;
  root.parent_span = recorder.NewSpanId();
  uint64_t inner_id = 0;
  {
    ScopedSpan outer(&recorder, root, "search");
    outer.AddAttr("queries", 3);
    {
      ScopedSpan inner(&recorder, outer.context(), "scan");
      inner_id = inner.context().parent_span;
    }
  }
  const std::vector<SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Children record before parents (RAII unwind): scan first.
  EXPECT_STREQ(spans[0].name, "scan");
  EXPECT_STREQ(spans[1].name, "search");
  EXPECT_EQ(spans[0].span_id, inner_id);
  EXPECT_EQ(spans[0].parent_id, spans[1].span_id) << "scan under search";
  EXPECT_EQ(spans[1].parent_id, root.parent_span);
  EXPECT_EQ(spans[0].trace_id, 9u);
  ASSERT_EQ(spans[1].num_attrs, 1);
  EXPECT_STREQ(spans[1].attrs[0].key, "queries");
  EXPECT_EQ(spans[1].attrs[0].value, 3);
}

// ---------------------------------------------------------------------
// Stage histograms + end-to-end pipeline spans

TEST(TraceRecorderTest, SpansFeedStageHistograms) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  TraceRecorder recorder(/*capacity=*/2);
  Histogram* stage =
      MetricsRegistry::Global().GetHistogram("stage.unittest-stage_ns");
  stage->Reset();
  // 10 spans through a capacity-2 ring: the histogram keeps all 10.
  for (int i = 0; i < 10; ++i) {
    recorder.RecordSpan(1, static_cast<uint64_t>(i + 1), 0, "unittest-stage",
                        0, 1000);
  }
  EXPECT_EQ(recorder.size(), 2u);
  const HistogramSnapshot snap = stage->Snapshot();
  EXPECT_EQ(snap.total, 10u);
  // 1000us = 1e6 ns, within one bucket of resolution.
  EXPECT_NEAR(static_cast<double>(snap.ValueAtPercentile(50.0)), 1e6,
              1e6 * kRelTolerance);
}

TEST(PipelineTraceTest, EndToEndSpanVocabulary) {
  if constexpr (!kObsCompiledIn) GTEST_SKIP() << "obs compiled out";
  Rng rng(77);
  const PackedCodes corpus =
      PackedCodes::FromSignMatrix(RandomSignCodes(300, 64, &rng));
  const PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(32, 64, &rng));

  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Reset();
  recorder.SetSampleEvery(1);

  {
    serve::ReplicaSetOptions options;
    options.replicas = 1;
    serve::ReplicaSet replica_set(corpus, options);
    serve::Router router(&replica_set, serve::RoutePolicy::kLeastLoaded);
    serve::BatcherOptions batcher_options;
    batcher_options.max_batch = 8;
    batcher_options.timeout_us = 200;
    serve::Batcher batcher(&router, batcher_options);
    std::vector<std::future<serve::SearchResponse>> futures;
    for (int q = 0; q < queries.size(); ++q) {
      futures.push_back(batcher.Submit(queries, q, /*k=*/5));
    }
    for (auto& future : futures) ASSERT_TRUE(future.get().status.ok());
    batcher.Drain();
  }
  recorder.SetSampleEvery(0);

  std::set<std::string> names;
  uint64_t admit_parent = 0, request_id = 0;
  for (const SpanRecord& s : recorder.Snapshot()) {
    names.insert(s.name);
    if (std::string(s.name) == "admit") admit_parent = s.parent_id;
    if (std::string(s.name) == "request") request_id = s.span_id;
  }
  // The full per-request vocabulary from admission to merge.
  for (const char* required :
       {"request", "admit", "batch", "route", "search", "cache-lookup",
        "scan", "shard-scan", "merge"}) {
    EXPECT_TRUE(names.count(required)) << "missing span: " << required;
  }
  // Spans form a tree: every admit hangs under some request root.
  EXPECT_NE(admit_parent, 0u);
  EXPECT_NE(request_id, 0u);
}

// ---------------------------------------------------------------------
// AggregateServeStats pools histograms (the cross-replica acceptance
// criterion: merged p50/p99 match pooled samples within resolution)

TEST(AggregateStatsTest, MergedPercentilesMatchPooledGroundTruth) {
  Rng rng(303);
  constexpr int kReplicas = 3;
  std::vector<serve::ServeStats> stats(kReplicas);
  std::vector<double> pooled_ms;
  for (int r = 0; r < kReplicas; ++r) {
    for (int i = 0; i < 5000; ++i) {
      // Each replica sees a different latency scale — the exact setup
      // where max-over-replica-p99s is wrong and pooling is right.
      const double ms = std::pow(10.0, rng.Uniform(-1.0 + r, 1.0 + r));
      stats[static_cast<size_t>(r)].RecordBatch(1, 0, ms / 1e3);
      pooled_ms.push_back(ms);
    }
  }
  std::vector<serve::ServeStatsSnapshot> snaps;
  for (const serve::ServeStats& s : stats) snaps.push_back(s.Snapshot());
  const serve::ServeStatsSnapshot agg = serve::AggregateServeStats(snaps);
  EXPECT_EQ(agg.queries, kReplicas * 5000);
  EXPECT_EQ(agg.replicas, kReplicas);

  const double true_p50 = serve::Percentile(pooled_ms, 50.0);
  const double true_p99 = serve::Percentile(pooled_ms, 99.0);
  EXPECT_NEAR(agg.latency_p50_ms, true_p50, true_p50 * kRelTolerance);
  EXPECT_NEAR(agg.latency_p99_ms, true_p99, true_p99 * kRelTolerance);
  // And distinct from the worst-replica-max fallback: replica 2 alone
  // has a far higher p50 than the pooled distribution.
  const double replica2_p50 = snaps[2].latency_p50_ms;
  EXPECT_GT(replica2_p50, agg.latency_p50_ms * 2.0)
      << "pooling must not degenerate to worst-replica max";
}

}  // namespace
}  // namespace uhscm::obs
