#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/eigen.h"
#include "linalg/ops.h"
#include "linalg/pca.h"

namespace uhscm::linalg {
namespace {

TEST(SymmetricEigenTest, DiagonalMatrix) {
  Matrix a = Matrix::FromRowMajor(3, 3, {3, 0, 0, 0, 1, 0, 0, 0, 2});
  Result<EigenDecomposition> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NEAR(r->eigenvalues[0], 3.0, 1e-9);
  EXPECT_NEAR(r->eigenvalues[1], 2.0, 1e-9);
  EXPECT_NEAR(r->eigenvalues[2], 1.0, 1e-9);
}

TEST(SymmetricEigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a = Matrix::FromRowMajor(2, 2, {2, 1, 1, 2});
  Result<EigenDecomposition> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->eigenvalues[0], 3.0, 1e-9);
  EXPECT_NEAR(r->eigenvalues[1], 1.0, 1e-9);
}

TEST(SymmetricEigenTest, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_FALSE(SymmetricEigen(a).ok());
  EXPECT_FALSE(SymmetricEigen(Matrix()).ok());
}

class RandomSymmetricEigen : public ::testing::TestWithParam<int> {};

TEST_P(RandomSymmetricEigen, SatisfiesEigenEquationAndOrthonormality) {
  const int n = GetParam();
  Rng rng(1000 + n);
  Matrix g = Matrix::RandomNormal(n, n, &rng);
  // Symmetrize.
  Matrix a(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) a(i, j) = 0.5f * (g(i, j) + g(j, i));
  }
  Result<EigenDecomposition> r = SymmetricEigen(a);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const EigenDecomposition& d = r.ValueOrDie();

  // Sorted descending.
  for (int j = 1; j < n; ++j) {
    EXPECT_GE(d.eigenvalues[static_cast<size_t>(j - 1)],
              d.eigenvalues[static_cast<size_t>(j)] - 1e-9);
  }
  // A v = lambda v for each pair.
  for (int j = 0; j < n; ++j) {
    Vector v = d.eigenvectors.ColVector(j);
    Vector av = MatVec(a, v);
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(av[static_cast<size_t>(i)],
                  d.eigenvalues[static_cast<size_t>(j)] * v[static_cast<size_t>(i)],
                  1e-3);
    }
  }
  // Orthonormal columns.
  for (int j = 0; j < n; ++j) {
    for (int k = j; k < n; ++k) {
      Vector vj = d.eigenvectors.ColVector(j);
      Vector vk = d.eigenvectors.ColVector(k);
      EXPECT_NEAR(Dot(vj, vk), j == k ? 1.0f : 0.0f, 1e-4f);
    }
  }
  // Trace preserved: sum of eigenvalues == trace(A).
  double trace = 0.0;
  double esum = 0.0;
  for (int i = 0; i < n; ++i) {
    trace += a(i, i);
    esum += d.eigenvalues[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(trace, esum, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomSymmetricEigen,
                         ::testing::Values(2, 3, 5, 10, 24, 48));

TEST(TopKEigenTest, ReturnsLeadingColumns) {
  Matrix a = Matrix::FromRowMajor(3, 3, {5, 0, 0, 0, 4, 0, 0, 0, 3});
  Result<EigenDecomposition> r = TopKEigen(a, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->eigenvectors.cols(), 2);
  EXPECT_EQ(r->eigenvalues.size(), 2u);
  EXPECT_NEAR(r->eigenvalues[0], 5.0, 1e-9);
  EXPECT_NEAR(r->eigenvalues[1], 4.0, 1e-9);
}

TEST(TopKEigenTest, RejectsBadK) {
  Matrix a = Matrix::Identity(3);
  EXPECT_FALSE(TopKEigen(a, 0).ok());
  EXPECT_FALSE(TopKEigen(a, 4).ok());
}

// ------------------------------------------------------------------- PCA

TEST(PcaTest, RecoversDominantDirection) {
  // Points hug the (1,1)/sqrt(2) line.
  Rng rng(2024);
  Matrix x(200, 2);
  for (int i = 0; i < 200; ++i) {
    const float t = static_cast<float>(rng.Normal(0.0, 3.0));
    const float noise = static_cast<float>(rng.Normal(0.0, 0.1));
    x(i, 0) = t + noise;
    x(i, 1) = t - noise;
  }
  Result<PcaModel> pca = FitPca(x, 2);
  ASSERT_TRUE(pca.ok());
  // First component aligns with (1,1)/sqrt(2) (up to sign).
  const float c0 = pca->components(0, 0);
  const float c1 = pca->components(1, 0);
  EXPECT_NEAR(std::fabs(c0), std::sqrt(0.5f), 0.05f);
  EXPECT_NEAR(c0, c1, 0.05f);
  // Explained variance dominates in the first direction.
  EXPECT_GT(pca->explained_variance[0], 10 * pca->explained_variance[1]);
}

TEST(PcaTest, TransformCentersData) {
  Rng rng(9);
  Matrix x = Matrix::RandomNormal(50, 4, &rng);
  // Shift all data.
  for (int i = 0; i < 50; ++i) {
    for (int c = 0; c < 4; ++c) x(i, c) += 10.0f;
  }
  Result<PcaModel> pca = FitPca(x, 2);
  ASSERT_TRUE(pca.ok());
  Matrix y = pca->Transform(x);
  Vector mean = ColumnMeans(y);
  EXPECT_NEAR(mean[0], 0.0f, 1e-3f);
  EXPECT_NEAR(mean[1], 0.0f, 1e-3f);
}

TEST(PcaTest, RejectsInvalidK) {
  Rng rng(10);
  Matrix x = Matrix::RandomNormal(10, 3, &rng);
  EXPECT_FALSE(FitPca(x, 0).ok());
  EXPECT_FALSE(FitPca(x, 4).ok());
  Matrix tiny = Matrix::RandomNormal(1, 3, &rng);
  EXPECT_FALSE(FitPca(tiny, 2).ok());
}

}  // namespace
}  // namespace uhscm::linalg
