// Tests for the runtime lock-order checker behind the annotated mutex
// wrappers (src/common/annotated_sync.h). Violations are exercised both
// ways: as death tests (the production behavior — first inversion
// aborts, naming both acquisition sites) and with aborting disabled so
// one process can count several reports. Lock-class names here all use
// a "test." prefix so they can never collide with (or re-rank) the
// production hierarchy, which is registered lazily in this same binary.

#include <gtest/gtest.h>

#include "common/annotated_sync.h"

namespace uhscm {
namespace {

#ifndef UHSCM_LOCK_ORDER_DISABLED

/// Flips abort-on-violation off for one test and always restores it, so
/// a failing assertion cannot leak counting mode into later tests.
class CountDontAbort {
 public:
  CountDontAbort() { lockorder::SetAbortOnViolation(false); }
  ~CountDontAbort() { lockorder::SetAbortOnViolation(true); }
};

TEST(LockOrderTest, CompiledIn) {
  EXPECT_TRUE(lockorder::kLockOrderCompiledIn);
}

TEST(LockOrderTest, CorrectRankOrderIsSilent) {
  Mutex hi("test.clean_hi", 200);
  Mutex lo("test.clean_lo", 190);
  const int before = lockorder::ViolationCount();
  for (int i = 0; i < 100; ++i) {
    MutexLock outer(hi);
    MutexLock inner(lo);
  }
  EXPECT_EQ(lockorder::ViolationCount(), before);
}

TEST(LockOrderTest, SharedAcquisitionsFeedTheSameOrder) {
  SharedMutex hi("test.shared_hi", 200);
  Mutex lo("test.shared_lo", 190);
  const int before = lockorder::ViolationCount();
  {
    SharedLock outer(hi);
    MutexLock inner(lo);
  }
  {
    ExclusiveLock outer(hi);
    MutexLock inner(lo);
  }
  EXPECT_EQ(lockorder::ViolationCount(), before);
}

TEST(LockOrderDeathTest, RankInversionAbortsNamingBothSites) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Acquiring the higher-ranked lock while the lower-ranked one is held
  // must abort on the spot — and the report must carry this file as
  // both the held site and the acquiring site.
  EXPECT_DEATH(
      {
        Mutex hi("test.death_hi", 200);
        Mutex lo("test.death_lo", 190);
        MutexLock outer(lo);
        MutexLock inner(hi);
      },
      "rank inversion acquiring \"test\\.death_hi\".*"
      "lock_order_test\\.cc.*while holding \"test\\.death_lo\".*"
      "lock_order_test\\.cc");
}

TEST(LockOrderDeathTest, AcquiredBeforeCycleAbortsAtSecondOrder) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Unranked classes fall back to the acquired-before graph: A→B on the
  // first pass, then B→A closes the cycle and must abort even though no
  // rank was declared for either lock.
  EXPECT_DEATH(
      {
        Mutex a("test.cycle_a");
        Mutex b("test.cycle_b");
        {
          MutexLock outer(a);
          MutexLock inner(b);
        }
        MutexLock outer(b);
        MutexLock inner(a);
      },
      "acquiring \"test\\.cycle_a\".*while holding \"test\\.cycle_b\".*"
      "closes an acquired-before cycle");
}

TEST(LockOrderDeathTest, RankTableTypoIsFatal) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Re-registering a name with a different rank is a table typo, fatal
  // regardless of the abort-on-violation test hook.
  EXPECT_DEATH(
      {
        Mutex first("test.reranked", 50);
        Mutex second("test.reranked", 60);
      },
      "re-registered with rank 60");
}

TEST(LockOrderTest, InversionCountsWhenAbortDisabled) {
  CountDontAbort guard;
  Mutex hi("test.count_hi", 200);
  Mutex lo("test.count_lo", 190);
  const int before = lockorder::ViolationCount();
  {
    MutexLock outer(lo);
    MutexLock inner(hi);
  }
  EXPECT_EQ(lockorder::ViolationCount(), before + 1);
}

TEST(LockOrderTest, SameClassNestingNeedsOrderedInstances) {
  CountDontAbort guard;
  // Without the flag, nesting two instances of one class is reported...
  Mutex a("test.unordered_pair");
  Mutex b("test.unordered_pair");
  const int before = lockorder::ViolationCount();
  {
    MutexLock outer(a);
    MutexLock inner(b);
  }
  EXPECT_EQ(lockorder::ViolationCount(), before + 1);
  // ...and with it (the shard-lock pattern: Export takes every shard
  // lock in index order) the same shape is silent.
  SharedMutex c("test.ordered_pair", 0, lockorder::kOrderedInstances);
  SharedMutex d("test.ordered_pair", 0, lockorder::kOrderedInstances);
  {
    SharedLock outer(c);
    SharedLock inner(d);
  }
  EXPECT_EQ(lockorder::ViolationCount(), before + 1);
}

TEST(LockOrderTest, ReleaseOutOfLifoOrderIsHandled)  {
  // UniqueLock supports early unlock, so locks can leave the held-set
  // out of stack order; the checker must keep tracking the survivor.
  Mutex hi("test.lifo_hi", 200);
  Mutex lo("test.lifo_lo", 190);
  const int before = lockorder::ViolationCount();
  UniqueLock outer(hi);
  UniqueLock inner(lo);
  outer.unlock();
  // hi is gone from the held-set: re-acquiring it while lo is held is a
  // genuine inversion and must still be seen — twice over, in fact: as
  // a rank inversion, and as a cycle against the hi→lo edge the initial
  // correct nesting recorded in the acquired-before graph.
  CountDontAbort guard;
  outer.lock();
  EXPECT_EQ(lockorder::ViolationCount(), before + 2);
}

TEST(LockOrderTest, UncheckedMutexesStayOutOfTheGraph) {
  // Default-constructed (unnamed) mutexes are order-exempt by design —
  // the ParallelFor completion-latch pattern.
  Mutex anon_a;
  Mutex anon_b;
  Mutex ranked("test.anon_neighbor", 190);
  const int before = lockorder::ViolationCount();
  {
    MutexLock outer(anon_a);
    MutexLock inner(anon_b);
  }
  {
    MutexLock outer(ranked);
    MutexLock inner(anon_a);
  }
  EXPECT_EQ(lockorder::ViolationCount(), before);
}

#else  // UHSCM_LOCK_ORDER_DISABLED

TEST(LockOrderTest, CompiledOutWrappersStillLock) {
  // -DUHSCM_LOCK_ORDER=OFF: the wrappers must reduce to the bare std
  // primitives — constructible with names, lockable, zero checking.
  EXPECT_FALSE(lockorder::kLockOrderCompiledIn);
  Mutex named("test.compiled_out", 10);
  MutexLock lock(named);
}

#endif  // UHSCM_LOCK_ORDER_DISABLED

}  // namespace
}  // namespace uhscm
