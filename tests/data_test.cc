#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "data/concept_vocab.h"
#include "data/concepts.h"
#include "data/dataset.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "linalg/ops.h"

namespace uhscm::data {
namespace {

// ---------------------------------------------------------- concept lists

TEST(ConceptsTest, PublishedListSizes) {
  EXPECT_EQ(NusWide81Concepts().size(), 81u);
  EXPECT_EQ(NusWide21Classes().size(), 21u);
  EXPECT_EQ(Coco80Concepts().size(), 80u);
  EXPECT_EQ(Cifar10Classes().size(), 10u);
  EXPECT_EQ(MirFlickr24Classes().size(), 24u);
}

TEST(ConceptsTest, Nus21IsSubsetOfNus81) {
  std::set<std::string> full(NusWide81Concepts().begin(),
                             NusWide81Concepts().end());
  for (const std::string& cls : NusWide21Classes()) {
    EXPECT_TRUE(full.count(cls)) << cls;
  }
}

TEST(ConceptsTest, CanonicalizationMergesSynonyms) {
  EXPECT_EQ(CanonicalConceptName("automobile"), "car");
  EXPECT_EQ(CanonicalConceptName("cars"), "car");
  EXPECT_EQ(CanonicalConceptName("Car"), "car");
  EXPECT_EQ(CanonicalConceptName("airplane"), "plane");
  EXPECT_EQ(CanonicalConceptName("ship"), "boat");
  EXPECT_EQ(CanonicalConceptName("boats"), "boat");
  EXPECT_EQ(CanonicalConceptName("people"), "person");
  EXPECT_EQ(CanonicalConceptName("plant_life"), "plant");
  EXPECT_EQ(CanonicalConceptName("sea"), "ocean");
  EXPECT_EQ(CanonicalConceptName("teddy bear"), "teddy_bear");
  EXPECT_EQ(CanonicalConceptName("zebra"), "zebra");
}

// ------------------------------------------------------------------ world

TEST(WorldTest, RegisterIsIdempotentModuloCanonicalization) {
  SemanticWorld world(1);
  const int a = world.RegisterConcept("cars");
  const int b = world.RegisterConcept("car");
  const int c = world.RegisterConcept("automobile");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(world.num_concepts(), 1);
  EXPECT_EQ(world.FindConcept("Car"), a);
  EXPECT_EQ(world.FindConcept("unknown-thing"), -1);
}

TEST(WorldTest, PrototypesAreUnitNormAndDeterministic) {
  SemanticWorld w1(99);
  SemanticWorld w2(99);
  const int id1 = w1.RegisterConcept("cat");
  const int id2 = w2.RegisterConcept("cat");
  ASSERT_EQ(id1, id2);
  const linalg::Vector& p1 = w1.Prototype(id1);
  const linalg::Vector& p2 = w2.Prototype(id2);
  EXPECT_NEAR(linalg::Norm2(p1), 1.0f, 1e-5f);
  for (size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p2[i]);
}

TEST(WorldTest, DifferentSeedsGiveDifferentPrototypes) {
  SemanticWorld w1(1);
  SemanticWorld w2(2);
  const int a = w1.RegisterConcept("cat");
  const int b = w2.RegisterConcept("cat");
  const float cos = linalg::CosineSimilarity(
      w1.Prototype(a).data(), w2.Prototype(b).data(), w1.pixel_dim());
  EXPECT_LT(std::abs(cos), 0.5f);
}

TEST(WorldTest, RenderedImageIsUnitNormAndLabelAligned) {
  SemanticWorld world(5);
  const int cat = world.RegisterConcept("cat");
  const int dog = world.RegisterConcept("dog");
  Rng rng(6);
  const linalg::Vector img = world.RenderImage({cat}, 0.2f, &rng);
  EXPECT_NEAR(linalg::Norm2(img), 1.0f, 1e-5f);
  const float to_cat = linalg::CosineSimilarity(
      img.data(), world.Prototype(cat).data(), world.pixel_dim());
  const float to_dog = linalg::CosineSimilarity(
      img.data(), world.Prototype(dog).data(), world.pixel_dim());
  EXPECT_GT(to_cat, to_dog + 0.2f);
  EXPECT_GT(to_cat, 0.5f);
}

TEST(WorldTest, GroupCorrelationRaisesWithinGroupSimilarity) {
  WorldOptions correlated;
  correlated.group_correlation = 0.6f;
  correlated.num_groups = 2;
  SemanticWorld world(7, correlated);
  // ids 0 and 2 share group (id % 2), ids 0 and 1 do not.
  const int a = world.RegisterConcept("alpha");
  const int b = world.RegisterConcept("beta");
  const int c = world.RegisterConcept("gamma");
  const float same_group = linalg::CosineSimilarity(
      world.Prototype(a).data(), world.Prototype(c).data(), world.pixel_dim());
  const float diff_group = linalg::CosineSimilarity(
      world.Prototype(a).data(), world.Prototype(b).data(), world.pixel_dim());
  EXPECT_GT(same_group, diff_group);
}

// ------------------------------------------------------------------ vocab

TEST(VocabTest, SizesAfterCanonicalDeduplication) {
  SemanticWorld world(11);
  const ConceptVocab nus = MakeNusVocab(&world);
  EXPECT_EQ(nus.size(), 81);  // no internal duplicates
  SemanticWorld world2(11);
  const ConceptVocab coco = MakeCocoVocab(&world2);
  EXPECT_EQ(coco.size(), 80);
  SemanticWorld world3(11);
  const ConceptVocab both = MakeCombinedVocab(&world3);
  // Union is smaller than 161 because of shared concepts (paper: 153).
  EXPECT_LT(both.size(), 161);
  EXPECT_GT(both.size(), 120);
  std::set<int> ids(both.ids.begin(), both.ids.end());
  EXPECT_EQ(static_cast<int>(ids.size()), both.size());
}

/// Counts how many of `class_ids` appear in the vocabulary.
int OverlapCount(const ConceptVocab& vocab, const std::vector<int>& class_ids) {
  std::set<int> vocab_ids(vocab.ids.begin(), vocab.ids.end());
  int hits = 0;
  for (int id : class_ids) {
    if (vocab_ids.count(id)) ++hits;
  }
  return hits;
}

TEST(VocabTest, OverlapStructureDrivesTable2VocabularyAblation) {
  // The §4.4.1 ablation rests on which vocabulary covers which dataset's
  // classes. Pin that structure: COCO covers most CIFAR classes (8/10 via
  // canonicalization: airplane/automobile/ship map to plane/car/boat);
  // NUS-81 covers all 21 NUS eval classes and most MIRFlickr classes but
  // fewer CIFAR classes.
  SemanticWorld world(99);
  Rng rng(100);
  SyntheticOptions tiny;
  tiny.sizes = {30, 10, 5};
  const Dataset cifar = MakeCifar10Like(&world, tiny, &rng);
  const Dataset nus = MakeNusWideLike(&world, tiny, &rng);
  const Dataset flickr = MakeMirFlickrLike(&world, tiny, &rng);
  const ConceptVocab nus_vocab = MakeNusVocab(&world);
  const ConceptVocab coco_vocab = MakeCocoVocab(&world);
  const ConceptVocab both = MakeCombinedVocab(&world);

  // COCO covers CIFAR better than NUS-81 does.
  EXPECT_GT(OverlapCount(coco_vocab, cifar.class_ids),
            OverlapCount(nus_vocab, cifar.class_ids));
  EXPECT_GE(OverlapCount(coco_vocab, cifar.class_ids), 8);
  // NUS-81 covers the multi-label datasets better than COCO does.
  EXPECT_EQ(OverlapCount(nus_vocab, nus.class_ids), 21);
  EXPECT_GT(OverlapCount(nus_vocab, flickr.class_ids),
            OverlapCount(coco_vocab, flickr.class_ids));
  // The union covers at least as much as either part, everywhere.
  EXPECT_GE(OverlapCount(both, cifar.class_ids),
            OverlapCount(coco_vocab, cifar.class_ids));
  EXPECT_GE(OverlapCount(both, nus.class_ids),
            OverlapCount(nus_vocab, nus.class_ids));
}

TEST(VocabTest, SubsetSelectsPositions) {
  SemanticWorld world(12);
  const ConceptVocab nus = MakeNusVocab(&world);
  const ConceptVocab sub = SubsetVocab(nus, {0, 5, 10});
  EXPECT_EQ(sub.size(), 3);
  EXPECT_EQ(sub.names[1], nus.names[5]);
  EXPECT_EQ(sub.ids[2], nus.ids[10]);
}

// ---------------------------------------------------------------- dataset

TEST(DatasetTest, CifarLikeSplitProtocol) {
  SemanticWorld world(13);
  SyntheticOptions options;
  options.sizes = {300, 100, 50};
  Rng rng(14);
  const Dataset d = MakeCifar10Like(&world, options, &rng);
  EXPECT_EQ(d.num_classes(), 10);
  EXPECT_FALSE(d.multi_label);
  EXPECT_EQ(d.num_images(), 350);
  EXPECT_EQ(d.split.database.size(), 300u);
  EXPECT_EQ(d.split.query.size(), 50u);
  EXPECT_EQ(d.split.train.size(), 100u);
  // Train is a subset of the database.
  std::set<int> db(d.split.database.begin(), d.split.database.end());
  for (int idx : d.split.train) EXPECT_TRUE(db.count(idx));
  // Queries are disjoint from the database.
  for (int idx : d.split.query) EXPECT_FALSE(db.count(idx));
  // Single-label images.
  for (const auto& labels : d.labels) EXPECT_EQ(labels.size(), 1u);
  // Balanced train subset: 10 per class.
  std::vector<int> per_class(10, 0);
  const std::vector<int> primary = PrimaryClassIndex(d);
  for (int idx : d.split.train) ++per_class[static_cast<size_t>(primary[static_cast<size_t>(idx)])];
  for (int c = 0; c < 10; ++c) EXPECT_EQ(per_class[static_cast<size_t>(c)], 10);
}

TEST(DatasetTest, MultiLabelDatasetsHaveBoundedLabelSets) {
  SemanticWorld world(15);
  SyntheticOptions options;
  options.sizes = {200, 80, 40};
  options.max_labels = 3;
  Rng rng(16);
  const Dataset d = MakeNusWideLike(&world, options, &rng);
  EXPECT_TRUE(d.multi_label);
  EXPECT_EQ(d.num_classes(), 21);
  bool saw_multi = false;
  for (const auto& labels : d.labels) {
    EXPECT_GE(labels.size(), 1u);
    EXPECT_LE(labels.size(), 3u);
    EXPECT_TRUE(std::is_sorted(labels.begin(), labels.end()));
    if (labels.size() > 1) saw_multi = true;
  }
  EXPECT_TRUE(saw_multi);
}

TEST(DatasetTest, RelevanceIsSharedLabel) {
  Dataset d;
  d.labels = {{1, 2}, {2, 3}, {4}, {1}};
  EXPECT_TRUE(d.Relevant(0, 1));   // share 2
  EXPECT_TRUE(d.Relevant(0, 3));   // share 1
  EXPECT_FALSE(d.Relevant(0, 2));
  EXPECT_FALSE(d.Relevant(1, 2));
  EXPECT_TRUE(d.Relevant(2, 2));   // self shares with itself
}

TEST(DatasetTest, LabelMatrixMatchesLabels) {
  SemanticWorld world(17);
  SyntheticOptions options;
  options.sizes = {60, 30, 20};
  Rng rng(18);
  const Dataset d = MakeMirFlickrLike(&world, options, &rng);
  const linalg::Matrix lm = LabelMatrix(d);
  EXPECT_EQ(lm.rows(), d.num_images());
  EXPECT_EQ(lm.cols(), 24);
  for (int i = 0; i < d.num_images(); ++i) {
    int row_sum = 0;
    for (int c = 0; c < lm.cols(); ++c) {
      row_sum += static_cast<int>(lm(i, c));
    }
    EXPECT_EQ(row_sum, static_cast<int>(d.labels[static_cast<size_t>(i)].size()));
  }
}

TEST(DatasetTest, ByNameFactoryAndDefaults) {
  SemanticWorld world(19);
  Rng rng(20);
  for (const char* name : {"cifar", "nuswide", "flickr"}) {
    SyntheticOptions options = DefaultOptionsFor(name, 0.05);
    const Dataset d = MakeDatasetByName(name, &world, options, &rng);
    EXPECT_GT(d.num_images(), 0) << name;
    EXPECT_FALSE(d.class_ids.empty());
  }
}

TEST(DatasetTest, SameSeedSameDataset) {
  SemanticWorld w1(23), w2(23);
  SyntheticOptions options;
  options.sizes = {50, 20, 10};
  Rng r1(24), r2(24);
  const Dataset a = MakeCifar10Like(&w1, options, &r1);
  const Dataset b = MakeCifar10Like(&w2, options, &r2);
  ASSERT_EQ(a.num_images(), b.num_images());
  for (int i = 0; i < a.num_images(); ++i) {
    EXPECT_EQ(a.labels[static_cast<size_t>(i)], b.labels[static_cast<size_t>(i)]);
    for (int c = 0; c < a.pixels.cols(); ++c) {
      EXPECT_EQ(a.pixels(i, c), b.pixels(i, c));
    }
  }
}

TEST(DatasetTest, SameClassImagesMoreSimilarThanCrossClass) {
  SemanticWorld world(25);
  SyntheticOptions options;
  options.sizes = {100, 40, 20};
  Rng rng(26);
  const Dataset d = MakeCifar10Like(&world, options, &rng);
  const std::vector<int> primary = PrimaryClassIndex(d);
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (int i = 0; i < 60; ++i) {
    for (int j = i + 1; j < 60; ++j) {
      const float cos = linalg::CosineSimilarity(d.pixels.Row(i),
                                                 d.pixels.Row(j),
                                                 d.pixels.cols());
      if (primary[static_cast<size_t>(i)] == primary[static_cast<size_t>(j)]) {
        same += cos;
        ++same_n;
      } else {
        cross += cos;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same / same_n, cross / cross_n + 0.2);
}

}  // namespace
}  // namespace uhscm::data
