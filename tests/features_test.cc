#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "features/cnn_features.h"
#include "linalg/ops.h"

namespace uhscm::features {
namespace {

class FeaturesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    world_ = std::make_unique<data::SemanticWorld>(55);
    data::SyntheticOptions options;
    options.sizes = {100, 40, 20};
    Rng rng(56);
    dataset_ = data::MakeCifar10Like(world_.get(), options, &rng);
    CnnFeatureOptions feat;
    feat.feature_dim = 96;
    feat.hidden_dim = 64;
    extractor_ = std::make_unique<SimulatedCnnFeatureExtractor>(
        world_->pixel_dim(), feat);
  }

  std::unique_ptr<data::SemanticWorld> world_;
  data::Dataset dataset_;
  std::unique_ptr<SimulatedCnnFeatureExtractor> extractor_;
};

TEST_F(FeaturesFixture, ShapeAndUnitNorm) {
  const linalg::Matrix f = extractor_->Extract(dataset_.pixels);
  EXPECT_EQ(f.rows(), dataset_.num_images());
  EXPECT_EQ(f.cols(), 96);
  for (int i = 0; i < f.rows(); ++i) {
    EXPECT_NEAR(linalg::Norm2(f.Row(i), f.cols()), 1.0f, 1e-4f);
  }
}

TEST_F(FeaturesFixture, Deterministic) {
  const linalg::Matrix a = extractor_->Extract(dataset_.pixels);
  const linalg::Matrix b = extractor_->Extract(dataset_.pixels);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST_F(FeaturesFixture, PreservesSemanticStructure) {
  const linalg::Matrix f = extractor_->Extract(dataset_.pixels);
  const std::vector<int> primary = data::PrimaryClassIndex(dataset_);
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (int i = 0; i < 60; ++i) {
    for (int j = i + 1; j < 60; ++j) {
      const float cos =
          linalg::CosineSimilarity(f.Row(i), f.Row(j), f.cols());
      if (primary[static_cast<size_t>(i)] == primary[static_cast<size_t>(j)]) {
        same += cos;
        ++same_n;
      } else {
        cross += cos;
        ++cross_n;
      }
    }
  }
  EXPECT_GT(same / same_n, cross / cross_n + 0.05);
}

TEST_F(FeaturesFixture, DifferentSeedsGiveDifferentExtractors) {
  CnnFeatureOptions other;
  other.feature_dim = 96;
  other.hidden_dim = 64;
  other.seed = 0x12345ULL;
  SimulatedCnnFeatureExtractor extractor2(world_->pixel_dim(), other);
  const linalg::Matrix a = extractor_->Extract(dataset_.pixels);
  const linalg::Matrix b = extractor2.Extract(dataset_.pixels);
  float max_diff = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a.data()[i] - b.data()[i]));
  }
  EXPECT_GT(max_diff, 0.01f);
}

}  // namespace
}  // namespace uhscm::features
