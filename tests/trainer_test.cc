#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "eval/retrieval_eval.h"
#include "test_util.h"

namespace uhscm::core {
namespace {

using testing::MakeTinyEnv;
using testing::TinyEnv;

UhscmConfig TinyConfig(int bits = 16) {
  UhscmConfig config = DefaultConfigFor("cifar", bits);
  config.max_epochs = 8;
  config.batch_size = 64;
  config.network.hidden1 = 64;
  config.network.hidden2 = 48;
  return config;
}

TEST(TrainerTest, DefaultConfigsMatchPaperSection46) {
  const UhscmConfig cifar = DefaultConfigFor("cifar", 64);
  EXPECT_FLOAT_EQ(cifar.alpha, 0.2f);
  EXPECT_FLOAT_EQ(cifar.lambda, 0.8f);
  EXPECT_FLOAT_EQ(cifar.gamma, 0.2f);
  EXPECT_FLOAT_EQ(cifar.beta, 0.001f);
  const UhscmConfig nus = DefaultConfigFor("nuswide", 64);
  EXPECT_FLOAT_EQ(nus.alpha, 0.1f);
  EXPECT_FLOAT_EQ(nus.lambda, 0.5f);
  const UhscmConfig flickr = DefaultConfigFor("flickr", 64);
  EXPECT_FLOAT_EQ(flickr.alpha, 0.3f);
  EXPECT_FLOAT_EQ(flickr.gamma, 0.5f);
  // Optimizer defaults from §4.1 (lr retuned for the from-scratch
  // backbone substitute; see UhscmConfig::learning_rate).
  EXPECT_FLOAT_EQ(cifar.learning_rate, 0.02f);
  EXPECT_FLOAT_EQ(cifar.momentum, 0.9f);
  EXPECT_FLOAT_EQ(cifar.weight_decay, 1e-5f);
  EXPECT_EQ(cifar.batch_size, 128);
  EXPECT_FLOAT_EQ(cifar.tau_multiplier, 3.0f);
}

TEST(TrainerTest, TrainProducesWorkingModel) {
  TinyEnv env = MakeTinyEnv("cifar", 200, 100, 40);
  UhscmTrainer trainer(env.vlp.get(), TinyConfig());
  const linalg::Matrix train_pixels =
      env.dataset.pixels.SelectRows(env.dataset.split.train);
  Result<UhscmModel> model = trainer.Train(train_pixels, env.vocab);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  // Loss decreased over training.
  ASSERT_GE(model->epoch_losses.size(), 2u);
  EXPECT_LT(model->epoch_losses.back(), model->epoch_losses.front());

  // Codes are exactly +-1 with the configured width.
  const linalg::Matrix codes = model->Encode(env.dataset.pixels);
  EXPECT_EQ(codes.rows(), env.dataset.num_images());
  EXPECT_EQ(codes.cols(), 16);
  for (size_t i = 0; i < codes.size(); ++i) {
    EXPECT_TRUE(codes.data()[i] == 1.0f || codes.data()[i] == -1.0f);
  }

  // Similarity matrix shape and retained concepts populated.
  EXPECT_EQ(model->similarity.rows(), train_pixels.rows());
  EXPECT_FALSE(model->retained_concepts.empty());
}

TEST(TrainerTest, RejectsDegenerateInput) {
  TinyEnv env = MakeTinyEnv("cifar", 60, 30, 10);
  UhscmTrainer trainer(env.vlp.get(), TinyConfig());
  linalg::Matrix one_row(1, env.world->pixel_dim());
  EXPECT_FALSE(trainer.Train(one_row, env.vocab).ok());
}

TEST(TrainerTest, DeterministicForFixedSeed) {
  TinyEnv env = MakeTinyEnv("cifar", 120, 60, 20);
  const linalg::Matrix train_pixels =
      env.dataset.pixels.SelectRows(env.dataset.split.train);
  UhscmConfig config = TinyConfig();
  config.max_epochs = 3;
  UhscmTrainer t1(env.vlp.get(), config);
  UhscmTrainer t2(env.vlp.get(), config);
  Result<UhscmModel> m1 = t1.Train(train_pixels, env.vocab);
  Result<UhscmModel> m2 = t2.Train(train_pixels, env.vocab);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  const linalg::Matrix c1 = m1->Encode(env.dataset.pixels);
  const linalg::Matrix c2 = m2->Encode(env.dataset.pixels);
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1.data()[i], c2.data()[i]);
  }
}

class SimilaritySourceSweep
    : public ::testing::TestWithParam<SimilaritySource> {};

TEST_P(SimilaritySourceSweep, EveryAblationVariantTrains) {
  TinyEnv env = MakeTinyEnv("cifar", 140, 70, 20);
  UhscmConfig config = TinyConfig();
  config.max_epochs = 3;
  config.similarity_source = GetParam();
  config.kmeans_clusters = 15;
  UhscmTrainer trainer(env.vlp.get(), config);
  const linalg::Matrix train_pixels =
      env.dataset.pixels.SelectRows(env.dataset.split.train);
  Result<UhscmModel> model = trainer.Train(train_pixels, env.vocab);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const linalg::Matrix codes = model->Encode(train_pixels);
  EXPECT_EQ(codes.cols(), config.bits);
}

INSTANTIATE_TEST_SUITE_P(
    Sources, SimilaritySourceSweep,
    ::testing::Values(SimilaritySource::kDenoisedConcepts,
                      SimilaritySource::kRawConcepts,
                      SimilaritySource::kImageFeatures,
                      SimilaritySource::kKMeansClusters,
                      SimilaritySource::kAveragePrompts));

class ContrastiveModeSweep
    : public ::testing::TestWithParam<ContrastiveMode> {};

TEST_P(ContrastiveModeSweep, EveryLossVariantTrains) {
  TinyEnv env = MakeTinyEnv("cifar", 140, 70, 20);
  UhscmConfig config = TinyConfig();
  config.max_epochs = 3;
  config.contrastive_mode = GetParam();
  UhscmTrainer trainer(env.vlp.get(), config);
  const linalg::Matrix train_pixels =
      env.dataset.pixels.SelectRows(env.dataset.split.train);
  Result<UhscmModel> model = trainer.Train(train_pixels, env.vocab);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_FALSE(model->epoch_losses.empty());
}

INSTANTIATE_TEST_SUITE_P(Modes, ContrastiveModeSweep,
                         ::testing::Values(ContrastiveMode::kModified,
                                           ContrastiveMode::kNone,
                                           ContrastiveMode::kOriginal));

TEST(TrainerTest, BuildSimilarityDenoisedBeatsRawOnCifarLike) {
  // The §4.4.4 direction: denoising improves similarity quality. Measure
  // by agreement with ground truth (mean similar-pair Q minus mean
  // dissimilar-pair Q).
  TinyEnv env = MakeTinyEnv("cifar", 260, 130, 40);
  const linalg::Matrix train_pixels =
      env.dataset.pixels.SelectRows(env.dataset.split.train);

  auto quality = [&](SimilaritySource source) {
    UhscmConfig config = TinyConfig();
    config.similarity_source = source;
    UhscmTrainer trainer(env.vlp.get(), config);
    Rng rng(3);
    auto artifacts =
        trainer.BuildSimilarity(train_pixels, env.vocab, &rng);
    EXPECT_TRUE(artifacts.ok());
    const linalg::Matrix& q = artifacts->q;
    double sim = 0.0, dis = 0.0;
    int sim_n = 0, dis_n = 0;
    const auto& train_ids = env.dataset.split.train;
    for (size_t i = 0; i < train_ids.size(); ++i) {
      for (size_t j = i + 1; j < train_ids.size(); ++j) {
        if (env.dataset.Relevant(train_ids[i], train_ids[j])) {
          sim += q(static_cast<int>(i), static_cast<int>(j));
          ++sim_n;
        } else {
          dis += q(static_cast<int>(i), static_cast<int>(j));
          ++dis_n;
        }
      }
    }
    return sim / sim_n - dis / dis_n;
  };

  const double denoised = quality(SimilaritySource::kDenoisedConcepts);
  const double raw = quality(SimilaritySource::kRawConcepts);
  const double features = quality(SimilaritySource::kImageFeatures);
  // Both concept-based matrices are near ceiling at tiny scale (the
  // tau = 3m' softmax softens when denoising shrinks m), so only require
  // denoising to stay within a small band of raw; Table 2's MAP-level
  // ordering is asserted at bench scale.
  EXPECT_GE(denoised, raw - 0.06);
  EXPECT_GT(denoised, features + 0.05);  // concepts beat feature cosine
}

}  // namespace
}  // namespace uhscm::core
