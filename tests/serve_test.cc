#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/linear_scan.h"
#include "index/packed_codes.h"
#include "io/serialize.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"
#include "serve/snapshot.h"
#include "test_util.h"

namespace uhscm::serve {
namespace {

using index::LinearScanIndex;
using index::Neighbor;
using index::PackedCodes;
using linalg::Matrix;
using uhscm::testing::RandomSignCodes;

void ExpectSameNeighbors(const std::vector<Neighbor>& expect,
                         const std::vector<Neighbor>& got) {
  ASSERT_EQ(expect.size(), got.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(expect[i].id, got[i].id) << "rank " << i;
    EXPECT_EQ(expect[i].distance, got[i].distance) << "rank " << i;
  }
}

/// Shard/backend sweep: sharded top-k must be byte-identical to a
/// single LinearScan over the unsharded corpus.
class ShardedIndexSweep
    : public ::testing::TestWithParam<std::tuple<int, ShardBackend>> {};

TEST_P(ShardedIndexSweep, MatchesLinearScanGroundTruth) {
  const auto [num_shards, backend] = GetParam();
  Rng rng(100 + num_shards);
  const int n = 300, bits = 64, k = 10;
  Matrix db = RandomSignCodes(n, bits, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));

  ShardedIndexOptions options;
  options.num_shards = num_shards;
  options.backend = backend;
  ShardedIndex sharded(PackedCodes::FromSignMatrix(db), options);
  EXPECT_EQ(sharded.size(), n);
  EXPECT_LE(sharded.num_shards(), num_shards);

  for (int q = 0; q < 20; ++q) {
    Matrix query = RandomSignCodes(1, bits, &rng);
    PackedCodes pq = PackedCodes::FromSignMatrix(query);
    ExpectSameNeighbors(truth.TopK(pq.code(0), k),
                        sharded.TopK(pq.code(0), k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ShardedIndexSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 16),
                       ::testing::Values(ShardBackend::kLinearScan,
                                         ShardBackend::kMultiIndexHash)));

TEST(ShardedIndexTest, ShardCountClampedToCorpusSize) {
  Rng rng(7);
  Matrix db = RandomSignCodes(5, 32, &rng);
  ShardedIndexOptions options;
  options.num_shards = 64;
  ShardedIndex sharded(PackedCodes::FromSignMatrix(db), options);
  EXPECT_EQ(sharded.num_shards(), 5);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));
  Matrix query = RandomSignCodes(1, 32, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  ExpectSameNeighbors(truth.TopK(pq.code(0), 3), sharded.TopK(pq.code(0), 3));
}

TEST(ShardedIndexTest, KLargerThanCorpusReturnsWholeCorpus) {
  Rng rng(8);
  Matrix db = RandomSignCodes(50, 64, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));
  for (ShardBackend backend :
       {ShardBackend::kLinearScan, ShardBackend::kMultiIndexHash}) {
    ShardedIndexOptions options;
    options.num_shards = 4;
    options.backend = backend;
    ShardedIndex sharded(PackedCodes::FromSignMatrix(db), options);
    Matrix query = RandomSignCodes(1, 64, &rng);
    PackedCodes pq = PackedCodes::FromSignMatrix(query);
    const auto got = sharded.TopK(pq.code(0), 1000);
    ASSERT_EQ(got.size(), 50u);
    ExpectSameNeighbors(truth.TopK(pq.code(0), 1000), got);
  }
}

TEST(ShardedIndexTest, ShardTopKBatchMatchesPerQueryShardTopK) {
  // The batched per-shard entry point (SIMD cache-blocked scan for
  // linear shards, per-query fallback for MIH shards) must be
  // byte-identical to the per-query path, global ids included.
  Rng rng(456);
  const int n = 350, bits = 128, k = 12;
  Matrix db = RandomSignCodes(n, bits, &rng);
  PackedCodes queries = PackedCodes::FromSignMatrix(RandomSignCodes(7, bits, &rng));

  for (ShardBackend backend :
       {ShardBackend::kLinearScan, ShardBackend::kMultiIndexHash}) {
    ShardedIndexOptions options;
    options.num_shards = 3;
    options.backend = backend;
    ShardedIndex sharded(PackedCodes::FromSignMatrix(db), options);

    std::vector<const uint64_t*> qptrs;
    for (int q = 0; q < queries.size(); ++q) qptrs.push_back(queries.code(q));
    for (int s = 0; s < sharded.num_shards(); ++s) {
      const auto batched = sharded.ShardTopKBatch(
          s, qptrs.data(), static_cast<int>(qptrs.size()), k);
      ASSERT_EQ(batched.size(), qptrs.size());
      for (int q = 0; q < queries.size(); ++q) {
        ExpectSameNeighbors(sharded.ShardTopK(s, queries.code(q), k),
                            batched[static_cast<size_t>(q)]);
      }
    }
  }
}

TEST(QueryEngineTest, MissBlockSizesAllMatchGroundTruth) {
  // The engine groups cache misses into miss_block-sized batch-scan
  // units; every grouping must produce identical results.
  Rng rng(457);
  const int n = 400, bits = 64, k = 9;
  Matrix db = RandomSignCodes(n, bits, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));
  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(33, bits, &rng));

  for (int miss_block : {1, 4, 16, 64}) {
    ShardedIndexOptions index_options;
    index_options.num_shards = 4;
    QueryEngineOptions engine_options;
    engine_options.num_threads = 2;
    engine_options.cache_capacity = 0;
    engine_options.miss_block = miss_block;
    QueryEngine engine(std::make_unique<ShardedIndex>(
                           PackedCodes::FromSignMatrix(db), index_options),
                       engine_options);
    const auto results = engine.Search(queries, k);
    ASSERT_EQ(results.size(), 33u);
    for (int q = 0; q < queries.size(); ++q) {
      ExpectSameNeighbors(truth.TopK(queries.code(q), k),
                          results[static_cast<size_t>(q)]);
    }
  }
}

TEST(ShardedIndexTest, MergeTopKHandlesEmptyLists) {
  std::vector<std::vector<Neighbor>> per_shard(3);
  per_shard[1] = {{4, 1}, {9, 3}};
  const auto merged = ShardedIndex::MergeTopK(per_shard, 5);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].id, 4);
  EXPECT_EQ(merged[1].id, 9);
  EXPECT_TRUE(ShardedIndex::MergeTopK({}, 5).empty());
}

TEST(QueryEngineTest, BatchedSearchMatchesGroundTruth) {
  Rng rng(21);
  const int n = 400, bits = 96, k = 7;
  Matrix db = RandomSignCodes(n, bits, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));

  ServingSnapshotOptions options;
  options.index.num_shards = 4;
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), options);

  Matrix queries = RandomSignCodes(25, bits, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(queries);
  const auto batched = engine->Search(pq, k);
  ASSERT_EQ(batched.size(), 25u);
  for (int q = 0; q < 25; ++q) {
    ExpectSameNeighbors(truth.TopK(pq.code(q), k),
                        batched[static_cast<size_t>(q)]);
  }
}

TEST(QueryEngineTest, CacheHitsReturnIdenticalNeighbors) {
  Rng rng(22);
  const int bits = 64, k = 5;
  Matrix db = RandomSignCodes(200, bits, &rng);
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), {});

  Matrix queries = RandomSignCodes(10, bits, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(queries);
  const auto first = engine->Search(pq, k);
  const auto second = engine->Search(pq, k);

  const ServeStatsSnapshot stats = engine->stats();
  EXPECT_EQ(stats.queries, 20);
  EXPECT_EQ(stats.batches, 2);
  EXPECT_EQ(stats.cache_misses, 10);
  EXPECT_EQ(stats.cache_hits, 10);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
  EXPECT_EQ(engine->cache_size(), 10u);
  for (size_t q = 0; q < first.size(); ++q) {
    ExpectSameNeighbors(first[q], second[q]);
  }
}

TEST(QueryEngineTest, DifferentKIsADistinctCacheEntry) {
  Rng rng(23);
  Matrix db = RandomSignCodes(100, 32, &rng);
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), {});
  Matrix query = RandomSignCodes(1, 32, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  EXPECT_EQ(engine->Search(pq, 3)[0].size(), 3u);
  EXPECT_EQ(engine->Search(pq, 8)[0].size(), 8u);
  EXPECT_EQ(engine->stats().cache_hits, 0);
  EXPECT_EQ(engine->cache_size(), 2u);
}

TEST(QueryEngineTest, DisabledCacheStaysExact) {
  Rng rng(24);
  Matrix db = RandomSignCodes(150, 64, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));
  ServingSnapshotOptions options;
  options.engine.cache_capacity = 0;
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), options);

  Matrix queries = RandomSignCodes(5, 64, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(queries);
  engine->Search(pq, 4);
  const auto again = engine->Search(pq, 4);
  EXPECT_EQ(engine->stats().cache_hits, 0);
  EXPECT_EQ(engine->cache_size(), 0u);
  for (int q = 0; q < 5; ++q) {
    ExpectSameNeighbors(truth.TopK(pq.code(q), 4),
                        again[static_cast<size_t>(q)]);
  }
}

TEST(ResultCacheTest, LruEvictsOldestEntry) {
  ResultCache cache(2);
  CacheKey a{{1}, 5}, b{{2}, 5}, c{{3}, 5};
  cache.Insert(a, {{0, 0}});
  cache.Insert(b, {{1, 1}});
  std::vector<Neighbor> out;
  ASSERT_TRUE(cache.Lookup(a, &out));  // refresh a; b is now the LRU
  cache.Insert(c, {{2, 2}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(a, &out));
  EXPECT_FALSE(cache.Lookup(b, &out));
  EXPECT_TRUE(cache.Lookup(c, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 2);
}

TEST(QueryEngineTest, ConcurrentSearchesAreRaceFreeAndExact) {
  Rng rng(31);
  const int n = 500, bits = 64, k = 9;
  Matrix db = RandomSignCodes(n, bits, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));

  ServingSnapshotOptions options;
  options.index.num_shards = 8;
  options.engine.cache_capacity = 32;  // small: force hits AND evictions
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), options);

  // A shared query set so threads collide on the same cache keys.
  Matrix queries = RandomSignCodes(40, bits, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(queries);
  std::vector<std::vector<Neighbor>> expected;
  for (int q = 0; q < pq.size(); ++q) {
    expected.push_back(truth.TopK(pq.code(q), k));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const auto results = engine->Search(pq, k);
        for (size_t q = 0; q < results.size(); ++q) {
          if (results[q].size() != expected[q].size()) {
            ++failures[t];
            continue;
          }
          for (size_t i = 0; i < results[q].size(); ++i) {
            if (results[q][i].id != expected[q][i].id ||
                results[q][i].distance != expected[q][i].distance) {
              ++failures[t];
              break;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t << " saw wrong results";
  }
  const ServeStatsSnapshot stats = engine->stats();
  EXPECT_EQ(stats.queries, int64_t{kThreads} * kRounds * pq.size());
  EXPECT_EQ(stats.batches, int64_t{kThreads} * kRounds);
}

TEST(ServeStatsTest, PercentilesAndThroughput) {
  ServeStats stats;
  // 100 queries at 10ms plus one slow 100ms batch.
  for (int i = 0; i < 100; ++i) stats.RecordBatch(1, 0, 0.010);
  stats.RecordBatch(1, 1, 0.100);
  const ServeStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 101);
  EXPECT_EQ(snap.cache_hits, 1);
  EXPECT_NEAR(snap.latency_p50_ms, 10.0, 1e-9);
  EXPECT_NEAR(snap.latency_p99_ms, 10.0, 1e-9);
  EXPECT_NEAR(snap.busy_seconds, 1.1, 1e-9);
  EXPECT_NEAR(snap.qps(), 101 / 1.1, 1e-6);
  stats.Reset();
  EXPECT_EQ(stats.Snapshot().queries, 0);
}

TEST(ServeStatsTest, PercentileNearestRank) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 0), 1.0);
}

TEST(SnapshotTest, LoadQueryEngineRoundTrip) {
  Rng rng(41);
  const int bits = 64, k = 6;
  Matrix db = RandomSignCodes(120, bits, &rng);
  PackedCodes packed = PackedCodes::FromSignMatrix(db);
  const std::string path = ::testing::TempDir() + "/serve_codes.bin";
  ASSERT_TRUE(io::SavePackedCodes(packed, path).ok());

  ServingSnapshotOptions options;
  options.index.num_shards = 3;
  Result<std::unique_ptr<QueryEngine>> engine =
      LoadQueryEngine(path, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->index().size(), 120);
  EXPECT_EQ((*engine)->index().num_shards(), 3);

  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));
  Matrix query = RandomSignCodes(1, bits, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  ExpectSameNeighbors(truth.TopK(pq.code(0), k),
                      (*engine)->SearchOne(pq.code(0), k));
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileFailsLoudly) {
  Result<std::unique_ptr<QueryEngine>> engine =
      LoadQueryEngine(::testing::TempDir() + "/no-such-codes.bin");
  EXPECT_FALSE(engine.ok());
}

}  // namespace
}  // namespace uhscm::serve
