#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/linear_scan.h"
#include "index/packed_codes.h"
#include "io/serialize.h"
#include "serve/query_engine.h"
#include "serve/result_cache.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"
#include "serve/snapshot.h"
#include "test_util.h"

namespace uhscm::serve {
namespace {

using index::LinearScanIndex;
using index::Neighbor;
using index::PackedCodes;
using linalg::Matrix;
using uhscm::testing::RandomSignCodes;

void ExpectSameNeighbors(const std::vector<Neighbor>& expect,
                         const std::vector<Neighbor>& got) {
  ASSERT_EQ(expect.size(), got.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(expect[i].id, got[i].id) << "rank " << i;
    EXPECT_EQ(expect[i].distance, got[i].distance) << "rank " << i;
  }
}

/// Shard/backend sweep: sharded top-k must be byte-identical to a
/// single LinearScan over the unsharded corpus.
class ShardedIndexSweep
    : public ::testing::TestWithParam<std::tuple<int, ShardBackend>> {};

TEST_P(ShardedIndexSweep, MatchesLinearScanGroundTruth) {
  const auto [num_shards, backend] = GetParam();
  Rng rng(100 + num_shards);
  const int n = 300, bits = 64, k = 10;
  Matrix db = RandomSignCodes(n, bits, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));

  ShardedIndexOptions options;
  options.num_shards = num_shards;
  options.backend = backend;
  ShardedIndex sharded(PackedCodes::FromSignMatrix(db), options);
  EXPECT_EQ(sharded.size(), n);
  EXPECT_LE(sharded.num_shards(), num_shards);

  for (int q = 0; q < 20; ++q) {
    Matrix query = RandomSignCodes(1, bits, &rng);
    PackedCodes pq = PackedCodes::FromSignMatrix(query);
    ExpectSameNeighbors(truth.TopK(pq.code(0), k),
                        sharded.TopK(pq.code(0), k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ShardedIndexSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 7, 16),
                       ::testing::Values(ShardBackend::kLinearScan,
                                         ShardBackend::kMultiIndexHash)));

TEST(ShardedIndexTest, ShardCountClampedToCorpusSize) {
  Rng rng(7);
  Matrix db = RandomSignCodes(5, 32, &rng);
  ShardedIndexOptions options;
  options.num_shards = 64;
  ShardedIndex sharded(PackedCodes::FromSignMatrix(db), options);
  EXPECT_EQ(sharded.num_shards(), 5);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));
  Matrix query = RandomSignCodes(1, 32, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  ExpectSameNeighbors(truth.TopK(pq.code(0), 3), sharded.TopK(pq.code(0), 3));
}

TEST(ShardedIndexTest, KLargerThanCorpusReturnsWholeCorpus) {
  Rng rng(8);
  Matrix db = RandomSignCodes(50, 64, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));
  for (ShardBackend backend :
       {ShardBackend::kLinearScan, ShardBackend::kMultiIndexHash}) {
    ShardedIndexOptions options;
    options.num_shards = 4;
    options.backend = backend;
    ShardedIndex sharded(PackedCodes::FromSignMatrix(db), options);
    Matrix query = RandomSignCodes(1, 64, &rng);
    PackedCodes pq = PackedCodes::FromSignMatrix(query);
    const auto got = sharded.TopK(pq.code(0), 1000);
    ASSERT_EQ(got.size(), 50u);
    ExpectSameNeighbors(truth.TopK(pq.code(0), 1000), got);
  }
}

TEST(ShardedIndexTest, ShardTopKBatchMatchesPerQueryShardTopK) {
  // The batched per-shard entry point (SIMD cache-blocked scan for
  // linear shards, per-query fallback for MIH shards) must be
  // byte-identical to the per-query path, global ids included.
  Rng rng(456);
  const int n = 350, bits = 128, k = 12;
  Matrix db = RandomSignCodes(n, bits, &rng);
  PackedCodes queries = PackedCodes::FromSignMatrix(RandomSignCodes(7, bits, &rng));

  for (ShardBackend backend :
       {ShardBackend::kLinearScan, ShardBackend::kMultiIndexHash}) {
    ShardedIndexOptions options;
    options.num_shards = 3;
    options.backend = backend;
    ShardedIndex sharded(PackedCodes::FromSignMatrix(db), options);

    std::vector<const uint64_t*> qptrs;
    for (int q = 0; q < queries.size(); ++q) qptrs.push_back(queries.code(q));
    for (int s = 0; s < sharded.num_shards(); ++s) {
      const auto batched = sharded.ShardTopKBatch(
          s, qptrs.data(), static_cast<int>(qptrs.size()), k);
      ASSERT_EQ(batched.size(), qptrs.size());
      for (int q = 0; q < queries.size(); ++q) {
        ExpectSameNeighbors(sharded.ShardTopK(s, queries.code(q), k),
                            batched[static_cast<size_t>(q)]);
      }
    }
  }
}

TEST(QueryEngineTest, MissBlockSizesAllMatchGroundTruth) {
  // The engine groups cache misses into miss_block-sized batch-scan
  // units; every grouping must produce identical results.
  Rng rng(457);
  const int n = 400, bits = 64, k = 9;
  Matrix db = RandomSignCodes(n, bits, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));
  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(33, bits, &rng));

  for (int miss_block : {1, 4, 16, 64}) {
    ShardedIndexOptions index_options;
    index_options.num_shards = 4;
    QueryEngineOptions engine_options;
    engine_options.num_threads = 2;
    engine_options.cache_capacity = 0;
    engine_options.miss_block = miss_block;
    QueryEngine engine(std::make_unique<ShardedIndex>(
                           PackedCodes::FromSignMatrix(db), index_options),
                       engine_options);
    const auto results = engine.Search(queries, k);
    ASSERT_EQ(results.size(), 33u);
    for (int q = 0; q < queries.size(); ++q) {
      ExpectSameNeighbors(truth.TopK(queries.code(q), k),
                          results[static_cast<size_t>(q)]);
    }
  }
}

TEST(ShardedIndexTest, MergeTopKHandlesEmptyLists) {
  std::vector<std::vector<Neighbor>> per_shard(3);
  per_shard[1] = {{4, 1}, {9, 3}};
  const auto merged = ShardedIndex::MergeTopK(per_shard, 5);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].id, 4);
  EXPECT_EQ(merged[1].id, 9);
  EXPECT_TRUE(ShardedIndex::MergeTopK({}, 5).empty());
}

TEST(QueryEngineTest, BatchedSearchMatchesGroundTruth) {
  Rng rng(21);
  const int n = 400, bits = 96, k = 7;
  Matrix db = RandomSignCodes(n, bits, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));

  ServingSnapshotOptions options;
  options.index.num_shards = 4;
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), options);

  Matrix queries = RandomSignCodes(25, bits, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(queries);
  const auto batched = engine->Search(pq, k);
  ASSERT_EQ(batched.size(), 25u);
  for (int q = 0; q < 25; ++q) {
    ExpectSameNeighbors(truth.TopK(pq.code(q), k),
                        batched[static_cast<size_t>(q)]);
  }
}

TEST(QueryEngineTest, CacheHitsReturnIdenticalNeighbors) {
  Rng rng(22);
  const int bits = 64, k = 5;
  Matrix db = RandomSignCodes(200, bits, &rng);
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), {});

  Matrix queries = RandomSignCodes(10, bits, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(queries);
  const auto first = engine->Search(pq, k);
  const auto second = engine->Search(pq, k);

  const ServeStatsSnapshot stats = engine->stats();
  EXPECT_EQ(stats.queries, 20);
  EXPECT_EQ(stats.batches, 2);
  EXPECT_EQ(stats.cache_misses, 10);
  EXPECT_EQ(stats.cache_hits, 10);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
  EXPECT_EQ(engine->cache_size(), 10u);
  for (size_t q = 0; q < first.size(); ++q) {
    ExpectSameNeighbors(first[q], second[q]);
  }
}

TEST(QueryEngineTest, DifferentKIsADistinctCacheEntry) {
  Rng rng(23);
  Matrix db = RandomSignCodes(100, 32, &rng);
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), {});
  Matrix query = RandomSignCodes(1, 32, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  EXPECT_EQ(engine->Search(pq, 3)[0].size(), 3u);
  EXPECT_EQ(engine->Search(pq, 8)[0].size(), 8u);
  EXPECT_EQ(engine->stats().cache_hits, 0);
  EXPECT_EQ(engine->cache_size(), 2u);
}

TEST(QueryEngineTest, DisabledCacheStaysExact) {
  Rng rng(24);
  Matrix db = RandomSignCodes(150, 64, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));
  ServingSnapshotOptions options;
  options.engine.cache_capacity = 0;
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), options);

  Matrix queries = RandomSignCodes(5, 64, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(queries);
  engine->Search(pq, 4);
  const auto again = engine->Search(pq, 4);
  EXPECT_EQ(engine->stats().cache_hits, 0);
  EXPECT_EQ(engine->cache_size(), 0u);
  for (int q = 0; q < 5; ++q) {
    ExpectSameNeighbors(truth.TopK(pq.code(q), 4),
                        again[static_cast<size_t>(q)]);
  }
}

TEST(ResultCacheTest, LruEvictsOldestEntry) {
  ResultCache cache(2);
  CacheKey a{{1}, 5}, b{{2}, 5}, c{{3}, 5};
  cache.Insert(a, {{0, 0}});
  cache.Insert(b, {{1, 1}});
  std::vector<Neighbor> out;
  ASSERT_TRUE(cache.Lookup(a, &out));  // refresh a; b is now the LRU
  cache.Insert(c, {{2, 2}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(a, &out));
  EXPECT_FALSE(cache.Lookup(b, &out));
  EXPECT_TRUE(cache.Lookup(c, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].id, 2);
}

TEST(QueryEngineTest, ConcurrentSearchesAreRaceFreeAndExact) {
  Rng rng(31);
  const int n = 500, bits = 64, k = 9;
  Matrix db = RandomSignCodes(n, bits, &rng);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));

  ServingSnapshotOptions options;
  options.index.num_shards = 8;
  options.engine.cache_capacity = 32;  // small: force hits AND evictions
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), options);

  // A shared query set so threads collide on the same cache keys.
  Matrix queries = RandomSignCodes(40, bits, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(queries);
  std::vector<std::vector<Neighbor>> expected;
  for (int q = 0; q < pq.size(); ++q) {
    expected.push_back(truth.TopK(pq.code(q), k));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const auto results = engine->Search(pq, k);
        for (size_t q = 0; q < results.size(); ++q) {
          if (results[q].size() != expected[q].size()) {
            ++failures[t];
            continue;
          }
          for (size_t i = 0; i < results[q].size(); ++i) {
            if (results[q][i].id != expected[q][i].id ||
                results[q][i].distance != expected[q][i].distance) {
              ++failures[t];
              break;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t << " saw wrong results";
  }
  const ServeStatsSnapshot stats = engine->stats();
  EXPECT_EQ(stats.queries, int64_t{kThreads} * kRounds * pq.size());
  EXPECT_EQ(stats.batches, int64_t{kThreads} * kRounds);
}

TEST(ServeStatsTest, PercentilesAndThroughput) {
  ServeStats stats;
  // 100 queries at 10ms plus one slow 100ms batch.
  for (int i = 0; i < 100; ++i) stats.RecordBatch(1, 0, 0.010);
  stats.RecordBatch(1, 1, 0.100);
  const ServeStatsSnapshot snap = stats.Snapshot();
  EXPECT_EQ(snap.queries, 101);
  EXPECT_EQ(snap.cache_hits, 1);
  // Percentiles come from the log-linear histogram: exact to within one
  // bucket, i.e. ~3.1% relative resolution.
  EXPECT_NEAR(snap.latency_p50_ms, 10.0, 10.0 * 0.032);
  EXPECT_NEAR(snap.latency_p99_ms, 10.0, 10.0 * 0.032);
  EXPECT_NEAR(snap.busy_seconds, 1.1, 1e-9);
  // busy_qps keeps the per-query-service-cost semantics; qps() divides
  // by wall-clock time, which a unit test cannot pin to a constant.
  EXPECT_NEAR(snap.busy_qps(), 101 / 1.1, 1e-6);
  EXPECT_GT(snap.wall_seconds, 0.0);
  EXPECT_GT(snap.qps(), 0.0);
  EXPECT_GT(snap.utilization(), 0.0);
  stats.Reset();
  EXPECT_EQ(stats.Snapshot().queries, 0);
}

TEST(ServeStatsTest, PercentileNearestRank) {
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 50), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 100), 4.0);
  EXPECT_DOUBLE_EQ(Percentile({1, 2, 3, 4}, 0), 1.0);
}

TEST(SnapshotTest, LoadQueryEngineRoundTrip) {
  Rng rng(41);
  const int bits = 64, k = 6;
  Matrix db = RandomSignCodes(120, bits, &rng);
  PackedCodes packed = PackedCodes::FromSignMatrix(db);
  const std::string path = ::testing::TempDir() + "/serve_codes.bin";
  ASSERT_TRUE(io::SavePackedCodes(packed, path).ok());

  ServingSnapshotOptions options;
  options.index.num_shards = 3;
  Result<std::unique_ptr<QueryEngine>> engine =
      LoadQueryEngine(path, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->index().size(), 120);
  EXPECT_EQ((*engine)->index().num_shards(), 3);

  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));
  Matrix query = RandomSignCodes(1, bits, &rng);
  PackedCodes pq = PackedCodes::FromSignMatrix(query);
  ExpectSameNeighbors(truth.TopK(pq.code(0), k),
                      (*engine)->SearchOne(pq.code(0), k));
  std::remove(path.c_str());
}

TEST(SnapshotTest, MissingFileFailsLoudly) {
  Result<std::unique_ptr<QueryEngine>> engine =
      LoadQueryEngine(::testing::TempDir() + "/no-such-codes.bin");
  EXPECT_FALSE(engine.ok());
}

// ---------------------------------------------------------------------
// Mutable corpus: appends, tombstone deletes, epoch-keyed caching, and
// versioned snapshots.

/// Reference model for the interleaving test: every code ever added with
/// its stable global id and live flag.
struct RefCorpus {
  std::vector<std::vector<uint64_t>> rows;  // indexed by global id
  std::vector<bool> live;
  int bits = 0;

  /// Survivors in global-id order, plus the gid -> compacted-rank map.
  PackedCodes Survivors(std::vector<int>* rank_of_gid) const {
    std::vector<uint64_t> words;
    rank_of_gid->assign(rows.size(), -1);
    int rank = 0;
    for (size_t gid = 0; gid < rows.size(); ++gid) {
      if (!live[gid]) continue;
      words.insert(words.end(), rows[gid].begin(), rows[gid].end());
      (*rank_of_gid)[gid] = rank++;
    }
    return PackedCodes::FromRawWords(rank, bits, std::move(words));
  }
};

/// The acceptance invariant: after any interleaving of Append/Remove,
/// engine results are byte-identical — after compacting stable ids by
/// survivor rank — to a freshly built engine over the surviving rows.
class RandomInterleavingSweep
    : public ::testing::TestWithParam<ShardBackend> {};

TEST_P(RandomInterleavingSweep, MatchesFreshRebuildAtEveryCheckpoint) {
  Rng rng(777);
  const int bits = 64, k = 10;
  Matrix base = RandomSignCodes(120, bits, &rng);
  RefCorpus ref;
  ref.bits = bits;
  {
    PackedCodes packed = PackedCodes::FromSignMatrix(base);
    for (int i = 0; i < packed.size(); ++i) {
      ref.rows.emplace_back(packed.code(i),
                            packed.code(i) + packed.words_per_code());
      ref.live.push_back(true);
    }
  }

  ServingSnapshotOptions options;
  options.index.num_shards = 3;
  options.index.backend = GetParam();
  options.engine.num_threads = 2;
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(base), options);

  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(12, bits, &rng));

  int live_count = 120;
  for (int step = 0; step < 60; ++step) {
    if (rng.Bernoulli(0.5)) {
      // Append 1..6 fresh codes.
      const int count = 1 + static_cast<int>(rng.UniformInt(6));
      PackedCodes batch =
          PackedCodes::FromSignMatrix(RandomSignCodes(count, bits, &rng));
      const std::vector<int> ids = engine->Append(batch);
      ASSERT_EQ(ids.size(), static_cast<size_t>(count));
      for (int i = 0; i < count; ++i) {
        ASSERT_EQ(ids[static_cast<size_t>(i)],
                  static_cast<int>(ref.rows.size()))
            << "global ids must be assigned consecutively";
        ref.rows.emplace_back(batch.code(i),
                              batch.code(i) + batch.words_per_code());
        ref.live.push_back(true);
      }
      live_count += count;
    } else if (live_count > 20) {
      // Remove a random live global id.
      int gid;
      do {
        gid = static_cast<int>(rng.UniformInt(ref.rows.size()));
      } while (!ref.live[static_cast<size_t>(gid)]);
      ASSERT_TRUE(engine->Remove(gid));
      ref.live[static_cast<size_t>(gid)] = false;
      --live_count;
    }

    if (step % 10 != 9) continue;
    // Checkpoint: engine vs fresh rebuild over the survivors.
    std::vector<int> rank_of_gid;
    LinearScanIndex truth(ref.Survivors(&rank_of_gid));
    ASSERT_EQ(truth.total_size(), engine->index().size());
    const auto batched = engine->Search(queries, k);
    for (int q = 0; q < queries.size(); ++q) {
      const auto expect = truth.TopK(queries.code(q), k);
      const auto& got = batched[static_cast<size_t>(q)];
      ASSERT_EQ(expect.size(), got.size()) << "step " << step;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_LT(static_cast<size_t>(got[i].id), rank_of_gid.size());
        EXPECT_EQ(expect[i].id, rank_of_gid[static_cast<size_t>(got[i].id)])
            << "step " << step << " query " << q << " rank " << i;
        EXPECT_EQ(expect[i].distance, got[i].distance);
      }
    }
  }
  EXPECT_EQ(engine->stats().epoch, engine->epoch());
  EXPECT_GT(engine->epoch(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, RandomInterleavingSweep,
                         ::testing::Values(ShardBackend::kLinearScan,
                                           ShardBackend::kMultiIndexHash));

TEST(MutableEngineTest, PreUpdateCacheEntryNeverServedPostUpdate) {
  Rng rng(801);
  const int bits = 64, k = 5;
  Matrix db = RandomSignCodes(100, bits, &rng);
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), {});

  PackedCodes pq = PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
  const auto before = engine->Search(pq, k);

  // Append the query itself: post-update, the distance-0 hit must lead.
  engine->Append(PackedCodes::FromRawWords(
      1, bits, std::vector<uint64_t>(pq.code(0), pq.code(0) + pq.words_per_code())));
  const auto after = engine->Search(pq, k);
  ASSERT_EQ(after[0].size(), static_cast<size_t>(k));
  EXPECT_EQ(after[0][0].id, 100);
  EXPECT_EQ(after[0][0].distance, 0);
  // Both computations were cache misses — the epoch key made the
  // pre-update entry unreachable.
  EXPECT_EQ(engine->stats().cache_hits, 0);
  EXPECT_EQ(engine->stats().cache_misses, 2);

  // Removing the appended row restores the original ranking (new epoch,
  // fresh entry again).
  ASSERT_TRUE(engine->Remove(100));
  const auto restored = engine->Search(pq, k);
  ASSERT_EQ(restored[0].size(), before[0].size());
  for (size_t i = 0; i < restored[0].size(); ++i) {
    EXPECT_EQ(restored[0][i].id, before[0][i].id);
    EXPECT_EQ(restored[0][i].distance, before[0][i].distance);
  }
  EXPECT_EQ(engine->stats().cache_hits, 0);
  EXPECT_EQ(engine->epoch(), 2u);
  const ServeStatsSnapshot stats = engine->stats();
  EXPECT_EQ(stats.appends, 1);
  EXPECT_EQ(stats.removes, 1);
}

TEST(MutableEngineTest, AppendRoutesToLeastFullShardAndRemapsIds) {
  Rng rng(802);
  const int bits = 32;
  ShardedIndexOptions options;
  options.num_shards = 4;
  ShardedIndex index(PackedCodes::FromSignMatrix(RandomSignCodes(40, bits, &rng)),
                     options);
  // Drain shard 2 (global ids 20..29), then append: the fresh rows must
  // land in shard 2 with brand-new global ids.
  for (int gid = 20; gid < 30; ++gid) ASSERT_TRUE(index.Remove(gid));
  EXPECT_EQ(index.size(), 30);
  PackedCodes batch =
      PackedCodes::FromSignMatrix(RandomSignCodes(5, bits, &rng));
  const std::vector<int> ids = index.Append(batch);
  ASSERT_EQ(ids.size(), 5u);
  EXPECT_EQ(ids.front(), 40);
  EXPECT_EQ(ids.back(), 44);
  EXPECT_EQ(index.size(), 35);
  EXPECT_EQ(index.total_size(), 45);

  // The appended codes are retrievable under their new global ids.
  for (int i = 0; i < batch.size(); ++i) {
    const auto top = index.TopK(batch.code(i), 1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].distance, 0);
  }
}

TEST(ResultCacheTest, CountersTrackHitsMissesEvictions) {
  ResultCache cache(2);
  CacheKey a{{1}, 5, 0}, b{{2}, 5, 0}, c{{3}, 5, 0};
  std::vector<Neighbor> out;
  EXPECT_FALSE(cache.Lookup(a, &out));
  cache.Insert(a, {{0, 0}});
  cache.Insert(b, {{1, 1}});
  EXPECT_TRUE(cache.Lookup(a, &out));
  cache.Insert(c, {{2, 2}});  // evicts b
  EXPECT_FALSE(cache.Lookup(b, &out));
  ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.evictions, 1);
  cache.ResetStats();
  stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(ResultCacheTest, SameQueryDifferentEpochIsADistinctEntry) {
  ResultCache cache(8);
  CacheKey old_epoch{{42}, 3, 0}, new_epoch{{42}, 3, 1};
  cache.Insert(old_epoch, {{7, 1}});
  std::vector<Neighbor> out;
  EXPECT_FALSE(cache.Lookup(new_epoch, &out));
  EXPECT_TRUE(cache.Lookup(old_epoch, &out));
}

TEST(MutableEngineTest, EvictionCounterSurfacesThroughServeStats) {
  Rng rng(803);
  const int bits = 64, k = 3;
  Matrix db = RandomSignCodes(80, bits, &rng);
  ServingSnapshotOptions options;
  options.engine.cache_capacity = 4;
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), options);
  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(10, bits, &rng));
  engine->Search(queries, k);  // 10 inserts into a 4-entry cache
  EXPECT_EQ(engine->stats().cache_evictions, 6);
  engine->ResetStats();
  EXPECT_EQ(engine->stats().cache_evictions, 0);
}

TEST(SnapshotTest, V2RoundTripPreservesIdsEpochAndResults) {
  Rng rng(804);
  const int bits = 64, k = 8;
  Matrix db = RandomSignCodes(90, bits, &rng);
  ServingSnapshotOptions options;
  options.index.num_shards = 3;
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), options);

  engine->Append(PackedCodes::FromSignMatrix(RandomSignCodes(25, bits, &rng)));
  engine->RemoveIds({0, 17, 89, 95, 114});
  const uint64_t epoch = engine->epoch();
  ASSERT_EQ(epoch, 2u);

  const std::string path = ::testing::TempDir() + "/mutated_snapshot.bin";
  ASSERT_TRUE(SaveServingSnapshot(*engine, path).ok());

  // Reload with a *different* shard count: global ids, epoch, and
  // results must be preserved regardless of partitioning.
  ServingSnapshotOptions reload_options;
  reload_options.index.num_shards = 5;
  Result<std::unique_ptr<QueryEngine>> reloaded =
      LoadQueryEngine(path, reload_options);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ((*reloaded)->epoch(), epoch);
  EXPECT_EQ((*reloaded)->index().size(), engine->index().size());
  EXPECT_EQ((*reloaded)->index().total_size(), engine->index().total_size());

  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(15, bits, &rng));
  const auto expect = engine->Search(queries, k);
  const auto got = (*reloaded)->Search(queries, k);
  for (int q = 0; q < queries.size(); ++q) {
    ExpectSameNeighbors(expect[static_cast<size_t>(q)],
                        got[static_cast<size_t>(q)]);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Tombstone compaction: dead rows leave the shards, global ids and
// results stay byte-identical, and the locator keeps resolving.

class CompactionSweep : public ::testing::TestWithParam<ShardBackend> {};

TEST_P(CompactionSweep, CompactionIsInvisibleToQueries) {
  Rng rng(900);
  const int bits = 64, k = 10;
  ShardedIndexOptions options;
  options.num_shards = 3;
  options.backend = GetParam();
  ShardedIndex index(PackedCodes::FromSignMatrix(RandomSignCodes(150, bits, &rng)),
                     options);
  index.Append(PackedCodes::FromSignMatrix(RandomSignCodes(30, bits, &rng)));
  std::vector<int> doomed;
  for (int gid = 0; gid < 180; gid += 3) doomed.push_back(gid);
  ASSERT_EQ(index.RemoveIds(doomed), static_cast<int>(doomed.size()));

  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(15, bits, &rng));
  std::vector<std::vector<Neighbor>> before;
  for (int q = 0; q < queries.size(); ++q) {
    before.push_back(index.TopK(queries.code(q), k));
  }

  const CompactionStats stats = index.CompactAll();
  EXPECT_EQ(stats.rows_reclaimed, static_cast<int>(doomed.size()));
  EXPECT_EQ(stats.shards_compacted, 3);
  EXPECT_EQ(index.size(), 120);
  EXPECT_EQ(index.total_size(), 180)
      << "the global id space never shrinks — ids are forever";

  // Byte-identical results with the *same global ids* — compaction must
  // be invisible to every reader.
  for (int q = 0; q < queries.size(); ++q) {
    ExpectSameNeighbors(before[static_cast<size_t>(q)],
                        index.TopK(queries.code(q), k));
  }
  // A second pass finds nothing to reclaim.
  const CompactionStats again = index.CompactAll();
  EXPECT_EQ(again.rows_reclaimed, 0);
  EXPECT_EQ(again.shards_compacted, 0);
}

TEST_P(CompactionSweep, LocatorStaysCorrectAcrossCompactions) {
  Rng rng(901);
  const int bits = 64;
  ShardedIndexOptions options;
  options.num_shards = 2;
  options.backend = GetParam();
  ShardedIndex index(PackedCodes::FromSignMatrix(RandomSignCodes(40, bits, &rng)),
                     options);
  // Shard 0 holds gids 0..19, shard 1 holds 20..39. Compact one shard
  // at a time through the manual per-shard entry point.
  ASSERT_EQ(index.RemoveIds({1, 3, 5, 21, 23}), 5);
  EXPECT_EQ(index.CompactShard(0), 3);
  EXPECT_EQ(index.CompactShard(0), 0) << "shard 0 is already clean";
  EXPECT_EQ(index.CompactShard(1), 2);

  // Compacted-away ids are gone for good: a second remove is a no-op,
  // not a strike against some other row's new local slot.
  EXPECT_FALSE(index.Remove(1));
  EXPECT_EQ(index.RemoveIds({1, 3, 5}), 0);
  EXPECT_EQ(index.size(), 35);

  // Surviving ids still resolve: removing one drops exactly one row.
  EXPECT_TRUE(index.Remove(0));
  EXPECT_EQ(index.size(), 34);

  // Appends after compaction keep drawing fresh monotonic ids, land in
  // the emptiest shard, and are retrievable.
  PackedCodes batch =
      PackedCodes::FromSignMatrix(RandomSignCodes(4, bits, &rng));
  const std::vector<int> ids = index.Append(batch);
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(ids.front(), 40);
  for (int i = 0; i < batch.size(); ++i) {
    const auto top = index.TopK(batch.code(i), 1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].distance, 0);
    EXPECT_GE(top[0].id, 0);
  }
  // And the new rows compact away cleanly too.
  ASSERT_TRUE(index.Remove(ids[1]));
  EXPECT_EQ(index.CompactAll().rows_reclaimed, 2);
  EXPECT_FALSE(index.Remove(ids[1]));
}

TEST_P(CompactionSweep, MaybeCompactHonorsDeadFractionThreshold) {
  Rng rng(902);
  const int bits = 64;
  ShardedIndexOptions options;
  options.num_shards = 2;
  options.backend = GetParam();
  // Shard 0 holds gids 0..19, shard 1 holds 20..39.
  ShardedIndex index(PackedCodes::FromSignMatrix(RandomSignCodes(40, bits, &rng)),
                     options);
  // 50% dead in shard 0, 10% dead in shard 1.
  std::vector<int> doomed;
  for (int gid = 0; gid < 10; ++gid) doomed.push_back(gid);
  doomed.push_back(25);
  doomed.push_back(26);
  ASSERT_EQ(index.RemoveIds(doomed), 12);

  const CompactionStats stats = index.MaybeCompact(0.25);
  EXPECT_EQ(stats.shards_compacted, 1) << "only shard 0 crossed 25% dead";
  EXPECT_EQ(stats.rows_reclaimed, 10);
  EXPECT_EQ(index.size(), 28);

  // Lowering the threshold sweeps up the rest.
  const CompactionStats rest = index.MaybeCompact(0.05);
  EXPECT_EQ(rest.shards_compacted, 1);
  EXPECT_EQ(rest.rows_reclaimed, 2);
}

INSTANTIATE_TEST_SUITE_P(Backends, CompactionSweep,
                         ::testing::Values(ShardBackend::kLinearScan,
                                           ShardBackend::kMultiIndexHash));

TEST(MutableEngineTest, RemoveIdsCountsEachDeadRowOnce) {
  // Pins the RemoveIds accounting contract: duplicates in one call,
  // out-of-range ids, already-tombstoned ids, and compacted-away ids
  // must each decrement the live counters at most once per actual row
  // death — a double-decrement would skew least-full append routing and
  // under-report the live corpus forever.
  Rng rng(903);
  const int bits = 64;
  ShardedIndexOptions options;
  options.num_shards = 2;
  ShardedIndex index(PackedCodes::FromSignMatrix(RandomSignCodes(30, bits, &rng)),
                     options);
  ASSERT_TRUE(index.Remove(7));  // already tombstoned before the batch
  EXPECT_EQ(index.size(), 29);

  // 4 and 9 appear twice; 7 is already dead; -3 and 1000 are out of
  // range. Exactly {4, 9, 11} newly die.
  EXPECT_EQ(index.RemoveIds({4, 4, 9, 7, 9, -3, 1000, 11}), 3);
  EXPECT_EQ(index.size(), 26);
  EXPECT_EQ(index.total_size(), 30);

  // After compaction the same ids are locator-gone; repeating the call
  // must not touch any surviving row's new local slot.
  ASSERT_EQ(index.CompactAll().rows_reclaimed, 4);
  EXPECT_EQ(index.RemoveIds({4, 4, 9, 7, 9, -3, 1000, 11}), 0);
  EXPECT_EQ(index.size(), 26);

  // Counters stay exact: appends after the churn still balance onto the
  // emptiest shard without tripping the live bookkeeping.
  const std::vector<int> ids =
      index.Append(PackedCodes::FromSignMatrix(RandomSignCodes(3, bits, &rng)));
  EXPECT_EQ(ids.front(), 30);
  EXPECT_EQ(index.size(), 29);
}

TEST(MutableEngineTest, AutoCompactionTriggersAtThreshold) {
  Rng rng(904);
  const int bits = 64, k = 6;
  Matrix db = RandomSignCodes(120, bits, &rng);
  ServingSnapshotOptions options;
  options.index.num_shards = 3;
  options.engine.compact_dead_fraction = 0.4;
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), options);

  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(10, bits, &rng));
  const auto before = engine->Search(queries, k);

  // 10% dead: below the threshold, nothing compacts.
  std::vector<int> first_wave;
  for (int gid = 0; gid < 12; ++gid) first_wave.push_back(gid * 10);
  ASSERT_EQ(engine->RemoveIds(first_wave), 12);
  ServeStatsSnapshot stats = engine->stats();
  EXPECT_EQ(stats.compactions, 0);

  // Push shard 0 (gids 0..39) over 40% dead: auto-compaction fires on
  // the RemoveIds call itself, invisible to results.
  std::vector<int> second_wave;
  for (int gid = 0; gid < 20; ++gid) second_wave.push_back(gid);
  const int newly_dead = engine->RemoveIds(second_wave);
  ASSERT_GT(newly_dead, 0);
  stats = engine->stats();
  EXPECT_GT(stats.compactions, 0);
  EXPECT_GT(stats.compact_rows_reclaimed, 0);

  // Results equal a reference engine that saw the same removals but
  // never compacted — same distances, same global ids.
  ServingSnapshotOptions reference_options;
  reference_options.index.num_shards = 3;
  auto reference =
      MakeQueryEngine(PackedCodes::FromSignMatrix(db), reference_options);
  reference->RemoveIds(first_wave);
  reference->RemoveIds(second_wave);
  ASSERT_EQ(reference->index().size(), engine->index().size());
  const auto expect = reference->Search(queries, k);
  const auto got = engine->Search(queries, k);
  for (int q = 0; q < queries.size(); ++q) {
    ExpectSameNeighbors(expect[static_cast<size_t>(q)],
                        got[static_cast<size_t>(q)]);
  }
}

TEST(MutableEngineTest, ManualCompactBumpsEpochOnlyWhenReclaiming) {
  Rng rng(905);
  const int bits = 64;
  auto engine = MakeQueryEngine(
      PackedCodes::FromSignMatrix(RandomSignCodes(50, bits, &rng)), {});
  EXPECT_EQ(engine->Compact().rows_reclaimed, 0);
  EXPECT_EQ(engine->epoch(), 0u) << "a no-op compaction is not an update";

  ASSERT_TRUE(engine->Remove(10));
  ASSERT_EQ(engine->epoch(), 1u);
  const CompactionStats stats = engine->Compact();
  EXPECT_EQ(stats.rows_reclaimed, 1);
  EXPECT_EQ(engine->epoch(), 2u);
  EXPECT_EQ(engine->stats().compactions, stats.shards_compacted);
}

TEST(SnapshotTest, CompactedEngineRoundTripsWithStableIds) {
  Rng rng(906);
  const int bits = 64, k = 8;
  Matrix db = RandomSignCodes(100, bits, &rng);
  ServingSnapshotOptions options;
  options.index.num_shards = 4;
  auto engine = MakeQueryEngine(PackedCodes::FromSignMatrix(db), options);
  engine->Append(PackedCodes::FromSignMatrix(RandomSignCodes(20, bits, &rng)));
  std::vector<int> doomed;
  for (int gid = 0; gid < 120; gid += 4) doomed.push_back(gid);
  ASSERT_EQ(engine->RemoveIds(doomed), 30);
  ASSERT_EQ(engine->Compact().rows_reclaimed, 30);

  const std::string path = ::testing::TempDir() + "/compacted_snapshot.bin";
  ASSERT_TRUE(SaveServingSnapshot(*engine, path).ok());

  // The compacted-away ids persist as dead slots: the reloaded engine
  // keeps every surviving global id and every result byte-identical.
  ServingSnapshotOptions reload_options;
  reload_options.index.num_shards = 2;
  Result<std::unique_ptr<QueryEngine>> reloaded =
      LoadQueryEngine(path, reload_options);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ((*reloaded)->epoch(), engine->epoch());
  EXPECT_EQ((*reloaded)->index().size(), 90);
  EXPECT_EQ((*reloaded)->index().total_size(), 120);

  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(12, bits, &rng));
  const auto expect = engine->Search(queries, k);
  const auto got = (*reloaded)->Search(queries, k);
  for (int q = 0; q < queries.size(); ++q) {
    ExpectSameNeighbors(expect[static_cast<size_t>(q)],
                        got[static_cast<size_t>(q)]);
  }

  // Hydration always compacts, and enabling runtime auto-compaction on
  // top must not disturb ids, the restored epoch, or results.
  ServingSnapshotOptions compact_reload = reload_options;
  compact_reload.engine.compact_dead_fraction = 0.1;
  Result<std::unique_ptr<QueryEngine>> compacted =
      LoadQueryEngine(path, compact_reload);
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ((*compacted)->epoch(), engine->epoch());
  EXPECT_EQ((*compacted)->index().size(), 90);
  const auto compact_got = (*compacted)->Search(queries, k);
  for (int q = 0; q < queries.size(); ++q) {
    ExpectSameNeighbors(expect[static_cast<size_t>(q)],
                        compact_got[static_cast<size_t>(q)]);
  }
  std::remove(path.c_str());
}

TEST(MutableEngineTest, RestoreEpochClearsStaleCacheEntries) {
  // Regression: RestoreEpoch used to only store the epoch. Hydrating an
  // *older* snapshot's epoch into a live engine then made pre-restore
  // cache entries reachable again under a reused (epoch, query, k) key,
  // serving the pre-restore corpus. RestoreEpoch must drop the cache.
  Rng rng(907);
  const int bits = 64, k = 5;
  PackedCodes pq = PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
  auto engine = MakeQueryEngine(
      PackedCodes::FromSignMatrix(RandomSignCodes(60, bits, &rng)), {});

  // Cache an entry at epoch 0, then mutate: append the query itself so
  // post-update results are visibly different.
  const auto stale = engine->SearchOne(pq.code(0), k);
  engine->Append(PackedCodes::FromRawWords(
      1, bits,
      std::vector<uint64_t>(pq.code(0), pq.code(0) + pq.words_per_code())));
  ASSERT_EQ(engine->epoch(), 1u);

  // Rewind the epoch to 0 (hydrating an older snapshot in place). The
  // old (epoch 0) cache entry must NOT come back from the dead: the
  // index still contains the appended row, so the distance-0 hit leads.
  engine->RestoreEpoch(0);
  const auto fresh = engine->SearchOne(pq.code(0), k);
  ASSERT_FALSE(fresh.empty());
  EXPECT_EQ(fresh[0].distance, 0)
      << "stale pre-restore cache entry served after RestoreEpoch";
  EXPECT_EQ(fresh[0].id, 60);
  ASSERT_NE(stale[0].distance, 0)
      << "test needs the stale entry to be distinguishable";
}

TEST(SnapshotTest, LegacyV1ArtifactStillLoads) {
  Rng rng(805);
  const int bits = 64, k = 5;
  Matrix db = RandomSignCodes(70, bits, &rng);
  PackedCodes packed = PackedCodes::FromSignMatrix(db);
  const std::string path = ::testing::TempDir() + "/legacy_v1_codes.bin";
  ASSERT_TRUE(io::SavePackedCodes(packed, path).ok());

  Result<std::unique_ptr<QueryEngine>> engine = LoadQueryEngine(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ((*engine)->epoch(), 0u);
  EXPECT_EQ((*engine)->index().size(), 70);
  EXPECT_EQ((*engine)->index().total_size(), 70);

  LinearScanIndex truth(PackedCodes::FromSignMatrix(db));
  PackedCodes pq = PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
  ExpectSameNeighbors(truth.TopK(pq.code(0), k),
                      (*engine)->SearchOne(pq.code(0), k));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uhscm::serve
