#include "index/self_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "index/packed_codes.h"
#include "index/shard_index.h"
#include "linalg/matrix.h"
#include "test_util.h"

namespace uhscm::index {
namespace {

using uhscm::testing::RandomSignCodes;

std::vector<KernelTier> AvailableTiers() {
  std::vector<KernelTier> tiers;
  for (const KernelTier tier :
       {KernelTier::kScalar, KernelTier::kAvx2, KernelTier::kAvx512}) {
    if (KernelTierAvailable(tier)) tiers.push_back(tier);
  }
  return tiers;
}

/// A corpus with planted near-duplicates: `clusters` groups of
/// `copies` rows each, every copy within `flips` bit flips of its
/// cluster base, plus `extra` unrelated random rows. With random
/// bits >= 64 codes the background pair distance concentrates around
/// bits/2, far above any small radius, so the planted pairs are exactly
/// the expected join output.
PackedCodes PlantedDuplicates(int clusters, int copies, int extra, int bits,
                              int flips, Rng* rng) {
  PackedCodes codes =
      PackedCodes::FromSignMatrix(RandomSignCodes(clusters, bits, rng));
  PackedCodes result;
  for (int c = 0; c < clusters; ++c) {
    for (int dup = 0; dup < copies; ++dup) {
      std::vector<uint64_t> words(codes.code(c),
                                  codes.code(c) + codes.words_per_code());
      const int nflips =
          dup == 0 ? 0
                   : 1 + static_cast<int>(rng->UniformInt(
                             static_cast<uint64_t>(flips)));
      for (int f = 0; f < nflips; ++f) {
        const int bit =
            static_cast<int>(rng->UniformInt(static_cast<uint64_t>(bits)));
        words[static_cast<size_t>(bit / 64)] ^= 1ULL << (bit % 64);
      }
      result.Append(PackedCodes::FromRawWords(1, bits, std::move(words)));
    }
  }
  if (extra > 0) {
    result.Append(PackedCodes::FromSignMatrix(RandomSignCodes(extra, bits, rng)));
  }
  return result;
}

void ExpectTopKIdentical(const std::vector<std::vector<Neighbor>>& got,
                         const std::vector<std::vector<Neighbor>>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), want[i].size()) << label << " row " << i;
    for (size_t r = 0; r < got[i].size(); ++r) {
      EXPECT_EQ(got[i][r].id, want[i][r].id)
          << label << " row " << i << " rank " << r;
      EXPECT_EQ(got[i][r].distance, want[i][r].distance)
          << label << " row " << i << " rank " << r;
    }
  }
}

// --------------------------------------------------------- byte identity

TEST(SelfJoinTest, TopKJoinMatchesReferenceAcrossTiersTilesThreads) {
  Rng rng(41);
  PackedCodes codes =
      PackedCodes::FromSignMatrix(RandomSignCodes(301, 96, &rng));
  const auto want = ReferenceTopKJoin(codes, 7);
  for (const KernelTier tier : AvailableTiers()) {
    for (const int tile : {0, 17, 64}) {
      for (const int threads : {1, 4}) {
        for (const bool fused : {true, false}) {
          SelfJoinOptions options;
          options.force_tier = true;
          options.tier = tier;
          options.tile = tile;
          options.threads = threads;
          options.fused_min = fused;
          SelfJoinStats stats;
          const auto got = TopKJoin(codes, 7, options, &stats);
          const std::string label = std::string(KernelTierName(tier)) +
                                    " tile=" + std::to_string(tile) +
                                    " threads=" + std::to_string(threads) +
                                    " fused=" + std::to_string(fused);
          ExpectTopKIdentical(got, want, label);
          // Every live pair is disposed exactly once: pruned at a
          // tile/chunk minimum or scored at the per-pair branch.
          EXPECT_EQ(stats.pairs_pruned + stats.pairs_scored,
                    stats.pairs_total)
              << label;
          EXPECT_GT(stats.tiles, 0) << label;
        }
      }
    }
  }
}

TEST(SelfJoinTest, TopKJoinTieHeavyCodesMatchReference) {
  // 16-bit codes over 220 rows force massive distance ties, so any
  // deviation from the (distance, id) displacement rule — e.g. the
  // serving scan's strict-< rule, which is only safe for in-order
  // arrival — shows up immediately.
  Rng rng(43);
  PackedCodes codes =
      PackedCodes::FromSignMatrix(RandomSignCodes(220, 16, &rng));
  const auto want = ReferenceTopKJoin(codes, 9);
  for (const int tile : {0, 13}) {
    for (const int threads : {1, 4}) {
      SelfJoinOptions options;
      options.tile = tile;
      options.threads = threads;
      ExpectTopKIdentical(TopKJoin(codes, 9, options), want,
                          "ties tile=" + std::to_string(tile) +
                              " threads=" + std::to_string(threads));
    }
  }
}

TEST(SelfJoinTest, TopKJoinHonorsTombstones) {
  Rng rng(47);
  PackedCodes codes =
      PackedCodes::FromSignMatrix(RandomSignCodes(240, 64, &rng));
  TombstoneSet dead;
  dead.Resize(codes.size());
  for (int i = 0; i < codes.size(); i += 3) dead.Set(i);
  const auto want = ReferenceTopKJoin(codes, 5, &dead);
  for (const KernelTier tier : AvailableTiers()) {
    SelfJoinOptions options;
    options.force_tier = true;
    options.tier = tier;
    options.tile = 50;
    options.tombstones = &dead;
    const auto got = TopKJoin(codes, 5, options);
    ExpectTopKIdentical(got, want, KernelTierName(tier));
    for (int i = 0; i < codes.size(); ++i) {
      if (dead.Test(i)) {
        EXPECT_TRUE(got[static_cast<size_t>(i)].empty()) << i;
      } else {
        // No tombstoned id may surface as a neighbor.
        for (const Neighbor& nb : got[static_cast<size_t>(i)]) {
          EXPECT_FALSE(dead.Test(nb.id)) << "row " << i;
        }
      }
    }
  }
}

TEST(SelfJoinTest, TopKJoinEdgeCases) {
  Rng rng(53);
  PackedCodes codes =
      PackedCodes::FromSignMatrix(RandomSignCodes(9, 64, &rng));

  // k larger than live-1 clamps: every row lists all other rows.
  const auto all = TopKJoin(codes, 100);
  ExpectTopKIdentical(all, ReferenceTopKJoin(codes, 100), "k>live-1");
  for (const auto& row : all) EXPECT_EQ(row.size(), 8u);

  EXPECT_TRUE(TopKJoin(codes, 0).empty() ||
              TopKJoin(codes, 0)[0].empty());  // k=0: all rows empty
  EXPECT_TRUE(TopKJoin(PackedCodes(), 3).empty());  // empty corpus

  // Single live row: nothing to pair with.
  TombstoneSet all_but_one;
  all_but_one.Resize(codes.size());
  for (int i = 1; i < codes.size(); ++i) all_but_one.Set(i);
  SelfJoinOptions options;
  options.tombstones = &all_but_one;
  for (const auto& row : TopKJoin(codes, 3, options)) {
    EXPECT_TRUE(row.empty());
  }

  // All rows dead.
  TombstoneSet everyone;
  everyone.Resize(codes.size());
  for (int i = 0; i < codes.size(); ++i) everyone.Set(i);
  options.tombstones = &everyone;
  SelfJoinStats stats;
  for (const auto& row : TopKJoin(codes, 3, options, &stats)) {
    EXPECT_TRUE(row.empty());
  }
  EXPECT_EQ(stats.pairs_total, 0);
}

TEST(SelfJoinTest, TopKJoinDeterministicAcrossRuns) {
  Rng rng(59);
  PackedCodes codes =
      PackedCodes::FromSignMatrix(RandomSignCodes(400, 32, &rng));
  SelfJoinOptions options;
  options.threads = 4;
  options.tile = 37;
  const auto first = TopKJoin(codes, 6, options);
  for (int run = 0; run < 3; ++run) {
    ExpectTopKIdentical(TopKJoin(codes, 6, options), first,
                        "run " + std::to_string(run));
  }
}

TEST(SelfJoinTest, RadiusJoinMatchesReferenceAcrossTiersAndRadii) {
  Rng rng(61);
  PackedCodes codes = PlantedDuplicates(12, 5, 140, 128, 6, &rng);
  for (const int radius : {0, 3, 8, 128}) {
    const auto want = ReferenceRadiusJoin(codes, radius);
    for (const KernelTier tier : AvailableTiers()) {
      for (const bool fused : {true, false}) {
        SelfJoinOptions options;
        options.force_tier = true;
        options.tier = tier;
        options.fused_min = fused;
        options.tile = 45;
        options.threads = 4;
        SelfJoinStats stats;
        const auto got = RadiusJoin(codes, radius, options, &stats);
        const std::string label = std::string(KernelTierName(tier)) +
                                  " radius=" + std::to_string(radius) +
                                  " fused=" + std::to_string(fused);
        ASSERT_EQ(got.size(), want.size()) << label;
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_TRUE(got[i] == want[i])
              << label << " pair " << i << ": {" << got[i].a << ","
              << got[i].b << "," << got[i].distance << "} vs {" << want[i].a
              << "," << want[i].b << "," << want[i].distance << "}";
        }
        EXPECT_EQ(stats.pairs_pruned + stats.pairs_scored, stats.pairs_total)
            << label;
        if (radius == 0) {
          // Sparse join: almost everything must die at a min-skip.
          EXPECT_GT(stats.pairs_pruned, stats.pairs_total / 2) << label;
        }
      }
    }
  }
}

TEST(SelfJoinTest, RadiusJoinHonorsTombstones) {
  Rng rng(67);
  PackedCodes codes = PlantedDuplicates(8, 4, 60, 64, 3, &rng);
  TombstoneSet dead;
  dead.Resize(codes.size());
  for (int i = 0; i < codes.size(); i += 4) dead.Set(i);
  const auto want = ReferenceRadiusJoin(codes, 5, &dead);
  SelfJoinOptions options;
  options.tombstones = &dead;
  options.tile = 19;
  const auto got = RadiusJoin(codes, 5, options);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i] == want[i]) << "pair " << i;
    EXPECT_FALSE(dead.Test(got[i].a)) << i;
    EXPECT_FALSE(dead.Test(got[i].b)) << i;
  }
}

TEST(SelfJoinTest, RadiusJoinNegativeRadiusIsEmpty) {
  Rng rng(71);
  PackedCodes codes =
      PackedCodes::FromSignMatrix(RandomSignCodes(50, 64, &rng));
  EXPECT_TRUE(RadiusJoin(codes, -1).empty());
}

// --------------------------------------------------------------- reducers

TEST(SelfJoinTest, ReducePairsRadiusModeTakesTransitiveClosure) {
  // 0-1, 1-2 chain plus isolated 5-6 pair: radius linking closes the
  // chain into {0,1,2} even though 0-2 was never a pair.
  const std::vector<JoinPair> pairs = {{0, 1, 2}, {1, 2, 3}, {5, 6, 1}};
  const auto result = ReducePairsToGroups(pairs, DedupLink::kRadius);
  ASSERT_EQ(result.groups.size(), 2u);
  EXPECT_EQ(result.groups[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(result.groups[1], (std::vector<int>{5, 6}));
  EXPECT_EQ(result.rows_clustered, 5);
}

TEST(SelfJoinTest, ReducePairsReciprocalBestKeepsOnlyMutualMatches) {
  // 1's best is 0 (d=2); 0's best is 1 — reciprocal. 2's best is 1
  // (d=3) but 1's best is 0, so 1-2 is one-sided and must not link.
  // 5-6 (d=1) is mutual.
  const std::vector<JoinPair> pairs = {{0, 1, 2}, {1, 2, 3}, {5, 6, 1}};
  const auto result = ReducePairsToGroups(pairs, DedupLink::kReciprocalBest);
  ASSERT_EQ(result.reciprocal_pairs.size(), 2u);
  EXPECT_TRUE(result.reciprocal_pairs[0] == (JoinPair{0, 1, 2}));
  EXPECT_TRUE(result.reciprocal_pairs[1] == (JoinPair{5, 6, 1}));
  ASSERT_EQ(result.groups.size(), 2u);
  EXPECT_EQ(result.groups[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(result.groups[1], (std::vector<int>{5, 6}));
}

TEST(SelfJoinTest, ReducePairsBreaksBestMatchTiesByAscendingId) {
  // Row 1 is at distance 2 from both 0 and 3: the canonical
  // (distance, id) order makes 0 its best, so only 0-1 can be
  // reciprocal.
  const std::vector<JoinPair> pairs = {{0, 1, 2}, {1, 3, 2}};
  const auto result = ReducePairsToGroups(pairs, DedupLink::kReciprocalBest);
  ASSERT_EQ(result.reciprocal_pairs.size(), 1u);
  EXPECT_TRUE(result.reciprocal_pairs[0] == (JoinPair{0, 1, 2}));
}

TEST(SelfJoinTest, DedupGroupsMatchesReferenceReduction) {
  Rng rng(73);
  PackedCodes codes = PlantedDuplicates(10, 4, 80, 128, 5, &rng);
  for (const DedupLink link :
       {DedupLink::kRadius, DedupLink::kReciprocalBest}) {
    DedupOptions dedup;
    dedup.radius = 6;
    dedup.link = link;
    SelfJoinOptions options;
    options.threads = 4;
    const auto engine = DedupGroups(codes, dedup, options);
    const auto reference =
        ReducePairsToGroups(ReferenceRadiusJoin(codes, 6), link);
    ASSERT_EQ(engine.groups.size(), reference.groups.size());
    for (size_t g = 0; g < engine.groups.size(); ++g) {
      EXPECT_EQ(engine.groups[g], reference.groups[g]) << "group " << g;
    }
    ASSERT_EQ(engine.reciprocal_pairs.size(),
              reference.reciprocal_pairs.size());
    for (size_t p = 0; p < engine.reciprocal_pairs.size(); ++p) {
      EXPECT_TRUE(engine.reciprocal_pairs[p] == reference.reciprocal_pairs[p])
          << "pair " << p;
    }
    EXPECT_EQ(engine.rows_clustered, reference.rows_clustered);
  }
}

TEST(SelfJoinTest, DedupGroupsFindsPlantedClusters) {
  // With zero extra rows and tight perturbation, radius linking must
  // recover exactly the planted clusters of 4 consecutive rows.
  Rng rng(79);
  PackedCodes codes = PlantedDuplicates(6, 4, 0, 128, 2, &rng);
  DedupOptions dedup;
  dedup.radius = 4;  // two perturbed copies are within 2+2 flips
  const auto result = DedupGroups(codes, dedup);
  ASSERT_EQ(result.groups.size(), 6u);
  for (int c = 0; c < 6; ++c) {
    const std::vector<int> want = {4 * c, 4 * c + 1, 4 * c + 2, 4 * c + 3};
    EXPECT_EQ(result.groups[static_cast<size_t>(c)], want) << "cluster " << c;
  }
  EXPECT_EQ(result.rows_clustered, 24);
}

}  // namespace
}  // namespace uhscm::index
