// Async request pipeline: admission queue, adaptive batcher, router,
// replica set, and the drain/shutdown protocol. The load-bearing
// invariants:
//   * every future handed out resolves — with results or a shutdown
//     Status, never silently dropped;
//   * pipeline results are byte-identical to synchronous
//     QueryEngine::Search on the same corpus at the same epoch, under
//     any replica count, routing policy, and update interleaving;
//   * flush reasons follow the B-or-T contract (B-exact flushes count
//     as by-size, stragglers flush by timeout).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "index/packed_codes.h"
#include "serve/batcher.h"
#include "serve/replica_set.h"
#include "serve/request_queue.h"
#include "serve/router.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"
#include "test_util.h"

namespace uhscm::serve {
namespace {

using index::Neighbor;
using index::PackedCodes;
using uhscm::testing::RandomSignCodes;

PackedCodes RandomCorpus(int n, int bits, uint64_t seed) {
  Rng rng(seed);
  return PackedCodes::FromSignMatrix(RandomSignCodes(n, bits, &rng));
}

void ExpectSameNeighbors(const std::vector<Neighbor>& expect,
                         const std::vector<Neighbor>& got) {
  ASSERT_EQ(expect.size(), got.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(expect[i].id, got[i].id) << "rank " << i;
    EXPECT_EQ(expect[i].distance, got[i].distance) << "rank " << i;
  }
}

// ---------------------------------------------------------------------
// RequestQueue

TEST(RequestQueueTest, SubmitCollectPreservesOrderAndDepth) {
  RequestQueue queue(64);
  PackedCodes queries = RandomCorpus(5, 64, 11);
  std::vector<std::future<SearchResponse>> futures;
  for (int q = 0; q < queries.size(); ++q) {
    futures.push_back(queue.Submit(queries.code(q), 1, 7));
  }
  EXPECT_EQ(queue.depth(), 5u);

  std::vector<PendingRequest> batch;
  ASSERT_TRUE(
      queue.CollectBatch(5, std::chrono::microseconds(1000), &batch));
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_EQ(queue.depth(), 0u);
  for (int q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(batch[static_cast<size_t>(q)].words[0], *queries.code(q));
    EXPECT_EQ(batch[static_cast<size_t>(q)].k, 7);
  }
}

TEST(RequestQueueTest, TrySubmitReportsFullQueue) {
  RequestQueue queue(2);
  const uint64_t word = 42;
  std::future<SearchResponse> f1, f2, f3;
  EXPECT_TRUE(queue.TrySubmit(&word, 1, 1, &f1));
  EXPECT_TRUE(queue.TrySubmit(&word, 1, 1, &f2));
  EXPECT_FALSE(queue.TrySubmit(&word, 1, 1, &f3)) << "capacity 2 exceeded";
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(RequestQueueTest, ShutdownWithNonEmptyQueueFailsEveryPending) {
  // The deterministic half of the drain protocol: requests still queued
  // at shutdown complete with the shutdown status — none dropped.
  RequestQueue queue(16);
  const uint64_t word = 7;
  std::vector<std::future<SearchResponse>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(queue.Submit(&word, 1, 3));
  queue.Close();
  EXPECT_EQ(queue.FailPending(Status::Unavailable("drained")), 5);
  for (std::future<SearchResponse>& future : futures) {
    const SearchResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(response.neighbors.empty());
  }
  // Post-close submissions are rejected immediately, already resolved.
  std::future<SearchResponse> late = queue.Submit(&word, 1, 3);
  EXPECT_EQ(late.get().status.code(), StatusCode::kUnavailable);
  // Collector sees a closed, drained queue and exits.
  std::vector<PendingRequest> batch;
  EXPECT_FALSE(queue.CollectBatch(4, std::chrono::microseconds(10), &batch));
}

// ---------------------------------------------------------------------
// Batcher flush contract

struct Pipeline {
  explicit Pipeline(const PackedCodes& corpus, int replicas,
                    const BatcherOptions& batcher_options,
                    RoutePolicy policy = RoutePolicy::kLeastLoaded) {
    ReplicaSetOptions options;
    options.replicas = replicas;
    replica_set = std::make_unique<ReplicaSet>(corpus, options);
    router = std::make_unique<Router>(replica_set.get(), policy);
    batcher = std::make_unique<Batcher>(router.get(), batcher_options);
  }
  std::unique_ptr<ReplicaSet> replica_set;
  std::unique_ptr<Router> router;
  std::unique_ptr<Batcher> batcher;
};

TEST(BatcherTest, BExactFlushCountsAsBySize) {
  const PackedCodes corpus = RandomCorpus(200, 64, 21);
  BatcherOptions options;
  options.max_batch = 8;
  options.timeout_us = 60L * 1000 * 1000;  // T can't fire in this test
  Pipeline pipeline(corpus, 1, options);

  std::vector<std::future<SearchResponse>> futures;
  for (int q = 0; q < 8; ++q) {
    futures.push_back(pipeline.batcher->Submit(corpus, q, 5));
  }
  for (std::future<SearchResponse>& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  const ServeStatsSnapshot stats = pipeline.batcher->stats();
  EXPECT_EQ(stats.queries, 8);
  EXPECT_EQ(stats.batches_flushed_by_size, 1)
      << "exactly B requests must flush as one by-size batch";
  EXPECT_EQ(stats.batches_flushed_by_timeout, 0);
  EXPECT_EQ(stats.batch_size_hist[static_cast<size_t>(BatchSizeBucket(8))],
            1);
  EXPECT_EQ(stats.queue_depth, 0);
}

TEST(BatcherTest, SingleStragglerFlushesByTimeout) {
  const PackedCodes corpus = RandomCorpus(200, 64, 22);
  BatcherOptions options;
  options.max_batch = 64;  // B can't fire with one request
  options.timeout_us = 2000;
  Pipeline pipeline(corpus, 1, options);

  std::future<SearchResponse> future = pipeline.batcher->Submit(corpus, 0, 5);
  const SearchResponse response = future.get();  // resolves despite B >> 1
  ASSERT_TRUE(response.status.ok());
  ExpectSameNeighbors(
      pipeline.replica_set->replica(0)->SearchOne(corpus.code(0), 5),
      response.neighbors);

  const ServeStatsSnapshot stats = pipeline.batcher->stats();
  EXPECT_EQ(stats.batches_flushed_by_timeout, 1);
  EXPECT_EQ(stats.batches_flushed_by_size, 0);
  EXPECT_EQ(stats.batch_size_hist[static_cast<size_t>(BatchSizeBucket(1))],
            1);
}

TEST(BatcherTest, MalformedWordCountRejectedUpFront) {
  const PackedCodes corpus = RandomCorpus(50, 128, 23);  // 2 words/code
  Pipeline pipeline(corpus, 1, {});
  const uint64_t one_word = 5;
  std::future<SearchResponse> future =
      pipeline.batcher->Submit(&one_word, 1, 3);
  EXPECT_EQ(future.get().status.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Byte-identity with the synchronous path

class PipelineIdentitySweep
    : public ::testing::TestWithParam<std::tuple<int, RoutePolicy>> {};

TEST_P(PipelineIdentitySweep, MatchesSynchronousSearch) {
  const auto [replicas, policy] = GetParam();
  const int n = 400, bits = 128;
  const PackedCodes corpus = RandomCorpus(n, bits, 31);
  const PackedCodes queries = RandomCorpus(60, bits, 32);

  // Synchronous reference engine over the same corpus.
  auto reference = MakeQueryEngine(
      PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                corpus.words()),
      {});

  BatcherOptions options;
  options.max_batch = 16;
  options.timeout_us = 300;
  Pipeline pipeline(corpus, replicas, options, policy);

  // Mixed k across the stream: exercises the per-k grouping inside one
  // flush.
  std::vector<std::future<SearchResponse>> futures;
  std::vector<int> ks;
  for (int q = 0; q < queries.size(); ++q) {
    const int k = 1 + (q % 3) * 7;  // 1, 8, 15, 1, 8, ...
    ks.push_back(k);
    futures.push_back(pipeline.batcher->Submit(queries, q, k));
  }
  for (int q = 0; q < queries.size(); ++q) {
    SearchResponse response = futures[static_cast<size_t>(q)].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ExpectSameNeighbors(
        reference->SearchOne(queries.code(q), ks[static_cast<size_t>(q)]),
        response.neighbors);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineIdentitySweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(RoutePolicy::kRoundRobin,
                                         RoutePolicy::kLeastLoaded)));

TEST(BatcherTest, ConcurrentSubmitDuringFlushAllResolveCorrectly) {
  const int n = 500, bits = 64, k = 10;
  const PackedCodes corpus = RandomCorpus(n, bits, 41);
  const PackedCodes queries = RandomCorpus(48, bits, 42);
  auto reference = MakeQueryEngine(
      PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                corpus.words()),
      {});
  std::vector<std::vector<Neighbor>> expect;
  for (int q = 0; q < queries.size(); ++q) {
    expect.push_back(reference->SearchOne(queries.code(q), k));
  }

  BatcherOptions options;
  options.max_batch = 8;  // many flushes while submissions keep landing
  options.timeout_us = 100;
  Pipeline pipeline(corpus, 2, options);

  constexpr int kThreads = 8, kRounds = 4;
  std::vector<std::thread> submitters;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<std::pair<int, std::future<SearchResponse>>> futures;
        for (int q = t; q < queries.size(); q += kThreads) {
          futures.emplace_back(q,
                               pipeline.batcher->Submit(queries, q, k));
        }
        for (auto& [q, future] : futures) {
          SearchResponse response = future.get();
          if (!response.status.ok()) {
            mismatches.fetch_add(1);
            continue;
          }
          const std::vector<Neighbor>& want =
              expect[static_cast<size_t>(q)];
          if (response.neighbors.size() != want.size()) {
            mismatches.fetch_add(1);
            continue;
          }
          for (size_t i = 0; i < want.size(); ++i) {
            if (response.neighbors[i].id != want[i].id ||
                response.neighbors[i].distance != want[i].distance) {
              mismatches.fetch_add(1);
              break;
            }
          }
        }
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  EXPECT_EQ(mismatches.load(), 0);
  const ServeStatsSnapshot stats = pipeline.batcher->stats();
  EXPECT_EQ(stats.queries, kThreads * kRounds * (48 / kThreads));
}

// ---------------------------------------------------------------------
// Drain / shutdown

TEST(BatcherTest, DrainResolvesEveryFutureAndRejectsNewWork) {
  const PackedCodes corpus = RandomCorpus(300, 64, 51);
  BatcherOptions options;
  options.max_batch = 1 << 20;  // size flush unreachable
  options.timeout_us = 60L * 1000 * 1000;  // timeout flush unreachable
  Pipeline pipeline(corpus, 2, options);

  std::vector<std::future<SearchResponse>> futures;
  for (int q = 0; q < 32; ++q) {
    futures.push_back(pipeline.batcher->Submit(corpus, q, 5));
  }
  pipeline.batcher->Drain();

  // Every future resolves: either served (the flush thread had already
  // collected it into its in-hand batch) or failed with the shutdown
  // status — never dropped, never pending.
  int served = 0, rejected = 0;
  for (int q = 0; q < 32; ++q) {
    ASSERT_EQ(futures[static_cast<size_t>(q)].wait_for(
                  std::chrono::seconds(30)),
              std::future_status::ready)
        << "drain left future " << q << " unresolved";
    SearchResponse response = futures[static_cast<size_t>(q)].get();
    if (response.status.ok()) {
      ++served;
      ExpectSameNeighbors(
          pipeline.replica_set->replica(0)->SearchOne(corpus.code(q), 5),
          response.neighbors);
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  EXPECT_EQ(served + rejected, 32);

  // New work after the drain is rejected, not queued forever.
  std::future<SearchResponse> late = pipeline.batcher->Submit(corpus, 0, 5);
  EXPECT_EQ(late.get().status.code(), StatusCode::kUnavailable);
  const ServeStatsSnapshot stats = pipeline.batcher->stats();
  EXPECT_EQ(stats.rejected_requests, rejected + 1);
  pipeline.batcher->Drain();  // idempotent
}

TEST(QueryEngineTest, DrainFlushesInFlightBatchesThenServesInline) {
  const PackedCodes corpus = RandomCorpus(250, 64, 52);
  auto engine = MakeQueryEngine(
      PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                corpus.words()),
      {});
  const std::vector<Neighbor> expect = engine->SearchOne(corpus.code(0), 4);

  std::vector<std::future<std::vector<std::vector<Neighbor>>>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(engine->SubmitBatch(
        PackedCodes::FromRawWords(1, corpus.bits(),
                                  std::vector<uint64_t>(
                                      corpus.code(0), corpus.code(0) + 1)),
        4));
  }
  engine->Drain();
  for (auto& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "Drain must complete already-submitted batches";
    ExpectSameNeighbors(expect, future.get()[0]);
  }
  // Post-drain submissions complete inline — still never dropped.
  auto late = engine->SubmitBatch(
      PackedCodes::FromRawWords(
          1, corpus.bits(),
          std::vector<uint64_t>(corpus.code(0), corpus.code(0) + 1)),
      4);
  ExpectSameNeighbors(expect, late.get()[0]);
  // And the synchronous path works too (pool drained -> inline loops).
  ExpectSameNeighbors(expect, engine->SearchOne(corpus.code(0), 4));
}

TEST(ThreadPoolTest, DrainKeepsParallelForCorrect) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(64);
  pool.ParallelFor(64, [&](int i) { counts[static_cast<size_t>(i)]++; });
  pool.Drain();
  pool.Drain();  // idempotent
  pool.ParallelFor(64, [&](int i) { counts[static_cast<size_t>(i)]++; });
  for (const std::atomic<int>& c : counts) EXPECT_EQ(c.load(), 2);
}

// ---------------------------------------------------------------------
// Router

TEST(RouterTest, RoundRobinCyclesReplicas) {
  const PackedCodes corpus = RandomCorpus(90, 64, 61);
  ReplicaSetOptions options;
  options.replicas = 3;
  ReplicaSet replicas(corpus, options);
  Router router(&replicas, RoutePolicy::kRoundRobin);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(router.Route(), i % 3);
  }
  for (int r = 0; r < 3; ++r) EXPECT_EQ(router.routed(r), 3);
}

TEST(RouterTest, LeastLoadedAvoidsBusyReplica) {
  const PackedCodes corpus = RandomCorpus(120, 64, 62);
  ReplicaSetOptions options;
  options.replicas = 2;
  ReplicaSet replicas(corpus, options);
  Router router(&replicas, RoutePolicy::kLeastLoaded);
  EXPECT_EQ(router.Route(), 0) << "all idle: ties break to the lowest index";

  // Hold a batch in flight on replica 0 by blocking in its callback
  // (inflight decrements only after the callback returns).
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::promise<void> entered;
  replicas.replica(0)->SubmitBatch(
      PackedCodes::FromRawWords(
          1, corpus.bits(),
          std::vector<uint64_t>(corpus.code(0), corpus.code(0) + 1)),
      3, [&entered, release_future](Status,
                                    std::vector<std::vector<Neighbor>>) {
        entered.set_value();
        release_future.wait();
      });
  entered.get_future().wait();
  EXPECT_GT(replicas.Inflight(0), 0);
  EXPECT_EQ(router.Route(), 1) << "replica 0 is loaded";
  release.set_value();
  replicas.replica(0)->Drain();
  EXPECT_EQ(replicas.Inflight(0), 0);
}

TEST(RouterTest, KilledReplicaIsSkippedByBothPolicies) {
  // A killed engine rejects instantly, so its in-flight count is
  // permanently zero — the most attractive least-loaded target unless
  // the router checks liveness.
  const PackedCodes corpus = RandomCorpus(100, 64, 63);
  ReplicaSetOptions options;
  options.replicas = 3;
  ReplicaSet replicas(corpus, options);
  replicas.replica(1)->Kill();

  Router rr(&replicas, RoutePolicy::kRoundRobin);
  for (int i = 0; i < 12; ++i) EXPECT_NE(rr.Route(), 1);
  Router least(&replicas, RoutePolicy::kLeastLoaded);
  for (int i = 0; i < 12; ++i) EXPECT_NE(least.Route(), 1);

  // Every replica dead: Route() reports it (-1 / nullptr) so the caller
  // fails the batch immediately instead of submitting to a corpse.
  replicas.replica(0)->Kill();
  replicas.replica(2)->Kill();
  EXPECT_EQ(least.Route(), -1);
  EXPECT_EQ(least.Pick(), nullptr);
  EXPECT_EQ(rr.Route(), -1);
  EXPECT_EQ(rr.Pick(), nullptr);
}

TEST(RouterTest, ParsePolicyNames) {
  RoutePolicy policy;
  EXPECT_TRUE(ParseRoutePolicy("rr", &policy));
  EXPECT_EQ(policy, RoutePolicy::kRoundRobin);
  EXPECT_TRUE(ParseRoutePolicy("least-loaded", &policy));
  EXPECT_EQ(policy, RoutePolicy::kLeastLoaded);
  EXPECT_FALSE(ParseRoutePolicy("random", &policy));
}

// ---------------------------------------------------------------------
// Replica coherence under updates

TEST(ReplicaSetTest, FanOutKeepsReplicasCoherent) {
  const PackedCodes corpus = RandomCorpus(100, 64, 71);
  const PackedCodes extra = RandomCorpus(30, 64, 72);
  ReplicaSetOptions options;
  options.replicas = 3;
  ReplicaSet replicas(corpus, options);

  const std::vector<int> ids = replicas.Append(extra);
  ASSERT_EQ(ids.size(), 30u);
  EXPECT_EQ(ids.front(), 100);
  EXPECT_EQ(replicas.RemoveIds({0, 5, 100, 129}), 4);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(replicas.replica(r)->epoch(), 2u) << "replica " << r;
    EXPECT_EQ(replicas.replica(r)->index().size(), 126) << "replica " << r;
  }
  const ServeStatsSnapshot stats = replicas.AggregatedStats();
  EXPECT_EQ(stats.replicas, 3);
  EXPECT_EQ(stats.epoch, 2u);
  // Fanned updates appear once per replica in the summed counters.
  EXPECT_EQ(stats.appends, 3 * 30);
  EXPECT_EQ(stats.removes, 3 * 4);
}

TEST(PipelineIdentityTest, RandomizedInterleavedUpdatesStayByteIdentical) {
  // Rounds of (pipeline traffic, fan-out append/remove) against a
  // synchronous reference engine receiving the identical update
  // sequence: after every round, pipeline answers must be byte-identical
  // to the reference — same corpus, same epoch, same (distance, id)
  // lists — regardless of which replica served which query.
  const int bits = 64, k = 8;
  Rng rng(81);
  const PackedCodes corpus = RandomCorpus(300, bits, 82);
  const PackedCodes queries = RandomCorpus(24, bits, 83);

  auto reference = MakeQueryEngine(
      PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                corpus.words()),
      {});
  BatcherOptions batcher_options;
  batcher_options.max_batch = 8;
  batcher_options.timeout_us = 200;
  Pipeline pipeline(corpus, 2, batcher_options);

  int total_rows = corpus.size();
  for (int round = 0; round < 6; ++round) {
    // Mutate: append a small random batch and tombstone a few ids, the
    // same sequence on both sides.
    const PackedCodes extra =
        RandomCorpus(5 + static_cast<int>(rng.UniformInt(8)), bits,
                     900 + static_cast<uint64_t>(round));
    const std::vector<int> pipeline_ids = pipeline.replica_set->Append(extra);
    const std::vector<int> reference_ids = reference->Append(extra);
    ASSERT_EQ(pipeline_ids, reference_ids);
    total_rows += extra.size();
    std::vector<int> doomed;
    for (int i = 0; i < 3; ++i) {
      doomed.push_back(
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(total_rows))));
    }
    ASSERT_EQ(pipeline.replica_set->RemoveIds(doomed),
              reference->RemoveIds(doomed));
    ASSERT_EQ(pipeline.replica_set->epoch(), reference->epoch());

    // Query through the pipeline; verify against the reference.
    std::vector<std::future<SearchResponse>> futures;
    for (int q = 0; q < queries.size(); ++q) {
      futures.push_back(pipeline.batcher->Submit(queries, q, k));
    }
    for (int q = 0; q < queries.size(); ++q) {
      SearchResponse response = futures[static_cast<size_t>(q)].get();
      ASSERT_TRUE(response.status.ok());
      ExpectSameNeighbors(reference->SearchOne(queries.code(q), k),
                          response.neighbors);
    }
  }
}

TEST(PipelineIdentityTest, CompactionUnderPipelineTrafficIsInvisible) {
  // Rounds of (pipeline traffic, fan-out append/remove/compact) against
  // a synchronous reference engine that receives the same appends and
  // removes but NEVER compacts: pipeline answers must stay byte-identical
  // — compaction must be invisible to every query, including the global
  // ids it returns.
  const int bits = 64, k = 8;
  Rng rng(91);
  const PackedCodes corpus = RandomCorpus(250, bits, 92);
  const PackedCodes queries = RandomCorpus(20, bits, 93);

  auto reference = MakeQueryEngine(
      PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                corpus.words()),
      {});
  BatcherOptions batcher_options;
  batcher_options.max_batch = 8;
  batcher_options.timeout_us = 200;
  Pipeline pipeline(corpus, 2, batcher_options);

  int total_rows = corpus.size();
  for (int round = 0; round < 5; ++round) {
    const PackedCodes extra =
        RandomCorpus(4 + static_cast<int>(rng.UniformInt(6)), bits,
                     700 + static_cast<uint64_t>(round));
    ASSERT_EQ(pipeline.replica_set->Append(extra), reference->Append(extra));
    total_rows += extra.size();
    std::vector<int> doomed;
    for (int i = 0; i < 8; ++i) {
      doomed.push_back(
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(total_rows))));
    }
    const int newly_dead = pipeline.replica_set->RemoveIds(doomed);
    ASSERT_EQ(newly_dead, reference->RemoveIds(doomed));

    // Compact all replicas; the fan-out asserts identical reclaim
    // counts and epochs internally. Every previous round left the
    // corpus fully compacted, so this round reclaims exactly the rows
    // that just died.
    const CompactionStats stats = pipeline.replica_set->Compact();
    EXPECT_EQ(stats.rows_reclaimed, newly_dead) << "round " << round;

    std::vector<std::future<SearchResponse>> futures;
    for (int q = 0; q < queries.size(); ++q) {
      futures.push_back(pipeline.batcher->Submit(queries, q, k));
    }
    for (int q = 0; q < queries.size(); ++q) {
      SearchResponse response = futures[static_cast<size_t>(q)].get();
      ASSERT_TRUE(response.status.ok());
      ExpectSameNeighbors(reference->SearchOne(queries.code(q), k),
                          response.neighbors);
    }
  }
  const ServeStatsSnapshot stats = pipeline.replica_set->AggregatedStats();
  EXPECT_GT(stats.compactions, 0);
  EXPECT_GT(stats.compact_rows_reclaimed, 0);
}

TEST(CompactionConcurrencyTest, SearchesDuringCompactionStayExact) {
  // Hammer one engine with search threads while a writer loops
  // remove-then-compact: every search must return internally consistent
  // results (ascending (distance, id), live rows only, correct k), and
  // the final state must equal a never-compacted reference.
  const int bits = 64, k = 10;
  const PackedCodes corpus = RandomCorpus(600, bits, 95);
  const PackedCodes queries = RandomCorpus(16, bits, 96);
  ServingSnapshotOptions options;
  options.index.num_shards = 4;
  options.engine.cache_capacity = 0;  // every search hits the shards
  auto engine = MakeQueryEngine(
      PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                corpus.words()),
      options);
  auto reference = MakeQueryEngine(
      PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                corpus.words()),
      {});

  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> searchers;
  for (int t = 0; t < 4; ++t) {
    searchers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        for (int q = 0; q < queries.size(); ++q) {
          const auto result = engine->SearchOne(queries.code(q), k);
          for (size_t i = 1; i < result.size(); ++i) {
            if (result[i].distance < result[i - 1].distance ||
                (result[i].distance == result[i - 1].distance &&
                 result[i].id <= result[i - 1].id)) {
              violations.fetch_add(1);
            }
          }
        }
      }
    });
  }

  Rng rng(97);
  for (int wave = 0; wave < 10; ++wave) {
    std::vector<int> doomed;
    for (int i = 0; i < 12; ++i) {
      doomed.push_back(static_cast<int>(rng.UniformInt(600)));
    }
    ASSERT_EQ(engine->RemoveIds(doomed), reference->RemoveIds(doomed));
    engine->Compact();  // reference never compacts
  }
  done.store(true, std::memory_order_release);
  for (std::thread& searcher : searchers) searcher.join();
  EXPECT_EQ(violations.load(), 0);

  ASSERT_EQ(engine->index().size(), reference->index().size());
  for (int q = 0; q < queries.size(); ++q) {
    ExpectSameNeighbors(reference->SearchOne(queries.code(q), k),
                        engine->SearchOne(queries.code(q), k));
  }
}

// ---------------------------------------------------------------------
// Kill path: a replica dying mid-stream must not leak in-flight counts

TEST(QueryEngineTest, KillFailsQueuedBatchesAndZeroesInflight) {
  const PackedCodes corpus = RandomCorpus(200, 64, 55);
  auto engine = MakeQueryEngine(
      PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                corpus.words()),
      {});

  // Hold the dispatch thread inside the first batch's callback so the
  // rest stay queued, then kill: the queued batches must resolve with
  // Unavailable — and every completion path must return the in-flight
  // counter to zero, or least-loaded routing would shun this replica
  // forever.
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::promise<void> entered;
  auto one_query = [&] {
    return PackedCodes::FromRawWords(
        1, corpus.bits(),
        std::vector<uint64_t>(corpus.code(0), corpus.code(0) + 1));
  };
  engine->SubmitBatch(one_query(), 3,
                      [&entered, release_future](
                          Status, std::vector<std::vector<Neighbor>>) {
                        entered.set_value();
                        release_future.wait();
                      });
  entered.get_future().wait();

  std::vector<Status> statuses(4);
  std::vector<std::promise<void>> resolved(4);
  for (int i = 0; i < 4; ++i) {
    engine->SubmitBatch(one_query(), 3,
                        [&statuses, &resolved, i](
                            Status status,
                            std::vector<std::vector<Neighbor>> results) {
                          statuses[static_cast<size_t>(i)] = status;
                          EXPECT_TRUE(results.empty() || status.ok());
                          resolved[static_cast<size_t>(i)].set_value();
                        });
  }
  EXPECT_EQ(engine->inflight(), 5);

  std::thread killer([&] { engine->Kill(); });
  // Kill sets the kill flag before it waits for in-flight work, and the
  // dispatch thread is parked in the first batch's callback until the
  // release below — so once killed() reads true, every queued batch is
  // guaranteed to take the failure path. Deterministic, no sleeps.
  while (!engine->killed()) std::this_thread::yield();
  release.set_value();  // let the in-hand batch finish; Kill reaps the rest
  killer.join();
  for (auto& promise : resolved) promise.get_future().wait();
  for (const Status& status : statuses) {
    EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
  }
  EXPECT_EQ(engine->inflight(), 0)
      << "a batch that resolved Unavailable leaked its in-flight count";

  // Post-kill submissions also resolve Unavailable, still accounted.
  std::promise<void> late_done;
  engine->SubmitBatch(one_query(), 3,
                      [&late_done](Status status,
                                   std::vector<std::vector<Neighbor>>) {
                        EXPECT_EQ(status.code(), StatusCode::kUnavailable);
                        late_done.set_value();
                      });
  late_done.get_future().wait();
  EXPECT_EQ(engine->inflight(), 0);

  // The future form has no Status channel, so a failed batch must
  // surface as an exception from get() — never as an empty "success"
  // whose shape (0 lists) would betray callers indexing per query.
  auto failed = engine->SubmitBatch(one_query(), 3);
  EXPECT_THROW(failed.get(), std::runtime_error);
  EXPECT_EQ(engine->inflight(), 0);
}

TEST(BatcherTest, KilledReplicaMidStreamResolvesEverythingAndRebalances) {
  // Kill one of two replicas while a submission stream is in flight:
  // every future resolves (served or Unavailable, never hung), both
  // replicas' in-flight counters return to zero, and the router keeps
  // routing afterwards.
  const PackedCodes corpus = RandomCorpus(400, 64, 56);
  BatcherOptions options;
  options.max_batch = 4;
  options.timeout_us = 100;
  Pipeline pipeline(corpus, 2, options);

  std::vector<std::future<SearchResponse>> futures;
  std::thread killer;
  for (int round = 0; round < 12; ++round) {
    for (int q = 0; q < 16; ++q) {
      futures.push_back(pipeline.batcher->Submit(corpus, q, 5));
    }
    if (round == 5) {
      killer = std::thread(
          [&pipeline] { pipeline.replica_set->replica(1)->Kill(); });
    }
  }
  if (killer.joinable()) killer.join();

  int served = 0, rejected = 0;
  for (std::future<SearchResponse>& future : futures) {
    ASSERT_EQ(future.wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "a killed replica left a future unresolved";
    const SearchResponse response = future.get();
    if (response.status.ok()) {
      ++served;
      EXPECT_FALSE(response.neighbors.empty());
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  EXPECT_EQ(served + rejected, 12 * 16);
  EXPECT_GT(served, 0) << "the surviving replica must keep serving";

  // Fresh traffic after the kill routes around the dead replica
  // entirely — every request is served by the survivor.
  std::vector<std::future<SearchResponse>> after;
  for (int q = 0; q < 8; ++q) {
    after.push_back(pipeline.batcher->Submit(corpus, q, 5));
  }
  for (std::future<SearchResponse>& future : after) {
    const SearchResponse response = future.get();
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }

  // The accounting invariant the router depends on: both replicas read
  // as idle once the stream settles — including the killed one, whose
  // batches resolved Unavailable.
  pipeline.replica_set->replica(0)->Drain();
  EXPECT_EQ(pipeline.replica_set->Inflight(0), 0);
  EXPECT_EQ(pipeline.replica_set->Inflight(1), 0);
  EXPECT_GE(pipeline.batcher->stats().rejected_requests, rejected);
}

// ---------------------------------------------------------------------
// Stats plumbing

TEST(ServeStatsTest, BatchSizeBucketsAndLabels) {
  EXPECT_EQ(BatchSizeBucket(1), 0);
  EXPECT_EQ(BatchSizeBucket(2), 1);
  EXPECT_EQ(BatchSizeBucket(3), 2);
  EXPECT_EQ(BatchSizeBucket(4), 2);
  EXPECT_EQ(BatchSizeBucket(5), 3);
  EXPECT_EQ(BatchSizeBucket(1 << 12), kBatchSizeBuckets - 1);
  EXPECT_EQ(BatchSizeBucketLabel(0), "1");
  EXPECT_EQ(BatchSizeBucketLabel(2), "<=4");
}

TEST(ServeStatsTest, BatchSizeBucketBoundaries) {
  // Every power-of-two boundary: 2^b is the largest size in bucket b,
  // and 2^b + 1 spills into the next bucket (clamped at the last).
  for (int b = 1; b < kBatchSizeBuckets; ++b) {
    EXPECT_EQ(BatchSizeBucket(1 << b), std::min(b, kBatchSizeBuckets - 1))
        << "size=2^" << b;
    EXPECT_EQ(BatchSizeBucket((1 << b) + 1),
              std::min(b + 1, kBatchSizeBuckets - 1))
        << "size=2^" << b << "+1";
  }
  // Degenerate and overflow sizes clamp instead of indexing out of range.
  EXPECT_EQ(BatchSizeBucket(0), 0);
  EXPECT_EQ(BatchSizeBucket(-5), 0);
  EXPECT_EQ(BatchSizeBucket(std::numeric_limits<int>::max() / 2),
            kBatchSizeBuckets - 1);
  // Labels at the edges: bucket 1 is exactly "2", the final bucket is
  // open-ended, and out-of-range bucket indices reuse the edge labels.
  EXPECT_EQ(BatchSizeBucketLabel(1), "2");
  EXPECT_EQ(BatchSizeBucketLabel(kBatchSizeBuckets - 1),
            ">" + std::to_string(1 << (kBatchSizeBuckets - 2)));
  EXPECT_EQ(BatchSizeBucketLabel(-1), "1");
  EXPECT_EQ(BatchSizeBucketLabel(kBatchSizeBuckets + 5),
            BatchSizeBucketLabel(kBatchSizeBuckets - 1));
}

TEST(ServeStatsTest, AggregateServeStatsEmptyAndSingle) {
  // Empty input: a well-formed all-zero snapshot, not a crash or NaN.
  const ServeStatsSnapshot none = AggregateServeStats({});
  EXPECT_EQ(none.replicas, 0);
  EXPECT_EQ(none.queries, 0);
  EXPECT_DOUBLE_EQ(none.qps(), 0.0);
  EXPECT_DOUBLE_EQ(none.latency_p99_ms, 0.0);
  EXPECT_TRUE(none.latency_hist.empty());

  // Single replica: aggregation is the identity (histogram included).
  ServeStats stats;
  stats.RecordBatch(4, 1, 0.010);
  stats.RecordBatch(2, 0, 0.030);
  const ServeStatsSnapshot snap = stats.Snapshot();
  const ServeStatsSnapshot agg = AggregateServeStats({snap});
  EXPECT_EQ(agg.replicas, 1);
  EXPECT_EQ(agg.queries, snap.queries);
  EXPECT_EQ(agg.cache_hits, snap.cache_hits);
  EXPECT_DOUBLE_EQ(agg.busy_seconds, snap.busy_seconds);
  EXPECT_DOUBLE_EQ(agg.wall_seconds, snap.wall_seconds);
  EXPECT_DOUBLE_EQ(agg.latency_p50_ms, snap.latency_p50_ms);
  EXPECT_DOUBLE_EQ(agg.latency_p99_ms, snap.latency_p99_ms);
  EXPECT_EQ(agg.latency_hist.total, snap.latency_hist.total);
}

TEST(ServeStatsTest, PipelineStatsFillAndAggregate) {
  PipelineStats stats;
  stats.RecordFlush(8, /*by_timeout=*/false);
  stats.RecordFlush(3, /*by_timeout=*/true);
  for (int i = 0; i < 11; ++i) {
    stats.RecordRequestDone(/*queue_seconds=*/0.001 * (i + 1),
                            /*total_seconds=*/0.002 * (i + 1));
  }
  stats.RecordRejected(2);
  ServeStatsSnapshot snap;
  stats.FillSnapshot(&snap);
  EXPECT_EQ(snap.queries, 11);
  EXPECT_EQ(snap.batches, 2);
  EXPECT_EQ(snap.batches_flushed_by_size, 1);
  EXPECT_EQ(snap.batches_flushed_by_timeout, 1);
  EXPECT_EQ(snap.rejected_requests, 2);
  EXPECT_GT(snap.time_in_queue_p50_ms, 0.0);
  EXPECT_GE(snap.time_in_queue_p99_ms, snap.time_in_queue_p50_ms);
  EXPECT_GE(snap.latency_p99_ms, snap.latency_p50_ms);

  ServeStatsSnapshot a, b;
  a.queries = 10;
  a.cache_hits = 4;
  a.epoch = 3;
  a.latency_p99_ms = 1.0;
  b.queries = 20;
  b.cache_hits = 1;
  b.epoch = 3;
  b.latency_p99_ms = 2.5;
  const ServeStatsSnapshot agg = AggregateServeStats({a, b});
  EXPECT_EQ(agg.queries, 30);
  EXPECT_EQ(agg.cache_hits, 5);
  EXPECT_EQ(agg.epoch, 3u);
  EXPECT_EQ(agg.replicas, 2);
  EXPECT_DOUBLE_EQ(agg.latency_p99_ms, 2.5);
}

}  // namespace
}  // namespace uhscm::serve
