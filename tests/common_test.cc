#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_writer.h"
#include "common/thread_pool.h"

namespace uhscm {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryFactoryProducesItsCode) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

Status FailsThenPropagates() {
  UHSCM_RETURN_NOT_OK(Status::Internal("inner"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kInternal);
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(13);
  const std::vector<int> sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleAllElements) {
  Rng rng(13);
  const std::vector<int> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIsIndependentOfParentContinuation) {
  Rng parent(21);
  Rng child = parent.Fork();
  // Child stream differs from parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

// ---------------------------------------------------------- string utils

TEST(StringUtilTest, SplitBasic) {
  const auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitEmptyString) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, "--"), "x--y--z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("uhscm_core", "uhscm"));
  EXPECT_FALSE(StartsWith("core", "uhscm"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d bits %.2f", 64, 0.5), "64 bits 0.50");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD Case"), "mixed case");
}

// ----------------------------------------------------------- TableWriter

TEST(TableWriterTest, AlignedTextOutput) {
  TableWriter t({"Method", "MAP"});
  t.AddRow({"LSH", "0.257"});
  t.AddRow({"UHSCM", "0.831"});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("Method"), std::string::npos);
  EXPECT_NE(text.find("UHSCM"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TableWriterTest, DoubleRowFormatsPrecision) {
  TableWriter t({"m", "a", "b"});
  t.AddRow("row", {0.12345, 0.6789}, 3);
  EXPECT_NE(t.ToText().find("0.123"), std::string::npos);
  EXPECT_NE(t.ToText().find("0.679"), std::string::npos);
}

TEST(TableWriterTest, CsvEscapesCommasAndQuotes) {
  TableWriter t({"name", "note"});
  t.AddRow({"a,b", "say \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableWriterTest, ShortRowsArePadded) {
  TableWriter t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_EQ(t.ToCsv(), "a,b,c\nonly,,\n");
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(100, [&](int i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroAndOneCounts) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](int) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, GlobalHelperWorks) {
  std::atomic<int> sum{0};
  ParallelFor(1000, [&](int i) { sum += i; });
  EXPECT_EQ(sum.load(), 999 * 1000 / 2);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(37, [&](int) { ++count; });
    EXPECT_EQ(count.load(), 37);
  }
}

// ------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, MeasuresNonNegativeMonotoneTime) {
  Stopwatch sw;
  const double t1 = sw.ElapsedSeconds();
  const double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

// --------------------------------------------------------------- logging

TEST(LoggingTest, LevelGate) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  UHSCM_LOG(Info) << "suppressed";
  SetLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

}  // namespace
}  // namespace uhscm
