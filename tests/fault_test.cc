// Fault-tolerant serving: the fault-injection layer itself, replica
// kill -> respawn -> rehydrate recovery, deadline propagation, batch
// retries, hedged requests, and the all-replicas-dead fast-fail. The
// load-bearing invariants:
//   * every future handed out resolves — OK, Unavailable, or
//     DeadlineExceeded, never silently dropped — under any injected
//     fault schedule;
//   * a respawned replica's results are byte-identical to a replica
//     that was never killed (same base snapshot + same journaled update
//     sequence => same deterministic state);
//   * injected faults are deterministic for a fixed seed and
//     evaluation order, so every failure scenario here reproduces.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "index/packed_codes.h"
#include "serve/batcher.h"
#include "serve/fault.h"
#include "serve/replica_set.h"
#include "serve/router.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"
#include "test_util.h"

namespace uhscm::serve {
namespace {

using index::Neighbor;
using index::PackedCodes;
using uhscm::testing::RandomSignCodes;

PackedCodes RandomCorpus(int n, int bits, uint64_t seed) {
  Rng rng(seed);
  return PackedCodes::FromSignMatrix(RandomSignCodes(n, bits, &rng));
}

void ExpectSameNeighbors(const std::vector<Neighbor>& expect,
                         const std::vector<Neighbor>& got) {
  ASSERT_EQ(expect.size(), got.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(expect[i].id, got[i].id) << "rank " << i;
    EXPECT_EQ(expect[i].distance, got[i].distance) << "rank " << i;
  }
}

/// Every test arms global state; this guard resets the injector on both
/// ends so no schedule leaks across tests (gtest runs them in one
/// process).
struct InjectorGuard {
  InjectorGuard() { FaultInjector::Global().Reset(); }
  ~InjectorGuard() { FaultInjector::Global().Reset(); }
};

struct Pipeline {
  explicit Pipeline(const PackedCodes& corpus, int replicas,
                    const BatcherOptions& batcher_options,
                    RoutePolicy policy = RoutePolicy::kLeastLoaded,
                    bool supervise = false) {
    ReplicaSetOptions options;
    options.replicas = replicas;
    options.supervise = supervise;
    replica_set = std::make_unique<ReplicaSet>(corpus, options);
    router = std::make_unique<Router>(replica_set.get(), policy);
    batcher = std::make_unique<Batcher>(router.get(), batcher_options);
  }
  std::unique_ptr<ReplicaSet> replica_set;
  std::unique_ptr<Router> router;
  std::unique_ptr<Batcher> batcher;
};

// ---------------------------------------------------------------------
// FaultInjector semantics

TEST(FaultInjectorTest, SkipHitsThenMaxFiresBoundsTheWindow) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "faults compiled out";
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Global();
  FaultSpec spec;
  spec.skip_hits = 2;  // eligible from the 3rd evaluation
  spec.max_fires = 2;  // ... and fires exactly twice
  injector.Arm("test.point", spec);

  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(injector.ShouldFail("test.point"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, false, false}));
  EXPECT_EQ(injector.hits("test.point"), 6);
  EXPECT_EQ(injector.fires("test.point"), 2);
}

TEST(FaultInjectorTest, InstanceScopedSpecWinsOverBareName) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "faults compiled out";
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Global();
  FaultSpec never;
  never.probability = 0.0;
  injector.Arm("test.point", {});          // bare: always fires
  injector.Arm("test.point#1", never);     // tag 1: never fires

  EXPECT_TRUE(injector.ShouldFail("test.point", 0))
      << "tag 0 has no scoped spec — the bare point applies";
  EXPECT_FALSE(injector.ShouldFail("test.point", 1))
      << "the scoped spec must shadow the bare one";
  EXPECT_TRUE(injector.ShouldFail("test.point"))
      << "untagged evaluations only see the bare point";
}

TEST(FaultInjectorTest, ProbabilityDrawsAreSeedDeterministic) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "faults compiled out";
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Global();
  FaultSpec coin;
  coin.probability = 0.5;

  auto run_schedule = [&] {
    injector.Reset();
    injector.Seed(12345);
    injector.Arm("test.coin", coin);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(injector.ShouldFail("test.coin"));
    return fired;
  };
  const std::vector<bool> first = run_schedule();
  const std::vector<bool> second = run_schedule();
  EXPECT_EQ(first, second) << "same seed + same order => same schedule";
  const auto fires = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64) << "p=0.5 should neither always nor never fire";
}

TEST(FaultInjectorTest, DelayPointReturnsArmedDelayAndResetDisarms) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "faults compiled out";
  InjectorGuard guard;
  FaultInjector& injector = FaultInjector::Global();
  FaultSpec slow;
  slow.delay_ns = 1234567;
  injector.Arm(std::string(kFaultSlowBatch) + "#2", slow);

  EXPECT_EQ(injector.DelayNs(kFaultSlowBatch, 2), 1234567);
  EXPECT_EQ(injector.DelayNs(kFaultSlowBatch, 0), 0)
      << "only the tagged instance is slow";
  injector.Reset();
  EXPECT_EQ(injector.DelayNs(kFaultSlowBatch, 2), 0);
  EXPECT_EQ(injector.hits(std::string(kFaultSlowBatch) + "#2"), 0);
}

// ---------------------------------------------------------------------
// Kill -> respawn -> rehydrate

TEST(RespawnTest, RespawnedReplicaIsByteIdenticalToSurvivor) {
  const PackedCodes corpus = RandomCorpus(300, 64, 101);
  const PackedCodes extra1 = RandomCorpus(40, 64, 102);
  const PackedCodes extra2 = RandomCorpus(25, 64, 103);
  const PackedCodes probes = RandomCorpus(30, 64, 104);
  ReplicaSetOptions options;
  options.replicas = 3;
  ReplicaSet replicas(corpus, options);

  // Mutate before the kill (journaled), kill replica 1, then mutate
  // more while it is dead — the journal must carry both phases.
  replicas.Append(extra1);
  ASSERT_EQ(replicas.RemoveIds({3, 17, 310}), 3);
  replicas.replica(1)->Kill();
  EXPECT_EQ(replicas.health(1), ReplicaHealth::kDead);
  replicas.Append(extra2);
  ASSERT_EQ(replicas.RemoveIds({50, 342}), 2);
  replicas.Compact();
  EXPECT_EQ(replicas.journal_size(), 5u);

  ASSERT_EQ(replicas.RespawnDeadReplicas(), 1);
  EXPECT_EQ(replicas.respawns(), 1);
  EXPECT_EQ(replicas.health(1), ReplicaHealth::kHealthy);
  EXPECT_FALSE(replicas.replica(1)->killed());
  EXPECT_EQ(replicas.replica(1)->epoch(), replicas.replica(0)->epoch());

  // Byte-identity: the respawned replica answers exactly like the
  // untouched survivors, and keeps doing so after further fan-outs.
  for (int q = 0; q < probes.size(); ++q) {
    ExpectSameNeighbors(replicas.replica(0)->SearchOne(probes.code(q), 10),
                        replicas.replica(1)->SearchOne(probes.code(q), 10));
  }
  replicas.Append(probes);
  ASSERT_EQ(replicas.RemoveIds({360}), 1);
  for (int q = 0; q < probes.size(); ++q) {
    ExpectSameNeighbors(replicas.replica(2)->SearchOne(probes.code(q), 10),
                        replicas.replica(1)->SearchOne(probes.code(q), 10));
  }
}

TEST(RespawnTest, HydrationFaultCountsFailureAndNextAttemptRecovers) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "faults compiled out";
  InjectorGuard guard;
  const PackedCodes corpus = RandomCorpus(120, 64, 111);
  ReplicaSetOptions options;
  options.replicas = 2;
  ReplicaSet replicas(corpus, options);
  replicas.replica(0)->Kill();

  FaultSpec once;
  once.max_fires = 1;
  FaultInjector::Global().Arm(kFaultHydrate, once);
  EXPECT_EQ(replicas.RespawnDeadReplicas(), 0)
      << "the injected hydration failure must not swap a replica in";
  EXPECT_EQ(replicas.respawn_failures(), 1);
  EXPECT_EQ(replicas.health(0), ReplicaHealth::kDead);

  EXPECT_EQ(replicas.RespawnDeadReplicas(), 1) << "retry succeeds";
  EXPECT_EQ(replicas.respawns(), 1);
  EXPECT_EQ(replicas.health(0), ReplicaHealth::kHealthy);
}

TEST(RespawnTest, AllReplicasDeadJournalReplayRebuildsCoherentSet) {
  // Updates landing with zero live replicas are journaled without an
  // expected outcome; respawning everything replays them coherently.
  const PackedCodes corpus = RandomCorpus(100, 64, 121);
  const PackedCodes extra = RandomCorpus(20, 64, 122);
  ReplicaSetOptions options;
  options.replicas = 2;
  ReplicaSet replicas(corpus, options);
  replicas.replica(0)->Kill();
  replicas.replica(1)->Kill();

  EXPECT_TRUE(replicas.Append(extra).empty())
      << "no live replica can assign ids";
  EXPECT_EQ(replicas.RemoveIds({5}), 0);

  ASSERT_EQ(replicas.RespawnDeadReplicas(), 2);
  EXPECT_EQ(replicas.replica(0)->epoch(), replicas.replica(1)->epoch());
  // The journaled append landed: row 100 exists and both replicas agree.
  const std::vector<Neighbor> hit0 = replicas.replica(0)->SearchOne(extra.code(0), 1);
  ASSERT_EQ(hit0.size(), 1u);
  EXPECT_EQ(hit0[0].distance, 0);
  ExpectSameNeighbors(hit0, replicas.replica(1)->SearchOne(extra.code(0), 1));
}

TEST(RespawnTest, SupervisorRespawnsWithoutManualIntervention) {
  const PackedCodes corpus = RandomCorpus(150, 64, 131);
  ReplicaSetOptions options;
  options.replicas = 2;
  options.supervise = true;
  options.supervise_interval_ms = 1;
  ReplicaSet replicas(corpus, options);

  replicas.replica(1)->Kill();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(10);
  while (replicas.respawns() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(replicas.respawns(), 1) << "supervisor never respawned";
  EXPECT_EQ(replicas.health(1), ReplicaHealth::kHealthy);
  EXPECT_EQ(replicas.replica(1)->epoch(), replicas.replica(0)->epoch());
  replicas.StopSupervisor();
}

// ---------------------------------------------------------------------
// Pipeline failure semantics: kill + retry, deadlines, all-dead,
// admission faults, hedging

TEST(PipelineFaultTest, KillAtBatchKRetriesOntoSurvivorByteIdentically) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "faults compiled out";
  InjectorGuard guard;
  const PackedCodes corpus = RandomCorpus(400, 64, 141);
  const PackedCodes queries = RandomCorpus(32, 64, 142);
  auto reference = MakeQueryEngine(
      PackedCodes::FromRawWords(corpus.size(), corpus.bits(), corpus.words()),
      {});

  // Replica 0 dies on its 2nd submitted batch. The batch (and whatever
  // lands on the corpse afterwards) must retry onto replica 1 and
  // resolve with real results.
  FaultSpec kill;
  kill.skip_hits = 1;
  kill.max_fires = 1;
  FaultInjector::Global().Arm(std::string(kFaultReplicaKill) + "#0", kill);

  BatcherOptions batcher_options;
  batcher_options.max_batch = 8;
  batcher_options.timeout_us = 500;
  Pipeline pipeline(corpus, 2, batcher_options, RoutePolicy::kRoundRobin);

  std::vector<std::future<SearchResponse>> futures;
  for (int q = 0; q < queries.size(); ++q) {
    futures.push_back(pipeline.batcher->Submit(queries, q, 7));
  }
  for (int q = 0; q < queries.size(); ++q) {
    SearchResponse response = futures[static_cast<size_t>(q)].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ExpectSameNeighbors(reference->SearchOne(queries.code(q), 7),
                        response.neighbors);
  }
  EXPECT_TRUE(pipeline.replica_set->replica(0)->killed());
  const ServeStatsSnapshot stats = pipeline.batcher->stats();
  EXPECT_GE(stats.retries, 1) << "the killed batch must have been retried";
  EXPECT_EQ(stats.rejected_requests, 0);
  EXPECT_EQ(stats.replicas_dead, 1);
  EXPECT_EQ(stats.replicas_healthy, 1);
}

TEST(PipelineFaultTest, AllReplicasDeadFailsBatchImmediately) {
  const PackedCodes corpus = RandomCorpus(100, 64, 151);
  BatcherOptions batcher_options;
  batcher_options.max_batch = 4;
  batcher_options.timeout_us = 200;
  Pipeline pipeline(corpus, 2, batcher_options);
  pipeline.replica_set->replica(0)->Kill();
  pipeline.replica_set->replica(1)->Kill();

  std::vector<std::future<SearchResponse>> futures;
  for (int q = 0; q < 8; ++q) {
    futures.push_back(pipeline.batcher->Submit(corpus, q, 5));
  }
  for (std::future<SearchResponse>& future : futures) {
    const SearchResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
    EXPECT_TRUE(response.neighbors.empty());
  }
  const ServeStatsSnapshot stats = pipeline.batcher->stats();
  EXPECT_EQ(stats.retries, 0)
      << "with every replica dead there is nothing to retry onto";
  EXPECT_GE(stats.rejected_requests, 8);
}

TEST(PipelineFaultTest, ExpiredDeadlineResolvesWithoutTouchingAReplica) {
  const PackedCodes corpus = RandomCorpus(100, 64, 161);
  BatcherOptions batcher_options;
  batcher_options.max_batch = 4;
  batcher_options.timeout_us = 200;
  Pipeline pipeline(corpus, 1, batcher_options);

  // Already-expired deadlines: the flush must expire them all.
  const auto past = std::chrono::steady_clock::now() -
                    std::chrono::milliseconds(1);
  std::vector<std::future<SearchResponse>> futures;
  for (int q = 0; q < 6; ++q) {
    futures.push_back(pipeline.batcher->Submit(corpus, q, 5, past));
  }
  for (std::future<SearchResponse>& future : futures) {
    const SearchResponse response = future.get();
    EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(response.neighbors.empty());
  }
  const ServeStatsSnapshot stats = pipeline.batcher->stats();
  EXPECT_EQ(stats.deadline_exceeded, 6);
  EXPECT_EQ(stats.queries, 0) << "expired requests never reach an engine";

  // A comfortable deadline serves normally.
  const auto future_deadline = std::chrono::steady_clock::now() +
                               std::chrono::seconds(30);
  std::future<SearchResponse> ok =
      pipeline.batcher->Submit(corpus, 0, 5, future_deadline);
  EXPECT_TRUE(ok.get().status.ok());
}

TEST(PipelineFaultTest, AdmissionFaultShedsExactlyTheArmedWindow) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "faults compiled out";
  InjectorGuard guard;
  const PackedCodes corpus = RandomCorpus(100, 64, 171);
  BatcherOptions batcher_options;
  batcher_options.max_batch = 4;
  batcher_options.timeout_us = 200;
  Pipeline pipeline(corpus, 1, batcher_options);

  FaultSpec shed;
  shed.max_fires = 3;
  FaultInjector::Global().Arm(kFaultQueueAdmit, shed);

  std::vector<std::future<SearchResponse>> futures;
  for (int q = 0; q < 10; ++q) {
    futures.push_back(pipeline.batcher->Submit(corpus, q, 5));
  }
  int rejected = 0, served = 0;
  for (std::future<SearchResponse>& future : futures) {
    const SearchResponse response = future.get();
    if (response.status.ok()) {
      ++served;
    } else {
      EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  EXPECT_EQ(rejected, 3) << "exactly the armed window is shed";
  EXPECT_EQ(served, 7);
  EXPECT_GE(pipeline.batcher->stats().rejected_requests, 3);
}

TEST(PipelineFaultTest, HedgeBeatsInjectedStragglerFirstCompletionWins) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "faults compiled out";
  InjectorGuard guard;
  const PackedCodes corpus = RandomCorpus(300, 64, 181);
  auto reference = MakeQueryEngine(
      PackedCodes::FromRawWords(corpus.size(), corpus.bits(), corpus.words()),
      {});

  // Replica 0 is a straggler: every batch it runs sleeps 200ms. With a
  // 1ms hedge delay and a full budget, the hedge lands on replica 1 and
  // must win by two orders of magnitude.
  FaultSpec slow;
  slow.delay_ns = 200LL * 1000 * 1000;
  FaultInjector::Global().Arm(std::string(kFaultSlowBatch) + "#0", slow);

  BatcherOptions batcher_options;
  batcher_options.max_batch = 4;
  batcher_options.timeout_us = 200;
  batcher_options.hedge_budget = 1.0;
  batcher_options.hedge_delay_us = 1000;
  Pipeline pipeline(corpus, 2, batcher_options, RoutePolicy::kLeastLoaded);

  // Least-loaded breaks the idle tie toward replica 0, so the first
  // batch lands on the straggler.
  std::vector<std::future<SearchResponse>> futures;
  for (int q = 0; q < 4; ++q) {
    futures.push_back(pipeline.batcher->Submit(corpus, q, 5));
  }
  for (int q = 0; q < 4; ++q) {
    SearchResponse response = futures[static_cast<size_t>(q)].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ExpectSameNeighbors(reference->SearchOne(corpus.code(q), 5),
                        response.neighbors);
  }
  const ServeStatsSnapshot stats = pipeline.batcher->stats();
  EXPECT_GE(stats.hedges, 1) << "the straggling batch must have hedged";
  EXPECT_GE(stats.hedge_wins, 1)
      << "a 200ms straggler cannot beat a 1ms-delayed hedge";
  // Drain before the injector guard disarms the delay so no straggling
  // batch outlives the test body.
  pipeline.batcher->Drain();
  pipeline.replica_set->DrainAll();
}

TEST(PipelineFaultTest, HedgeBudgetZeroNeverHedges) {
  const PackedCodes corpus = RandomCorpus(100, 64, 191);
  BatcherOptions batcher_options;
  batcher_options.max_batch = 4;
  batcher_options.timeout_us = 200;
  batcher_options.hedge_budget = 0.0;  // default: off
  Pipeline pipeline(corpus, 2, batcher_options);
  std::vector<std::future<SearchResponse>> futures;
  for (int q = 0; q < 16; ++q) {
    futures.push_back(pipeline.batcher->Submit(corpus, q, 5));
  }
  for (std::future<SearchResponse>& future : futures) {
    EXPECT_TRUE(future.get().status.ok());
  }
  const ServeStatsSnapshot stats = pipeline.batcher->stats();
  EXPECT_EQ(stats.hedges, 0);
  EXPECT_EQ(stats.hedge_wins, 0);
}

// ---------------------------------------------------------------------
// Randomized fault-schedule stress

TEST(PipelineFaultTest, RandomizedFaultScheduleEveryFutureResolves) {
  if (!kFaultsCompiledIn) GTEST_SKIP() << "faults compiled out";
  InjectorGuard guard;
  const int bits = 64;
  const PackedCodes corpus = RandomCorpus(250, bits, 201);
  const PackedCodes probes = RandomCorpus(20, bits, 202);
  Rng rng(2023);
  FaultInjector::Global().Seed(7);

  // Ground truth: a plain engine fed the identical update sequence.
  auto truth = MakeQueryEngine(
      PackedCodes::FromRawWords(corpus.size(), corpus.bits(), corpus.words()),
      {});

  BatcherOptions batcher_options;
  batcher_options.max_batch = 8;
  batcher_options.timeout_us = 200;
  Pipeline pipeline(corpus, 3, batcher_options);

  std::vector<std::future<SearchResponse>> futures;
  int next_gid = corpus.size();
  for (int round = 0; round < 30; ++round) {
    // Random fault action: kill a replica, shed admissions for a few
    // requests, or slow a replica briefly — all seeded.
    const double dice = rng.Uniform();
    if (dice < 0.25) {
      const int victim = static_cast<int>(rng.UniformInt(3));
      pipeline.replica_set->replica(victim)->Kill();
    } else if (dice < 0.40) {
      FaultSpec shed;
      shed.max_fires = rng.UniformInt(3) + 1;
      shed.probability = 0.5;
      FaultInjector::Global().Arm(kFaultQueueAdmit, shed);
    } else if (dice < 0.55) {
      FaultSpec slow;
      slow.delay_ns = (rng.UniformInt(3) + 1) * 100 * 1000;  // 0.1-0.3ms
      slow.max_fires = 2;
      FaultInjector::Global().Arm(
          std::string(kFaultSlowBatch) + "#" + std::to_string(rng.UniformInt(3)),
          slow);
    }

    // Random update, fanned out + journaled + mirrored on the truth
    // engine (updates are serialized against respawns by design, so the
    // sequences match even while replicas are dead).
    const double update_dice = rng.Uniform();
    if (update_dice < 0.3) {
      const PackedCodes extra =
          RandomCorpus(5, bits, 1000 + static_cast<uint64_t>(round));
      const std::vector<int> ids = pipeline.replica_set->Append(extra);
      truth->Append(extra);
      if (!ids.empty()) next_gid = ids.back() + 1;
      else next_gid += extra.size();
    } else if (update_dice < 0.5 && next_gid > 10) {
      const std::vector<int> doomed = {
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(next_gid))),
          static_cast<int>(rng.UniformInt(static_cast<uint64_t>(next_gid)))};
      pipeline.replica_set->RemoveIds(doomed);
      truth->RemoveIds(doomed);
    } else if (update_dice < 0.6) {
      pipeline.replica_set->Compact();
      truth->Compact();
    }

    // Traffic against whatever is alive right now.
    for (int q = 0; q < 12; ++q) {
      futures.push_back(
          pipeline.batcher->Submit(probes, q % probes.size(), 5));
    }
    // Recover (possibly failing: hydrate faults are NOT armed here, so
    // respawns always succeed) before the next round.
    pipeline.replica_set->RespawnDeadReplicas();
  }

  // Every future resolves with a legal status — nothing hangs, nothing
  // is dropped.
  int ok = 0, unavailable = 0;
  for (std::future<SearchResponse>& future : futures) {
    const SearchResponse response = future.get();
    if (response.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(response.status.code(), StatusCode::kUnavailable)
          << response.status.ToString();
      ++unavailable;
    }
  }
  EXPECT_GT(ok, 0) << "the schedule must serve some traffic";
  EXPECT_EQ(ok + unavailable, static_cast<int>(futures.size()));

  // Quiesce: drain the pipeline, then check the system returned to a
  // coherent steady state.
  pipeline.batcher->Drain();
  EXPECT_EQ(pipeline.batcher->queue_depth(), 0u);
  pipeline.replica_set->RespawnDeadReplicas();
  // Engine inflight counters decrement after the batcher's callback
  // returns; joining the dispatch threads closes that window before the
  // zero check.
  pipeline.replica_set->DrainAll();
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(pipeline.replica_set->health(r), ReplicaHealth::kHealthy);
    EXPECT_EQ(pipeline.replica_set->Inflight(r), 0)
        << "in-flight accounting must return to zero on replica " << r;
  }

  // Byte-identity against ground truth: every replica (respawned or
  // never-killed) answers exactly like the reference engine that saw
  // the same update sequence.
  EXPECT_EQ(pipeline.replica_set->epoch(), truth->epoch());
  for (int r = 0; r < 3; ++r) {
    for (int q = 0; q < probes.size(); ++q) {
      ExpectSameNeighbors(
          truth->SearchOne(probes.code(q), 10),
          pipeline.replica_set->replica(r)->SearchOne(probes.code(q), 10));
    }
  }
}

}  // namespace
}  // namespace uhscm::serve
