#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/metrics.h"
#include "eval/tsne.h"
#include "linalg/ops.h"

namespace uhscm::eval {
namespace {

TEST(TsneTest, RejectsDegenerateInputs) {
  Rng rng(1);
  linalg::Matrix tiny = linalg::Matrix::RandomNormal(3, 4, &rng);
  TsneOptions options;
  EXPECT_FALSE(RunTsne(tiny, options, &rng).ok());

  linalg::Matrix small = linalg::Matrix::RandomNormal(10, 4, &rng);
  options.perplexity = 20.0;  // >= n
  EXPECT_FALSE(RunTsne(small, options, &rng).ok());
}

TEST(TsneTest, OutputShape) {
  Rng rng(2);
  linalg::Matrix x = linalg::Matrix::RandomNormal(40, 8, &rng);
  TsneOptions options;
  options.perplexity = 10.0;
  options.iterations = 60;
  Result<linalg::Matrix> y = RunTsne(x, options, &rng);
  ASSERT_TRUE(y.ok()) << y.status().ToString();
  EXPECT_EQ(y->rows(), 40);
  EXPECT_EQ(y->cols(), 2);
  // Centered output.
  linalg::Vector mean = linalg::ColumnMeans(*y);
  EXPECT_NEAR(mean[0], 0.0f, 1e-3f);
  EXPECT_NEAR(mean[1], 0.0f, 1e-3f);
}

TEST(TsneTest, SeparatedClustersStaySeparated) {
  // Two far-apart clusters in 16-D must map to silhouette-positive 2-D
  // clusters.
  Rng rng(3);
  const int per = 30;
  linalg::Matrix x(2 * per, 16);
  std::vector<int> labels(static_cast<size_t>(2 * per));
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < per; ++i) {
      const int row = c * per + i;
      labels[static_cast<size_t>(row)] = c;
      for (int d = 0; d < 16; ++d) {
        x(row, d) = static_cast<float>(rng.Normal(c * 8.0, 0.5));
      }
    }
  }
  TsneOptions options;
  options.perplexity = 12.0;
  options.iterations = 250;
  Result<linalg::Matrix> y = RunTsne(x, options, &rng);
  ASSERT_TRUE(y.ok());
  std::vector<float> flat(y->data(), y->data() + y->size());
  EXPECT_GT(MeanSilhouette(flat, 2, labels), 0.5);
}

TEST(TsneTest, DeterministicGivenSeed) {
  linalg::Matrix x;
  {
    Rng data_rng(4);
    x = linalg::Matrix::RandomNormal(30, 6, &data_rng);
  }
  TsneOptions options;
  options.perplexity = 8.0;
  options.iterations = 40;
  Rng r1(99), r2(99);
  Result<linalg::Matrix> a = RunTsne(x, options, &r1);
  Result<linalg::Matrix> b = RunTsne(x, options, &r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ(a->data()[i], b->data()[i]);
  }
}

}  // namespace
}  // namespace uhscm::eval
