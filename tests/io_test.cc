#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "io/serialize.h"
#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/linear.h"

namespace uhscm::io {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : created_) {
      std::remove(path.c_str());
    }
  }

  std::string Path(const std::string& name) {
    const std::string path = TempPath(name);
    created_.push_back(path);
    return path;
  }

  std::vector<std::string> created_;
};

TEST_F(IoTest, MatrixRoundTrip) {
  Rng rng(1);
  const linalg::Matrix m = linalg::Matrix::RandomNormal(17, 23, &rng);
  const std::string path = Path("matrix.bin");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  Result<linalg::Matrix> loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->rows(), 17);
  ASSERT_EQ(loaded->cols(), 23);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_EQ(loaded->data()[i], m.data()[i]);
  }
}

TEST_F(IoTest, EmptyMatrixRoundTrip) {
  const linalg::Matrix m;
  const std::string path = Path("empty.bin");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  Result<linalg::Matrix> loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->rows(), 0);
}

TEST_F(IoTest, LoadMissingFileIsNotFound) {
  Result<linalg::Matrix> r = LoadMatrix(TempPath("does-not-exist.bin"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(IoTest, WrongMagicRejected) {
  Rng rng(2);
  const linalg::Matrix m = linalg::Matrix::RandomNormal(3, 3, &rng);
  const std::string path = Path("codes-as-matrix.bin");
  // Save packed codes, then try to read them as a matrix.
  index::PackedCodes codes = index::PackedCodes::FromSignMatrix(m);
  ASSERT_TRUE(SavePackedCodes(codes, path).ok());
  Result<linalg::Matrix> r = LoadMatrix(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(IoTest, TruncatedFileRejected) {
  Rng rng(3);
  const linalg::Matrix m = linalg::Matrix::RandomNormal(20, 20, &rng);
  const std::string path = Path("truncated.bin");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  // Truncate the file to half its size.
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  ASSERT_NE(fp, nullptr);
  std::fseek(fp, 0, SEEK_END);
  const long full = std::ftell(fp);
  std::fclose(fp);
  ASSERT_EQ(truncate(path.c_str(), full / 2), 0);
  EXPECT_FALSE(LoadMatrix(path).ok());
}

TEST_F(IoTest, CorruptedPayloadFailsChecksum) {
  Rng rng(4);
  const linalg::Matrix m = linalg::Matrix::RandomNormal(8, 8, &rng);
  const std::string path = Path("corrupt.bin");
  ASSERT_TRUE(SaveMatrix(m, path).ok());
  // Flip one byte in the middle of the payload.
  std::FILE* fp = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(fp, nullptr);
  std::fseek(fp, 40, SEEK_SET);
  int c = std::fgetc(fp);
  std::fseek(fp, 40, SEEK_SET);
  std::fputc(c ^ 0xFF, fp);
  std::fclose(fp);
  Result<linalg::Matrix> r = LoadMatrix(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("checksum"), std::string::npos);
}

TEST_F(IoTest, ModelParametersRoundTrip) {
  Rng rng(5);
  nn::Sequential model;
  model.Append(std::make_unique<nn::Linear>(6, 10, &rng));
  model.Append(std::make_unique<nn::Relu>());
  model.Append(std::make_unique<nn::Linear>(10, 4, &rng));
  const std::string path = Path("model.bin");
  ASSERT_TRUE(SaveModelParameters(&model, path).ok());

  nn::Sequential other;
  other.Append(std::make_unique<nn::Linear>(6, 10, &rng));
  other.Append(std::make_unique<nn::Relu>());
  other.Append(std::make_unique<nn::Linear>(10, 4, &rng));
  ASSERT_TRUE(LoadModelParameters(&other, path).ok());

  const linalg::Matrix x = linalg::Matrix::RandomNormal(5, 6, &rng);
  const linalg::Matrix ya = model.Forward(x);
  const linalg::Matrix yb = other.Forward(x);
  for (size_t i = 0; i < ya.size(); ++i) {
    EXPECT_EQ(ya.data()[i], yb.data()[i]);
  }
}

TEST_F(IoTest, ModelShapeMismatchRejected) {
  Rng rng(6);
  nn::Sequential model;
  model.Append(std::make_unique<nn::Linear>(6, 10, &rng));
  const std::string path = Path("model2.bin");
  ASSERT_TRUE(SaveModelParameters(&model, path).ok());

  nn::Sequential wrong_shape;
  wrong_shape.Append(std::make_unique<nn::Linear>(6, 11, &rng));
  EXPECT_FALSE(LoadModelParameters(&wrong_shape, path).ok());

  nn::Sequential wrong_count;
  wrong_count.Append(std::make_unique<nn::Linear>(6, 10, &rng));
  wrong_count.Append(std::make_unique<nn::Linear>(10, 2, &rng));
  EXPECT_FALSE(LoadModelParameters(&wrong_count, path).ok());
}

TEST_F(IoTest, HashingNetworkRoundTripEncodesIdentically) {
  Rng rng(7);
  core::HashingNetworkOptions options;
  options.hidden1 = 32;
  options.hidden2 = 24;
  options.bits = 16;
  core::HashingNetwork network(12, options, &rng);
  const std::string path = Path("hashnet.bin");
  ASSERT_TRUE(SaveHashingNetwork(network, path).ok());

  Result<std::unique_ptr<core::HashingNetwork>> loaded =
      LoadHashingNetwork(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->input_dim(), 12);
  EXPECT_EQ((*loaded)->bits(), 16);

  const linalg::Matrix x = linalg::Matrix::RandomNormal(9, 12, &rng);
  const linalg::Matrix a = network.EncodeBinary(x);
  const linalg::Matrix b = (*loaded)->EncodeBinary(x);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

class PackedCodesRoundTrip : public IoTest,
                             public ::testing::WithParamInterface<int> {};

TEST_P(PackedCodesRoundTrip, PreservesAllDistances) {
  const int bits = GetParam();
  Rng rng(8);
  linalg::Matrix codes(25, bits);
  for (size_t i = 0; i < codes.size(); ++i) {
    codes.data()[i] = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
  }
  index::PackedCodes packed = index::PackedCodes::FromSignMatrix(codes);
  const std::string path = Path("codes.bin");
  ASSERT_TRUE(SavePackedCodes(packed, path).ok());
  Result<index::PackedCodes> loaded = LoadPackedCodes(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), packed.size());
  ASSERT_EQ(loaded->bits(), packed.bits());
  for (int i = 0; i < packed.size(); ++i) {
    for (int j = 0; j < packed.size(); ++j) {
      EXPECT_EQ(loaded->Distance(i, j), packed.Distance(i, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PackedCodesRoundTrip,
                         ::testing::Values(16, 64, 96, 128));

// ---------------------------------------------------------------------
// Serving snapshot ("UHSC" v2): epoch + tombstone section, with v1 read
// compatibility.

index::PackedCodes RandomPacked(int n, int bits, Rng* rng) {
  linalg::Matrix codes(n, bits);
  for (size_t i = 0; i < codes.size(); ++i) {
    codes.data()[i] = rng->Bernoulli(0.5) ? 1.0f : -1.0f;
  }
  return index::PackedCodes::FromSignMatrix(codes);
}

TEST_F(IoTest, CodesSnapshotV2RoundTrip) {
  Rng rng(9);
  CodesSnapshot snapshot;
  snapshot.codes = RandomPacked(70, 96, &rng);
  snapshot.epoch = 42;
  snapshot.tombstone_words.assign(static_cast<size_t>((70 + 63) / 64), 0);
  snapshot.tombstone_words[0] |= 1ULL << 3;
  snapshot.tombstone_words[1] |= 1ULL << (69 - 64);

  const std::string path = Path("snapshot_v2.bin");
  ASSERT_TRUE(SaveCodesSnapshot(snapshot, path).ok());
  Result<CodesSnapshot> loaded = LoadCodesSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 42u);
  EXPECT_EQ(loaded->codes.size(), 70);
  EXPECT_EQ(loaded->codes.bits(), 96);
  EXPECT_TRUE(loaded->HasTombstones());
  EXPECT_EQ(loaded->LiveCount(), 68);
  EXPECT_EQ(loaded->tombstone_words, snapshot.tombstone_words);
  EXPECT_EQ(loaded->codes.words(), snapshot.codes.words());

  // LoadPackedCodes on the same v2 file compacts the tombstoned rows.
  Result<index::PackedCodes> compacted = LoadPackedCodes(path);
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_EQ(compacted->size(), 68);
  // Row 0 of the compacted database is row 0 of the snapshot (gid 3 and
  // 69 were dead), row 3 is gid 4.
  EXPECT_EQ(0, index::HammingDistance(compacted->code(3),
                                      snapshot.codes.code(4),
                                      snapshot.codes.words_per_code()));
}

TEST_F(IoTest, LegacyV1LoadsAsSnapshotWithEpochZero) {
  Rng rng(10);
  index::PackedCodes packed = RandomPacked(30, 64, &rng);
  const std::string path = Path("legacy_codes.bin");
  ASSERT_TRUE(SavePackedCodes(packed, path).ok());
  Result<CodesSnapshot> loaded = LoadCodesSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 0u);
  EXPECT_FALSE(loaded->HasTombstones());
  EXPECT_EQ(loaded->LiveCount(), 30);
  EXPECT_EQ(loaded->codes.words(), packed.words());
}

TEST_F(IoTest, SnapshotCorruptHeaderReturnsStatusError) {
  const std::string path = Path("corrupt_snapshot.bin");
  // Wrong magic.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("XXXX garbage that is long enough to read a header from",
               f);
    std::fclose(f);
    Result<CodesSnapshot> loaded = LoadCodesSnapshot(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
  // Right magic, unsupported version.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const uint32_t bad_version = 99;
    std::fwrite("UHSC", 1, 4, f);
    std::fwrite(&bad_version, sizeof(bad_version), 1, f);
    std::fclose(f);
    Result<CodesSnapshot> loaded = LoadCodesSnapshot(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
  // Valid v2 prefix, truncated before the tombstone section.
  {
    Rng rng(11);
    CodesSnapshot snapshot;
    snapshot.codes = RandomPacked(20, 64, &rng);
    snapshot.epoch = 7;
    ASSERT_TRUE(SaveCodesSnapshot(snapshot, path).ok());
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    // 4 magic + 4 version + 8 epoch + 8 dims + half the code words.
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long full = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), full - 20), 0);
    Result<CodesSnapshot> loaded = LoadCodesSnapshot(path);
    ASSERT_FALSE(loaded.ok());
  }
  // Flipped tombstone bit fails the section checksum.
  {
    Rng rng(12);
    CodesSnapshot snapshot;
    snapshot.codes = RandomPacked(20, 64, &rng);
    snapshot.epoch = 7;
    snapshot.tombstone_words.assign(1, 1ULL << 5);
    ASSERT_TRUE(SaveCodesSnapshot(snapshot, path).ok());
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    // The tombstone bitmap sits 12 bytes before EOF (8 checksum + ...):
    // layout ends [bitmap words][u64 checksum].
    ASSERT_EQ(std::fseek(f, -16, SEEK_END), 0);
    uint64_t word = 0;
    ASSERT_EQ(std::fread(&word, sizeof(word), 1, f), 1u);
    word ^= 1ULL << 9;
    ASSERT_EQ(std::fseek(f, -16, SEEK_END), 0);
    ASSERT_EQ(std::fwrite(&word, sizeof(word), 1, f), 1u);
    std::fclose(f);
    Result<CodesSnapshot> loaded = LoadCodesSnapshot(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(IoTest, SnapshotRejectsWrongSizeTombstoneBitmap) {
  Rng rng(13);
  CodesSnapshot snapshot;
  snapshot.codes = RandomPacked(100, 64, &rng);
  snapshot.tombstone_words.assign(1, 0);  // needs 2 words for 100 rows
  const std::string path = Path("bad_bitmap.bin");
  Status st = SaveCodesSnapshot(snapshot, path);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace uhscm::io
