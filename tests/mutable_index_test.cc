// Mutability contract of the index layer: LinearScanIndex and
// MultiIndexHashTable behind the common ShardIndex interface, tombstone
// semantics of every scan path, and the byte-identity invariant —
// results over the survivors equal a fresh build without the removed
// rows (after compacting ids by survivor rank).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "index/batch_scan.h"
#include "index/linear_scan.h"
#include "index/multi_index_hash.h"
#include "index/neighbor.h"
#include "index/packed_codes.h"
#include "index/shard_index.h"
#include "test_util.h"

namespace uhscm::index {
namespace {

using linalg::Matrix;
using uhscm::testing::RandomSignCodes;

/// Extracts the submatrix of `m` whose rows are NOT in `removed`.
Matrix SurvivorRows(const Matrix& m, const std::vector<int>& removed) {
  std::vector<bool> dead(static_cast<size_t>(m.rows()), false);
  for (int id : removed) dead[static_cast<size_t>(id)] = true;
  int live = 0;
  for (int i = 0; i < m.rows(); ++i) live += dead[static_cast<size_t>(i)] ? 0 : 1;
  Matrix out(live, m.cols());
  int row = 0;
  for (int i = 0; i < m.rows(); ++i) {
    if (dead[static_cast<size_t>(i)]) continue;
    for (int c = 0; c < m.cols(); ++c) out(row, c) = m(i, c);
    ++row;
  }
  return out;
}

/// Maps a stable id in a mutated index to its rank among survivors —
/// the id the same row has in a compacted rebuild.
int SurvivorRank(int id, const std::vector<int>& removed) {
  int rank = id;
  for (int dead : removed) {
    EXPECT_NE(dead, id);
    if (dead < id) --rank;
  }
  return rank;
}

void ExpectCompactedMatch(const std::vector<Neighbor>& rebuilt,
                          const std::vector<Neighbor>& mutated,
                          const std::vector<int>& removed) {
  ASSERT_EQ(rebuilt.size(), mutated.size());
  for (size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_EQ(rebuilt[i].id, SurvivorRank(mutated[i].id, removed))
        << "rank " << i;
    EXPECT_EQ(rebuilt[i].distance, mutated[i].distance) << "rank " << i;
  }
}

TEST(TombstoneSetTest, SetTestAndCounts) {
  TombstoneSet set;
  set.Resize(70);
  EXPECT_EQ(set.size(), 70);
  EXPECT_EQ(set.dead_count(), 0);
  EXPECT_FALSE(set.any());
  EXPECT_TRUE(set.Set(0));
  EXPECT_TRUE(set.Set(69));
  EXPECT_FALSE(set.Set(69)) << "second removal of the same row";
  EXPECT_EQ(set.dead_count(), 2);
  EXPECT_TRUE(set.Test(0));
  EXPECT_TRUE(set.Test(69));
  EXPECT_FALSE(set.Test(1));
  // Growing keeps existing tombstones and adds live rows.
  set.Resize(130);
  EXPECT_EQ(set.size(), 130);
  EXPECT_EQ(set.dead_count(), 2);
  EXPECT_TRUE(set.Test(69));
  EXPECT_FALSE(set.Test(129));
}

TEST(TombstoneSetTest, FromWordsRoundTrip) {
  TombstoneSet set;
  set.Resize(100);
  set.Set(3);
  set.Set(64);
  set.Set(99);
  TombstoneSet restored = TombstoneSet::FromWords(100, set.words());
  EXPECT_EQ(restored.size(), 100);
  EXPECT_EQ(restored.dead_count(), 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(restored.Test(i), set.Test(i));
  // Stray bits beyond the row count are dropped.
  std::vector<uint64_t> noisy = set.words();
  noisy.back() |= ~((1ULL << (100 & 63)) - 1);
  TombstoneSet trimmed = TombstoneSet::FromWords(100, noisy);
  EXPECT_EQ(trimmed.dead_count(), 3);
}

TEST(PackedCodesTest, AppendConcatenatesRows) {
  Rng rng(11);
  Matrix a = RandomSignCodes(5, 96, &rng);
  Matrix b = RandomSignCodes(3, 96, &rng);
  PackedCodes packed = PackedCodes::FromSignMatrix(a);
  packed.Append(PackedCodes::FromSignMatrix(b));
  EXPECT_EQ(packed.size(), 8);
  EXPECT_EQ(packed.bits(), 96);
  for (int i = 0; i < 5; ++i) {
    const std::vector<float> row = packed.Unpack(i);
    for (int c = 0; c < 96; ++c) EXPECT_EQ(row[static_cast<size_t>(c)], a(i, c));
  }
  for (int i = 0; i < 3; ++i) {
    const std::vector<float> row = packed.Unpack(5 + i);
    for (int c = 0; c < 96; ++c) EXPECT_EQ(row[static_cast<size_t>(c)], b(i, c));
  }
  // An empty receiver adopts the appended codes wholesale.
  PackedCodes empty;
  empty.Append(PackedCodes::FromSignMatrix(b));
  EXPECT_EQ(empty.size(), 3);
  EXPECT_EQ(empty.bits(), 96);
}

/// Both ShardIndex implementations must satisfy the same mutability
/// contract; the suite runs each test against each backend.
enum class Backend { kLinearScan, kMih };

std::unique_ptr<ShardIndex> MakeIndex(Backend backend, PackedCodes codes) {
  if (backend == Backend::kMih) {
    return std::make_unique<MultiIndexHashTable>(std::move(codes), 4);
  }
  return std::make_unique<LinearScanIndex>(std::move(codes));
}

class ShardIndexContract : public ::testing::TestWithParam<Backend> {};

TEST_P(ShardIndexContract, AppendedRowsAreSearchable) {
  Rng rng(21);
  const int bits = 64, k = 8;
  Matrix base = RandomSignCodes(120, bits, &rng);
  Matrix extra = RandomSignCodes(40, bits, &rng);
  Matrix all(160, bits);
  for (int i = 0; i < 120; ++i)
    for (int c = 0; c < bits; ++c) all(i, c) = base(i, c);
  for (int i = 0; i < 40; ++i)
    for (int c = 0; c < bits; ++c) all(120 + i, c) = extra(i, c);

  std::unique_ptr<ShardIndex> index =
      MakeIndex(GetParam(), PackedCodes::FromSignMatrix(base));
  index->Append(PackedCodes::FromSignMatrix(extra));
  EXPECT_EQ(index->size(), 160);
  EXPECT_EQ(index->total_size(), 160);

  LinearScanIndex truth(PackedCodes::FromSignMatrix(all));
  for (int q = 0; q < 10; ++q) {
    PackedCodes pq =
        PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
    const auto expect = truth.TopK(pq.code(0), k);
    const auto got = index->TopK(pq.code(0), k);
    ASSERT_EQ(expect.size(), got.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(expect[i].id, got[i].id);
      EXPECT_EQ(expect[i].distance, got[i].distance);
    }
  }
}

TEST_P(ShardIndexContract, RemovedRowsNeverSurface) {
  Rng rng(22);
  const int n = 150, bits = 64, k = 12;
  Matrix db = RandomSignCodes(n, bits, &rng);
  std::unique_ptr<ShardIndex> index =
      MakeIndex(GetParam(), PackedCodes::FromSignMatrix(db));

  std::vector<int> removed = {0, 7, 64, 65, 149};
  for (int id : removed) EXPECT_TRUE(index->Remove(id));
  EXPECT_FALSE(index->Remove(7)) << "double removal";
  EXPECT_FALSE(index->Remove(-1));
  EXPECT_FALSE(index->Remove(n));
  EXPECT_EQ(index->size(), n - 5);
  EXPECT_EQ(index->total_size(), n);

  LinearScanIndex truth(PackedCodes::FromSignMatrix(SurvivorRows(db, removed)));
  for (int q = 0; q < 10; ++q) {
    PackedCodes pq =
        PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
    ExpectCompactedMatch(truth.TopK(pq.code(0), k),
                         index->TopK(pq.code(0), k), removed);
  }
}

TEST_P(ShardIndexContract, TopKBatchMatchesTopKAfterMutations) {
  Rng rng(23);
  const int bits = 128, k = 9;
  std::unique_ptr<ShardIndex> index = MakeIndex(
      GetParam(), PackedCodes::FromSignMatrix(RandomSignCodes(200, bits, &rng)));
  index->Append(PackedCodes::FromSignMatrix(RandomSignCodes(60, bits, &rng)));
  for (int id : {3, 130, 201, 259}) EXPECT_TRUE(index->Remove(id));

  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(17, bits, &rng));
  std::vector<const uint64_t*> qptrs;
  for (int q = 0; q < queries.size(); ++q) qptrs.push_back(queries.code(q));
  const auto batched =
      index->TopKBatch(qptrs.data(), static_cast<int>(qptrs.size()), k);
  ASSERT_EQ(batched.size(), qptrs.size());
  for (int q = 0; q < queries.size(); ++q) {
    const auto expect = index->TopK(queries.code(q), k);
    const auto& got = batched[static_cast<size_t>(q)];
    ASSERT_EQ(expect.size(), got.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(expect[i].id, got[i].id);
      EXPECT_EQ(expect[i].distance, got[i].distance);
    }
  }
}

TEST_P(ShardIndexContract, KLargerThanLiveCountReturnsAllSurvivors) {
  Rng rng(24);
  const int n = 40, bits = 32;
  std::unique_ptr<ShardIndex> index = MakeIndex(
      GetParam(), PackedCodes::FromSignMatrix(RandomSignCodes(n, bits, &rng)));
  for (int id = 0; id < 10; ++id) EXPECT_TRUE(index->Remove(id));
  PackedCodes pq = PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
  const auto got = index->TopK(pq.code(0), 1000);
  EXPECT_EQ(got.size(), 30u);
  for (const Neighbor& nb : got) EXPECT_GE(nb.id, 10);
}

TEST_P(ShardIndexContract, CompactDropsDeadRowsOnly) {
  Rng rng(25);
  const int bits = 64, k = 10;
  std::unique_ptr<ShardIndex> index = MakeIndex(
      GetParam(), PackedCodes::FromSignMatrix(RandomSignCodes(130, bits, &rng)));
  index->Append(PackedCodes::FromSignMatrix(RandomSignCodes(40, bits, &rng)));
  std::vector<int> removed = {0, 63, 64, 129, 130, 169};
  for (int id : removed) ASSERT_TRUE(index->Remove(id));

  std::unique_ptr<ShardIndex> compacted = index->Compact();
  EXPECT_EQ(compacted->size(), 164);
  EXPECT_EQ(compacted->total_size(), 164) << "no dead rows after compaction";
  EXPECT_FALSE(compacted->tombstones().any());

  // The compacted index's local ids are survivor ranks, so its results
  // must equal the tombstoned index's results after the rank remap —
  // and the original index must be untouched (Compact is const).
  EXPECT_EQ(index->size(), 164);
  EXPECT_EQ(index->total_size(), 170);
  for (int q = 0; q < 10; ++q) {
    PackedCodes pq =
        PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
    ExpectCompactedMatch(compacted->TopK(pq.code(0), k),
                         index->TopK(pq.code(0), k), removed);
  }
}

TEST_P(ShardIndexContract, CompactOfCleanIndexIsIdentity) {
  Rng rng(26);
  const int bits = 64, k = 7;
  std::unique_ptr<ShardIndex> index = MakeIndex(
      GetParam(), PackedCodes::FromSignMatrix(RandomSignCodes(80, bits, &rng)));
  std::unique_ptr<ShardIndex> compacted = index->Compact();
  EXPECT_EQ(compacted->total_size(), 80);
  for (int q = 0; q < 5; ++q) {
    PackedCodes pq =
        PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
    const auto expect = index->TopK(pq.code(0), k);
    const auto got = compacted->TopK(pq.code(0), k);
    ASSERT_EQ(expect.size(), got.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(expect[i].id, got[i].id);
      EXPECT_EQ(expect[i].distance, got[i].distance);
    }
  }
}

TEST_P(ShardIndexContract, RandomizedAppendRemoveCompactStaysExact) {
  // Randomized interleaving of Append / Remove / Compact / Search: after
  // every compaction (and at every checkpoint) results must be
  // byte-identical to a fresh LinearScan rebuild of the survivors. The
  // reference tracks each current local id's packed words and live flag;
  // Compact() renumbers locals by survivor rank, so the reference
  // compacts the same way.
  Rng rng(27);
  const int bits = 64, k = 8;
  const int words_per_code = (bits + 63) / 64;
  PackedCodes base = PackedCodes::FromSignMatrix(RandomSignCodes(60, bits, &rng));
  std::vector<std::vector<uint64_t>> rows;  // indexed by current local id
  std::vector<bool> live;
  for (int i = 0; i < base.size(); ++i) {
    rows.emplace_back(base.code(i), base.code(i) + words_per_code);
    live.push_back(true);
  }
  std::unique_ptr<ShardIndex> index = MakeIndex(GetParam(), std::move(base));

  auto live_count = [&] {
    int count = 0;
    for (bool alive : live) count += alive ? 1 : 0;
    return count;
  };
  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(8, bits, &rng));

  for (int step = 0; step < 80; ++step) {
    const uint64_t op = rng.UniformInt(10);
    if (op < 4) {
      const int count = 1 + static_cast<int>(rng.UniformInt(5));
      PackedCodes batch =
          PackedCodes::FromSignMatrix(RandomSignCodes(count, bits, &rng));
      index->Append(batch);
      for (int i = 0; i < count; ++i) {
        rows.emplace_back(batch.code(i), batch.code(i) + words_per_code);
        live.push_back(true);
      }
    } else if (op < 8 && live_count() > 10) {
      int id;
      do {
        id = static_cast<int>(rng.UniformInt(rows.size()));
      } while (!live[static_cast<size_t>(id)]);
      ASSERT_TRUE(index->Remove(id));
      live[static_cast<size_t>(id)] = false;
    } else {
      std::unique_ptr<ShardIndex> compacted = index->Compact();
      index = std::move(compacted);
      std::vector<std::vector<uint64_t>> survivor_rows;
      for (size_t i = 0; i < rows.size(); ++i) {
        if (live[i]) survivor_rows.push_back(std::move(rows[i]));
      }
      rows = std::move(survivor_rows);
      live.assign(rows.size(), true);
      ASSERT_EQ(index->total_size(), static_cast<int>(rows.size()));
    }

    // Checkpoint: byte-identity with a fresh rebuild over survivors.
    std::vector<uint64_t> survivor_words;
    std::vector<int> rank_of_id(rows.size(), -1);
    int rank = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!live[i]) continue;
      survivor_words.insert(survivor_words.end(), rows[i].begin(),
                            rows[i].end());
      rank_of_id[i] = rank++;
    }
    LinearScanIndex truth(
        PackedCodes::FromRawWords(rank, bits, std::move(survivor_words)));
    ASSERT_EQ(index->size(), rank) << "step " << step;
    for (int q = 0; q < queries.size(); ++q) {
      const auto expect = truth.TopK(queries.code(q), k);
      const auto got = index->TopK(queries.code(q), k);
      ASSERT_EQ(expect.size(), got.size()) << "step " << step;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(expect[i].id, rank_of_id[static_cast<size_t>(got[i].id)])
            << "step " << step << " query " << q << " rank " << i;
        ASSERT_EQ(expect[i].distance, got[i].distance);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, ShardIndexContract,
                         ::testing::Values(Backend::kLinearScan,
                                           Backend::kMih));

TEST(LinearScanMutableTest, WithinRadiusSkipsTombstonedRows) {
  Rng rng(31);
  const int n = 100, bits = 64;
  Matrix db = RandomSignCodes(n, bits, &rng);
  LinearScanIndex scan(PackedCodes::FromSignMatrix(db));
  MultiIndexHashTable mih(PackedCodes::FromSignMatrix(db), 4);
  std::vector<int> removed = {2, 50, 99};
  for (int id : removed) {
    EXPECT_TRUE(scan.Remove(id));
    EXPECT_TRUE(mih.Remove(id));
  }
  for (int q = 0; q < 8; ++q) {
    PackedCodes pq =
        PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
    for (int r : {0, 8, 24, 64}) {
      const auto from_scan = scan.WithinRadius(pq.code(0), r);
      const auto from_mih = mih.WithinRadius(pq.code(0), r);
      ASSERT_EQ(from_scan.size(), from_mih.size()) << "r=" << r;
      for (size_t i = 0; i < from_scan.size(); ++i) {
        EXPECT_EQ(from_scan[i].id, from_mih[i].id);
        for (int dead : removed) EXPECT_NE(from_scan[i].id, dead);
      }
    }
  }
}

TEST(BatchScanTombstoneTest, WideCodesKernelPruneRespectsTombstones) {
  // 1024-bit codes engage the kernel-level early-abandon path
  // (>= 16 words); tombstoned rows must not surface even when their
  // distances were computed by the pruning kernel.
  Rng rng(32);
  const int n = 300, bits = 1024, k = 10;
  Matrix db = RandomSignCodes(n, bits, &rng);
  LinearScanIndex index(PackedCodes::FromSignMatrix(db));
  std::vector<int> removed;
  for (int id = 0; id < n; id += 7) {
    removed.push_back(id);
    ASSERT_TRUE(index.Remove(id));
  }
  LinearScanIndex truth(
      PackedCodes::FromSignMatrix(SurvivorRows(db, removed)));

  PackedCodes queries =
      PackedCodes::FromSignMatrix(RandomSignCodes(9, bits, &rng));
  const auto batched = index.TopKBatch(queries, k);
  for (int q = 0; q < queries.size(); ++q) {
    ExpectCompactedMatch(truth.TopK(queries.code(q), k),
                         batched[static_cast<size_t>(q)], removed);
  }
}

TEST(MihMutableTest, AppendKeepsRadiusSearchExact) {
  Rng rng(33);
  const int bits = 64;
  Matrix base = RandomSignCodes(150, bits, &rng);
  Matrix extra = RandomSignCodes(50, bits, &rng);
  MultiIndexHashTable mih(PackedCodes::FromSignMatrix(base), 4);
  mih.Append(PackedCodes::FromSignMatrix(extra));

  Matrix all(200, bits);
  for (int i = 0; i < 150; ++i)
    for (int c = 0; c < bits; ++c) all(i, c) = base(i, c);
  for (int i = 0; i < 50; ++i)
    for (int c = 0; c < bits; ++c) all(150 + i, c) = extra(i, c);
  LinearScanIndex truth(PackedCodes::FromSignMatrix(all));

  for (int q = 0; q < 8; ++q) {
    PackedCodes pq =
        PackedCodes::FromSignMatrix(RandomSignCodes(1, bits, &rng));
    for (int r : {0, 5, 10, 20}) {
      const auto expect = truth.WithinRadius(pq.code(0), r);
      const auto got = mih.WithinRadius(pq.code(0), r);
      ASSERT_EQ(expect.size(), got.size()) << "r=" << r;
      for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(expect[i].id, got[i].id);
        EXPECT_EQ(expect[i].distance, got[i].distance);
      }
    }
  }
}

TEST(NeighborHelpersTest, RemapRewritesIdsOnly) {
  std::vector<Neighbor> list = {{0, 1}, {3, 2}, {5, 2}};
  RemapNeighborIds(&list, [](int id) { return id + 100; });
  EXPECT_EQ(list[0].id, 100);
  EXPECT_EQ(list[1].id, 103);
  EXPECT_EQ(list[2].id, 105);
  EXPECT_EQ(list[0].distance, 1) << "distances untouched";
  EXPECT_TRUE(NeighborLess({1, 1}, {2, 1}));
  EXPECT_TRUE(NeighborLess({9, 1}, {2, 5}));
  EXPECT_FALSE(NeighborLess({2, 1}, {2, 1}));
}

}  // namespace
}  // namespace uhscm::index
