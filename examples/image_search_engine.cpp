// Image search engine: the deployment scenario the paper's introduction
// motivates — a large image database served under the two retrieval
// protocols, with latency numbers for both index structures.
//
//   $ ./build/examples/image_search_engine [database_size]
//
// Builds a NUS-WIDE-like multi-label corpus, trains a 64-bit UHSCM
// model, then serves queries through (a) exact Hamming ranking by linear
// popcount scan and (b) the hash-lookup protocol through a multi-index
// hash table, verifying both return identical radius results and
// reporting throughput.
#include <cstdio>
#include <cstdlib>

#include "baselines/registry.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/trainer.h"
#include "data/concept_vocab.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "index/linear_scan.h"
#include "index/multi_index_hash.h"
#include "index/packed_codes.h"
#include "vlp/simulated_vlp.h"

int main(int argc, char** argv) {
  using namespace uhscm;

  const int database_size = argc > 1 ? std::atoi(argv[1]) : 4000;
  std::printf("== image search engine demo (database of %d) ==\n",
              database_size);

  data::SemanticWorld world(11);
  data::SyntheticOptions options = data::DefaultOptionsFor("nuswide");
  options.sizes = {database_size, std::min(1000, database_size / 2), 100};
  Rng rng(12);
  data::Dataset dataset = data::MakeNusWideLike(&world, options, &rng);
  data::ConceptVocab vocab = data::MakeNusVocab(&world);
  vlp::SimulatedVlpModel vlp(&world);

  // Train the hashing model.
  Stopwatch train_watch;
  core::UhscmConfig config = core::DefaultConfigFor("nuswide", 64);
  core::UhscmTrainer trainer(&vlp, config);
  Result<core::UhscmModel> model = trainer.Train(
      dataset.pixels.SelectRows(dataset.split.train), vocab);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("model trained in %.1fs (%zu retained concepts)\n",
              train_watch.ElapsedSeconds(),
              model->retained_concepts.size());

  // Ingest: encode the database and build both index structures.
  Stopwatch ingest_watch;
  const linalg::Matrix db_codes =
      model->Encode(dataset.pixels.SelectRows(dataset.split.database));
  index::LinearScanIndex scan(index::PackedCodes::FromSignMatrix(db_codes));
  index::MultiIndexHashTable mih(
      index::PackedCodes::FromSignMatrix(db_codes), /*num_substrings=*/0);
  std::printf("ingested %d codes in %.2fs (MIH uses %d substrings)\n",
              scan.size(), ingest_watch.ElapsedSeconds(),
              mih.num_substrings());

  // Serve queries under both protocols.
  const linalg::Matrix query_codes =
      model->Encode(dataset.pixels.SelectRows(dataset.split.query));
  const index::PackedCodes packed_queries =
      index::PackedCodes::FromSignMatrix(query_codes);

  // (a) Hamming ranking: exact top-10 by linear scan.
  Stopwatch rank_watch;
  int relevant = 0;
  for (int q = 0; q < packed_queries.size(); ++q) {
    const int query_image = dataset.split.query[static_cast<size_t>(q)];
    for (const index::Neighbor& nb : scan.TopK(packed_queries.code(q), 10)) {
      if (dataset.Relevant(query_image,
                           dataset.split.database[static_cast<size_t>(nb.id)])) {
        ++relevant;
      }
    }
  }
  const double rank_seconds = rank_watch.ElapsedSeconds();
  std::printf("[Hamming ranking]  P@10 = %.3f, %.0f queries/s\n",
              relevant / (10.0 * packed_queries.size()),
              packed_queries.size() / rank_seconds);

  // (b) Hash lookup: radius-2 candidates through MIH, verified against
  // the scan.
  const int radius = 8;
  Stopwatch lookup_watch;
  size_t total_hits = 0;
  for (int q = 0; q < packed_queries.size(); ++q) {
    total_hits += mih.WithinRadius(packed_queries.code(q), radius).size();
  }
  const double lookup_seconds = lookup_watch.ElapsedSeconds();
  // Cross-check exactness on a few queries.
  for (int q = 0; q < std::min(5, packed_queries.size()); ++q) {
    const auto a = scan.WithinRadius(packed_queries.code(q), radius);
    const auto b = mih.WithinRadius(packed_queries.code(q), radius);
    if (a.size() != b.size()) {
      std::fprintf(stderr, "MIH mismatch on query %d!\n", q);
      return 1;
    }
  }
  std::printf(
      "[hash lookup r=%d] %.1f hits/query, %.0f queries/s (exact, verified "
      "against scan)\n",
      radius, static_cast<double>(total_hits) / packed_queries.size(),
      packed_queries.size() / lookup_seconds);
  return 0;
}
