// Near-duplicate finder: the hash-lookup protocol applied to duplicate
// detection — a classic production use of binary codes (small Hamming
// radius => near-identical content).
//
//   $ ./build/examples/dedup_finder
//
// Plants exact near-duplicates (same image, slightly perturbed) in a
// MIRFlickr-like corpus, trains UHSCM, and shows that radius-r lookups
// over the multi-index hash table surface the planted duplicates with
// high recall while touching only a small slice of the database.
#include <cstdio>
#include <set>

#include "common/rng.h"
#include "core/augment.h"
#include "core/trainer.h"
#include "data/concept_vocab.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "index/multi_index_hash.h"
#include "index/packed_codes.h"
#include "vlp/simulated_vlp.h"

int main() {
  using namespace uhscm;

  data::SemanticWorld world(31);
  data::SyntheticOptions options = data::DefaultOptionsFor("flickr");
  options.sizes = {3000, 900, 50};
  Rng rng(32);
  data::Dataset dataset = data::MakeMirFlickrLike(&world, options, &rng);

  // Plant duplicates: queries become light perturbations of database
  // images (re-encode, tiny noise) — the "same photo, re-exported"
  // scenario.
  const int kDuplicates = 40;
  core::AugmentOptions perturb;
  perturb.noise = 0.05f;
  perturb.dropout = 0.0f;
  perturb.intensity_jitter = 0.05f;
  std::vector<int> duplicate_of(static_cast<size_t>(kDuplicates));
  for (int i = 0; i < kDuplicates; ++i) {
    const int src = static_cast<int>(
        rng.UniformInt(dataset.split.database.size()));
    duplicate_of[static_cast<size_t>(i)] = src;
    linalg::Matrix one(1, dataset.pixels.cols());
    std::copy(dataset.pixels.Row(dataset.split.database[static_cast<size_t>(src)]),
              dataset.pixels.Row(dataset.split.database[static_cast<size_t>(src)]) +
                  dataset.pixels.cols(),
              one.Row(0));
    const linalg::Matrix perturbed = core::AugmentPixels(one, perturb, &rng);
    dataset.pixels.SetRow(dataset.split.query[static_cast<size_t>(i)],
                          perturbed.RowVector(0));
  }

  data::ConceptVocab vocab = data::MakeNusVocab(&world);
  vlp::SimulatedVlpModel vlp(&world);
  core::UhscmConfig config = core::DefaultConfigFor("flickr", 64);
  core::UhscmTrainer trainer(&vlp, config);
  Result<core::UhscmModel> model = trainer.Train(
      dataset.pixels.SelectRows(dataset.split.train), vocab);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  const linalg::Matrix db_codes =
      model->Encode(dataset.pixels.SelectRows(dataset.split.database));
  const linalg::Matrix query_codes =
      model->Encode(dataset.pixels.SelectRows(dataset.split.query));
  index::MultiIndexHashTable mih(
      index::PackedCodes::FromSignMatrix(db_codes), 0);
  const index::PackedCodes packed_queries =
      index::PackedCodes::FromSignMatrix(query_codes);

  std::printf("planted %d near-duplicates in a database of %d\n",
              kDuplicates, mih.size());
  for (int radius : {0, 2, 4, 8}) {
    int found = 0;
    size_t candidates = 0;
    for (int q = 0; q < kDuplicates; ++q) {
      const auto hits = mih.WithinRadius(packed_queries.code(q), radius);
      candidates += hits.size();
      for (const index::Neighbor& nb : hits) {
        if (nb.id == duplicate_of[static_cast<size_t>(q)]) {
          ++found;
          break;
        }
      }
    }
    std::printf(
        "radius %d: recall %.2f  (%.1f results/query, %.2f%% of database)\n",
        radius, static_cast<double>(found) / kDuplicates,
        static_cast<double>(candidates) / kDuplicates,
        100.0 * static_cast<double>(candidates) / kDuplicates / mih.size());
  }
  return 0;
}
