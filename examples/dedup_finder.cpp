// Near-duplicate finder: the corpus×corpus self-join engine applied to
// duplicate detection — a classic production use of binary codes (small
// Hamming radius => near-identical content).
//
//   $ ./build/examples/dedup_finder
//
// Plants exact near-duplicates (same image, slightly perturbed — the
// "same photo, re-exported" scenario) inside a MIRFlickr-like corpus,
// trains UHSCM, and shows that one DedupGroups call over the packed
// database codes surfaces the planted clusters with high recall, while
// the blocked join prunes most of the O(n²) pair space. Also
// cross-checks the engine against the naive per-pair reference and
// exits non-zero on any drift — the example doubles as a smoke test.
#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "core/augment.h"
#include "core/trainer.h"
#include "data/concept_vocab.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "index/packed_codes.h"
#include "index/self_join.h"
#include "vlp/simulated_vlp.h"

int main() {
  using namespace uhscm;

  data::SemanticWorld world(31);
  data::SyntheticOptions options = data::DefaultOptionsFor("flickr");
  options.sizes = {3000, 900, 50};
  Rng rng(32);
  data::Dataset dataset = data::MakeMirFlickrLike(&world, options, &rng);

  data::ConceptVocab vocab = data::MakeNusVocab(&world);
  vlp::SimulatedVlpModel vlp(&world);
  core::UhscmConfig config = core::DefaultConfigFor("flickr", 64);
  core::UhscmTrainer trainer(&vlp, config);
  Result<core::UhscmModel> model = trainer.Train(
      dataset.pixels.SelectRows(dataset.split.train), vocab);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  // Build the corpus: every database image, plus kDuplicates perturbed
  // re-exports appended at the end. Row db_n + i duplicates row
  // duplicate_of[i], so the planted ground truth is exact.
  const int kDuplicates = 40;
  core::AugmentOptions perturb;
  perturb.noise = 0.05f;
  perturb.dropout = 0.0f;
  perturb.intensity_jitter = 0.05f;
  const int db_n = static_cast<int>(dataset.split.database.size());
  linalg::Matrix corpus_pixels(db_n + kDuplicates, dataset.pixels.cols());
  for (int i = 0; i < db_n; ++i) {
    corpus_pixels.SetRow(
        i, dataset.pixels.RowVector(
               dataset.split.database[static_cast<size_t>(i)]));
  }
  std::vector<int> duplicate_of(static_cast<size_t>(kDuplicates));
  for (int i = 0; i < kDuplicates; ++i) {
    const int src =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(db_n)));
    duplicate_of[static_cast<size_t>(i)] = src;
    linalg::Matrix one(1, corpus_pixels.cols());
    one.SetRow(0, corpus_pixels.RowVector(src));
    const linalg::Matrix perturbed = core::AugmentPixels(one, perturb, &rng);
    corpus_pixels.SetRow(db_n + i, perturbed.RowVector(0));
  }

  const index::PackedCodes codes =
      index::PackedCodes::FromSignMatrix(model->Encode(corpus_pixels));
  std::printf("planted %d near-duplicates in a corpus of %d (%d bits)\n",
              kDuplicates, codes.size(), codes.bits());

  for (int radius : {0, 2, 4, 8}) {
    index::DedupOptions dedup;
    dedup.radius = radius;
    index::SelfJoinOptions join;
    const index::DedupGroupsResult got =
        index::DedupGroups(codes, dedup, join);

    // Recall: a planted pair counts as found when both rows landed in
    // the same group.
    int found = 0;
    std::vector<int> group_of(static_cast<size_t>(codes.size()), -1);
    for (size_t g = 0; g < got.groups.size(); ++g) {
      for (int row : got.groups[g]) {
        group_of[static_cast<size_t>(row)] = static_cast<int>(g);
      }
    }
    for (int i = 0; i < kDuplicates; ++i) {
      const int copy = db_n + i;
      const int src = duplicate_of[static_cast<size_t>(i)];
      if (group_of[static_cast<size_t>(copy)] >= 0 &&
          group_of[static_cast<size_t>(copy)] ==
              group_of[static_cast<size_t>(src)]) {
        ++found;
      }
    }
    std::printf(
        "radius %d: recall %.2f  (%zu groups, %lld rows clustered, "
        "%.1f%% of pairs pruned)\n",
        radius, static_cast<double>(found) / kDuplicates,
        got.groups.size(), static_cast<long long>(got.rows_clustered),
        got.join.pairs_total > 0
            ? 100.0 * static_cast<double>(got.join.pairs_pruned) /
                  static_cast<double>(got.join.pairs_total)
            : 0.0);

    // Drift check: the blocked engine must reproduce the naive per-pair
    // reference exactly — same pairs, same groups.
    const std::vector<index::JoinPair> want_pairs =
        index::ReferenceRadiusJoin(codes, radius, nullptr);
    const index::DedupGroupsResult want =
        index::ReducePairsToGroups(want_pairs, dedup.link);
    if (got.groups != want.groups ||
        got.rows_clustered != want.rows_clustered) {
      std::fprintf(stderr,
                   "FATAL: engine groups diverge from the naive "
                   "reference at radius %d\n",
                   radius);
      return 1;
    }
  }
  std::printf("engine matches the naive O(n^2) reference at every radius\n");
  return 0;
}
