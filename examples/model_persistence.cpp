// Model persistence: train once, ship the artifacts, serve elsewhere —
// the offline/online split every production deployment of a hashing
// model uses.
//
//   $ ./build/examples/model_persistence
//
// Offline: trains UHSCM, saves the hashing network and the packed
// database codes to disk. Online: a fresh process state reloads both,
// verifies the reloaded network encodes bit-for-bit identically, and
// serves queries against the reloaded code database.
#include <cstdio>
#include <string>

#include "core/trainer.h"
#include "data/concept_vocab.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "index/linear_scan.h"
#include "io/serialize.h"
#include "vlp/simulated_vlp.h"

int main() {
  using namespace uhscm;

  const std::string model_path = "/tmp/uhscm_model.bin";
  const std::string codes_path = "/tmp/uhscm_codes.bin";

  // ---------------- offline: train and persist ----------------
  data::SemanticWorld world(41);
  data::SyntheticOptions options = data::DefaultOptionsFor("cifar");
  options.sizes = {1500, 500, 50};
  Rng rng(42);
  data::Dataset dataset = data::MakeCifar10Like(&world, options, &rng);
  data::ConceptVocab vocab = data::MakeNusVocab(&world);
  vlp::SimulatedVlpModel vlp(&world);

  core::UhscmConfig config = core::DefaultConfigFor("cifar", 64);
  core::UhscmTrainer trainer(&vlp, config);
  Result<core::UhscmModel> model = trainer.Train(
      dataset.pixels.SelectRows(dataset.split.train), vocab);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  const linalg::Matrix db_codes =
      model->Encode(dataset.pixels.SelectRows(dataset.split.database));
  Status st = io::SaveHashingNetwork(*model->network, model_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  st = io::SavePackedCodes(index::PackedCodes::FromSignMatrix(db_codes),
                           codes_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("offline: saved model -> %s, %d codes -> %s\n",
              model_path.c_str(), db_codes.rows(), codes_path.c_str());

  // ---------------- online: reload and serve ----------------
  Result<std::unique_ptr<core::HashingNetwork>> reloaded =
      io::LoadHashingNetwork(model_path);
  Result<index::PackedCodes> reloaded_codes = io::LoadPackedCodes(codes_path);
  if (!reloaded.ok() || !reloaded_codes.ok()) {
    std::fprintf(stderr, "reload failed\n");
    return 1;
  }

  // Bit-exactness check: the reloaded network must reproduce the
  // training-time codes exactly.
  const linalg::Matrix recheck = (*reloaded)->EncodeBinary(
      dataset.pixels.SelectRows(dataset.split.database));
  for (size_t i = 0; i < recheck.size(); ++i) {
    if (recheck.data()[i] != db_codes.data()[i]) {
      std::fprintf(stderr, "reloaded model diverges at element %zu!\n", i);
      return 1;
    }
  }
  std::printf("online: reloaded model encodes bit-for-bit identically\n");

  index::LinearScanIndex scan(std::move(reloaded_codes.ValueOrDie()));
  const linalg::Matrix query_codes = (*reloaded)->EncodeBinary(
      dataset.pixels.SelectRows(dataset.split.query));
  const index::PackedCodes packed_queries =
      index::PackedCodes::FromSignMatrix(query_codes);

  int relevant = 0;
  for (int q = 0; q < packed_queries.size(); ++q) {
    const int query_image = dataset.split.query[static_cast<size_t>(q)];
    for (const index::Neighbor& nb : scan.TopK(packed_queries.code(q), 10)) {
      if (dataset.Relevant(query_image,
                           dataset.split.database[static_cast<size_t>(nb.id)])) {
        ++relevant;
      }
    }
  }
  std::printf("online: P@10 over %d queries = %.3f\n", packed_queries.size(),
              relevant / (10.0 * packed_queries.size()));

  std::remove(model_path.c_str());
  std::remove(codes_path.c_str());
  return 0;
}
