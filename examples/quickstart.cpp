// Quickstart: train UHSCM on a synthetic CIFAR10-like dataset and run a
// few retrieval queries.
//
//   $ ./build/examples/quickstart
//
// Walks the whole pipeline of the paper in ~40 lines of user code:
//   1. build a semantic world + dataset (the data substrate),
//   2. collect a concept vocabulary and a simulated VLP model,
//   3. train UHSCM (Algorithm 1),
//   4. encode database + queries and rank by Hamming distance.
#include <cstdio>

#include "baselines/registry.h"
#include "common/rng.h"
#include "core/trainer.h"
#include "data/concept_vocab.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "index/linear_scan.h"
#include "index/packed_codes.h"
#include "vlp/simulated_vlp.h"

int main() {
  using namespace uhscm;

  // 1. Data: a world of visual concepts and a CIFAR10-like dataset.
  data::SemanticWorld world(/*seed=*/2023);
  data::SyntheticOptions options = data::DefaultOptionsFor("cifar");
  options.sizes = {1000, 400, 20};  // database / train / queries
  Rng rng(7);
  data::Dataset dataset = data::MakeCifar10Like(&world, options, &rng);

  // 2. The randomly collected concept set C (the paper uses NUS-WIDE's 81
  //    categories) and the VLP model that scores images against prompts.
  data::ConceptVocab vocab = data::MakeNusVocab(&world);
  vlp::SimulatedVlpModel vlp(&world);

  // 3. Train: semantic concept mining -> denoising -> similarity matrix
  //    -> hashing network (Eq. 11).
  core::UhscmConfig config = core::DefaultConfigFor("cifar", /*bits=*/64);
  core::UhscmTrainer trainer(&vlp, config);
  const linalg::Matrix train_pixels =
      dataset.pixels.SelectRows(dataset.split.train);
  Result<core::UhscmModel> model = trainer.Train(train_pixels, vocab);
  if (!model.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("trained UHSCM: %zu/%d concepts survived denoising, "
              "final loss %.4f\n",
              model->retained_concepts.size(), vocab.size(),
              model->epoch_losses.back());

  // 4. Encode and search.
  const linalg::Matrix db_codes =
      model->Encode(dataset.pixels.SelectRows(dataset.split.database));
  const linalg::Matrix query_codes =
      model->Encode(dataset.pixels.SelectRows(dataset.split.query));

  index::LinearScanIndex scan(index::PackedCodes::FromSignMatrix(db_codes));
  const index::PackedCodes packed_queries =
      index::PackedCodes::FromSignMatrix(query_codes);

  const std::vector<int> primary = data::PrimaryClassIndex(dataset);
  int relevant = 0;
  const int top_k = 5;
  for (int q = 0; q < packed_queries.size(); ++q) {
    const int query_image = dataset.split.query[static_cast<size_t>(q)];
    std::printf("query %2d (%s):", q,
                dataset.class_names[static_cast<size_t>(
                    primary[static_cast<size_t>(query_image)])].c_str());
    for (const index::Neighbor& nb :
         scan.TopK(packed_queries.code(q), top_k)) {
      const int db_image =
          dataset.split.database[static_cast<size_t>(nb.id)];
      const bool rel = dataset.Relevant(query_image, db_image);
      relevant += rel ? 1 : 0;
      std::printf(" %s(d=%d)%s",
                  dataset.class_names[static_cast<size_t>(
                      primary[static_cast<size_t>(db_image)])].c_str(),
                  nb.distance, rel ? "" : "!");
    }
    std::printf("\n");
  }
  std::printf("precision@%d over %d queries: %.3f\n", top_k,
              packed_queries.size(),
              static_cast<double>(relevant) /
                  (top_k * packed_queries.size()));
  return 0;
}
