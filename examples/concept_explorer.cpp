// Concept explorer: a walkthrough of the semantic similarity generator
// (§3.3 of the paper) — the part of UHSCM that happens *before* any
// hashing.
//
//   $ ./build/examples/concept_explorer
//
// Shows, step by step:
//   - the VLP scores and mined concept distributions for sample images,
//   - the per-concept argmax frequencies f(c_i) (Eq. 4),
//   - which concepts the Eq. 5 band filter keeps vs. discards and why,
//   - how similarity matrix quality improves after denoising, measured
//     against the (hidden) ground-truth labels.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/rng.h"
#include "core/concept_denoiser.h"
#include "core/concept_miner.h"
#include "core/similarity.h"
#include "data/concept_vocab.h"
#include "linalg/ops.h"
#include "data/synthetic.h"
#include "data/world.h"
#include "vlp/simulated_vlp.h"

namespace {

/// Mean similar-pair Q minus mean dissimilar-pair Q against ground truth.
double SimilarityQuality(const uhscm::data::Dataset& dataset,
                         const std::vector<int>& ids,
                         const uhscm::linalg::Matrix& q) {
  double sim = 0.0, dis = 0.0;
  int sim_n = 0, dis_n = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    for (size_t j = i + 1; j < ids.size(); ++j) {
      if (dataset.Relevant(ids[i], ids[j])) {
        sim += q(static_cast<int>(i), static_cast<int>(j));
        ++sim_n;
      } else {
        dis += q(static_cast<int>(i), static_cast<int>(j));
        ++dis_n;
      }
    }
  }
  return sim / std::max(sim_n, 1) - dis / std::max(dis_n, 1);
}

}  // namespace

int main() {
  using namespace uhscm;

  data::SemanticWorld world(21);
  data::SyntheticOptions options = data::DefaultOptionsFor("cifar");
  options.sizes = {800, 400, 40};
  Rng rng(22);
  data::Dataset dataset = data::MakeCifar10Like(&world, options, &rng);
  data::ConceptVocab vocab = data::MakeNusVocab(&world);
  vlp::SimulatedVlpModel vlp(&world);

  const linalg::Matrix train_pixels =
      dataset.pixels.SelectRows(dataset.split.train);

  // --- Step 1: mine concept distributions (Eq. 1-2). ---
  core::ConceptMiner miner(&vlp);
  const linalg::Matrix d = miner.MineDistributions(train_pixels, vocab);
  std::printf("mined %dx%d concept distribution matrix (tau = 3m = %g)\n",
              d.rows(), d.cols(), 3.0 * vocab.size());

  const std::vector<int> primary = data::PrimaryClassIndex(dataset);
  std::printf("\nsample images and their top-3 mined concepts:\n");
  for (int i = 0; i < 5; ++i) {
    const int image = dataset.split.train[static_cast<size_t>(i)];
    std::vector<int> order(static_cast<size_t>(vocab.size()));
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                      [&](int a, int b) { return d(i, a) > d(i, b); });
    std::printf("  image %4d (true: %-6s) ->", image,
                dataset.class_names[static_cast<size_t>(
                    primary[static_cast<size_t>(image)])].c_str());
    for (int r = 0; r < 3; ++r) {
      std::printf(" %s:%.2f", vocab.names[static_cast<size_t>(order[static_cast<size_t>(r)])].c_str(),
                  d(i, order[static_cast<size_t>(r)]));
    }
    std::printf("\n");
  }

  // --- Step 2: concept frequencies and the Eq. 5 band filter. ---
  const core::DenoiseResult denoised = core::DenoiseConcepts(d, vocab);
  const double n = d.rows();
  const double m = vocab.size();
  std::printf("\nEq.5 keep-band: %.1f <= f(c) <= %.1f  (n=%d, m=%d)\n",
              0.5 * n / m, 0.5 * n, d.rows(), vocab.size());
  std::printf("kept %d / %d concepts:\n", denoised.vocab.size(),
              vocab.size());
  for (int j = 0; j < vocab.size(); ++j) {
    const bool kept =
        std::binary_search(denoised.kept_positions.begin(),
                           denoised.kept_positions.end(), j);
    if (kept) {
      std::printf("  keep    %-12s f=%d\n", vocab.names[static_cast<size_t>(j)].c_str(),
                  denoised.frequencies[static_cast<size_t>(j)]);
    }
  }
  int shown = 0;
  std::printf("discarded (first 10):\n");
  for (int j = 0; j < vocab.size() && shown < 10; ++j) {
    const bool kept =
        std::binary_search(denoised.kept_positions.begin(),
                           denoised.kept_positions.end(), j);
    if (!kept) {
      std::printf("  discard %-12s f=%d\n", vocab.names[static_cast<size_t>(j)].c_str(),
                  denoised.frequencies[static_cast<size_t>(j)]);
      ++shown;
    }
  }

  // --- Step 3: similarity quality, before vs. after denoising. ---
  // The second mining pass keeps tau pinned to the original vocabulary
  // size, exactly as the trainer does (ConceptMinerOptions).
  const linalg::Matrix q_raw = core::SimilarityFromDistributions(d);
  core::ConceptMinerOptions pinned;
  pinned.tau_concepts_override = vocab.size();
  core::ConceptMiner pinned_miner(&vlp, pinned);
  const linalg::Matrix d_clean =
      pinned_miner.MineDistributions(train_pixels, denoised.vocab);
  const linalg::Matrix q_clean = core::SimilarityFromDistributions(d_clean);
  const linalg::Matrix feat = vlp.EncodeImages(train_pixels);
  linalg::Matrix q_feat = linalg::SelfCosine(feat);
  for (size_t i = 0; i < q_feat.size(); ++i) {
    q_feat.data()[i] = 0.5f * (1.0f + q_feat.data()[i]);
  }

  std::printf("\nsimilarity quality (mean similar-pair Q minus mean "
              "dissimilar-pair Q; higher is better):\n");
  std::printf("  feature cosine (UHSCM_IF)     : %.3f\n",
              SimilarityQuality(dataset, dataset.split.train, q_feat));
  std::printf("  raw concepts   (UHSCM_w/o_de) : %.3f\n",
              SimilarityQuality(dataset, dataset.split.train, q_raw));
  std::printf("  denoised concepts (UHSCM)     : %.3f\n",
              SimilarityQuality(dataset, dataset.split.train, q_clean));
  return 0;
}
