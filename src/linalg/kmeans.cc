#include "linalg/kmeans.h"

#include <cmath>
#include <limits>

#include "common/thread_pool.h"
#include "linalg/ops.h"

namespace uhscm::linalg {

namespace {

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance to the nearest chosen centroid.
Matrix PlusPlusInit(const Matrix& x, int k, Rng* rng) {
  const int n = x.rows();
  const int d = x.cols();
  Matrix centroids(k, d);
  std::vector<float> min_d2(static_cast<size_t>(n),
                            std::numeric_limits<float>::max());

  int first = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
  std::copy(x.Row(first), x.Row(first) + d, centroids.Row(0));

  for (int c = 1; c < k; ++c) {
    const float* prev = centroids.Row(c - 1);
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const float d2 = SquaredDistance(x.Row(i), prev, d);
      if (d2 < min_d2[static_cast<size_t>(i)]) min_d2[static_cast<size_t>(i)] = d2;
      total += min_d2[static_cast<size_t>(i)];
    }
    int chosen = n - 1;
    if (total > 0.0) {
      double target = rng->Uniform() * total;
      double acc = 0.0;
      for (int i = 0; i < n; ++i) {
        acc += min_d2[static_cast<size_t>(i)];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<int>(rng->UniformInt(static_cast<uint64_t>(n)));
    }
    std::copy(x.Row(chosen), x.Row(chosen) + d, centroids.Row(c));
  }
  return centroids;
}

}  // namespace

Result<KMeansResult> KMeans(const Matrix& x, int k, Rng* rng,
                            const KMeansOptions& options) {
  const int n = x.rows();
  const int d = x.cols();
  if (k <= 0 || k > n) {
    return Status::InvalidArgument("KMeans: k must be in [1, n]");
  }

  KMeansResult result;
  if (options.plus_plus_init) {
    result.centroids = PlusPlusInit(x, k, rng);
  } else {
    std::vector<int> seeds = rng->SampleWithoutReplacement(n, k);
    result.centroids = x.SelectRows(seeds);
  }
  result.assignments.assign(static_cast<size_t>(n), 0);

  double prev_inertia = std::numeric_limits<double>::max();
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment step (parallel over points).
    std::vector<float> point_d2(static_cast<size_t>(n), 0.0f);
    ParallelFor(n, [&](int i) {
      const float* xi = x.Row(i);
      float best = std::numeric_limits<float>::max();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        const float d2 = SquaredDistance(xi, result.centroids.Row(c), d);
        if (d2 < best) {
          best = d2;
          best_c = c;
        }
      }
      result.assignments[static_cast<size_t>(i)] = best_c;
      point_d2[static_cast<size_t>(i)] = best;
    });

    double inertia = 0.0;
    for (float v : point_d2) inertia += v;
    result.inertia = inertia;

    // Update step.
    Matrix sums(k, d);
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (int i = 0; i < n; ++i) {
      const int c = result.assignments[static_cast<size_t>(i)];
      ++counts[static_cast<size_t>(c)];
      float* srow = sums.Row(c);
      const float* xi = x.Row(i);
      for (int j = 0; j < d; ++j) srow[j] += xi[j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) {
        // Re-seed an empty cluster at the point farthest from its centroid.
        int far_i = 0;
        float far_d = -1.0f;
        for (int i = 0; i < n; ++i) {
          if (point_d2[static_cast<size_t>(i)] > far_d) {
            far_d = point_d2[static_cast<size_t>(i)];
            far_i = i;
          }
        }
        std::copy(x.Row(far_i), x.Row(far_i) + d, result.centroids.Row(c));
        continue;
      }
      const float inv = 1.0f / static_cast<float>(counts[static_cast<size_t>(c)]);
      float* crow = result.centroids.Row(c);
      const float* srow = sums.Row(c);
      for (int j = 0; j < d; ++j) crow[j] = srow[j] * inv;
    }

    if (prev_inertia < std::numeric_limits<double>::max()) {
      const double rel =
          (prev_inertia - inertia) / std::max(prev_inertia, 1e-12);
      if (rel >= 0.0 && rel < options.rel_tolerance) break;
    }
    prev_inertia = inertia;
  }
  return result;
}

}  // namespace uhscm::linalg
