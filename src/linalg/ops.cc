#include "linalg/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#endif

#include "common/status.h"
#include "common/thread_pool.h"
#include "index/hamming_kernels.h"

namespace uhscm::linalg {

namespace {

// Cache-blocking parameters shared by the matmul variants. An i-block of
// C rows is one parallel work unit; within it the inner dimension is
// walked in kKC-sized panels so the B panel streamed by the micro-kernel
// stays L2-resident across the block's rows instead of thrashing per row.
constexpr int kMC = 32;   // C rows per parallel block (upper bound)
constexpr int kKC = 128;  // inner-dimension panel

// Row-block size for one parallel unit: kMC for cache reuse, shrunk when
// the matrix is too short to hand the pool ~4 units per thread —
// otherwise a 64-row product on a 16-core host would degenerate to two
// work units.
inline int PickRowBlock(int m) {
  static const int threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  return std::max(1, std::min(kMC, m / (4 * threads)));
}

// Micro-kernel: crow += sum_t avs[t] * brows[t][0..n), four inner-dim
// slices fused per pass so each crow[j] is loaded/stored once per four
// multiply-adds (register tiling), with a 4-wide j unroll for the
// vectorizer. The old per-slice axpy with its `av == 0` skip is gone:
// on dense data that branch mispredicts and starves the FMA ports, and
// genuinely sparse inputs lose nothing measurable to four fused slices.
inline void Axpy4(float* crow, const float* avs, const float* const* brows,
                  int n) {
  const float a0 = avs[0], a1 = avs[1], a2 = avs[2], a3 = avs[3];
  const float* b0 = brows[0];
  const float* b1 = brows[1];
  const float* b2 = brows[2];
  const float* b3 = brows[3];
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
    crow[j + 1] += a0 * b0[j + 1] + a1 * b1[j + 1] + a2 * b2[j + 1] +
                   a3 * b3[j + 1];
    crow[j + 2] += a0 * b0[j + 2] + a1 * b1[j + 2] + a2 * b2[j + 2] +
                   a3 * b3[j + 2];
    crow[j + 3] += a0 * b0[j + 3] + a1 * b1[j + 3] + a2 * b2[j + 3] +
                   a3 * b3[j + 3];
  }
  for (; j < n; ++j) {
    crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
  }
}

inline void Axpy1(float* crow, float av, const float* brow, int n) {
  for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
}

// ------------------------------------------------ packed-panel GEMM
//
// GotoBLAS-style structure: the inner dimension is cut into kGemmKC-deep
// slabs; per slab, B is packed once into contiguous kNR-wide j-panels
// (so the micro-kernel streams it linearly), and each parallel unit
// packs its kGemmMC x kGemmKC block of A into kMR-tall i-panels. The
// micro-kernel then computes a kMR x kNR tile of C held entirely in
// registers — 12 ymm accumulators on the AVX2+FMA path — with one
// broadcast per A element and two loads per B step. Edge tiles route
// through a zero-padded scratch tile so the hot kernel never branches.

constexpr int kMR = 6;        // micro-tile rows (A panel height)
constexpr int kNR = 16;       // micro-tile cols (B panel width, 2 x ymm)
constexpr int kGemmKC = 256;  // inner-dimension slab depth
constexpr int kGemmMC = 96;   // A block rows per parallel unit (kMR * 16)

/// Below this many multiply-adds the packing overhead beats the
/// micro-kernel win; such products stay on the cache-blocked loop.
constexpr int64_t kPackedMinFlops = int64_t{1} << 18;

/// c[0..kMR) x [0..kNR) += A-panel * B-panel over kc inner steps.
/// `ap` is kMR floats per step, `bp` kNR floats per step, `c` row-major
/// with leading dimension ldc. Full tiles only.
using MicroKernelFn = void (*)(int kc, const float* ap, const float* bp,
                               float* c, int ldc);

/// Portable micro-kernel: fixed-extent inner loops over a stack tile the
/// compiler can keep vectorized with baseline SSE.
void Micro6x16Scalar(int kc, const float* ap, const float* bp, float* c,
                     int ldc) {
  float acc[kMR][kNR];
  for (int r = 0; r < kMR; ++r) {
    for (int j = 0; j < kNR; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (int p = 0; p < kc; ++p) {
    const float* b = bp + p * kNR;
    const float* a = ap + p * kMR;
    for (int r = 0; r < kMR; ++r) {
      const float av = a[r];
      for (int j = 0; j < kNR; ++j) acc[r][j] += av * b[j];
    }
  }
  for (int r = 0; r < kMR; ++r) {
    for (int j = 0; j < kNR; ++j) c[r * ldc + j] = acc[r][j];
  }
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define UHSCM_HAVE_GEMM_AVX2 1
#define UHSCM_GEMM_FN __attribute__((target("avx2,fma")))

/// AVX2+FMA micro-kernel: 6 x 16 C tile in 12 ymm accumulators, two B
/// vectors reused across six broadcast-FMA rows per inner step.
UHSCM_GEMM_FN void Micro6x16Avx2(int kc, const float* ap, const float* bp,
                                 float* c, int ldc) {
  __m256 c00 = _mm256_loadu_ps(c + 0 * ldc), c01 = _mm256_loadu_ps(c + 0 * ldc + 8);
  __m256 c10 = _mm256_loadu_ps(c + 1 * ldc), c11 = _mm256_loadu_ps(c + 1 * ldc + 8);
  __m256 c20 = _mm256_loadu_ps(c + 2 * ldc), c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
  __m256 c30 = _mm256_loadu_ps(c + 3 * ldc), c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
  __m256 c40 = _mm256_loadu_ps(c + 4 * ldc), c41 = _mm256_loadu_ps(c + 4 * ldc + 8);
  __m256 c50 = _mm256_loadu_ps(c + 5 * ldc), c51 = _mm256_loadu_ps(c + 5 * ldc + 8);
  for (int p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNR);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNR + 8);
    const float* a = ap + p * kMR;
    __m256 av;
    av = _mm256_broadcast_ss(a + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(a + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(a + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(a + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_broadcast_ss(a + 4);
    c40 = _mm256_fmadd_ps(av, b0, c40);
    c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_broadcast_ss(a + 5);
    c50 = _mm256_fmadd_ps(av, b0, c50);
    c51 = _mm256_fmadd_ps(av, b1, c51);
  }
  _mm256_storeu_ps(c + 0 * ldc, c00);
  _mm256_storeu_ps(c + 0 * ldc + 8, c01);
  _mm256_storeu_ps(c + 1 * ldc, c10);
  _mm256_storeu_ps(c + 1 * ldc + 8, c11);
  _mm256_storeu_ps(c + 2 * ldc, c20);
  _mm256_storeu_ps(c + 2 * ldc + 8, c21);
  _mm256_storeu_ps(c + 3 * ldc, c30);
  _mm256_storeu_ps(c + 3 * ldc + 8, c31);
  _mm256_storeu_ps(c + 4 * ldc, c40);
  _mm256_storeu_ps(c + 4 * ldc + 8, c41);
  _mm256_storeu_ps(c + 5 * ldc, c50);
  _mm256_storeu_ps(c + 5 * ldc + 8, c51);
}
#endif  // x86_64

MicroKernelFn PickMicroKernel() {
#if defined(UHSCM_HAVE_GEMM_AVX2)
  if (PackedGemmAvailable()) return &Micro6x16Avx2;
#endif
  return &Micro6x16Scalar;
}

/// Packs the kc-deep slice of logical A rows [i0, i0+mc) into kMR-tall
/// i-panels: panel ip holds, per inner step p, the kMR values
/// A(i0+ip*kMR+r, p0+p), zero-padded past mc. `trans` reads A stored as
/// (k x m) row-major, i.e. logical A(i, p) = a[p * lda + i].
void PackAPanels(const float* a, int lda, bool trans, int i0, int mc, int p0,
                 int kc, float* dst) {
  const int panels = (mc + kMR - 1) / kMR;
  for (int ip = 0; ip < panels; ++ip) {
    float* panel = dst + static_cast<size_t>(ip) * kc * kMR;
    const int rows = std::min(kMR, mc - ip * kMR);
    if (trans) {
      for (int p = 0; p < kc; ++p) {
        const float* src = a + static_cast<size_t>(p0 + p) * lda + i0 + ip * kMR;
        float* out = panel + p * kMR;
        for (int r = 0; r < rows; ++r) out[r] = src[r];
        for (int r = rows; r < kMR; ++r) out[r] = 0.0f;
      }
    } else {
      for (int r = 0; r < rows; ++r) {
        const float* src = a + static_cast<size_t>(i0 + ip * kMR + r) * lda + p0;
        for (int p = 0; p < kc; ++p) panel[p * kMR + r] = src[p];
      }
      for (int r = rows; r < kMR; ++r) {
        for (int p = 0; p < kc; ++p) panel[p * kMR + r] = 0.0f;
      }
    }
  }
}

/// Packs the kc-deep slice of all n logical B columns into kNR-wide
/// j-panels: panel jp holds, per inner step p, the kNR values
/// B(p0+p, jp*kNR+j), zero-padded past n. `trans` reads B stored as
/// (n x k) row-major, i.e. logical B(p, j) = b[j * ldb + p].
void PackBPanels(const float* b, int ldb, bool trans, int p0, int kc, int n,
                 float* dst) {
  const int panels = (n + kNR - 1) / kNR;
  for (int jp = 0; jp < panels; ++jp) {
    float* panel = dst + static_cast<size_t>(jp) * kc * kNR;
    const int cols = std::min(kNR, n - jp * kNR);
    if (trans) {
      for (int j = 0; j < cols; ++j) {
        const float* src = b + static_cast<size_t>(jp * kNR + j) * ldb + p0;
        for (int p = 0; p < kc; ++p) panel[p * kNR + j] = src[p];
      }
      for (int j = cols; j < kNR; ++j) {
        for (int p = 0; p < kc; ++p) panel[p * kNR + j] = 0.0f;
      }
    } else {
      for (int p = 0; p < kc; ++p) {
        const float* src = b + static_cast<size_t>(p0 + p) * ldb + jp * kNR;
        float* out = panel + p * kNR;
        for (int j = 0; j < cols; ++j) out[j] = src[j];
        for (int j = cols; j < kNR; ++j) out[j] = 0.0f;
      }
    }
  }
}

/// C(m x n, ldc) += A * B over the packed panels. The A/B transpose
/// flags select the packing reads; the compute loop is identical for all
/// three MatMul entry points.
void PackedGemmInto(int m, int n, int k, const float* a, int lda, bool a_trans,
                    const float* b, int ldb, bool b_trans, float* c, int ldc) {
  static const MicroKernelFn micro = PickMicroKernel();
  const int jpanels = (n + kNR - 1) / kNR;
  std::vector<float> bpack(static_cast<size_t>(jpanels) * kGemmKC * kNR);
  for (int p0 = 0; p0 < k; p0 += kGemmKC) {
    const int kc = std::min(kGemmKC, k - p0);
    PackBPanels(b, ldb, b_trans, p0, kc, n, bpack.data());
    const int iblocks = (m + kGemmMC - 1) / kGemmMC;
    ParallelFor(iblocks, [&](int ib) {
      const int i0 = ib * kGemmMC;
      const int mc = std::min(kGemmMC, m - i0);
      const int ipanels = (mc + kMR - 1) / kMR;
      std::vector<float> apack(static_cast<size_t>(ipanels) * kc * kMR);
      PackAPanels(a, lda, a_trans, i0, mc, p0, kc, apack.data());
      alignas(32) float scratch[kMR * kNR];
      for (int jp = 0; jp < jpanels; ++jp) {
        const float* bp = bpack.data() + static_cast<size_t>(jp) * kc * kNR;
        const int j0 = jp * kNR;
        const int cols = std::min(kNR, n - j0);
        for (int ip = 0; ip < ipanels; ++ip) {
          const float* ap = apack.data() + static_cast<size_t>(ip) * kc * kMR;
          const int i = i0 + ip * kMR;
          const int rows = std::min(kMR, m - i);
          if (rows == kMR && cols == kNR) {
            micro(kc, ap, bp, c + static_cast<size_t>(i) * ldc + j0, ldc);
          } else {
            // Edge tile: accumulate into a zeroed scratch tile, then add
            // the valid region back — the micro-kernel stays branch-free.
            std::memset(scratch, 0, sizeof(scratch));
            micro(kc, ap, bp, scratch, kNR);
            for (int r = 0; r < rows; ++r) {
              float* crow = c + static_cast<size_t>(i + r) * ldc + j0;
              for (int j = 0; j < cols; ++j) crow[j] += scratch[r * kNR + j];
            }
          }
        }
      }
    });
  }
}

}  // namespace

bool PackedGemmAvailable() {
#if defined(UHSCM_HAVE_GEMM_AVX2)
  static const bool available = [] {
    if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
      return false;
    }
    // Honor the kernel-tier override so the forced-scalar CI legs cover
    // the portable micro-kernel alongside the scalar Hamming tier.
    return index::ActiveKernelTier() != index::KernelTier::kScalar;
  }();
  return available;
#else
  return false;
#endif
}

Matrix MatMulBlocked(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.cols() == b.rows(), "MatMul: inner dims mismatch");
  Matrix c(a.rows(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  const int mc = PickRowBlock(m);
  const int iblocks = (m + mc - 1) / mc;
  ParallelFor(iblocks, [&](int ib) {
    const int i0 = ib * mc;
    const int i1 = std::min(i0 + mc, m);
    for (int p0 = 0; p0 < k; p0 += kKC) {
      const int p1 = std::min(p0 + kKC, k);
      for (int i = i0; i < i1; ++i) {
        const float* arow = a.Row(i);
        float* crow = c.Row(i);
        int p = p0;
        for (; p + 4 <= p1; p += 4) {
          const float avs[4] = {arow[p], arow[p + 1], arow[p + 2],
                                arow[p + 3]};
          const float* brows[4] = {b.Row(p), b.Row(p + 1), b.Row(p + 2),
                                   b.Row(p + 3)};
          Axpy4(crow, avs, brows, n);
        }
        for (; p < p1; ++p) Axpy1(crow, arow[p], b.Row(p), n);
      }
    }
  });
  return c;
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.cols() == b.rows(), "MatMul: inner dims mismatch");
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  if (int64_t{m} * k * n < kPackedMinFlops) return MatMulBlocked(a, b);
  Matrix c(m, n);
  PackedGemmInto(m, n, k, a.data(), k, /*a_trans=*/false, b.data(), n,
                 /*b_trans=*/false, c.Row(0), n);
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.rows() == b.rows(), "MatMulTransA: dims mismatch");
  const int pm = a.cols();
  const int pk = a.rows();
  const int pn = b.cols();
  if (int64_t{pm} * pk * pn >= kPackedMinFlops) {
    Matrix c(pm, pn);
    PackedGemmInto(pm, pn, pk, a.data(), pm, /*a_trans=*/true, b.data(), pn,
                   /*b_trans=*/false, c.Row(0), pn);
    return c;
  }
  Matrix c(a.cols(), b.cols());
  const int m = a.cols();
  const int k = a.rows();
  const int n = b.cols();
  // Same blocked structure with the roles transposed:
  // c(i,j) = sum_p a(p,i) * b(p,j), so the A reads are column-strided but
  // the B panel reuse and C-row register tiling are identical to MatMul.
  const int mc = PickRowBlock(m);
  const int iblocks = (m + mc - 1) / mc;
  ParallelFor(iblocks, [&](int ib) {
    const int i0 = ib * mc;
    const int i1 = std::min(i0 + mc, m);
    for (int p0 = 0; p0 < k; p0 += kKC) {
      const int p1 = std::min(p0 + kKC, k);
      for (int i = i0; i < i1; ++i) {
        float* crow = c.Row(i);
        int p = p0;
        for (; p + 4 <= p1; p += 4) {
          const float avs[4] = {a(p, i), a(p + 1, i), a(p + 2, i),
                                a(p + 3, i)};
          const float* brows[4] = {b.Row(p), b.Row(p + 1), b.Row(p + 2),
                                   b.Row(p + 3)};
          Axpy4(crow, avs, brows, n);
        }
        for (; p < p1; ++p) Axpy1(crow, a(p, i), b.Row(p), n);
      }
    }
  });
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.cols() == b.cols(), "MatMulTransB: dims mismatch");
  if (int64_t{a.rows()} * a.cols() * b.rows() >= kPackedMinFlops) {
    Matrix c(a.rows(), b.rows());
    PackedGemmInto(a.rows(), b.rows(), a.cols(), a.data(), a.cols(),
                   /*a_trans=*/false, b.data(), b.cols(), /*b_trans=*/true,
                   c.Row(0), b.rows());
    return c;
  }
  Matrix c(a.rows(), b.rows());
  const int k = a.cols();
  const int nb = b.rows();
  ParallelFor(a.rows(), [&](int i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    // Four dot products share one streaming pass over arow (register
    // tiling along the output row); remainder rows fall back to Dot.
    int j = 0;
    for (; j + 4 <= nb; j += 4) {
      const float* b0 = b.Row(j);
      const float* b1 = b.Row(j + 1);
      const float* b2 = b.Row(j + 2);
      const float* b3 = b.Row(j + 3);
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      crow[j] = s0;
      crow[j + 1] = s1;
      crow[j + 2] = s2;
      crow[j + 3] = s3;
    }
    for (; j < nb; ++j) crow[j] = Dot(arow, b.Row(j), k);
  });
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  UHSCM_CHECK(static_cast<int>(x.size()) == a.cols(),
              "MatVec: size mismatch");
  Vector y(static_cast<size_t>(a.rows()), 0.0f);
  // Rows fan out on the pool like the other matmul variants, but only
  // once the product is large enough to amortize pool dispatch — small
  // systems stay on the serial path.
  constexpr int64_t kParallelMinFlops = int64_t{1} << 16;
  if (int64_t{a.rows()} * a.cols() < kParallelMinFlops) {
    for (int i = 0; i < a.rows(); ++i) {
      y[static_cast<size_t>(i)] = Dot(a.Row(i), x.data(), a.cols());
    }
  } else {
    ParallelFor(a.rows(), [&](int i) {
      y[static_cast<size_t>(i)] = Dot(a.Row(i), x.data(), a.cols());
    });
  }
  return y;
}

float Dot(const float* a, const float* b, int n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return s0 + s1 + s2 + s3;
}

float Dot(const Vector& a, const Vector& b) {
  UHSCM_CHECK(a.size() == b.size(), "Dot: size mismatch");
  return Dot(a.data(), b.data(), static_cast<int>(a.size()));
}

float Norm2(const float* a, int n) {
  return std::sqrt(std::max(0.0f, Dot(a, a, n)));
}

float Norm2(const Vector& a) { return Norm2(a.data(), static_cast<int>(a.size())); }

float SquaredDistance(const float* a, const float* b, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float CosineSimilarity(const float* a, const float* b, int n) {
  const float na = Norm2(a, n);
  const float nb = Norm2(b, n);
  if (na < 1e-12f || nb < 1e-12f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

void NormalizeRowsL2(Matrix* m) {
  for (int r = 0; r < m->rows(); ++r) {
    float* row = m->Row(r);
    const float norm = Norm2(row, m->cols());
    if (norm > 1e-12f) {
      const float inv = 1.0f / norm;
      for (int c = 0; c < m->cols(); ++c) row[c] *= inv;
    }
  }
}

Matrix SoftmaxRows(const Matrix& m, float tau) {
  Matrix out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r) {
    const float* src = m.Row(r);
    float* dst = out.Row(r);
    float max_v = src[0];
    for (int c = 1; c < m.cols(); ++c) max_v = std::max(max_v, src[c]);
    double sum = 0.0;
    for (int c = 0; c < m.cols(); ++c) {
      const double e = std::exp(static_cast<double>(tau) * (src[c] - max_v));
      dst[c] = static_cast<float>(e);
      sum += e;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int c = 0; c < m.cols(); ++c) dst[c] *= inv;
  }
  return out;
}

Matrix PairwiseCosine(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.cols() == b.cols(), "PairwiseCosine: dims mismatch");
  Matrix an = a;
  Matrix bn = b;
  NormalizeRowsL2(&an);
  NormalizeRowsL2(&bn);
  return MatMulTransB(an, bn);
}

Matrix SelfCosine(const Matrix& a) {
  Matrix an = a;
  NormalizeRowsL2(&an);
  Matrix s = MatMulTransB(an, an);
  // Clamp tiny asymmetries from float accumulation.
  for (int i = 0; i < s.rows(); ++i) s(i, i) = 1.0f;
  return s;
}

Vector ColumnMeans(const Matrix& m) {
  Vector mean(static_cast<size_t>(m.cols()), 0.0f);
  if (m.rows() == 0) return mean;
  for (int r = 0; r < m.rows(); ++r) {
    const float* row = m.Row(r);
    for (int c = 0; c < m.cols(); ++c) mean[static_cast<size_t>(c)] += row[c];
  }
  const float inv = 1.0f / static_cast<float>(m.rows());
  for (auto& v : mean) v *= inv;
  return mean;
}

void CenterRows(Matrix* m, const Vector& mean) {
  UHSCM_CHECK(static_cast<int>(mean.size()) == m->cols(),
              "CenterRows: size mismatch");
  for (int r = 0; r < m->rows(); ++r) {
    float* row = m->Row(r);
    for (int c = 0; c < m->cols(); ++c) row[c] -= mean[static_cast<size_t>(c)];
  }
}

Matrix Covariance(const Matrix& m) {
  UHSCM_CHECK(m.rows() >= 2, "Covariance needs at least 2 rows");
  Matrix centered = m;
  CenterRows(&centered, ColumnMeans(m));
  Matrix cov = MatMulTransA(centered, centered);
  cov.Scale(1.0f / static_cast<float>(m.rows() - 1));
  return cov;
}

Matrix Sign(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  const float* src = m.data();
  float* dst = out.data();
  for (size_t i = 0; i < m.size(); ++i) {
    dst[i] = src[i] < 0.0f ? -1.0f : 1.0f;
  }
  return out;
}

Matrix Tanh(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  const float* src = m.data();
  float* dst = out.data();
  for (size_t i = 0; i < m.size(); ++i) dst[i] = std::tanh(src[i]);
  return out;
}

float Mean(const Matrix& m) {
  if (m.size() == 0) return 0.0f;
  double sum = 0.0;
  for (size_t i = 0; i < m.size(); ++i) sum += m.data()[i];
  return static_cast<float>(sum / static_cast<double>(m.size()));
}

}  // namespace uhscm::linalg
