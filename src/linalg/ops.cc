#include "linalg/ops.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"
#include "common/thread_pool.h"

namespace uhscm::linalg {

Matrix MatMul(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.cols() == b.rows(), "MatMul: inner dims mismatch");
  Matrix c(a.rows(), b.cols());
  const int k = a.cols();
  const int n = b.cols();
  ParallelFor(a.rows(), [&](int i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.Row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.rows() == b.rows(), "MatMulTransA: dims mismatch");
  Matrix c(a.cols(), b.cols());
  const int n = b.cols();
  // Accumulate outer products serially per k-slice; parallelize over output
  // rows by transposing the loop: c(i,j) = sum_p a(p,i) * b(p,j).
  ParallelFor(a.cols(), [&](int i) {
    float* crow = c.Row(i);
    for (int p = 0; p < a.rows(); ++p) {
      const float av = a(p, i);
      if (av == 0.0f) continue;
      const float* brow = b.Row(p);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.cols() == b.cols(), "MatMulTransB: dims mismatch");
  Matrix c(a.rows(), b.rows());
  const int k = a.cols();
  ParallelFor(a.rows(), [&](int i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    for (int j = 0; j < b.rows(); ++j) {
      crow[j] = Dot(arow, b.Row(j), k);
    }
  });
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  UHSCM_CHECK(static_cast<int>(x.size()) == a.cols(),
              "MatVec: size mismatch");
  Vector y(static_cast<size_t>(a.rows()), 0.0f);
  for (int i = 0; i < a.rows(); ++i) {
    y[static_cast<size_t>(i)] = Dot(a.Row(i), x.data(), a.cols());
  }
  return y;
}

float Dot(const float* a, const float* b, int n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return s0 + s1 + s2 + s3;
}

float Dot(const Vector& a, const Vector& b) {
  UHSCM_CHECK(a.size() == b.size(), "Dot: size mismatch");
  return Dot(a.data(), b.data(), static_cast<int>(a.size()));
}

float Norm2(const float* a, int n) {
  return std::sqrt(std::max(0.0f, Dot(a, a, n)));
}

float Norm2(const Vector& a) { return Norm2(a.data(), static_cast<int>(a.size())); }

float SquaredDistance(const float* a, const float* b, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float CosineSimilarity(const float* a, const float* b, int n) {
  const float na = Norm2(a, n);
  const float nb = Norm2(b, n);
  if (na < 1e-12f || nb < 1e-12f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

void NormalizeRowsL2(Matrix* m) {
  for (int r = 0; r < m->rows(); ++r) {
    float* row = m->Row(r);
    const float norm = Norm2(row, m->cols());
    if (norm > 1e-12f) {
      const float inv = 1.0f / norm;
      for (int c = 0; c < m->cols(); ++c) row[c] *= inv;
    }
  }
}

Matrix SoftmaxRows(const Matrix& m, float tau) {
  Matrix out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r) {
    const float* src = m.Row(r);
    float* dst = out.Row(r);
    float max_v = src[0];
    for (int c = 1; c < m.cols(); ++c) max_v = std::max(max_v, src[c]);
    double sum = 0.0;
    for (int c = 0; c < m.cols(); ++c) {
      const double e = std::exp(static_cast<double>(tau) * (src[c] - max_v));
      dst[c] = static_cast<float>(e);
      sum += e;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int c = 0; c < m.cols(); ++c) dst[c] *= inv;
  }
  return out;
}

Matrix PairwiseCosine(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.cols() == b.cols(), "PairwiseCosine: dims mismatch");
  Matrix an = a;
  Matrix bn = b;
  NormalizeRowsL2(&an);
  NormalizeRowsL2(&bn);
  return MatMulTransB(an, bn);
}

Matrix SelfCosine(const Matrix& a) {
  Matrix an = a;
  NormalizeRowsL2(&an);
  Matrix s = MatMulTransB(an, an);
  // Clamp tiny asymmetries from float accumulation.
  for (int i = 0; i < s.rows(); ++i) s(i, i) = 1.0f;
  return s;
}

Vector ColumnMeans(const Matrix& m) {
  Vector mean(static_cast<size_t>(m.cols()), 0.0f);
  if (m.rows() == 0) return mean;
  for (int r = 0; r < m.rows(); ++r) {
    const float* row = m.Row(r);
    for (int c = 0; c < m.cols(); ++c) mean[static_cast<size_t>(c)] += row[c];
  }
  const float inv = 1.0f / static_cast<float>(m.rows());
  for (auto& v : mean) v *= inv;
  return mean;
}

void CenterRows(Matrix* m, const Vector& mean) {
  UHSCM_CHECK(static_cast<int>(mean.size()) == m->cols(),
              "CenterRows: size mismatch");
  for (int r = 0; r < m->rows(); ++r) {
    float* row = m->Row(r);
    for (int c = 0; c < m->cols(); ++c) row[c] -= mean[static_cast<size_t>(c)];
  }
}

Matrix Covariance(const Matrix& m) {
  UHSCM_CHECK(m.rows() >= 2, "Covariance needs at least 2 rows");
  Matrix centered = m;
  CenterRows(&centered, ColumnMeans(m));
  Matrix cov = MatMulTransA(centered, centered);
  cov.Scale(1.0f / static_cast<float>(m.rows() - 1));
  return cov;
}

Matrix Sign(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  const float* src = m.data();
  float* dst = out.data();
  for (size_t i = 0; i < m.size(); ++i) {
    dst[i] = src[i] < 0.0f ? -1.0f : 1.0f;
  }
  return out;
}

Matrix Tanh(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  const float* src = m.data();
  float* dst = out.data();
  for (size_t i = 0; i < m.size(); ++i) dst[i] = std::tanh(src[i]);
  return out;
}

float Mean(const Matrix& m) {
  if (m.size() == 0) return 0.0f;
  double sum = 0.0;
  for (size_t i = 0; i < m.size(); ++i) sum += m.data()[i];
  return static_cast<float>(sum / static_cast<double>(m.size()));
}

}  // namespace uhscm::linalg
