#include "linalg/ops.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"

namespace uhscm::linalg {

namespace {

// Cache-blocking parameters shared by the matmul variants. An i-block of
// C rows is one parallel work unit; within it the inner dimension is
// walked in kKC-sized panels so the B panel streamed by the micro-kernel
// stays L2-resident across the block's rows instead of thrashing per row.
constexpr int kMC = 32;   // C rows per parallel block (upper bound)
constexpr int kKC = 128;  // inner-dimension panel

// Row-block size for one parallel unit: kMC for cache reuse, shrunk when
// the matrix is too short to hand the pool ~4 units per thread —
// otherwise a 64-row product on a 16-core host would degenerate to two
// work units.
inline int PickRowBlock(int m) {
  static const int threads =
      std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  return std::max(1, std::min(kMC, m / (4 * threads)));
}

// Micro-kernel: crow += sum_t avs[t] * brows[t][0..n), four inner-dim
// slices fused per pass so each crow[j] is loaded/stored once per four
// multiply-adds (register tiling), with a 4-wide j unroll for the
// vectorizer. The old per-slice axpy with its `av == 0` skip is gone:
// on dense data that branch mispredicts and starves the FMA ports, and
// genuinely sparse inputs lose nothing measurable to four fused slices.
inline void Axpy4(float* crow, const float* avs, const float* const* brows,
                  int n) {
  const float a0 = avs[0], a1 = avs[1], a2 = avs[2], a3 = avs[3];
  const float* b0 = brows[0];
  const float* b1 = brows[1];
  const float* b2 = brows[2];
  const float* b3 = brows[3];
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
    crow[j + 1] += a0 * b0[j + 1] + a1 * b1[j + 1] + a2 * b2[j + 1] +
                   a3 * b3[j + 1];
    crow[j + 2] += a0 * b0[j + 2] + a1 * b1[j + 2] + a2 * b2[j + 2] +
                   a3 * b3[j + 2];
    crow[j + 3] += a0 * b0[j + 3] + a1 * b1[j + 3] + a2 * b2[j + 3] +
                   a3 * b3[j + 3];
  }
  for (; j < n; ++j) {
    crow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
  }
}

inline void Axpy1(float* crow, float av, const float* brow, int n) {
  for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.cols() == b.rows(), "MatMul: inner dims mismatch");
  Matrix c(a.rows(), b.cols());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  const int mc = PickRowBlock(m);
  const int iblocks = (m + mc - 1) / mc;
  ParallelFor(iblocks, [&](int ib) {
    const int i0 = ib * mc;
    const int i1 = std::min(i0 + mc, m);
    for (int p0 = 0; p0 < k; p0 += kKC) {
      const int p1 = std::min(p0 + kKC, k);
      for (int i = i0; i < i1; ++i) {
        const float* arow = a.Row(i);
        float* crow = c.Row(i);
        int p = p0;
        for (; p + 4 <= p1; p += 4) {
          const float avs[4] = {arow[p], arow[p + 1], arow[p + 2],
                                arow[p + 3]};
          const float* brows[4] = {b.Row(p), b.Row(p + 1), b.Row(p + 2),
                                   b.Row(p + 3)};
          Axpy4(crow, avs, brows, n);
        }
        for (; p < p1; ++p) Axpy1(crow, arow[p], b.Row(p), n);
      }
    }
  });
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.rows() == b.rows(), "MatMulTransA: dims mismatch");
  Matrix c(a.cols(), b.cols());
  const int m = a.cols();
  const int k = a.rows();
  const int n = b.cols();
  // Same blocked structure with the roles transposed:
  // c(i,j) = sum_p a(p,i) * b(p,j), so the A reads are column-strided but
  // the B panel reuse and C-row register tiling are identical to MatMul.
  const int mc = PickRowBlock(m);
  const int iblocks = (m + mc - 1) / mc;
  ParallelFor(iblocks, [&](int ib) {
    const int i0 = ib * mc;
    const int i1 = std::min(i0 + mc, m);
    for (int p0 = 0; p0 < k; p0 += kKC) {
      const int p1 = std::min(p0 + kKC, k);
      for (int i = i0; i < i1; ++i) {
        float* crow = c.Row(i);
        int p = p0;
        for (; p + 4 <= p1; p += 4) {
          const float avs[4] = {a(p, i), a(p + 1, i), a(p + 2, i),
                                a(p + 3, i)};
          const float* brows[4] = {b.Row(p), b.Row(p + 1), b.Row(p + 2),
                                   b.Row(p + 3)};
          Axpy4(crow, avs, brows, n);
        }
        for (; p < p1; ++p) Axpy1(crow, a(p, i), b.Row(p), n);
      }
    }
  });
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.cols() == b.cols(), "MatMulTransB: dims mismatch");
  Matrix c(a.rows(), b.rows());
  const int k = a.cols();
  const int nb = b.rows();
  ParallelFor(a.rows(), [&](int i) {
    const float* arow = a.Row(i);
    float* crow = c.Row(i);
    // Four dot products share one streaming pass over arow (register
    // tiling along the output row); remainder rows fall back to Dot.
    int j = 0;
    for (; j + 4 <= nb; j += 4) {
      const float* b0 = b.Row(j);
      const float* b1 = b.Row(j + 1);
      const float* b2 = b.Row(j + 2);
      const float* b3 = b.Row(j + 3);
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      crow[j] = s0;
      crow[j + 1] = s1;
      crow[j + 2] = s2;
      crow[j + 3] = s3;
    }
    for (; j < nb; ++j) crow[j] = Dot(arow, b.Row(j), k);
  });
  return c;
}

Vector MatVec(const Matrix& a, const Vector& x) {
  UHSCM_CHECK(static_cast<int>(x.size()) == a.cols(),
              "MatVec: size mismatch");
  Vector y(static_cast<size_t>(a.rows()), 0.0f);
  // Rows fan out on the pool like the other matmul variants, but only
  // once the product is large enough to amortize pool dispatch — small
  // systems stay on the serial path.
  constexpr int64_t kParallelMinFlops = int64_t{1} << 16;
  if (int64_t{a.rows()} * a.cols() < kParallelMinFlops) {
    for (int i = 0; i < a.rows(); ++i) {
      y[static_cast<size_t>(i)] = Dot(a.Row(i), x.data(), a.cols());
    }
  } else {
    ParallelFor(a.rows(), [&](int i) {
      y[static_cast<size_t>(i)] = Dot(a.Row(i), x.data(), a.cols());
    });
  }
  return y;
}

float Dot(const float* a, const float* b, int n) {
  float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += a[i] * b[i];
    s1 += a[i + 1] * b[i + 1];
    s2 += a[i + 2] * b[i + 2];
    s3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) s0 += a[i] * b[i];
  return s0 + s1 + s2 + s3;
}

float Dot(const Vector& a, const Vector& b) {
  UHSCM_CHECK(a.size() == b.size(), "Dot: size mismatch");
  return Dot(a.data(), b.data(), static_cast<int>(a.size()));
}

float Norm2(const float* a, int n) {
  return std::sqrt(std::max(0.0f, Dot(a, a, n)));
}

float Norm2(const Vector& a) { return Norm2(a.data(), static_cast<int>(a.size())); }

float SquaredDistance(const float* a, const float* b, int n) {
  float s = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

float CosineSimilarity(const float* a, const float* b, int n) {
  const float na = Norm2(a, n);
  const float nb = Norm2(b, n);
  if (na < 1e-12f || nb < 1e-12f) return 0.0f;
  return Dot(a, b, n) / (na * nb);
}

void NormalizeRowsL2(Matrix* m) {
  for (int r = 0; r < m->rows(); ++r) {
    float* row = m->Row(r);
    const float norm = Norm2(row, m->cols());
    if (norm > 1e-12f) {
      const float inv = 1.0f / norm;
      for (int c = 0; c < m->cols(); ++c) row[c] *= inv;
    }
  }
}

Matrix SoftmaxRows(const Matrix& m, float tau) {
  Matrix out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r) {
    const float* src = m.Row(r);
    float* dst = out.Row(r);
    float max_v = src[0];
    for (int c = 1; c < m.cols(); ++c) max_v = std::max(max_v, src[c]);
    double sum = 0.0;
    for (int c = 0; c < m.cols(); ++c) {
      const double e = std::exp(static_cast<double>(tau) * (src[c] - max_v));
      dst[c] = static_cast<float>(e);
      sum += e;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int c = 0; c < m.cols(); ++c) dst[c] *= inv;
  }
  return out;
}

Matrix PairwiseCosine(const Matrix& a, const Matrix& b) {
  UHSCM_CHECK(a.cols() == b.cols(), "PairwiseCosine: dims mismatch");
  Matrix an = a;
  Matrix bn = b;
  NormalizeRowsL2(&an);
  NormalizeRowsL2(&bn);
  return MatMulTransB(an, bn);
}

Matrix SelfCosine(const Matrix& a) {
  Matrix an = a;
  NormalizeRowsL2(&an);
  Matrix s = MatMulTransB(an, an);
  // Clamp tiny asymmetries from float accumulation.
  for (int i = 0; i < s.rows(); ++i) s(i, i) = 1.0f;
  return s;
}

Vector ColumnMeans(const Matrix& m) {
  Vector mean(static_cast<size_t>(m.cols()), 0.0f);
  if (m.rows() == 0) return mean;
  for (int r = 0; r < m.rows(); ++r) {
    const float* row = m.Row(r);
    for (int c = 0; c < m.cols(); ++c) mean[static_cast<size_t>(c)] += row[c];
  }
  const float inv = 1.0f / static_cast<float>(m.rows());
  for (auto& v : mean) v *= inv;
  return mean;
}

void CenterRows(Matrix* m, const Vector& mean) {
  UHSCM_CHECK(static_cast<int>(mean.size()) == m->cols(),
              "CenterRows: size mismatch");
  for (int r = 0; r < m->rows(); ++r) {
    float* row = m->Row(r);
    for (int c = 0; c < m->cols(); ++c) row[c] -= mean[static_cast<size_t>(c)];
  }
}

Matrix Covariance(const Matrix& m) {
  UHSCM_CHECK(m.rows() >= 2, "Covariance needs at least 2 rows");
  Matrix centered = m;
  CenterRows(&centered, ColumnMeans(m));
  Matrix cov = MatMulTransA(centered, centered);
  cov.Scale(1.0f / static_cast<float>(m.rows() - 1));
  return cov;
}

Matrix Sign(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  const float* src = m.data();
  float* dst = out.data();
  for (size_t i = 0; i < m.size(); ++i) {
    dst[i] = src[i] < 0.0f ? -1.0f : 1.0f;
  }
  return out;
}

Matrix Tanh(const Matrix& m) {
  Matrix out(m.rows(), m.cols());
  const float* src = m.data();
  float* dst = out.data();
  for (size_t i = 0; i < m.size(); ++i) dst[i] = std::tanh(src[i]);
  return out;
}

float Mean(const Matrix& m) {
  if (m.size() == 0) return 0.0f;
  double sum = 0.0;
  for (size_t i = 0; i < m.size(); ++i) sum += m.data()[i];
  return static_cast<float>(sum / static_cast<double>(m.size()));
}

}  // namespace uhscm::linalg
