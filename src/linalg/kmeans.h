#ifndef UHSCM_LINALG_KMEANS_H_
#define UHSCM_LINALG_KMEANS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace uhscm::linalg {

/// Result of a Lloyd's-iterations run.
struct KMeansResult {
  /// k x d centroid matrix.
  Matrix centroids;
  /// Per-row cluster assignment (size n).
  std::vector<int> assignments;
  /// Final within-cluster sum of squared distances.
  double inertia = 0.0;
  /// Number of Lloyd iterations executed.
  int iterations = 0;
};

/// Options for KMeans.
struct KMeansOptions {
  int max_iterations = 100;
  /// Stop when inertia improves by less than this relative amount.
  double rel_tolerance = 1e-5;
  /// Use k-means++ seeding (recommended); otherwise uniform random rows.
  bool plus_plus_init = true;
};

/// \brief Lloyd's k-means with k-means++ seeding.
///
/// Substrates: AGH anchors, the UHSCM_cN denoising-by-clustering ablation
/// (Table 2 rows 8-12), and the synthetic dataset sanity tests.
///
/// \param x n x d data (rows are points).
/// \param k number of clusters, 1 <= k <= n.
Result<KMeansResult> KMeans(const Matrix& x, int k, Rng* rng,
                            const KMeansOptions& options = {});

}  // namespace uhscm::linalg

#endif  // UHSCM_LINALG_KMEANS_H_
