#include "linalg/pca.h"

#include "linalg/eigen.h"
#include "linalg/ops.h"

namespace uhscm::linalg {

Matrix PcaModel::Transform(const Matrix& x) const {
  Matrix centered = x;
  CenterRows(&centered, mean);
  return MatMul(centered, components);
}

Result<PcaModel> FitPca(const Matrix& x, int k) {
  if (k <= 0 || k > x.cols()) {
    return Status::InvalidArgument("FitPca: k must be in [1, d]");
  }
  if (x.rows() < 2) {
    return Status::InvalidArgument("FitPca: need at least 2 rows");
  }
  PcaModel model;
  model.mean = ColumnMeans(x);
  Matrix cov = Covariance(x);
  Result<EigenDecomposition> eig = TopKEigen(cov, k);
  if (!eig.ok()) return eig.status();
  model.components = std::move(eig.ValueOrDie().eigenvectors);
  model.explained_variance = std::move(eig.ValueOrDie().eigenvalues);
  return model;
}

}  // namespace uhscm::linalg
