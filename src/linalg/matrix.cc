#include "linalg/matrix.h"

#include <cmath>

#include "common/string_util.h"

namespace uhscm::linalg {

Matrix::Matrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0f) {
  UHSCM_CHECK(rows >= 0 && cols >= 0, "Matrix dims must be non-negative");
}

Matrix::Matrix(int rows, int cols, float fill) : Matrix(rows, cols) {
  Fill(fill);
}

Matrix Matrix::FromRowMajor(int rows, int cols, std::vector<float> data) {
  UHSCM_CHECK(data.size() ==
                  static_cast<size_t>(rows) * static_cast<size_t>(cols),
              "FromRowMajor: buffer size mismatch");
  Matrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.data_ = std::move(data);
  return m;
}

Matrix Matrix::RandomNormal(int rows, int cols, Rng* rng, float stddev) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) {
    v = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return m;
}

Matrix Matrix::RandomUniform(int rows, int cols, Rng* rng, float lo,
                             float hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) {
    v = static_cast<float>(rng->Uniform(lo, hi));
  }
  return m;
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

std::vector<float> Matrix::RowVector(int r) const {
  UHSCM_CHECK(r >= 0 && r < rows_, "RowVector: row out of range");
  return std::vector<float>(Row(r), Row(r) + cols_);
}

std::vector<float> Matrix::ColVector(int c) const {
  UHSCM_CHECK(c >= 0 && c < cols_, "ColVector: column out of range");
  std::vector<float> out(static_cast<size_t>(rows_));
  for (int r = 0; r < rows_; ++r) out[static_cast<size_t>(r)] = (*this)(r, c);
  return out;
}

void Matrix::SetRow(int r, const std::vector<float>& v) {
  UHSCM_CHECK(r >= 0 && r < rows_, "SetRow: row out of range");
  UHSCM_CHECK(static_cast<int>(v.size()) == cols_, "SetRow: size mismatch");
  std::copy(v.begin(), v.end(), Row(r));
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    const float* src = Row(r);
    for (int c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

Matrix Matrix::SelectRows(const std::vector<int>& row_indices) const {
  Matrix out(static_cast<int>(row_indices.size()), cols_);
  for (size_t i = 0; i < row_indices.size(); ++i) {
    const int r = row_indices[i];
    UHSCM_CHECK(r >= 0 && r < rows_, "SelectRows: row out of range");
    std::copy(Row(r), Row(r) + cols_, out.Row(static_cast<int>(i)));
  }
  return out;
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Scale(float factor) {
  for (auto& v : data_) v *= factor;
}

void Matrix::Add(const Matrix& other) {
  UHSCM_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "Add: shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::AddScaled(const Matrix& other, float factor) {
  UHSCM_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "AddScaled: shape mismatch");
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += factor * other.data_[i];
  }
}

float Matrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(sum));
}

std::string Matrix::DebugString(int max_rows, int max_cols) const {
  std::string out = StrFormat("Matrix %dx%d\n", rows_, cols_);
  const int rr = std::min(rows_, max_rows);
  const int cc = std::min(cols_, max_cols);
  for (int r = 0; r < rr; ++r) {
    out += "  [";
    for (int c = 0; c < cc; ++c) {
      out += StrFormat("%s%8.4f", c ? ", " : "", (*this)(r, c));
    }
    if (cc < cols_) out += ", ...";
    out += "]\n";
  }
  if (rr < rows_) out += "  ...\n";
  return out;
}

}  // namespace uhscm::linalg
