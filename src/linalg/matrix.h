#ifndef UHSCM_LINALG_MATRIX_H_
#define UHSCM_LINALG_MATRIX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace uhscm::linalg {

/// \brief Dense row-major float matrix.
///
/// The single numeric container used throughout the library: images are
/// rows of a Matrix, concept distributions are rows of a Matrix, hash codes
/// before packing are rows of a Matrix. Kept intentionally simple — the
/// heavy kernels live in ops.h so they can be profiled and parallelized
/// independently of the container.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(int rows, int cols);

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(int rows, int cols, float fill);

  /// Builds from a flat row-major buffer. Precondition:
  /// data.size() == rows * cols.
  static Matrix FromRowMajor(int rows, int cols, std::vector<float> data);

  /// i.i.d. N(0, stddev) entries.
  static Matrix RandomNormal(int rows, int cols, Rng* rng,
                             float stddev = 1.0f);

  /// i.i.d. U(lo, hi) entries.
  static Matrix RandomUniform(int rows, int cols, Rng* rng, float lo = 0.0f,
                              float hi = 1.0f);

  /// Identity matrix of size n.
  static Matrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  size_t size() const { return data_.size(); }

  float& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Raw row pointers for kernel code.
  float* Row(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* Row(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Copies row r into a vector.
  std::vector<float> RowVector(int r) const;

  /// Copies column c into a vector.
  std::vector<float> ColVector(int c) const;

  /// Overwrites row r. Precondition: v.size() == cols().
  void SetRow(int r, const std::vector<float>& v);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// Returns the sub-matrix made of the given rows (gather).
  Matrix SelectRows(const std::vector<int>& row_indices) const;

  /// Element-wise in-place operations.
  void Fill(float value);
  void Scale(float factor);
  void Add(const Matrix& other);                       ///< this += other.
  void AddScaled(const Matrix& other, float factor);   ///< this += f*other.

  /// Frobenius norm.
  float FrobeniusNorm() const;

  /// Human-readable preview (first rows/cols) for debugging.
  std::string DebugString(int max_rows = 6, int max_cols = 8) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// A vector is a 1-D float buffer; rows of matrices convert to/from it.
using Vector = std::vector<float>;

}  // namespace uhscm::linalg

#endif  // UHSCM_LINALG_MATRIX_H_
