#ifndef UHSCM_LINALG_EIGEN_H_
#define UHSCM_LINALG_EIGEN_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace uhscm::linalg {

/// Eigen-decomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues sorted in descending order.
  std::vector<double> eigenvalues;
  /// Column j of `eigenvectors` is the unit eigenvector for
  /// eigenvalues[j]; shape n x n.
  Matrix eigenvectors;
};

/// \brief Cyclic Jacobi eigensolver for symmetric matrices.
///
/// Used by Spectral Hashing (PCA directions), ITQ, AGH (anchor-graph
/// Laplacian), and PCA. Accumulates in double internally. O(n^3) per
/// sweep; intended for the n <= a-few-thousand matrices that arise here.
///
/// \param a symmetric matrix (only the upper triangle is trusted).
/// \param max_sweeps number of full Jacobi sweeps before giving up.
/// \returns InvalidArgument if `a` is not square, Internal if the off-
///          diagonal mass fails to fall below tolerance.
Result<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                          int max_sweeps = 64);

/// Convenience: the top-k eigenpairs (k columns) of a symmetric matrix.
Result<EigenDecomposition> TopKEigen(const Matrix& a, int k);

}  // namespace uhscm::linalg

#endif  // UHSCM_LINALG_EIGEN_H_
