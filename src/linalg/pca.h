#ifndef UHSCM_LINALG_PCA_H_
#define UHSCM_LINALG_PCA_H_

#include "common/status.h"
#include "linalg/matrix.h"

namespace uhscm::linalg {

/// Principal-component model fitted on row-observations.
struct PcaModel {
  /// Column means of the training data (size d).
  Vector mean;
  /// d x k projection; columns are unit principal directions ordered by
  /// decreasing explained variance.
  Matrix components;
  /// Variance captured by each component (size k).
  std::vector<double> explained_variance;

  /// Projects rows of x: (x - mean) * components. Shape n x k.
  Matrix Transform(const Matrix& x) const;
};

/// \brief Fits PCA by Jacobi eigen-decomposition of the covariance.
///
/// Substrate for Spectral Hashing and ITQ (both start from a PCA
/// projection of the CNN features, per the original papers).
///
/// \param x n x d data, rows are observations.
/// \param k number of components, 1 <= k <= d.
Result<PcaModel> FitPca(const Matrix& x, int k);

}  // namespace uhscm::linalg

#endif  // UHSCM_LINALG_PCA_H_
