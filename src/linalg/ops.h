#ifndef UHSCM_LINALG_OPS_H_
#define UHSCM_LINALG_OPS_H_

#include <vector>

#include "linalg/matrix.h"

namespace uhscm::linalg {

/// C = A * B. Shapes: (m x k) * (k x n) -> (m x n). Parallel over row
/// blocks. Products big enough to amortize packing go through the
/// packed-panel GEMM micro-kernel (j-panel packing + a 6x16 register
/// tile, explicitly vectorized with AVX2+FMA where the CPU has it);
/// small products stay on the cache-blocked loop (MatMulBlocked).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = A^T * B. Shapes: (k x m)^T * (k x n) -> (m x n). Same packed-panel
/// dispatch as MatMul (the packing step absorbs the transpose).
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// C = A * B^T. Shapes: (m x k) * (n x k)^T -> (m x n). Same packed-panel
/// dispatch as MatMul (the packing step absorbs the transpose).
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// The pre-packing cache-blocked implementation of MatMul, kept as the
/// portable fallback for small products and as the baseline the
/// micro-kernel benches compare against (bench/micro_perf.cc
/// BM_PackedGemm).
Matrix MatMulBlocked(const Matrix& a, const Matrix& b);

/// True when the packed-panel GEMM will use the AVX2+FMA micro-kernel on
/// this host (compiled in, CPU supports it, and kernel dispatch is not
/// forced to scalar via UHSCM_FORCE_TIER/UHSCM_FORCE_SCALAR — the forced
/// -scalar CI leg covers the portable micro-kernel the same way it
/// covers the scalar Hamming tier). When false, packed products run the
/// portable 6x16 micro-kernel.
bool PackedGemmAvailable();

/// y = A * x. Precondition: x.size() == A.cols().
Vector MatVec(const Matrix& a, const Vector& x);

/// Dot product. Precondition: equal sizes.
float Dot(const float* a, const float* b, int n);
float Dot(const Vector& a, const Vector& b);

/// Euclidean norm of a buffer.
float Norm2(const float* a, int n);
float Norm2(const Vector& a);

/// Squared Euclidean distance between two buffers.
float SquaredDistance(const float* a, const float* b, int n);

/// Cosine similarity of two buffers; 0 if either has zero norm.
float CosineSimilarity(const float* a, const float* b, int n);

/// Normalizes each row of m to unit L2 norm (rows with ~zero norm are left
/// untouched).
void NormalizeRowsL2(Matrix* m);

/// Row-wise softmax with temperature: out(i,j) =
/// exp(tau*m(i,j)) / sum_k exp(tau*m(i,k)). Numerically stabilized by
/// subtracting the row max.
Matrix SoftmaxRows(const Matrix& m, float tau);

/// S(i,j) = cosine(a.row(i), b.row(j)); shape (a.rows x b.rows).
/// Parallel over rows of a.
Matrix PairwiseCosine(const Matrix& a, const Matrix& b);

/// Self-similarity shortcut: PairwiseCosine(a, a) exploiting symmetry.
Matrix SelfCosine(const Matrix& a);

/// Column means of m (size cols).
Vector ColumnMeans(const Matrix& m);

/// Subtracts `mean` from every row in place.
void CenterRows(Matrix* m, const Vector& mean);

/// Covariance of rows: (1/(n-1)) X_c^T X_c where X_c is m centered.
Matrix Covariance(const Matrix& m);

/// Element-wise sign into {-1, +1} (sign(0) := +1, matching the paper's
/// sgn which returns -1 only for negative inputs — 0 maps to -1 there; we
/// map 0 to +1 which changes measure-zero events only and keeps codes in
/// {-1,+1}).
Matrix Sign(const Matrix& m);

/// Element-wise tanh.
Matrix Tanh(const Matrix& m);

/// Mean of all entries.
float Mean(const Matrix& m);

}  // namespace uhscm::linalg

#endif  // UHSCM_LINALG_OPS_H_
