#include "linalg/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace uhscm::linalg {

Result<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_sweeps) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen: matrix must be square");
  }
  const int n = a.rows();
  if (n == 0) {
    return Status::InvalidArgument("SymmetricEigen: empty matrix");
  }

  // Work in double for numerical robustness.
  std::vector<double> m(static_cast<size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      // Symmetrize defensively.
      m[static_cast<size_t>(i) * n + j] =
          0.5 * (static_cast<double>(a(i, j)) + static_cast<double>(a(j, i)));
    }
  }
  std::vector<double> v(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) v[static_cast<size_t>(i) * n + i] = 1.0;

  auto at = [&](std::vector<double>& buf, int i, int j) -> double& {
    return buf[static_cast<size_t>(i) * n + j];
  };

  const double tol = 1e-12;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) off += at(m, i, j) * at(m, i, j);
    }
    if (off < tol) break;

    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = at(m, p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = at(m, p, p);
        const double aqq = at(m, q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (int k = 0; k < n; ++k) {
          const double mkp = at(m, k, p);
          const double mkq = at(m, k, q);
          at(m, k, p) = c * mkp - s * mkq;
          at(m, k, q) = s * mkp + c * mkq;
        }
        for (int k = 0; k < n; ++k) {
          const double mpk = at(m, p, k);
          const double mqk = at(m, q, k);
          at(m, p, k) = c * mpk - s * mqk;
          at(m, q, k) = s * mpk + c * mqk;
        }
        for (int k = 0; k < n; ++k) {
          const double vkp = at(v, k, p);
          const double vkq = at(v, k, q);
          at(v, k, p) = c * vkp - s * vkq;
          at(v, k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  double off = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) off += at(m, i, j) * at(m, i, j);
  }
  // Scale-aware convergence check.
  double diag = 0.0;
  for (int i = 0; i < n; ++i) diag += at(m, i, i) * at(m, i, i);
  if (off > 1e-8 * std::max(1.0, diag)) {
    return Status::Internal("SymmetricEigen failed to converge");
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> evals(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) evals[static_cast<size_t>(i)] = at(m, i, i);
  std::sort(order.begin(), order.end(),
            [&](int x, int y) { return evals[static_cast<size_t>(x)] > evals[static_cast<size_t>(y)]; });

  EigenDecomposition out;
  out.eigenvalues.resize(static_cast<size_t>(n));
  out.eigenvectors = Matrix(n, n);
  for (int j = 0; j < n; ++j) {
    const int src = order[static_cast<size_t>(j)];
    out.eigenvalues[static_cast<size_t>(j)] = evals[static_cast<size_t>(src)];
    for (int i = 0; i < n; ++i) {
      out.eigenvectors(i, j) = static_cast<float>(at(v, i, src));
    }
  }
  return out;
}

Result<EigenDecomposition> TopKEigen(const Matrix& a, int k) {
  if (k <= 0 || k > a.rows()) {
    return Status::InvalidArgument("TopKEigen: k out of range");
  }
  Result<EigenDecomposition> full = SymmetricEigen(a);
  if (!full.ok()) return full.status();
  EigenDecomposition& d = full.ValueOrDie();
  EigenDecomposition out;
  out.eigenvalues.assign(d.eigenvalues.begin(), d.eigenvalues.begin() + k);
  out.eigenvectors = Matrix(a.rows(), k);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < k; ++j) {
      out.eigenvectors(i, j) = d.eigenvectors(i, j);
    }
  }
  return out;
}

}  // namespace uhscm::linalg
