#ifndef UHSCM_COMMON_LOGGING_H_
#define UHSCM_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace uhscm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink. Flushes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace uhscm

#define UHSCM_LOG(level)                                              \
  ::uhscm::internal::LogMessage(::uhscm::LogLevel::k##level, __FILE__, \
                                __LINE__)

#endif  // UHSCM_COMMON_LOGGING_H_
