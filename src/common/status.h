#ifndef UHSCM_COMMON_STATUS_H_
#define UHSCM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace uhscm {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of returning a Status instead of throwing across API
/// boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kUnimplemented,
  /// The service is shutting down (or otherwise refusing work); the
  /// request was rejected, not failed — retrying against a live instance
  /// would succeed. Returned by the serve pipeline for submissions that
  /// arrive after (or survive until) a drain.
  kUnavailable,
  /// The request's deadline passed before it could be served. The work
  /// was never dispatched (or its result discarded) — retrying with a
  /// fresh deadline may succeed, but retrying *this* request is futile
  /// by definition. Returned by the serve pipeline's batcher for
  /// requests that expire while queued.
  kDeadlineExceeded,
};

/// \brief Lightweight success/error value returned by fallible operations.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// human-readable message. Status is cheap to copy (two words + a string
/// only on the error path).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<category>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief A value-or-error union: holds T on success, a Status otherwise.
///
/// Usage:
///   Result<Matrix> r = LoadMatrix(...);
///   if (!r.ok()) return r.status();
///   Matrix m = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Accessors. Precondition: ok().
  const T& ValueOrDie() const& { return *value_; }
  T& ValueOrDie() & { return *value_; }
  T&& ValueOrDie() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates an error Status from a fallible expression.
#define UHSCM_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::uhscm::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Asserts an invariant in non-test code; aborts with a message on failure.
#define UHSCM_CHECK(cond, msg)                                         \
  do {                                                                 \
    if (!(cond)) ::uhscm::internal::CheckFailed(__FILE__, __LINE__, msg); \
  } while (false)

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* msg);
}  // namespace internal

}  // namespace uhscm

#endif  // UHSCM_COMMON_STATUS_H_
