#include "common/stopwatch.h"

// Stopwatch is header-only; this translation unit exists so the target has a
// stable archive member for the class and to keep the one-cc-per-header
// layout uniform across the module.
