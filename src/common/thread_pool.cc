#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>

namespace uhscm {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 4;
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Drain(); }

void ThreadPool::Drain() {
  MutexLock drain_lock(drain_mu_);
  if (drained_) return;
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Workers exit only once the task queue is empty, so everything queued
  // before the drain still runs; ParallelFor callers blocked on their
  // chunks are released before the join completes.
  for (auto& w : workers_) w.join();
  drained_ = true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      UniqueLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.wait(lock);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task.fn();
  }
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  int nthreads;
  {
    MutexLock lock(mu_);
    nthreads = stop_ ? 0 : num_threads();
  }
  if (count == 1 || nthreads <= 1) {
    for (int i = 0; i < count; ++i) fn(i);
    return;
  }
  const int chunks = std::min(count, nthreads * 4);
  // Relaxed claim counter: each fetch_add hands out a distinct chunk;
  // `done` is only ever mutated and checked under done_mu below.
  std::atomic<int> next_chunk{0};
  std::atomic<int> done{0};
  // Plain std primitives: strictly function-local completion latch, never
  // nested under another lock by the worker side.
  std::mutex done_mu;
  std::condition_variable done_cv;

  auto body = [&] {
    for (;;) {
      const int c = next_chunk.fetch_add(1);
      if (c >= chunks) break;
      const int begin = static_cast<int>(
          static_cast<int64_t>(c) * count / chunks);
      const int end = static_cast<int>(
          static_cast<int64_t>(c + 1) * count / chunks);
      for (int i = begin; i < end; ++i) fn(i);
    }
    {
      std::lock_guard<std::mutex> lock(done_mu);
      ++done;
      // Notify under the lock: the waiter owns done_cv on its stack and
      // may destroy it the moment it observes done == jobs, so the
      // signal must complete before this thread releases done_mu (the
      // waiter cannot return from wait() until it reacquires it).
      done_cv.notify_one();
    }
  };

  const int jobs = std::min(chunks, nthreads);
  {
    UniqueLock lock(mu_);
    if (stop_) {
      // Drained between the size check and the enqueue: no workers will
      // drain the queue anymore, so run the loop inline instead.
      lock.unlock();
      for (int i = 0; i < count; ++i) fn(i);
      return;
    }
    for (int j = 0; j < jobs; ++j) queue_.push(Task{body});
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done == jobs; });
}

void ParallelFor(int count, const std::function<void(int)>& fn) {
  // Function-local static pointer, never deleted (static-destruction-safe).
  static ThreadPool* pool = new ThreadPool();
  pool->ParallelFor(count, fn);
}

}  // namespace uhscm
