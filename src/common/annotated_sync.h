#ifndef UHSCM_COMMON_ANNOTATED_SYNC_H_
#define UHSCM_COMMON_ANNOTATED_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#ifndef UHSCM_LOCK_ORDER_DISABLED
#include <source_location>
#endif

/// \file
/// Concurrency primitives for the serving stack: std::mutex /
/// std::shared_mutex / std::condition_variable wrappers that carry
///
///  1. Clang Thread Safety Analysis attributes, so `clang++
///     -Werror=thread-safety` proves at compile time that every
///     `UHSCM_GUARDED_BY` field is only touched under its lock and every
///     `UHSCM_REQUIRES` helper is only called with the right lock held.
///     The macros expand to nothing on GCC/MSVC, which therefore compile
///     the exact same code they always did.
///
///  2. A debug runtime lock-order checker. A mutex constructed with a
///     (name, rank) registers a process-wide lock class; every
///     acquisition is recorded in a per-thread held-set and feeds a
///     global acquired-before graph. The first acquisition that either
///     violates the declared rank order or closes a cycle in the graph
///     aborts immediately, printing both acquisition sites — turning a
///     potential deadlock that TSan needs a lucky interleaving to see
///     into a deterministic failure on any single execution of the two
///     code paths. Compiled out entirely with -DUHSCM_LOCK_ORDER=OFF
///     (mirrors the UHSCM_OBS / UHSCM_FAULTS pattern): the wrappers then
///     hold nothing but the underlying std primitive and every method
///     inlines to the std call.
///
/// The global lock hierarchy (who may be acquired while holding what)
/// and the naming/ranking rules live in src/serve/README.md under
/// "Concurrency invariants".

// ---------------------------------------------------------------------------
// Thread Safety Analysis attribute macros (no-ops outside clang).
// NOLINTBEGIN(bugprone-macro-parentheses) -- attribute arguments are
// capability expressions and must be pasted unparenthesized.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define UHSCM_TSA(x) __attribute__((x))
#endif
#endif
#ifndef UHSCM_TSA
#define UHSCM_TSA(x)
#endif

#define UHSCM_CAPABILITY(x) UHSCM_TSA(capability(x))
#define UHSCM_SCOPED_CAPABILITY UHSCM_TSA(scoped_lockable)
#define UHSCM_GUARDED_BY(x) UHSCM_TSA(guarded_by(x))
#define UHSCM_PT_GUARDED_BY(x) UHSCM_TSA(pt_guarded_by(x))
#define UHSCM_ACQUIRED_BEFORE(...) UHSCM_TSA(acquired_before(__VA_ARGS__))
#define UHSCM_ACQUIRED_AFTER(...) UHSCM_TSA(acquired_after(__VA_ARGS__))
#define UHSCM_REQUIRES(...) UHSCM_TSA(requires_capability(__VA_ARGS__))
#define UHSCM_REQUIRES_SHARED(...) \
  UHSCM_TSA(requires_shared_capability(__VA_ARGS__))
#define UHSCM_ACQUIRE(...) UHSCM_TSA(acquire_capability(__VA_ARGS__))
#define UHSCM_ACQUIRE_SHARED(...) \
  UHSCM_TSA(acquire_shared_capability(__VA_ARGS__))
#define UHSCM_RELEASE(...) UHSCM_TSA(release_capability(__VA_ARGS__))
#define UHSCM_RELEASE_SHARED(...) \
  UHSCM_TSA(release_shared_capability(__VA_ARGS__))
#define UHSCM_RELEASE_GENERIC(...) \
  UHSCM_TSA(release_generic_capability(__VA_ARGS__))
#define UHSCM_TRY_ACQUIRE(...) UHSCM_TSA(try_acquire_capability(__VA_ARGS__))
#define UHSCM_EXCLUDES(...) UHSCM_TSA(locks_excluded(__VA_ARGS__))
#define UHSCM_ASSERT_CAPABILITY(x) UHSCM_TSA(assert_capability(x))
#define UHSCM_RETURN_CAPABILITY(x) UHSCM_TSA(lock_returned(x))
#define UHSCM_NO_THREAD_SAFETY_ANALYSIS UHSCM_TSA(no_thread_safety_analysis)
// NOLINTEND(bugprone-macro-parentheses)

namespace uhscm {
namespace lockorder {

/// True when the runtime lock-order checker is compiled in (default; the
/// -DUHSCM_LOCK_ORDER=OFF configure flag removes it entirely).
#ifndef UHSCM_LOCK_ORDER_DISABLED
inline constexpr bool kLockOrderCompiledIn = true;
#else
inline constexpr bool kLockOrderCompiledIn = false;
#endif

/// Lock-class flag: instances of this class may nest inside each other
/// (same-name nesting), because the code always acquires them in one
/// globally consistent instance order — e.g. the per-shard rwlocks,
/// which Export() takes all at once in shard-index order.
inline constexpr unsigned kOrderedInstances = 1u << 0;

#ifndef UHSCM_LOCK_ORDER_DISABLED

/// Acquisition site forwarded through the wrappers so a violation report
/// can name the exact file:line of both conflicting acquisitions. The
/// default argument materializes at the *call* site.
using AcquireSite = std::source_location;
#define UHSCM_ACQUIRE_SITE std::source_location::current()

struct LockClass;  // interned (name, rank, flags); defined in the .cc

/// Interns a lock class. Instances sharing a name share the class; the
/// registry aborts if the same name is re-registered with a different
/// rank or flags (a rank table typo, not a runtime condition).
/// `rank <= 0` means unranked: ordering is still enforced through the
/// acquired-before graph, just without the eager rank check.
const LockClass* RegisterLockClass(const char* name, int rank,
                                   unsigned flags = 0);

/// Records `cls` joining the calling thread's held-set. Aborts (printing
/// both acquisition sites) if the acquisition inverts the declared rank
/// order or closes a cycle in the global acquired-before graph. Called
/// *before* blocking on the underlying mutex so a real deadlock is
/// reported instead of hung.
void OnAcquire(const LockClass* cls, const void* instance,
               const AcquireSite& site);

/// Removes the most recent held-set entry for `instance` (locks may be
/// released out of LIFO order).
void OnRelease(const LockClass* cls, const void* instance);

/// Test hooks: number of violations reported so far, and whether
/// violations abort (default) or only count. Tests flip abort off to
/// assert on the report text without death-testing every case.
int ViolationCount();
void SetAbortOnViolation(bool abort_on_violation);

#else  // UHSCM_LOCK_ORDER_DISABLED

struct AcquireSite {};
#define UHSCM_ACQUIRE_SITE ::uhscm::lockorder::AcquireSite {}

#endif  // UHSCM_LOCK_ORDER_DISABLED

}  // namespace lockorder

/// std::mutex with TSA capability annotations and optional lock-order
/// checking. Default-constructed mutexes are order-unchecked (use for
/// strictly local or leaf locks that never nest); named mutexes
/// participate in the rank/graph checks.
class UHSCM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Registers under `name` in the lock-order checker. See the rank
  /// table in src/serve/README.md before picking a rank.
  explicit Mutex([[maybe_unused]] const char* name,
                 [[maybe_unused]] int rank = 0,
                 [[maybe_unused]] unsigned flags = 0) {
#ifndef UHSCM_LOCK_ORDER_DISABLED
    cls_ = lockorder::RegisterLockClass(name, rank, flags);
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock([[maybe_unused]] const lockorder::AcquireSite& site =
                UHSCM_ACQUIRE_SITE) UHSCM_ACQUIRE() {
#ifndef UHSCM_LOCK_ORDER_DISABLED
    if (cls_ != nullptr) lockorder::OnAcquire(cls_, this, site);
#endif
    mu_.lock();
  }

  void unlock() UHSCM_RELEASE() {
    mu_.unlock();
#ifndef UHSCM_LOCK_ORDER_DISABLED
    if (cls_ != nullptr) lockorder::OnRelease(cls_, this);
#endif
  }

  /// Never blocks, so it cannot participate in a deadlock cycle; on
  /// success the lock still joins the held-set so later nested
  /// acquisitions are checked against it.
  bool try_lock([[maybe_unused]] const lockorder::AcquireSite& site =
                    UHSCM_ACQUIRE_SITE) UHSCM_TRY_ACQUIRE(true) {
    const bool ok = mu_.try_lock();
#ifndef UHSCM_LOCK_ORDER_DISABLED
    if (ok && cls_ != nullptr) lockorder::OnAcquire(cls_, this, site);
#endif
    return ok;
  }

  /// The wrapped native mutex, for interop that needs a std::mutex
  /// (CondVar waits route through here via UniqueLock).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
#ifndef UHSCM_LOCK_ORDER_DISABLED
  const lockorder::LockClass* cls_ = nullptr;
#endif
};

/// std::shared_mutex with TSA capability annotations and lock-order
/// checking. Shared and exclusive acquisitions feed the same
/// acquired-before edges (an order inversion deadlocks either way once a
/// writer enters the mix).
class UHSCM_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex([[maybe_unused]] const char* name,
                       [[maybe_unused]] int rank = 0,
                       [[maybe_unused]] unsigned flags = 0) {
#ifndef UHSCM_LOCK_ORDER_DISABLED
    cls_ = lockorder::RegisterLockClass(name, rank, flags);
#endif
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock([[maybe_unused]] const lockorder::AcquireSite& site =
                UHSCM_ACQUIRE_SITE) UHSCM_ACQUIRE() {
#ifndef UHSCM_LOCK_ORDER_DISABLED
    if (cls_ != nullptr) lockorder::OnAcquire(cls_, this, site);
#endif
    mu_.lock();
  }

  void unlock() UHSCM_RELEASE() {
    mu_.unlock();
#ifndef UHSCM_LOCK_ORDER_DISABLED
    if (cls_ != nullptr) lockorder::OnRelease(cls_, this);
#endif
  }

  void lock_shared([[maybe_unused]] const lockorder::AcquireSite& site =
                       UHSCM_ACQUIRE_SITE) UHSCM_ACQUIRE_SHARED() {
#ifndef UHSCM_LOCK_ORDER_DISABLED
    if (cls_ != nullptr) lockorder::OnAcquire(cls_, this, site);
#endif
    mu_.lock_shared();
  }

  void unlock_shared() UHSCM_RELEASE_SHARED() {
    mu_.unlock_shared();
#ifndef UHSCM_LOCK_ORDER_DISABLED
    if (cls_ != nullptr) lockorder::OnRelease(cls_, this);
#endif
  }

  std::shared_mutex& native() { return mu_; }

 private:
  std::shared_mutex mu_;
#ifndef UHSCM_LOCK_ORDER_DISABLED
  const lockorder::LockClass* cls_ = nullptr;
#endif
};

/// std::lock_guard equivalent for Mutex.
class UHSCM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu, const lockorder::AcquireSite& site =
                                    UHSCM_ACQUIRE_SITE) UHSCM_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(site);
  }
  ~MutexLock() UHSCM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock equivalent for Mutex: relockable, and the handle
/// CondVar waits on. The wait itself releases/reacquires the native
/// mutex underneath without touching the held-set — the thread is
/// blocked for the whole release window, so it cannot create
/// acquired-before edges, and TSA likewise treats the capability as held
/// across the wait.
class UHSCM_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu, const lockorder::AcquireSite& site =
                                     UHSCM_ACQUIRE_SITE) UHSCM_ACQUIRE(mu)
      : mu_(&mu) {
#ifndef UHSCM_LOCK_ORDER_DISABLED
    site_ = site;
#endif
    mu_->lock(site);
    native_ = std::unique_lock<std::mutex>(mu_->native(), std::adopt_lock);
  }

  ~UniqueLock() UHSCM_RELEASE() {
    if (native_.owns_lock()) {
      native_.release();
      mu_->unlock();
    }
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void unlock() UHSCM_RELEASE() {
    native_.release();
    mu_->unlock();
  }

  /// Reacquires at the recorded construction site (the interesting site
  /// for order reports is where this scope first took the lock).
  void lock() UHSCM_ACQUIRE() {
#ifndef UHSCM_LOCK_ORDER_DISABLED
    mu_->lock(site_);
#else
    mu_->lock();
#endif
    native_ = std::unique_lock<std::mutex>(mu_->native(), std::adopt_lock);
  }

  bool owns_lock() const { return native_.owns_lock(); }

 private:
  friend class CondVar;

  Mutex* mu_;
  std::unique_lock<std::mutex> native_;
#ifndef UHSCM_LOCK_ORDER_DISABLED
  lockorder::AcquireSite site_;
#endif
};

/// std::shared_lock equivalent for SharedMutex (reader side).
class UHSCM_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu,
                      const lockorder::AcquireSite& site = UHSCM_ACQUIRE_SITE)
      UHSCM_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.lock_shared(site);
  }
  ~SharedLock() UHSCM_RELEASE_GENERIC() { mu_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// std::unique_lock-over-shared_mutex equivalent (writer side).
class UHSCM_SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mu,
                         const lockorder::AcquireSite& site =
                             UHSCM_ACQUIRE_SITE) UHSCM_ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(site);
  }
  ~ExclusiveLock() UHSCM_RELEASE() { mu_.unlock(); }

  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// std::condition_variable wrapper operating on UniqueLock. Predicate
/// overloads are intentionally absent: TSA analyzes a predicate lambda
/// as a standalone function that does not hold the lock, so call sites
/// spell the standard `while (!pred) wait(...)` loop inline where the
/// analysis can see the capability. Keeps std::condition_variable (not
/// _any) underneath for its fast native-handle path.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) UHSCM_REQUIRES(*lock.mu_) {
    cv_.wait(lock.native_);
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(UniqueLock& lock,
                            const std::chrono::time_point<Clock, Duration>& tp)
      UHSCM_REQUIRES(*lock.mu_) {
    return cv_.wait_until(lock.native_, tp);
  }

  template <class Rep, class Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& dur)
      UHSCM_REQUIRES(*lock.mu_) {
    return cv_.wait_for(lock.native_, dur);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace uhscm

#endif  // UHSCM_COMMON_ANNOTATED_SYNC_H_
