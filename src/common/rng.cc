#include "common/rng.h"

#include <cmath>

#include "common/status.h"

namespace uhscm {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  UHSCM_CHECK(n > 0, "UniformInt requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double two_pi = 6.283185307179586;
  spare_normal_ = mag * std::sin(two_pi * u2);
  has_spare_normal_ = true;
  return mag * std::cos(two_pi * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  UHSCM_CHECK(k <= n, "SampleWithoutReplacement requires k <= n");
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformInt(static_cast<uint64_t>(n - i)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace uhscm
