#ifndef UHSCM_COMMON_STRING_UTIL_H_
#define UHSCM_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace uhscm {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

}  // namespace uhscm

#endif  // UHSCM_COMMON_STRING_UTIL_H_
