#ifndef UHSCM_COMMON_RNG_H_
#define UHSCM_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace uhscm {

/// \brief Deterministic pseudo-random generator (xoshiro256**).
///
/// Every stochastic component in the library (dataset synthesis, weight
/// initialization, mini-batch sampling, baseline projections) draws from an
/// explicitly seeded Rng so that experiments are exactly reproducible. The
/// seed is expanded with splitmix64 per the xoshiro authors'
/// recommendation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached spare value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Returns k distinct indices sampled uniformly from [0, n) via a partial
  /// Fisher-Yates shuffle. Precondition: k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Forks a statistically independent child generator; used to give each
  /// module its own stream from one experiment seed.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace uhscm

#endif  // UHSCM_COMMON_RNG_H_
