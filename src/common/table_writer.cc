#include "common/table_writer.h"

#include <algorithm>

#include "common/string_util.h"

namespace uhscm {

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableWriter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::AddRow(const std::string& label,
                         const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) {
    row.push_back(StrFormat("%.*f", precision, v));
  }
  AddRow(std::move(row));
}

std::string TableWriter::ToText() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      line.append(widths[c] - cell.size(), ' ');
      if (c + 1 < header_.size()) line += "  ";
    }
    // Trim trailing spaces.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  size_t rule_len = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_len, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TableWriter::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find(',') == std::string::npos &&
        cell.find('"') == std::string::npos) {
      return cell;
    }
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::string out;
  for (size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) out += ',';
    out += escape(header_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < header_.size(); ++c) {
      if (c > 0) out += ',';
      if (c < row.size()) out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

void TableWriter::Print(std::ostream& os) const { os << ToText(); }

}  // namespace uhscm
