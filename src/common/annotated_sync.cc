#include "common/annotated_sync.h"

#ifndef UHSCM_LOCK_ORDER_DISABLED

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace uhscm {
namespace lockorder {
namespace {

struct Edge {
  // Sites of the first occurrence of this acquired-before pair: where
  // `from` was held and where `to` was then acquired.
  AcquireSite from_site;
  AcquireSite to_site;
};

// Process-wide checker state. Allocated once and never destroyed so
// mutexes held inside static destructors stay checkable.
struct Global {
  std::mutex mu;  // plain std::mutex: the checker must not recurse
  std::unordered_map<std::string, LockClass*> classes;
  uint32_t next_id = 0;
  // Acquired-before graph over lock-class ids: adjacency for the cycle
  // walk, edge map for the violation report's sites.
  std::unordered_map<uint32_t, std::vector<uint32_t>> succ;
  std::unordered_map<uint64_t, Edge> edges;
};

Global& global() {
  static Global* g = new Global();
  return *g;
}

std::atomic<int> g_violations{0};
std::atomic<bool> g_abort{true};

struct Held {
  const LockClass* cls;
  const void* instance;
  AcquireSite site;
};

struct ThreadState {
  std::vector<Held> held;
  // Acquired-before pairs this thread has already pushed through the
  // global graph; keeps the hot path off `Global::mu` after the first
  // occurrence of each nesting.
  std::unordered_set<uint64_t> validated;
};

ThreadState& tls() {
  thread_local ThreadState state;
  return state;
}

uint64_t EdgeKey(uint32_t from, uint32_t to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

void ReportViolation(const std::string& text) {
  std::fprintf(stderr, "%s", text.c_str());
  std::fflush(stderr);
  g_violations.fetch_add(1, std::memory_order_relaxed);
  if (g_abort.load(std::memory_order_relaxed)) std::abort();
}

std::string SiteStr(const AcquireSite& site) {
  std::string out = site.file_name();
  out += ":";
  out += std::to_string(site.line());
  return out;
}

// Finds a path from -> ... -> to in the acquired-before graph (iterative
// DFS with parent tracking). Caller holds Global::mu.
bool FindPath(const Global& g, uint32_t from, uint32_t to,
              std::vector<uint32_t>* path) {
  std::unordered_map<uint32_t, uint32_t> parent;
  std::vector<uint32_t> stack{from};
  parent[from] = from;
  while (!stack.empty()) {
    const uint32_t node = stack.back();
    stack.pop_back();
    if (node == to) {
      for (uint32_t n = to; n != from; n = parent[n]) path->push_back(n);
      path->push_back(from);
      std::reverse(path->begin(), path->end());
      return true;
    }
    auto it = g.succ.find(node);
    if (it == g.succ.end()) continue;
    for (uint32_t next : it->second) {
      if (parent.emplace(next, node).second) stack.push_back(next);
    }
  }
  return false;
}

}  // namespace

struct LockClass {
  std::string name;
  int rank = 0;
  unsigned flags = 0;
  uint32_t id = 0;
};

const LockClass* RegisterLockClass(const char* name, int rank,
                                   unsigned flags) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mu);
  auto it = g.classes.find(name);
  if (it != g.classes.end()) {
    const LockClass* cls = it->second;
    if (cls->rank != rank || cls->flags != flags) {
      // A rank-table typo, not a runtime condition: always fatal.
      std::fprintf(stderr,
                   "uhscm lock-order: lock class \"%s\" re-registered with "
                   "rank %d flags %#x (already rank %d flags %#x)\n",
                   name, rank, flags, cls->rank, cls->flags);
      std::fflush(stderr);
      std::abort();
    }
    return cls;
  }
  auto* cls = new LockClass{name, rank, flags, g.next_id++};
  g.classes.emplace(cls->name, cls);
  return cls;
}

void OnAcquire(const LockClass* cls, const void* instance,
               const AcquireSite& site) {
  ThreadState& state = tls();
  if (!state.held.empty()) {
    for (const Held& h : state.held) {
      if (h.cls == cls) {
        if ((cls->flags & kOrderedInstances) == 0) {
          ReportViolation(
              "uhscm lock-order violation: recursive/same-class acquisition "
              "of \"" + cls->name + "\" at " + SiteStr(site) +
              " while held since " + SiteStr(h.site) +
              " (class not registered with kOrderedInstances)\n");
        }
        continue;  // same class: no rank check, no self-edge
      }
      // Eager rank check: a lower- or equal-ranked lock may not be held
      // when acquiring this one.
      if (cls->rank > 0 && h.cls->rank > 0 && cls->rank >= h.cls->rank) {
        ReportViolation(
            "uhscm lock-order violation: rank inversion acquiring \"" +
            cls->name + "\" (rank " + std::to_string(cls->rank) + ") at " +
            SiteStr(site) + " while holding \"" + h.cls->name + "\" (rank " +
            std::to_string(h.cls->rank) + ", acquired at " + SiteStr(h.site) +
            ")\n");
      }
      // Acquired-before edge h -> cls; first occurrence runs the cycle
      // walk, later ones hit the thread-local cache.
      const uint64_t key = EdgeKey(h.cls->id, cls->id);
      if (state.validated.insert(key).second) {
        Global& g = global();
        std::lock_guard<std::mutex> lock(g.mu);
        if (g.edges.find(key) == g.edges.end()) {
          std::vector<uint32_t> path;
          if (FindPath(g, cls->id, h.cls->id, &path)) {
            std::string text =
                "uhscm lock-order violation: acquiring \"" + cls->name +
                "\" at " + SiteStr(site) + " while holding \"" + h.cls->name +
                "\" (acquired at " + SiteStr(h.site) +
                ") closes an acquired-before cycle:\n";
            for (size_t i = 0; i + 1 < path.size(); ++i) {
              const auto eit = g.edges.find(EdgeKey(path[i], path[i + 1]));
              if (eit == g.edges.end()) continue;
              const LockClass* from = nullptr;
              const LockClass* to = nullptr;
              for (const auto& [unused_name, c] : g.classes) {
                if (c->id == path[i]) from = c;
                if (c->id == path[i + 1]) to = c;
              }
              text += "  \"" + (from ? from->name : "?") + "\" (held at " +
                      SiteStr(eit->second.from_site) + ") -> \"" +
                      (to ? to->name : "?") + "\" (acquired at " +
                      SiteStr(eit->second.to_site) + ")\n";
            }
            ReportViolation(text);
          }
          g.edges.emplace(key, Edge{h.site, site});
          g.succ[h.cls->id].push_back(cls->id);
        }
      }
    }
  }
  state.held.push_back(Held{cls, instance, site});
}

void OnRelease(const LockClass* cls, const void* instance) {
  (void)cls;
  std::vector<Held>& held = tls().held;
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->instance == instance) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

int ViolationCount() { return g_violations.load(std::memory_order_relaxed); }

void SetAbortOnViolation(bool abort_on_violation) {
  g_abort.store(abort_on_violation, std::memory_order_relaxed);
}

}  // namespace lockorder
}  // namespace uhscm

#endif  // UHSCM_LOCK_ORDER_DISABLED
