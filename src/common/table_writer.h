#ifndef UHSCM_COMMON_TABLE_WRITER_H_
#define UHSCM_COMMON_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace uhscm {

/// \brief Accumulates rows of string cells and renders an aligned text
/// table (the format the bench binaries print to mirror the paper's
/// tables) or CSV (for downstream plotting of the figure series).
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded).
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  size_t NumRows() const { return rows_.size(); }

  /// Renders a fixed-width aligned table with a header rule.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (cells containing commas are quoted).
  std::string ToCsv() const;

  /// Writes ToText() to the stream.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace uhscm

#endif  // UHSCM_COMMON_TABLE_WRITER_H_
