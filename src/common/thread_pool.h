#ifndef UHSCM_COMMON_THREAD_POOL_H_
#define UHSCM_COMMON_THREAD_POOL_H_

#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotated_sync.h"

namespace uhscm {

/// \brief Fixed-size worker pool used to parallelize embarrassingly
/// parallel kernels: VLP scoring of image/concept grids, pairwise
/// similarity blocks, and brute-force Hamming scans over the database.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>=1; 0 picks hardware concurrency).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to limit scheduling
  /// overhead. Safe to call with count == 0. After Drain() the loop runs
  /// inline on the calling thread — work is never dropped.
  void ParallelFor(int count, const std::function<void(int)>& fn);

  /// Orderly shutdown: stops handing new work to the workers, lets every
  /// already-queued task finish, and joins all worker threads. Idempotent
  /// (the destructor calls it), and safe to call while other threads are
  /// inside ParallelFor — their in-flight chunks complete before the join
  /// returns. Subsequent ParallelFor calls degrade to inline execution,
  /// so callers holding a drained pool keep working, just serially. This
  /// is the seam the async serve pipeline uses to sequence "flush
  /// in-flight batches, then tear down the pool" without racing the
  /// worker threads at process exit.
  void Drain();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_{"pool.queue", 36};
  CondVar cv_;
  std::queue<Task> queue_ UHSCM_GUARDED_BY(mu_);
  bool stop_ UHSCM_GUARDED_BY(mu_) = false;
  /// Serializes Drain callers so a second Drain (or the destructor)
  /// cannot return while the first is still joining workers.
  Mutex drain_mu_{"pool.drain", 40};
  bool drained_ UHSCM_GUARDED_BY(drain_mu_) = false;
};

/// Convenience wrapper over a process-wide pool (lazily created, never
/// destroyed per the static-destruction rules).
void ParallelFor(int count, const std::function<void(int)>& fn);

}  // namespace uhscm

#endif  // UHSCM_COMMON_THREAD_POOL_H_
