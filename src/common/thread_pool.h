#ifndef UHSCM_COMMON_THREAD_POOL_H_
#define UHSCM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace uhscm {

/// \brief Fixed-size worker pool used to parallelize embarrassingly
/// parallel kernels: VLP scoring of image/concept grids, pairwise
/// similarity blocks, and brute-force Hamming scans over the database.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (>=1; 0 picks hardware concurrency).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for i in [0, count) across the pool and blocks until all
  /// iterations finish. Iterations are chunked to limit scheduling
  /// overhead. Safe to call with count == 0.
  void ParallelFor(int count, const std::function<void(int)>& fn);

 private:
  struct Task {
    std::function<void()> fn;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over a process-wide pool (lazily created, never
/// destroyed per the static-destruction rules).
void ParallelFor(int count, const std::function<void(int)>& fn);

}  // namespace uhscm

#endif  // UHSCM_COMMON_THREAD_POOL_H_
