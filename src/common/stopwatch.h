#ifndef UHSCM_COMMON_STOPWATCH_H_
#define UHSCM_COMMON_STOPWATCH_H_

#include <chrono>

namespace uhscm {

/// \brief Monotonic wall-clock timer used by the Table 3 (time consumption)
/// bench and by trainers reporting per-epoch timings.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace uhscm

#endif  // UHSCM_COMMON_STOPWATCH_H_
