#ifndef UHSCM_EVAL_METRICS_H_
#define UHSCM_EVAL_METRICS_H_

#include <vector>

namespace uhscm::eval {

/// Average Precision of one ranked result list (Eq. 12): `relevant[i]`
/// flags whether the i-th retrieved item is relevant; only the first
/// `top_n` items count. Returns 0 when nothing relevant appears.
double AveragePrecision(const std::vector<bool>& relevant, int top_n);

/// Precision among the first `top_n` ranked items.
double PrecisionAtN(const std::vector<bool>& relevant, int top_n);

/// One (recall, precision) point.
struct PrPoint {
  double recall = 0.0;
  double precision = 0.0;
};

/// Precision/recall when retrieving everything within each Hamming radius
/// 0..max_radius (the hash-lookup protocol, §4.2). `distances[i]` and
/// `relevant[i]` describe database item i relative to one query;
/// `total_relevant` is the number of relevant database items. Points
/// where nothing is retrieved contribute precision 1 recall 0 by the
/// usual convention.
std::vector<PrPoint> PrCurveByRadius(const std::vector<int>& distances,
                                     const std::vector<bool>& relevant,
                                     int total_relevant, int max_radius);

/// Averages per-query PR curves point-wise (all must share a length).
std::vector<PrPoint> AveragePrCurves(
    const std::vector<std::vector<PrPoint>>& curves);

/// Mean silhouette coefficient of 2-D (or any-D) points under the given
/// integer labeling — the quantitative readout for the Figure 5 t-SNE
/// comparison. Points are rows of a flattened row-major buffer.
double MeanSilhouette(const std::vector<float>& points, int dim,
                      const std::vector<int>& labels);

}  // namespace uhscm::eval

#endif  // UHSCM_EVAL_METRICS_H_
