#include "eval/tsne.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "linalg/ops.h"

namespace uhscm::eval {

namespace {

/// Row-stochastic conditional affinities with per-row bandwidth solved by
/// bisection to match the target perplexity.
linalg::Matrix ConditionalAffinities(const linalg::Matrix& d2,
                                     double perplexity) {
  const int n = d2.rows();
  linalg::Matrix p(n, n);
  const double log_perp = std::log(perplexity);
  ParallelFor(n, [&](int i) {
    double beta_lo = 1e-20;
    double beta_hi = 1e20;
    double beta = 1.0;
    const float* drow = d2.Row(i);
    float* prow = p.Row(i);
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0;
      double sum_dp = 0.0;
      for (int j = 0; j < n; ++j) {
        if (j == i) {
          prow[j] = 0.0f;
          continue;
        }
        const double e = std::exp(-beta * static_cast<double>(drow[j]));
        prow[j] = static_cast<float>(e);
        sum += e;
        sum_dp += e * drow[j];
      }
      if (sum <= 1e-300) {
        beta_hi = beta;
        beta = 0.5 * (beta_lo + beta_hi);
        continue;
      }
      // Shannon entropy of the row distribution.
      const double h = std::log(sum) + beta * sum_dp / sum;
      const double diff = h - log_perp;
      if (std::fabs(diff) < 1e-5) break;
      if (diff > 0) {
        beta_lo = beta;
        beta = beta_hi > 1e19 ? beta * 2.0 : 0.5 * (beta_lo + beta_hi);
      } else {
        beta_hi = beta;
        beta = beta_lo < 1e-19 ? beta / 2.0 : 0.5 * (beta_lo + beta_hi);
      }
    }
    double sum = 0.0;
    for (int j = 0; j < n; ++j) sum += prow[j];
    if (sum > 0.0) {
      const float inv = static_cast<float>(1.0 / sum);
      for (int j = 0; j < n; ++j) prow[j] *= inv;
    }
  });
  return p;
}

}  // namespace

Result<linalg::Matrix> RunTsne(const linalg::Matrix& x,
                               const TsneOptions& options, Rng* rng) {
  const int n = x.rows();
  if (n < 5) {
    return Status::InvalidArgument("RunTsne: need at least 5 points");
  }
  if (options.perplexity >= n) {
    return Status::InvalidArgument("RunTsne: perplexity must be < n");
  }

  // Pairwise squared distances in input space.
  linalg::Matrix d2(n, n);
  ParallelFor(n, [&](int i) {
    for (int j = 0; j < n; ++j) {
      d2(i, j) = linalg::SquaredDistance(x.Row(i), x.Row(j), x.cols());
    }
  });

  // Symmetrized joint affinities P.
  linalg::Matrix p = ConditionalAffinities(d2, options.perplexity);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const float v =
          (p(i, j) + p(j, i)) / (2.0f * static_cast<float>(n));
      p(i, j) = std::max(v, 1e-12f);
      p(j, i) = p(i, j);
    }
    p(i, i) = 0.0f;
  }

  const int dim = options.output_dim;
  linalg::Matrix y = linalg::Matrix::RandomNormal(n, dim, rng, 1e-2f);
  linalg::Matrix velocity(n, dim);

  for (int iter = 0; iter < options.iterations; ++iter) {
    const double exaggeration =
        iter < options.exaggeration_iters ? options.exaggeration : 1.0;
    const double momentum = iter < options.momentum_switch_iter
                                ? options.momentum_initial
                                : options.momentum_final;

    // Student-t affinities in the embedding.
    linalg::Matrix num(n, n);
    double q_sum = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const float d = linalg::SquaredDistance(y.Row(i), y.Row(j), dim);
        const float v = 1.0f / (1.0f + d);
        num(i, j) = v;
        num(j, i) = v;
        q_sum += 2.0 * v;
      }
    }
    q_sum = std::max(q_sum, 1e-12);

    // Gradient: 4 sum_j (exag*P_ij - Q_ij) num_ij (y_i - y_j).
    linalg::Matrix grad(n, dim);
    ParallelFor(n, [&](int i) {
      float* grow = grad.Row(i);
      const float* yi = y.Row(i);
      for (int j = 0; j < n; ++j) {
        if (j == i) continue;
        const double q_ij = num(i, j) / q_sum;
        const double coeff =
            4.0 * (exaggeration * p(i, j) - q_ij) * num(i, j);
        const float* yj = y.Row(j);
        for (int c = 0; c < dim; ++c) {
          grow[c] += static_cast<float>(coeff * (yi[c] - yj[c]));
        }
      }
    });

    for (int i = 0; i < n; ++i) {
      float* vrow = velocity.Row(i);
      float* yrow = y.Row(i);
      const float* grow = grad.Row(i);
      for (int c = 0; c < dim; ++c) {
        vrow[c] = static_cast<float>(momentum) * vrow[c] -
                  static_cast<float>(options.learning_rate) * grow[c];
        yrow[c] += vrow[c];
      }
    }

    // Re-center to keep the embedding bounded.
    linalg::Vector mean = linalg::ColumnMeans(y);
    linalg::CenterRows(&y, mean);
  }
  return y;
}

}  // namespace uhscm::eval
