#ifndef UHSCM_EVAL_RETRIEVAL_EVAL_H_
#define UHSCM_EVAL_RETRIEVAL_EVAL_H_

#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "linalg/matrix.h"

namespace uhscm::eval {

/// What the retrieval driver should compute.
struct RetrievalEvalOptions {
  /// MAP cut-off (the paper uses n = 5000; clamped to the database size).
  int map_at = 5000;
  /// N values for the P@N curves (Figure 2).
  std::vector<int> topn_points = {100, 300, 500, 700, 900, 1000};
  bool compute_pr_curve = false;
};

/// Results of evaluating one method's codes on one dataset.
struct RetrievalEvalResult {
  double map = 0.0;
  /// Aligned with options.topn_points.
  std::vector<double> precision_at_n;
  /// Mean PR curve over queries, indexed by Hamming radius 0..k.
  std::vector<PrPoint> pr_curve;
};

/// \brief Runs the full §4.2 protocol: ranks the database for every query
/// by Hamming distance and aggregates MAP@map_at (Eq. 12), P@N, and (if
/// requested) PR-by-radius curves. Relevance: share >= 1 label.
///
/// \param database_codes |database| x k {-1,+1} codes in the order of
///        dataset.split.database.
/// \param query_codes |query| x k codes in the order of
///        dataset.split.query.
RetrievalEvalResult EvaluateRetrieval(const data::Dataset& dataset,
                                      const linalg::Matrix& database_codes,
                                      const linalg::Matrix& query_codes,
                                      const RetrievalEvalOptions& options = {});

}  // namespace uhscm::eval

#endif  // UHSCM_EVAL_RETRIEVAL_EVAL_H_
