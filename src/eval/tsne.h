#ifndef UHSCM_EVAL_TSNE_H_
#define UHSCM_EVAL_TSNE_H_

#include "common/rng.h"
#include "common/status.h"
#include "linalg/matrix.h"

namespace uhscm::eval {

/// t-SNE hyper-parameters (van der Maaten & Hinton 2008 defaults).
struct TsneOptions {
  int output_dim = 2;
  double perplexity = 30.0;
  int iterations = 400;
  double learning_rate = 100.0;
  double momentum_initial = 0.5;
  double momentum_final = 0.8;
  int momentum_switch_iter = 100;
  /// Early exaggeration factor and duration.
  double exaggeration = 4.0;
  int exaggeration_iters = 80;
};

/// \brief Exact O(n^2) t-SNE used to regenerate Figure 5.
///
/// Binary-searches per-point bandwidths to the target perplexity, then
/// minimizes KL(P||Q) by gradient descent with momentum and early
/// exaggeration. Suited to the <= a-few-thousand code vectors Figure 5
/// embeds.
///
/// \param x n x d input rows (e.g. {-1,+1} hash codes).
/// \returns n x output_dim embedding.
Result<linalg::Matrix> RunTsne(const linalg::Matrix& x,
                               const TsneOptions& options, Rng* rng);

}  // namespace uhscm::eval

#endif  // UHSCM_EVAL_TSNE_H_
