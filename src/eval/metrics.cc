#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/status.h"

namespace uhscm::eval {

double AveragePrecision(const std::vector<bool>& relevant, int top_n) {
  const int n = std::min<int>(top_n, static_cast<int>(relevant.size()));
  int hits = 0;
  double sum_prec = 0.0;
  for (int i = 0; i < n; ++i) {
    if (relevant[static_cast<size_t>(i)]) {
      ++hits;
      sum_prec += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  if (hits == 0) return 0.0;
  return sum_prec / static_cast<double>(hits);
}

double PrecisionAtN(const std::vector<bool>& relevant, int top_n) {
  const int n = std::min<int>(top_n, static_cast<int>(relevant.size()));
  if (n == 0) return 0.0;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (relevant[static_cast<size_t>(i)]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

std::vector<PrPoint> PrCurveByRadius(const std::vector<int>& distances,
                                     const std::vector<bool>& relevant,
                                     int total_relevant, int max_radius) {
  UHSCM_CHECK(distances.size() == relevant.size(),
              "PrCurveByRadius: size mismatch");
  // Histogram retrieved / relevant-retrieved by distance.
  std::vector<int> retrieved_at(static_cast<size_t>(max_radius + 1), 0);
  std::vector<int> relevant_at(static_cast<size_t>(max_radius + 1), 0);
  for (size_t i = 0; i < distances.size(); ++i) {
    const int d = std::min(distances[i], max_radius);
    ++retrieved_at[static_cast<size_t>(d)];
    if (relevant[i]) ++relevant_at[static_cast<size_t>(d)];
  }
  std::vector<PrPoint> curve(static_cast<size_t>(max_radius + 1));
  int cum_retrieved = 0;
  int cum_relevant = 0;
  for (int r = 0; r <= max_radius; ++r) {
    cum_retrieved += retrieved_at[static_cast<size_t>(r)];
    cum_relevant += relevant_at[static_cast<size_t>(r)];
    PrPoint& p = curve[static_cast<size_t>(r)];
    p.precision = cum_retrieved > 0 ? static_cast<double>(cum_relevant) /
                                          static_cast<double>(cum_retrieved)
                                    : 1.0;
    p.recall = total_relevant > 0 ? static_cast<double>(cum_relevant) /
                                        static_cast<double>(total_relevant)
                                  : 0.0;
  }
  return curve;
}

std::vector<PrPoint> AveragePrCurves(
    const std::vector<std::vector<PrPoint>>& curves) {
  UHSCM_CHECK(!curves.empty(), "AveragePrCurves: no curves");
  const size_t len = curves[0].size();
  std::vector<PrPoint> mean(len);
  for (const auto& curve : curves) {
    UHSCM_CHECK(curve.size() == len, "AveragePrCurves: length mismatch");
    for (size_t i = 0; i < len; ++i) {
      mean[i].precision += curve[i].precision;
      mean[i].recall += curve[i].recall;
    }
  }
  const double inv = 1.0 / static_cast<double>(curves.size());
  for (auto& p : mean) {
    p.precision *= inv;
    p.recall *= inv;
  }
  return mean;
}

double MeanSilhouette(const std::vector<float>& points, int dim,
                      const std::vector<int>& labels) {
  UHSCM_CHECK(dim > 0, "MeanSilhouette: dim must be positive");
  const int n = static_cast<int>(labels.size());
  UHSCM_CHECK(points.size() == static_cast<size_t>(n) * dim,
              "MeanSilhouette: buffer size mismatch");
  if (n < 2) return 0.0;

  // Cluster sizes.
  std::unordered_map<int, int> cluster_size;
  for (int lab : labels) ++cluster_size[lab];

  auto dist = [&](int i, int j) {
    double s = 0.0;
    for (int c = 0; c < dim; ++c) {
      const double d = static_cast<double>(points[static_cast<size_t>(i) * dim + c]) -
                       points[static_cast<size_t>(j) * dim + c];
      s += d * d;
    }
    return std::sqrt(s);
  };

  double total = 0.0;
  int counted = 0;
  for (int i = 0; i < n; ++i) {
    const int li = labels[static_cast<size_t>(i)];
    if (cluster_size[li] < 2) continue;  // silhouette undefined
    std::unordered_map<int, double> sum_by_cluster;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      sum_by_cluster[labels[static_cast<size_t>(j)]] += dist(i, j);
    }
    const double a =
        sum_by_cluster[li] / static_cast<double>(cluster_size[li] - 1);
    double b = std::numeric_limits<double>::max();
    for (const auto& [lab, sum] : sum_by_cluster) {
      if (lab == li) continue;
      b = std::min(b, sum / static_cast<double>(cluster_size[lab]));
    }
    if (b == std::numeric_limits<double>::max()) continue;
    total += (b - a) / std::max(a, b);
    ++counted;
  }
  return counted > 0 ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace uhscm::eval
