#include "eval/retrieval_eval.h"

#include <algorithm>
#include <mutex>

#include "common/status.h"
#include "common/thread_pool.h"
#include "index/linear_scan.h"
#include "index/packed_codes.h"

namespace uhscm::eval {

RetrievalEvalResult EvaluateRetrieval(const data::Dataset& dataset,
                                      const linalg::Matrix& database_codes,
                                      const linalg::Matrix& query_codes,
                                      const RetrievalEvalOptions& options) {
  const auto& db_ids = dataset.split.database;
  const auto& query_ids = dataset.split.query;
  UHSCM_CHECK(database_codes.rows() == static_cast<int>(db_ids.size()),
              "EvaluateRetrieval: database code count mismatch");
  UHSCM_CHECK(query_codes.rows() == static_cast<int>(query_ids.size()),
              "EvaluateRetrieval: query code count mismatch");
  UHSCM_CHECK(database_codes.cols() == query_codes.cols(),
              "EvaluateRetrieval: bit width mismatch");

  const int bits = database_codes.cols();
  const int n_db = database_codes.rows();
  const int n_query = query_codes.rows();
  const int map_at = std::min(options.map_at, n_db);
  const int max_topn =
      options.topn_points.empty()
          ? 0
          : *std::max_element(options.topn_points.begin(),
                              options.topn_points.end());
  const int rank_depth = std::min(n_db, std::max(map_at, max_topn));

  const index::PackedCodes packed_db =
      index::PackedCodes::FromSignMatrix(database_codes);
  const index::PackedCodes packed_q =
      index::PackedCodes::FromSignMatrix(query_codes);
  const index::LinearScanIndex scan(packed_db);

  std::vector<double> ap(static_cast<size_t>(n_query), 0.0);
  std::vector<std::vector<double>> pn(
      static_cast<size_t>(n_query),
      std::vector<double>(options.topn_points.size(), 0.0));
  std::vector<std::vector<PrPoint>> pr(static_cast<size_t>(n_query));

  ParallelFor(n_query, [&](int q) {
    const int query_image = query_ids[static_cast<size_t>(q)];
    const std::vector<index::Neighbor> ranked =
        scan.TopK(packed_q.code(q), rank_depth);

    std::vector<bool> relevant(ranked.size());
    for (size_t r = 0; r < ranked.size(); ++r) {
      relevant[r] =
          dataset.Relevant(query_image, db_ids[static_cast<size_t>(ranked[r].id)]);
    }
    ap[static_cast<size_t>(q)] = AveragePrecision(relevant, map_at);
    for (size_t p = 0; p < options.topn_points.size(); ++p) {
      pn[static_cast<size_t>(q)][p] =
          PrecisionAtN(relevant, options.topn_points[p]);
    }

    if (options.compute_pr_curve) {
      const std::vector<int> distances = scan.AllDistances(packed_q.code(q));
      std::vector<bool> rel_all(static_cast<size_t>(n_db));
      int total_relevant = 0;
      for (int i = 0; i < n_db; ++i) {
        rel_all[static_cast<size_t>(i)] =
            dataset.Relevant(query_image, db_ids[static_cast<size_t>(i)]);
        if (rel_all[static_cast<size_t>(i)]) ++total_relevant;
      }
      pr[static_cast<size_t>(q)] =
          PrCurveByRadius(distances, rel_all, total_relevant, bits);
    }
  });

  RetrievalEvalResult result;
  for (double v : ap) result.map += v;
  result.map /= std::max(n_query, 1);
  result.precision_at_n.assign(options.topn_points.size(), 0.0);
  for (int q = 0; q < n_query; ++q) {
    for (size_t p = 0; p < options.topn_points.size(); ++p) {
      result.precision_at_n[p] += pn[static_cast<size_t>(q)][p];
    }
  }
  for (auto& v : result.precision_at_n) v /= std::max(n_query, 1);
  if (options.compute_pr_curve && n_query > 0) {
    result.pr_curve = AveragePrCurves(pr);
  }
  return result;
}

}  // namespace uhscm::eval
