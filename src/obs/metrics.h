#ifndef UHSCM_OBS_METRICS_H_
#define UHSCM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/annotated_sync.h"

namespace uhscm::obs {

/// Compile-time kill switch for the observability layer. Configure with
/// -DUHSCM_OBS=OFF (which defines UHSCM_OBS_DISABLED) to compile the
/// tracing + kernel-counter instrumentation down to nothing; the metrics
/// registry and histograms stay, because the serving stats are built on
/// them.
#ifdef UHSCM_OBS_DISABLED
inline constexpr bool kObsCompiledIn = false;
#else
inline constexpr bool kObsCompiledIn = true;
#endif

/// Runtime kill switch consulted by the sampling and kernel-counter
/// flush paths — the "disabled" arm of the overhead A/B in
/// bench/async_serve. Defaults to on.
bool RuntimeEnabled();
void SetRuntimeEnabled(bool enabled);

/// \brief Monotonic event counter. Record is one relaxed fetch_add.
/// Relaxed everywhere: an independent statistic — readers tolerate a
/// momentarily stale count and no data is published through it.
class Counter {
 public:
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (queue depth, epoch, ...).
/// Relaxed: an advisory sample; the newest write wins and readers only
/// need *a* recent value, not ordering against other memory.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Mergeable point-in-time copy of a histogram's buckets.
///
/// The unit of exact cross-replica aggregation: bucket counts add
/// element-wise, so percentiles of a merged snapshot are computed over
/// the *pooled* distribution — not a max over per-replica percentiles.
struct HistogramSnapshot {
  std::vector<uint64_t> counts;  // empty (== all-zero) or kNumBuckets long
  uint64_t total = 0;
  int64_t sum = 0;

  bool empty() const { return total == 0; }
  double mean() const {
    return total > 0 ? static_cast<double>(sum) / static_cast<double>(total)
                     : 0.0;
  }

  /// Element-wise bucket add — the exact merge AggregateServeStats uses.
  void Merge(const HistogramSnapshot& other);

  /// Nearest-rank percentile (p in [0, 100]) over the bucket counts: the
  /// representative value (bucket midpoint; exact below the linear/log
  /// boundary) of the bucket holding the ceil(p% * total)-th sample.
  /// Within one bucket width of the true pooled-sample percentile, i.e.
  /// a relative error of at most 2^-kSubBucketBits. 0 when empty.
  int64_t ValueAtPercentile(double p) const;
};

/// \brief Lock-free log-linear (HDR-style) histogram over non-negative
/// int64 values.
///
/// Values below 2^kSubBucketBits get one bucket each (exact); above
/// that, every octave [2^m, 2^(m+1)) is split into 2^kSubBucketBits
/// equal sub-buckets, so relative resolution is bounded by
/// 2^-kSubBucketBits (~3.1%) everywhere. Record is O(1): a bit-scan to
/// find the bucket and three relaxed atomic adds — no lock, no sort, no
/// retained samples. Snapshots merge exactly (bucket-wise), which is
/// what lets replica percentiles aggregate without approximation.
///
/// Values are unit-agnostic int64s; the serving layer records latencies
/// in nanoseconds (range 2^kMaxExponent ns ~= 9.7 hours; larger values
/// clamp into the last bucket, negatives into the first).
class Histogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kMaxExponent = 45;
  static constexpr int kNumBuckets =
      (kMaxExponent - kSubBucketBits + 1) * kSubBuckets;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(int64_t value) { RecordN(value, 1); }

  /// Records `n` identical observations in O(1) — the batched serving
  /// path reports one latency for every query of a batch.
  void RecordN(int64_t value, int64_t n);

  HistogramSnapshot Snapshot() const;
  void Reset();

  /// Bucket index for a value (clamped into [0, kNumBuckets)).
  static int BucketIndex(int64_t value);
  /// Smallest value mapping to `bucket`.
  static int64_t BucketLowerBound(int bucket);
  /// Smallest value mapping to `bucket + 1` (exclusive upper bound).
  static int64_t BucketUpperBound(int bucket);
  /// The value a bucket reports for percentiles (midpoint; exact in the
  /// linear region).
  static int64_t BucketRepresentative(int bucket);

 private:
  /// Relaxed: each bucket (and total/sum) is an independent counter; a
  /// snapshot taken mid-record may be off by the in-flight observation,
  /// which bucket-count statistics tolerate by design.
  std::array<std::atomic<uint64_t>, kNumBuckets> counts_{};
  std::atomic<uint64_t> total_{0};
  std::atomic<int64_t> sum_{0};
};

/// \brief Named registry of counters, gauges, and histograms — the one
/// place the process's serving metrics live, so the printed stats dump
/// and the exported JSON can never drift apart.
///
/// Naming convention (see src/obs/README.md): dot-separated
/// `<subsystem>.<metric>[_<unit>]`, e.g. `scan.rows_scanned`,
/// `pipeline.queue_depth`, `stage.scan_ns`. Lookup takes a mutex;
/// hot paths resolve their pointer once and record through it (Counter /
/// Gauge / Histogram are individually thread-safe and the pointers are
/// stable for the registry's lifetime).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// One JSON object with "counters", "gauges", and "histograms"
  /// (count/mean/p50/p90/p99/max per histogram) — the payload of
  /// `uhscm_cli serve --metrics-json`.
  std::string DumpJson() const;

  /// Human-readable one-metric-per-line dump, sorted by name — what
  /// `uhscm_cli serve` prints, from the same data as DumpJson.
  std::string DumpText() const;

  /// Snapshots of every histogram whose name starts with `prefix`
  /// (sorted by name) — how the benches pull the `stage.*_ns` stage
  /// breakdown into their BENCH_*.json.
  std::vector<std::pair<std::string, HistogramSnapshot>> SnapshotHistograms(
      const std::string& prefix) const;

  /// Zeroes every registered metric (benches isolating phases).
  void ResetAll();

  /// The process-wide registry.
  static MetricsRegistry& Global();

 private:
  /// The bottom of the lock hierarchy: lookups happen under other
  /// subsystems' locks (e.g. a kernel-counter flush inside a shard
  /// lock), so nothing may be acquired beneath this one.
  mutable Mutex mu_{"obs.metrics", 10};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      UHSCM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ UHSCM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      UHSCM_GUARDED_BY(mu_);
};

}  // namespace uhscm::obs

#endif  // UHSCM_OBS_METRICS_H_
