#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace uhscm::obs {

namespace {
// Relaxed: a runtime on/off flag polled per operation; flipping it does
// not need to synchronize with instrumentation already in flight.
std::atomic<bool> g_runtime_enabled{true};
}  // namespace

bool RuntimeEnabled() {
  return g_runtime_enabled.load(std::memory_order_relaxed);
}

void SetRuntimeEnabled(bool enabled) {
  g_runtime_enabled.store(enabled, std::memory_order_relaxed);
}

// ----------------------------------------------------------- Histogram

int Histogram::BucketIndex(int64_t value) {
  if (value < 0) return 0;
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) return static_cast<int>(v);
  // v in [2^m, 2^(m+1)) with m >= kSubBucketBits: the octave is split
  // into kSubBuckets equal slots of width 2^(m - kSubBucketBits).
  const int m = std::bit_width(v) - 1;
  if (m >= kMaxExponent) return kNumBuckets - 1;
  const int slot =
      static_cast<int>(v >> (m - kSubBucketBits)) - kSubBuckets;
  return (m - kSubBucketBits + 1) * kSubBuckets + slot;
}

int64_t Histogram::BucketLowerBound(int bucket) {
  bucket = std::clamp(bucket, 0, kNumBuckets - 1);
  if (bucket < kSubBuckets) return bucket;
  const int m = bucket / kSubBuckets + kSubBucketBits - 1;
  const int slot = bucket % kSubBuckets;
  return static_cast<int64_t>(kSubBuckets + slot) << (m - kSubBucketBits);
}

int64_t Histogram::BucketUpperBound(int bucket) {
  bucket = std::clamp(bucket, 0, kNumBuckets - 1);
  if (bucket < kSubBuckets) return bucket + 1;
  const int m = bucket / kSubBuckets + kSubBucketBits - 1;
  return BucketLowerBound(bucket) +
         (static_cast<int64_t>(1) << (m - kSubBucketBits));
}

int64_t Histogram::BucketRepresentative(int bucket) {
  if (bucket < kSubBuckets) return bucket;  // exact in the linear region
  return (BucketLowerBound(bucket) + BucketUpperBound(bucket)) / 2;
}

void Histogram::RecordN(int64_t value, int64_t n) {
  if (n <= 0) return;
  counts_[static_cast<size_t>(BucketIndex(value))].fetch_add(
      static_cast<uint64_t>(n), std::memory_order_relaxed);
  total_.fetch_add(static_cast<uint64_t>(n), std::memory_order_relaxed);
  sum_.fetch_add(std::max<int64_t>(0, value) * n, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.total = total_.load(std::memory_order_relaxed);
  if (snap.total == 0) return snap;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.counts.resize(kNumBuckets);
  for (int b = 0; b < kNumBuckets; ++b) {
    snap.counts[static_cast<size_t>(b)] =
        counts_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.total == 0) return;
  if (counts.empty()) {
    *this = other;
    return;
  }
  for (size_t b = 0; b < counts.size(); ++b) counts[b] += other.counts[b];
  total += other.total;
  sum += other.sum;
}

int64_t HistogramSnapshot::ValueAtPercentile(double p) const {
  if (total == 0 || counts.empty()) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank, matching serve::Percentile: the smallest bucket whose
  // cumulative count covers ceil(p% * total) samples.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(total))));
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= rank) {
      return Histogram::BucketRepresentative(static_cast<int>(b));
    }
  }
  return Histogram::BucketRepresentative(Histogram::kNumBuckets - 1);
}

// ------------------------------------------------------ MetricsRegistry

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

void AppendHistogramFields(const HistogramSnapshot& snap, std::string* out) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "\"count\": %" PRIu64 ", \"mean\": %.1f, \"p50\": %" PRId64
                ", \"p90\": %" PRId64 ", \"p99\": %" PRId64
                ", \"max\": %" PRId64,
                snap.total, snap.mean(), snap.ValueAtPercentile(50.0),
                snap.ValueAtPercentile(90.0), snap.ValueAtPercentile(99.0),
                snap.ValueAtPercentile(100.0));
  *out += buffer;
}

}  // namespace

std::string MetricsRegistry::DumpJson() const {
  MutexLock lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  char buffer[128];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(buffer, sizeof(buffer), "%s\n    \"%s\": %" PRId64,
                  first ? "" : ",", name.c_str(), counter->value());
    out += buffer;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(buffer, sizeof(buffer), "%s\n    \"%s\": %" PRId64,
                  first ? "" : ",", name.c_str(), gauge->value());
    out += buffer;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    out += first ? "\n    \"" : ",\n    \"";
    out += name;
    out += "\": {";
    AppendHistogramFields(histogram->Snapshot(), &out);
    out += "}";
    first = false;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::DumpText() const {
  MutexLock lock(mu_);
  std::string out;
  char buffer[256];
  for (const auto& [name, counter] : counters_) {
    std::snprintf(buffer, sizeof(buffer), "%-40s %" PRId64 "\n", name.c_str(),
                  counter->value());
    out += buffer;
  }
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(buffer, sizeof(buffer), "%-40s %" PRId64 "\n", name.c_str(),
                  gauge->value());
    out += buffer;
  }
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->Snapshot();
    std::snprintf(buffer, sizeof(buffer),
                  "%-40s count=%" PRIu64 " mean=%.1f p50=%" PRId64
                  " p99=%" PRId64 " max=%" PRId64 "\n",
                  name.c_str(), snap.total, snap.mean(),
                  snap.ValueAtPercentile(50.0), snap.ValueAtPercentile(99.0),
                  snap.ValueAtPercentile(100.0));
    out += buffer;
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::SnapshotHistograms(const std::string& prefix) const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  for (const auto& [name, histogram] : histograms_) {
    if (name.compare(0, prefix.size(), prefix) == 0) {
      out.emplace_back(name, histogram->Snapshot());
    }
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace uhscm::obs
