#ifndef UHSCM_OBS_TRACE_H_
#define UHSCM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/annotated_sync.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace uhscm::obs {

/// The (trace, parent span) pair a request carries through the pipeline
/// so every stage can hang its span under the right parent. trace_id 0
/// means "not sampled" — every recording path checks it first, so
/// unsampled requests never touch the recorder.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
  explicit operator bool() const { return trace_id != 0; }
};

/// One span attribute (small integer payloads only — shard ids, batch
/// sizes, row counts).
struct SpanAttr {
  const char* key;
  int64_t value;
};

/// One completed span in the ring buffer. `name` must be a string
/// literal (stage names are a fixed vocabulary — see src/obs/README.md).
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  const char* name = "";
  int64_t start_us = 0;  // microseconds since the recorder's epoch
  int64_t dur_us = 0;
  uint32_t tid = 0;  // recording thread, for trace-viewer lanes
  static constexpr int kMaxAttrs = 3;
  int num_attrs = 0;
  SpanAttr attrs[kMaxAttrs] = {};
};

/// \brief Sampling span recorder: a fixed-size ring buffer of completed
/// spans plus per-stage duration histograms in the global registry.
///
/// Requests are sampled at admission (1-in-N); only sampled requests
/// (trace_id != 0) record spans, so the unsampled hot path pays one
/// relaxed load and a branch. The ring is bounded — a long-lived server
/// keeps the most recent spans, old ones are overwritten. Spans export
/// as Chrome trace-event JSON (load the file in chrome://tracing or
/// https://ui.perfetto.dev) and feed the slow-query log.
///
/// Recording takes a short mutex; this is deliberate — spans exist only
/// on sampled requests, so recorder contention is bounded by the sample
/// rate, never by traffic.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = size_t{1} << 14);

  /// Sample 1 in every `n` requests (0 disables sampling entirely, 1
  /// traces everything).
  void SetSampleEvery(uint32_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Admission-time sampling decision: returns a fresh nonzero trace id
  /// for 1-in-N calls, 0 otherwise (or always 0 when sampling is off,
  /// the runtime kill switch is thrown, or the layer is compiled out).
  uint64_t MaybeStartTrace();

  /// Fresh span id (never 0).
  uint64_t NewSpanId() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Microseconds since the recorder's construction — the time base all
  /// spans share.
  int64_t NowMicros() const {
    return ToMicros(std::chrono::steady_clock::now());
  }
  int64_t ToMicros(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
        .count();
  }

  /// Records one completed span (no-op when trace_id == 0 or the layer
  /// is compiled out). Also feeds the span's duration into the
  /// `stage.<name>_ns` histogram of the global registry, so stage
  /// latency distributions accumulate even though the ring is bounded.
  void RecordSpan(uint64_t trace_id, uint64_t span_id, uint64_t parent_id,
                  const char* name, int64_t start_us, int64_t end_us,
                  std::initializer_list<SpanAttr> attrs = {});

  /// Copies the ring's live spans (oldest first).
  std::vector<SpanRecord> Snapshot() const;

  /// Spans currently in the ring (<= capacity).
  size_t size() const;

  /// Writes the ring as Chrome trace-event JSON ("traceEvents" array of
  /// "X" complete events; ts/dur in microseconds).
  Status WriteChromeTrace(const std::string& path) const;

  /// Top-`top_n` slowest root spans (parent_id == 0) at or over
  /// `threshold_ms`, slowest first — the slow-query log.
  std::vector<SpanRecord> SlowSpans(double threshold_ms, int top_n) const;

  /// SlowSpans formatted one-per-line for the serve log.
  std::string SlowQueryLog(double threshold_ms, int top_n) const;

  void Reset();

  /// The process-wide recorder every pipeline stage records into.
  static TraceRecorder& Global();

 private:
  const size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  /// Relaxed, all four: sample_every_ is a runtime config value;
  /// admitted_ is a sampling rotation counter (1-in-N only needs each
  /// fetch_add to claim a distinct sequence number); next_trace_ /
  /// next_span_ are id allocators whose only contract is uniqueness.
  std::atomic<uint32_t> sample_every_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> next_trace_{1};
  std::atomic<uint64_t> next_span_{1};
  /// Guards only the span ring. RecordSpan feeds the registry *before*
  /// taking it, so nothing nests beneath it except by rank headroom.
  mutable Mutex mu_{"obs.trace", 12};
  std::vector<SpanRecord> ring_ UHSCM_GUARDED_BY(mu_);
  size_t next_slot_ UHSCM_GUARDED_BY(mu_) = 0;
  bool wrapped_ UHSCM_GUARDED_BY(mu_) = false;
};

/// \brief RAII span: stamps the start on construction, records on
/// destruction. Does nothing (and allocates nothing) when the context
/// is unsampled.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, const TraceContext& parent,
             const char* name)
      : recorder_(recorder), name_(name) {
    if constexpr (kObsCompiledIn) {
      if (parent) {
        ctx_.trace_id = parent.trace_id;
        parent_span_ = parent.parent_span;
        ctx_.parent_span = recorder_->NewSpanId();  // this span's own id
        start_us_ = recorder_->NowMicros();
      }
    }
  }
  ~ScopedSpan() {
    if constexpr (kObsCompiledIn) {
      if (ctx_) {
        recorder_->RecordSpan(ctx_.trace_id, ctx_.parent_span, parent_span_,
                              name_, start_us_, recorder_->NowMicros(),
                              {attrs_[0], attrs_[1], attrs_[2]});
      }
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Context for child spans: same trace, this span as parent.
  const TraceContext& context() const { return ctx_; }

  /// Attaches up to SpanRecord::kMaxAttrs attributes (extras dropped).
  void AddAttr(const char* key, int64_t value) {
    if constexpr (kObsCompiledIn) {
      if (ctx_ && num_attrs_ < SpanRecord::kMaxAttrs) {
        attrs_[num_attrs_++] = {key, value};
      }
    }
  }

 private:
  TraceRecorder* recorder_;
  const char* name_;
  TraceContext ctx_;  // trace_id + this span's id (as parent for children)
  uint64_t parent_span_ = 0;
  int64_t start_us_ = 0;
  int num_attrs_ = 0;
  SpanAttr attrs_[SpanRecord::kMaxAttrs] = {
      {nullptr, 0}, {nullptr, 0}, {nullptr, 0}};
};

}  // namespace uhscm::obs

#endif  // UHSCM_OBS_TRACE_H_
