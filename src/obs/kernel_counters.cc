#include "obs/kernel_counters.h"

namespace uhscm::obs {

void KernelCounters::Flush() {
  if constexpr (!kObsCompiledIn) {
    *this = KernelCounters{};
    return;
  }
  if (!RuntimeEnabled()) {
    *this = KernelCounters{};
    return;
  }
  // Pointers resolve once per process; the registry guarantees they stay
  // valid, so every later flush is five relaxed atomic adds.
  struct Slots {
    Counter* rows;
    Counter* blocks;
    Counter* abandon;
    Counter* probed;
    Counter* verified;
  };
  static const Slots slots = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return Slots{reg.GetCounter("scan.rows_scanned"),
                 reg.GetCounter("scan.blocks_skipped"),
                 reg.GetCounter("scan.early_abandon_calls"),
                 reg.GetCounter("mih.candidates_probed"),
                 reg.GetCounter("mih.candidates_verified")};
  }();
  if (rows_scanned != 0) slots.rows->Add(rows_scanned);
  if (blocks_skipped != 0) slots.blocks->Add(blocks_skipped);
  if (early_abandon_calls != 0) slots.abandon->Add(early_abandon_calls);
  if (mih_candidates_probed != 0) slots.probed->Add(mih_candidates_probed);
  if (mih_candidates_verified != 0) {
    slots.verified->Add(mih_candidates_verified);
  }
  *this = KernelCounters{};
}

}  // namespace uhscm::obs
