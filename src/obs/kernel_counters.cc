#include "obs/kernel_counters.h"

namespace uhscm::obs {

void KernelCounters::Flush() {
  if constexpr (!kObsCompiledIn) {
    *this = KernelCounters{};
    return;
  }
  if (!RuntimeEnabled()) {
    *this = KernelCounters{};
    return;
  }
  // Pointers resolve once per process; the registry guarantees they stay
  // valid, so every later flush is a handful of relaxed atomic adds.
  struct Slots {
    Counter* rows;
    Counter* blocks;
    Counter* abandon;
    Counter* probed;
    Counter* verified;
    Counter* join_tiles;
    Counter* join_pruned;
    Counter* join_scored;
  };
  static const Slots slots = [] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    return Slots{reg.GetCounter("scan.rows_scanned"),
                 reg.GetCounter("scan.blocks_skipped"),
                 reg.GetCounter("scan.early_abandon_calls"),
                 reg.GetCounter("mih.candidates_probed"),
                 reg.GetCounter("mih.candidates_verified"),
                 reg.GetCounter("join.tiles"),
                 reg.GetCounter("join.pairs_pruned"),
                 reg.GetCounter("join.pairs_scored")};
  }();
  if (rows_scanned != 0) slots.rows->Add(rows_scanned);
  if (blocks_skipped != 0) slots.blocks->Add(blocks_skipped);
  if (early_abandon_calls != 0) slots.abandon->Add(early_abandon_calls);
  if (mih_candidates_probed != 0) slots.probed->Add(mih_candidates_probed);
  if (mih_candidates_verified != 0) {
    slots.verified->Add(mih_candidates_verified);
  }
  if (join_tiles != 0) slots.join_tiles->Add(join_tiles);
  if (join_pairs_pruned != 0) slots.join_pruned->Add(join_pairs_pruned);
  if (join_pairs_scored != 0) slots.join_scored->Add(join_pairs_scored);
  *this = KernelCounters{};
}

}  // namespace uhscm::obs
