#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <thread>

namespace uhscm::obs {

namespace {

/// Small dense thread ids for trace-viewer lanes (std::thread::id is
/// opaque and unstable across runs).
uint32_t CurrentTid() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      epoch_(std::chrono::steady_clock::now()) {}

uint64_t TraceRecorder::MaybeStartTrace() {
  if constexpr (!kObsCompiledIn) return 0;
  const uint32_t n = sample_every_.load(std::memory_order_relaxed);
  if (n == 0 || !RuntimeEnabled()) return 0;
  const uint64_t seq = admitted_.fetch_add(1, std::memory_order_relaxed);
  if (seq % n != 0) return 0;
  return next_trace_.fetch_add(1, std::memory_order_relaxed);
}

void TraceRecorder::RecordSpan(uint64_t trace_id, uint64_t span_id,
                               uint64_t parent_id, const char* name,
                               int64_t start_us, int64_t end_us,
                               std::initializer_list<SpanAttr> attrs) {
  if constexpr (!kObsCompiledIn) return;
  if (trace_id == 0) return;
  SpanRecord rec;
  rec.trace_id = trace_id;
  rec.span_id = span_id;
  rec.parent_id = parent_id;
  rec.name = name;
  rec.start_us = start_us;
  rec.dur_us = std::max<int64_t>(0, end_us - start_us);
  rec.tid = CurrentTid();
  for (const SpanAttr& a : attrs) {
    if (a.key != nullptr && rec.num_attrs < SpanRecord::kMaxAttrs) {
      rec.attrs[rec.num_attrs++] = a;
    }
  }
  // Stage duration distributions survive ring wraparound: they
  // accumulate in the registry, keyed by the span's stage name.
  MetricsRegistry::Global()
      .GetHistogram(std::string("stage.") + name + "_ns")
      ->Record(rec.dur_us * 1000);
  MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
  } else {
    ring_[next_slot_] = rec;
    wrapped_ = true;
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  MutexLock lock(mu_);
  if (!wrapped_) return ring_;
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_slot_ + i) % ring_.size()]);
  }
  return out;
}

size_t TraceRecorder::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace output: " + path);
  }
  const std::vector<SpanRecord> spans = Snapshot();
  std::fputs("{\"traceEvents\": [", f);
  bool first = true;
  for (const SpanRecord& s : spans) {
    std::fprintf(f,
                 "%s\n  {\"name\": \"%s\", \"ph\": \"X\", \"ts\": %" PRId64
                 ", \"dur\": %" PRId64
                 ", \"pid\": 1, \"tid\": %u, \"args\": {\"trace_id\": %" PRIu64
                 ", \"span_id\": %" PRIu64 ", \"parent_id\": %" PRIu64,
                 first ? "" : ",", s.name, s.start_us, s.dur_us, s.tid,
                 s.trace_id, s.span_id, s.parent_id);
    for (int i = 0; i < s.num_attrs; ++i) {
      std::fprintf(f, ", \"%s\": %" PRId64, s.attrs[i].key, s.attrs[i].value);
    }
    std::fputs("}}", f);
    first = false;
  }
  std::fputs("\n]}\n", f);
  if (std::fclose(f) != 0) {
    return Status::Internal("error writing trace output: " + path);
  }
  return Status::OK();
}

std::vector<SpanRecord> TraceRecorder::SlowSpans(double threshold_ms,
                                                 int top_n) const {
  std::vector<SpanRecord> roots;
  for (const SpanRecord& s : Snapshot()) {
    if (s.parent_id == 0 &&
        static_cast<double>(s.dur_us) / 1000.0 >= threshold_ms) {
      roots.push_back(s);
    }
  }
  std::sort(roots.begin(), roots.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.dur_us > b.dur_us;
            });
  if (top_n >= 0 && roots.size() > static_cast<size_t>(top_n)) {
    roots.resize(static_cast<size_t>(top_n));
  }
  return roots;
}

std::string TraceRecorder::SlowQueryLog(double threshold_ms, int top_n) const {
  std::string out;
  char buffer[256];
  for (const SpanRecord& s : SlowSpans(threshold_ms, top_n)) {
    std::snprintf(buffer, sizeof(buffer),
                  "slow-query trace=%" PRIu64 " stage=%s dur_ms=%.3f",
                  s.trace_id, s.name,
                  static_cast<double>(s.dur_us) / 1000.0);
    out += buffer;
    for (int i = 0; i < s.num_attrs; ++i) {
      std::snprintf(buffer, sizeof(buffer), " %s=%" PRId64, s.attrs[i].key,
                    s.attrs[i].value);
      out += buffer;
    }
    out += '\n';
  }
  return out;
}

void TraceRecorder::Reset() {
  MutexLock lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  wrapped_ = false;
  admitted_.store(0, std::memory_order_relaxed);
}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

}  // namespace uhscm::obs
