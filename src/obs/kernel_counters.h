#ifndef UHSCM_OBS_KERNEL_COUNTERS_H_
#define UHSCM_OBS_KERNEL_COUNTERS_H_

#include <cstdint>

#include "obs/metrics.h"

namespace uhscm::obs {

/// \brief Per-batch accumulator for kernel-level work counters.
///
/// The scan and MIH kernels bump these as plain (non-atomic) fields in a
/// function-local instance — zero contention inside the kernel — and
/// flush the totals to the global registry once per batch call. When the
/// layer is compiled out (UHSCM_OBS_DISABLED) or runtime-disabled, the
/// bumps remain (plain integer adds, invisible next to the hamming
/// kernel work) but the flush becomes a no-op, so the atomics are never
/// touched.
///
/// Registry names: scan.rows_scanned, scan.blocks_skipped,
/// scan.early_abandon_calls, mih.candidates_probed,
/// mih.candidates_verified, join.tiles, join.pairs_pruned,
/// join.pairs_scored.
struct KernelCounters {
  int64_t rows_scanned = 0;
  int64_t blocks_skipped = 0;
  int64_t early_abandon_calls = 0;
  int64_t mih_candidates_probed = 0;
  int64_t mih_candidates_verified = 0;
  /// Self-join engine (src/index/self_join.h): tile-pair tasks executed,
  /// unordered pairs disposed by tile/chunk min-skips, and pairs that
  /// reached the per-pair branch. pruned + scored covers every live pair
  /// of a join call exactly once.
  int64_t join_tiles = 0;
  int64_t join_pairs_pruned = 0;
  int64_t join_pairs_scored = 0;

  /// Adds the accumulated deltas into the global registry and zeroes
  /// this instance. Safe to call with all-zero counters (cheap no-op).
  void Flush();
};

}  // namespace uhscm::obs

#endif  // UHSCM_OBS_KERNEL_COUNTERS_H_
