#ifndef UHSCM_SERVE_SHARDED_INDEX_H_
#define UHSCM_SERVE_SHARDED_INDEX_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/annotated_sync.h"
#include "common/thread_pool.h"
#include "index/neighbor.h"
#include "index/packed_codes.h"
#include "index/shard_index.h"

namespace uhscm::serve {

/// Which retrieval structure backs each shard.
enum class ShardBackend {
  /// Brute-force popcount scan (bounded-heap top-k). Exact, predictable,
  /// best for small shards or high-entropy codes.
  kLinearScan,
  /// Multi-index hashing with progressive radius growth until k verified
  /// hits are found. Exact, sub-linear when codes cluster.
  kMultiIndexHash,
};

struct ShardedIndexOptions {
  /// Number of partitions; clamped to [1, corpus size]. Each shard is an
  /// independent index searched in parallel.
  int num_shards = 1;
  ShardBackend backend = ShardBackend::kLinearScan;
  /// Substring count per MIH shard; 0 = auto (bits / log2(shard size)).
  int mih_substrings = 0;
};

/// Point-in-time copy of the whole corpus in global-id order, the unit a
/// versioned snapshot persists. Tombstoned rows keep their packed words
/// (id stability across save/load); the bitmap says which rows are dead.
struct CorpusExport {
  index::PackedCodes codes;
  /// Deletion bitmap, ceil(codes.size()/64) words; bit g set = global id
  /// g is tombstoned.
  std::vector<uint64_t> tombstone_words;
  int live = 0;
};

/// What one compaction pass reclaimed (zeroes when no shard qualified).
struct CompactionStats {
  int shards_compacted = 0;
  int rows_reclaimed = 0;

  CompactionStats& operator+=(const CompactionStats& other) {
    shards_compacted += other.shards_compacted;
    rows_reclaimed += other.rows_reclaimed;
    return *this;
  }
  bool operator==(const CompactionStats& other) const {
    return shards_compacted == other.shards_compacted &&
           rows_reclaimed == other.rows_reclaimed;
  }
};

/// \brief A corpus of packed codes partitioned into independently
/// searchable, independently *mutable* shards.
///
/// The initial corpus is split into contiguous row ranges; each shard is
/// backed by an index::ShardIndex implementation (linear scan or MIH).
/// Append routes each incoming batch to the shard with the fewest live
/// rows and assigns fresh global ids from a monotonic counter; Remove
/// tombstones a global id in place. Shard-local ids map to global ids
/// through a strictly increasing per-shard map (base offset + appended-id
/// list), so per-shard sorted result lists stay sorted after remapping
/// and the (distance, global id) ordering of merged results is
/// byte-identical — after id compaction — to a single LinearScan over the
/// surviving rows, the invariant tests/serve_test.cc pins down.
///
/// Concurrency: each shard carries a reader/writer lock. Queries take the
/// shard lock shared, Append/Remove take it exclusive (plus a corpus
/// mutex for id assignment and routing), so searches run concurrently
/// with updates and never observe a torn shard.
///
/// Search is two-level: per-shard top-k (fanned out on a ThreadPool) and
/// a k-way heap merge of the per-shard sorted lists. The per-shard method
/// `ShardTopK` is public so a batch engine can flatten (query x shard)
/// pairs into one parallel loop instead of nesting pools.
class ShardedIndex {
 public:
  /// Takes ownership of the corpus and builds all shard structures.
  explicit ShardedIndex(index::PackedCodes corpus,
                        const ShardedIndexOptions& options = {});

  /// Live (non-tombstoned) codes across all shards.
  int size() const { return live_size_.load(std::memory_order_relaxed); }
  /// All codes ever added, including tombstoned ones (== the upper bound
  /// of assigned global ids).
  int total_size() const {
    return total_size_.load(std::memory_order_relaxed);
  }
  int bits() const { return bits_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  ShardBackend backend() const { return options_.backend; }

  /// Exact top-k over the live corpus (ascending distance, then ascending
  /// global id). Shard searches run on `pool`, or on the process-wide
  /// pool when null. k is clamped to the live corpus size.
  std::vector<index::Neighbor> TopK(const uint64_t* query, int k,
                                    ThreadPool* pool = nullptr) const;

  /// Exact top-k within shard `s` only, with *global* ids.
  std::vector<index::Neighbor> ShardTopK(int s, const uint64_t* query,
                                         int k) const;

  /// Batched form of ShardTopK: one result list per query, each
  /// byte-identical to the per-query call. Linear-scan shards route
  /// through the cache-blocked SIMD batch scan, amortizing the shard's
  /// memory traffic across the whole query block; MIH shards fall back
  /// to the per-query radius search.
  std::vector<std::vector<index::Neighbor>> ShardTopKBatch(
      int s, const uint64_t* const* queries, int num_queries, int k) const;

  /// Appends a batch of codes (same bit width) to the shard with the
  /// fewest live rows. Returns the assigned global ids (consecutive,
  /// starting at the pre-call total_size()).
  std::vector<int> Append(const index::PackedCodes& batch);

  /// Tombstones one global id. Returns false when out of range or
  /// already removed.
  bool Remove(int global_id);

  /// Remove() over a list; returns how many ids were newly tombstoned.
  /// Duplicate, out-of-range, already-tombstoned, and compacted-away ids
  /// each count zero — the live counters move by exactly the number of
  /// rows that actually died.
  int RemoveIds(const std::vector<int>& global_ids);

  /// \name Tombstone compaction
  ///
  /// Dead rows keep burning scan bandwidth (and MIH bucket entries)
  /// until compacted away. Compaction rebuilds one shard over its
  /// survivors and swaps the rebuild in, remapping the global-id
  /// locator so every surviving global id resolves to its new local
  /// slot. Global ids never change, and results over the survivors are
  /// byte-identical to the uncompacted index.
  ///
  /// Protocol: the whole pass runs under the corpus meta mutex (which
  /// every mutator takes first, so the shard is write-quiescent), but
  /// the expensive survivor rebuild runs *off* the shard's writer lock
  /// — in-flight queries keep scanning the old shard the whole time.
  /// Only the final pointer swap takes the writer lock, so readers
  /// stall for a pointer exchange, not a rebuild. Writers queued on the
  /// meta mutex resume once the pass finishes.
  ///@{

  /// Compacts shard `s` if it holds any dead rows. Returns the number
  /// of rows reclaimed (0 when the shard was already clean).
  int CompactShard(int s);

  /// Compacts every shard whose dead fraction (dead rows / total rows)
  /// is >= `dead_fraction` (clamped to > 0 — a clean shard never
  /// qualifies). The decision depends only on deterministic per-shard
  /// counters, so identically-hydrated replicas compact identically.
  CompactionStats MaybeCompact(double dead_fraction);

  /// Compacts every shard holding any dead row.
  CompactionStats CompactAll() { return MaybeCompact(0.0); }
  ///@}

  /// Copies the whole corpus (live + tombstoned rows) in global-id order
  /// — the payload of a versioned snapshot save. Global ids whose rows
  /// were compacted away serialize as zeroed rows with their tombstone
  /// bit set: the id space stays dense on disk, reloads keep every
  /// surviving id stable, and the dead rows never surface.
  CorpusExport Export() const;

  /// Merges per-shard sorted result lists into the global top-k via a
  /// k-way min-heap. Exposed for the batch engine and tests.
  static std::vector<index::Neighbor> MergeTopK(
      const std::vector<std::vector<index::Neighbor>>& per_shard, int k);

 private:
  struct Shard {
    int offset = 0;      // global id of the shard's first base row
    int base_count = 0;  // contiguous base rows [offset, offset+base_count)
    /// Global ids of appended rows (local ids base_count..), strictly
    /// increasing — appended under the corpus mutex from a monotonic
    /// counter. offset/base_count/appended_ids follow a dual-guard
    /// protocol: writers hold both meta_mu_ and mu, readers hold either
    /// one. TSA cannot express an either-of guard, so they carry no
    /// GUARDED_BY; the lock-order checker still covers both locks.
    std::vector<int> appended_ids;
    std::unique_ptr<index::ShardIndex> impl UHSCM_GUARDED_BY(mu);
    /// Queries hold this shared; Append/Remove hold it exclusive. All
    /// instances share one lock class and may nest (kOrderedInstances)
    /// because Export() takes every shard lock in shard-index order.
    mutable SharedMutex mu{"index.shard", 50, lockorder::kOrderedInstances};

    int GlobalId(int local) const {
      return local < base_count
                 ? offset + local
                 : appended_ids[static_cast<size_t>(local - base_count)];
    }
  };

  /// Where a global id lives: (shard, shard-local id). A compacted-away
  /// id has shard == kGone: its row no longer exists anywhere, and every
  /// id-addressed operation must treat it as already removed.
  struct Locator {
    static constexpr int kGone = -1;
    int shard;
    int local;
  };

  /// Dead rows in shard `s`; caller holds meta_mu_.
  int ShardDeadLocked(int s) const UHSCM_REQUIRES_SHARED(meta_mu_);
  /// The meta-locked body of CompactShard; `s` must hold dead rows.
  /// Unanalyzed body: deliberately reads the old shard impl *off* the
  /// shard lock — exclusive meta_mu_ keeps the shard write-quiescent
  /// (see the compaction protocol above), which TSA cannot express.
  int CompactShardLocked(int s)
      UHSCM_REQUIRES(meta_mu_) UHSCM_NO_THREAD_SAFETY_ANALYSIS;
  /// The meta-locked body of Export. Unanalyzed body: holds the dynamic
  /// set of all shard locks (taken in shard-index order), which TSA
  /// cannot track through a loop.
  CorpusExport ExportLocked() const
      UHSCM_REQUIRES_SHARED(meta_mu_) UHSCM_NO_THREAD_SAFETY_ANALYSIS;

  ShardedIndexOptions options_;
  int bits_ = 0;
  /// Relaxed: advisory live-row count (k clamping, size accessors, stats).
  /// No data is published through it — rows are protected by the shard
  /// rwlocks and all mutation happens under meta_mu_.
  std::atomic<int> live_size_{0};
  /// Relaxed: upper bound of assigned global ids. Mutated and read under
  /// meta_mu_ on every id-addressed path; the lock-free accessor is
  /// advisory only.
  std::atomic<int> total_size_{0};
  /// Guards locator_, shard_live_, append routing, and global-id
  /// assignment. Always acquired before any shard lock. Mutators hold it
  /// exclusive; Export(), the snapshot read path, holds it shared.
  mutable SharedMutex meta_mu_{"index.meta", 60};
  std::vector<Locator> locator_ UHSCM_GUARDED_BY(meta_mu_);  // by global id
  std::vector<int> shard_live_ UHSCM_GUARDED_BY(meta_mu_);
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_SHARDED_INDEX_H_
