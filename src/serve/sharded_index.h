#ifndef UHSCM_SERVE_SHARDED_INDEX_H_
#define UHSCM_SERVE_SHARDED_INDEX_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "index/linear_scan.h"
#include "index/multi_index_hash.h"
#include "index/packed_codes.h"

namespace uhscm::serve {

/// Which retrieval structure backs each shard.
enum class ShardBackend {
  /// Brute-force popcount scan (bounded-heap top-k). Exact, predictable,
  /// best for small shards or high-entropy codes.
  kLinearScan,
  /// Multi-index hashing with progressive radius growth until k verified
  /// hits are found. Exact, sub-linear when codes cluster.
  kMultiIndexHash,
};

struct ShardedIndexOptions {
  /// Number of partitions; clamped to [1, corpus size]. Each shard is an
  /// independent index searched in parallel.
  int num_shards = 1;
  ShardBackend backend = ShardBackend::kLinearScan;
  /// Substring count per MIH shard; 0 = auto (bits / log2(shard size)).
  int mih_substrings = 0;
};

/// \brief A corpus of packed codes partitioned into independently
/// searchable shards.
///
/// The corpus is split into contiguous row ranges, so shard-local ids map
/// back to global ids by offset addition and the (distance, global id)
/// ordering of merged results is byte-identical to a single LinearScan
/// over the whole corpus — the invariant tests/serve_test.cc pins down.
///
/// Search is two-level: per-shard top-k (fanned out on a ThreadPool) and
/// a k-way heap merge of the per-shard sorted lists. The per-shard method
/// `ShardTopK` is public so a batch engine can flatten (query x shard)
/// pairs into one parallel loop instead of nesting pools.
class ShardedIndex {
 public:
  /// Takes ownership of the corpus and builds all shard structures.
  explicit ShardedIndex(index::PackedCodes corpus,
                        const ShardedIndexOptions& options = {});

  int size() const { return size_; }
  int bits() const { return bits_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  ShardBackend backend() const { return options_.backend; }

  /// Exact top-k over the whole corpus (ascending distance, then
  /// ascending global id). Shard searches run on `pool`, or on the
  /// process-wide pool when null. k is clamped to the corpus size.
  std::vector<index::Neighbor> TopK(const uint64_t* query, int k,
                                    ThreadPool* pool = nullptr) const;

  /// Exact top-k within shard `s` only, with *global* ids.
  std::vector<index::Neighbor> ShardTopK(int s, const uint64_t* query,
                                         int k) const;

  /// Batched form of ShardTopK: one result list per query, each
  /// byte-identical to the per-query call. Linear-scan shards route
  /// through the cache-blocked SIMD batch scan, amortizing the shard's
  /// memory traffic across the whole query block; MIH shards fall back
  /// to the per-query radius search.
  std::vector<std::vector<index::Neighbor>> ShardTopKBatch(
      int s, const uint64_t* const* queries, int num_queries, int k) const;

  /// Merges per-shard sorted result lists into the global top-k via a
  /// k-way min-heap. Exposed for the batch engine and tests.
  static std::vector<index::Neighbor> MergeTopK(
      const std::vector<std::vector<index::Neighbor>>& per_shard, int k);

 private:
  struct Shard {
    int offset = 0;  // global id of the shard's first code
    std::unique_ptr<index::LinearScanIndex> scan;
    std::unique_ptr<index::MultiIndexHashTable> mih;
  };

  ShardedIndexOptions options_;
  int size_ = 0;
  int bits_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_SHARDED_INDEX_H_
