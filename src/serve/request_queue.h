#ifndef UHSCM_SERVE_REQUEST_QUEUE_H_
#define UHSCM_SERVE_REQUEST_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "common/annotated_sync.h"
#include "common/status.h"
#include "index/neighbor.h"
#include "obs/trace.h"

namespace uhscm::serve {

/// What a pipeline client's future resolves to: either an OK status and
/// the ascending (distance, id) neighbor list, or a non-OK status (the
/// pipeline drained before the request was served, or the request was
/// malformed) and an empty list.
struct SearchResponse {
  Status status;
  std::vector<index::Neighbor> neighbors;
};

/// One admitted query waiting to be batched: its packed words, the
/// requested k, the admission timestamp (for time-in-queue accounting),
/// the trace context the sampler assigned at admission (trace_id 0 for
/// the unsampled majority; parent_span is the root "request" span the
/// batcher completes when the response resolves), and the promise the
/// client's future is attached to.
struct PendingRequest {
  std::vector<uint64_t> words;
  int k = 0;
  std::chrono::steady_clock::time_point admit_time;
  /// Absolute deadline; time_point::max() means none. The batcher
  /// checks it at flush time — an overdue request resolves
  /// kDeadlineExceeded instead of being dispatched — and again before
  /// any retry, so a request never burns replica time it can no longer
  /// use.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  obs::TraceContext trace;
  std::promise<SearchResponse> promise;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

/// \brief Bounded MPMC admission queue: the front door of the async
/// serve pipeline.
///
/// Any number of client threads Submit single queries and immediately
/// receive a future; the batcher's flush thread collects them into
/// adaptive batches with CollectBatch. The bound is the backpressure
/// mechanism: when the queue is full, Submit blocks (TrySubmit returns
/// false) until the batcher drains it, so a slow engine surfaces as
/// client-side pushback instead of unbounded memory growth.
///
/// Shutdown protocol: Close() rejects all later submissions with an
/// Unavailable status and wakes the collector, which stops popping (a
/// partially collected batch is still returned once and flushed with
/// real results); FailPending() then completes every request still
/// queued with the given shutdown status — no request is ever silently
/// dropped.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity);

  /// Admits one query (num_words packed words, copied) and returns the
  /// future its batch will complete. Blocks while the queue is full;
  /// after Close() returns an already-completed future carrying an
  /// Unavailable status. `deadline` (absolute; time_point::max() = none)
  /// rides along for the batcher to enforce.
  std::future<SearchResponse> Submit(
      const uint64_t* words, int num_words, int k,
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max());

  /// Non-blocking Submit: returns false (and leaves *out untouched) when
  /// the queue is full. A closed queue still "succeeds" with a rejected
  /// ready future, mirroring Submit.
  bool TrySubmit(const uint64_t* words, int num_words, int k,
                 std::future<SearchResponse>* out);

  /// Collects the next batch for the flush thread: blocks until at least
  /// one request is queued, then keeps collecting until either
  /// `max_batch` requests are in hand or `timeout` has elapsed since the
  /// batch opened — B-or-T, whichever first. Returns false only when the
  /// queue is closed and nothing was collected (the flush thread's exit
  /// signal). A close mid-collection returns the partial batch.
  bool CollectBatch(int max_batch, std::chrono::microseconds timeout,
                    std::vector<PendingRequest>* out);

  /// Rejects all future submissions and wakes every waiter. Requests
  /// already queued stay queued (see FailPending).
  void Close();

  /// Completes every still-queued request's promise with `status` and
  /// empties the queue. Returns how many were failed. Call after Close()
  /// + joining the collector; racing a live collector would hand it and
  /// the drain the same requests.
  int FailPending(const Status& status);

  /// Requests currently queued (admitted, not yet collected).
  size_t depth() const;
  size_t capacity() const { return capacity_; }
  bool closed() const;

  /// Submissions rejected because the queue was closed (every such
  /// caller got an immediately-resolved Unavailable future). Counted
  /// here, at the only place that can see them race-free.
  int64_t rejected() const;
  void ResetRejected();

 private:
  const size_t capacity_;
  /// Leaf lock in the batcher hierarchy: held only around queue state,
  /// never while calling out (promises resolve outside it).
  mutable Mutex mu_{"serve.queue", 30};
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<PendingRequest> queue_ UHSCM_GUARDED_BY(mu_);
  bool closed_ UHSCM_GUARDED_BY(mu_) = false;
  int64_t rejected_ UHSCM_GUARDED_BY(mu_) = 0;
};

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_REQUEST_QUEUE_H_
