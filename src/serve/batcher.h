#ifndef UHSCM_SERVE_BATCHER_H_
#define UHSCM_SERVE_BATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/request_queue.h"
#include "serve/router.h"
#include "serve/serve_stats.h"

namespace uhscm::serve {

struct BatcherOptions {
  /// B: flush as soon as this many requests are collected.
  int max_batch = 32;
  /// T: flush whatever has been collected this many microseconds after
  /// the batch opened (first request popped), even if fewer than B.
  /// B-or-T, whichever first — small under load (B wins, big batches for
  /// the SIMD kernels), bounded-latency when idle (T wins, a lone
  /// straggler waits at most T).
  int64_t timeout_us = 200;
  /// Admission-queue bound (backpressure). 0 = auto: enough for a few
  /// batches per replica (8 * max_batch * replicas), so queue wait stays
  /// a handful of flush intervals even at saturation.
  size_t queue_capacity = 0;
  /// Batches allowed past the batcher at once, across all replicas.
  /// 0 = auto: 2 per replica (one executing + one queued keeps every
  /// engine busy without building a deep engine-side queue). This is
  /// what makes backpressure end-to-end: when the engines fall behind,
  /// the flush thread blocks here, the admission queue fills, and
  /// Submit pushes back on clients — memory stays bounded at any
  /// overload.
  int max_inflight_batches = 0;
};

/// \brief The adaptive-batching stage of the async pipeline: one flush
/// thread that turns the admission queue's single-query requests into
/// engine-shaped batches and routes each to a replica.
///
///   clients --Submit--> RequestQueue --CollectBatch(B,T)--> Batcher
///       --group by k, pack--> Router::Pick() --SubmitBatch--> replica
///
/// Submit is the whole client API: hand over one packed query, get a
/// future. The flush thread collects up to B requests (or T µs), packs
/// each same-k group into one PackedCodes batch, and dispatches it
/// non-blocking on the routed engine — so the next batch is being
/// collected while earlier ones are still searching, and with N replicas
/// up to N batches execute concurrently. Results are byte-identical to
/// calling QueryEngine::Search yourself: same corpus, same epoch, same
/// (distance, id) lists.
///
/// Shutdown: Drain() (also run by the destructor) closes the queue so
/// new Submits are rejected with an Unavailable status, lets the flush
/// thread finish its in-hand batch, completes every request still queued
/// with a shutdown Status, and waits for all dispatched batches to call
/// back — every future ever handed out resolves; nothing is dropped.
/// Drain returns before the engines themselves are torn down (their own
/// Drain joins dispatch threads and pools), which is the destruction
/// ordering that makes pipeline exit race-free.
class Batcher {
 public:
  /// The router (and its replica set) must outlive the batcher.
  explicit Batcher(Router* router, const BatcherOptions& options = {});
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Admits one query (num_words must equal the corpus words-per-code;
  /// mismatches resolve immediately with InvalidArgument). Blocks while
  /// the admission queue is full — backpressure, not queue growth.
  std::future<SearchResponse> Submit(const uint64_t* words, int num_words,
                                     int k);

  /// Convenience: submit query `q` of a packed block.
  std::future<SearchResponse> Submit(const index::PackedCodes& queries, int q,
                                     int k);

  /// Rejects new work, flushes pending requests with a shutdown Status,
  /// and joins cleanly. Idempotent.
  void Drain();

  /// Pipeline counters + current queue depth, merged with the replica
  /// set's aggregated engine counters (cache, updates, epoch).
  ServeStatsSnapshot stats() const;

  /// Zeroes the pipeline counters and every replica's engine stats.
  void ResetStats();

  size_t queue_depth() const { return queue_.depth(); }
  const BatcherOptions& options() const { return options_; }

 private:
  void FlushLoop();
  /// Packs one collected batch, routes it, and dispatches per-k groups.
  void FlushBatch(std::vector<PendingRequest> batch, bool by_timeout);

  Router* router_;
  BatcherOptions options_;
  int words_per_code_;
  int bits_;
  int max_inflight_batches_;
  RequestQueue queue_;
  PipelineStats pipeline_stats_;
  std::thread flush_thread_;
  std::atomic<bool> drained_{false};
  std::mutex drain_mu_;  // serializes Drain callers
  /// Batches dispatched to engines whose callbacks haven't returned.
  /// Drain waits on this so no callback can outlive the batcher.
  std::atomic<int64_t> inflight_batches_{0};
  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
};

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_BATCHER_H_
