#ifndef UHSCM_SERVE_BATCHER_H_
#define UHSCM_SERVE_BATCHER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotated_sync.h"
#include "common/rng.h"
#include "serve/request_queue.h"
#include "serve/router.h"
#include "serve/serve_stats.h"

namespace uhscm::serve {

struct BatcherOptions {
  /// B: flush as soon as this many requests are collected.
  int max_batch = 32;
  /// T: flush whatever has been collected this many microseconds after
  /// the batch opened (first request popped), even if fewer than B.
  /// B-or-T, whichever first — small under load (B wins, big batches for
  /// the SIMD kernels), bounded-latency when idle (T wins, a lone
  /// straggler waits at most T).
  int64_t timeout_us = 200;
  /// Admission-queue bound (backpressure). 0 = auto: enough for a few
  /// batches per replica (8 * max_batch * replicas), so queue wait stays
  /// a handful of flush intervals even at saturation.
  size_t queue_capacity = 0;
  /// Batches allowed past the batcher at once, across all replicas.
  /// 0 = auto: 2 per replica (one executing + one queued keeps every
  /// engine busy without building a deep engine-side queue). This is
  /// what makes backpressure end-to-end: when the engines fall behind,
  /// the flush thread blocks here, the admission queue fills, and
  /// Submit pushes back on clients — memory stays bounded at any
  /// overload.
  int max_inflight_batches = 0;

  /// Total dispatch attempts per batch (1 = no retries). A batch whose
  /// replica completes it with Unavailable — a kill landed mid-stream,
  /// or the engine was already dead when the router's view went stale —
  /// is re-routed to a surviving replica after a jittered exponential
  /// backoff, up to this many attempts. Replicas are byte-identical, so
  /// a retried batch returns exactly what the first attempt would have.
  int max_attempts = 3;
  /// Base backoff before attempt 2; doubles per attempt, ±50% jitter
  /// (seeded — see jitter_seed). Kept small: the failure mode is a dead
  /// replica, not an overloaded one, so there is nothing to wait out.
  int64_t retry_backoff_us = 100;

  /// Hedging: fraction of dispatched batches allowed a duplicate
  /// dispatch (0 = off, clamped to [0,1]). A batch still in flight when
  /// the hedge delay elapses is re-submitted to a *different* live
  /// replica; the first completion wins, the loser's results are
  /// discarded. Caps tail latency when one replica stalls, at a bounded
  /// duplicate-work cost.
  double hedge_budget = 0.0;
  /// When to hedge, microseconds after dispatch. 0 = auto: the live p99
  /// of the engines' stage.search_ns histogram (falls back to the
  /// replicas' completion-latency p99, then 1ms, while those are still
  /// empty) — "slower than the 99th percentile search" is the signal
  /// that this batch landed on a straggler.
  int64_t hedge_delay_us = 0;

  /// Seed for the retry-jitter draws, so a test's retry schedule is
  /// reproducible.
  uint64_t jitter_seed = 2023;
};

/// \brief The adaptive-batching stage of the async pipeline: one flush
/// thread that turns the admission queue's single-query requests into
/// engine-shaped batches and routes each to a replica.
///
///   clients --Submit--> RequestQueue --CollectBatch(B,T)--> Batcher
///       --group by k, pack--> Router::Pick() --SubmitBatch--> replica
///
/// Submit is the whole client API: hand over one packed query, get a
/// future. The flush thread collects up to B requests (or T µs), packs
/// each same-k group into one PackedCodes batch, and dispatches it
/// non-blocking on the routed engine — so the next batch is being
/// collected while earlier ones are still searching, and with N replicas
/// up to N batches execute concurrently. Results are byte-identical to
/// calling QueryEngine::Search yourself: same corpus, same epoch, same
/// (distance, id) lists.
///
/// **Failure semantics.** A request may carry an absolute deadline; at
/// flush time overdue requests resolve kDeadlineExceeded without
/// touching a replica. A dispatched batch that comes back Unavailable
/// (its replica was killed) is retried on a surviving replica with
/// jittered exponential backoff — bounded attempts, never past the
/// batch's earliest deadline. When *every* replica is dead the batch
/// fails immediately with Unavailable (no retries — there is nothing to
/// route to until a respawn lands). With a hedge budget set, a batch
/// still unresolved after the hedge delay is duplicated onto a second
/// replica, first completion wins. Every path resolves every future
/// exactly once; retries and hedges never double-complete a promise.
///
/// Shutdown: Drain() (also run by the destructor) closes the queue so
/// new Submits are rejected with an Unavailable status, lets the flush
/// thread finish its in-hand batch, completes every request still queued
/// with a shutdown Status, drops not-yet-fired hedges, and waits for all
/// dispatched batches (including in-flight hedges) to call back — every
/// future ever handed out resolves; nothing is dropped. Drain returns
/// before the engines themselves are torn down (their own Drain joins
/// dispatch threads and pools), which is the destruction ordering that
/// makes pipeline exit race-free.
class Batcher {
 public:
  /// The router (and its replica set) must outlive the batcher.
  explicit Batcher(Router* router, const BatcherOptions& options = {});
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Admits one query (num_words must equal the corpus words-per-code;
  /// mismatches resolve immediately with InvalidArgument). Blocks while
  /// the admission queue is full — backpressure, not queue growth.
  /// `deadline` (absolute; time_point::max() = none) is enforced at
  /// flush and retry time: an overdue request resolves
  /// kDeadlineExceeded instead of occupying a replica.
  std::future<SearchResponse> Submit(
      const uint64_t* words, int num_words, int k,
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max());

  /// Convenience: submit query `q` of a packed block.
  std::future<SearchResponse> Submit(
      const index::PackedCodes& queries, int q, int k,
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max());

  /// Rejects new work, flushes pending requests with a shutdown Status,
  /// and joins cleanly. Idempotent.
  void Drain();

  /// Pipeline counters + current queue depth, merged with the replica
  /// set's aggregated engine counters (cache, updates, epoch, health).
  ServeStatsSnapshot stats() const;

  /// Zeroes the pipeline counters and every replica's engine stats.
  void ResetStats();

  size_t queue_depth() const { return queue_.depth(); }
  const BatcherOptions& options() const { return options_; }

 private:
  /// One dispatched per-k group: the packed batch plus the resolution
  /// state machine that retries, hedging, and completion race over.
  /// Shared by the flush thread, engine callbacks, and the hedge timer;
  /// defined in the .cc.
  struct GroupState;

  void FlushLoop();
  /// Packs one collected batch, expires overdue requests, and
  /// dispatches per-k groups (plus their hedges).
  void FlushBatch(std::vector<PendingRequest> batch, bool by_timeout);
  /// Routes and submits one attempt of the group (the caller has
  /// already counted it in group->outstanding). With every replica dead,
  /// fails the group immediately.
  void DispatchGroup(const std::shared_ptr<GroupState>& group, bool is_hedge);
  /// The single resolution point: first OK completion wins, an
  /// Unavailable completion retries or finally fails, and the group
  /// settles (releases its inflight slot) when the last outstanding
  /// attempt has called back.
  void OnGroupCompletion(const std::shared_ptr<GroupState>& group,
                         bool is_hedge, Status status,
                         std::vector<std::vector<index::Neighbor>> results);
  /// Queues the group on the hedge timer (weak — a resolved group just
  /// expires).
  void ScheduleHedge(const std::shared_ptr<GroupState>& group);
  /// Issues the hedge attempt if the group is still unresolved, a
  /// distinct live replica exists, and the budget allows.
  void FireHedge(const std::shared_ptr<GroupState>& group);
  void HedgeLoop();
  /// Resolves the configured (or auto, p99-derived) hedge delay.
  std::chrono::nanoseconds HedgeDelay();
  /// Jittered exponential backoff before retry attempt `attempt`+1.
  std::chrono::microseconds RetryBackoff(int attempt);

  Router* router_;
  BatcherOptions options_;
  int words_per_code_;
  int bits_;
  int max_inflight_batches_;
  RequestQueue queue_;
  PipelineStats pipeline_stats_;
  std::thread flush_thread_;
  /// Release/acquire: published after the full teardown completes, so a
  /// second Drain caller's early return observes every effect of the
  /// first (joined threads, failed futures, settled groups).
  std::atomic<bool> drained_{false};
  /// Serializes Drain callers; the highest-ranked batcher lock because
  /// Drain acquires the queue, hedge, and inflight locks beneath it.
  Mutex drain_mu_{"batcher.drain", 96};
  /// Per-k groups dispatched to engines that haven't settled (final
  /// callback not yet returned, hedges included). Drain waits on this so
  /// no callback can outlive the batcher. Relaxed: both wait loops load
  /// it under inflight_mu_, and every transition that matters to a
  /// waiter (add in FlushBatch, sub at settle) also happens under
  /// inflight_mu_ — the mutex orders the handoff, the atomic only lets
  /// stats() read the depth lock-free.
  std::atomic<int64_t> inflight_batches_{0};
  Mutex inflight_mu_{"batcher.inflight", 28};
  CondVar inflight_cv_;

  /// Hedge budget accounting: groups dispatched vs hedges issued, the
  /// ratio the budget bounds. Relaxed: monotonic counters; the budget
  /// check tolerates a momentarily stale ratio (it can only under-issue
  /// by one hedge, never overrun the budget unboundedly).
  std::atomic<int64_t> groups_dispatched_{0};
  std::atomic<int64_t> hedges_issued_{0};

  /// The hedge timer: a deadline-ordered queue of still-inflight groups,
  /// served by one thread (started only when hedge_budget > 0).
  Mutex hedge_mu_{"batcher.hedge", 26};
  CondVar hedge_cv_;
  std::multimap<std::chrono::steady_clock::time_point,
                std::weak_ptr<GroupState>>
      hedge_queue_ UHSCM_GUARDED_BY(hedge_mu_);
  bool hedge_stop_ UHSCM_GUARDED_BY(hedge_mu_) = false;
  std::thread hedge_thread_;

  Mutex jitter_mu_{"batcher.jitter", 22};
  Rng jitter_rng_ UHSCM_GUARDED_BY(jitter_mu_);
};

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_BATCHER_H_
