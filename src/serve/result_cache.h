#ifndef UHSCM_SERVE_RESULT_CACHE_H_
#define UHSCM_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/annotated_sync.h"
#include "index/neighbor.h"

namespace uhscm::serve {

/// Cache key: the packed query bits, the requested k, and the corpus
/// epoch the result was computed against. Two queries whose sign patterns
/// pack to the same words are the same lookup — the common case under
/// production traffic, where popular queries repeat. The epoch makes
/// stale hits impossible: every Append/Remove bumps the engine's epoch,
/// so entries computed before an update can never answer a query issued
/// after it (they age out through normal LRU eviction).
struct CacheKey {
  std::vector<uint64_t> words;
  int k = 0;
  uint64_t epoch = 0;

  bool operator==(const CacheKey& other) const {
    return k == other.k && epoch == other.epoch && words == other.words;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    // FNV-1a over the packed words, k, and epoch — same scheme
    // io/serialize uses for checksums, cheap and well distributed for bit
    // patterns.
    uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](uint64_t v) {
      for (int byte = 0; byte < 8; ++byte) {
        h ^= (v >> (byte * 8)) & 0xFF;
        h *= 1099511628211ULL;
      }
    };
    for (uint64_t w : key.words) mix(w);
    mix(static_cast<uint64_t>(key.k));
    mix(key.epoch);
    return static_cast<size_t>(h);
  }
};

/// Monotonic counters a ResultCache keeps about itself (surfaced through
/// ServeStatsSnapshot so operators can see the cache working).
struct ResultCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
};

/// \brief Thread-safe LRU cache of top-k result lists.
///
/// A single mutex guards the map + recency list; entries are whole
/// neighbor vectors, copied out on hit so callers never hold references
/// into the cache. Capacity 0 disables caching entirely (every Lookup
/// misses, Insert is a no-op) so the engine can run cacheless without
/// branching at each call site.
class ResultCache {
 public:
  explicit ResultCache(size_t capacity);

  /// On hit copies the cached neighbors into *out, refreshes recency and
  /// returns true.
  bool Lookup(const CacheKey& key, std::vector<index::Neighbor>* out);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry when at capacity.
  void Insert(const CacheKey& key, std::vector<index::Neighbor> neighbors);

  void Clear();

  /// Hit/miss/eviction counters since construction or ResetStats().
  ResultCacheStats stats() const;
  void ResetStats();

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    CacheKey key;
    std::vector<index::Neighbor> neighbors;
  };

  size_t capacity_;
  /// Leaf lock: nothing else is ever acquired while it is held.
  mutable Mutex mu_{"serve.cache", 20};
  ResultCacheStats stats_ UHSCM_GUARDED_BY(mu_);
  /// Front = most recently used.
  std::list<Entry> lru_ UHSCM_GUARDED_BY(mu_);
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_ UHSCM_GUARDED_BY(mu_);
};

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_RESULT_CACHE_H_
