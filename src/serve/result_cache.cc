#include "serve/result_cache.h"

namespace uhscm::serve {

ResultCache::ResultCache(size_t capacity) : capacity_(capacity) {}

bool ResultCache::Lookup(const CacheKey& key,
                         std::vector<index::Neighbor>* out) {
  // A disabled cache must stay lock-free: the capacity-0 configuration
  // exists to avoid cache overhead, so it cannot become a per-query
  // contention point. Its counters simply stay zero.
  if (capacity_ == 0) return false;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->neighbors;
  ++stats_.hits;
  return true;
}

void ResultCache::Insert(const CacheKey& key,
                         std::vector<index::Neighbor> neighbors) {
  if (capacity_ == 0) return;
  MutexLock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent misses on the same key race to insert; last write wins
    // and refreshes recency — both computed the same exact result.
    it->second->neighbors = std::move(neighbors);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(neighbors)});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ResultCache::Clear() {
  MutexLock lock(mu_);
  lru_.clear();
  index_.clear();
}

ResultCacheStats ResultCache::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void ResultCache::ResetStats() {
  MutexLock lock(mu_);
  stats_ = ResultCacheStats{};
}

size_t ResultCache::size() const {
  MutexLock lock(mu_);
  return lru_.size();
}

}  // namespace uhscm::serve
