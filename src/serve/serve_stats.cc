#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>

namespace uhscm::serve {

ServeStats::ServeStats(size_t max_latency_samples)
    : max_samples_(std::max<size_t>(1, max_latency_samples)) {}

void ServeStats::RecordBatch(int num_queries, int hits,
                             double elapsed_seconds) {
  if (num_queries <= 0) return;
  const double per_query_ms = elapsed_seconds * 1e3;
  std::lock_guard<std::mutex> lock(mu_);
  queries_ += num_queries;
  batches_ += 1;
  cache_hits_ += hits;
  cache_misses_ += num_queries - hits;
  busy_seconds_ += elapsed_seconds;
  for (int i = 0; i < num_queries; ++i) {
    if (latencies_ms_.size() < max_samples_) {
      latencies_ms_.push_back(per_query_ms);
    } else {
      latencies_ms_[next_slot_] = per_query_ms;
      next_slot_ = (next_slot_ + 1) % max_samples_;
    }
  }
}

ServeStatsSnapshot ServeStats::Snapshot() const {
  std::vector<double> samples;
  ServeStatsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.queries = queries_;
    snap.batches = batches_;
    snap.cache_hits = cache_hits_;
    snap.cache_misses = cache_misses_;
    snap.busy_seconds = busy_seconds_;
    samples = latencies_ms_;
  }
  if (!samples.empty()) {
    double sum = 0.0;
    for (double s : samples) sum += s;
    snap.latency_mean_ms = sum / static_cast<double>(samples.size());
    snap.latency_p99_ms = Percentile(samples, 99.0);
    snap.latency_p50_ms = Percentile(std::move(samples), 50.0);
  }
  return snap;
}

void ServeStats::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  latencies_ms_.clear();
  next_slot_ = 0;
  queries_ = 0;
  batches_ = 0;
  cache_hits_ = 0;
  cache_misses_ = 0;
  busy_seconds_ = 0.0;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest sample >= p percent of the distribution.
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[rank > 0 ? rank - 1 : 0];
}

int BatchSizeBucket(int size) {
  if (size <= 1) return 0;
  int bucket = 0;
  // Smallest b with size <= 2^b.
  while (bucket < kBatchSizeBuckets - 1 && (1 << bucket) < size) ++bucket;
  return bucket;
}

std::string BatchSizeBucketLabel(int bucket) {
  if (bucket <= 0) return "1";
  if (bucket == 1) return "2";
  if (bucket >= kBatchSizeBuckets - 1) {
    return ">" + std::to_string(1 << (kBatchSizeBuckets - 2));
  }
  return "<=" + std::to_string(1 << bucket);
}

PipelineStats::PipelineStats(size_t max_latency_samples)
    : max_samples_(std::max<size_t>(1, max_latency_samples)) {}

namespace {
/// Bounded ring-buffer append shared by the two sample windows.
void PushSample(std::vector<double>* samples, size_t* next_slot,
                size_t max_samples, double value) {
  if (samples->size() < max_samples) {
    samples->push_back(value);
  } else {
    (*samples)[*next_slot] = value;
    *next_slot = (*next_slot + 1) % max_samples;
  }
}
}  // namespace

void PipelineStats::RecordFlush(int batch_size, bool by_timeout) {
  if (batch_size <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  (by_timeout ? flushes_by_timeout_ : flushes_by_size_) += 1;
  batch_size_hist_[static_cast<size_t>(BatchSizeBucket(batch_size))] += 1;
}

void PipelineStats::RecordRequestDone(double queue_seconds,
                                      double total_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  requests_done_ += 1;
  PushSample(&queue_wait_ms_, &next_queue_slot_, max_samples_,
             queue_seconds * 1e3);
  PushSample(&total_latency_ms_, &next_total_slot_, max_samples_,
             total_seconds * 1e3);
}

void PipelineStats::RecordRejected(int count) {
  if (count <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  rejected_ += count;
}

void PipelineStats::FillSnapshot(ServeStatsSnapshot* snap) const {
  std::vector<double> queue_waits, totals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap->queries = requests_done_;
    snap->batches = flushes_by_size_ + flushes_by_timeout_;
    snap->batches_flushed_by_size = flushes_by_size_;
    snap->batches_flushed_by_timeout = flushes_by_timeout_;
    snap->rejected_requests = rejected_;
    snap->batch_size_hist = batch_size_hist_;
    snap->busy_seconds = wall_.ElapsedSeconds();
    queue_waits = queue_wait_ms_;
    totals = total_latency_ms_;
  }
  if (!totals.empty()) {
    double sum = 0.0;
    for (double s : totals) sum += s;
    snap->latency_mean_ms = sum / static_cast<double>(totals.size());
    snap->latency_p99_ms = Percentile(totals, 99.0);
    snap->latency_p50_ms = Percentile(std::move(totals), 50.0);
  }
  if (!queue_waits.empty()) {
    snap->time_in_queue_p99_ms = Percentile(queue_waits, 99.0);
    snap->time_in_queue_p50_ms = Percentile(std::move(queue_waits), 50.0);
  }
}

void PipelineStats::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  wall_.Restart();
  requests_done_ = 0;
  rejected_ = 0;
  flushes_by_size_ = 0;
  flushes_by_timeout_ = 0;
  batch_size_hist_.fill(0);
  next_queue_slot_ = 0;
  queue_wait_ms_.clear();
  next_total_slot_ = 0;
  total_latency_ms_.clear();
}

ServeStatsSnapshot AggregateServeStats(
    const std::vector<ServeStatsSnapshot>& per_replica) {
  ServeStatsSnapshot agg;
  agg.replicas = static_cast<int>(per_replica.size());
  for (const ServeStatsSnapshot& snap : per_replica) {
    agg.queries += snap.queries;
    agg.batches += snap.batches;
    agg.cache_hits += snap.cache_hits;
    agg.cache_misses += snap.cache_misses;
    agg.cache_evictions += snap.cache_evictions;
    agg.appends += snap.appends;
    agg.removes += snap.removes;
    agg.compactions += snap.compactions;
    agg.compact_rows_reclaimed += snap.compact_rows_reclaimed;
    agg.compaction_ms += snap.compaction_ms;
    agg.busy_seconds += snap.busy_seconds;
    agg.epoch = std::max(agg.epoch, snap.epoch);
    agg.latency_p50_ms = std::max(agg.latency_p50_ms, snap.latency_p50_ms);
    agg.latency_p99_ms = std::max(agg.latency_p99_ms, snap.latency_p99_ms);
    agg.latency_mean_ms = std::max(agg.latency_mean_ms, snap.latency_mean_ms);
  }
  return agg;
}

}  // namespace uhscm::serve
