#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>

namespace uhscm::serve {

ServeStats::ServeStats(size_t max_latency_samples)
    : max_samples_(std::max<size_t>(1, max_latency_samples)) {}

void ServeStats::RecordBatch(int num_queries, int hits,
                             double elapsed_seconds) {
  if (num_queries <= 0) return;
  const double per_query_ms = elapsed_seconds * 1e3;
  std::lock_guard<std::mutex> lock(mu_);
  queries_ += num_queries;
  batches_ += 1;
  cache_hits_ += hits;
  cache_misses_ += num_queries - hits;
  busy_seconds_ += elapsed_seconds;
  for (int i = 0; i < num_queries; ++i) {
    if (latencies_ms_.size() < max_samples_) {
      latencies_ms_.push_back(per_query_ms);
    } else {
      latencies_ms_[next_slot_] = per_query_ms;
      next_slot_ = (next_slot_ + 1) % max_samples_;
    }
  }
}

ServeStatsSnapshot ServeStats::Snapshot() const {
  std::vector<double> samples;
  ServeStatsSnapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.queries = queries_;
    snap.batches = batches_;
    snap.cache_hits = cache_hits_;
    snap.cache_misses = cache_misses_;
    snap.busy_seconds = busy_seconds_;
    samples = latencies_ms_;
  }
  if (!samples.empty()) {
    double sum = 0.0;
    for (double s : samples) sum += s;
    snap.latency_mean_ms = sum / static_cast<double>(samples.size());
    snap.latency_p99_ms = Percentile(samples, 99.0);
    snap.latency_p50_ms = Percentile(std::move(samples), 50.0);
  }
  return snap;
}

void ServeStats::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  latencies_ms_.clear();
  next_slot_ = 0;
  queries_ = 0;
  batches_ = 0;
  cache_hits_ = 0;
  cache_misses_ = 0;
  busy_seconds_ = 0.0;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest sample >= p percent of the distribution.
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[rank > 0 ? rank - 1 : 0];
}

}  // namespace uhscm::serve
