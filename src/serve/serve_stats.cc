#include "serve/serve_stats.h"

#include <algorithm>
#include <cmath>

namespace uhscm::serve {

namespace {

constexpr double kNsPerMs = 1e6;

/// Clamps a seconds value into a non-negative nanosecond count.
int64_t SecondsToNanos(double seconds) {
  if (seconds <= 0.0) return 0;
  return static_cast<int64_t>(seconds * 1e9);
}

/// Derives the latency_*_ms summary fields from a nanosecond histogram.
void FillLatencyFields(const obs::HistogramSnapshot& hist,
                       ServeStatsSnapshot* snap) {
  if (hist.empty()) return;
  snap->latency_mean_ms = hist.mean() / kNsPerMs;
  snap->latency_p50_ms =
      static_cast<double>(hist.ValueAtPercentile(50.0)) / kNsPerMs;
  snap->latency_p99_ms =
      static_cast<double>(hist.ValueAtPercentile(99.0)) / kNsPerMs;
}

}  // namespace

ServeStats::ServeStats() = default;

void ServeStats::RecordBatch(int num_queries, int hits,
                             double elapsed_seconds) {
  if (num_queries <= 0) return;
  // Every query in the batch observes the batch's completion latency;
  // RecordN folds all of them into the histogram in O(1).
  latency_ns_.RecordN(SecondsToNanos(elapsed_seconds), num_queries);
  MutexLock lock(mu_);
  queries_ += num_queries;
  batches_ += 1;
  cache_hits_ += hits;
  cache_misses_ += num_queries - hits;
  busy_seconds_ += elapsed_seconds;
}

ServeStatsSnapshot ServeStats::Snapshot() const {
  ServeStatsSnapshot snap;
  {
    MutexLock lock(mu_);
    snap.queries = queries_;
    snap.batches = batches_;
    snap.cache_hits = cache_hits_;
    snap.cache_misses = cache_misses_;
    snap.busy_seconds = busy_seconds_;
    snap.wall_seconds = wall_.ElapsedSeconds();
  }
  snap.latency_hist = latency_ns_.Snapshot();
  FillLatencyFields(snap.latency_hist, &snap);
  return snap;
}

void ServeStats::Reset() {
  MutexLock lock(mu_);
  latency_ns_.Reset();
  wall_.Restart();
  queries_ = 0;
  batches_ = 0;
  cache_hits_ = 0;
  cache_misses_ = 0;
  busy_seconds_ = 0.0;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the smallest sample >= p percent of the distribution.
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[rank > 0 ? rank - 1 : 0];
}

int BatchSizeBucket(int size) {
  if (size <= 1) return 0;
  int bucket = 0;
  // Smallest b with size <= 2^b.
  while (bucket < kBatchSizeBuckets - 1 && (1 << bucket) < size) ++bucket;
  return bucket;
}

std::string BatchSizeBucketLabel(int bucket) {
  if (bucket <= 0) return "1";
  if (bucket == 1) return "2";
  // Built via append: GCC 12's -Wrestrict false-positives on
  // `literal + std::to_string(...)` at -O2 -DNDEBUG (GCC PR105651).
  if (bucket >= kBatchSizeBuckets - 1) {
    std::string label(">");
    label += std::to_string(1 << (kBatchSizeBuckets - 2));
    return label;
  }
  std::string label("<=");
  label += std::to_string(1 << bucket);
  return label;
}

PipelineStats::PipelineStats() = default;

void PipelineStats::RecordFlush(int batch_size, bool by_timeout) {
  if (batch_size <= 0) return;
  MutexLock lock(mu_);
  (by_timeout ? flushes_by_timeout_ : flushes_by_size_) += 1;
  batch_size_hist_[static_cast<size_t>(BatchSizeBucket(batch_size))] += 1;
}

void PipelineStats::RecordRequestDone(double queue_seconds,
                                      double total_seconds) {
  queue_wait_ns_.Record(SecondsToNanos(queue_seconds));
  total_latency_ns_.Record(SecondsToNanos(total_seconds));
  MutexLock lock(mu_);
  requests_done_ += 1;
}

void PipelineStats::RecordRejected(int count) {
  if (count <= 0) return;
  MutexLock lock(mu_);
  rejected_ += count;
}

void PipelineStats::RecordRetry() {
  MutexLock lock(mu_);
  retries_ += 1;
}

void PipelineStats::RecordHedge() {
  MutexLock lock(mu_);
  hedges_ += 1;
}

void PipelineStats::RecordHedgeWin() {
  MutexLock lock(mu_);
  hedge_wins_ += 1;
}

void PipelineStats::RecordDeadlineExceeded(int count) {
  if (count <= 0) return;
  MutexLock lock(mu_);
  deadline_exceeded_ += count;
}

void PipelineStats::FillSnapshot(ServeStatsSnapshot* snap) const {
  {
    MutexLock lock(mu_);
    snap->queries = requests_done_;
    snap->batches = flushes_by_size_ + flushes_by_timeout_;
    snap->batches_flushed_by_size = flushes_by_size_;
    snap->batches_flushed_by_timeout = flushes_by_timeout_;
    snap->rejected_requests = rejected_;
    snap->retries = retries_;
    snap->hedges = hedges_;
    snap->hedge_wins = hedge_wins_;
    snap->deadline_exceeded = deadline_exceeded_;
    snap->batch_size_hist = batch_size_hist_;
    snap->wall_seconds = wall_.ElapsedSeconds();
    // The pipeline overlaps its callers by design; "busy" time equals
    // elapsed time for throughput purposes.
    snap->busy_seconds = snap->wall_seconds;
  }
  snap->latency_hist = total_latency_ns_.Snapshot();
  FillLatencyFields(snap->latency_hist, snap);
  snap->queue_wait_hist = queue_wait_ns_.Snapshot();
  if (!snap->queue_wait_hist.empty()) {
    snap->time_in_queue_p50_ms =
        static_cast<double>(snap->queue_wait_hist.ValueAtPercentile(50.0)) /
        kNsPerMs;
    snap->time_in_queue_p99_ms =
        static_cast<double>(snap->queue_wait_hist.ValueAtPercentile(99.0)) /
        kNsPerMs;
  }
}

void PipelineStats::Reset() {
  MutexLock lock(mu_);
  queue_wait_ns_.Reset();
  total_latency_ns_.Reset();
  wall_.Restart();
  requests_done_ = 0;
  rejected_ = 0;
  flushes_by_size_ = 0;
  flushes_by_timeout_ = 0;
  retries_ = 0;
  hedges_ = 0;
  hedge_wins_ = 0;
  deadline_exceeded_ = 0;
  batch_size_hist_.fill(0);
}

ServeStatsSnapshot AggregateServeStats(
    const std::vector<ServeStatsSnapshot>& per_replica) {
  ServeStatsSnapshot agg;
  agg.replicas = static_cast<int>(per_replica.size());
  for (const ServeStatsSnapshot& snap : per_replica) {
    agg.queries += snap.queries;
    agg.batches += snap.batches;
    agg.cache_hits += snap.cache_hits;
    agg.cache_misses += snap.cache_misses;
    agg.cache_evictions += snap.cache_evictions;
    agg.appends += snap.appends;
    agg.removes += snap.removes;
    agg.compactions += snap.compactions;
    agg.compact_rows_reclaimed += snap.compact_rows_reclaimed;
    agg.compaction_ms += snap.compaction_ms;
    agg.busy_seconds += snap.busy_seconds;
    agg.wall_seconds = std::max(agg.wall_seconds, snap.wall_seconds);
    agg.epoch = std::max(agg.epoch, snap.epoch);
    agg.queue_depth += snap.queue_depth;
    agg.batches_flushed_by_size += snap.batches_flushed_by_size;
    agg.batches_flushed_by_timeout += snap.batches_flushed_by_timeout;
    agg.rejected_requests += snap.rejected_requests;
    agg.retries += snap.retries;
    agg.hedges += snap.hedges;
    agg.hedge_wins += snap.hedge_wins;
    agg.deadline_exceeded += snap.deadline_exceeded;
    agg.replicas_healthy += snap.replicas_healthy;
    agg.replicas_degraded += snap.replicas_degraded;
    agg.replicas_dead += snap.replicas_dead;
    agg.respawns += snap.respawns;
    agg.respawn_failures += snap.respawn_failures;
    for (int b = 0; b < kBatchSizeBuckets; ++b) {
      agg.batch_size_hist[static_cast<size_t>(b)] +=
          snap.batch_size_hist[static_cast<size_t>(b)];
    }
    agg.latency_hist.Merge(snap.latency_hist);
    agg.queue_wait_hist.Merge(snap.queue_wait_hist);
  }
  if (!agg.latency_hist.empty()) {
    FillLatencyFields(agg.latency_hist, &agg);
  } else {
    // No bucket data (hand-built snapshots): fall back to the
    // conservative worst-replica bound — exact pooled percentiles
    // cannot be recovered from per-replica summaries.
    for (const ServeStatsSnapshot& snap : per_replica) {
      agg.latency_p50_ms = std::max(agg.latency_p50_ms, snap.latency_p50_ms);
      agg.latency_p99_ms = std::max(agg.latency_p99_ms, snap.latency_p99_ms);
      agg.latency_mean_ms =
          std::max(agg.latency_mean_ms, snap.latency_mean_ms);
    }
  }
  if (!agg.queue_wait_hist.empty()) {
    agg.time_in_queue_p50_ms =
        static_cast<double>(agg.queue_wait_hist.ValueAtPercentile(50.0)) /
        1e6;
    agg.time_in_queue_p99_ms =
        static_cast<double>(agg.queue_wait_hist.ValueAtPercentile(99.0)) /
        1e6;
  } else {
    for (const ServeStatsSnapshot& snap : per_replica) {
      agg.time_in_queue_p50_ms =
          std::max(agg.time_in_queue_p50_ms, snap.time_in_queue_p50_ms);
      agg.time_in_queue_p99_ms =
          std::max(agg.time_in_queue_p99_ms, snap.time_in_queue_p99_ms);
    }
  }
  return agg;
}

void FillRegistry(const ServeStatsSnapshot& snap, obs::MetricsRegistry* reg) {
  reg->GetGauge("serve.queries")->Set(snap.queries);
  reg->GetGauge("serve.batches")->Set(snap.batches);
  reg->GetGauge("serve.replicas")->Set(snap.replicas);
  reg->GetGauge("serve.epoch")->Set(static_cast<int64_t>(snap.epoch));
  reg->GetGauge("cache.hits")->Set(snap.cache_hits);
  reg->GetGauge("cache.misses")->Set(snap.cache_misses);
  reg->GetGauge("cache.evictions")->Set(snap.cache_evictions);
  reg->GetGauge("update.appends")->Set(snap.appends);
  reg->GetGauge("update.removes")->Set(snap.removes);
  reg->GetGauge("compact.compactions")->Set(snap.compactions);
  reg->GetGauge("compact.rows_reclaimed")->Set(snap.compact_rows_reclaimed);
  reg->GetGauge("compact.total_ms")
      ->Set(static_cast<int64_t>(snap.compaction_ms));
  reg->GetGauge("pipeline.queue_depth")->Set(snap.queue_depth);
  reg->GetGauge("pipeline.flushes_by_size")->Set(snap.batches_flushed_by_size);
  reg->GetGauge("pipeline.flushes_by_timeout")
      ->Set(snap.batches_flushed_by_timeout);
  reg->GetGauge("pipeline.rejected_requests")->Set(snap.rejected_requests);
  reg->GetGauge("pipeline.retries")->Set(snap.retries);
  reg->GetGauge("pipeline.hedges")->Set(snap.hedges);
  reg->GetGauge("pipeline.hedge_wins")->Set(snap.hedge_wins);
  reg->GetGauge("pipeline.deadline_exceeded")->Set(snap.deadline_exceeded);
  reg->GetGauge("replica.healthy")->Set(snap.replicas_healthy);
  reg->GetGauge("replica.degraded")->Set(snap.replicas_degraded);
  reg->GetGauge("replica.dead")->Set(snap.replicas_dead);
  reg->GetGauge("replica.respawns")->Set(snap.respawns);
  reg->GetGauge("replica.respawn_failures")->Set(snap.respawn_failures);
}

}  // namespace uhscm::serve
