#include "serve/replica_set.h"

#include <algorithm>
#include <thread>

#include "common/status.h"

namespace uhscm::serve {

namespace {

ServingSnapshotOptions PerReplicaOptions(const ReplicaSetOptions& options,
                                         int replicas) {
  ServingSnapshotOptions serving = options.serving;
  if (serving.engine.num_threads == 0) {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 0) hw = 4;
    serving.engine.num_threads = std::max(1, hw / replicas);
  }
  return serving;
}

}  // namespace

ReplicaSet::ReplicaSet(const io::CodesSnapshot& snapshot,
                       const ReplicaSetOptions& options) {
  const int replicas = std::max(1, options.replicas);
  const ServingSnapshotOptions serving = PerReplicaOptions(options, replicas);
  engines_.reserve(static_cast<size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    engines_.push_back(
        MakeQueryEngineFromSnapshot(io::CodesSnapshot(snapshot), serving));
  }
}

ReplicaSet::ReplicaSet(const index::PackedCodes& corpus,
                       const ReplicaSetOptions& options) {
  const int replicas = std::max(1, options.replicas);
  const ServingSnapshotOptions serving = PerReplicaOptions(options, replicas);
  engines_.reserve(static_cast<size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    engines_.push_back(MakeQueryEngine(
        index::PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                         corpus.words()),
        serving));
  }
}

std::vector<int> ReplicaSet::Append(const index::PackedCodes& codes) {
  std::lock_guard<std::mutex> lock(update_mu_);
  std::vector<int> ids = engines_.front()->Append(codes);
  for (size_t r = 1; r < engines_.size(); ++r) {
    const std::vector<int> replica_ids = engines_[r]->Append(codes);
    UHSCM_CHECK(replica_ids == ids,
                "ReplicaSet::Append: replicas assigned divergent ids");
  }
  return ids;
}

bool ReplicaSet::Remove(int global_id) {
  std::lock_guard<std::mutex> lock(update_mu_);
  // Removes fan out concurrently: each replica mutates only its own
  // state with the same argument, and a delete can trigger that
  // replica's auto-compaction (a full shard rebuild) — run in parallel
  // the stall is one rebuild, not replicas-many.
  std::vector<char> removed(engines_.size());
  std::vector<std::thread> workers;
  workers.reserve(engines_.size() - 1);
  for (size_t r = 1; r < engines_.size(); ++r) {
    workers.emplace_back([this, r, global_id, &removed] {
      removed[r] = engines_[r]->Remove(global_id) ? 1 : 0;
    });
  }
  removed[0] = engines_.front()->Remove(global_id) ? 1 : 0;
  for (std::thread& worker : workers) worker.join();
  for (size_t r = 1; r < engines_.size(); ++r) {
    UHSCM_CHECK(removed[r] == removed[0],
                "ReplicaSet::Remove: replicas diverged on a tombstone");
  }
  return removed[0] != 0;
}

int ReplicaSet::RemoveIds(const std::vector<int>& global_ids) {
  std::lock_guard<std::mutex> lock(update_mu_);
  std::vector<int> removed(engines_.size());
  std::vector<std::thread> workers;
  workers.reserve(engines_.size() - 1);
  for (size_t r = 1; r < engines_.size(); ++r) {
    workers.emplace_back([this, r, &global_ids, &removed] {
      removed[r] = engines_[r]->RemoveIds(global_ids);
    });
  }
  removed[0] = engines_.front()->RemoveIds(global_ids);
  for (std::thread& worker : workers) worker.join();
  for (size_t r = 1; r < engines_.size(); ++r) {
    UHSCM_CHECK(removed[r] == removed[0],
                "ReplicaSet::RemoveIds: replicas diverged on tombstones");
  }
  return removed[0];
}

CompactionStats ReplicaSet::Compact() {
  std::lock_guard<std::mutex> lock(update_mu_);
  // Unlike the per-row update fan-outs, a compaction is a full shard
  // rebuild per replica — run the independent rebuilds concurrently so
  // the write path stalls for one rebuild, not replicas-many, then
  // check coherence once everything has landed.
  std::vector<CompactionStats> stats(engines_.size());
  std::vector<std::thread> workers;
  workers.reserve(engines_.size() - 1);
  for (size_t r = 1; r < engines_.size(); ++r) {
    workers.emplace_back(
        [this, r, &stats] { stats[r] = engines_[r]->Compact(); });
  }
  stats[0] = engines_.front()->Compact();
  for (std::thread& worker : workers) worker.join();
  for (size_t r = 1; r < engines_.size(); ++r) {
    UHSCM_CHECK(stats[r] == stats[0],
                "ReplicaSet::Compact: replicas reclaimed divergent rows");
    UHSCM_CHECK(engines_[r]->epoch() == engines_.front()->epoch(),
                "ReplicaSet::Compact: replicas diverged on the epoch");
  }
  return stats[0];
}

std::vector<ServeStatsSnapshot> ReplicaSet::PerReplicaStats() const {
  std::vector<ServeStatsSnapshot> stats;
  stats.reserve(engines_.size());
  for (const auto& engine : engines_) stats.push_back(engine->stats());
  return stats;
}

ServeStatsSnapshot ReplicaSet::AggregatedStats() const {
  return AggregateServeStats(PerReplicaStats());
}

void ReplicaSet::ResetStats() {
  for (auto& engine : engines_) engine->ResetStats();
}

void ReplicaSet::DrainAll() {
  for (auto& engine : engines_) engine->Drain();
}

}  // namespace uhscm::serve
