#include "serve/replica_set.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/status.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "serve/fault.h"

namespace uhscm::serve {

namespace {

ServingSnapshotOptions PerReplicaOptions(const ReplicaSetOptions& options,
                                         int replicas) {
  ServingSnapshotOptions serving = options.serving;
  if (serving.engine.num_threads == 0) {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 0) hw = 4;
    serving.engine.num_threads = std::max(1, hw / replicas);
  }
  return serving;
}

}  // namespace

const char* ReplicaHealthName(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kDegraded:
      return "degraded";
    case ReplicaHealth::kDead:
      return "dead";
  }
  return "unknown";
}

ReplicaSet::ReplicaSet(const io::CodesSnapshot& snapshot,
                       const ReplicaSetOptions& options)
    : base_(snapshot) {
  Init(options);
}

ReplicaSet::ReplicaSet(const index::PackedCodes& corpus,
                       const ReplicaSetOptions& options) {
  // Synthesize the respawn base a bare corpus doesn't come with: epoch
  // 0, nothing tombstoned — hydrating from it is id- and
  // result-identical to building an engine on the corpus directly.
  base_.codes = corpus;
  base_.epoch = 0;
  Init(options);
}

ReplicaSet::~ReplicaSet() { StopSupervisor(); }

void ReplicaSet::Init(const ReplicaSetOptions& options) {
  num_replicas_ = std::max(1, options.replicas);
  serving_ = PerReplicaOptions(options, num_replicas_);
  supervise_interval_ms_ = std::max<int64_t>(1, options.supervise_interval_ms);
  slots_ = std::make_unique<std::atomic<QueryEngine*>[]>(
      static_cast<size_t>(num_replicas_));
  health_ =
      std::make_unique<std::atomic<int>[]>(static_cast<size_t>(num_replicas_));
  owned_.reserve(static_cast<size_t>(num_replicas_));
  for (int r = 0; r < num_replicas_; ++r) {
    auto engine =
        MakeQueryEngineFromSnapshot(io::CodesSnapshot(base_), serving_);
    engine->set_fault_tag(r);
    slots_[static_cast<size_t>(r)].store(engine.get(),
                                         std::memory_order_release);
    health_[static_cast<size_t>(r)].store(
        static_cast<int>(ReplicaHealth::kHealthy), std::memory_order_release);
    owned_.push_back(std::move(engine));
  }
  if (options.supervise) StartSupervisor();
}

ReplicaHealth ReplicaSet::health(int r) const {
  const auto stored = static_cast<ReplicaHealth>(
      health_[static_cast<size_t>(r)].load(std::memory_order_acquire));
  if (stored != ReplicaHealth::kHealthy) return stored;
  // A kill nobody has reacted to yet: derived, so health() never lags
  // the engine's own killed flag.
  return replica(r).killed() ? ReplicaHealth::kDead : ReplicaHealth::kHealthy;
}

std::vector<QueryEngine*> ReplicaSet::LiveEnginesLocked() {
  std::vector<QueryEngine*> live;
  live.reserve(static_cast<size_t>(num_replicas_));
  for (int r = 0; r < num_replicas_; ++r) {
    QueryEngine* engine = replica(r);
    if (!engine->killed()) live.push_back(engine);
  }
  return live;
}

std::vector<int> ReplicaSet::Append(const index::PackedCodes& codes) {
  ExclusiveLock lock(update_mu_);
  // Dead replicas are skipped — the journal carries the update to
  // whatever engine eventually replaces them.
  std::vector<QueryEngine*> live = LiveEnginesLocked();
  std::vector<int> ids;
  for (size_t i = 0; i < live.size(); ++i) {
    std::vector<int> replica_ids = live[i]->Append(codes);
    if (i == 0) {
      ids = std::move(replica_ids);
    } else {
      UHSCM_CHECK(replica_ids == ids,
                  "ReplicaSet::Append: replicas assigned divergent ids");
    }
  }
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kAppend;
  entry.codes = codes;
  entry.ids = ids;
  entry.has_expected = !live.empty();
  journal_.push_back(std::move(entry));
  return ids;
}

bool ReplicaSet::Remove(int global_id) {
  return RemoveIds(std::vector<int>{global_id}) > 0;
}

int ReplicaSet::RemoveIds(const std::vector<int>& global_ids) {
  ExclusiveLock lock(update_mu_);
  std::vector<QueryEngine*> live = LiveEnginesLocked();
  // Removes fan out concurrently: each replica mutates only its own
  // state with the same argument, and a delete can trigger that
  // replica's auto-compaction (a full shard rebuild) — run in parallel
  // the stall is one rebuild, not replicas-many.
  std::vector<int> removed(live.size(), 0);
  std::vector<std::thread> workers;
  if (!live.empty()) {
    workers.reserve(live.size() - 1);
    for (size_t i = 1; i < live.size(); ++i) {
      workers.emplace_back([&live, i, &global_ids, &removed] {
        removed[i] = live[i]->RemoveIds(global_ids);
      });
    }
    removed[0] = live[0]->RemoveIds(global_ids);
    for (std::thread& worker : workers) worker.join();
    for (size_t i = 1; i < live.size(); ++i) {
      UHSCM_CHECK(removed[i] == removed[0],
                  "ReplicaSet::RemoveIds: replicas diverged on tombstones");
    }
  }
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kRemoveIds;
  entry.remove_ids = global_ids;
  entry.removed = live.empty() ? 0 : removed[0];
  entry.has_expected = !live.empty();
  journal_.push_back(std::move(entry));
  return live.empty() ? 0 : removed[0];
}

CompactionStats ReplicaSet::Compact() {
  ExclusiveLock lock(update_mu_);
  std::vector<QueryEngine*> live = LiveEnginesLocked();
  // Unlike the per-row update fan-outs, a compaction is a full shard
  // rebuild per replica — run the independent rebuilds concurrently so
  // the write path stalls for one rebuild, not replicas-many, then
  // check coherence once everything has landed.
  std::vector<CompactionStats> stats(live.size());
  std::vector<std::thread> workers;
  if (!live.empty()) {
    workers.reserve(live.size() - 1);
    for (size_t i = 1; i < live.size(); ++i) {
      workers.emplace_back([&live, i, &stats] { stats[i] = live[i]->Compact(); });
    }
    stats[0] = live[0]->Compact();
    for (std::thread& worker : workers) worker.join();
    for (size_t i = 1; i < live.size(); ++i) {
      UHSCM_CHECK(stats[i] == stats[0],
                  "ReplicaSet::Compact: replicas reclaimed divergent rows");
      UHSCM_CHECK(live[i]->epoch() == live[0]->epoch(),
                  "ReplicaSet::Compact: replicas diverged on the epoch");
    }
  }
  JournalEntry entry;
  entry.kind = JournalEntry::Kind::kCompact;
  entry.compact = live.empty() ? CompactionStats{} : stats[0];
  entry.has_expected = !live.empty();
  journal_.push_back(std::move(entry));
  return live.empty() ? CompactionStats{} : stats[0];
}

void ReplicaSet::ReplayJournalLocked(QueryEngine* engine) const {
  for (const JournalEntry& entry : journal_) {
    switch (entry.kind) {
      case JournalEntry::Kind::kAppend: {
        const std::vector<int> ids = engine->Append(entry.codes);
        if (entry.has_expected) {
          UHSCM_CHECK(ids == entry.ids,
                      "ReplicaSet: journal replay assigned divergent ids");
        }
        break;
      }
      case JournalEntry::Kind::kRemoveIds: {
        const int removed = engine->RemoveIds(entry.remove_ids);
        if (entry.has_expected) {
          UHSCM_CHECK(removed == entry.removed,
                      "ReplicaSet: journal replay diverged on tombstones");
        }
        break;
      }
      case JournalEntry::Kind::kCompact: {
        const CompactionStats stats = engine->Compact();
        if (entry.has_expected) {
          UHSCM_CHECK(stats == entry.compact,
                      "ReplicaSet: journal replay diverged on compaction");
        }
        break;
      }
    }
  }
}

bool ReplicaSet::RespawnReplica(int r) {
  Stopwatch watch;
  ExclusiveLock lock(update_mu_);
  QueryEngine* dead = replica(r);
  if (!dead->killed()) return false;  // someone else already respawned it
  health_[static_cast<size_t>(r)].store(
      static_cast<int>(ReplicaHealth::kDegraded), std::memory_order_release);
  // Injected hydration failure: count it, leave the replica dead, and
  // let the supervisor's next tick (or the next manual call) retry.
  if (FaultInjector::Global().ShouldFail(kFaultHydrate, r)) {
    respawn_failures_.fetch_add(1, std::memory_order_relaxed);
    health_[static_cast<size_t>(r)].store(
        static_cast<int>(ReplicaHealth::kDead), std::memory_order_release);
    return false;
  }
  // Rebuild exactly the way the original replicas were built — same
  // base snapshot, same hydration compaction, same options — then
  // replay the same update sequence. Determinism is the coherence
  // argument: the fresh engine is the same function of the same inputs,
  // and the per-step journal checks plus the live-replica comparison
  // below turn that argument into an enforced invariant.
  std::unique_ptr<QueryEngine> fresh =
      MakeQueryEngineFromSnapshot(io::CodesSnapshot(base_), serving_);
  fresh->set_fault_tag(r);
  ReplayJournalLocked(fresh.get());
  for (int o = 0; o < num_replicas_; ++o) {
    if (o == r) continue;
    QueryEngine* live = replica(o);
    if (live->killed()) continue;
    UHSCM_CHECK(fresh->epoch() == live->epoch(),
                "ReplicaSet: respawned replica disagrees with a live "
                "replica's epoch");
    UHSCM_CHECK(fresh->index().size() == live->index().size(),
                "ReplicaSet: respawned replica disagrees with a live "
                "replica's corpus size");
    break;
  }
  QueryEngine* raw = fresh.get();
  {
    MutexLock owned_lock(owned_mu_);
    owned_.push_back(std::move(fresh));
  }
  // The swap: from here on the router hands out the fresh engine. The
  // corpse stays owned (see class comment) for any batch submission
  // already holding its pointer.
  slots_[static_cast<size_t>(r)].store(raw, std::memory_order_release);
  health_[static_cast<size_t>(r)].store(
      static_cast<int>(ReplicaHealth::kHealthy), std::memory_order_release);
  respawns_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("pipeline.respawns")->Increment();
  registry.GetHistogram("pipeline.time_to_recovery_ns")
      ->Record(static_cast<int64_t>(watch.ElapsedSeconds() * 1e9));
  return true;
}

int ReplicaSet::RespawnDeadReplicas() {
  int respawned = 0;
  for (int r = 0; r < num_replicas_; ++r) {
    if (!replica(r)->killed()) continue;
    if (RespawnReplica(r)) ++respawned;
  }
  return respawned;
}

size_t ReplicaSet::journal_size() const {
  // Shared: a pure read of the journal length — it must not queue
  // behind (or block) a fan-out the way an exclusive acquisition would.
  SharedLock lock(update_mu_);
  return journal_.size();
}

void ReplicaSet::StartSupervisor() {
  MutexLock lock(supervisor_mu_);
  if (supervisor_.joinable()) return;
  supervisor_stop_ = false;
  supervisor_ = std::thread([this] { SupervisorLoop(); });
}

void ReplicaSet::StopSupervisor() {
  std::thread supervisor;
  {
    MutexLock lock(supervisor_mu_);
    supervisor_stop_ = true;
    supervisor.swap(supervisor_);
  }
  supervisor_cv_.notify_all();
  if (supervisor.joinable()) supervisor.join();
}

void ReplicaSet::SupervisorLoop() {
  const auto interval = std::chrono::milliseconds(supervise_interval_ms_);
  UniqueLock lock(supervisor_mu_);
  while (!supervisor_stop_) {
    // Sleep one interval, interruptible by a stop. The lock is dropped
    // across the respawn scan so StopSupervisor (and the lock ranking —
    // update_mu_ outranks this lock) never waits on a rebuild.
    const auto deadline = std::chrono::steady_clock::now() + interval;
    bool timed_out = false;
    while (!supervisor_stop_ && !timed_out) {
      timed_out =
          supervisor_cv_.wait_until(lock, deadline) == std::cv_status::timeout;
    }
    if (supervisor_stop_) return;
    lock.unlock();
    RespawnDeadReplicas();
    lock.lock();
  }
}

uint64_t ReplicaSet::epoch() const {
  for (int r = 0; r < num_replicas_; ++r) {
    const QueryEngine& engine = replica(r);
    if (!engine.killed()) return engine.epoch();
  }
  return replica(0).epoch();
}

std::vector<ServeStatsSnapshot> ReplicaSet::PerReplicaStats() const {
  std::vector<ServeStatsSnapshot> stats;
  stats.reserve(static_cast<size_t>(num_replicas_));
  for (int r = 0; r < num_replicas_; ++r) stats.push_back(replica(r).stats());
  return stats;
}

ServeStatsSnapshot ReplicaSet::AggregatedStats() const {
  ServeStatsSnapshot snap = AggregateServeStats(PerReplicaStats());
  for (int r = 0; r < num_replicas_; ++r) {
    switch (health(r)) {
      case ReplicaHealth::kHealthy:
        ++snap.replicas_healthy;
        break;
      case ReplicaHealth::kDegraded:
        ++snap.replicas_degraded;
        break;
      case ReplicaHealth::kDead:
        ++snap.replicas_dead;
        break;
    }
  }
  snap.respawns = respawns();
  snap.respawn_failures = respawn_failures();
  return snap;
}

void ReplicaSet::ResetStats() {
  for (int r = 0; r < num_replicas_; ++r) replica(r)->ResetStats();
}

void ReplicaSet::DrainAll() {
  for (int r = 0; r < num_replicas_; ++r) replica(r)->Drain();
}

}  // namespace uhscm::serve
