#include "serve/replica_set.h"

#include <algorithm>
#include <thread>

#include "common/status.h"

namespace uhscm::serve {

namespace {

ServingSnapshotOptions PerReplicaOptions(const ReplicaSetOptions& options,
                                         int replicas) {
  ServingSnapshotOptions serving = options.serving;
  if (serving.engine.num_threads == 0) {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    if (hw <= 0) hw = 4;
    serving.engine.num_threads = std::max(1, hw / replicas);
  }
  return serving;
}

}  // namespace

ReplicaSet::ReplicaSet(const io::CodesSnapshot& snapshot,
                       const ReplicaSetOptions& options) {
  const int replicas = std::max(1, options.replicas);
  const ServingSnapshotOptions serving = PerReplicaOptions(options, replicas);
  engines_.reserve(static_cast<size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    engines_.push_back(
        MakeQueryEngineFromSnapshot(io::CodesSnapshot(snapshot), serving));
  }
}

ReplicaSet::ReplicaSet(const index::PackedCodes& corpus,
                       const ReplicaSetOptions& options) {
  const int replicas = std::max(1, options.replicas);
  const ServingSnapshotOptions serving = PerReplicaOptions(options, replicas);
  engines_.reserve(static_cast<size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    engines_.push_back(MakeQueryEngine(
        index::PackedCodes::FromRawWords(corpus.size(), corpus.bits(),
                                         corpus.words()),
        serving));
  }
}

std::vector<int> ReplicaSet::Append(const index::PackedCodes& codes) {
  std::lock_guard<std::mutex> lock(update_mu_);
  std::vector<int> ids = engines_.front()->Append(codes);
  for (size_t r = 1; r < engines_.size(); ++r) {
    const std::vector<int> replica_ids = engines_[r]->Append(codes);
    UHSCM_CHECK(replica_ids == ids,
                "ReplicaSet::Append: replicas assigned divergent ids");
  }
  return ids;
}

bool ReplicaSet::Remove(int global_id) {
  std::lock_guard<std::mutex> lock(update_mu_);
  const bool removed = engines_.front()->Remove(global_id);
  for (size_t r = 1; r < engines_.size(); ++r) {
    const bool replica_removed = engines_[r]->Remove(global_id);
    UHSCM_CHECK(replica_removed == removed,
                "ReplicaSet::Remove: replicas diverged on a tombstone");
  }
  return removed;
}

int ReplicaSet::RemoveIds(const std::vector<int>& global_ids) {
  std::lock_guard<std::mutex> lock(update_mu_);
  const int removed = engines_.front()->RemoveIds(global_ids);
  for (size_t r = 1; r < engines_.size(); ++r) {
    const int replica_removed = engines_[r]->RemoveIds(global_ids);
    UHSCM_CHECK(replica_removed == removed,
                "ReplicaSet::RemoveIds: replicas diverged on tombstones");
  }
  return removed;
}

std::vector<ServeStatsSnapshot> ReplicaSet::PerReplicaStats() const {
  std::vector<ServeStatsSnapshot> stats;
  stats.reserve(engines_.size());
  for (const auto& engine : engines_) stats.push_back(engine->stats());
  return stats;
}

ServeStatsSnapshot ReplicaSet::AggregatedStats() const {
  return AggregateServeStats(PerReplicaStats());
}

void ReplicaSet::ResetStats() {
  for (auto& engine : engines_) engine->ResetStats();
}

void ReplicaSet::DrainAll() {
  for (auto& engine : engines_) engine->Drain();
}

}  // namespace uhscm::serve
