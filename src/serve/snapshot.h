#ifndef UHSCM_SERVE_SNAPSHOT_H_
#define UHSCM_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "serve/query_engine.h"
#include "serve/sharded_index.h"

namespace uhscm::serve {

/// Everything needed to bring a trained model's codes online.
struct ServingSnapshotOptions {
  ShardedIndexOptions index;
  QueryEngineOptions engine;
};

/// \brief Snapshot integration: load a packed-code database written by
/// io::SavePackedCodes (e.g. by `uhscm_cli train --codes=...`) into a
/// ready-to-serve QueryEngine.
///
/// This is the deployment seam between training and serving: training
/// persists codes once, and any number of serving processes hydrate
/// sharded engines from the same artifact.
Result<std::unique_ptr<QueryEngine>> LoadQueryEngine(
    const std::string& codes_path, const ServingSnapshotOptions& options = {});

/// In-memory variant for tests and benches that already hold the codes.
std::unique_ptr<QueryEngine> MakeQueryEngine(
    index::PackedCodes corpus, const ServingSnapshotOptions& options = {});

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_SNAPSHOT_H_
