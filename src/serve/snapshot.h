#ifndef UHSCM_SERVE_SNAPSHOT_H_
#define UHSCM_SERVE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "io/serialize.h"
#include "serve/query_engine.h"
#include "serve/sharded_index.h"

namespace uhscm::serve {

/// Everything needed to bring a trained model's codes online.
struct ServingSnapshotOptions {
  ShardedIndexOptions index;
  QueryEngineOptions engine;
};

/// \brief Snapshot integration: load a packed-code artifact into a
/// ready-to-serve QueryEngine, and persist a live engine back out.
///
/// This is the deployment seam between training and serving: training
/// persists codes once (io::SavePackedCodes, format v1), any number of
/// serving processes hydrate sharded engines from the artifact, and a
/// mutated engine (appends + tombstone deletes) saves a *versioned* v2
/// snapshot — epoch, codes in global-id order, and the deletion bitmap —
/// that reloads into an engine with identical ids, epoch, and results.
/// Legacy v1 artifacts keep loading (epoch 0, nothing tombstoned).
Result<std::unique_ptr<QueryEngine>> LoadQueryEngine(
    const std::string& codes_path, const ServingSnapshotOptions& options = {});

/// In-memory variant for tests and benches that already hold the codes.
std::unique_ptr<QueryEngine> MakeQueryEngine(
    index::PackedCodes corpus, const ServingSnapshotOptions& options = {});

/// Builds an engine from an already-loaded snapshot: shards all rows
/// (so global ids match the snapshot), re-applies the tombstones, and
/// restores the epoch. The seam callers use when they need the snapshot
/// contents (query sampling, inspection) without reading the file twice.
std::unique_ptr<QueryEngine> MakeQueryEngineFromSnapshot(
    io::CodesSnapshot snapshot, const ServingSnapshotOptions& options = {});

/// Persists the engine's current corpus — live and tombstoned rows, the
/// deletion bitmap, and the epoch — as a v2 snapshot at `path`.
/// Concurrent-safe: takes the index's shard locks shared for a
/// consistent point-in-time copy.
Status SaveServingSnapshot(const QueryEngine& engine,
                           const std::string& path);

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_SNAPSHOT_H_
