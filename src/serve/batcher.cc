#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <utility>

#include "common/status.h"

namespace uhscm::serve {

namespace {

std::future<SearchResponse> ReadyResponse(Status status) {
  std::promise<SearchResponse> promise;
  promise.set_value(SearchResponse{std::move(status), {}});
  return promise.get_future();
}

}  // namespace

Batcher::Batcher(Router* router, const BatcherOptions& options)
    : router_(router),
      options_(options),
      words_per_code_((router->replicas()->replica(0)->index().bits() + 63) /
                      64),
      bits_(router->replicas()->replica(0)->index().bits()),
      max_inflight_batches_(
          options.max_inflight_batches > 0
              ? options.max_inflight_batches
              : 2 * router->replicas()->num_replicas()),
      queue_(options.queue_capacity != 0
                 ? options.queue_capacity
                 : static_cast<size_t>(std::max(1, options.max_batch)) * 8 *
                       static_cast<size_t>(
                           router->replicas()->num_replicas())) {
  options_.max_batch = std::max(1, options_.max_batch);
  options_.timeout_us = std::max<int64_t>(1, options_.timeout_us);
  flush_thread_ = std::thread([this] { FlushLoop(); });
}

Batcher::~Batcher() { Drain(); }

std::future<SearchResponse> Batcher::Submit(const uint64_t* words,
                                            int num_words, int k) {
  if (num_words != words_per_code_) {
    return ReadyResponse(Status::InvalidArgument(
        "Batcher::Submit: query word count does not match the corpus code "
        "width"));
  }
  // A drained batcher's queue is closed, so the queue rejects (and
  // counts) the submission — no separate pre-check, which would race
  // with a concurrent Drain and miss the rejection counter.
  return queue_.Submit(words, num_words, k);
}

std::future<SearchResponse> Batcher::Submit(const index::PackedCodes& queries,
                                            int q, int k) {
  return Submit(queries.code(q), queries.words_per_code(), k);
}

void Batcher::FlushLoop() {
  std::vector<PendingRequest> batch;
  const auto timeout = std::chrono::microseconds(options_.timeout_us);
  while (queue_.CollectBatch(options_.max_batch, timeout, &batch)) {
    // A full batch flushed because it hit B; anything shorter means the
    // T deadline (or a drain) cut it off.
    const bool by_timeout =
        static_cast<int>(batch.size()) < options_.max_batch;
    FlushBatch(std::move(batch), by_timeout);
    batch.clear();
  }
}

void Batcher::FlushBatch(std::vector<PendingRequest> batch, bool by_timeout) {
  if (batch.empty()) return;
  pipeline_stats_.RecordFlush(static_cast<int>(batch.size()), by_timeout);
  const auto flush_time = std::chrono::steady_clock::now();

  // Close each sampled request's "admit" span: admission to flush is the
  // time spent waiting in the queue for a batch to form.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  for (const PendingRequest& request : batch) {
    if (request.trace) {
      recorder.RecordSpan(request.trace.trace_id, recorder.NewSpanId(),
                          request.trace.parent_span, "admit",
                          recorder.ToMicros(request.admit_time),
                          recorder.ToMicros(flush_time),
                          {{"k", request.k}});
    }
  }

  // The engine API carries one k per Search call, so a mixed-k flush
  // dispatches one packed batch per distinct k (request order preserved
  // within each group; under homogeneous traffic this is one group).
  std::map<int, std::vector<size_t>> groups;
  for (size_t i = 0; i < batch.size(); ++i) {
    groups[batch[i].k].push_back(i);
  }

  for (auto& [k, members] : groups) {
    // The group's spans (batch assembly, route, the engine's search)
    // hang under the first sampled request in the group — one traced
    // exemplar per batch keeps the trace a connected tree without
    // recording the shared stages once per member.
    obs::TraceContext group_ctx;
    for (size_t i : members) {
      if (batch[i].trace) {
        group_ctx = batch[i].trace;
        break;
      }
    }

    auto group = std::make_shared<std::vector<PendingRequest>>();
    group->reserve(members.size());
    auto queue_waits = std::make_shared<std::vector<double>>();
    queue_waits->reserve(members.size());
    std::vector<uint64_t> words;
    words.reserve(members.size() * static_cast<size_t>(words_per_code_));
    index::PackedCodes queries;
    {
      obs::ScopedSpan batch_span(&recorder, group_ctx, "batch");
      batch_span.AddAttr("size", static_cast<int64_t>(members.size()));
      batch_span.AddAttr("k", k);
      for (size_t i : members) {
        words.insert(words.end(), batch[i].words.begin(),
                     batch[i].words.end());
        queue_waits->push_back(std::chrono::duration<double>(
                                   flush_time - batch[i].admit_time)
                                   .count());
        group->push_back(std::move(batch[i]));
      }
      queries = index::PackedCodes::FromRawWords(
          static_cast<int>(group->size()), bits_, std::move(words));
    }

    QueryEngine* engine = nullptr;
    {
      obs::ScopedSpan route_span(&recorder, group_ctx, "route");
      // End-to-end backpressure: don't let batches pile up in the
      // engines' dispatch queues. Blocking here fills the admission
      // queue, which in turn blocks Submit — overload surfaces at the
      // front door, and the router always sees genuine (bounded)
      // per-replica load. The wait is part of the route span: time spent
      // here is time spent finding a replica with capacity.
      {
        std::unique_lock<std::mutex> lock(inflight_mu_);
        inflight_cv_.wait(lock, [this] {
          return inflight_batches_.load(std::memory_order_relaxed) <
                 max_inflight_batches_;
        });
        inflight_batches_.fetch_add(1, std::memory_order_relaxed);
      }
      engine = router_->Pick();
      route_span.AddAttr("inflight", engine->inflight());
    }
    engine->SubmitBatch(
        std::move(queries), k, group_ctx,
        [this, group, queue_waits](
            Status status, std::vector<std::vector<index::Neighbor>> results) {
          const auto now = std::chrono::steady_clock::now();
          // Close each sampled member's root "request" span — admission
          // to response, the latency its client actually observed.
          obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
          for (const PendingRequest& request : *group) {
            if (request.trace) {
              recorder.RecordSpan(request.trace.trace_id,
                                  request.trace.parent_span, 0, "request",
                                  recorder.ToMicros(request.admit_time),
                                  recorder.ToMicros(now), {{"k", request.k}});
            }
          }
          if (!status.ok()) {
            // The replica died under this batch (killed mid-stream):
            // every member's future resolves with the failure status —
            // never dropped — and the rejection is counted. The
            // engine-side in-flight decrement happens after this
            // callback returns, so the batcher's and the router's
            // accounting both return to zero.
            for (PendingRequest& request : *group) {
              request.promise.set_value(SearchResponse{status, {}});
            }
            pipeline_stats_.RecordRejected(static_cast<int>(group->size()));
          } else {
            for (size_t i = 0; i < group->size(); ++i) {
              PendingRequest& request = (*group)[i];
              pipeline_stats_.RecordRequestDone(
                  (*queue_waits)[i],
                  std::chrono::duration<double>(now - request.admit_time)
                      .count());
              request.promise.set_value(
                  SearchResponse{Status::OK(), std::move(results[i])});
            }
          }
          {
            std::lock_guard<std::mutex> lock(inflight_mu_);
            inflight_batches_.fetch_sub(1, std::memory_order_relaxed);
          }
          inflight_cv_.notify_all();
        });
  }
}

void Batcher::Drain() {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  if (drained_.load(std::memory_order_acquire)) return;
  // Order matters: close first (rejects new work and wakes the flush
  // thread), join the flush thread (its in-hand partial batch is
  // dispatched with real results), then fail whatever never made it out
  // of the queue, and finally wait for every dispatched batch to call
  // back so no engine callback can touch this batcher after Drain.
  queue_.Close();
  if (flush_thread_.joinable()) flush_thread_.join();
  const int failed = queue_.FailPending(
      Status::Unavailable("pipeline drained before the request was served"));
  pipeline_stats_.RecordRejected(failed);
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [this] {
      return inflight_batches_.load(std::memory_order_relaxed) == 0;
    });
  }
  drained_.store(true, std::memory_order_release);
}

ServeStatsSnapshot Batcher::stats() const {
  ServeStatsSnapshot snap = router_->replicas()->AggregatedStats();
  // Pipeline counters overwrite the engine-side queries/batches/latency:
  // what a pipeline client experiences (queue wait included) is the
  // serving truth; the engines' cache/update/epoch fields pass through.
  pipeline_stats_.FillSnapshot(&snap);
  snap.queue_depth = static_cast<int64_t>(queue_.depth());
  // Shutdown rejections live in two places: requests drained out of the
  // queue (recorded via FailPending) and submissions the closed queue
  // turned away at the door.
  snap.rejected_requests += queue_.rejected();
  return snap;
}

void Batcher::ResetStats() {
  pipeline_stats_.Reset();
  queue_.ResetRejected();
  router_->replicas()->ResetStats();
}

}  // namespace uhscm::serve
