#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "common/status.h"
#include "obs/metrics.h"

namespace uhscm::serve {

namespace {

std::future<SearchResponse> ReadyResponse(Status status) {
  std::promise<SearchResponse> promise;
  promise.set_value(SearchResponse{std::move(status), {}});
  return promise.get_future();
}

/// Closes each sampled request's root "request" span — admission to
/// response, the latency its client actually observed.
void CloseRequestSpans(const std::vector<PendingRequest>& requests,
                       std::chrono::steady_clock::time_point now) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  for (const PendingRequest& request : requests) {
    if (request.trace) {
      recorder.RecordSpan(request.trace.trace_id, request.trace.parent_span, 0,
                          "request", recorder.ToMicros(request.admit_time),
                          recorder.ToMicros(now), {{"k", request.k}});
    }
  }
}

}  // namespace

/// One dispatched per-k group. `queries`, `k`, `trace`, `requests`, and
/// `queue_waits` are written once by the flush thread before the first
/// dispatch and read-only afterwards; the resolution state below `mu` is
/// what the primary callback, retry re-dispatches, the hedge timer, and
/// the hedge callback race over.
struct Batcher::GroupState {
  index::PackedCodes queries;
  int k = 0;
  obs::TraceContext trace;
  std::vector<PendingRequest> requests;
  std::vector<double> queue_waits;
  /// Earliest member deadline — retries must finish before it.
  std::chrono::steady_clock::time_point min_deadline =
      std::chrono::steady_clock::time_point::max();
  bool has_deadline = false;

  /// One class for every group's lock; two groups' locks are never held
  /// together, and only the jitter lock nests beneath this one.
  Mutex mu{"batcher.group", 24};
  /// A completion won (promises set) or the final failure was recorded.
  bool resolved UHSCM_GUARDED_BY(mu) = false;
  /// Dispatch attempts (primary + hedge) whose callback hasn't returned.
  int outstanding UHSCM_GUARDED_BY(mu) = 0;
  /// Primary dispatch attempts made so far.
  int attempts UHSCM_GUARDED_BY(mu) = 0;
  /// Hedge already issued (or the hedge slot consumed) — at most one.
  bool hedged UHSCM_GUARDED_BY(mu) = false;
  /// Cleared when routing found every replica dead: retrying cannot
  /// help until a respawn lands, so the group fails immediately.
  bool retryable UHSCM_GUARDED_BY(mu) = true;
  /// The replica the latest primary attempt landed on — the hedge
  /// excludes it.
  int last_replica UHSCM_GUARDED_BY(mu) = -1;
  /// The group's inflight slot was released (exactly once).
  bool settled UHSCM_GUARDED_BY(mu) = false;
};

Batcher::Batcher(Router* router, const BatcherOptions& options)
    : router_(router),
      options_(options),
      words_per_code_((router->replicas()->replica(0)->index().bits() + 63) /
                      64),
      bits_(router->replicas()->replica(0)->index().bits()),
      max_inflight_batches_(
          options.max_inflight_batches > 0
              ? options.max_inflight_batches
              : 2 * router->replicas()->num_replicas()),
      queue_(options.queue_capacity != 0
                 ? options.queue_capacity
                 : static_cast<size_t>(std::max(1, options.max_batch)) * 8 *
                       static_cast<size_t>(
                           router->replicas()->num_replicas())),
      jitter_rng_(options.jitter_seed) {
  options_.max_batch = std::max(1, options_.max_batch);
  options_.timeout_us = std::max<int64_t>(1, options_.timeout_us);
  options_.max_attempts = std::max(1, options_.max_attempts);
  options_.retry_backoff_us = std::max<int64_t>(0, options_.retry_backoff_us);
  options_.hedge_budget = std::clamp(options_.hedge_budget, 0.0, 1.0);
  options_.hedge_delay_us = std::max<int64_t>(0, options_.hedge_delay_us);
  flush_thread_ = std::thread([this] { FlushLoop(); });
  if (options_.hedge_budget > 0.0 &&
      router_->replicas()->num_replicas() > 1) {
    hedge_thread_ = std::thread([this] { HedgeLoop(); });
  }
}

Batcher::~Batcher() { Drain(); }

std::future<SearchResponse> Batcher::Submit(
    const uint64_t* words, int num_words, int k,
    std::chrono::steady_clock::time_point deadline) {
  if (num_words != words_per_code_) {
    return ReadyResponse(Status::InvalidArgument(
        "Batcher::Submit: query word count does not match the corpus code "
        "width"));
  }
  // A drained batcher's queue is closed, so the queue rejects (and
  // counts) the submission — no separate pre-check, which would race
  // with a concurrent Drain and miss the rejection counter.
  return queue_.Submit(words, num_words, k, deadline);
}

std::future<SearchResponse> Batcher::Submit(
    const index::PackedCodes& queries, int q, int k,
    std::chrono::steady_clock::time_point deadline) {
  return Submit(queries.code(q), queries.words_per_code(), k, deadline);
}

void Batcher::FlushLoop() {
  std::vector<PendingRequest> batch;
  const auto timeout = std::chrono::microseconds(options_.timeout_us);
  while (queue_.CollectBatch(options_.max_batch, timeout, &batch)) {
    // A full batch flushed because it hit B; anything shorter means the
    // T deadline (or a drain) cut it off.
    const bool by_timeout =
        static_cast<int>(batch.size()) < options_.max_batch;
    FlushBatch(std::move(batch), by_timeout);
    batch.clear();
  }
}

void Batcher::FlushBatch(std::vector<PendingRequest> batch, bool by_timeout) {
  if (batch.empty()) return;
  pipeline_stats_.RecordFlush(static_cast<int>(batch.size()), by_timeout);
  const auto flush_time = std::chrono::steady_clock::now();

  // Close each sampled request's "admit" span: admission to flush is the
  // time spent waiting in the queue for a batch to form.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  for (const PendingRequest& request : batch) {
    if (request.trace) {
      recorder.RecordSpan(request.trace.trace_id, recorder.NewSpanId(),
                          request.trace.parent_span, "admit",
                          recorder.ToMicros(request.admit_time),
                          recorder.ToMicros(flush_time),
                          {{"k", request.k}});
    }
  }

  // Deadline enforcement at the dispatch boundary: a request whose
  // deadline already passed resolves kDeadlineExceeded here instead of
  // occupying replica time its client has stopped waiting for.
  std::vector<PendingRequest> live;
  std::vector<PendingRequest> expired;
  live.reserve(batch.size());
  for (PendingRequest& request : batch) {
    if (request.has_deadline() && flush_time >= request.deadline) {
      if (request.trace) {
        recorder.RecordSpan(request.trace.trace_id, request.trace.parent_span,
                            0, "request", recorder.ToMicros(request.admit_time),
                            recorder.ToMicros(flush_time),
                            {{"k", request.k}});
      }
      expired.push_back(std::move(request));
      continue;
    }
    live.push_back(std::move(request));
  }
  if (!expired.empty()) {
    // Count before resolving: a client woken by the promise must see its
    // expiry already reflected in stats().
    pipeline_stats_.RecordDeadlineExceeded(static_cast<int>(expired.size()));
    for (PendingRequest& request : expired) {
      request.promise.set_value(SearchResponse{
          Status::DeadlineExceeded(
              "deadline passed while the request waited to be batched"),
          {}});
    }
  }
  if (live.empty()) return;

  // The engine API carries one k per Search call, so a mixed-k flush
  // dispatches one packed batch per distinct k (request order preserved
  // within each group; under homogeneous traffic this is one group).
  std::map<int, std::vector<size_t>> groups;
  for (size_t i = 0; i < live.size(); ++i) {
    groups[live[i].k].push_back(i);
  }

  const bool hedging = options_.hedge_budget > 0.0 &&
                       router_->replicas()->num_replicas() > 1;
  for (auto& [k, members] : groups) {
    // The group's spans (batch assembly, route, the engine's search)
    // hang under the first sampled request in the group — one traced
    // exemplar per batch keeps the trace a connected tree without
    // recording the shared stages once per member.
    obs::TraceContext group_ctx;
    for (size_t i : members) {
      if (live[i].trace) {
        group_ctx = live[i].trace;
        break;
      }
    }

    auto state = std::make_shared<GroupState>();
    state->k = k;
    state->trace = group_ctx;
    state->requests.reserve(members.size());
    state->queue_waits.reserve(members.size());
    std::vector<uint64_t> words;
    words.reserve(members.size() * static_cast<size_t>(words_per_code_));
    {
      obs::ScopedSpan batch_span(&recorder, group_ctx, "batch");
      batch_span.AddAttr("size", static_cast<int64_t>(members.size()));
      batch_span.AddAttr("k", k);
      for (size_t i : members) {
        words.insert(words.end(), live[i].words.begin(),
                     live[i].words.end());
        state->queue_waits.push_back(std::chrono::duration<double>(
                                         flush_time - live[i].admit_time)
                                         .count());
        if (live[i].has_deadline()) {
          state->has_deadline = true;
          state->min_deadline = std::min(state->min_deadline,
                                         live[i].deadline);
        }
        state->requests.push_back(std::move(live[i]));
      }
      state->queries = index::PackedCodes::FromRawWords(
          static_cast<int>(state->requests.size()), bits_, std::move(words));
    }

    {
      obs::ScopedSpan route_span(&recorder, group_ctx, "route");
      // End-to-end backpressure: don't let batches pile up in the
      // engines' dispatch queues. Blocking here fills the admission
      // queue, which in turn blocks Submit — overload surfaces at the
      // front door, and the router always sees genuine (bounded)
      // per-replica load. The wait is part of the route span: time spent
      // here is time spent finding a replica with capacity. The slot is
      // held until the group *settles* (wins, finally fails, and every
      // retry/hedge callback has returned), so retries and hedges ride
      // the original slot instead of multiplying inflight work.
      UniqueLock lock(inflight_mu_);
      while (inflight_batches_.load(std::memory_order_relaxed) >=
             max_inflight_batches_) {
        inflight_cv_.wait(lock);
      }
      inflight_batches_.fetch_add(1, std::memory_order_relaxed);
    }
    groups_dispatched_.fetch_add(1, std::memory_order_relaxed);
    state->attempts = 1;
    state->outstanding = 1;
    DispatchGroup(state, /*is_hedge=*/false);
    if (hedging) ScheduleHedge(state);
  }
}

void Batcher::DispatchGroup(const std::shared_ptr<GroupState>& group,
                            bool is_hedge) {
  const int r = router_->Route();
  if (r < 0) {
    // Every replica is dead: nothing a retry could route to until a
    // respawn lands, so the group fails immediately (the ISSUE's
    // all-dead fast-fail) instead of burning backoff on a lost cause.
    {
      MutexLock lock(group->mu);
      group->retryable = false;
    }
    OnGroupCompletion(
        group, is_hedge,
        Status::Unavailable("no live replica — every replica is dead"), {});
    return;
  }
  {
    MutexLock lock(group->mu);
    group->last_replica = r;
  }
  QueryEngine* engine = router_->replicas()->replica(r);
  std::shared_ptr<GroupState> self = group;
  engine->SubmitBatch(
      index::PackedCodes(group->queries), group->k, group->trace,
      [this, self, is_hedge](
          Status status, std::vector<std::vector<index::Neighbor>> results) {
        OnGroupCompletion(self, is_hedge, std::move(status),
                          std::move(results));
      });
}

void Batcher::OnGroupCompletion(
    const std::shared_ptr<GroupState>& group, bool is_hedge, Status status,
    std::vector<std::vector<index::Neighbor>> results) {
  enum class Action { kNone, kWin, kFail, kRetry };
  Action action = Action::kNone;
  bool settle = false;
  std::chrono::microseconds backoff{0};
  {
    MutexLock lock(group->mu);
    group->outstanding -= 1;
    if (status.ok()) {
      // First successful completion wins; a later one (the hedge's
      // loser — byte-identical results anyway) is discarded here.
      if (!group->resolved) {
        group->resolved = true;
        action = Action::kWin;
      }
    } else if (!group->resolved && group->outstanding == 0) {
      // The last in-flight attempt failed. Retry on a surviving replica
      // unless attempts are exhausted, routing already proved every
      // replica dead, or the backoff would overrun the group's earliest
      // deadline — a retry that cannot finish in time only wastes a
      // replica.
      bool can_retry =
          group->retryable && group->attempts < options_.max_attempts;
      if (can_retry) {
        backoff = RetryBackoff(group->attempts);
        if (group->has_deadline &&
            std::chrono::steady_clock::now() + backoff >=
                group->min_deadline) {
          can_retry = false;
        }
      }
      if (can_retry) {
        group->attempts += 1;
        group->outstanding += 1;
        action = Action::kRetry;
      } else {
        group->resolved = true;
        action = Action::kFail;
      }
    }
    // The group settles — releases its inflight slot, exactly once —
    // when it is resolved and the last outstanding callback has
    // returned.
    settle = group->resolved && group->outstanding == 0 && !group->settled;
    if (settle) group->settled = true;
  }

  // Counters are recorded *before* the promises resolve: a client woken
  // by its future must already see its outcome reflected in stats().
  if (action == Action::kWin) {
    const auto now = std::chrono::steady_clock::now();
    CloseRequestSpans(group->requests, now);
    if (is_hedge) pipeline_stats_.RecordHedgeWin();
    for (size_t i = 0; i < group->requests.size(); ++i) {
      PendingRequest& request = group->requests[i];
      pipeline_stats_.RecordRequestDone(
          group->queue_waits[i],
          std::chrono::duration<double>(now - request.admit_time).count());
      request.promise.set_value(
          SearchResponse{Status::OK(), std::move(results[i])});
    }
  } else if (action == Action::kFail) {
    // Every member's future resolves with the failure status — never
    // dropped — and the rejection is counted.
    CloseRequestSpans(group->requests, std::chrono::steady_clock::now());
    pipeline_stats_.RecordRejected(static_cast<int>(group->requests.size()));
    for (PendingRequest& request : group->requests) {
      request.promise.set_value(SearchResponse{status, {}});
    }
  } else if (action == Action::kRetry) {
    pipeline_stats_.RecordRetry();
    // The backoff runs on whichever thread delivered the failure (the
    // flush thread for an inline dead-engine rejection, the dead
    // engine's dispatch thread for a mid-stream kill) — bounded by
    // max_attempts doublings of a sub-millisecond base, so it cannot
    // stall shutdown.
    if (backoff.count() > 0) std::this_thread::sleep_for(backoff);
    DispatchGroup(group, /*is_hedge=*/false);
  }

  if (settle) {
    MutexLock lock(inflight_mu_);
    inflight_batches_.fetch_sub(1, std::memory_order_relaxed);
    // Notify under the lock: Drain destroys this cv as soon as it sees
    // zero in flight, so the signal must complete before the waiter can
    // reacquire inflight_mu_ and return.
    inflight_cv_.notify_all();
  }
}

std::chrono::microseconds Batcher::RetryBackoff(int attempt) {
  const double base =
      static_cast<double>(options_.retry_backoff_us) *
      static_cast<double>(int64_t{1} << std::min(std::max(attempt - 1, 0), 10));
  double jitter;
  {
    MutexLock lock(jitter_mu_);
    jitter = jitter_rng_.Uniform(0.5, 1.5);
  }
  return std::chrono::microseconds(
      static_cast<int64_t>(std::max(0.0, base * jitter)));
}

std::chrono::nanoseconds Batcher::HedgeDelay() {
  if (options_.hedge_delay_us > 0) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::microseconds(options_.hedge_delay_us));
  }
  // Auto mode: hedge when the batch has been in flight longer than the
  // 99th-percentile search — the live histogram the traced requests
  // feed. Until it has data (tracing off, or cold start), fall back to
  // the replicas' completion-latency p99, then to a fixed 1ms.
  const obs::HistogramSnapshot stage =
      obs::MetricsRegistry::Global().GetHistogram("stage.search_ns")
          ->Snapshot();
  if (!stage.empty()) {
    return std::chrono::nanoseconds(stage.ValueAtPercentile(99.0));
  }
  const ServeStatsSnapshot agg = router_->replicas()->AggregatedStats();
  if (!agg.latency_hist.empty()) {
    return std::chrono::nanoseconds(agg.latency_hist.ValueAtPercentile(99.0));
  }
  return std::chrono::milliseconds(1);
}

void Batcher::ScheduleHedge(const std::shared_ptr<GroupState>& group) {
  const auto when = std::chrono::steady_clock::now() + HedgeDelay();
  {
    MutexLock lock(hedge_mu_);
    if (hedge_stop_) return;
    hedge_queue_.emplace(when, std::weak_ptr<GroupState>(group));
  }
  hedge_cv_.notify_all();
}

void Batcher::FireHedge(const std::shared_ptr<GroupState>& group) {
  ReplicaSet* replicas = router_->replicas();
  QueryEngine* engine = nullptr;
  {
    MutexLock lock(group->mu);
    if (group->resolved || group->hedged || group->outstanding == 0) return;
    // The budget bounds *issued* hedges against dispatched groups, so
    // fast traffic (whose timers expire unresolved-never) consumes none
    // of it and a straggler burst cannot duplicate more than the
    // configured fraction of the stream.
    const auto dispatched = static_cast<double>(
        groups_dispatched_.load(std::memory_order_relaxed));
    const auto issued = static_cast<double>(
        hedges_issued_.load(std::memory_order_relaxed));
    if (issued + 1.0 > options_.hedge_budget * dispatched) return;
    // The hedge must land somewhere else: a live replica other than the
    // one the primary attempt is stuck on, least-loaded among them.
    int pick = -1;
    int64_t best = 0;
    for (int r = 0; r < replicas->num_replicas(); ++r) {
      if (r == group->last_replica) continue;
      if (replicas->replica(r)->killed()) continue;
      const int64_t load = replicas->Inflight(r);
      if (pick < 0 || load < best) {
        best = load;
        pick = r;
      }
    }
    if (pick < 0) return;
    group->hedged = true;
    group->outstanding += 1;
    engine = replicas->replica(pick);
  }
  hedges_issued_.fetch_add(1, std::memory_order_relaxed);
  pipeline_stats_.RecordHedge();
  std::shared_ptr<GroupState> self = group;
  engine->SubmitBatch(
      index::PackedCodes(group->queries), group->k, group->trace,
      [this, self](Status status,
                   std::vector<std::vector<index::Neighbor>> results) {
        OnGroupCompletion(self, /*is_hedge=*/true, std::move(status),
                          std::move(results));
      });
}

void Batcher::HedgeLoop() {
  UniqueLock lock(hedge_mu_);
  while (!hedge_stop_) {
    if (hedge_queue_.empty()) {
      while (!hedge_stop_ && hedge_queue_.empty()) hedge_cv_.wait(lock);
      continue;
    }
    // Sleep until the earliest timer is due, a stop interrupts, or a
    // notify lands (a new entry re-derives `when` on the next pass).
    const auto when = hedge_queue_.begin()->first;
    bool timed_out = false;
    while (!hedge_stop_ && !timed_out) {
      timed_out =
          hedge_cv_.wait_until(lock, when) == std::cv_status::timeout;
    }
    if (hedge_stop_) return;
    const auto now = std::chrono::steady_clock::now();
    while (!hedge_queue_.empty() && hedge_queue_.begin()->first <= now) {
      std::weak_ptr<GroupState> weak = std::move(hedge_queue_.begin()->second);
      hedge_queue_.erase(hedge_queue_.begin());
      lock.unlock();
      // A group that already resolved (or settled and died) expires
      // here without firing — that is the hedge's cancellation path.
      if (std::shared_ptr<GroupState> group = weak.lock()) FireHedge(group);
      lock.lock();
      if (hedge_stop_) return;
    }
  }
}

void Batcher::Drain() {
  MutexLock drain_lock(drain_mu_);
  if (drained_.load(std::memory_order_acquire)) return;
  // Order matters: close first (rejects new work and wakes the flush
  // thread), join the flush thread (its in-hand partial batch is
  // dispatched with real results), then fail whatever never made it out
  // of the queue, drop not-yet-fired hedges (the timer thread joins so
  // no new submission can start), and finally wait for every dispatched
  // group — retries and in-flight hedges included — to settle so no
  // engine callback can touch this batcher after Drain.
  queue_.Close();
  if (flush_thread_.joinable()) flush_thread_.join();
  const int failed = queue_.FailPending(
      Status::Unavailable("pipeline drained before the request was served"));
  pipeline_stats_.RecordRejected(failed);
  {
    MutexLock lock(hedge_mu_);
    hedge_stop_ = true;
    hedge_queue_.clear();
  }
  hedge_cv_.notify_all();
  if (hedge_thread_.joinable()) hedge_thread_.join();
  {
    UniqueLock lock(inflight_mu_);
    while (inflight_batches_.load(std::memory_order_relaxed) != 0) {
      inflight_cv_.wait(lock);
    }
  }
  drained_.store(true, std::memory_order_release);
}

ServeStatsSnapshot Batcher::stats() const {
  ServeStatsSnapshot snap = router_->replicas()->AggregatedStats();
  // Pipeline counters overwrite the engine-side queries/batches/latency:
  // what a pipeline client experiences (queue wait included) is the
  // serving truth; the engines' cache/update/epoch fields pass through.
  pipeline_stats_.FillSnapshot(&snap);
  snap.queue_depth = static_cast<int64_t>(queue_.depth());
  // Shutdown rejections live in two places: requests drained out of the
  // queue (recorded via FailPending) and submissions the closed queue
  // turned away at the door.
  snap.rejected_requests += queue_.rejected();
  return snap;
}

void Batcher::ResetStats() {
  pipeline_stats_.Reset();
  queue_.ResetRejected();
  router_->replicas()->ResetStats();
}

}  // namespace uhscm::serve
