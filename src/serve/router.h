#ifndef UHSCM_SERVE_ROUTER_H_
#define UHSCM_SERVE_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/replica_set.h"

namespace uhscm::serve {

/// How the router spreads flushed batches over the replicas.
enum class RoutePolicy {
  /// Strict rotation — equal batch counts regardless of batch cost.
  /// Cheapest possible decision; best when batches are uniform.
  kRoundRobin,
  /// Pick the replica with the fewest queries currently in flight
  /// (ties broken by lowest index). Adapts to skewed batch costs and to
  /// replicas slowed by cache misses or concurrent updates.
  kLeastLoaded,
};

const char* RoutePolicyName(RoutePolicy policy);

/// Parses "rr"/"round-robin" or "least"/"least-loaded". Returns false on
/// anything else.
bool ParseRoutePolicy(const std::string& name, RoutePolicy* policy);

/// \brief Load-aware batch placement over a ReplicaSet.
///
/// Route() is a lock-free replica pick: an atomic rotation counter for
/// round-robin, or a scan of the replicas' in-flight query counters for
/// least-loaded (N is small — a handful of replicas — so the scan is a
/// few relaxed loads). Both policies skip killed replicas (a dead
/// engine's in-flight count is permanently zero, which would otherwise
/// make it the *most* attractive least-loaded target). When every
/// replica is dead, Route() returns -1 (Pick() returns nullptr) and the
/// caller fails the batch immediately with Unavailable — routing onto a
/// corpse would only launder a known-dead pick into a slower rejection.
/// Per-replica routed-batch counters are kept for observability; they
/// are maintained with relaxed atomics and carry no ordering
/// guarantees.
class Router {
 public:
  Router(ReplicaSet* replicas, RoutePolicy policy = RoutePolicy::kLeastLoaded);

  /// Picks the replica index for the next batch, or -1 when every
  /// replica is dead.
  int Route();

  /// Route() resolved to the engine itself; nullptr when every replica
  /// is dead.
  QueryEngine* Pick() {
    const int r = Route();
    return r >= 0 ? replicas_->replica(r) : nullptr;
  }

  RoutePolicy policy() const { return policy_; }
  ReplicaSet* replicas() { return replicas_; }

  /// Batches routed to replica r so far.
  int64_t routed(int r) const {
    return routed_[static_cast<size_t>(r)].load(std::memory_order_relaxed);
  }

 private:
  ReplicaSet* replicas_;
  RoutePolicy policy_;
  /// Relaxed: the round-robin rotation counter — each fetch_add claims a
  /// distinct slot; no data is published through it.
  std::atomic<uint64_t> next_{0};
  /// Relaxed: per-replica routed-batch observability counters only.
  std::unique_ptr<std::atomic<int64_t>[]> routed_;
};

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_ROUTER_H_
