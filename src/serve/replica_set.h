#ifndef UHSCM_SERVE_REPLICA_SET_H_
#define UHSCM_SERVE_REPLICA_SET_H_

#include <memory>
#include <mutex>
#include <vector>

#include "io/serialize.h"
#include "serve/query_engine.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"

namespace uhscm::serve {

struct ReplicaSetOptions {
  /// Engine replicas to build; clamped to >= 1. Each replica owns a full
  /// copy of the corpus (per-replica snapshots — no shared mutable
  /// state), its own shard set, worker pool, and result cache.
  int replicas = 1;
  /// Index/engine configuration applied to every replica. When
  /// serving.engine.num_threads is 0 the hardware threads are divided
  /// evenly across replicas (at least 1 each), so adding replicas
  /// trades per-batch fan-out width for cross-batch parallelism instead
  /// of oversubscribing the machine.
  ServingSnapshotOptions serving;
};

/// \brief N identically-hydrated QueryEngine replicas behind one update
/// fan-out — the replication layer the pipeline's Router balances over.
///
/// Every replica is built from the same snapshot with the same options,
/// so global ids, epochs, and search results are byte-identical across
/// replicas from the start. Updates (Append/Remove/RemoveIds) are fanned
/// to every replica under one fan-out lock, in replica order, with the
/// same arguments — deterministic mutation of deterministic state, so
/// the replicas stay coherent: same ids assigned, same epoch after every
/// update (checked). A query routed to *any* replica therefore returns
/// exactly what every other replica would return once the epochs agree.
///
/// Reads need no lock here: each engine already synchronizes its own
/// index. The fan-out lock only serializes writers against each other so
/// replicas apply the identical update sequence.
class ReplicaSet {
 public:
  /// Builds `replicas` engines, each hydrated from its own copy of the
  /// snapshot (ids, tombstones, and epoch restored identically).
  ReplicaSet(const io::CodesSnapshot& snapshot,
             const ReplicaSetOptions& options);

  /// Convenience for tests/benches that hold a bare corpus (epoch 0,
  /// nothing tombstoned).
  ReplicaSet(const index::PackedCodes& corpus,
             const ReplicaSetOptions& options);

  int num_replicas() const { return static_cast<int>(engines_.size()); }
  QueryEngine* replica(int r) { return engines_[static_cast<size_t>(r)].get(); }
  const QueryEngine& replica(int r) const {
    return *engines_[static_cast<size_t>(r)];
  }

  /// \name Update fan-out (every replica, identical order + arguments)
  ///@{
  /// Appends the batch to all replicas. Returns the assigned global ids
  /// (identical on every replica — checked).
  std::vector<int> Append(const index::PackedCodes& codes);
  bool Remove(int global_id);
  int RemoveIds(const std::vector<int>& global_ids);

  /// Compacts every replica (QueryEngine::Compact — all shards holding
  /// dead rows). Replicas hold identical corpora, so every replica must
  /// reclaim the identical shard/row counts and land on the identical
  /// epoch — checked, because a divergence here means divergent ids.
  CompactionStats Compact();
  ///@}

  /// Corpus epoch (replica 0; all replicas agree outside an in-flight
  /// fan-out).
  uint64_t epoch() const { return engines_.front()->epoch(); }

  /// Queries in flight on replica r — the least-loaded routing signal.
  int64_t Inflight(int r) const {
    return engines_[static_cast<size_t>(r)]->inflight();
  }

  /// One engine snapshot per replica. Note fanned-out updates appear in
  /// every replica's append/remove counters.
  std::vector<ServeStatsSnapshot> PerReplicaStats() const;

  /// PerReplicaStats() folded through AggregateServeStats.
  ServeStatsSnapshot AggregatedStats() const;

  void ResetStats();

  /// Drains every replica (flushes in-flight batches, joins dispatch
  /// threads and worker pools). Engines remain usable inline afterwards.
  void DrainAll();

 private:
  /// Serializes fan-outs so every replica applies the same update
  /// sequence.
  std::mutex update_mu_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
};

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_REPLICA_SET_H_
