#ifndef UHSCM_SERVE_REPLICA_SET_H_
#define UHSCM_SERVE_REPLICA_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotated_sync.h"
#include "io/serialize.h"
#include "serve/query_engine.h"
#include "serve/serve_stats.h"
#include "serve/snapshot.h"

namespace uhscm::serve {

/// Replica lifecycle as the supervisor sees it.
enum class ReplicaHealth : int {
  /// Serving traffic; coherent with every other healthy replica.
  kHealthy = 0,
  /// Detected dead and being respawned right now (rebuild from the base
  /// snapshot + journal replay). The router keeps skipping it — the
  /// dead engine stays in the slot until the swap.
  kDegraded = 1,
  /// Killed and not (yet) being respawned.
  kDead = 2,
};

const char* ReplicaHealthName(ReplicaHealth health);

struct ReplicaSetOptions {
  /// Engine replicas to build; clamped to >= 1. Each replica owns a full
  /// copy of the corpus (per-replica snapshots — no shared mutable
  /// state), its own shard set, worker pool, and result cache.
  int replicas = 1;
  /// Index/engine configuration applied to every replica. When
  /// serving.engine.num_threads is 0 the hardware threads are divided
  /// evenly across replicas (at least 1 each), so adding replicas
  /// trades per-batch fan-out width for cross-batch parallelism instead
  /// of oversubscribing the machine.
  ServingSnapshotOptions serving;
  /// Start the supervisor thread: it polls every supervise_interval_ms
  /// for killed replicas and respawns each one (rebuild, replay,
  /// verify, swap). Off by default — tests and benches that need
  /// deterministic recovery timing call RespawnDeadReplicas() directly.
  bool supervise = false;
  int64_t supervise_interval_ms = 1;
};

/// \brief N identically-hydrated QueryEngine replicas behind one update
/// fan-out — the replication layer the pipeline's Router balances over —
/// plus the machinery that makes replicas cattle: health tracking, an
/// update journal, and supervised kill → respawn → rehydrate recovery.
///
/// Every replica is built from the same snapshot with the same options,
/// so global ids, epochs, and search results are byte-identical across
/// replicas from the start. Updates (Append/Remove/RemoveIds/Compact)
/// are fanned to every *live* replica under one fan-out lock, in replica
/// order, with the same arguments — deterministic mutation of
/// deterministic state, so the replicas stay coherent: same ids
/// assigned, same epoch after every update (checked). A query routed to
/// *any* live replica therefore returns exactly what every other live
/// replica would return once the epochs agree.
///
/// **Recovery.** Every fan-out is also appended to an in-memory journal
/// (the update sequence since hydration), and the hydration base
/// snapshot is retained. Respawning a killed replica rebuilds a fresh
/// engine from that base — the same deterministic hydration the
/// original replicas went through — replays the journal (asserting the
/// recorded ids/counts at every step), verifies epoch and corpus-size
/// coherence against a live replica, and atomically swaps the new
/// engine into the routing slot. Post-recovery results are
/// byte-identical to a replica that was never killed, because both are
/// the same deterministic function of (base snapshot, update sequence).
/// Fan-outs hold the same lock as a respawn, so no update can slip
/// between the journal freeze and the swap; queries keep flowing to the
/// other replicas throughout.
///
/// **Retired engines.** A swapped-out dead engine is retired, not
/// freed: the batcher resolves `Router::Pick()` to a raw engine pointer
/// and may still be submitting to it when the swap lands, so corpses
/// stay owned (valid, instantly rejecting everything, consuming no CPU)
/// until the ReplicaSet itself is destroyed. Respawns are rare; the
/// deferred reclamation is one idle engine per kill.
///
/// Reads need no lock here: `replica(r)` is one acquire load of the
/// slot pointer, and each engine synchronizes its own index. The
/// fan-out lock only serializes writers (and respawns) against each
/// other so replicas apply the identical update sequence.
class ReplicaSet {
 public:
  /// Builds `replicas` engines, each hydrated from its own copy of the
  /// snapshot (ids, tombstones, and epoch restored identically). The
  /// snapshot is retained as the respawn base.
  ReplicaSet(const io::CodesSnapshot& snapshot,
             const ReplicaSetOptions& options);

  /// Convenience for tests/benches that hold a bare corpus (epoch 0,
  /// nothing tombstoned). The corpus is retained as the respawn base.
  ReplicaSet(const index::PackedCodes& corpus,
             const ReplicaSetOptions& options);

  ~ReplicaSet();

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  int num_replicas() const { return num_replicas_; }
  /// The engine currently serving slot r (acquire load — safe against a
  /// concurrent respawn swap; a just-swapped-out engine stays valid, see
  /// class comment).
  QueryEngine* replica(int r) {
    return slots_[static_cast<size_t>(r)].load(std::memory_order_acquire);
  }
  const QueryEngine& replica(int r) const {
    return *slots_[static_cast<size_t>(r)].load(std::memory_order_acquire);
  }

  /// Health of slot r. kDead is partly derived: a replica killed since
  /// the last supervisor tick reads dead here even before the
  /// supervisor notices it.
  ReplicaHealth health(int r) const;

  /// \name Update fan-out (every live replica, identical order +
  /// arguments; journaled for respawn replay)
  ///@{
  /// Appends the batch to all live replicas. Returns the assigned
  /// global ids (identical on every replica — checked). With zero live
  /// replicas the update is journaled (a later respawn applies it) and
  /// the returned ids are empty.
  std::vector<int> Append(const index::PackedCodes& codes);
  bool Remove(int global_id);
  int RemoveIds(const std::vector<int>& global_ids);

  /// Compacts every live replica (QueryEngine::Compact — all shards
  /// holding dead rows). Replicas hold identical corpora, so every
  /// replica must reclaim the identical shard/row counts and land on
  /// the identical epoch — checked, because a divergence here means
  /// divergent ids.
  CompactionStats Compact();
  ///@}

  /// \name Recovery
  ///@{
  /// Scans for killed replicas and respawns each one synchronously
  /// (rebuild from base + journal replay + coherence check + slot
  /// swap). Returns how many came back. This is what the supervisor
  /// thread calls every tick; tests call it directly for determinism.
  /// A respawn whose hydration fails (replica.hydrate fault point)
  /// counts a failure and leaves the replica dead for the next attempt.
  int RespawnDeadReplicas();

  /// Successful respawns / failed respawn attempts since construction.
  int64_t respawns() const {
    return respawns_.load(std::memory_order_relaxed);
  }
  int64_t respawn_failures() const {
    return respawn_failures_.load(std::memory_order_relaxed);
  }

  /// Journaled updates since hydration (grows until the set is
  /// destroyed; the planned delta-snapshot checkpoint is what will
  /// truncate it).
  size_t journal_size() const;

  /// Starts/stops the supervisor thread (idempotent; the constructor
  /// starts it when options.supervise is set, the destructor stops it).
  void StartSupervisor();
  void StopSupervisor();
  ///@}

  /// Corpus epoch of the first live replica (all live replicas agree
  /// outside an in-flight fan-out); falls back to slot 0 when every
  /// replica is dead.
  uint64_t epoch() const;

  /// Queries in flight on replica r — the least-loaded routing signal.
  int64_t Inflight(int r) const { return replica(r).inflight(); }

  /// One engine snapshot per replica (the engine currently in each
  /// slot). Note fanned-out updates appear in every live replica's
  /// append/remove counters.
  std::vector<ServeStatsSnapshot> PerReplicaStats() const;

  /// PerReplicaStats() folded through AggregateServeStats, plus the
  /// health and respawn fields only this layer knows.
  ServeStatsSnapshot AggregatedStats() const;

  void ResetStats();

  /// Drains every replica currently in rotation (flushes in-flight
  /// batches, joins dispatch threads and worker pools). Engines remain
  /// usable inline afterwards.
  void DrainAll();

 private:
  /// One journaled fan-out, with the outcome recorded from the live
  /// replicas so a respawn's replay is checked step by step, not just
  /// at the end.
  struct JournalEntry {
    enum class Kind { kAppend, kRemoveIds, kCompact };
    Kind kind = Kind::kAppend;
    index::PackedCodes codes;      // kAppend payload
    std::vector<int> ids;          // kAppend: the ids the live replicas assigned
    std::vector<int> remove_ids;   // kRemoveIds payload
    int removed = 0;               // kRemoveIds: rows newly tombstoned
    CompactionStats compact;       // kCompact: reclaim the live replicas saw
    /// False when the update landed with zero live replicas — there was
    /// no outcome to record, so replay applies without checking.
    bool has_expected = true;
  };

  void Init(const ReplicaSetOptions& options);
  /// Engines in rotation that are not killed; caller holds update_mu_
  /// (exclusively — every caller is a mutator or a respawn).
  std::vector<QueryEngine*> LiveEnginesLocked() UHSCM_REQUIRES(update_mu_);
  /// Rebuild-replay-verify-swap for slot r; returns false when the
  /// replica was not dead after all or hydration failed. Takes
  /// update_mu_ for the whole rebuild: updates wait, queries don't.
  bool RespawnReplica(int r);
  void ReplayJournalLocked(QueryEngine* engine) const
      UHSCM_REQUIRES_SHARED(update_mu_);
  void SupervisorLoop();

  ServingSnapshotOptions serving_;
  int num_replicas_ = 0;
  /// Hydration base every respawn rebuilds from. One retained corpus
  /// copy — the price of rehydration without re-reading the artifact.
  io::CodesSnapshot base_;

  /// Serializes fan-outs and respawns so every replica applies the same
  /// update sequence and no update can straddle a respawn's
  /// freeze-replay-swap window. Also guards journal_. Mutators and
  /// respawns hold it exclusive; journal_size(), a pure read, holds it
  /// shared.
  mutable SharedMutex update_mu_{"replicaset.update", 88};
  std::vector<JournalEntry> journal_ UHSCM_GUARDED_BY(update_mu_);

  /// The router-visible rotation: slot r holds replica r's current
  /// engine. Release/acquire: the release store of a respawned slot
  /// publishes the fully rebuilt engine behind the pointer; health_
  /// likewise publishes each transition after its side effects.
  std::unique_ptr<std::atomic<QueryEngine*>[]> slots_;
  std::unique_ptr<std::atomic<int>[]> health_;
  /// Every engine ever created (current + retired corpses) — owns the
  /// storage the slot pointers alias.
  mutable Mutex owned_mu_{"replicaset.owned", 70};
  std::vector<std::unique_ptr<QueryEngine>> owned_ UHSCM_GUARDED_BY(owned_mu_);

  /// Relaxed: monotonic stats counters; no data is published through them.
  std::atomic<int64_t> respawns_{0};
  std::atomic<int64_t> respawn_failures_{0};

  int64_t supervise_interval_ms_ = 1;
  std::thread supervisor_ UHSCM_GUARDED_BY(supervisor_mu_);
  /// Ranked just below the update lock: SupervisorLoop drops it before
  /// RespawnDeadReplicas, so it is never held while acquiring
  /// update_mu_.
  Mutex supervisor_mu_{"replicaset.supervisor", 86};
  CondVar supervisor_cv_;
  bool supervisor_stop_ UHSCM_GUARDED_BY(supervisor_mu_) = false;
};

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_REPLICA_SET_H_
