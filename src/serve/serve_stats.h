#ifndef UHSCM_SERVE_SERVE_STATS_H_
#define UHSCM_SERVE_SERVE_STATS_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/stopwatch.h"

namespace uhscm::serve {

/// Power-of-two batch-size histogram buckets: bucket 0 counts flushes of
/// exactly 1 query, bucket b>0 counts sizes in (2^(b-1), 2^b], and the
/// last bucket absorbs everything larger.
constexpr int kBatchSizeBuckets = 10;

/// Point-in-time view of a QueryEngine's serving counters.
struct ServeStatsSnapshot {
  int64_t queries = 0;
  int64_t batches = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// LRU evictions from the result cache (filled in by
  /// QueryEngine::stats() from the cache's own counters).
  int64_t cache_evictions = 0;
  /// Corpus mutation counters and the resulting epoch (filled in by
  /// QueryEngine::stats(); every Append/Remove call bumps the epoch and
  /// invalidates all cached results by keying).
  int64_t appends = 0;
  int64_t removes = 0;
  /// Tombstone-compaction accounting (filled in by QueryEngine::stats()):
  /// shards compacted, dead rows whose scan bandwidth was reclaimed, and
  /// wall-clock milliseconds spent rebuilding+swapping (queries keep
  /// running throughout — only writers wait).
  int64_t compactions = 0;
  int64_t compact_rows_reclaimed = 0;
  double compaction_ms = 0.0;
  uint64_t epoch = 0;
  /// Wall-clock seconds spent inside Search calls (summed per batch, so
  /// concurrent callers accumulate their own time).
  double busy_seconds = 0.0;

  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;

  // --- async pipeline counters (all zero when serving synchronously;
  // filled in by Batcher::stats()) ---
  /// Requests sitting in the admission queue right now.
  int64_t queue_depth = 0;
  /// Flushes triggered by reaching the batch-size bound B.
  int64_t batches_flushed_by_size = 0;
  /// Flushes triggered by the T-microsecond deadline (includes the final
  /// partial flush of a drain).
  int64_t batches_flushed_by_timeout = 0;
  /// Submissions rejected with a shutdown Status (drained pipeline).
  int64_t rejected_requests = 0;
  /// Flushed-batch size distribution (see kBatchSizeBuckets).
  std::array<int64_t, kBatchSizeBuckets> batch_size_hist{};
  /// Admission-to-flush wait percentiles.
  double time_in_queue_p50_ms = 0.0;
  double time_in_queue_p99_ms = 0.0;
  /// Replica count this snapshot aggregates over (0 = single engine).
  int replicas = 0;

  double hit_rate() const {
    const int64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
  /// Throughput over the time the engine was actually searching.
  double qps() const {
    return busy_seconds > 0.0 ? static_cast<double>(queries) / busy_seconds
                              : 0.0;
  }
};

/// \brief Thread-safe latency/throughput accounting for the serving path.
///
/// Every Search batch reports its wall time once; each query in the batch
/// observes the batch's completion latency (what a caller of the batched
/// API experiences). Latency samples are capped to bound memory on
/// long-lived servers; counters are exact.
class ServeStats {
 public:
  /// \param max_latency_samples cap on retained per-query samples (the
  ///        percentile window); older samples are dropped oldest-first.
  explicit ServeStats(size_t max_latency_samples = 1 << 16);

  /// Records one completed batch: n queries answered in elapsed_seconds,
  /// of which `hits` came from the result cache.
  void RecordBatch(int num_queries, int hits, double elapsed_seconds);

  /// Computes a snapshot (percentiles sort a copy of the sample window).
  ServeStatsSnapshot Snapshot() const;

  /// Zeroes all counters and samples.
  void Reset();

 private:
  mutable std::mutex mu_;
  size_t max_samples_;
  size_t next_slot_ = 0;  // ring-buffer cursor once the window is full
  std::vector<double> latencies_ms_;
  int64_t queries_ = 0;
  int64_t batches_ = 0;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  double busy_seconds_ = 0.0;
};

/// Percentile (p in [0,100]) of a sample vector; 0 when empty. Sorts a
/// copy — callers on the hot path should snapshot sparingly.
double Percentile(std::vector<double> samples, double p);

/// Histogram bucket for a flushed batch of `size` queries.
int BatchSizeBucket(int size);

/// Human-readable bucket label ("1", "2", "<=4", ..., ">256").
std::string BatchSizeBucketLabel(int bucket);

/// \brief Thread-safe accounting for the async request pipeline: flush
/// reasons, batch-size distribution, time-in-queue, and end-to-end
/// request latency (admission to future completion — what a pipeline
/// client experiences, queue wait included).
///
/// FillSnapshot writes the pipeline fields of a ServeStatsSnapshot plus
/// the latency/throughput fields from its own end-to-end samples;
/// busy_seconds is the wall time since construction or Reset(), so
/// qps() reports true pipeline throughput, not summed latencies.
class PipelineStats {
 public:
  explicit PipelineStats(size_t max_latency_samples = 1 << 16);

  /// Records one flushed batch and why it flushed.
  void RecordFlush(int batch_size, bool by_timeout);

  /// Records one completed request: seconds spent queued before its
  /// batch flushed, and total seconds from admission to completion.
  void RecordRequestDone(double queue_seconds, double total_seconds);

  /// Records submissions rejected with a shutdown Status.
  void RecordRejected(int count);

  /// Fills the pipeline + latency + queries/batches fields of *snap
  /// (leaves cache/update fields alone — those belong to the engines).
  void FillSnapshot(ServeStatsSnapshot* snap) const;

  void Reset();

 private:
  mutable std::mutex mu_;
  size_t max_samples_;
  Stopwatch wall_;  // restarted by Reset(); powers the snapshot's qps()
  int64_t requests_done_ = 0;
  int64_t rejected_ = 0;
  int64_t flushes_by_size_ = 0;
  int64_t flushes_by_timeout_ = 0;
  std::array<int64_t, kBatchSizeBuckets> batch_size_hist_{};
  size_t next_queue_slot_ = 0;
  std::vector<double> queue_wait_ms_;
  size_t next_total_slot_ = 0;
  std::vector<double> total_latency_ms_;
};

/// Sums per-replica engine snapshots into one corpus-wide view: counters
/// add, busy_seconds add (so qps() stays "queries per engine-busy
/// second"), epoch takes the max (replicas are update-coherent, so they
/// agree outside an in-flight fan-out), and latency percentiles take the
/// worst replica — a conservative bound, since exact percentiles cannot
/// be recovered from per-replica summaries. `replicas` is set to the
/// input count.
ServeStatsSnapshot AggregateServeStats(
    const std::vector<ServeStatsSnapshot>& per_replica);

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_SERVE_STATS_H_
