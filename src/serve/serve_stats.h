#ifndef UHSCM_SERVE_SERVE_STATS_H_
#define UHSCM_SERVE_SERVE_STATS_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace uhscm::serve {

/// Point-in-time view of a QueryEngine's serving counters.
struct ServeStatsSnapshot {
  int64_t queries = 0;
  int64_t batches = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// LRU evictions from the result cache (filled in by
  /// QueryEngine::stats() from the cache's own counters).
  int64_t cache_evictions = 0;
  /// Corpus mutation counters and the resulting epoch (filled in by
  /// QueryEngine::stats(); every Append/Remove call bumps the epoch and
  /// invalidates all cached results by keying).
  int64_t appends = 0;
  int64_t removes = 0;
  uint64_t epoch = 0;
  /// Wall-clock seconds spent inside Search calls (summed per batch, so
  /// concurrent callers accumulate their own time).
  double busy_seconds = 0.0;

  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;

  double hit_rate() const {
    const int64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
  /// Throughput over the time the engine was actually searching.
  double qps() const {
    return busy_seconds > 0.0 ? static_cast<double>(queries) / busy_seconds
                              : 0.0;
  }
};

/// \brief Thread-safe latency/throughput accounting for the serving path.
///
/// Every Search batch reports its wall time once; each query in the batch
/// observes the batch's completion latency (what a caller of the batched
/// API experiences). Latency samples are capped to bound memory on
/// long-lived servers; counters are exact.
class ServeStats {
 public:
  /// \param max_latency_samples cap on retained per-query samples (the
  ///        percentile window); older samples are dropped oldest-first.
  explicit ServeStats(size_t max_latency_samples = 1 << 16);

  /// Records one completed batch: n queries answered in elapsed_seconds,
  /// of which `hits` came from the result cache.
  void RecordBatch(int num_queries, int hits, double elapsed_seconds);

  /// Computes a snapshot (percentiles sort a copy of the sample window).
  ServeStatsSnapshot Snapshot() const;

  /// Zeroes all counters and samples.
  void Reset();

 private:
  mutable std::mutex mu_;
  size_t max_samples_;
  size_t next_slot_ = 0;  // ring-buffer cursor once the window is full
  std::vector<double> latencies_ms_;
  int64_t queries_ = 0;
  int64_t batches_ = 0;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  double busy_seconds_ = 0.0;
};

/// Percentile (p in [0,100]) of a sample vector; 0 when empty. Sorts a
/// copy — callers on the hot path should snapshot sparingly.
double Percentile(std::vector<double> samples, double p);

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_SERVE_STATS_H_
