#ifndef UHSCM_SERVE_SERVE_STATS_H_
#define UHSCM_SERVE_SERVE_STATS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotated_sync.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace uhscm::serve {

/// Power-of-two batch-size histogram buckets: bucket 0 counts flushes of
/// exactly 1 query, bucket b>0 counts sizes in (2^(b-1), 2^b], and the
/// last bucket absorbs everything larger.
constexpr int kBatchSizeBuckets = 10;

/// Point-in-time view of a QueryEngine's serving counters.
struct ServeStatsSnapshot {
  int64_t queries = 0;
  int64_t batches = 0;
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  /// LRU evictions from the result cache (filled in by
  /// QueryEngine::stats() from the cache's own counters).
  int64_t cache_evictions = 0;
  /// Corpus mutation counters and the resulting epoch (filled in by
  /// QueryEngine::stats(); every Append/Remove call bumps the epoch and
  /// invalidates all cached results by keying).
  int64_t appends = 0;
  int64_t removes = 0;
  /// Tombstone-compaction accounting (filled in by QueryEngine::stats()):
  /// shards compacted, dead rows whose scan bandwidth was reclaimed, and
  /// wall-clock milliseconds spent rebuilding+swapping (queries keep
  /// running throughout — only writers wait).
  int64_t compactions = 0;
  int64_t compact_rows_reclaimed = 0;
  double compaction_ms = 0.0;
  uint64_t epoch = 0;
  /// Seconds spent inside Search calls, summed per batch. Concurrent
  /// callers each contribute their own wall time, so this measures
  /// engine *work*, not elapsed time — it can exceed wall_seconds.
  double busy_seconds = 0.0;
  /// Wall-clock seconds since the stats object was constructed or
  /// Reset() — the correct denominator for throughput.
  double wall_seconds = 0.0;

  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;

  /// Per-query completion-latency distribution in nanoseconds. The
  /// latency_*_ms fields above are derived from it; it rides along so
  /// AggregateServeStats can merge buckets across replicas and compute
  /// pooled percentiles instead of taking the worst replica.
  obs::HistogramSnapshot latency_hist;

  // --- async pipeline counters (all zero when serving synchronously;
  // filled in by Batcher::stats()) ---
  /// Requests sitting in the admission queue right now.
  int64_t queue_depth = 0;
  /// Flushes triggered by reaching the batch-size bound B.
  int64_t batches_flushed_by_size = 0;
  /// Flushes triggered by the T-microsecond deadline (includes the final
  /// partial flush of a drain).
  int64_t batches_flushed_by_timeout = 0;
  /// Submissions rejected with a shutdown Status (drained pipeline).
  int64_t rejected_requests = 0;
  /// Flushed-batch size distribution (see kBatchSizeBuckets).
  std::array<int64_t, kBatchSizeBuckets> batch_size_hist{};
  /// Admission-to-flush wait percentiles.
  double time_in_queue_p50_ms = 0.0;
  double time_in_queue_p99_ms = 0.0;
  /// Admission-to-flush wait distribution in nanoseconds (mergeable,
  /// like latency_hist).
  obs::HistogramSnapshot queue_wait_hist;
  /// Replica count this snapshot aggregates over (0 = single engine).
  int replicas = 0;

  // --- fault-tolerance counters (filled in by Batcher::stats() /
  // ReplicaSet::AggregatedStats(); all zero on the happy path) ---
  /// Batch re-dispatches after an Unavailable completion (a killed or
  /// draining replica). One batch can retry more than once.
  int64_t retries = 0;
  /// Hedge batches issued (duplicate dispatch of a still-inflight
  /// batch), and how many of those hedges resolved their batch first.
  int64_t hedges = 0;
  int64_t hedge_wins = 0;
  /// Requests resolved kDeadlineExceeded before reaching a replica.
  int64_t deadline_exceeded = 0;
  /// Replica lifecycle: current health census plus respawn outcomes
  /// since the set was built.
  int replicas_healthy = 0;
  int replicas_degraded = 0;
  int replicas_dead = 0;
  int64_t respawns = 0;
  int64_t respawn_failures = 0;

  double hit_rate() const {
    const int64_t total = cache_hits + cache_misses;
    return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
  }
  /// Throughput over wall-clock time — queries per elapsed second. This
  /// is what "QPS" means under concurrent callers; busy_seconds would
  /// double-count their overlapping wall time and deflate it.
  double qps() const {
    return wall_seconds > 0.0 ? static_cast<double>(queries) / wall_seconds
                              : 0.0;
  }
  /// Queries per engine-busy second: per-query service cost, the old
  /// qps() semantics. Equals qps() for a single sequential caller.
  double busy_qps() const {
    return busy_seconds > 0.0 ? static_cast<double>(queries) / busy_seconds
                              : 0.0;
  }
  /// Fraction of wall time spent searching. Exceeds 1 when callers
  /// overlap (it counts per-caller busy time against shared wall time).
  double utilization() const {
    return wall_seconds > 0.0 ? busy_seconds / wall_seconds : 0.0;
  }
};

/// \brief Thread-safe latency/throughput accounting for the serving path.
///
/// Every Search batch reports its wall time once; each query in the batch
/// observes the batch's completion latency (what a caller of the batched
/// API experiences). Latencies accumulate in an O(1)-record log-linear
/// histogram (~3% relative resolution, fixed memory) — Snapshot() walks
/// buckets, it never sorts samples.
class ServeStats {
 public:
  ServeStats();

  /// Records one completed batch: n queries answered in elapsed_seconds,
  /// of which `hits` came from the result cache.
  void RecordBatch(int num_queries, int hits, double elapsed_seconds);

  /// Computes a snapshot. Percentiles come from histogram buckets
  /// (no sort, no retained samples).
  ServeStatsSnapshot Snapshot() const;

  /// Zeroes all counters and restarts the wall clock.
  void Reset();

 private:
  /// Leaf lock over the scalar counters only; the histogram is lock-free.
  mutable Mutex mu_{"serve.stats", 18};
  Stopwatch wall_ UHSCM_GUARDED_BY(mu_);
  obs::Histogram latency_ns_;
  int64_t queries_ UHSCM_GUARDED_BY(mu_) = 0;
  int64_t batches_ UHSCM_GUARDED_BY(mu_) = 0;
  int64_t cache_hits_ UHSCM_GUARDED_BY(mu_) = 0;
  int64_t cache_misses_ UHSCM_GUARDED_BY(mu_) = 0;
  double busy_seconds_ UHSCM_GUARDED_BY(mu_) = 0.0;
};

/// Percentile (p in [0,100]) of a sample vector; 0 when empty. Sorts a
/// copy — kept for benches and tests that pool raw samples; the serving
/// path itself uses histogram buckets.
double Percentile(std::vector<double> samples, double p);

/// Histogram bucket for a flushed batch of `size` queries.
int BatchSizeBucket(int size);

/// Human-readable bucket label ("1", "2", "<=4", ..., ">256").
std::string BatchSizeBucketLabel(int bucket);

/// \brief Thread-safe accounting for the async request pipeline: flush
/// reasons, batch-size distribution, time-in-queue, and end-to-end
/// request latency (admission to future completion — what a pipeline
/// client experiences, queue wait included).
///
/// FillSnapshot writes the pipeline fields of a ServeStatsSnapshot plus
/// the latency/throughput fields from its own end-to-end histograms;
/// wall_seconds is the time since construction or Reset(), so qps()
/// reports true pipeline throughput.
class PipelineStats {
 public:
  PipelineStats();

  /// Records one flushed batch and why it flushed.
  void RecordFlush(int batch_size, bool by_timeout);

  /// Records one completed request: seconds spent queued before its
  /// batch flushed, and total seconds from admission to completion.
  void RecordRequestDone(double queue_seconds, double total_seconds);

  /// Records submissions rejected with a shutdown Status.
  void RecordRejected(int count);

  /// Records one batch re-dispatch after an Unavailable completion.
  void RecordRetry();

  /// Records one hedge batch issued / one batch whose hedge won.
  void RecordHedge();
  void RecordHedgeWin();

  /// Records `count` requests expired with kDeadlineExceeded.
  void RecordDeadlineExceeded(int count);

  /// Fills the pipeline + latency + queries/batches fields of *snap
  /// (leaves cache/update fields alone — those belong to the engines).
  void FillSnapshot(ServeStatsSnapshot* snap) const;

  void Reset();

 private:
  /// Leaf lock over the scalar counters; histograms are lock-free.
  mutable Mutex mu_{"pipeline.stats", 17};
  Stopwatch wall_ UHSCM_GUARDED_BY(mu_);
  obs::Histogram queue_wait_ns_;
  obs::Histogram total_latency_ns_;
  int64_t requests_done_ UHSCM_GUARDED_BY(mu_) = 0;
  int64_t rejected_ UHSCM_GUARDED_BY(mu_) = 0;
  int64_t flushes_by_size_ UHSCM_GUARDED_BY(mu_) = 0;
  int64_t flushes_by_timeout_ UHSCM_GUARDED_BY(mu_) = 0;
  int64_t retries_ UHSCM_GUARDED_BY(mu_) = 0;
  int64_t hedges_ UHSCM_GUARDED_BY(mu_) = 0;
  int64_t hedge_wins_ UHSCM_GUARDED_BY(mu_) = 0;
  int64_t deadline_exceeded_ UHSCM_GUARDED_BY(mu_) = 0;
  std::array<int64_t, kBatchSizeBuckets> batch_size_hist_ UHSCM_GUARDED_BY(
      mu_){};
};

/// Sums per-replica engine snapshots into one corpus-wide view: counters
/// add; busy_seconds add (total engine work) while wall_seconds takes
/// the max (replicas run concurrently over the same elapsed time);
/// epoch takes the max (replicas are update-coherent, so they agree
/// outside an in-flight fan-out). Latency percentiles are computed from
/// the *merged* latency histograms — bucket counts add exactly, so the
/// result matches pooled-sample percentiles within bucket resolution.
/// Snapshots without histogram data (hand-built, or from older captures)
/// fall back to the conservative worst-replica percentile bound.
/// `replicas` is set to the input count.
ServeStatsSnapshot AggregateServeStats(
    const std::vector<ServeStatsSnapshot>& per_replica);

/// Publishes a snapshot's counters into a registry as gauges
/// (`serve.*`, `cache.*`, `update.*`, `compact.*`, `pipeline.*`) so the
/// printed stats dump and --metrics-json export come from one source.
void FillRegistry(const ServeStatsSnapshot& snap, obs::MetricsRegistry* reg);

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_SERVE_STATS_H_
