#include "serve/request_queue.h"

#include <algorithm>
#include <utility>

#include "serve/fault.h"

namespace uhscm::serve {

namespace {

std::future<SearchResponse> RejectedFuture() {
  std::promise<SearchResponse> promise;
  promise.set_value(SearchResponse{
      Status::Unavailable("request queue closed — pipeline draining"), {}});
  return promise.get_future();
}

std::future<SearchResponse> InjectedRejection() {
  std::promise<SearchResponse> promise;
  promise.set_value(SearchResponse{
      Status::Unavailable("fault injection: admission rejected"), {}});
  return promise.get_future();
}

PendingRequest MakeRequest(const uint64_t* words, int num_words, int k) {
  PendingRequest request;
  request.words.assign(words, words + std::max(0, num_words));
  request.k = k;
  request.admit_time = std::chrono::steady_clock::now();
  // Sampling decision happens here, at the pipeline's front door: a
  // sampled request gets a trace id plus its root "request" span id,
  // which downstream stages parent their spans under. The batcher
  // records the root span when the response resolves.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  request.trace.trace_id = recorder.MaybeStartTrace();
  if (request.trace) request.trace.parent_span = recorder.NewSpanId();
  return request;
}

}  // namespace

RequestQueue::RequestQueue(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::future<SearchResponse> RequestQueue::Submit(
    const uint64_t* words, int num_words, int k,
    std::chrono::steady_clock::time_point deadline) {
  // Injected load-shedding at the front door: the queue.admit point
  // rejects the submission before it can occupy queue capacity,
  // counted like any other rejection.
  if (FaultInjector::Global().ShouldFail(kFaultQueueAdmit)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_;
    return InjectedRejection();
  }
  PendingRequest request = MakeRequest(words, num_words, k);
  request.deadline = deadline;
  std::future<SearchResponse> future = request.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || queue_.size() < capacity_; });
    if (closed_) {
      ++rejected_;
      return RejectedFuture();
    }
    queue_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return future;
}

bool RequestQueue::TrySubmit(const uint64_t* words, int num_words, int k,
                             std::future<SearchResponse>* out) {
  if (FaultInjector::Global().ShouldFail(kFaultQueueAdmit)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_;
    *out = InjectedRejection();
    return true;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      ++rejected_;
      *out = RejectedFuture();
      return true;
    }
    if (queue_.size() >= capacity_) return false;
    PendingRequest request = MakeRequest(words, num_words, k);
    *out = request.promise.get_future();
    queue_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::CollectBatch(int max_batch,
                                std::chrono::microseconds timeout,
                                std::vector<PendingRequest>* out) {
  out->clear();
  max_batch = std::max(1, max_batch);
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (closed_) return false;  // leftovers are FailPending's to complete
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    while (!queue_.empty() && static_cast<int>(out->size()) < max_batch) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
      not_full_.notify_one();
    }
    if (static_cast<int>(out->size()) >= max_batch || closed_) break;
    if (!not_empty_.wait_until(
            lock, deadline, [&] { return closed_ || !queue_.empty(); })) {
      break;  // T elapsed first: flush whatever the batch holds
    }
  }
  return true;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

int RequestQueue::FailPending(const Status& status) {
  std::deque<PendingRequest> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(queue_);
  }
  for (PendingRequest& request : pending) {
    request.promise.set_value(SearchResponse{status, {}});
  }
  not_full_.notify_all();
  return static_cast<int>(pending.size());
}

size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

int64_t RequestQueue::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

void RequestQueue::ResetRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  rejected_ = 0;
}

}  // namespace uhscm::serve
