#include "serve/request_queue.h"

#include <algorithm>
#include <utility>

#include "serve/fault.h"

namespace uhscm::serve {

namespace {

std::future<SearchResponse> RejectedFuture() {
  std::promise<SearchResponse> promise;
  promise.set_value(SearchResponse{
      Status::Unavailable("request queue closed — pipeline draining"), {}});
  return promise.get_future();
}

std::future<SearchResponse> InjectedRejection() {
  std::promise<SearchResponse> promise;
  promise.set_value(SearchResponse{
      Status::Unavailable("fault injection: admission rejected"), {}});
  return promise.get_future();
}

PendingRequest MakeRequest(const uint64_t* words, int num_words, int k) {
  PendingRequest request;
  request.words.assign(words, words + std::max(0, num_words));
  request.k = k;
  request.admit_time = std::chrono::steady_clock::now();
  // Sampling decision happens here, at the pipeline's front door: a
  // sampled request gets a trace id plus its root "request" span id,
  // which downstream stages parent their spans under. The batcher
  // records the root span when the response resolves.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  request.trace.trace_id = recorder.MaybeStartTrace();
  if (request.trace) request.trace.parent_span = recorder.NewSpanId();
  return request;
}

}  // namespace

RequestQueue::RequestQueue(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::future<SearchResponse> RequestQueue::Submit(
    const uint64_t* words, int num_words, int k,
    std::chrono::steady_clock::time_point deadline) {
  // Injected load-shedding at the front door: the queue.admit point
  // rejects the submission before it can occupy queue capacity,
  // counted like any other rejection.
  if (FaultInjector::Global().ShouldFail(kFaultQueueAdmit)) {
    MutexLock lock(mu_);
    ++rejected_;
    return InjectedRejection();
  }
  PendingRequest request = MakeRequest(words, num_words, k);
  request.deadline = deadline;
  std::future<SearchResponse> future = request.promise.get_future();
  {
    UniqueLock lock(mu_);
    while (!closed_ && queue_.size() >= capacity_) not_full_.wait(lock);
    if (closed_) {
      ++rejected_;
      return RejectedFuture();
    }
    queue_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return future;
}

bool RequestQueue::TrySubmit(const uint64_t* words, int num_words, int k,
                             std::future<SearchResponse>* out) {
  if (FaultInjector::Global().ShouldFail(kFaultQueueAdmit)) {
    MutexLock lock(mu_);
    ++rejected_;
    *out = InjectedRejection();
    return true;
  }
  {
    MutexLock lock(mu_);
    if (closed_) {
      ++rejected_;
      *out = RejectedFuture();
      return true;
    }
    if (queue_.size() >= capacity_) return false;
    PendingRequest request = MakeRequest(words, num_words, k);
    *out = request.promise.get_future();
    queue_.push_back(std::move(request));
  }
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::CollectBatch(int max_batch,
                                std::chrono::microseconds timeout,
                                std::vector<PendingRequest>* out) {
  out->clear();
  max_batch = std::max(1, max_batch);
  UniqueLock lock(mu_);
  while (!closed_ && queue_.empty()) not_empty_.wait(lock);
  if (closed_) return false;  // leftovers are FailPending's to complete
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    while (!queue_.empty() && static_cast<int>(out->size()) < max_batch) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
      not_full_.notify_one();
    }
    if (static_cast<int>(out->size()) >= max_batch || closed_) break;
    // Wait for more work, a close, or the T deadline — whichever first.
    bool collect_more = true;
    while (!closed_ && queue_.empty()) {
      if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) {
        collect_more = closed_ || !queue_.empty();
        break;
      }
    }
    if (!collect_more) break;  // T elapsed first: flush what the batch holds
  }
  return true;
}

void RequestQueue::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

int RequestQueue::FailPending(const Status& status) {
  std::deque<PendingRequest> pending;
  {
    MutexLock lock(mu_);
    pending.swap(queue_);
  }
  for (PendingRequest& request : pending) {
    request.promise.set_value(SearchResponse{status, {}});
  }
  not_full_.notify_all();
  return static_cast<int>(pending.size());
}

size_t RequestQueue::depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

bool RequestQueue::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

int64_t RequestQueue::rejected() const {
  MutexLock lock(mu_);
  return rejected_;
}

void RequestQueue::ResetRejected() {
  MutexLock lock(mu_);
  rejected_ = 0;
}

}  // namespace uhscm::serve
