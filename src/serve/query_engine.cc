#include "serve/query_engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "common/status.h"
#include "common/stopwatch.h"
#include "serve/fault.h"

namespace uhscm::serve {

using index::Neighbor;

QueryEngine::QueryEngine(std::unique_ptr<ShardedIndex> index,
                         const QueryEngineOptions& options)
    : index_(std::move(index)),
      pool_(std::make_unique<ThreadPool>(options.num_threads)),
      cache_(options.cache_capacity),
      miss_block_(std::max(1, options.miss_block)),
      compact_dead_fraction_(options.compact_dead_fraction) {
  UHSCM_CHECK(index_ != nullptr, "QueryEngine: null index");
}

QueryEngine::~QueryEngine() { Drain(); }

void QueryEngine::CompleteTask(DispatchTask task, bool killed) {
  const int n = task.queries.size();
  if (killed) {
    task.done(Status::Unavailable("engine killed before the batch ran"), {});
  } else {
    // Straggler injection: an armed replica.slow_batch delay sleeps the
    // dispatch thread before the search, so the slowness is visible
    // exactly where a genuinely slow replica's would be — in this
    // batch's completion latency and the engine's in-flight count.
    const int64_t delay_ns = FaultInjector::Global().DelayNs(
        kFaultSlowBatch, fault_tag_.load(std::memory_order_relaxed));
    if (delay_ns > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay_ns));
    }
    task.done(Status::OK(), Search(task.queries, task.k, task.trace));
  }
  // Decrement only after the callback returns — on *every* completion
  // path, including the killed one: a batch that resolves Unavailable
  // and leaks its in-flight count would bias least-loaded routing away
  // from this replica forever. (Decrementing after the callback also
  // means a router seeing the old load cannot race ahead of a completion
  // the client hasn't observed yet, and tests can hold a batch "in
  // flight" by blocking in the callback.)
  inflight_.fetch_sub(n, std::memory_order_relaxed);
}

void QueryEngine::SubmitBatch(index::PackedCodes queries, int k,
                              obs::TraceContext trace, BatchCallback done) {
  // Deterministic replica death: an armed replica.kill point (skip_hits
  // = K-1 → die on batch K) kills this engine before the batch is
  // enqueued, so the submission — and everything queued behind it —
  // resolves Unavailable exactly like a replica dying under load.
  if (FaultInjector::Global().ShouldFail(
          kFaultReplicaKill, fault_tag_.load(std::memory_order_relaxed))) {
    Kill();
  }
  const int n = queries.size();
  inflight_.fetch_add(n, std::memory_order_relaxed);
  DispatchTask task{std::move(queries), k, trace, std::move(done)};
  bool reject = false;
  {
    UniqueLock lock(dispatch_mu_);
    if (!drained_) {
      if (!dispatch_thread_.joinable()) {
        dispatch_thread_ = std::thread([this] { DispatchLoop(); });
      }
      dispatch_tasks_.push_back(std::move(task));
      lock.unlock();
      dispatch_cv_.notify_one();
      return;
    }
    reject = killed_;
  }
  // Drained: complete inline, never drop. Killed: reject inline — the
  // corpus may be mid-teardown, so no new search may start.
  CompleteTask(std::move(task), reject);
}

std::future<std::vector<std::vector<Neighbor>>> QueryEngine::SubmitBatch(
    index::PackedCodes queries, int k) {
  auto promise =
      std::make_shared<std::promise<std::vector<std::vector<Neighbor>>>>();
  std::future<std::vector<std::vector<Neighbor>>> future =
      promise->get_future();
  SubmitBatch(std::move(queries), k,
              [promise](Status status,
                        std::vector<std::vector<Neighbor>> results) {
                // The future carries no Status channel, so a failed
                // batch (killed engine) must not masquerade as an empty
                // success — surface it as an exception from get().
                if (!status.ok()) {
                  promise->set_exception(std::make_exception_ptr(
                      std::runtime_error(status.ToString())));
                  return;
                }
                promise->set_value(std::move(results));
              });
  return future;
}

void QueryEngine::DispatchLoop() {
  for (;;) {
    DispatchTask task;
    bool killed = false;
    {
      UniqueLock lock(dispatch_mu_);
      while (!dispatch_stop_ && dispatch_tasks_.empty()) {
        dispatch_cv_.wait(lock);
      }
      if (dispatch_tasks_.empty()) return;  // stop requested, queue flushed
      task = std::move(dispatch_tasks_.front());
      dispatch_tasks_.pop_front();
      killed = killed_;
    }
    CompleteTask(std::move(task), killed);
  }
}

void QueryEngine::Shutdown(bool kill) {
  MutexLock drain_lock(drain_mu_);
  std::thread dispatch;
  {
    MutexLock lock(dispatch_mu_);
    if (drained_) return;
    drained_ = true;
    dispatch_stop_ = true;
    killed_ = kill;
    if (kill) killed_flag_.store(true, std::memory_order_release);
    dispatch.swap(dispatch_thread_);
  }
  dispatch_cv_.notify_all();
  // The dispatch loop settles every queued batch before exiting — with
  // results on a drain, with an Unavailable status on a kill — and it
  // must be gone before the pool is drained — its Searches fan out on
  // the pool.
  if (dispatch.joinable()) dispatch.join();
  pool_->Drain();
}

void QueryEngine::Drain() { Shutdown(/*kill=*/false); }

void QueryEngine::Kill() { Shutdown(/*kill=*/true); }

std::vector<std::vector<Neighbor>> QueryEngine::Search(
    const index::PackedCodes& queries, int k,
    const obs::TraceContext& trace) {
  const int n = queries.size();
  if (n == 0) return {};
  UHSCM_CHECK(queries.bits() == index_->bits(),
              "QueryEngine::Search: query bit width != corpus bit width");
  k = std::min(k, index_->size());
  if (k <= 0) {
    stats_.RecordBatch(n, 0, 0.0);
    return std::vector<std::vector<Neighbor>>(static_cast<size_t>(n));
  }

  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  obs::ScopedSpan search_span(&recorder, trace, "search");
  search_span.AddAttr("queries", n);
  search_span.AddAttr("k", k);

  Stopwatch watch;
  std::vector<std::vector<Neighbor>> results(static_cast<size_t>(n));
  const int words = queries.words_per_code();
  // One cache epoch per batch: all lookups and inserts of this Search
  // use it. Updates bump it only after the index mutation completes, so
  // a batch observing the new value always reads the updated index; it
  // is monotonic even across RestoreEpoch, so no key ever aliases two
  // corpus states.
  const uint64_t epoch = cache_epoch_.load(std::memory_order_acquire);

  // Phase 1: serve what the cache already knows.
  std::vector<int> misses;
  misses.reserve(static_cast<size_t>(n));
  {
    obs::ScopedSpan lookup_span(&recorder, search_span.context(),
                                "cache-lookup");
    for (int q = 0; q < n; ++q) {
      CacheKey key{{queries.code(q), queries.code(q) + words}, k, epoch};
      if (!cache_.Lookup(key, &results[static_cast<size_t>(q)])) {
        misses.push_back(q);
      }
    }
    lookup_span.AddAttr("hits", n - static_cast<int64_t>(misses.size()));
  }
  const int hits = n - static_cast<int>(misses.size());

  // Phase 2: fan (miss-block, shard) units out on the pool in one flat
  // loop. Grouping misses into blocks lets each unit run the shard's
  // cache-blocked batch scan — the shard's codes are streamed once per
  // block of queries instead of once per query — while the unit count
  // stays high enough to keep all workers busy on small batches.
  const int num_shards = index_->num_shards();
  const int num_misses = static_cast<int>(misses.size());
  const int qblock = miss_block_;
  const int num_blocks = (num_misses + qblock - 1) / qblock;
  std::vector<std::vector<Neighbor>> partials(
      misses.size() * static_cast<size_t>(num_shards));
  {
    obs::ScopedSpan scan_span(&recorder, search_span.context(), "scan");
    scan_span.AddAttr("misses", num_misses);
    scan_span.AddAttr("shards", num_shards);
    pool_->ParallelFor(num_blocks * num_shards, [&](int unit) {
      const int blk = unit / num_shards;
      const int s = unit % num_shards;
      const int mb = blk * qblock;
      const int me = std::min(mb + qblock, num_misses);
      obs::ScopedSpan unit_span(&recorder, scan_span.context(), "shard-scan");
      unit_span.AddAttr("shard", s);
      unit_span.AddAttr("queries", me - mb);
      std::vector<const uint64_t*> qptrs(static_cast<size_t>(me - mb));
      for (int m = mb; m < me; ++m) {
        qptrs[static_cast<size_t>(m - mb)] =
            queries.code(misses[static_cast<size_t>(m)]);
      }
      std::vector<std::vector<Neighbor>> block_results =
          index_->ShardTopKBatch(s, qptrs.data(), me - mb, k);
      for (int m = mb; m < me; ++m) {
        partials[static_cast<size_t>(m) * num_shards + s] =
            std::move(block_results[static_cast<size_t>(m - mb)]);
      }
    });
  }

  // Phase 3: merge each miss's shard lists and publish to the cache
  // (the merge span covers the cache fill — they share the parallel
  // pass so miss results are written back without a second walk).
  {
    obs::ScopedSpan merge_span(&recorder, search_span.context(), "merge");
    merge_span.AddAttr("cache_inserts", num_misses);
    pool_->ParallelFor(static_cast<int>(misses.size()), [&](int m) {
      std::vector<std::vector<Neighbor>> per_shard(
          std::make_move_iterator(partials.begin() +
                                  static_cast<size_t>(m) * num_shards),
          std::make_move_iterator(partials.begin() +
                                  static_cast<size_t>(m + 1) * num_shards));
      const int q = misses[static_cast<size_t>(m)];
      results[static_cast<size_t>(q)] = ShardedIndex::MergeTopK(per_shard, k);
      CacheKey key{{queries.code(q), queries.code(q) + words}, k, epoch};
      cache_.Insert(key, results[static_cast<size_t>(q)]);
    });
  }

  stats_.RecordBatch(n, hits, watch.ElapsedSeconds());
  return results;
}

std::vector<Neighbor> QueryEngine::SearchOne(const uint64_t* query, int k) {
  index::PackedCodes one = index::PackedCodes::FromRawWords(
      1, index_->bits(),
      std::vector<uint64_t>(query, query + (index_->bits() + 63) / 64));
  return Search(one, k)[0];
}

void QueryEngine::BumpEpochsLocked() {
  // Always bump the pair together: a mutator that advanced epoch_ but
  // not cache_epoch_ would let a reused (epoch, query, k) key serve a
  // stale cached result — the bug class the monotonic cache epoch
  // exists to make impossible.
  cache_epoch_.fetch_add(1, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
}

std::vector<int> QueryEngine::Append(const index::PackedCodes& codes) {
  ExclusiveLock lock(update_mu_);
  std::vector<int> ids = index_->Append(codes);
  if (!ids.empty()) {
    appends_.fetch_add(static_cast<int64_t>(ids.size()),
                       std::memory_order_relaxed);
    // Bump strictly after the index mutation: a Search that reads the new
    // epoch is guaranteed to see the appended rows, so nothing stale can
    // be cached under the new key.
    BumpEpochsLocked();
  }
  return ids;
}

bool QueryEngine::Remove(int global_id) {
  ExclusiveLock lock(update_mu_);
  const bool removed = index_->Remove(global_id);
  if (removed) {
    removes_.fetch_add(1, std::memory_order_relaxed);
    MaybeCompactLocked();
    BumpEpochsLocked();
  }
  return removed;
}

int QueryEngine::RemoveIds(const std::vector<int>& global_ids) {
  ExclusiveLock lock(update_mu_);
  const int removed = index_->RemoveIds(global_ids);
  if (removed > 0) {
    removes_.fetch_add(removed, std::memory_order_relaxed);
    MaybeCompactLocked();
    BumpEpochsLocked();
  }
  return removed;
}

void QueryEngine::RecordCompaction(const CompactionStats& stats,
                                   double elapsed_seconds) {
  compactions_.fetch_add(stats.shards_compacted, std::memory_order_relaxed);
  compact_rows_reclaimed_.fetch_add(stats.rows_reclaimed,
                                    std::memory_order_relaxed);
  compact_micros_.fetch_add(static_cast<int64_t>(elapsed_seconds * 1e6),
                            std::memory_order_relaxed);
}

bool QueryEngine::MaybeCompactLocked() {
  if (compact_dead_fraction_ <= 0.0) return false;
  Stopwatch watch;
  const CompactionStats stats = index_->MaybeCompact(compact_dead_fraction_);
  if (stats.rows_reclaimed == 0) return false;
  RecordCompaction(stats, watch.ElapsedSeconds());
  return true;
}

CompactionStats QueryEngine::Compact() {
  ExclusiveLock lock(update_mu_);
  Stopwatch watch;
  const CompactionStats stats = index_->CompactAll();
  if (stats.rows_reclaimed > 0) {
    RecordCompaction(stats, watch.ElapsedSeconds());
    BumpEpochsLocked();
  }
  return stats;
}

void QueryEngine::RestoreEpoch(uint64_t epoch) {
  ExclusiveLock lock(update_mu_);
  // The reported epoch may move backwards (hydrating an older snapshot
  // into a live engine); the cache-key epoch never does — a restore
  // bumps it like an update, so entries keyed under any previous value
  // are permanently unreachable even when a Search in flight across
  // the restore publishes under the old key after this returns.
  // Clearing just frees the unreachable entries early.
  cache_epoch_.fetch_add(1, std::memory_order_release);
  cache_.Clear();
  epoch_.store(epoch, std::memory_order_release);
}

CorpusExport QueryEngine::ExportCorpus(uint64_t* epoch_out) const {
  // Shared: exporting only reads; mutators (exclusive holders) still
  // cannot slip between the corpus copy and the epoch read.
  SharedLock lock(update_mu_);
  CorpusExport corpus = index_->Export();
  *epoch_out = epoch();
  return corpus;
}

ServeStatsSnapshot QueryEngine::stats() const {
  ServeStatsSnapshot snap = stats_.Snapshot();
  // The cache's own counters are authoritative for cache behavior (a
  // disabled cache reports zeros); ServeStats aggregates the same
  // hit/miss totals per batch for standalone use.
  const ResultCacheStats cache_stats = cache_.stats();
  snap.cache_hits = cache_stats.hits;
  snap.cache_misses = cache_stats.misses;
  snap.cache_evictions = cache_stats.evictions;
  snap.appends = appends_.load(std::memory_order_relaxed);
  snap.removes = removes_.load(std::memory_order_relaxed);
  snap.compactions = compactions_.load(std::memory_order_relaxed);
  snap.compact_rows_reclaimed =
      compact_rows_reclaimed_.load(std::memory_order_relaxed);
  snap.compaction_ms =
      static_cast<double>(compact_micros_.load(std::memory_order_relaxed)) /
      1e3;
  snap.epoch = epoch();
  return snap;
}

void QueryEngine::ResetStats() {
  stats_.Reset();
  cache_.ResetStats();
  appends_.store(0, std::memory_order_relaxed);
  removes_.store(0, std::memory_order_relaxed);
  compactions_.store(0, std::memory_order_relaxed);
  compact_rows_reclaimed_.store(0, std::memory_order_relaxed);
  compact_micros_.store(0, std::memory_order_relaxed);
}

std::vector<index::PackedCodes> SliceBatches(const index::PackedCodes& queries,
                                             int batch) {
  batch = std::max(1, batch);
  std::vector<index::PackedCodes> batches;
  batches.reserve(static_cast<size_t>(
      (queries.size() + batch - 1) / std::max(1, batch)));
  const int words = queries.words_per_code();
  for (int begin = 0; begin < queries.size(); begin += batch) {
    const int count = std::min(batch, queries.size() - begin);
    std::vector<uint64_t> slice(
        queries.words().begin() + static_cast<size_t>(begin) * words,
        queries.words().begin() +
            static_cast<size_t>(begin + count) * words);
    batches.push_back(index::PackedCodes::FromRawWords(count, queries.bits(),
                                                       std::move(slice)));
  }
  return batches;
}

void ReplayBatches(QueryEngine* engine, const index::PackedCodes& queries,
                   int batch, int k) {
  ReplayBatches(engine, SliceBatches(queries, batch), k);
}

void ReplayBatches(QueryEngine* engine,
                   const std::vector<index::PackedCodes>& batches, int k) {
  for (const index::PackedCodes& batch : batches) {
    engine->Search(batch, k);
  }
}

}  // namespace uhscm::serve
