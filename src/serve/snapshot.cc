#include "serve/snapshot.h"

#include <utility>

#include "io/serialize.h"

namespace uhscm::serve {

Result<std::unique_ptr<QueryEngine>> LoadQueryEngine(
    const std::string& codes_path, const ServingSnapshotOptions& options) {
  Result<io::CodesSnapshot> snapshot = io::LoadCodesSnapshot(codes_path);
  if (!snapshot.ok()) return snapshot.status();
  return MakeQueryEngineFromSnapshot(std::move(snapshot).ValueOrDie(),
                                     options);
}

std::unique_ptr<QueryEngine> MakeQueryEngineFromSnapshot(
    io::CodesSnapshot snapshot, const ServingSnapshotOptions& options) {
  std::vector<int> dead;
  if (snapshot.HasTombstones()) {
    for (int gid = 0; gid < snapshot.codes.size(); ++gid) {
      if (snapshot.IsDead(gid)) dead.push_back(gid);
    }
  }
  // Shards partition all rows (tombstoned ones included) so global ids
  // match the snapshot exactly; deletions are re-applied on top.
  auto index = std::make_unique<ShardedIndex>(std::move(snapshot.codes),
                                              options.index);
  index->RemoveIds(dead);
  // Hydration-time compaction, unconditional: a snapshot's dead rows
  // (tombstoned or compacted-away holes serialized as zeroed rows)
  // serve no purpose in memory — they only burn scan bandwidth until
  // something re-triggers a compaction. Reclaiming them here is
  // result-identical by construction (same global ids, same survivors)
  // and costs one rebuild pass at load, so an engine that was compacted
  // when saved comes back compacted. Done on the bare index so the
  // restored epoch still matches the snapshot exactly.
  index->CompactAll();
  auto engine =
      std::make_unique<QueryEngine>(std::move(index), options.engine);
  engine->RestoreEpoch(snapshot.epoch);
  return engine;
}

std::unique_ptr<QueryEngine> MakeQueryEngine(
    index::PackedCodes corpus, const ServingSnapshotOptions& options) {
  auto index =
      std::make_unique<ShardedIndex>(std::move(corpus), options.index);
  return std::make_unique<QueryEngine>(std::move(index), options.engine);
}

Status SaveServingSnapshot(const QueryEngine& engine,
                           const std::string& path) {
  uint64_t epoch = 0;
  CorpusExport corpus = engine.ExportCorpus(&epoch);
  io::CodesSnapshot snapshot;
  snapshot.codes = std::move(corpus.codes);
  snapshot.tombstone_words = std::move(corpus.tombstone_words);
  snapshot.epoch = epoch;
  return io::SaveCodesSnapshot(snapshot, path);
}

}  // namespace uhscm::serve
