#include "serve/snapshot.h"

#include <utility>

#include "io/serialize.h"

namespace uhscm::serve {

Result<std::unique_ptr<QueryEngine>> LoadQueryEngine(
    const std::string& codes_path, const ServingSnapshotOptions& options) {
  Result<index::PackedCodes> codes = io::LoadPackedCodes(codes_path);
  if (!codes.ok()) return codes.status();
  return MakeQueryEngine(std::move(codes).ValueOrDie(), options);
}

std::unique_ptr<QueryEngine> MakeQueryEngine(
    index::PackedCodes corpus, const ServingSnapshotOptions& options) {
  auto index =
      std::make_unique<ShardedIndex>(std::move(corpus), options.index);
  return std::make_unique<QueryEngine>(std::move(index), options.engine);
}

}  // namespace uhscm::serve
