#include "serve/fault.h"

namespace uhscm::serve {

namespace {
constexpr uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ULL;
}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Seed(uint64_t seed) {
  MutexLock lock(mu_);
  rng_ = Rng(seed);
}

void FaultInjector::Arm(const std::string& point, const FaultSpec& spec) {
  MutexLock lock(mu_);
  points_[point] = ArmedPoint{spec, 0, 0};
  armed_points_.store(static_cast<int64_t>(points_.size()),
                      std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  MutexLock lock(mu_);
  points_.erase(point);
  armed_points_.store(static_cast<int64_t>(points_.size()),
                      std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  MutexLock lock(mu_);
  points_.clear();
  rng_ = Rng(kDefaultSeed);
  armed_points_.store(0, std::memory_order_relaxed);
}

const FaultSpec* FaultInjector::Evaluate(const char* point, int tag) {
  MutexLock lock(mu_);
  // Instance-scoped spec ("point#tag") wins over the bare point name,
  // so a test can make replica 1 the straggler while the others run
  // clean.
  ArmedPoint* armed = nullptr;
  if (tag >= 0) {
    auto it = points_.find(std::string(point) + "#" + std::to_string(tag));
    if (it != points_.end()) armed = &it->second;
  }
  if (armed == nullptr) {
    auto it = points_.find(point);
    if (it != points_.end()) armed = &it->second;
  }
  if (armed == nullptr) return nullptr;
  armed->hits += 1;
  if (armed->hits <= armed->spec.skip_hits) return nullptr;
  if (armed->spec.max_fires >= 0 && armed->fires >= armed->spec.max_fires) {
    return nullptr;
  }
  if (armed->spec.probability < 1.0 &&
      !rng_.Bernoulli(armed->spec.probability)) {
    return nullptr;
  }
  armed->fires += 1;
  return &armed->spec;
}

int64_t FaultInjector::hits(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it != points_.end() ? it->second.hits : 0;
}

int64_t FaultInjector::fires(const std::string& point) const {
  MutexLock lock(mu_);
  auto it = points_.find(point);
  return it != points_.end() ? it->second.fires : 0;
}

}  // namespace uhscm::serve
