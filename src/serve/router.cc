#include "serve/router.h"

#include "common/status.h"

namespace uhscm::serve {

const char* RoutePolicyName(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return "round-robin";
    case RoutePolicy::kLeastLoaded:
      return "least-loaded";
  }
  return "unknown";
}

bool ParseRoutePolicy(const std::string& name, RoutePolicy* policy) {
  if (name == "rr" || name == "round-robin") {
    *policy = RoutePolicy::kRoundRobin;
    return true;
  }
  if (name == "least" || name == "least-loaded") {
    *policy = RoutePolicy::kLeastLoaded;
    return true;
  }
  return false;
}

Router::Router(ReplicaSet* replicas, RoutePolicy policy)
    : replicas_(replicas),
      policy_(policy),
      routed_(new std::atomic<int64_t>[static_cast<size_t>(
          replicas->num_replicas())]) {
  UHSCM_CHECK(replicas_ != nullptr, "Router: null replica set");
  for (int r = 0; r < replicas_->num_replicas(); ++r) {
    routed_[static_cast<size_t>(r)].store(0, std::memory_order_relaxed);
  }
}

int Router::Route() {
  const int n = replicas_->num_replicas();
  // Dead replicas are skipped by both policies: a killed engine rejects
  // everything instantly, so its in-flight count sits at zero — without
  // the liveness check, least-loaded would steer nearly all traffic
  // onto the corpse while healthy replicas idle. With every replica
  // dead there is nowhere to route: return -1 so the caller fails the
  // batch immediately instead of queuing work behind a corpse.
  int pick = -1;
  if (policy_ == RoutePolicy::kRoundRobin) {
    for (int attempt = 0; attempt < n; ++attempt) {
      const int candidate = static_cast<int>(
          next_.fetch_add(1, std::memory_order_relaxed) %
          static_cast<uint64_t>(n));
      if (!replicas_->replica(candidate)->killed()) {
        pick = candidate;
        break;
      }
    }
  } else {
    int64_t best = 0;
    for (int r = 0; r < n; ++r) {
      if (replicas_->replica(r)->killed()) continue;
      const int64_t load = replicas_->Inflight(r);
      if (pick < 0 || load < best) {
        best = load;
        pick = r;
      }
    }
  }
  if (pick >= 0) {
    routed_[static_cast<size_t>(pick)].fetch_add(1, std::memory_order_relaxed);
  }
  return pick;
}

}  // namespace uhscm::serve
