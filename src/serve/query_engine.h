#ifndef UHSCM_SERVE_QUERY_ENGINE_H_
#define UHSCM_SERVE_QUERY_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/annotated_sync.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "index/packed_codes.h"
#include "obs/trace.h"
#include "serve/result_cache.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"

namespace uhscm::serve {

struct QueryEngineOptions {
  /// Worker threads owned by the engine (0 = hardware concurrency). All
  /// (query x shard) search units of a batch share this pool.
  int num_threads = 0;
  /// Result-cache entries (0 disables caching).
  size_t cache_capacity = 4096;
  /// Uncached queries scored together per (block, shard) work unit. Each
  /// unit runs the shard's cache-blocked batch scan, so larger blocks
  /// amortize corpus memory traffic further but leave fewer units to
  /// spread across the pool. Clamped to >= 1.
  int miss_block = 16;
  /// Auto-compaction threshold: after every completed Remove/RemoveIds,
  /// any shard whose dead fraction reaches this value is compacted
  /// (survivor rebuild off-lock, swap under the shard's writer lock,
  /// locator remap — results and global ids unchanged). <= 0 disables
  /// auto-compaction; Compact() stays available either way.
  double compact_dead_fraction = 0.0;
};

/// \brief The serving front end: batched top-k search over a mutable
/// ShardedIndex with an epoch-keyed LRU result cache and
/// latency/throughput accounting.
///
/// `Search` is safe to call concurrently from many request threads — and
/// concurrently with `Append`/`Remove`: the index takes per-shard
/// reader/writer locks, the cache and stats take their own locks, and
/// batch fan-out runs on the engine's private pool. Work is flattened to
/// (uncached query, shard) units in a single ParallelFor — never nested
/// pools, so request threads cannot deadlock the workers.
///
/// The corpus **epoch** is a monotonic counter bumped after every
/// completed update; it is folded into every cache key, so a result
/// computed before an update can never answer a query issued after it —
/// stale cache hits are structurally impossible.
///
/// Results are exact and deterministic: byte-identical (after id
/// compaction) to a single-threaded LinearScan over the surviving rows,
/// whether they come from a shard merge or from the cache.
class QueryEngine {
 public:
  QueryEngine(std::unique_ptr<ShardedIndex> index,
              const QueryEngineOptions& options = {});
  ~QueryEngine();

  /// Top-k neighbors for each of `queries` (packed, same bit width as the
  /// corpus). Returns one ascending (distance, id) list per query.
  std::vector<std::vector<index::Neighbor>> Search(
      const index::PackedCodes& queries, int k) {
    return Search(queries, k, obs::TraceContext{});
  }

  /// Traced form: when `trace` carries a sampled trace id, the search
  /// records cache-lookup / per-shard scan / merge spans under it.
  /// Identical results either way; an unsampled context costs nothing.
  std::vector<std::vector<index::Neighbor>> Search(
      const index::PackedCodes& queries, int k,
      const obs::TraceContext& trace);

  /// Single-query convenience wrapper over the batched path.
  std::vector<index::Neighbor> SearchOne(const uint64_t* query, int k);

  /// Per-batch completion callback: on OK, one ascending result list per
  /// query in query order — exactly what Search returns. A non-OK status
  /// (only Unavailable, from a killed engine) carries an empty result
  /// vector; either way the callback runs exactly once and the engine's
  /// in-flight counter is decremented after it returns — no completion
  /// path may leak in-flight queries, or least-loaded routing is
  /// permanently biased away from this replica.
  using BatchCallback = std::function<void(
      Status, std::vector<std::vector<index::Neighbor>>)>;

  /// \name Non-blocking batch seam (driven by the pipeline's Batcher)
  ///
  /// SubmitBatch enqueues the batch on the engine's dispatch thread and
  /// returns immediately; the dispatch thread runs Search (whose fan-out
  /// uses the worker pool) and invokes `done` with results byte-identical
  /// to a synchronous Search of the same batch at the same epoch. Batches
  /// execute in submission order, one at a time per engine — replication
  /// is the cross-batch parallelism lever, keeping each engine's pool
  /// contention-free. The dispatch thread is started lazily on the first
  /// SubmitBatch, so purely synchronous engines never pay for it. After
  /// Drain() the submission runs inline on the caller (still completed,
  /// never dropped).
  ///@{
  void SubmitBatch(index::PackedCodes queries, int k, BatchCallback done) {
    SubmitBatch(std::move(queries), k, obs::TraceContext{}, std::move(done));
  }

  /// Traced form — the batch's trace context rides along to the
  /// dispatch thread, so the eventual Search hangs its spans under the
  /// batch that carried it.
  void SubmitBatch(index::PackedCodes queries, int k, obs::TraceContext trace,
                   BatchCallback done);

  /// Future-returning convenience wrapper over the callback form. A
  /// batch that fails (killed engine) surfaces as a std::runtime_error
  /// from future::get() — the future has no Status channel, and an
  /// empty-success masquerade would read out of shape for callers
  /// indexing one result list per query.
  std::future<std::vector<std::vector<index::Neighbor>>> SubmitBatch(
      index::PackedCodes queries, int k);

  /// Queries admitted through SubmitBatch whose callback has not yet
  /// returned — the load signal the least-loaded router balances on.
  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// Orderly shutdown of the async machinery: runs every already-
  /// submitted batch to completion (callbacks included), joins the
  /// dispatch thread, then drains the worker pool. Idempotent; the
  /// destructor calls it. Search/SubmitBatch afterwards still work,
  /// inline and single-threaded.
  void Drain();

  /// Fail-fast shutdown — the "replica died" path. Queued batches that
  /// have not started searching resolve their callbacks with an
  /// Unavailable status (empty results) instead of running; the batch
  /// currently executing finishes normally. Later SubmitBatch calls also
  /// resolve Unavailable immediately. Every completion path still
  /// decrements the in-flight counter, so a killed replica reads as
  /// idle, not as eternally loaded. Joins the dispatch thread and worker
  /// pool like Drain; idempotent, and a no-op after Drain.
  void Kill();

  /// True once Kill() has marked the engine dead (set before Kill
  /// waits for in-flight work, so observers can order against it).
  /// Lock-free — the router consults it on every batch placement to
  /// steer traffic away from dead replicas.
  bool killed() const { return killed_flag_.load(std::memory_order_acquire); }
  ///@}

  /// Instance tag consulted by the fault injector: an armed
  /// `replica.kill#2` or `replica.slow_batch#2` fires only on the
  /// engine tagged 2 (ReplicaSet tags each replica with its slot
  /// index). -1 (the default) matches only unscoped points.
  void set_fault_tag(int tag) {
    fault_tag_.store(tag, std::memory_order_relaxed);
  }
  int fault_tag() const { return fault_tag_.load(std::memory_order_relaxed); }

  /// Appends a batch of codes to the corpus (routed to the least-full
  /// shard) and bumps the epoch. Returns the assigned global ids.
  std::vector<int> Append(const index::PackedCodes& codes);

  /// Tombstones one global id; bumps the epoch when anything was removed.
  bool Remove(int global_id);

  /// Tombstones a list of global ids (one epoch bump for the whole
  /// batch). Returns how many were newly removed.
  int RemoveIds(const std::vector<int>& global_ids);

  /// Compacts every shard holding dead rows (see
  /// ShardedIndex::CompactAll) and bumps the epoch when anything was
  /// reclaimed. Results and global ids are unchanged — the epoch bump
  /// buys cache coherence for free rather than correcting anything.
  CompactionStats Compact();

  /// Current corpus epoch: 0 at construction, +1 after every completed
  /// Append / Remove / RemoveIds / Compact that changed the corpus.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Restores a persisted epoch (snapshot hydration). Hydrating an
  /// older snapshot moves the *reported* epoch backwards, but cache
  /// keys use a separate strictly monotonic counter that a restore
  /// bumps like any update — so entries cached under a previously-used
  /// (epoch, query, k) combination can never come back from the dead,
  /// even with searches in flight across the restore. The cache is
  /// also cleared to free the now-unreachable entries.
  void RestoreEpoch(uint64_t epoch);

  /// Consistent snapshot payload: the corpus copy and the epoch it
  /// corresponds to, captured together under the update lock so no
  /// concurrent Append/Remove can slip between them.
  CorpusExport ExportCorpus(uint64_t* epoch_out) const;

  const ShardedIndex& index() const { return *index_; }
  int num_threads() const { return pool_->num_threads(); }

  /// ServeStats snapshot plus the cache's hit/miss/evict counters, the
  /// update counters, and the current epoch.
  ServeStatsSnapshot stats() const;
  void ResetStats();

  size_t cache_size() const { return cache_.size(); }

 private:
  /// One queued SubmitBatch: kept as data (not a closure) so Kill() can
  /// resolve it with a status without running the search.
  struct DispatchTask {
    index::PackedCodes queries;
    int k = 0;
    obs::TraceContext trace;
    BatchCallback done;
  };

  void DispatchLoop();
  /// Runs (killed=false) or fails (killed=true) one task, then
  /// decrements the in-flight counter — the single completion path.
  void CompleteTask(DispatchTask task, bool killed);
  void Shutdown(bool kill);
  /// Auto-compaction check. Returns true when anything was reclaimed
  /// (the caller's epoch bump covers it).
  bool MaybeCompactLocked() UHSCM_REQUIRES(update_mu_);
  /// Folds one compaction pass into the stats counters.
  void RecordCompaction(const CompactionStats& stats, double elapsed_seconds);
  /// Advances the reported epoch and the cache-key epoch together after
  /// a completed mutation.
  void BumpEpochsLocked() UHSCM_REQUIRES(update_mu_);

  std::unique_ptr<ShardedIndex> index_;
  std::unique_ptr<ThreadPool> pool_;
  ResultCache cache_;
  ServeStats stats_;
  int miss_block_;
  double compact_dead_fraction_;
  /// Serializes {index mutation, epoch bump} pairs against each other
  /// and against ExportCorpus, so a snapshot's epoch always matches its
  /// corpus. Searches never take it. Mutators hold it exclusive;
  /// ExportCorpus — a pure read — holds it shared.
  mutable SharedMutex update_mu_{"engine.update", 76};
  /// Release/acquire: bumped (release) only after the index mutation
  /// completes, so an observer of the new value is guaranteed to read
  /// the mutated corpus even before it touches a shard lock.
  std::atomic<uint64_t> epoch_{0};
  /// The epoch folded into cache keys. Tracks epoch_ bump-for-bump but
  /// is *never* restored backwards — RestoreEpoch bumps it instead — so
  /// a (cache epoch, query, k) key is never reused across distinct
  /// corpus states and stale entries are structurally unreachable even
  /// when the reported epoch revisits an old value.
  /// Release/acquire, same publication contract as epoch_.
  std::atomic<uint64_t> cache_epoch_{0};
  /// Relaxed: monotonic stats counters only — snapshots read them
  /// individually and promise no cross-counter consistency.
  std::atomic<int64_t> appends_{0};
  std::atomic<int64_t> removes_{0};
  std::atomic<int64_t> compactions_{0};
  std::atomic<int64_t> compact_rows_reclaimed_{0};
  std::atomic<int64_t> compact_micros_{0};

  /// Async dispatch state. The thread is lazily created under
  /// dispatch_mu_ and joined by Drain() *before* pool_ is torn down —
  /// the destruction-ordering contract that lets in-flight batches use
  /// the pool safely at shutdown.
  mutable Mutex dispatch_mu_{"engine.dispatch", 72};
  CondVar dispatch_cv_;
  std::deque<DispatchTask> dispatch_tasks_ UHSCM_GUARDED_BY(dispatch_mu_);
  std::thread dispatch_thread_ UHSCM_GUARDED_BY(dispatch_mu_);
  bool dispatch_stop_ UHSCM_GUARDED_BY(dispatch_mu_) = false;
  bool drained_ UHSCM_GUARDED_BY(dispatch_mu_) = false;
  bool killed_ UHSCM_GUARDED_BY(dispatch_mu_) = false;
  /// Mirror of killed_ readable without the dispatch mutex (set with
  /// release in the same critical section that sets killed_; acquire
  /// loads order observer reads after the kill decision).
  std::atomic<bool> killed_flag_{false};
  /// Serializes Drain/Kill callers (same pattern as ThreadPool::Drain):
  /// a second shutdown — or the destructor — must not return while the
  /// first is still joining the dispatch thread and draining the pool.
  Mutex drain_mu_{"engine.drain", 80};
  /// Relaxed: load-balancing signal only (least-loaded routing); no data
  /// is published through it and a momentarily stale read just routes one
  /// batch suboptimally.
  std::atomic<int64_t> inflight_{0};
  /// Relaxed: configuration value consulted by the fault injector; set
  /// once per replica slot before traffic flows.
  std::atomic<int> fault_tag_{-1};
};

/// Slices a query stream into `batch`-sized PackedCodes (the final batch
/// may be short). Replay loops that run multiple passes should slice
/// once and reuse the packed buffers instead of re-copying the words on
/// every pass.
std::vector<index::PackedCodes> SliceBatches(const index::PackedCodes& queries,
                                             int batch);

/// Replays a query stream through the engine in batches of `batch`
/// packed queries. One-pass convenience over SliceBatches + the
/// pre-sliced overload below.
void ReplayBatches(QueryEngine* engine, const index::PackedCodes& queries,
                   int batch, int k);

/// Replays pre-sliced batches through the engine — the multi-pass form
/// `uhscm_cli serve` and the throughput benches use so the packed
/// buffers are built once per stream, not once per pass.
void ReplayBatches(QueryEngine* engine,
                   const std::vector<index::PackedCodes>& batches, int k);

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_QUERY_ENGINE_H_
