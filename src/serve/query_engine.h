#ifndef UHSCM_SERVE_QUERY_ENGINE_H_
#define UHSCM_SERVE_QUERY_ENGINE_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "index/packed_codes.h"
#include "serve/result_cache.h"
#include "serve/serve_stats.h"
#include "serve/sharded_index.h"

namespace uhscm::serve {

struct QueryEngineOptions {
  /// Worker threads owned by the engine (0 = hardware concurrency). All
  /// (query x shard) search units of a batch share this pool.
  int num_threads = 0;
  /// Result-cache entries (0 disables caching).
  size_t cache_capacity = 4096;
  /// Latency samples retained for percentile reporting.
  size_t max_latency_samples = 1 << 16;
  /// Uncached queries scored together per (block, shard) work unit. Each
  /// unit runs the shard's cache-blocked batch scan, so larger blocks
  /// amortize corpus memory traffic further but leave fewer units to
  /// spread across the pool. Clamped to >= 1.
  int miss_block = 16;
};

/// \brief The serving front end: batched top-k search over a ShardedIndex
/// with an LRU result cache and latency/throughput accounting.
///
/// `Search` is safe to call concurrently from many request threads: the
/// index is immutable after construction, the cache and stats take their
/// own locks, and batch fan-out runs on the engine's private pool. Work
/// is flattened to (uncached query, shard) units in a single ParallelFor
/// — never nested pools, so request threads cannot deadlock the workers.
///
/// Results are exact and deterministic: byte-identical to a
/// single-threaded LinearScan over the unsharded corpus, whether they
/// come from a shard merge or from the cache.
class QueryEngine {
 public:
  QueryEngine(std::unique_ptr<ShardedIndex> index,
              const QueryEngineOptions& options = {});

  /// Top-k neighbors for each of `queries` (packed, same bit width as the
  /// corpus). Returns one ascending (distance, id) list per query.
  std::vector<std::vector<index::Neighbor>> Search(
      const index::PackedCodes& queries, int k);

  /// Single-query convenience wrapper over the batched path.
  std::vector<index::Neighbor> SearchOne(const uint64_t* query, int k);

  const ShardedIndex& index() const { return *index_; }
  int num_threads() const { return pool_->num_threads(); }

  ServeStatsSnapshot stats() const { return stats_.Snapshot(); }
  void ResetStats() { stats_.Reset(); }

  size_t cache_size() const { return cache_.size(); }

 private:
  std::unique_ptr<ShardedIndex> index_;
  std::unique_ptr<ThreadPool> pool_;
  ResultCache cache_;
  ServeStats stats_;
  int miss_block_;
};

/// Replays a query stream through the engine in batches of `batch`
/// packed queries (the final batch may be short). The batch-slicing loop
/// shared by `uhscm_cli serve` and the throughput bench.
void ReplayBatches(QueryEngine* engine, const index::PackedCodes& queries,
                   int batch, int k);

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_QUERY_ENGINE_H_
