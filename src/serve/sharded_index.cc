#include "serve/sharded_index.h"

#include <algorithm>
#include <queue>

#include "common/status.h"

namespace uhscm::serve {

using index::Neighbor;

namespace {

/// Exact top-k over one MIH shard: grow the Hamming radius until at least
/// k verified hits accumulate (or the radius covers the whole space),
/// then rank by (distance, id). WithinRadius results are exact, so the
/// selection is exact too.
std::vector<Neighbor> MihTopK(const index::MultiIndexHashTable& mih, int bits,
                              const uint64_t* query, int k) {
  k = std::min(k, mih.size());
  if (k <= 0) return {};
  int radius = std::max(1, bits / 16);
  std::vector<Neighbor> hits;
  for (;;) {
    hits = mih.WithinRadius(query, radius);
    if (static_cast<int>(hits.size()) >= k || radius >= bits) break;
    radius = std::min(bits, radius * 2);
  }
  std::sort(hits.begin(), hits.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.distance != b.distance ? a.distance < b.distance : a.id < b.id;
  });
  hits.resize(static_cast<size_t>(std::min<int>(k, hits.size())));
  return hits;
}

}  // namespace

ShardedIndex::ShardedIndex(index::PackedCodes corpus,
                           const ShardedIndexOptions& options)
    : options_(options), size_(corpus.size()), bits_(corpus.bits()) {
  UHSCM_CHECK(bits_ > 0, "ShardedIndex: corpus has zero code width");
  const int num_shards =
      std::clamp(options.num_shards, 1, std::max(1, size_));
  options_.num_shards = num_shards;

  const int words_per_code = corpus.words_per_code();
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const int begin = static_cast<int>(
        static_cast<int64_t>(s) * size_ / num_shards);
    const int end = static_cast<int>(
        static_cast<int64_t>(s + 1) * size_ / num_shards);
    const int count = end - begin;
    std::vector<uint64_t> words(
        corpus.words().begin() +
            static_cast<size_t>(begin) * words_per_code,
        corpus.words().begin() + static_cast<size_t>(end) * words_per_code);
    index::PackedCodes shard_codes =
        index::PackedCodes::FromRawWords(count, bits_, std::move(words));

    Shard shard;
    shard.offset = begin;
    if (options_.backend == ShardBackend::kMultiIndexHash) {
      shard.mih = std::make_unique<index::MultiIndexHashTable>(
          std::move(shard_codes), options_.mih_substrings);
    } else {
      shard.scan = std::make_unique<index::LinearScanIndex>(
          std::move(shard_codes));
    }
    shards_.push_back(std::move(shard));
  }
}

std::vector<Neighbor> ShardedIndex::ShardTopK(int s, const uint64_t* query,
                                              int k) const {
  UHSCM_CHECK(s >= 0 && s < num_shards(),
              "ShardedIndex::ShardTopK: shard out of range");
  const Shard& shard = shards_[static_cast<size_t>(s)];
  std::vector<Neighbor> local =
      shard.scan ? shard.scan->TopK(query, k)
                 : MihTopK(*shard.mih, bits_, query, k);
  for (Neighbor& nb : local) nb.id += shard.offset;
  return local;
}

std::vector<std::vector<Neighbor>> ShardedIndex::ShardTopKBatch(
    int s, const uint64_t* const* queries, int num_queries, int k) const {
  UHSCM_CHECK(s >= 0 && s < num_shards(),
              "ShardedIndex::ShardTopKBatch: shard out of range");
  const Shard& shard = shards_[static_cast<size_t>(s)];
  std::vector<std::vector<Neighbor>> results;
  if (shard.scan) {
    results = shard.scan->TopKBatch(queries, num_queries, k);
  } else {
    results.resize(static_cast<size_t>(std::max(0, num_queries)));
    for (int q = 0; q < num_queries; ++q) {
      results[static_cast<size_t>(q)] =
          MihTopK(*shard.mih, bits_, queries[q], k);
    }
  }
  for (auto& list : results) {
    for (Neighbor& nb : list) nb.id += shard.offset;
  }
  return results;
}

std::vector<Neighbor> ShardedIndex::MergeTopK(
    const std::vector<std::vector<Neighbor>>& per_shard, int k) {
  if (k <= 0) return {};
  // K-way merge of sorted lists: heap of (list, position) cursors keyed
  // by the cursor's current (distance, id).
  struct Cursor {
    const std::vector<Neighbor>* list;
    size_t pos;
  };
  auto worse = [](const Cursor& a, const Cursor& b) {
    const Neighbor& na = (*a.list)[a.pos];
    const Neighbor& nb = (*b.list)[b.pos];
    return na.distance != nb.distance ? na.distance > nb.distance
                                      : na.id > nb.id;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(worse)> heap(
      worse);
  for (const std::vector<Neighbor>& list : per_shard) {
    if (!list.empty()) heap.push(Cursor{&list, 0});
  }
  std::vector<Neighbor> merged;
  merged.reserve(static_cast<size_t>(k));
  while (!heap.empty() && static_cast<int>(merged.size()) < k) {
    Cursor top = heap.top();
    heap.pop();
    merged.push_back((*top.list)[top.pos]);
    if (++top.pos < top.list->size()) heap.push(top);
  }
  return merged;
}

std::vector<Neighbor> ShardedIndex::TopK(const uint64_t* query, int k,
                                         ThreadPool* pool) const {
  k = std::min(k, size_);
  if (k <= 0) return {};
  std::vector<std::vector<Neighbor>> per_shard(shards_.size());
  auto search_shard = [&](int s) {
    per_shard[static_cast<size_t>(s)] = ShardTopK(s, query, k);
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_shards(), search_shard);
  } else {
    ParallelFor(num_shards(), search_shard);
  }
  return MergeTopK(per_shard, k);
}

}  // namespace uhscm::serve
