#include "serve/sharded_index.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/status.h"
#include "index/linear_scan.h"
#include "index/multi_index_hash.h"

namespace uhscm::serve {

using index::Neighbor;

ShardedIndex::ShardedIndex(index::PackedCodes corpus,
                           const ShardedIndexOptions& options)
    : options_(options), bits_(corpus.bits()) {
  UHSCM_CHECK(bits_ > 0, "ShardedIndex: corpus has zero code width");
  const int size = corpus.size();
  const int num_shards = std::clamp(options.num_shards, 1, std::max(1, size));
  options_.num_shards = num_shards;
  live_size_.store(size, std::memory_order_relaxed);
  total_size_.store(size, std::memory_order_relaxed);

  const int words_per_code = corpus.words_per_code();
  locator_.reserve(static_cast<size_t>(size));
  shard_live_.resize(static_cast<size_t>(num_shards), 0);
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    const int begin =
        static_cast<int>(static_cast<int64_t>(s) * size / num_shards);
    const int end =
        static_cast<int>(static_cast<int64_t>(s + 1) * size / num_shards);
    const int count = end - begin;
    std::vector<uint64_t> words(
        corpus.words().begin() + static_cast<size_t>(begin) * words_per_code,
        corpus.words().begin() + static_cast<size_t>(end) * words_per_code);
    index::PackedCodes shard_codes =
        index::PackedCodes::FromRawWords(count, bits_, std::move(words));

    auto shard = std::make_unique<Shard>();
    shard->offset = begin;
    shard->base_count = count;
    if (options_.backend == ShardBackend::kMultiIndexHash) {
      shard->impl = std::make_unique<index::MultiIndexHashTable>(
          std::move(shard_codes), options_.mih_substrings);
    } else {
      shard->impl =
          std::make_unique<index::LinearScanIndex>(std::move(shard_codes));
    }
    for (int local = 0; local < count; ++local) {
      locator_.push_back(Locator{s, local});
    }
    shard_live_[static_cast<size_t>(s)] = count;
    shards_.push_back(std::move(shard));
  }
}

std::vector<Neighbor> ShardedIndex::ShardTopK(int s, const uint64_t* query,
                                              int k) const {
  UHSCM_CHECK(s >= 0 && s < num_shards(),
              "ShardedIndex::ShardTopK: shard out of range");
  const Shard& shard = *shards_[static_cast<size_t>(s)];
  SharedLock lock(shard.mu);
  std::vector<Neighbor> local = shard.impl->TopK(query, k);
  // The local -> global map is strictly increasing, so the (distance, id)
  // sort order survives the remap.
  index::RemapNeighborIds(&local,
                          [&shard](int id) { return shard.GlobalId(id); });
  return local;
}

std::vector<std::vector<Neighbor>> ShardedIndex::ShardTopKBatch(
    int s, const uint64_t* const* queries, int num_queries, int k) const {
  UHSCM_CHECK(s >= 0 && s < num_shards(),
              "ShardedIndex::ShardTopKBatch: shard out of range");
  const Shard& shard = *shards_[static_cast<size_t>(s)];
  SharedLock lock(shard.mu);
  std::vector<std::vector<Neighbor>> results =
      shard.impl->TopKBatch(queries, num_queries, k);
  for (auto& list : results) {
    index::RemapNeighborIds(&list,
                            [&shard](int id) { return shard.GlobalId(id); });
  }
  return results;
}

std::vector<int> ShardedIndex::Append(const index::PackedCodes& batch) {
  UHSCM_CHECK(batch.bits() == bits_,
              "ShardedIndex::Append: batch bit width != corpus bit width");
  std::vector<int> ids;
  if (batch.size() == 0) return ids;
  ExclusiveLock meta(meta_mu_);
  // Route the whole batch to the shard with the fewest live rows so the
  // corpus stays balanced as it grows and shrinks.
  int target = 0;
  for (int s = 1; s < num_shards(); ++s) {
    if (shard_live_[static_cast<size_t>(s)] <
        shard_live_[static_cast<size_t>(target)]) {
      target = s;
    }
  }
  Shard& shard = *shards_[static_cast<size_t>(target)];
  const int first_id = total_size_.load(std::memory_order_relaxed);
  ids.reserve(static_cast<size_t>(batch.size()));
  {
    ExclusiveLock lock(shard.mu);
    const int local_base = shard.impl->total_size();
    shard.impl->Append(batch);
    for (int i = 0; i < batch.size(); ++i) {
      const int gid = first_id + i;
      ids.push_back(gid);
      shard.appended_ids.push_back(gid);
      locator_.push_back(Locator{target, local_base + i});
    }
  }
  shard_live_[static_cast<size_t>(target)] += batch.size();
  total_size_.fetch_add(batch.size(), std::memory_order_relaxed);
  live_size_.fetch_add(batch.size(), std::memory_order_release);
  return ids;
}

bool ShardedIndex::Remove(int global_id) {
  ExclusiveLock meta(meta_mu_);
  if (global_id < 0 ||
      global_id >= total_size_.load(std::memory_order_relaxed)) {
    return false;
  }
  const Locator loc = locator_[static_cast<size_t>(global_id)];
  if (loc.shard == Locator::kGone) return false;  // compacted away
  Shard& shard = *shards_[static_cast<size_t>(loc.shard)];
  ExclusiveLock lock(shard.mu);
  if (!shard.impl->Remove(loc.local)) return false;
  --shard_live_[static_cast<size_t>(loc.shard)];
  live_size_.fetch_sub(1, std::memory_order_release);
  return true;
}

int ShardedIndex::RemoveIds(const std::vector<int>& global_ids) {
  ExclusiveLock meta(meta_mu_);
  const int total = total_size_.load(std::memory_order_relaxed);
  // Group by shard so each shard's writer lock is taken once per batch
  // instead of once per id — a bulk delete stalls in-flight queries per
  // shard, not per row.
  std::vector<std::vector<int>> local_ids(shards_.size());
  for (int gid : global_ids) {
    if (gid < 0 || gid >= total) continue;
    const Locator loc = locator_[static_cast<size_t>(gid)];
    if (loc.shard == Locator::kGone) continue;  // compacted away
    local_ids[static_cast<size_t>(loc.shard)].push_back(loc.local);
  }
  int removed = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (local_ids[s].empty()) continue;
    Shard& shard = *shards_[s];
    ExclusiveLock lock(shard.mu);
    int shard_removed = 0;
    for (int local : local_ids[s]) {
      shard_removed += shard.impl->Remove(local) ? 1 : 0;
    }
    shard_live_[s] -= shard_removed;
    removed += shard_removed;
  }
  if (removed > 0) live_size_.fetch_sub(removed, std::memory_order_release);
  return removed;
}

int ShardedIndex::ShardDeadLocked(int s) const {
  const Shard& shard = *shards_[static_cast<size_t>(s)];
  // base_count + appended_ids tracks the impl's total row count and is
  // readable under meta_mu_ alone (every mutator holds it).
  return shard.base_count + static_cast<int>(shard.appended_ids.size()) -
         shard_live_[static_cast<size_t>(s)];
}

int ShardedIndex::CompactShard(int s) {
  UHSCM_CHECK(s >= 0 && s < num_shards(),
              "ShardedIndex::CompactShard: shard out of range");
  ExclusiveLock meta(meta_mu_);
  if (ShardDeadLocked(s) == 0) return 0;
  return CompactShardLocked(s);
}

CompactionStats ShardedIndex::MaybeCompact(double dead_fraction) {
  ExclusiveLock meta(meta_mu_);
  CompactionStats stats;
  for (int s = 0; s < num_shards(); ++s) {
    const Shard& shard = *shards_[static_cast<size_t>(s)];
    const int total =
        shard.base_count + static_cast<int>(shard.appended_ids.size());
    const int dead = ShardDeadLocked(s);
    if (dead <= 0) continue;
    if (static_cast<double>(dead) < dead_fraction * total) continue;
    stats.shards_compacted += 1;
    stats.rows_reclaimed += CompactShardLocked(s);
  }
  return stats;
}

int ShardedIndex::CompactShardLocked(int s) {
  Shard& shard = *shards_[static_cast<size_t>(s)];
  // Off the shard's writer lock: meta_mu_ (held by the caller) keeps the
  // shard write-quiescent — every mutator takes it first — while
  // in-flight queries keep reading the old impl under their shared
  // locks. Compact() only does const reads, so it races with nothing.
  std::unique_ptr<index::ShardIndex> compacted = shard.impl->Compact();
  const index::TombstoneSet& dead = shard.impl->tombstones();
  const int old_total = shard.impl->total_size();

  // New local ids are survivor ranks; survivor global ids in old-local
  // order are strictly increasing (base ids ascend, appended ids ascend
  // above them), so the remapped shard stays merge-compatible.
  std::vector<int> survivor_gids;
  survivor_gids.reserve(static_cast<size_t>(compacted->total_size()));
  int reclaimed = 0;
  for (int local = 0; local < old_total; ++local) {
    const int gid = shard.GlobalId(local);
    if (dead.Test(local)) {
      locator_[static_cast<size_t>(gid)] = Locator{Locator::kGone, -1};
      ++reclaimed;
    } else {
      locator_[static_cast<size_t>(gid)] =
          Locator{s, static_cast<int>(survivor_gids.size())};
      survivor_gids.push_back(gid);
    }
  }

  // The swap is the only step queries must not observe half-done: take
  // the writer lock just long enough to exchange the pointers.
  {
    ExclusiveLock lock(shard.mu);
    shard.impl = std::move(compacted);
    shard.base_count = 0;  // all locals now map through appended_ids
    shard.appended_ids = std::move(survivor_gids);
  }
  return reclaimed;
}

CorpusExport ShardedIndex::Export() const {
  // Shared: exporting is a pure read — concurrent exports may overlap,
  // and only mutators (exclusive holders) are fenced out.
  SharedLock meta(meta_mu_);
  return ExportLocked();
}

CorpusExport ShardedIndex::ExportLocked() const {
  // Freeze every shard against writers, in shard-index order (the one
  // consistent order kOrderedInstances promises the checker).
  struct AllShardsReadLock {
    explicit AllShardsReadLock(const std::vector<std::unique_ptr<Shard>>& s)
        UHSCM_NO_THREAD_SAFETY_ANALYSIS : shards(s) {
      for (const auto& shard : shards) shard->mu.lock_shared();
    }
    ~AllShardsReadLock() UHSCM_NO_THREAD_SAFETY_ANALYSIS {
      for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
        (*it)->mu.unlock_shared();
      }
    }
    const std::vector<std::unique_ptr<Shard>>& shards;
  } locks(shards_);

  const int total = total_size_.load(std::memory_order_relaxed);
  const int words_per_code = (bits_ + 63) / 64;
  std::vector<uint64_t> words(static_cast<size_t>(total) * words_per_code);
  std::vector<uint64_t> tombstone_words(
      static_cast<size_t>((total + 63) / 64), 0);
  for (int gid = 0; gid < total; ++gid) {
    const Locator loc = locator_[static_cast<size_t>(gid)];
    if (loc.shard == Locator::kGone) {
      // Compacted away: the packed words are gone, but the id slot must
      // survive serialization so every live id reloads unchanged. A
      // zeroed row marked dead is never scanned and never surfaces.
      tombstone_words[static_cast<size_t>(gid >> 6)] |= 1ULL << (gid & 63);
      continue;
    }
    const Shard& shard = *shards_[static_cast<size_t>(loc.shard)];
    const uint64_t* src = shard.impl->codes().code(loc.local);
    std::copy(src, src + words_per_code,
              words.begin() + static_cast<size_t>(gid) * words_per_code);
    if (shard.impl->tombstones().Test(loc.local)) {
      tombstone_words[static_cast<size_t>(gid >> 6)] |= 1ULL << (gid & 63);
    }
  }
  CorpusExport out;
  out.codes = index::PackedCodes::FromRawWords(total, bits_, std::move(words));
  out.tombstone_words = std::move(tombstone_words);
  out.live = live_size_.load(std::memory_order_relaxed);
  return out;
}

std::vector<Neighbor> ShardedIndex::MergeTopK(
    const std::vector<std::vector<Neighbor>>& per_shard, int k) {
  if (k <= 0) return {};
  // K-way merge of sorted lists: heap of (list, position) cursors keyed
  // by the cursor's current (distance, id).
  struct Cursor {
    const std::vector<Neighbor>* list;
    size_t pos;
  };
  auto worse = [](const Cursor& a, const Cursor& b) {
    return index::NeighborLess((*b.list)[b.pos], (*a.list)[a.pos]);
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(worse)> heap(
      worse);
  for (const std::vector<Neighbor>& list : per_shard) {
    if (!list.empty()) heap.push(Cursor{&list, 0});
  }
  std::vector<Neighbor> merged;
  merged.reserve(static_cast<size_t>(k));
  while (!heap.empty() && static_cast<int>(merged.size()) < k) {
    Cursor top = heap.top();
    heap.pop();
    merged.push_back((*top.list)[top.pos]);
    if (++top.pos < top.list->size()) heap.push(top);
  }
  return merged;
}

std::vector<Neighbor> ShardedIndex::TopK(const uint64_t* query, int k,
                                         ThreadPool* pool) const {
  k = std::min(k, size());
  if (k <= 0) return {};
  std::vector<std::vector<Neighbor>> per_shard(shards_.size());
  auto search_shard = [&](int s) {
    per_shard[static_cast<size_t>(s)] = ShardTopK(s, query, k);
  };
  if (pool != nullptr) {
    pool->ParallelFor(num_shards(), search_shard);
  } else {
    ParallelFor(num_shards(), search_shard);
  }
  return MergeTopK(per_shard, k);
}

}  // namespace uhscm::serve
