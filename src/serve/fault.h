#ifndef UHSCM_SERVE_FAULT_H_
#define UHSCM_SERVE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "common/annotated_sync.h"
#include "common/rng.h"

namespace uhscm::serve {

/// Compile-time kill switch for the fault-injection layer. Configure
/// with -DUHSCM_FAULTS=OFF (which defines UHSCM_FAULTS_DISABLED) to
/// compile every injection check down to a constant-false — the same
/// pattern the obs layer uses for tracing.
#ifdef UHSCM_FAULTS_DISABLED
inline constexpr bool kFaultsCompiledIn = false;
#else
inline constexpr bool kFaultsCompiledIn = true;
#endif

/// \name Named failure points threaded into the serving hot path.
///
/// A point can be armed process-wide (`Arm("replica.kill", ...)`) or
/// scoped to one tagged instance (`Arm("replica.kill#2", ...)` fires
/// only on the engine whose fault tag is 2 — how a bench makes exactly
/// one replica the straggler). Instance-scoped specs take precedence
/// over the unscoped name.
///@{
/// Kills the engine the batch was submitted to (checked at the top of
/// QueryEngine::SubmitBatch, so "fire after K hits" means "die on batch
/// K+1"). The submission then resolves Unavailable like any post-kill
/// batch — the deterministic replica-death the respawn path recovers
/// from.
inline constexpr char kFaultReplicaKill[] = "replica.kill";
/// Sleeps the engine's dispatch thread for the spec's delay before the
/// batch searches — a slow replica (straggler), not a dead one. The
/// injected latency is visible to hedging and to least-loaded routing.
inline constexpr char kFaultSlowBatch[] = "replica.slow_batch";
/// Fails a replica respawn's snapshot hydration. The supervisor counts
/// the failure, leaves the replica dead, and retries on its next tick.
inline constexpr char kFaultHydrate[] = "replica.hydrate";
/// Rejects a request at the admission queue with Unavailable —
/// injected load-shedding at the pipeline's front door.
inline constexpr char kFaultQueueAdmit[] = "queue.admit";
///@}

/// When an armed point fires. Defaults fire on every evaluation;
/// the fields carve out deterministic or probabilistic subsets.
struct FaultSpec {
  /// Skip this many evaluations before becoming eligible to fire —
  /// "kill at batch K" is skip_hits = K-1 (hits are counted from the
  /// moment the point is armed).
  int64_t skip_hits = 0;
  /// Stop firing after this many fires; -1 = unlimited. A one-shot
  /// fault (kill exactly once) is max_fires = 1.
  int64_t max_fires = -1;
  /// Probability an eligible evaluation fires, drawn from the
  /// injector's seeded generator — deterministic for a fixed seed and
  /// evaluation order.
  double probability = 1.0;
  /// Injected latency for delay points (kFaultSlowBatch); ignored by
  /// fail/kill points.
  int64_t delay_ns = 0;
};

/// \brief Seeded, process-wide registry of armed failure points.
///
/// The serving hot path asks `ShouldFail(point, tag)` / `DelayNs(point,
/// tag)` at each threaded-in failure site. With nothing armed the cost
/// is one relaxed atomic load; with the layer compiled out
/// (-DUHSCM_FAULTS=OFF) the calls are constant-false and the optimizer
/// removes them. Arming is runtime-only — production binaries carry the
/// (idle) checks unless compiled out.
///
/// Determinism: all probabilistic draws come from one generator seeded
/// by Seed(), and per-point hit counters advance only while the point
/// is armed — so a fixed seed plus a deterministic evaluation order
/// reproduces the exact same fault schedule. Tests that need exactness
/// use probability 1 with skip_hits/max_fires instead.
class FaultInjector {
 public:
  /// The process-wide injector every failure point consults.
  static FaultInjector& Global();

  /// Reseeds the probability generator (does not disarm anything).
  void Seed(uint64_t seed);

  /// Arms (or re-arms, resetting its counters) a failure point. The
  /// name is either a bare point (`replica.kill`) or instance-scoped
  /// (`replica.kill#1`).
  void Arm(const std::string& point, const FaultSpec& spec);

  /// Disarms one point (no-op when not armed).
  void Disarm(const std::string& point);

  /// Disarms every point and reseeds with the default seed.
  void Reset();

  /// True when the armed (possibly instance-scoped) spec for `point`
  /// fires on this evaluation. `tag` >= 0 also consults `point#tag`,
  /// which wins over the bare name.
  bool ShouldFail(const char* point, int tag = -1) {
    if constexpr (!kFaultsCompiledIn) return false;
    if (armed_points_.load(std::memory_order_relaxed) == 0) return false;
    return Evaluate(point, tag) != nullptr;
  }

  /// The armed delay for this evaluation (0 = not firing / not a delay
  /// point). Same arming, counting, and precedence rules as ShouldFail.
  int64_t DelayNs(const char* point, int tag = -1) {
    if constexpr (!kFaultsCompiledIn) return 0;
    if (armed_points_.load(std::memory_order_relaxed) == 0) return 0;
    const FaultSpec* spec = Evaluate(point, tag);
    return spec != nullptr ? spec->delay_ns : 0;
  }

  /// Evaluations of an armed point since it was armed (0 if unarmed).
  int64_t hits(const std::string& point) const;
  /// Times an armed point actually fired since it was armed.
  int64_t fires(const std::string& point) const;

 private:
  struct ArmedPoint {
    FaultSpec spec;
    int64_t hits = 0;
    int64_t fires = 0;
  };

  /// Finds the armed entry for (point, tag), counts the hit, and
  /// returns the spec when it fires (nullptr otherwise). The returned
  /// pointer stays valid until the point is disarmed — callers read
  /// delay_ns immediately.
  const FaultSpec* Evaluate(const char* point, int tag);

  /// A leaf lock: nothing is acquired beneath it.
  mutable Mutex mu_{"serve.fault", 14};
  std::map<std::string, ArmedPoint> points_ UHSCM_GUARDED_BY(mu_);
  Rng rng_ UHSCM_GUARDED_BY(mu_);
  /// Armed-point count mirrored outside mu_ so the hot path's
  /// nothing-armed check is one relaxed load. Relaxed: a stale zero at
  /// worst skips an evaluation that raced the Arm — arming is not a
  /// synchronization point for the serving threads.
  std::atomic<int64_t> armed_points_{0};
};

}  // namespace uhscm::serve

#endif  // UHSCM_SERVE_FAULT_H_
