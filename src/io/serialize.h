#ifndef UHSCM_IO_SERIALIZE_H_
#define UHSCM_IO_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "core/trainer.h"
#include "index/packed_codes.h"
#include "linalg/matrix.h"
#include "nn/sequential.h"

namespace uhscm::io {

/// \brief Binary (de)serialization for the artifacts a deployment needs
/// to persist: matrices, trained hashing networks, and packed code
/// databases.
///
/// Format: little-endian, magic + version header per artifact; payload
/// checksummed with FNV-1a so silently truncated files are rejected.
/// Files are self-describing enough to fail loudly — never silently —
/// on mismatch.

/// Writes a matrix ("UHSM" block).
Status SaveMatrix(const linalg::Matrix& m, const std::string& path);

/// Reads a matrix written by SaveMatrix.
Result<linalg::Matrix> LoadMatrix(const std::string& path);

/// Writes all parameters of a model in Parameters() order ("UHSN"
/// block). The loader must be called on an identically-shaped model.
Status SaveModelParameters(nn::Layer* model, const std::string& path);

/// Restores parameters saved by SaveModelParameters into `model`.
/// Fails with InvalidArgument when shapes mismatch.
Status LoadModelParameters(nn::Layer* model, const std::string& path);

/// Writes a trained UHSCM hashing network together with its
/// architecture so it can be reconstructed without the original config
/// ("UHSH" block).
Status SaveHashingNetwork(const core::HashingNetwork& network,
                          const std::string& path);

/// Reconstructs a hashing network saved by SaveHashingNetwork.
Result<std::unique_ptr<core::HashingNetwork>> LoadHashingNetwork(
    const std::string& path);

/// Writes a packed code database ("UHSC" block, version 1 — no epoch, no
/// tombstones; the training-side artifact).
Status SavePackedCodes(const index::PackedCodes& codes,
                       const std::string& path);

/// Reads a packed code database. Accepts both the legacy v1 artifact and
/// a v2 serving snapshot; for v2, tombstoned rows are compacted away so
/// the caller receives exactly the surviving codes.
Result<index::PackedCodes> LoadPackedCodes(const std::string& path);

/// \brief A versioned serving snapshot: the whole corpus (live +
/// tombstoned rows, in global-id order), the deletion bitmap, and the
/// corpus epoch the snapshot was taken at.
///
/// Persisted as "UHSC" version 2. Version 1 files (SavePackedCodes
/// output) load as a snapshot with epoch 0 and no tombstones, so every
/// pre-versioning artifact stays servable.
struct CodesSnapshot {
  index::PackedCodes codes;
  uint64_t epoch = 0;
  /// Deletion bitmap, ceil(codes.size()/64) words (empty = all rows
  /// live; v1 artifacts always load this way).
  std::vector<uint64_t> tombstone_words;
  /// On-disk format version the loader found (1 = legacy codes block,
  /// 2 = serving snapshot). Ignored on save — SaveCodesSnapshot always
  /// writes v2.
  uint32_t version = 2;

  bool HasTombstones() const;
  /// Number of live (non-tombstoned) rows.
  int LiveCount() const;
  /// True when row `gid` is tombstoned (an empty bitmap means all rows
  /// live — the v1 shape). The one place the raw bitmap is decoded.
  bool IsDead(int gid) const {
    return !tombstone_words.empty() &&
           ((tombstone_words[static_cast<size_t>(gid >> 6)] >> (gid & 63)) &
            1ULL) != 0;
  }
};

/// Writes a v2 serving snapshot ("UHSC" version 2 block).
Status SaveCodesSnapshot(const CodesSnapshot& snapshot,
                         const std::string& path);

/// Reads a serving snapshot written by SaveCodesSnapshot, or a legacy v1
/// SavePackedCodes artifact (epoch 0, no tombstones). Corrupt or
/// truncated files fail with a Status — never a crash.
Result<CodesSnapshot> LoadCodesSnapshot(const std::string& path);

}  // namespace uhscm::io

#endif  // UHSCM_IO_SERIALIZE_H_
