#ifndef UHSCM_IO_SERIALIZE_H_
#define UHSCM_IO_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "core/trainer.h"
#include "index/packed_codes.h"
#include "linalg/matrix.h"
#include "nn/sequential.h"

namespace uhscm::io {

/// \brief Binary (de)serialization for the artifacts a deployment needs
/// to persist: matrices, trained hashing networks, and packed code
/// databases.
///
/// Format: little-endian, magic + version header per artifact; payload
/// checksummed with FNV-1a so silently truncated files are rejected.
/// Files are self-describing enough to fail loudly — never silently —
/// on mismatch.

/// Writes a matrix ("UHSM" block).
Status SaveMatrix(const linalg::Matrix& m, const std::string& path);

/// Reads a matrix written by SaveMatrix.
Result<linalg::Matrix> LoadMatrix(const std::string& path);

/// Writes all parameters of a model in Parameters() order ("UHSN"
/// block). The loader must be called on an identically-shaped model.
Status SaveModelParameters(nn::Layer* model, const std::string& path);

/// Restores parameters saved by SaveModelParameters into `model`.
/// Fails with InvalidArgument when shapes mismatch.
Status LoadModelParameters(nn::Layer* model, const std::string& path);

/// Writes a trained UHSCM hashing network together with its
/// architecture so it can be reconstructed without the original config
/// ("UHSH" block).
Status SaveHashingNetwork(const core::HashingNetwork& network,
                          const std::string& path);

/// Reconstructs a hashing network saved by SaveHashingNetwork.
Result<std::unique_ptr<core::HashingNetwork>> LoadHashingNetwork(
    const std::string& path);

/// Writes a packed code database ("UHSC" block).
Status SavePackedCodes(const index::PackedCodes& codes,
                       const std::string& path);

/// Reads a packed code database.
Result<index::PackedCodes> LoadPackedCodes(const std::string& path);

}  // namespace uhscm::io

#endif  // UHSCM_IO_SERIALIZE_H_
