#include "io/serialize.h"

#include <cstdint>
#include <cstring>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/string_util.h"

namespace uhscm::io {

namespace {

constexpr uint32_t kVersion = 1;
/// "UHSC" version 2: packed codes + corpus epoch + tombstone bitmap (the
/// mutable-index serving snapshot). Version 1 stays the plain
/// codes-only artifact and remains readable.
constexpr uint32_t kCodesSnapshotVersion = 2;

/// FNV-1a over a byte range.
uint64_t Checksum(const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

/// RAII FILE wrapper.
struct File {
  explicit File(std::FILE* f) : fp(f) {}
  ~File() {
    if (fp != nullptr) std::fclose(fp);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  std::FILE* fp;
};

Status WriteBytes(std::FILE* fp, const void* data, size_t bytes) {
  // Empty payloads (0-row matrices, empty code sets) carry a null data
  // pointer; calling fwrite with it is UB even for 0 bytes.
  if (bytes == 0) return Status::OK();
  if (std::fwrite(data, 1, bytes, fp) != bytes) {
    return Status::Internal("short write");
  }
  return Status::OK();
}

Status ReadBytes(std::FILE* fp, void* data, size_t bytes) {
  if (bytes == 0) return Status::OK();
  if (std::fread(data, 1, bytes, fp) != bytes) {
    return Status::Internal("short read (file truncated?)");
  }
  return Status::OK();
}

template <typename T>
Status WritePod(std::FILE* fp, const T& value) {
  return WriteBytes(fp, &value, sizeof(T));
}

template <typename T>
Status ReadPod(std::FILE* fp, T* value) {
  return ReadBytes(fp, value, sizeof(T));
}

/// Header: 4-char magic + version.
Status WriteHeader(std::FILE* fp, const char magic[4],
                   uint32_t version = kVersion) {
  UHSCM_RETURN_NOT_OK(WriteBytes(fp, magic, 4));
  return WritePod(fp, version);
}

/// Reads magic + version; validates the magic only — multi-version
/// artifacts (UHSC) branch on *version themselves.
Status ReadHeader(std::FILE* fp, const char magic[4], const std::string& path,
                  uint32_t* version) {
  char got[4];
  UHSCM_RETURN_NOT_OK(ReadBytes(fp, got, 4));
  if (std::memcmp(got, magic, 4) != 0) {
    return Status::InvalidArgument(
        StrFormat("%s: wrong artifact type (magic mismatch)", path.c_str()));
  }
  return ReadPod(fp, version);
}

Status CheckHeader(std::FILE* fp, const char magic[4],
                   const std::string& path) {
  uint32_t version = 0;
  UHSCM_RETURN_NOT_OK(ReadHeader(fp, magic, path, &version));
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: unsupported version %u", path.c_str(), version));
  }
  return Status::OK();
}

Status WriteMatrixBody(std::FILE* fp, const linalg::Matrix& m) {
  const int32_t rows = m.rows();
  const int32_t cols = m.cols();
  UHSCM_RETURN_NOT_OK(WritePod(fp, rows));
  UHSCM_RETURN_NOT_OK(WritePod(fp, cols));
  const size_t bytes = m.size() * sizeof(float);
  UHSCM_RETURN_NOT_OK(WriteBytes(fp, m.data(), bytes));
  return WritePod(fp, Checksum(m.data(), bytes));
}

Result<linalg::Matrix> ReadMatrixBody(std::FILE* fp,
                                      const std::string& path) {
  int32_t rows = 0;
  int32_t cols = 0;
  UHSCM_RETURN_NOT_OK(ReadPod(fp, &rows));
  UHSCM_RETURN_NOT_OK(ReadPod(fp, &cols));
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument(path + ": negative matrix dimensions");
  }
  std::vector<float> data(static_cast<size_t>(rows) * cols);
  const size_t bytes = data.size() * sizeof(float);
  UHSCM_RETURN_NOT_OK(ReadBytes(fp, data.data(), bytes));
  uint64_t checksum = 0;
  UHSCM_RETURN_NOT_OK(ReadPod(fp, &checksum));
  if (checksum != Checksum(data.data(), bytes)) {
    return Status::InvalidArgument(path + ": checksum mismatch (corrupt)");
  }
  return linalg::Matrix::FromRowMajor(rows, cols, std::move(data));
}

}  // namespace

Status SaveMatrix(const linalg::Matrix& m, const std::string& path) {
  File file(std::fopen(path.c_str(), "wb"));
  if (file.fp == nullptr) return Status::NotFound("cannot open " + path);
  UHSCM_RETURN_NOT_OK(WriteHeader(file.fp, "UHSM"));
  return WriteMatrixBody(file.fp, m);
}

Result<linalg::Matrix> LoadMatrix(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.fp == nullptr) return Status::NotFound("cannot open " + path);
  UHSCM_RETURN_NOT_OK(CheckHeader(file.fp, "UHSM", path));
  return ReadMatrixBody(file.fp, path);
}

Status SaveModelParameters(nn::Layer* model, const std::string& path) {
  File file(std::fopen(path.c_str(), "wb"));
  if (file.fp == nullptr) return Status::NotFound("cannot open " + path);
  UHSCM_RETURN_NOT_OK(WriteHeader(file.fp, "UHSN"));
  std::vector<nn::Parameter> params = model->Parameters();
  const int32_t count = static_cast<int32_t>(params.size());
  UHSCM_RETURN_NOT_OK(WritePod(file.fp, count));
  for (const nn::Parameter& p : params) {
    UHSCM_RETURN_NOT_OK(WriteMatrixBody(file.fp, *p.value));
  }
  return Status::OK();
}

Status LoadModelParameters(nn::Layer* model, const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.fp == nullptr) return Status::NotFound("cannot open " + path);
  UHSCM_RETURN_NOT_OK(CheckHeader(file.fp, "UHSN", path));
  std::vector<nn::Parameter> params = model->Parameters();
  int32_t count = 0;
  UHSCM_RETURN_NOT_OK(ReadPod(file.fp, &count));
  if (count != static_cast<int32_t>(params.size())) {
    return Status::InvalidArgument(
        StrFormat("%s: parameter count mismatch (file %d, model %zu)",
                  path.c_str(), count, params.size()));
  }
  for (nn::Parameter& p : params) {
    Result<linalg::Matrix> m = ReadMatrixBody(file.fp, path);
    if (!m.ok()) return m.status();
    if (m->rows() != p.value->rows() || m->cols() != p.value->cols()) {
      return Status::InvalidArgument(
          StrFormat("%s: parameter shape mismatch (file %dx%d, model %dx%d)",
                    path.c_str(), m->rows(), m->cols(), p.value->rows(),
                    p.value->cols()));
    }
    *p.value = std::move(m.ValueOrDie());
  }
  return Status::OK();
}

Status SaveHashingNetwork(const core::HashingNetwork& network,
                          const std::string& path) {
  File file(std::fopen(path.c_str(), "wb"));
  if (file.fp == nullptr) return Status::NotFound("cannot open " + path);
  UHSCM_RETURN_NOT_OK(WriteHeader(file.fp, "UHSH"));
  const int32_t input_dim = network.input_dim();
  const int32_t hidden1 = network.options().hidden1;
  const int32_t hidden2 = network.options().hidden2;
  const int32_t bits = network.bits();
  UHSCM_RETURN_NOT_OK(WritePod(file.fp, input_dim));
  UHSCM_RETURN_NOT_OK(WritePod(file.fp, hidden1));
  UHSCM_RETURN_NOT_OK(WritePod(file.fp, hidden2));
  UHSCM_RETURN_NOT_OK(WritePod(file.fp, bits));
  // Parameters, in Parameters() order.
  nn::Sequential* model = const_cast<core::HashingNetwork&>(network).model();
  for (const nn::Parameter& p : model->Parameters()) {
    UHSCM_RETURN_NOT_OK(WriteMatrixBody(file.fp, *p.value));
  }
  return Status::OK();
}

Result<std::unique_ptr<core::HashingNetwork>> LoadHashingNetwork(
    const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.fp == nullptr) return Status::NotFound("cannot open " + path);
  UHSCM_RETURN_NOT_OK(CheckHeader(file.fp, "UHSH", path));
  int32_t input_dim = 0, hidden1 = 0, hidden2 = 0, bits = 0;
  UHSCM_RETURN_NOT_OK(ReadPod(file.fp, &input_dim));
  UHSCM_RETURN_NOT_OK(ReadPod(file.fp, &hidden1));
  UHSCM_RETURN_NOT_OK(ReadPod(file.fp, &hidden2));
  UHSCM_RETURN_NOT_OK(ReadPod(file.fp, &bits));
  if (input_dim <= 0 || hidden1 <= 0 || hidden2 <= 0 || bits <= 0) {
    return Status::InvalidArgument(path + ": corrupt architecture header");
  }
  core::HashingNetworkOptions options;
  options.hidden1 = hidden1;
  options.hidden2 = hidden2;
  options.bits = bits;
  Rng rng(0);  // weights are overwritten below
  auto network =
      std::make_unique<core::HashingNetwork>(input_dim, options, &rng);
  for (nn::Parameter& p : network->model()->Parameters()) {
    Result<linalg::Matrix> m = ReadMatrixBody(file.fp, path);
    if (!m.ok()) return m.status();
    if (m->rows() != p.value->rows() || m->cols() != p.value->cols()) {
      return Status::InvalidArgument(path + ": parameter shape mismatch");
    }
    *p.value = std::move(m.ValueOrDie());
  }
  return network;
}

namespace {

/// Shared v1/v2 codes section: size, bits, words, checksum.
Status WriteCodesBody(std::FILE* fp, const index::PackedCodes& codes) {
  const int32_t size = codes.size();
  const int32_t bits = codes.bits();
  UHSCM_RETURN_NOT_OK(WritePod(fp, size));
  UHSCM_RETURN_NOT_OK(WritePod(fp, bits));
  const size_t bytes = codes.words().size() * sizeof(uint64_t);
  UHSCM_RETURN_NOT_OK(WriteBytes(fp, codes.words().data(), bytes));
  return WritePod(fp, Checksum(codes.words().data(), bytes));
}

Result<index::PackedCodes> ReadCodesBody(std::FILE* fp,
                                         const std::string& path) {
  int32_t size = 0, bits = 0;
  UHSCM_RETURN_NOT_OK(ReadPod(fp, &size));
  UHSCM_RETURN_NOT_OK(ReadPod(fp, &bits));
  if (size < 0 || bits <= 0) {
    return Status::InvalidArgument(path + ": corrupt code header");
  }
  const size_t words_per_code = static_cast<size_t>((bits + 63) / 64);
  // Guard the allocation against corrupt headers: the payload cannot be
  // larger than what is actually left in the file, so a garbage size
  // field fails with a Status instead of a multi-GB bad_alloc.
  {
    const long here = std::ftell(fp);
    if (here >= 0 && std::fseek(fp, 0, SEEK_END) == 0) {
      const long file_end = std::ftell(fp);
      if (std::fseek(fp, here, SEEK_SET) != 0) {
        return Status::Internal(path + ": seek failed");
      }
      const uint64_t needed =
          static_cast<uint64_t>(size) * words_per_code * sizeof(uint64_t);
      if (file_end >= 0 &&
          needed > static_cast<uint64_t>(file_end - here)) {
        return Status::InvalidArgument(
            path + ": corrupt code header (payload exceeds file size)");
      }
    }
  }
  std::vector<uint64_t> words(static_cast<size_t>(size) * words_per_code);
  const size_t bytes = words.size() * sizeof(uint64_t);
  UHSCM_RETURN_NOT_OK(ReadBytes(fp, words.data(), bytes));
  uint64_t checksum = 0;
  UHSCM_RETURN_NOT_OK(ReadPod(fp, &checksum));
  if (checksum != Checksum(words.data(), bytes)) {
    return Status::InvalidArgument(path + ": checksum mismatch (corrupt)");
  }
  return index::PackedCodes::FromRawWords(size, bits, std::move(words));
}

}  // namespace

bool CodesSnapshot::HasTombstones() const {
  for (uint64_t w : tombstone_words) {
    if (w != 0) return true;
  }
  return false;
}

int CodesSnapshot::LiveCount() const {
  int dead = 0;
  for (uint64_t w : tombstone_words) dead += __builtin_popcountll(w);
  return codes.size() - dead;
}

Status SavePackedCodes(const index::PackedCodes& codes,
                       const std::string& path) {
  File file(std::fopen(path.c_str(), "wb"));
  if (file.fp == nullptr) return Status::NotFound("cannot open " + path);
  UHSCM_RETURN_NOT_OK(WriteHeader(file.fp, "UHSC"));
  return WriteCodesBody(file.fp, codes);
}

Result<index::PackedCodes> LoadPackedCodes(const std::string& path) {
  Result<CodesSnapshot> snapshot = LoadCodesSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  if (!snapshot->HasTombstones()) return std::move(snapshot->codes);
  // A v2 snapshot with deletions: compact so the caller sees exactly the
  // surviving database.
  const index::PackedCodes& all = snapshot->codes;
  const int words_per_code = all.words_per_code();
  std::vector<uint64_t> words;
  words.reserve(static_cast<size_t>(snapshot->LiveCount()) * words_per_code);
  int live = 0;
  for (int i = 0; i < all.size(); ++i) {
    if (snapshot->IsDead(i)) continue;
    const uint64_t* src = all.code(i);
    words.insert(words.end(), src, src + words_per_code);
    ++live;
  }
  return index::PackedCodes::FromRawWords(live, all.bits(), std::move(words));
}

Status SaveCodesSnapshot(const CodesSnapshot& snapshot,
                         const std::string& path) {
  const size_t expected_words =
      static_cast<size_t>((snapshot.codes.size() + 63) / 64);
  if (!snapshot.tombstone_words.empty() &&
      snapshot.tombstone_words.size() != expected_words) {
    return Status::InvalidArgument(
        StrFormat("%s: tombstone bitmap has %zu words, corpus needs %zu",
                  path.c_str(), snapshot.tombstone_words.size(),
                  expected_words));
  }
  File file(std::fopen(path.c_str(), "wb"));
  if (file.fp == nullptr) return Status::NotFound("cannot open " + path);
  UHSCM_RETURN_NOT_OK(WriteHeader(file.fp, "UHSC", kCodesSnapshotVersion));
  UHSCM_RETURN_NOT_OK(WritePod(file.fp, snapshot.epoch));
  UHSCM_RETURN_NOT_OK(WriteCodesBody(file.fp, snapshot.codes));
  // Tombstone section: word count, bitmap, checksum. An empty bitmap is
  // persisted as the full-width all-live bitmap so the loader never has
  // to special-case it.
  const int32_t tomb_words = static_cast<int32_t>(expected_words);
  UHSCM_RETURN_NOT_OK(WritePod(file.fp, tomb_words));
  std::vector<uint64_t> bitmap = snapshot.tombstone_words;
  bitmap.resize(expected_words, 0);
  const size_t bytes = bitmap.size() * sizeof(uint64_t);
  UHSCM_RETURN_NOT_OK(WriteBytes(file.fp, bitmap.data(), bytes));
  return WritePod(file.fp, Checksum(bitmap.data(), bytes));
}

Result<CodesSnapshot> LoadCodesSnapshot(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file.fp == nullptr) return Status::NotFound("cannot open " + path);
  uint32_t version = 0;
  UHSCM_RETURN_NOT_OK(ReadHeader(file.fp, "UHSC", path, &version));
  if (version != kVersion && version != kCodesSnapshotVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: unsupported version %u", path.c_str(), version));
  }
  CodesSnapshot snapshot;
  snapshot.version = version;
  if (version == kCodesSnapshotVersion) {
    UHSCM_RETURN_NOT_OK(ReadPod(file.fp, &snapshot.epoch));
  }
  Result<index::PackedCodes> codes = ReadCodesBody(file.fp, path);
  if (!codes.ok()) return codes.status();
  snapshot.codes = std::move(codes).ValueOrDie();
  if (version == kCodesSnapshotVersion) {
    int32_t tomb_words = 0;
    UHSCM_RETURN_NOT_OK(ReadPod(file.fp, &tomb_words));
    const int32_t expected =
        static_cast<int32_t>((snapshot.codes.size() + 63) / 64);
    if (tomb_words != expected) {
      return Status::InvalidArgument(
          StrFormat("%s: tombstone bitmap has %d words, corpus needs %d",
                    path.c_str(), tomb_words, expected));
    }
    snapshot.tombstone_words.resize(static_cast<size_t>(tomb_words));
    const size_t bytes = snapshot.tombstone_words.size() * sizeof(uint64_t);
    UHSCM_RETURN_NOT_OK(
        ReadBytes(file.fp, snapshot.tombstone_words.data(), bytes));
    uint64_t checksum = 0;
    UHSCM_RETURN_NOT_OK(ReadPod(file.fp, &checksum));
    if (checksum != Checksum(snapshot.tombstone_words.data(), bytes)) {
      return Status::InvalidArgument(
          path + ": tombstone checksum mismatch (corrupt)");
    }
  }
  return snapshot;
}

}  // namespace uhscm::io
