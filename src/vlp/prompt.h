#ifndef UHSCM_VLP_PROMPT_H_
#define UHSCM_VLP_PROMPT_H_

#include <string>

namespace uhscm::vlp {

/// The three prompt templates studied in the paper (§4.4.3).
enum class PromptTemplate {
  /// "a photo of the {}." — the paper's default and best template.
  kAPhotoOfThe = 0,
  /// "the {}." — UHSCM_P1.
  kThe = 1,
  /// "it contains the {}." — UHSCM_P2.
  kItContainsThe = 2,
};

/// Renders the prompt text for a concept name.
std::string RenderPrompt(PromptTemplate tmpl, const std::string& concept_name);

/// Short identifier for tables ("photo", "the", "contains").
const char* PromptTemplateName(PromptTemplate tmpl);

}  // namespace uhscm::vlp

#endif  // UHSCM_VLP_PROMPT_H_
