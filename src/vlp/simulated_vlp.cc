#include "vlp/simulated_vlp.h"

#include <cmath>

#include "common/status.h"
#include "common/thread_pool.h"
#include "linalg/ops.h"

namespace uhscm::vlp {

namespace {

/// Content hash of a pixel row -> deterministic per-image noise stream.
uint64_t HashPixels(const float* row, int n, uint64_t seed) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (int i = 0; i < n; ++i) {
    uint32_t bits;
    static_assert(sizeof(bits) == sizeof(float));
    __builtin_memcpy(&bits, &row[i], sizeof(bits));
    h ^= bits;
    h *= 1099511628211ULL;
  }
  return h;
}

void NormalizeInPlace(float* v, int n) {
  const float norm = linalg::Norm2(v, n);
  if (norm > 1e-12f) {
    const float inv = 1.0f / norm;
    for (int i = 0; i < n; ++i) v[i] *= inv;
  }
}

}  // namespace

SimulatedVlpModel::SimulatedVlpModel(const data::SemanticWorld* world,
                                     const VlpOptions& options)
    : world_(world),
      options_(options),
      num_concepts_(world->num_concepts()),
      concept_embeddings_(world->num_concepts(), options.embed_dim) {
  UHSCM_CHECK(world != nullptr, "SimulatedVlpModel: null world");
  UHSCM_CHECK(num_concepts_ > 0,
              "SimulatedVlpModel: world has no registered concepts");
  style_embeddings_ = linalg::Matrix(world->num_styles(), options.embed_dim);
  for (int st = 0; st < world->num_styles(); ++st) {
    Rng rng(options_.seed * 0x2545F4914F6CDD1DULL +
            0xABCD0000ULL + static_cast<uint64_t>(st));
    float* row = style_embeddings_.Row(st);
    for (int j = 0; j < options_.embed_dim; ++j) {
      row[j] = static_cast<float>(rng.Normal());
    }
    NormalizeInPlace(row, options_.embed_dim);
  }
  for (int id = 0; id < num_concepts_; ++id) {
    // Base embedding deterministic per (vlp seed, concept id).
    Rng rng(options_.seed * 0x9E3779B97F4A7C15ULL +
            static_cast<uint64_t>(id + 1));
    float* row = concept_embeddings_.Row(id);
    for (int j = 0; j < options_.embed_dim; ++j) {
      row[j] = static_cast<float>(rng.Normal());
    }
    NormalizeInPlace(row, options_.embed_dim);
  }
}

linalg::Vector SimulatedVlpModel::BaseTextEmbedding(int concept_id) const {
  UHSCM_CHECK(concept_id >= 0 && concept_id < num_concepts_,
              "BaseTextEmbedding: concept unknown to this VLP snapshot");
  return concept_embeddings_.RowVector(concept_id);
}

linalg::Matrix SimulatedVlpModel::EncodeImages(
    const linalg::Matrix& pixels) const {
  UHSCM_CHECK(pixels.cols() == world_->pixel_dim(),
              "EncodeImages: pixel dim mismatch");
  const int n = pixels.rows();
  const int e = options_.embed_dim;
  linalg::Matrix out(n, e);
  ParallelFor(n, [&](int i) {
    const float* x = pixels.Row(i);
    // Recognize: soft-threshold detection per concept. Every concept
    // whose prototype affinity clears the threshold contributes, so a
    // multi-label image embeds near the mean of all its labels'
    // embeddings instead of collapsing onto the strongest one.
    std::vector<float> weight(static_cast<size_t>(num_concepts_));
    int best = 0;
    float best_affinity = -2.0f;
    double total_weight = 0.0;
    for (int u = 0; u < num_concepts_; ++u) {
      const linalg::Vector& proto = world_->Prototype(u);
      const float a =
          linalg::CosineSimilarity(x, proto.data(), world_->pixel_dim());
      if (a > best_affinity) {
        best_affinity = a;
        best = u;
      }
      const double logit = (a - options_.recognition_threshold) /
                           options_.recognition_temperature;
      const double w = 1.0 / (1.0 + std::exp(-logit));
      weight[static_cast<size_t>(u)] = static_cast<float>(w);
      total_weight += w;
    }
    if (total_weight < 1e-3) {
      // Nothing detected (extremely noisy image): fall back to the
      // nearest prototype so the embedding stays informative.
      weight[static_cast<size_t>(best)] = 1.0f;
    }
    // Compose: weighted sum of concept embeddings.
    float* row = out.Row(i);
    for (int u = 0; u < num_concepts_; ++u) {
      const float w = weight[static_cast<size_t>(u)];
      if (w < 1e-4f) continue;
      const float* c = concept_embeddings_.Row(u);
      for (int j = 0; j < e; ++j) row[j] += w * c[j];
    }
    // Appearance response: the tower also encodes the detected styles.
    if (options_.style_response > 0.0f) {
      for (int st = 0; st < world_->num_styles(); ++st) {
        const linalg::Vector& sdir = world_->Style(st);
        const float a =
            linalg::CosineSimilarity(x, sdir.data(), world_->pixel_dim());
        const double logit = (a - options_.recognition_threshold) /
                             options_.recognition_temperature;
        const float w = static_cast<float>(1.0 / (1.0 + std::exp(-logit)));
        if (w < 1e-4f) continue;
        const float* srow = style_embeddings_.Row(st);
        for (int j = 0; j < e; ++j) {
          row[j] += options_.style_response * w * srow[j];
        }
      }
    }
    // Deterministic per-image encoder noise.
    Rng noise_rng(HashPixels(x, world_->pixel_dim(), options_.seed));
    for (int j = 0; j < e; ++j) {
      row[j] += options_.image_noise / std::sqrt(static_cast<float>(e)) *
                static_cast<float>(noise_rng.Normal());
    }
    NormalizeInPlace(row, e);
  });
  return out;
}

linalg::Matrix SimulatedVlpModel::EncodeConcepts(
    const std::vector<int>& concept_ids, PromptTemplate tmpl) const {
  const int m = static_cast<int>(concept_ids.size());
  const int e = options_.embed_dim;
  linalg::Matrix out(m, e);
  const float sigma =
      options_.template_noise[static_cast<int>(tmpl)] /
      std::sqrt(static_cast<float>(e));
  for (int j = 0; j < m; ++j) {
    const int id = concept_ids[static_cast<size_t>(j)];
    linalg::Vector base = BaseTextEmbedding(id);
    // Template misalignment: deterministic per (template, concept).
    Rng rng(options_.seed + 0xBEEF0000ULL +
            static_cast<uint64_t>(static_cast<int>(tmpl)) * 0x10001ULL +
            static_cast<uint64_t>(id) * 7919ULL);
    float* row = out.Row(j);
    for (int c = 0; c < e; ++c) {
      row[c] = base[static_cast<size_t>(c)] +
               sigma * static_cast<float>(rng.Normal());
    }
    NormalizeInPlace(row, e);
  }
  return out;
}

linalg::Matrix SimulatedVlpModel::ScoreImagesAgainstConcepts(
    const linalg::Matrix& pixels, const std::vector<int>& concept_ids,
    PromptTemplate tmpl) const {
  const linalg::Matrix img = EncodeImages(pixels);
  const linalg::Matrix txt = EncodeConcepts(concept_ids, tmpl);
  linalg::Matrix scores = linalg::MatMulTransB(img, txt);  // cosines
  for (size_t i = 0; i < scores.size(); ++i) {
    scores.data()[i] =
        options_.score_offset + options_.score_scale * scores.data()[i];
  }
  return scores;
}

}  // namespace uhscm::vlp
