#include "vlp/prompt.h"

#include "common/string_util.h"

namespace uhscm::vlp {

std::string RenderPrompt(PromptTemplate tmpl,
                         const std::string& concept_name) {
  switch (tmpl) {
    case PromptTemplate::kAPhotoOfThe:
      return StrFormat("a photo of the %s.", concept_name.c_str());
    case PromptTemplate::kThe:
      return StrFormat("the %s.", concept_name.c_str());
    case PromptTemplate::kItContainsThe:
      return StrFormat("it contains the %s.", concept_name.c_str());
  }
  return concept_name;
}

const char* PromptTemplateName(PromptTemplate tmpl) {
  switch (tmpl) {
    case PromptTemplate::kAPhotoOfThe:
      return "photo";
    case PromptTemplate::kThe:
      return "the";
    case PromptTemplate::kItContainsThe:
      return "contains";
  }
  return "?";
}

}  // namespace uhscm::vlp
