#ifndef UHSCM_VLP_SIMULATED_VLP_H_
#define UHSCM_VLP_SIMULATED_VLP_H_

#include <vector>

#include "data/world.h"
#include "linalg/matrix.h"
#include "vlp/prompt.h"

namespace uhscm::vlp {

/// Tunables of the simulated CLIP model.
struct VlpOptions {
  /// Joint image/text embedding dimensionality.
  int embed_dim = 128;
  /// The image tower detects a concept when its pixel-prototype affinity
  /// clears a soft threshold: weight = sigmoid((affinity - threshold) /
  /// temperature). A sigmoid (rather than a softmax over concepts) lets
  /// *every* sufficiently present concept contribute to the embedding,
  /// which is what makes multi-label images score high against all of
  /// their labels — the property UHSCM's NUS-WIDE/MIRFlickr experiments
  /// rely on.
  float recognition_threshold = 0.35f;
  float recognition_temperature = 0.05f;
  /// Isotropic noise added to every image embedding (deterministic per
  /// image content), modelling the finite zero-shot accuracy of CLIP.
  float image_noise = 0.55f;
  /// How strongly the image tower encodes non-semantic appearance (the
  /// world's style directions) alongside the recognized concepts. Real
  /// CLIP image features carry background/color/pose signal, which is why
  /// raw image-feature cosine (the UHSCM_IF ablation) is *weaker* guiding
  /// information than prompted concept scores: the text tower has no
  /// style subspace, so scoring against prompts projects the style away
  /// while image-image cosine keeps it.
  float style_response = 0.75f;
  /// Per-template text-tower misalignment noise. Index by PromptTemplate.
  /// The default template is the best-aligned, matching §4.4.3.
  float template_noise[3] = {0.20f, 0.55f, 0.80f};
  /// Calibration of the emitted score: score = offset + scale * cosine.
  /// Real CLIP similarity scores occupy a narrow band (cosines of
  /// matched/unmatched pairs differ by ~0.05-0.15, not by 1.0); the
  /// narrow band is what makes the paper's tau = 3m softmax spread mass
  /// over the several concepts a multi-label image contains instead of
  /// going one-hot. offset 0.5 / scale 0.1 reproduces that band.
  float score_offset = 0.5f;
  float score_scale = 0.1f;
  /// Stream id so independent VLP instances can be drawn from one world.
  uint64_t seed = 0xC11Fu;
};

/// \brief A stand-in for the pretrained CLIP model (see DESIGN.md §1).
///
/// Dual-encoder over the SemanticWorld: the text tower embeds a concept
/// (through a prompt template that perturbs alignment), the image tower
/// recognizes concepts from raw pixels by prototype affinity and composes
/// their embeddings. The model never sees dataset labels — it scores
/// images purely from pixel content plus its "pretraining" (the world's
/// prototypes), so spurious detections on confusable concepts arise
/// naturally, which is the failure mode UHSCM's denoising step exists to
/// handle.
///
/// `F_VLP(x_i, t_j; Theta)` of Eq. (1) is `ScoreImagesAgainstConcepts`.
class SimulatedVlpModel {
 public:
  /// Snapshots the world's currently registered concepts. Register all
  /// dataset classes and vocabularies before constructing the model.
  SimulatedVlpModel(const data::SemanticWorld* world,
                    const VlpOptions& options = {});

  int embed_dim() const { return options_.embed_dim; }
  int num_known_concepts() const { return num_concepts_; }
  const VlpOptions& options() const { return options_; }

  /// Image tower: n x embed_dim unit-norm embeddings from raw pixels.
  /// These are also the "image features extracted by the CLIP model" of
  /// the UHSCM_IF ablation (§4.4.2).
  linalg::Matrix EncodeImages(const linalg::Matrix& pixels) const;

  /// Text tower: m x embed_dim unit-norm embeddings of prompted concepts.
  linalg::Matrix EncodeConcepts(const std::vector<int>& concept_ids,
                                PromptTemplate tmpl) const;

  /// Eq. (1): n x m image-text similarity scores in [0, 1] (cosine mapped
  /// affinely by score_offset + score_scale * c; see VlpOptions).
  linalg::Matrix ScoreImagesAgainstConcepts(
      const linalg::Matrix& pixels, const std::vector<int>& concept_ids,
      PromptTemplate tmpl) const;

 private:
  linalg::Vector BaseTextEmbedding(int concept_id) const;

  const data::SemanticWorld* world_;
  VlpOptions options_;
  int num_concepts_;
  /// num_concepts x embed_dim base (template-free) concept embeddings.
  linalg::Matrix concept_embeddings_;
  /// num_styles x embed_dim appearance directions of the image tower.
  linalg::Matrix style_embeddings_;
};

}  // namespace uhscm::vlp

#endif  // UHSCM_VLP_SIMULATED_VLP_H_
