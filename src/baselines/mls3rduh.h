#ifndef UHSCM_BASELINES_MLS3RDUH_H_
#define UHSCM_BASELINES_MLS3RDUH_H_

#include <memory>
#include <string>

#include "baselines/deep_common.h"
#include "baselines/hashing_method.h"

namespace uhscm::baselines {

/// MLS3RDUH tunables.
struct Mls3rduhOptions {
  /// kNN graph degree.
  int knn = 10;
  /// Manifold-ranking restart probability weight (alpha in the diffusion
  /// F <- alpha * W F + (1-alpha) I).
  float diffusion_alpha = 0.99f;
  /// Manifold ranking with alpha = 0.99 converges slowly; running the
  /// propagation near convergence is what makes MLS3RDUH the most
  /// expensive method in the paper's Table 3.
  int diffusion_iterations = 60;
  /// Pairs ranked inside each other's top-knn after diffusion become +1;
  /// pairs with low cosine AND low manifold similarity become -1; the
  /// rest keep interpolated targets.
  float quantization_beta = 0.001f;
  DeepTrainOptions train;
};

/// \brief MLS3RDUH (Tu et al., IJCAI'20): Deep Unsupervised Hashing via
/// Manifold based Local Semantic Similarity Structure Reconstructing.
///
/// Builds a kNN graph over CNN features, diffuses similarity along the
/// manifold with iterated random-walk propagation (the expensive step
/// Table 3 reflects), then reconstructs a local similarity structure:
/// manifold-neighbors become confident positives, feature-far +
/// manifold-far pairs confident negatives, and everything else keeps the
/// cosine value. A deep network is trained to match the reconstructed
/// structure with an L2 loss.
class Mls3rduh : public HashingMethod {
 public:
  explicit Mls3rduh(const Mls3rduhOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "MLS3RDUH"; }
  Status Fit(const TrainContext& context) override;
  linalg::Matrix Encode(const linalg::Matrix& pixels) const override;

 private:
  Mls3rduhOptions options_;
  std::unique_ptr<core::HashingNetwork> network_;
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_MLS3RDUH_H_
