#ifndef UHSCM_BASELINES_SSDH_H_
#define UHSCM_BASELINES_SSDH_H_

#include <memory>
#include <string>

#include "baselines/deep_common.h"
#include "baselines/hashing_method.h"

namespace uhscm::baselines {

/// SSDH tunables.
struct SsdhOptions {
  /// Similar pairs: cosine >= mean + alpha_high * std.
  float alpha_high = 2.0f;
  /// Dissimilar pairs: cosine <= mean + alpha_low * std.
  float alpha_low = 0.0f;
  float quantization_beta = 0.001f;
  DeepTrainOptions train;
};

/// \brief Semantic Structure-based unsupervised Deep Hashing (Yang et
/// al., IJCAI'18).
///
/// Fits a Gaussian to the distribution of pairwise feature cosines, marks
/// confident similar/dissimilar pairs by the two thresholds, masks out
/// the undecided middle band, and trains the network to match {+1,-1}
/// targets on the confident pairs only.
class Ssdh : public HashingMethod {
 public:
  explicit Ssdh(const SsdhOptions& options = {}) : options_(options) {}

  std::string name() const override { return "SSDH"; }
  Status Fit(const TrainContext& context) override;
  linalg::Matrix Encode(const linalg::Matrix& pixels) const override;

 private:
  SsdhOptions options_;
  std::unique_ptr<core::HashingNetwork> network_;
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_SSDH_H_
