#ifndef UHSCM_BASELINES_SPECTRAL_HASHING_H_
#define UHSCM_BASELINES_SPECTRAL_HASHING_H_

#include <string>
#include <vector>

#include "baselines/hashing_method.h"
#include "linalg/pca.h"

namespace uhscm::baselines {

/// \brief Spectral Hashing (Weiss et al., NIPS'09).
///
/// PCA-rotates the CNN features, then selects the k smallest non-trivial
/// analytic eigenfunctions of the 1-D Laplacian along the principal
/// directions (mode m on a direction with data range r has eigenvalue
/// proportional to (m/r)^2); each chosen (direction, mode) pair yields a
/// bit sign(sin(pi/2 + m*pi*x/r)).
class SpectralHashing : public HashingMethod {
 public:
  std::string name() const override { return "SH"; }
  Status Fit(const TrainContext& context) override;
  linalg::Matrix Encode(const linalg::Matrix& pixels) const override;

 private:
  const features::SimulatedCnnFeatureExtractor* extractor_ = nullptr;
  linalg::PcaModel pca_;
  /// Per bit: the PCA direction and the sinusoid mode.
  struct BitFunction {
    int direction;
    int mode;
  };
  std::vector<BitFunction> bit_functions_;
  std::vector<float> mins_;    // per PCA direction
  std::vector<float> ranges_;  // per PCA direction
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_SPECTRAL_HASHING_H_
