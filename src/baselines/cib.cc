#include "baselines/cib.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/losses.h"
#include "nn/sgd.h"

namespace uhscm::baselines {

Status Cib::Fit(const TrainContext& context) {
  const int n = context.train_pixels.rows();
  if (n < 2) return Status::InvalidArgument("CIB: need >= 2 images");

  Rng rng(context.seed);
  DeepTrainOptions train = options_.train;
  train.network.bits = context.bits;
  network_ = std::make_unique<core::HashingNetwork>(
      context.train_pixels.cols(), train.network, &rng);

  nn::SgdOptions sgd;
  sgd.learning_rate = train.learning_rate;
  sgd.momentum = train.momentum;
  sgd.weight_decay = train.weight_decay;
  nn::SgdOptimizer optimizer(network_->model(), sgd);

  const int batch = std::min(train.batch_size, n);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  double best_loss = std::numeric_limits<double>::max();
  int stall_epochs = 0;
  constexpr int kPatience = 4;
  for (int epoch = 0; epoch < train.max_epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    int steps = 0;
    for (int start = 0; start + 2 <= n; start += batch) {
      const int end = std::min(start + batch, n);
      std::vector<int> batch_idx(order.begin() + start, order.begin() + end);
      const int t = static_cast<int>(batch_idx.size());
      if (t < 2) continue;

      const linalg::Matrix x = context.train_pixels.SelectRows(batch_idx);
      const linalg::Matrix v1 =
          core::AugmentPixels(x, options_.augment, &rng);
      const linalg::Matrix v2 =
          core::AugmentPixels(x, options_.augment, &rng);
      linalg::Matrix stacked(2 * t, x.cols());
      for (int i = 0; i < t; ++i) {
        std::copy(v1.Row(i), v1.Row(i) + x.cols(), stacked.Row(i));
        std::copy(v2.Row(i), v2.Row(i) + x.cols(), stacked.Row(t + i));
      }

      optimizer.ZeroGrad();
      linalg::Matrix z = network_->Forward(stacked);
      core::LossAndGrad lg =
          core::OriginalContrastiveLoss(z, t, options_.gamma);

      // Quantization over both views.
      const double inv = 1.0 / static_cast<double>(2 * t);
      double lq = 0.0;
      for (int i = 0; i < 2 * t; ++i) {
        const float* zi = z.Row(i);
        float* dzi = lg.dz.Row(i);
        for (int c = 0; c < z.cols(); ++c) {
          const float b = zi[c] < 0.0f ? -1.0f : 1.0f;
          const float diff = zi[c] - b;
          lq += static_cast<double>(diff) * diff;
          dzi[c] += static_cast<float>(2.0 * options_.quantization_beta *
                                       inv * diff);
        }
      }
      lg.loss += options_.quantization_beta * lq * inv;

      network_->Backward(lg.dz);
      optimizer.Step();
      epoch_loss += lg.loss;
      ++steps;
    }
    epoch_loss /= std::max(steps, 1);
    if (best_loss - epoch_loss >
        train.convergence_tol * std::fabs(best_loss)) {
      best_loss = epoch_loss;
      stall_epochs = 0;
    } else if (++stall_epochs >= kPatience) {
      break;
    }
  }
  return Status::OK();
}

linalg::Matrix Cib::Encode(const linalg::Matrix& pixels) const {
  UHSCM_CHECK(network_ != nullptr, "CIB: Fit must be called first");
  return network_->EncodeBinary(pixels);
}

}  // namespace uhscm::baselines
