#include "baselines/spectral_hashing.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/ops.h"

namespace uhscm::baselines {

Status SpectralHashing::Fit(const TrainContext& context) {
  if (context.extractor == nullptr) {
    return Status::InvalidArgument("SH requires a feature extractor");
  }
  const int bits = context.bits;
  const int pca_dims =
      std::min(bits, context.train_features.cols());
  Result<linalg::PcaModel> pca = linalg::FitPca(context.train_features, pca_dims);
  if (!pca.ok()) return pca.status();
  pca_ = std::move(pca.ValueOrDie());
  extractor_ = context.extractor;

  const linalg::Matrix projected = pca_.Transform(context.train_features);
  mins_.assign(static_cast<size_t>(pca_dims), 0.0f);
  ranges_.assign(static_cast<size_t>(pca_dims), 1.0f);
  for (int d = 0; d < pca_dims; ++d) {
    float mn = projected(0, d);
    float mx = projected(0, d);
    for (int i = 1; i < projected.rows(); ++i) {
      mn = std::min(mn, projected(i, d));
      mx = std::max(mx, projected(i, d));
    }
    mins_[static_cast<size_t>(d)] = mn;
    ranges_[static_cast<size_t>(d)] = std::max(mx - mn, 1e-6f);
  }

  // Candidate eigenfunctions: modes 1..bits on each direction, eigenvalue
  // ~ (m / r_d)^2; take the k smallest.
  struct Candidate {
    double eigenvalue;
    int direction;
    int mode;
  };
  std::vector<Candidate> candidates;
  for (int d = 0; d < pca_dims; ++d) {
    for (int m = 1; m <= bits; ++m) {
      const double ratio =
          static_cast<double>(m) / ranges_[static_cast<size_t>(d)];
      candidates.push_back({ratio * ratio, d, m});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.eigenvalue < b.eigenvalue;
            });
  bit_functions_.clear();
  for (int b = 0; b < bits; ++b) {
    bit_functions_.push_back(
        {candidates[static_cast<size_t>(b)].direction,
         candidates[static_cast<size_t>(b)].mode});
  }
  return Status::OK();
}

linalg::Matrix SpectralHashing::Encode(const linalg::Matrix& pixels) const {
  UHSCM_CHECK(extractor_ != nullptr, "SH: Fit must be called first");
  const linalg::Matrix features = extractor_->Extract(pixels);
  const linalg::Matrix projected = pca_.Transform(features);
  const float pi = 3.14159265358979f;
  linalg::Matrix codes(pixels.rows(), static_cast<int>(bit_functions_.size()));
  for (int i = 0; i < codes.rows(); ++i) {
    for (size_t b = 0; b < bit_functions_.size(); ++b) {
      const BitFunction& f = bit_functions_[b];
      const float x =
          (projected(i, f.direction) - mins_[static_cast<size_t>(f.direction)]) /
          ranges_[static_cast<size_t>(f.direction)];
      const float y = std::sin(pi / 2.0f +
                               static_cast<float>(f.mode) * pi * x);
      codes(i, static_cast<int>(b)) = y < 0.0f ? -1.0f : 1.0f;
    }
  }
  return codes;
}

}  // namespace uhscm::baselines
