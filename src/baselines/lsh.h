#ifndef UHSCM_BASELINES_LSH_H_
#define UHSCM_BASELINES_LSH_H_

#include <string>

#include "baselines/hashing_method.h"

namespace uhscm::baselines {

/// \brief Locality-Sensitive Hashing (Gionis et al., VLDB'99): sign of
/// random Gaussian projections of the CNN features. Data-independent —
/// Fit only samples the projection.
class Lsh : public HashingMethod {
 public:
  std::string name() const override { return "LSH"; }
  Status Fit(const TrainContext& context) override;
  linalg::Matrix Encode(const linalg::Matrix& pixels) const override;

 private:
  const features::SimulatedCnnFeatureExtractor* extractor_ = nullptr;
  linalg::Matrix projection_;  // feature_dim x bits
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_LSH_H_
