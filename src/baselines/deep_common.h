#ifndef UHSCM_BASELINES_DEEP_COMMON_H_
#define UHSCM_BASELINES_DEEP_COMMON_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/hashing_network.h"
#include "core/losses.h"
#include "linalg/matrix.h"
#include "nn/sgd.h"

namespace uhscm::baselines {

/// Optimization knobs shared by the deep baselines (the paper trains all
/// deep methods with the same backbone and optimizer family for fairness,
/// §4.1).
struct DeepTrainOptions {
  int batch_size = 128;
  int max_epochs = 25;
  /// See UhscmConfig::learning_rate: retuned for from-scratch backbones.
  float learning_rate = 0.02f;
  float momentum = 0.9f;
  float weight_decay = 1e-5f;
  double convergence_tol = 1e-4;
  /// Run the full epoch schedule regardless of loss plateaus (GANs).
  bool disable_early_stop = false;
  core::HashingNetworkOptions network;
};

/// Computes a mini-batch loss and its gradient with respect to the batch
/// code matrix. `batch_indices` are row positions into the training set,
/// so similarity-guided methods can slice their precomputed matrices.
using BatchLossFn = std::function<core::LossAndGrad(
    const linalg::Matrix& z, const std::vector<int>& batch_indices)>;

/// \brief Generic mini-batch SGD loop over a HashingNetwork: the training
/// engine behind SSDH, GH, BGAN, MLS3RDUH and UTH (CIB has a bespoke
/// two-view loop). Returns per-epoch mean losses.
std::vector<double> TrainDeepModel(core::HashingNetwork* network,
                                   const linalg::Matrix& train_pixels,
                                   const BatchLossFn& loss_fn,
                                   const DeepTrainOptions& options, Rng* rng);

/// Slices the t x t sub-matrix of `full` at the given row/col indices.
linalg::Matrix SliceSquare(const linalg::Matrix& full,
                           const std::vector<int>& indices);

/// Row-wise k-nearest-neighbor lists (by cosine similarity, self
/// excluded) over the rows of `features` — shared by MLS3RDUH and UTH.
std::vector<std::vector<int>> NearestNeighborsByCosine(
    const linalg::Matrix& features, int k);

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_DEEP_COMMON_H_
