#include "baselines/registry.h"

#include "baselines/agh.h"
#include "baselines/bgan.h"
#include "baselines/cib.h"
#include "baselines/greedy_hash.h"
#include "baselines/itq.h"
#include "baselines/lsh.h"
#include "baselines/mls3rduh.h"
#include "baselines/spectral_hashing.h"
#include "baselines/ssdh.h"
#include "baselines/uth.h"

namespace uhscm::baselines {

std::vector<std::string> Table1BaselineNames() {
  return {"LSH", "SH", "ITQ", "AGH", "SSDH", "GH", "BGAN", "MLS3RDUH", "CIB"};
}

Result<std::unique_ptr<HashingMethod>> MakeBaseline(const std::string& name) {
  std::unique_ptr<HashingMethod> method;
  if (name == "LSH") {
    method = std::make_unique<Lsh>();
  } else if (name == "SH") {
    method = std::make_unique<SpectralHashing>();
  } else if (name == "ITQ") {
    method = std::make_unique<Itq>();
  } else if (name == "AGH") {
    method = std::make_unique<Agh>();
  } else if (name == "SSDH") {
    method = std::make_unique<Ssdh>();
  } else if (name == "GH") {
    method = std::make_unique<GreedyHash>();
  } else if (name == "BGAN") {
    method = std::make_unique<Bgan>();
  } else if (name == "MLS3RDUH") {
    method = std::make_unique<Mls3rduh>();
  } else if (name == "CIB") {
    method = std::make_unique<Cib>();
  } else if (name == "UTH") {
    method = std::make_unique<Uth>();
  } else {
    return Status::NotFound("unknown baseline: " + name);
  }
  return method;
}

UhscmMethod::UhscmMethod(const vlp::SimulatedVlpModel* vlp,
                         data::ConceptVocab vocab, core::UhscmConfig config)
    : vlp_(vlp), vocab_(std::move(vocab)), config_(std::move(config)) {}

Status UhscmMethod::Fit(const TrainContext& context) {
  core::UhscmConfig config = config_;
  config.bits = context.bits;
  config.seed = context.seed;
  core::UhscmTrainer trainer(vlp_, config);
  Result<core::UhscmModel> model =
      trainer.Train(context.train_pixels, vocab_);
  if (!model.ok()) return model.status();
  model_ = std::move(model.ValueOrDie());
  return Status::OK();
}

linalg::Matrix UhscmMethod::Encode(const linalg::Matrix& pixels) const {
  return model_.Encode(pixels);
}

}  // namespace uhscm::baselines
