#include "baselines/itq.h"

#include <cmath>

#include "linalg/eigen.h"
#include "linalg/ops.h"

namespace uhscm::baselines {

namespace {

/// Thin SVD of a square matrix M = U S V^T via the symmetric eigensystem
/// of M^T M (V, S^2) and U = M V S^{-1}. Adequate for the small k x k
/// Procrustes problems ITQ solves.
Status SquareSvd(const linalg::Matrix& m, linalg::Matrix* u,
                 std::vector<double>* s, linalg::Matrix* v) {
  Result<linalg::EigenDecomposition> eig =
      linalg::SymmetricEigen(linalg::MatMulTransA(m, m));
  if (!eig.ok()) return eig.status();
  *v = std::move(eig.ValueOrDie().eigenvectors);
  s->resize(eig.ValueOrDie().eigenvalues.size());
  const int k = m.rows();
  for (size_t i = 0; i < s->size(); ++i) {
    (*s)[i] = std::sqrt(std::max(0.0, eig.ValueOrDie().eigenvalues[i]));
  }
  linalg::Matrix mv = linalg::MatMul(m, *v);
  *u = linalg::Matrix(k, k);
  for (int j = 0; j < k; ++j) {
    const double sv = (*s)[static_cast<size_t>(j)];
    if (sv > 1e-10) {
      for (int i = 0; i < k; ++i) {
        (*u)(i, j) = static_cast<float>(mv(i, j) / sv);
      }
    } else {
      // Degenerate direction: any unit vector orthogonal-ish works for
      // Procrustes; use the canonical basis vector.
      (*u)(j, j) = 1.0f;
    }
  }
  return Status::OK();
}

}  // namespace

Status Itq::Fit(const TrainContext& context) {
  if (context.extractor == nullptr) {
    return Status::InvalidArgument("ITQ requires a feature extractor");
  }
  if (context.bits > context.train_features.cols()) {
    return Status::InvalidArgument(
        "ITQ: bits must not exceed the feature dimension");
  }
  extractor_ = context.extractor;
  Result<linalg::PcaModel> pca =
      linalg::FitPca(context.train_features, context.bits);
  if (!pca.ok()) return pca.status();
  pca_ = std::move(pca.ValueOrDie());

  const linalg::Matrix v = pca_.Transform(context.train_features);
  Rng rng(context.seed);
  // Random orthogonal init: QR-free — SVD of a random Gaussian matrix.
  linalg::Matrix g =
      linalg::Matrix::RandomNormal(context.bits, context.bits, &rng);
  linalg::Matrix gu, gv;
  std::vector<double> gs;
  UHSCM_RETURN_NOT_OK(SquareSvd(g, &gu, &gs, &gv));
  rotation_ = linalg::MatMulTransB(gu, gv);

  for (int iter = 0; iter < iterations_; ++iter) {
    const linalg::Matrix b = linalg::Sign(linalg::MatMul(v, rotation_));
    // Procrustes: R = W U^T where B^T V = U S W^T.
    linalg::Matrix m = linalg::MatMulTransA(b, v);  // k x k
    linalg::Matrix u, w;
    std::vector<double> s;
    UHSCM_RETURN_NOT_OK(SquareSvd(m, &u, &s, &w));
    rotation_ = linalg::MatMulTransB(w, u);
  }
  return Status::OK();
}

linalg::Matrix Itq::Encode(const linalg::Matrix& pixels) const {
  UHSCM_CHECK(extractor_ != nullptr, "ITQ: Fit must be called first");
  const linalg::Matrix features = extractor_->Extract(pixels);
  return linalg::Sign(linalg::MatMul(pca_.Transform(features), rotation_));
}

}  // namespace uhscm::baselines
