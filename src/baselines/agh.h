#ifndef UHSCM_BASELINES_AGH_H_
#define UHSCM_BASELINES_AGH_H_

#include <string>

#include "baselines/hashing_method.h"

namespace uhscm::baselines {

/// AGH tunables.
struct AghOptions {
  /// Number of anchors (k-means centroids); 0 picks min(300, n/4).
  int num_anchors = 0;
  /// Nearest anchors each point connects to.
  int s = 3;
};

/// \brief Anchor Graph Hashing (Liu et al., ICML'11), one-layer variant.
///
/// Builds a sparse anchor graph Z (kernel weights to the s nearest
/// k-means anchors, rows normalized), forms the small a x a matrix
/// M = Lambda^{-1/2} Z^T Z Lambda^{-1/2}, and thresholds the spectral
/// embedding Y = Z Lambda^{-1/2} V Sigma^{-1/2} at zero. Out-of-sample
/// codes reuse the anchor kernel map.
class Agh : public HashingMethod {
 public:
  explicit Agh(const AghOptions& options = {}) : options_(options) {}

  std::string name() const override { return "AGH"; }
  Status Fit(const TrainContext& context) override;
  linalg::Matrix Encode(const linalg::Matrix& pixels) const override;

 private:
  /// Anchor kernel map: n x a row-normalized weights to s nearest anchors.
  linalg::Matrix BuildZ(const linalg::Matrix& features) const;

  AghOptions options_;
  const features::SimulatedCnnFeatureExtractor* extractor_ = nullptr;
  linalg::Matrix anchors_;     // a x feature_dim
  float bandwidth_ = 1.0f;     // kernel sigma^2 (median heuristic)
  linalg::Matrix projection_;  // a x bits: Lambda^{-1/2} V Sigma^{-1/2}
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_AGH_H_
