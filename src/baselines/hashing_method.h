#ifndef UHSCM_BASELINES_HASHING_METHOD_H_
#define UHSCM_BASELINES_HASHING_METHOD_H_

#include <string>

#include "common/status.h"
#include "features/cnn_features.h"
#include "linalg/matrix.h"

namespace uhscm::baselines {

/// Everything a baseline may consume during fitting. Per the paper's
/// protocol (§4.1), deep methods take raw images as input while the
/// shallow methods take features extracted by a pretrained CNN; both are
/// provided here and each method reads what it needs.
struct TrainContext {
  /// Raw training images, n x pixel_dim.
  linalg::Matrix train_pixels;
  /// Pretrained-CNN features of the same images, n x feature_dim.
  linalg::Matrix train_features;
  /// The (frozen) extractor, retained by feature-based methods so they
  /// can featurize queries at encode time. Outlives the method.
  const features::SimulatedCnnFeatureExtractor* extractor = nullptr;
  /// Hash code length k.
  int bits = 64;
  uint64_t seed = 42;
};

/// \brief Common interface over all ten unsupervised hashing baselines
/// plus UHSCM itself (see registry.h), so the bench harness can sweep
/// methods uniformly.
class HashingMethod {
 public:
  virtual ~HashingMethod() = default;

  /// Method name as printed in the paper's tables.
  virtual std::string name() const = 0;

  /// Learns the hash function on the training context.
  virtual Status Fit(const TrainContext& context) = 0;

  /// Maps raw images to {-1,+1}^{n x k}. Precondition: Fit succeeded.
  virtual linalg::Matrix Encode(const linalg::Matrix& pixels) const = 0;
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_HASHING_METHOD_H_
