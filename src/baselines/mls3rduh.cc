#include "baselines/mls3rduh.h"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.h"
#include "linalg/ops.h"

namespace uhscm::baselines {

Status Mls3rduh::Fit(const TrainContext& context) {
  if (context.extractor == nullptr) {
    return Status::InvalidArgument("MLS3RDUH requires a feature extractor");
  }
  const int n = context.train_features.rows();
  if (n < 3) return Status::InvalidArgument("MLS3RDUH: need >= 3 images");

  const linalg::Matrix cos = linalg::SelfCosine(context.train_features);
  const int knn = std::min(options_.knn, n - 1);
  const std::vector<std::vector<int>> neighbors =
      NearestNeighborsByCosine(context.train_features, knn);

  // Row-normalized kNN transition matrix W (symmetrized support).
  linalg::Matrix w(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j : neighbors[static_cast<size_t>(i)]) {
      const float sim = std::max(cos(i, j), 0.0f);
      w(i, j) = sim;
      w(j, i) = std::max(w(j, i), sim);
    }
  }
  for (int i = 0; i < n; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < n; ++j) sum += w(i, j);
    if (sum > 1e-12f) {
      const float inv = 1.0f / sum;
      for (int j = 0; j < n; ++j) w(i, j) *= inv;
    }
  }

  // Manifold ranking by iterated diffusion: F <- a W F + (1-a) I.
  // (The fixed point is the personalized-PageRank similarity; the
  // iteration is the O(n^3)-ish step that dominates this method's cost.)
  linalg::Matrix f = linalg::Matrix::Identity(n);
  const float a = options_.diffusion_alpha;
  for (int iter = 0; iter < options_.diffusion_iterations; ++iter) {
    linalg::Matrix wf = linalg::MatMul(w, f);
    wf.Scale(a);
    for (int i = 0; i < n; ++i) wf(i, i) += (1.0f - a);
    f = std::move(wf);
  }

  // Per-row manifold top-knn sets.
  std::vector<std::vector<int>> manifold_nn(static_cast<size_t>(n));
  ParallelFor(n, [&](int i) {
    std::vector<int> order;
    order.reserve(static_cast<size_t>(n - 1));
    for (int j = 0; j < n; ++j) {
      if (j != i) order.push_back(j);
    }
    std::partial_sort(order.begin(), order.begin() + knn, order.end(),
                      [&](int x, int y) { return f(i, x) > f(i, y); });
    order.resize(static_cast<size_t>(knn));
    std::sort(order.begin(), order.end());
    manifold_nn[static_cast<size_t>(i)] = std::move(order);
  });

  // Reconstructed local similarity structure.
  linalg::Matrix target = cos;
  for (int i = 0; i < n; ++i) {
    const auto& mi = manifold_nn[static_cast<size_t>(i)];
    for (int j = 0; j < n; ++j) {
      if (i == j) {
        target(i, j) = 1.0f;
        continue;
      }
      const bool manifold_close =
          std::binary_search(mi.begin(), mi.end(), j);
      if (manifold_close) {
        target(i, j) = 1.0f;
      } else if (cos(i, j) < 0.0f) {
        target(i, j) = -1.0f;
      }
      // else: keep the cosine as a soft target.
    }
  }
  linalg::Matrix ones(n, n, 1.0f);

  Rng rng(context.seed);
  DeepTrainOptions train = options_.train;
  train.network.bits = context.bits;
  network_ = std::make_unique<core::HashingNetwork>(
      context.train_pixels.cols(), train.network, &rng);

  TrainDeepModel(
      network_.get(), context.train_pixels,
      [&](const linalg::Matrix& z, const std::vector<int>& batch) {
        return core::MaskedL2SimilarityLoss(z, SliceSquare(target, batch),
                                            SliceSquare(ones, batch),
                                            options_.quantization_beta);
      },
      train, &rng);
  return Status::OK();
}

linalg::Matrix Mls3rduh::Encode(const linalg::Matrix& pixels) const {
  UHSCM_CHECK(network_ != nullptr, "MLS3RDUH: Fit must be called first");
  return network_->EncodeBinary(pixels);
}

}  // namespace uhscm::baselines
