#include "baselines/agh.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/eigen.h"
#include "linalg/kmeans.h"
#include "linalg/ops.h"

namespace uhscm::baselines {

linalg::Matrix Agh::BuildZ(const linalg::Matrix& features) const {
  const int n = features.rows();
  const int a = anchors_.rows();
  const int s = std::min(options_.s, a);
  linalg::Matrix z(n, a);
  for (int i = 0; i < n; ++i) {
    // Distances to all anchors; keep the s nearest.
    std::vector<float> d2(static_cast<size_t>(a));
    for (int c = 0; c < a; ++c) {
      d2[static_cast<size_t>(c)] = linalg::SquaredDistance(
          features.Row(i), anchors_.Row(c), features.cols());
    }
    std::vector<int> order(static_cast<size_t>(a));
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + s, order.end(),
                      [&](int x, int y) {
                        return d2[static_cast<size_t>(x)] < d2[static_cast<size_t>(y)];
                      });
    float sum = 0.0f;
    for (int r = 0; r < s; ++r) {
      const int c = order[static_cast<size_t>(r)];
      const float w =
          std::exp(-d2[static_cast<size_t>(c)] / bandwidth_);
      z(i, c) = w;
      sum += w;
    }
    if (sum > 1e-12f) {
      for (int r = 0; r < s; ++r) {
        const int c = order[static_cast<size_t>(r)];
        z(i, c) /= sum;
      }
    }
  }
  return z;
}

Status Agh::Fit(const TrainContext& context) {
  if (context.extractor == nullptr) {
    return Status::InvalidArgument("AGH requires a feature extractor");
  }
  extractor_ = context.extractor;
  const linalg::Matrix& features = context.train_features;
  const int n = features.rows();
  int a = options_.num_anchors;
  if (a <= 0) a = std::min(300, std::max(context.bits + 1, n / 4));
  if (a > n) a = n;
  if (context.bits >= a) {
    return Status::InvalidArgument("AGH: bits must be < number of anchors");
  }

  Rng rng(context.seed);
  Result<linalg::KMeansResult> km = linalg::KMeans(features, a, &rng);
  if (!km.ok()) return km.status();
  anchors_ = std::move(km.ValueOrDie().centroids);

  // Median-distance bandwidth heuristic over a sample of point-anchor
  // pairs.
  std::vector<float> sample_d2;
  const int probe = std::min(n, 200);
  for (int i = 0; i < probe; ++i) {
    const int r = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    const int c = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(a)));
    sample_d2.push_back(linalg::SquaredDistance(features.Row(r),
                                                anchors_.Row(c),
                                                features.cols()));
  }
  std::nth_element(sample_d2.begin(),
                   sample_d2.begin() + sample_d2.size() / 2,
                   sample_d2.end());
  bandwidth_ = std::max(sample_d2[sample_d2.size() / 2], 1e-6f);

  const linalg::Matrix z = BuildZ(features);

  // Lambda = diag(column sums of Z).
  std::vector<double> lambda(static_cast<size_t>(a), 0.0);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < a; ++c) lambda[static_cast<size_t>(c)] += z(i, c);
  }
  std::vector<float> inv_sqrt_lambda(static_cast<size_t>(a), 0.0f);
  for (int c = 0; c < a; ++c) {
    inv_sqrt_lambda[static_cast<size_t>(c)] =
        lambda[static_cast<size_t>(c)] > 1e-10
            ? static_cast<float>(1.0 / std::sqrt(lambda[static_cast<size_t>(c)]))
            : 0.0f;
  }

  // M = Lambda^{-1/2} Z^T Z Lambda^{-1/2}.
  linalg::Matrix m = linalg::MatMulTransA(z, z);
  for (int r = 0; r < a; ++r) {
    for (int c = 0; c < a; ++c) {
      m(r, c) *= inv_sqrt_lambda[static_cast<size_t>(r)] *
                 inv_sqrt_lambda[static_cast<size_t>(c)];
    }
  }

  // Top bits+1 eigenpairs; drop the trivial (eigenvalue ~1) leading pair.
  Result<linalg::EigenDecomposition> eig =
      linalg::TopKEigen(m, context.bits + 1);
  if (!eig.ok()) return eig.status();
  const linalg::EigenDecomposition& d = eig.ValueOrDie();

  projection_ = linalg::Matrix(a, context.bits);
  for (int b = 0; b < context.bits; ++b) {
    const int col = b + 1;  // skip trivial eigenvector
    const double sigma = std::max(d.eigenvalues[static_cast<size_t>(col)], 1e-10);
    const double scale = std::sqrt(static_cast<double>(n)) / std::sqrt(sigma);
    for (int r = 0; r < a; ++r) {
      projection_(r, b) = static_cast<float>(
          inv_sqrt_lambda[static_cast<size_t>(r)] * d.eigenvectors(r, col) * scale);
    }
  }
  return Status::OK();
}

linalg::Matrix Agh::Encode(const linalg::Matrix& pixels) const {
  UHSCM_CHECK(extractor_ != nullptr, "AGH: Fit must be called first");
  const linalg::Matrix features = extractor_->Extract(pixels);
  const linalg::Matrix z = BuildZ(features);
  return linalg::Sign(linalg::MatMul(z, projection_));
}

}  // namespace uhscm::baselines
