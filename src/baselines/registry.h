#ifndef UHSCM_BASELINES_REGISTRY_H_
#define UHSCM_BASELINES_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/hashing_method.h"
#include "core/trainer.h"
#include "data/concept_vocab.h"
#include "vlp/simulated_vlp.h"

namespace uhscm::baselines {

/// Names of the nine comparison methods of Table 1, in the paper's row
/// order: LSH, SH, ITQ, AGH, SSDH, GH, BGAN, MLS3RDUH, CIB. (UTH is
/// referenced in §4.1 and available here as well.)
std::vector<std::string> Table1BaselineNames();

/// Constructs a baseline by name (see Table1BaselineNames, plus "UTH").
/// Returns NotFound for unknown names.
Result<std::unique_ptr<HashingMethod>> MakeBaseline(const std::string& name);

/// \brief Adapter exposing UHSCM itself behind the HashingMethod
/// interface so the bench harness sweeps it together with the baselines.
///
/// The VLP model and concept vocabulary are bound at construction — they
/// are UHSCM-specific inputs no baseline consumes (Table 1's fairness
/// argument: everyone gets the same raw images; UHSCM's extra leverage is
/// exactly the VLP prior, which is the paper's contribution).
class UhscmMethod : public HashingMethod {
 public:
  UhscmMethod(const vlp::SimulatedVlpModel* vlp, data::ConceptVocab vocab,
              core::UhscmConfig config);

  std::string name() const override { return "UHSCM"; }
  Status Fit(const TrainContext& context) override;
  linalg::Matrix Encode(const linalg::Matrix& pixels) const override;

  /// The trained model's diagnostics (similarity matrix, retained
  /// concepts). Precondition: Fit succeeded.
  const core::UhscmModel& model() const { return model_; }

 private:
  const vlp::SimulatedVlpModel* vlp_;
  data::ConceptVocab vocab_;
  core::UhscmConfig config_;
  core::UhscmModel model_;
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_REGISTRY_H_
