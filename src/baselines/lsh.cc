#include "baselines/lsh.h"

#include "linalg/ops.h"

namespace uhscm::baselines {

Status Lsh::Fit(const TrainContext& context) {
  if (context.extractor == nullptr) {
    return Status::InvalidArgument("LSH requires a feature extractor");
  }
  if (context.bits <= 0) {
    return Status::InvalidArgument("LSH: bits must be positive");
  }
  extractor_ = context.extractor;
  Rng rng(context.seed);
  projection_ = linalg::Matrix::RandomNormal(extractor_->feature_dim(),
                                             context.bits, &rng);
  return Status::OK();
}

linalg::Matrix Lsh::Encode(const linalg::Matrix& pixels) const {
  UHSCM_CHECK(extractor_ != nullptr, "LSH: Fit must be called first");
  const linalg::Matrix features = extractor_->Extract(pixels);
  return linalg::Sign(linalg::MatMul(features, projection_));
}

}  // namespace uhscm::baselines
