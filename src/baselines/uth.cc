#include "baselines/uth.h"

#include <algorithm>
#include <unordered_map>

#include "core/losses.h"

namespace uhscm::baselines {

Status Uth::Fit(const TrainContext& context) {
  if (context.extractor == nullptr) {
    return Status::InvalidArgument("UTH requires a feature extractor");
  }
  const int n = context.train_features.rows();
  if (n < 3) return Status::InvalidArgument("UTH: need >= 3 images");

  const int k = std::min(options_.positive_neighbors, n - 2);
  const std::vector<std::vector<int>> neighbors =
      NearestNeighborsByCosine(context.train_features, k);

  Rng rng(context.seed);
  DeepTrainOptions train = options_.train;
  train.network.bits = context.bits;
  network_ = std::make_unique<core::HashingNetwork>(
      context.train_pixels.cols(), train.network, &rng);

  TrainDeepModel(
      network_.get(), context.train_pixels,
      [&](const linalg::Matrix& z, const std::vector<int>& batch) {
        const int t = static_cast<int>(batch.size());
        // Map global train index -> batch position for positive lookup.
        std::unordered_map<int, int> position;
        position.reserve(static_cast<size_t>(t));
        for (int i = 0; i < t; ++i) position.emplace(batch[static_cast<size_t>(i)], i);

        std::vector<core::Triplet> triplets;
        for (int i = 0; i < t; ++i) {
          const int anchor_global = batch[static_cast<size_t>(i)];
          // In-batch positives among the anchor's feature neighbors.
          std::vector<int> in_batch_pos;
          for (int nb : neighbors[static_cast<size_t>(anchor_global)]) {
            auto it = position.find(nb);
            if (it != position.end()) in_batch_pos.push_back(it->second);
          }
          if (in_batch_pos.empty()) continue;
          for (int r = 0; r < options_.triplets_per_anchor; ++r) {
            const int pos = in_batch_pos[static_cast<size_t>(
                rng.UniformInt(in_batch_pos.size()))];
            int neg = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(t)));
            // Reject anchors/positives as negatives (few retries suffice).
            for (int tries = 0;
                 tries < 8 && (neg == i ||
                               std::find(in_batch_pos.begin(),
                                         in_batch_pos.end(),
                                         neg) != in_batch_pos.end());
                 ++tries) {
              neg = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(t)));
            }
            if (neg == i) continue;
            triplets.push_back({i, pos, neg});
          }
        }
        return core::TripletCosineLoss(z, triplets, options_.margin,
                                       options_.quantization_beta);
      },
      train, &rng);
  return Status::OK();
}

linalg::Matrix Uth::Encode(const linalg::Matrix& pixels) const {
  UHSCM_CHECK(network_ != nullptr, "UTH: Fit must be called first");
  return network_->EncodeBinary(pixels);
}

}  // namespace uhscm::baselines
