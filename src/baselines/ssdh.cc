#include "baselines/ssdh.h"

#include <cmath>

#include "linalg/ops.h"

namespace uhscm::baselines {

Status Ssdh::Fit(const TrainContext& context) {
  if (context.extractor == nullptr) {
    return Status::InvalidArgument("SSDH requires a feature extractor");
  }
  const int n = context.train_features.rows();
  if (n < 2) return Status::InvalidArgument("SSDH: need >= 2 images");

  // Semantic structure from the cosine distribution (Gaussian estimate).
  const linalg::Matrix cos = linalg::SelfCosine(context.train_features);
  double sum = 0.0;
  double sum2 = 0.0;
  int64_t count = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      sum += cos(i, j);
      sum2 += static_cast<double>(cos(i, j)) * cos(i, j);
      ++count;
    }
  }
  const double mean = sum / static_cast<double>(count);
  const double var =
      std::max(sum2 / static_cast<double>(count) - mean * mean, 1e-12);
  const double stddev = std::sqrt(var);
  const float hi =
      static_cast<float>(mean + options_.alpha_high * stddev);
  const float lo = static_cast<float>(mean + options_.alpha_low * stddev);

  // Targets +1 / -1 with a confidence mask.
  linalg::Matrix target(n, n);
  linalg::Matrix mask(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) {
        target(i, j) = 1.0f;
        mask(i, j) = 1.0f;
      } else if (cos(i, j) >= hi) {
        target(i, j) = 1.0f;
        mask(i, j) = 1.0f;
      } else if (cos(i, j) <= lo) {
        target(i, j) = -1.0f;
        mask(i, j) = 1.0f;
      }
    }
  }

  Rng rng(context.seed);
  DeepTrainOptions train = options_.train;
  train.network.bits = context.bits;
  network_ = std::make_unique<core::HashingNetwork>(
      context.train_pixels.cols(), train.network, &rng);

  TrainDeepModel(
      network_.get(), context.train_pixels,
      [&](const linalg::Matrix& z, const std::vector<int>& batch) {
        return core::MaskedL2SimilarityLoss(z, SliceSquare(target, batch),
                                            SliceSquare(mask, batch),
                                            options_.quantization_beta);
      },
      train, &rng);
  return Status::OK();
}

linalg::Matrix Ssdh::Encode(const linalg::Matrix& pixels) const {
  UHSCM_CHECK(network_ != nullptr, "SSDH: Fit must be called first");
  return network_->EncodeBinary(pixels);
}

}  // namespace uhscm::baselines
