#ifndef UHSCM_BASELINES_UTH_H_
#define UHSCM_BASELINES_UTH_H_

#include <memory>
#include <string>

#include "baselines/deep_common.h"
#include "baselines/hashing_method.h"

namespace uhscm::baselines {

/// UTH tunables.
struct UthOptions {
  /// Positives are sampled among each anchor's top-k feature neighbors.
  int positive_neighbors = 5;
  float margin = 0.4f;
  float quantization_beta = 0.001f;
  int triplets_per_anchor = 2;
  DeepTrainOptions train;
};

/// \brief Unsupervised Triplet Hashing (Huang et al., ACM MM workshops
/// '17): mines triplets from the pretrained feature space — positive = a
/// near feature-neighbor of the anchor, negative = a random non-neighbor
/// — and trains with a cosine triplet margin loss plus quantization.
class Uth : public HashingMethod {
 public:
  explicit Uth(const UthOptions& options = {}) : options_(options) {}

  std::string name() const override { return "UTH"; }
  Status Fit(const TrainContext& context) override;
  linalg::Matrix Encode(const linalg::Matrix& pixels) const override;

 private:
  UthOptions options_;
  std::unique_ptr<core::HashingNetwork> network_;
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_UTH_H_
