#include "baselines/greedy_hash.h"

#include <algorithm>
#include <cmath>

#include "linalg/ops.h"

namespace uhscm::baselines {

Status GreedyHash::Fit(const TrainContext& context) {
  if (context.extractor == nullptr) {
    return Status::InvalidArgument("GH requires a feature extractor");
  }
  const int n = context.train_features.rows();
  if (n < 2) return Status::InvalidArgument("GH: need >= 2 images");

  // Standardized, signed similarity target: raw feature cosines are
  // almost all positive, and regressing code cosines onto an all-positive
  // target has a degenerate optimum where every code collapses onto one
  // hypercube corner. Centering/scaling the cosines (clamped to [-1, 1])
  // gives above-average pairs positive targets and below-average pairs
  // negative ones, which is the structure the original GreedyHash
  // preserves through its feature-reconstruction term.
  linalg::Matrix target = linalg::SelfCosine(context.train_features);
  {
    double sum = 0.0, sum2 = 0.0;
    int64_t count = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        sum += target(i, j);
        sum2 += static_cast<double>(target(i, j)) * target(i, j);
        ++count;
      }
    }
    const double mean = sum / std::max<int64_t>(count, 1);
    const double stddev = std::sqrt(
        std::max(sum2 / std::max<int64_t>(count, 1) - mean * mean, 1e-12));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) {
          target(i, j) = 1.0f;
          continue;
        }
        const double z = (target(i, j) - mean) / (2.0 * stddev);
        target(i, j) = static_cast<float>(std::clamp(z, -1.0, 1.0));
      }
    }
  }
  linalg::Matrix ones(n, n, 1.0f);  // all pairs count

  Rng rng(context.seed);
  DeepTrainOptions train = options_.train;
  train.network.bits = context.bits;
  network_ = std::make_unique<core::HashingNetwork>(
      context.train_pixels.cols(), train.network, &rng);

  const float penalty = options_.penalty;
  TrainDeepModel(
      network_.get(), context.train_pixels,
      [&](const linalg::Matrix& z, const std::vector<int>& batch) {
        core::LossAndGrad lg = core::MaskedL2SimilarityLoss(
            z, SliceSquare(target, batch), SliceSquare(ones, batch),
            /*beta=*/0.0f);
        // Cubic sign penalty: penalty * (1/t) sum |z - sgn(z)|^3.
        const int t = z.rows();
        const double inv_t = 1.0 / static_cast<double>(t);
        double lp = 0.0;
        for (int i = 0; i < t; ++i) {
          const float* zi = z.Row(i);
          float* dzi = lg.dz.Row(i);
          for (int c = 0; c < z.cols(); ++c) {
            const float b = zi[c] < 0.0f ? -1.0f : 1.0f;
            const float diff = zi[c] - b;
            const float ad = std::fabs(diff);
            lp += static_cast<double>(ad) * ad * ad;
            // d|x|^3/dx = 3 x |x|.
            dzi[c] += static_cast<float>(penalty * inv_t * 3.0f * diff * ad);
          }
        }
        lg.loss += penalty * lp * inv_t;
        return lg;
      },
      train, &rng);
  return Status::OK();
}

linalg::Matrix GreedyHash::Encode(const linalg::Matrix& pixels) const {
  UHSCM_CHECK(network_ != nullptr, "GH: Fit must be called first");
  return network_->EncodeBinary(pixels);
}

}  // namespace uhscm::baselines
