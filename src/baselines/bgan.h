#ifndef UHSCM_BASELINES_BGAN_H_
#define UHSCM_BASELINES_BGAN_H_

#include <memory>
#include <string>

#include "baselines/deep_common.h"
#include "baselines/hashing_method.h"
#include "nn/sequential.h"

namespace uhscm::baselines {

/// BGAN tunables.
struct BganOptions {
  /// Fraction of the most-similar pairs declared neighbors when building
  /// the similarity graph.
  float neighbor_quantile = 0.02f;
  /// Weight of the adversarial (code-distribution) term.
  float adversarial_weight = 0.1f;
  float quantization_beta = 0.001f;
  /// Discriminator updates per generator step. GAN training runs the
  /// discriminator several times per generator update and needs more
  /// epochs to stabilize — the reason BGAN is one of the slowest methods
  /// in the paper's Table 3.
  int disc_steps = 3;
  DeepTrainOptions train;
};

/// \brief Binary Generative Adversarial Networks for image retrieval
/// (Song et al., AAAI'18), simplified to its two load-bearing pieces:
/// (1) a feature-derived binary neighborhood matrix driving an L2
/// similarity loss, and (2) an adversarial regularizer — a small
/// discriminator trained to tell generated codes from ideal uniform
/// {-1,+1} codes, whose fooling loss shapes the code distribution. The
/// GAN game makes it markedly slower than the plain-SGD methods, which
/// is the property Table 3 reports.
class Bgan : public HashingMethod {
 public:
  explicit Bgan(const BganOptions& options = {}) : options_(options) {}

  std::string name() const override { return "BGAN"; }
  Status Fit(const TrainContext& context) override;
  linalg::Matrix Encode(const linalg::Matrix& pixels) const override;

 private:
  BganOptions options_;
  std::unique_ptr<core::HashingNetwork> network_;
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_BGAN_H_
