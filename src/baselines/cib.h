#ifndef UHSCM_BASELINES_CIB_H_
#define UHSCM_BASELINES_CIB_H_

#include <memory>
#include <string>

#include "baselines/deep_common.h"
#include "baselines/hashing_method.h"
#include "core/augment.h"

namespace uhscm::baselines {

/// CIB tunables.
struct CibOptions {
  float gamma = 0.2f;           ///< contrastive temperature
  float quantization_beta = 0.001f;
  core::AugmentOptions augment;
  DeepTrainOptions train;
};

/// \brief Contrastive Information Bottleneck hashing (Qiu et al.,
/// IJCAI'21): two augmented views per image, the InfoNCE loss J_c of
/// Eq. (10) (positives = the other view of the same image only), plus a
/// quantization penalty. This is the baseline whose contrastive term
/// UHSCM's modified loss generalizes.
class Cib : public HashingMethod {
 public:
  explicit Cib(const CibOptions& options = {}) : options_(options) {}

  std::string name() const override { return "CIB"; }
  Status Fit(const TrainContext& context) override;
  linalg::Matrix Encode(const linalg::Matrix& pixels) const override;

 private:
  CibOptions options_;
  std::unique_ptr<core::HashingNetwork> network_;
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_CIB_H_
