#include "baselines/bgan.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/sgd.h"

namespace uhscm::baselines {

namespace {

/// Binary cross-entropy with logits. Fills dlogits with dL/dlogit (mean
/// reduction) and returns the loss.
double BceWithLogits(const linalg::Matrix& logits, float label,
                     linalg::Matrix* dlogits) {
  const int n = logits.rows();
  double loss = 0.0;
  const double inv = 1.0 / std::max(n, 1);
  for (int i = 0; i < n; ++i) {
    const double l = logits(i, 0);
    // Numerically stable BCE-with-logits.
    loss += inv * (std::max(l, 0.0) - l * label + std::log1p(std::exp(-std::fabs(l))));
    const double sig = 1.0 / (1.0 + std::exp(-l));
    (*dlogits)(i, 0) = static_cast<float>(inv * (sig - label));
  }
  return loss;
}

}  // namespace

Status Bgan::Fit(const TrainContext& context) {
  if (context.extractor == nullptr) {
    return Status::InvalidArgument("BGAN requires a feature extractor");
  }
  const int n = context.train_features.rows();
  if (n < 2) return Status::InvalidArgument("BGAN: need >= 2 images");

  // Neighborhood structure: the top `neighbor_quantile` fraction of
  // pairwise feature cosines become +1 targets, the rest -1.
  const linalg::Matrix cos = linalg::SelfCosine(context.train_features);
  std::vector<float> off_diag;
  off_diag.reserve(static_cast<size_t>(n) * (n - 1));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) off_diag.push_back(cos(i, j));
    }
  }
  const size_t cut = static_cast<size_t>(
      (1.0f - options_.neighbor_quantile) * static_cast<float>(off_diag.size()));
  std::nth_element(off_diag.begin(),
                   off_diag.begin() + std::min(cut, off_diag.size() - 1),
                   off_diag.end());
  const float threshold = off_diag[std::min(cut, off_diag.size() - 1)];

  linalg::Matrix target(n, n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      target(i, j) = (i == j || cos(i, j) >= threshold) ? 1.0f : -1.0f;
    }
  }
  linalg::Matrix ones(n, n, 1.0f);

  Rng rng(context.seed);
  DeepTrainOptions train = options_.train;
  train.max_epochs = train.max_epochs * 2;  // GAN games converge slowly
  // Adversarial losses fluctuate by construction, so plateau-based early
  // stopping is meaningless for a GAN; run the full schedule like the
  // original implementation does.
  train.disable_early_stop = true;
  train.network.bits = context.bits;
  network_ = std::make_unique<core::HashingNetwork>(
      context.train_pixels.cols(), train.network, &rng);

  // Discriminator: codes -> real/fake logit.
  nn::Sequential disc;
  disc.Append(std::make_unique<nn::Linear>(context.bits, 64, &rng));
  disc.Append(std::make_unique<nn::Relu>());
  disc.Append(std::make_unique<nn::Linear>(64, 1, &rng));
  nn::SgdOptions disc_sgd;
  disc_sgd.learning_rate = 0.01f;
  disc_sgd.momentum = 0.9f;
  disc_sgd.weight_decay = 1e-5f;
  nn::SgdOptimizer disc_optimizer(&disc, disc_sgd);

  TrainDeepModel(
      network_.get(), context.train_pixels,
      [&](const linalg::Matrix& z, const std::vector<int>& batch) {
        const int t = z.rows();
        // --- discriminator step(s): real = uniform {-1,+1}, fake = z ---
        for (int step = 0; step < options_.disc_steps; ++step) {
          linalg::Matrix real(t, z.cols());
          for (size_t v = 0; v < real.size(); ++v) {
            real.data()[v] = rng.Bernoulli(0.5) ? 1.0f : -1.0f;
          }
          disc_optimizer.ZeroGrad();
          linalg::Matrix real_logits = disc.Forward(real);
          linalg::Matrix dreal(t, 1);
          BceWithLogits(real_logits, 1.0f, &dreal);
          disc.Backward(dreal);
          linalg::Matrix fake_logits = disc.Forward(z);
          linalg::Matrix dfake(t, 1);
          BceWithLogits(fake_logits, 0.0f, &dfake);
          disc.Backward(dfake);
          disc_optimizer.Step();
        }

        // --- generator loss: similarity + fool-the-discriminator ---
        core::LossAndGrad lg = core::MaskedL2SimilarityLoss(
            z, SliceSquare(target, batch), SliceSquare(ones, batch),
            options_.quantization_beta);

        disc.ZeroGrad();
        linalg::Matrix gen_logits = disc.Forward(z);
        linalg::Matrix dlogits(t, 1);
        const double adv_loss = BceWithLogits(gen_logits, 1.0f, &dlogits);
        linalg::Matrix dz_adv = disc.Backward(dlogits);
        disc.ZeroGrad();  // discard generator-pass gradients on D

        lg.loss += options_.adversarial_weight * adv_loss;
        lg.dz.AddScaled(dz_adv, options_.adversarial_weight);
        return lg;
      },
      train, &rng);
  return Status::OK();
}

linalg::Matrix Bgan::Encode(const linalg::Matrix& pixels) const {
  UHSCM_CHECK(network_ != nullptr, "BGAN: Fit must be called first");
  return network_->EncodeBinary(pixels);
}

}  // namespace uhscm::baselines
