#ifndef UHSCM_BASELINES_GREEDY_HASH_H_
#define UHSCM_BASELINES_GREEDY_HASH_H_

#include <memory>
#include <string>

#include "baselines/deep_common.h"
#include "baselines/hashing_method.h"

namespace uhscm::baselines {

/// GH tunables.
struct GreedyHashOptions {
  /// Weight of the cubic sign-penalty |z - sgn(z)|^3.
  float penalty = 0.02f;
  DeepTrainOptions train;
};

/// \brief Greedy Hash (Su et al., NeurIPS'18), unsupervised variant.
///
/// Trains the network to preserve feature-cosine structure while driving
/// activations to the hypercube vertices with the paper's cubic penalty
/// ||z - sgn(z)||_3^3 (its "greedy" relaxation of the discrete
/// constraint — the straight-through trick in the original is the
/// optimizer-side view of the same objective).
class GreedyHash : public HashingMethod {
 public:
  explicit GreedyHash(const GreedyHashOptions& options = {})
      : options_(options) {}

  std::string name() const override { return "GH"; }
  Status Fit(const TrainContext& context) override;
  linalg::Matrix Encode(const linalg::Matrix& pixels) const override;

 private:
  GreedyHashOptions options_;
  std::unique_ptr<core::HashingNetwork> network_;
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_GREEDY_HASH_H_
