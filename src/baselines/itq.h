#ifndef UHSCM_BASELINES_ITQ_H_
#define UHSCM_BASELINES_ITQ_H_

#include <string>

#include "baselines/hashing_method.h"
#include "linalg/pca.h"

namespace uhscm::baselines {

/// \brief Iterative Quantization (Gong et al., TPAMI'12).
///
/// PCA-embeds the CNN features into k dimensions, then alternates between
/// B = sign(V R) and the orthogonal Procrustes rotation R (via SVD of
/// B^T V) to minimize the quantization error ||B - V R||_F.
class Itq : public HashingMethod {
 public:
  explicit Itq(int iterations = 50) : iterations_(iterations) {}

  std::string name() const override { return "ITQ"; }
  Status Fit(const TrainContext& context) override;
  linalg::Matrix Encode(const linalg::Matrix& pixels) const override;

 private:
  int iterations_;
  const features::SimulatedCnnFeatureExtractor* extractor_ = nullptr;
  linalg::PcaModel pca_;
  linalg::Matrix rotation_;  // k x k
};

}  // namespace uhscm::baselines

#endif  // UHSCM_BASELINES_ITQ_H_
