#include "baselines/deep_common.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/status.h"
#include "common/thread_pool.h"
#include "linalg/ops.h"

namespace uhscm::baselines {

std::vector<double> TrainDeepModel(core::HashingNetwork* network,
                                   const linalg::Matrix& train_pixels,
                                   const BatchLossFn& loss_fn,
                                   const DeepTrainOptions& options, Rng* rng) {
  UHSCM_CHECK(network != nullptr, "TrainDeepModel: null network");
  const int n = train_pixels.rows();
  UHSCM_CHECK(n >= 2, "TrainDeepModel: need >= 2 training rows");

  nn::SgdOptions sgd;
  sgd.learning_rate = options.learning_rate;
  sgd.momentum = options.momentum;
  sgd.weight_decay = options.weight_decay;
  nn::SgdOptimizer optimizer(network->model(), sgd);

  const int batch = std::min(options.batch_size, n);
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  std::vector<double> epoch_losses;
  // Patience-based stop: epoch losses are noisy under SGD.
  double best_loss = std::numeric_limits<double>::max();
  int stall_epochs = 0;
  constexpr int kPatience = 4;
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    rng->Shuffle(&order);
    double epoch_loss = 0.0;
    int steps = 0;
    for (int start = 0; start + 2 <= n; start += batch) {
      const int end = std::min(start + batch, n);
      std::vector<int> batch_idx(order.begin() + start, order.begin() + end);
      if (batch_idx.size() < 2) continue;

      const linalg::Matrix x = train_pixels.SelectRows(batch_idx);
      optimizer.ZeroGrad();
      linalg::Matrix z = network->Forward(x);
      core::LossAndGrad lg = loss_fn(z, batch_idx);
      network->Backward(lg.dz);
      optimizer.Step();
      epoch_loss += lg.loss;
      ++steps;
    }
    epoch_loss /= std::max(steps, 1);
    epoch_losses.push_back(epoch_loss);
    if (best_loss - epoch_loss >
        options.convergence_tol * std::fabs(best_loss)) {
      best_loss = epoch_loss;
      stall_epochs = 0;
    } else if (!options.disable_early_stop && ++stall_epochs >= kPatience) {
      break;
    }
  }
  return epoch_losses;
}

linalg::Matrix SliceSquare(const linalg::Matrix& full,
                           const std::vector<int>& indices) {
  const int t = static_cast<int>(indices.size());
  linalg::Matrix out(t, t);
  for (int i = 0; i < t; ++i) {
    for (int j = 0; j < t; ++j) {
      out(i, j) = full(indices[static_cast<size_t>(i)],
                       indices[static_cast<size_t>(j)]);
    }
  }
  return out;
}

std::vector<std::vector<int>> NearestNeighborsByCosine(
    const linalg::Matrix& features, int k) {
  const int n = features.rows();
  k = std::min(k, n - 1);
  const linalg::Matrix sim = linalg::SelfCosine(features);
  std::vector<std::vector<int>> nn(static_cast<size_t>(n));
  ParallelFor(n, [&](int i) {
    std::vector<int> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::partial_sort(order.begin(), order.begin() + k + 1, order.end(),
                      [&](int a, int b) { return sim(i, a) > sim(i, b); });
    std::vector<int>& mine = nn[static_cast<size_t>(i)];
    for (int j = 0; j < n && static_cast<int>(mine.size()) < k; ++j) {
      if (order[static_cast<size_t>(j)] != i) {
        mine.push_back(order[static_cast<size_t>(j)]);
      }
    }
  });
  return nn;
}

}  // namespace uhscm::baselines
