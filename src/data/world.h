#ifndef UHSCM_DATA_WORLD_H_
#define UHSCM_DATA_WORLD_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace uhscm::data {

/// Tunables of the synthetic semantic universe.
struct WorldOptions {
  /// Dimensionality of the "pixel" (raw image) space every image is
  /// rendered into.
  int pixel_dim = 256;
  /// Number of correlated prototype groups; concepts in the same group get
  /// visually confusable prototypes (this is what makes some vocabulary
  /// concepts behave as plausible-but-wrong detections, motivating the
  /// paper's denoising step).
  int num_groups = 12;
  /// Within-group prototype correlation in [0, 1).
  float group_correlation = 0.45f;
  /// Non-semantic appearance structure: each rendered image carries one
  /// of `num_styles` shared pixel-space style vectors (background, color
  /// cast, lighting) at `style_strength` relative to the unit-norm
  /// semantic mixture. Styles cut across classes, so they create exactly
  /// the plausible-but-wrong neighbors that pollute feature-cosine
  /// similarity matrices (the paper's motivation for concept mining) —
  /// and, being visible in pixel space, a hashing network *can* be misled
  /// by them unless its guiding similarity is style-free.
  int num_styles = 32;
  float style_strength = 1.2f;
};

/// \brief The latent semantic universe shared by datasets, the simulated
/// VLP model, and the simulated CNN feature extractor.
///
/// Every concept name (canonicalized) maps to a stable integer id with an
/// associated unit-norm pixel-space prototype. Images are rendered as
/// noisy mixtures of their labels' prototypes; the simulated VLP "knows"
/// the prototypes (its pretraining), which is how it scores image/concept
/// pairs from pixels alone.
class SemanticWorld {
 public:
  explicit SemanticWorld(uint64_t seed, const WorldOptions& options = {});

  /// Returns the id for `name` (canonicalized), registering it on first
  /// use. Prototypes are a deterministic function of (seed, id), so
  /// registration order affects ids but not experiment semantics as long
  /// as callers keep their own id lists.
  int RegisterConcept(const std::string& name);

  /// Id lookup without registration; -1 if unknown.
  int FindConcept(const std::string& name) const;

  int num_concepts() const { return static_cast<int>(names_.size()); }
  const std::string& name(int id) const { return names_[static_cast<size_t>(id)]; }
  int pixel_dim() const { return options_.pixel_dim; }
  const WorldOptions& options() const { return options_; }

  /// Unit-norm pixel prototype of concept `id` (size pixel_dim).
  const linalg::Vector& Prototype(int id) const;

  /// Style dictionary (see WorldOptions): shared non-semantic pixel
  /// directions. Exposed so the simulated VLP's image tower can respond
  /// to appearance the way a real encoder does.
  int num_styles() const { return static_cast<int>(styles_.size()); }
  const linalg::Vector& Style(int s) const {
    return styles_[static_cast<size_t>(s)];
  }

  /// Renders an image: unit-normalized sum of label prototypes with
  /// per-label weights in [0.7, 1.3] plus isotropic Gaussian pixel noise
  /// whose expected norm is `noise_scale` relative to the unit-norm
  /// signal (so cos(image, prototype) ~ 1/sqrt(1 + noise_scale^2) for a
  /// single-label image).
  linalg::Vector RenderImage(const std::vector<int>& label_ids,
                             float noise_scale, Rng* rng) const;

 private:
  linalg::Vector MakePrototype(int id);

  WorldOptions options_;
  uint64_t seed_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, int> ids_;
  std::vector<linalg::Vector> prototypes_;
  std::vector<linalg::Vector> group_means_;
  std::vector<linalg::Vector> styles_;
};

}  // namespace uhscm::data

#endif  // UHSCM_DATA_WORLD_H_
